// Deterministic fork/join semantics of the analysis executor
// (common/executor.h): the guarantees the parallel analysis mode is built
// on — every index runs exactly once, groups nest without deadlock, the
// lowest-index exception is rethrown regardless of interleaving, the
// submitter's check mode extends to the workers, and sharded_for's chunk
// geometry is a pure function of (n, grain, lanes).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/executor.h"

namespace visrt {
namespace {

TEST(Executor, SequentialExecutorRunsInline) {
  Executor ex(1);
  EXPECT_FALSE(ex.parallel());
  EXPECT_EQ(ex.lanes(), 1u);
  std::vector<int> hits(16, 0);
  ex.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Executor, RunsEveryIndexExactlyOnce) {
  Executor ex(8);
  EXPECT_TRUE(ex.parallel());
  EXPECT_EQ(ex.lanes(), 8u);
  std::vector<std::atomic<int>> counts(2048);
  ex.parallel_for(counts.size(),
                  [&](std::size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(Executor, ZeroWorkGroupReturnsImmediately) {
  Executor ex(4);
  bool ran = false;
  ex.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(Executor, NestedGroupsComplete) {
  Executor ex(4);
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 16;
  std::vector<std::atomic<int>> counts(kOuter * kInner);
  ex.parallel_for(kOuter, [&](std::size_t o) {
    ex.parallel_for(kInner, [&](std::size_t i) {
      counts[o * kInner + i].fetch_add(1);
    });
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(Executor, DoublyNestedGroupsComplete) {
  Executor ex(3);
  std::atomic<int> total{0};
  ex.parallel_for(4, [&](std::size_t) {
    ex.parallel_for(4, [&](std::size_t) {
      ex.parallel_for(4, [&](std::size_t) { total.fetch_add(1); });
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(Executor, LowestIndexExceptionIsRethrown) {
  Executor ex(8);
  // Several indices throw; under any interleaving the caller must see the
  // exception of the lowest one, so failures reproduce deterministically.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> ran{0};
    try {
      ex.parallel_for(64, [&](std::size_t i) {
        ran.fetch_add(1);
        if (i == 7 || i == 23 || i == 55)
          throw std::runtime_error("boom@" + std::to_string(i));
      });
      FAIL() << "parallel_for swallowed the exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom@7");
    }
    // Exceptions abandon no work: every index still ran.
    EXPECT_EQ(ran.load(), 64);
  }
}

TEST(Executor, PoolSurvivesThrowingGroups) {
  Executor ex(4);
  EXPECT_THROW(ex.parallel_for(
                   8, [&](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  // The pool must still be fully functional afterwards.
  std::atomic<int> total{0};
  ex.parallel_for(32, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 32);
}

TEST(Executor, CheckThrowsModeExtendsToWorkers) {
  Executor ex(4);
  // With the submitter in catchable-check mode, an invariant tripped on a
  // worker lane must surface as CheckFailure, not a process abort.
  ScopedCheckThrows catchable;
  EXPECT_THROW(ex.parallel_for(16,
                               [&](std::size_t i) {
                                 invariant(i != 3, "tripped on a worker");
                               }),
               CheckFailure);
}

TEST(Executor, ShardCountGeometry) {
  Executor seq(1);
  Executor par(4);
  EXPECT_EQ(shard_count(nullptr, 1000, 8), 1u);
  EXPECT_EQ(shard_count(&seq, 1000, 8), 1u);
  EXPECT_EQ(shard_count(&par, 0, 8), 0u);
  // Too small to fork: fewer than two grains.
  EXPECT_EQ(shard_count(&par, 15, 8), 1u);
  EXPECT_EQ(shard_count(&par, 16, 8), 2u);
  // Capped at 4 chunks per lane.
  EXPECT_EQ(shard_count(&par, 100000, 8), 16u);
}

TEST(Executor, ShardedForPartitionsTheRange) {
  Executor ex(4);
  for (std::size_t n : {0u, 1u, 7u, 16u, 100u, 1000u}) {
    const std::size_t chunks = shard_count(&ex, n, 8);
    std::vector<std::pair<std::size_t, std::size_t>> ranges(
        chunks, {std::size_t{0}, std::size_t{0}});
    sharded_for(&ex, n, 8,
                [&](std::size_t c, std::size_t begin, std::size_t end) {
                  ranges[c] = {begin, end};
                });
    // Chunks are contiguous, ordered by chunk index, and cover [0, n).
    std::size_t next = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      EXPECT_EQ(ranges[c].first, next) << "n=" << n << " chunk=" << c;
      EXPECT_LE(ranges[c].first, ranges[c].second);
      next = ranges[c].second;
    }
    EXPECT_EQ(next, n);
  }
}

TEST(Executor, StressManySmallGroups) {
  Executor ex(8);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    ex.parallel_for(17, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200u * 17u);
}

} // namespace
} // namespace visrt
