// Determinism of the workload generators and full runs: identical configs
// must produce identical graphs, values, and simulated timings; different
// seeds must produce different circuits.
#include <gtest/gtest.h>

#include "apps/circuit.h"
#include "apps/pennant.h"

namespace visrt {
namespace {

RunStats run_circuit(std::uint64_t seed, RegionData<double>* volt_out) {
  RuntimeConfig cfg;
  cfg.machine.num_nodes = 4;
  Runtime rt(cfg);
  apps::CircuitConfig ccfg;
  ccfg.pieces = 4;
  ccfg.nodes_per_piece = 12;
  ccfg.wires_per_piece = 18;
  ccfg.iterations = 3;
  ccfg.seed = seed;
  apps::CircuitApp app(rt, ccfg);
  app.run();
  EXPECT_TRUE(app.validate());
  // Observe voltages through the root region (region handle 0 is the node
  // region, field 0 the voltage).
  if (volt_out != nullptr) *volt_out = rt.observe(RegionHandle{0}, 0);
  return rt.finish();
}

TEST(AppsDeterminism, SameSeedSameEverything) {
  RegionData<double> v1, v2;
  RunStats a = run_circuit(42, &v1);
  RunStats b = run_circuit(42, &v2);
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(a.total_time_s, b.total_time_s);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.dep_edges, b.dep_edges);
}

TEST(AppsDeterminism, DifferentSeedsDifferentCircuits) {
  RegionData<double> v1, v2;
  run_circuit(1, &v1);
  run_circuit(2, &v2);
  EXPECT_FALSE(v1 == v2) << "different seeds should wire different graphs";
}

TEST(AppsDeterminism, PennantIsDeterministic) {
  auto run = [] {
    RuntimeConfig cfg;
    cfg.machine.num_nodes = 4;
    Runtime rt(cfg);
    apps::PennantConfig pcfg;
    pcfg.pieces_x = 2;
    pcfg.pieces_y = 2;
    pcfg.zones_per_piece_x = 4;
    pcfg.zones_per_piece_y = 4;
    pcfg.iterations = 3;
    apps::PennantApp app(rt, pcfg);
    app.run();
    EXPECT_TRUE(app.validate());
    return app.last_dt();
  };
  EXPECT_EQ(run(), run());
}

} // namespace
} // namespace visrt
