// Conformance tests for the naive engines against the paper's pseudocode
// line by line: Figure 7 (painter), Figure 9 (Warnock), Figure 11 (ray
// casting).  These pin down the *mechanics* — history growth, equivalence-
// set splitting, occlusion — not just the observable values.
#include <gtest/gtest.h>

#include "engine_harness.h"
#include "realm/reduction_ops.h"

namespace visrt {
namespace {

using testing::EngineHarness;

struct TwoHalves {
  RegionTreeForest forest;
  RegionHandle root, left, right, middle;

  TwoHalves() {
    root = forest.create_root(IntervalSet(0, 19), "A");
    PartitionHandle halves = forest.create_partition(
        root, {IntervalSet(0, 9), IntervalSet(10, 19)}, "halves");
    left = forest.subregion(halves, 0);
    right = forest.subregion(halves, 1);
    PartitionHandle mid =
        forest.create_partition(root, {IntervalSet(5, 14)}, "mid");
    middle = forest.subregion(mid, 0);
  }
};

// --- Figure 7: the painter's flat history ---------------------------------

TEST(NaivePaintPseudocode, CommitAppendsEveryOperation) {
  TwoHalves w;
  EngineHarness h(Algorithm::NaivePaint, &w.forest);
  h.init_field(w.root, 0, RegionData<double>::filled(IntervalSet(0, 19), 0));
  // S starts as [<read-write, A>] (the initialization).
  EXPECT_EQ(h.engine().stats().history_entries, 1u);
  h.run({Requirement{w.left, 0, Privilege::read()}}, nullptr);
  EXPECT_EQ(h.engine().stats().history_entries, 2u); // reads are recorded
  h.run({Requirement{w.right, 0, Privilege::read_write()}},
        [](std::vector<RegionData<double>>& b) { b[0].fill(5); });
  EXPECT_EQ(h.engine().stats().history_entries, 3u);
  h.run({Requirement{w.middle, 0, Privilege::reduce(kRedopSum)}},
        [](std::vector<RegionData<double>>& b) {
          b[0].for_each([](coord_t, double& v) { v += 1; });
        });
  // The history never shrinks: the naive painter has no occlusion pruning.
  EXPECT_EQ(h.engine().stats().history_entries, 4u);
}

TEST(NaivePaintPseudocode, ReduceMaterializeIsIdentityFilled) {
  TwoHalves w;
  EngineHarness h(Algorithm::NaivePaint, &w.forest);
  h.init_field(w.root, 0, RegionData<double>::filled(IntervalSet(0, 19), 42));
  // Figure 7 lines 13-15: a reduce materialization never sees the current
  // values, only the operator identity (0 for sum, +inf for min).
  auto sum = h.run({Requirement{w.left, 0, Privilege::reduce(kRedopSum)}},
                   nullptr);
  sum.materialized[0].for_each(
      [](coord_t, const double& v) { EXPECT_EQ(v, 0.0); });
  auto mn = h.run({Requirement{w.left, 0, Privilege::reduce(kRedopMin)}},
                  nullptr);
  mn.materialized[0].for_each([](coord_t, const double& v) {
    EXPECT_EQ(v, std::numeric_limits<double>::infinity());
  });
}

TEST(NaivePaintPseudocode, PaintAppliesHistoryOldestToNewest) {
  TwoHalves w;
  EngineHarness h(Algorithm::NaivePaint, &w.forest);
  h.init_field(w.root, 0, RegionData<double>::filled(IntervalSet(0, 19), 1));
  // write 2 over the left half, then reduce +10 over the middle: a read of
  // the root must see write-then-reduce order.
  h.run({Requirement{w.left, 0, Privilege::read_write()}},
        [](std::vector<RegionData<double>>& b) { b[0].fill(2); });
  h.run({Requirement{w.middle, 0, Privilege::reduce(kRedopSum)}},
        [](std::vector<RegionData<double>>& b) {
          b[0].for_each([](coord_t, double& v) { v += 10; });
        });
  auto r = h.run({Requirement{w.root, 0, Privilege::read()}}, nullptr);
  EXPECT_EQ(r.materialized[0].at(0), 2.0);   // left, written only
  EXPECT_EQ(r.materialized[0].at(7), 12.0);  // left ∩ middle: 2 then +10
  EXPECT_EQ(r.materialized[0].at(12), 11.0); // right ∩ middle: 1 then +10
  EXPECT_EQ(r.materialized[0].at(18), 1.0);  // untouched
}

// --- Figure 9: Warnock's equivalence sets ----------------------------------

TEST(NaiveWarnockPseudocode, RefineSplitsOnPartialOverlapOnly) {
  TwoHalves w;
  EngineHarness h(Algorithm::NaiveWarnock, &w.forest,
                  /*track_values=*/false);
  h.init_field(w.root, 0, RegionData<double>{});
  EXPECT_EQ(h.engine().stats().live_eqsets, 1u); // the whole collection A

  // left: splits A into [0,9] and [10,19].
  h.run({Requirement{w.left, 0, Privilege::read()}}, nullptr);
  EXPECT_EQ(h.engine().stats().live_eqsets, 2u);
  // left again: exact match, no split (Figure 9 line 8-9).
  h.run({Requirement{w.left, 0, Privilege::read()}}, nullptr);
  EXPECT_EQ(h.engine().stats().live_eqsets, 2u);
  // middle [5,14] splits both halves.
  h.run({Requirement{w.middle, 0, Privilege::read()}}, nullptr);
  EXPECT_EQ(h.engine().stats().live_eqsets, 4u);
  // right [10,19] is now exactly covered by {[10,14],[15,19]}: no split.
  h.run({Requirement{w.right, 0, Privilege::read()}}, nullptr);
  EXPECT_EQ(h.engine().stats().live_eqsets, 4u);
}

TEST(NaiveWarnockPseudocode, WriteClearsTheSetHistory) {
  TwoHalves w;
  EngineHarness h(Algorithm::NaiveWarnock, &w.forest,
                  /*track_values=*/false);
  h.init_field(w.root, 0, RegionData<double>{});
  // Pile up reads/reductions on the left half, then write it: Figure 9
  // lines 30-31 replace the history with the single write entry.
  h.run({Requirement{w.left, 0, Privilege::read()}}, nullptr);
  h.run({Requirement{w.left, 0, Privilege::reduce(kRedopSum)}}, nullptr);
  h.run({Requirement{w.left, 0, Privilege::read()}}, nullptr);
  std::size_t before = h.engine().stats().history_entries;
  h.run({Requirement{w.left, 0, Privilege::read_write()}}, nullptr);
  std::size_t after = h.engine().stats().history_entries;
  EXPECT_LT(after, before);
  // The next reader depends only on the write (everything older is
  // occluded).
  auto r = h.run({Requirement{w.left, 0, Privilege::read()}}, nullptr);
  EXPECT_EQ(r.dependences, std::vector<LaunchID>{3});
}

// --- Figure 11: ray casting's dominating writes ----------------------------

TEST(NaiveRayCastPseudocode, DominatingWriteCoalesces) {
  TwoHalves w;
  EngineHarness h(Algorithm::NaiveRayCast, &w.forest,
                  /*track_values=*/false);
  h.init_field(w.root, 0, RegionData<double>{});
  // Fragment the space…
  h.run({Requirement{w.left, 0, Privilege::read()}}, nullptr);
  h.run({Requirement{w.middle, 0, Privilege::read()}}, nullptr);
  EXPECT_GE(h.engine().stats().live_eqsets, 4u);
  // …then write the whole collection: dominating_write leaves exactly one
  // equivalence set (Figure 11 line 2).
  h.run({Requirement{w.root, 0, Privilege::read_write()}}, nullptr);
  EXPECT_EQ(h.engine().stats().live_eqsets, 1u);
}

TEST(NaiveRayCastPseudocode, PartialWriteKeepsDisjointSets) {
  TwoHalves w;
  EngineHarness h(Algorithm::NaiveRayCast, &w.forest,
                  /*track_values=*/false);
  h.init_field(w.root, 0, RegionData<double>{});
  h.run({Requirement{w.middle, 0, Privilege::read()}}, nullptr);
  // Write the left half: sets fully inside [0,9] are replaced by one new
  // set; the parts disjoint from it survive.
  h.run({Requirement{w.left, 0, Privilege::read_write()}}, nullptr);
  // Expected live sets: the fresh [0,9], plus [10,14] and [15,19].
  EXPECT_EQ(h.engine().stats().live_eqsets, 3u);
}

TEST(NaiveRayCastPseudocode, MatchesWarnockForReadOnlyStreams) {
  // Without writes the two algorithms are identical (Figure 11 only
  // changes the write path).
  TwoHalves w1, w2;
  EngineHarness ray(Algorithm::NaiveRayCast, &w1.forest,
                    /*track_values=*/false);
  EngineHarness war(Algorithm::NaiveWarnock, &w2.forest,
                    /*track_values=*/false);
  ray.init_field(w1.root, 0, RegionData<double>{});
  war.init_field(w2.root, 0, RegionData<double>{});
  for (int round = 0; round < 3; ++round) {
    for (auto pick : {0, 1, 2}) {
      RegionHandle r1 = pick == 0 ? w1.left : pick == 1 ? w1.right
                                                        : w1.middle;
      RegionHandle r2 = pick == 0 ? w2.left : pick == 1 ? w2.right
                                                        : w2.middle;
      auto a = ray.run({Requirement{r1, 0, Privilege::read()}}, nullptr);
      auto b = war.run({Requirement{r2, 0, Privilege::read()}}, nullptr);
      EXPECT_EQ(a.dependences, b.dependences);
    }
  }
  EXPECT_EQ(ray.engine().stats().live_eqsets,
            war.engine().stats().live_eqsets);
  EXPECT_EQ(ray.engine().stats().total_eqsets_created,
            war.engine().stats().total_eqsets_created);
}

} // namespace
} // namespace visrt
