// Multi-field and multi-tree behaviour: the analyses are independent per
// field (the paper's up/down fields never interfere) and per region tree
// (circuit keeps nodes and wires in separate trees).
#include <gtest/gtest.h>

#include "engine_harness.h"
#include "realm/reduction_ops.h"

namespace visrt {
namespace {

using testing::EngineHarness;

class MultiField : public ::testing::TestWithParam<Algorithm> {};

TEST_P(MultiField, FieldsNeverInterfere) {
  RegionTreeForest forest;
  RegionHandle root = forest.create_root(IntervalSet(0, 19), "A");
  EngineHarness h(GetParam(), &forest);
  for (FieldID f = 0; f < 3; ++f) {
    h.init_field(root, f,
                 RegionData<double>::filled(forest.domain(root), 0.0));
  }

  // Writers on three different fields of the same points: no dependences.
  for (FieldID f = 0; f < 3; ++f) {
    auto r = h.run({Requirement{root, f, Privilege::read_write()}},
                   [f](std::vector<RegionData<double>>& bufs) {
                     bufs[0].for_each([f](coord_t, double& v) {
                       v = static_cast<double>(f + 1);
                     });
                   });
    EXPECT_TRUE(r.dependences.empty()) << "field " << f;
  }
  // A reader of field 1 depends only on field 1's writer.
  auto r = h.run({Requirement{root, 1, Privilege::read()}}, nullptr);
  EXPECT_EQ(r.dependences, std::vector<LaunchID>{1});
  r.materialized[0].for_each(
      [](coord_t, const double& v) { EXPECT_EQ(v, 2.0); });
}

TEST_P(MultiField, TreesNeverInterfere) {
  RegionTreeForest forest;
  RegionHandle a = forest.create_root(IntervalSet(0, 9), "A");
  RegionHandle b = forest.create_root(IntervalSet(0, 9), "B");
  EngineHarness h(GetParam(), &forest);
  h.init_field(a, 0, RegionData<double>::filled(forest.domain(a), 0.0));
  h.init_field(b, 1, RegionData<double>::filled(forest.domain(b), 0.0));

  // Same coordinates, different trees, different fields: independent.
  auto w1 = h.run({Requirement{a, 0, Privilege::read_write()}},
                  [](std::vector<RegionData<double>>& bufs) {
                    bufs[0].fill(7.0);
                  });
  auto w2 = h.run({Requirement{b, 1, Privilege::read_write()}},
                  [](std::vector<RegionData<double>>& bufs) {
                    bufs[0].fill(9.0);
                  });
  EXPECT_TRUE(w2.dependences.empty());
  auto ra = h.run({Requirement{a, 0, Privilege::read()}}, nullptr);
  EXPECT_EQ(ra.dependences, std::vector<LaunchID>{w1.id});
  ra.materialized[0].for_each(
      [](coord_t, const double& v) { EXPECT_EQ(v, 7.0); });
  (void)w2;
}

TEST_P(MultiField, MixedPrivilegesAcrossFieldsInOneTask) {
  // The paper's t1: read-write one field, reduce another, same points.
  RegionTreeForest forest;
  RegionHandle root = forest.create_root(IntervalSet(0, 9), "A");
  EngineHarness h(GetParam(), &forest);
  h.init_field(root, 0, RegionData<double>::filled(forest.domain(root), 1.0));
  h.init_field(root, 1, RegionData<double>::filled(forest.domain(root), 1.0));

  auto t = h.run(
      {Requirement{root, 0, Privilege::read_write()},
       Requirement{root, 1, Privilege::reduce(kRedopSum)}},
      [](std::vector<RegionData<double>>& bufs) {
        bufs[0].for_each([](coord_t, double& v) { v *= 3; });
        bufs[1].for_each([](coord_t, double& v) { v += 5; });
      });
  EXPECT_TRUE(t.dependences.empty());
  auto r0 = h.run({Requirement{root, 0, Privilege::read()}}, nullptr);
  auto r1 = h.run({Requirement{root, 1, Privilege::read()}}, nullptr);
  r0.materialized[0].for_each(
      [](coord_t, const double& v) { EXPECT_EQ(v, 3.0); });
  r1.materialized[0].for_each(
      [](coord_t, const double& v) { EXPECT_EQ(v, 6.0); });
}

TEST_P(MultiField, DifferentReductionOperatorsInterfere) {
  RegionTreeForest forest;
  RegionHandle root = forest.create_root(IntervalSet(0, 9), "A");
  EngineHarness h(GetParam(), &forest);
  h.init_field(root, 0, RegionData<double>::filled(forest.domain(root), 4.0));

  auto sum = h.run({Requirement{root, 0, Privilege::reduce(kRedopSum)}},
                   [](std::vector<RegionData<double>>& bufs) {
                     bufs[0].for_each([](coord_t, double& v) { v += 10; });
                   });
  auto min = h.run({Requirement{root, 0, Privilege::reduce(kRedopMin)}},
                   [](std::vector<RegionData<double>>& bufs) {
                     bufs[0].for_each([](coord_t, double& v) {
                       v = std::min(v, 6.0);
                     });
                   });
  // Different operators interfere: min must be ordered after sum.
  EXPECT_EQ(min.dependences, std::vector<LaunchID>{sum.id});
  auto r = h.run({Requirement{root, 0, Privilege::read()}}, nullptr);
  // 4 + 10 = 14, then min(14, 6) = 6.
  r.materialized[0].for_each(
      [](coord_t, const double& v) { EXPECT_EQ(v, 6.0); });
}

TEST_P(MultiField, MinAndMaxReductionsViaRegistry) {
  RegionTreeForest forest;
  RegionHandle root = forest.create_root(IntervalSet(0, 4), "A");
  EngineHarness h(GetParam(), &forest);
  h.init_field(root, 0, RegionData<double>::filled(forest.domain(root), 0.0));

  // Two same-operator max reductions run independently (no dependence) and
  // combine correctly regardless of order.
  auto a = h.run({Requirement{root, 0, Privilege::reduce(kRedopMax)}},
                 [](std::vector<RegionData<double>>& bufs) {
                   bufs[0].for_each([](coord_t p, double& v) {
                     v = std::max(v, static_cast<double>(p));
                   });
                 });
  auto b = h.run({Requirement{root, 0, Privilege::reduce(kRedopMax)}},
                 [](std::vector<RegionData<double>>& bufs) {
                   bufs[0].for_each([](coord_t p, double& v) {
                     v = std::max(v, 3.0 - static_cast<double>(p));
                   });
                 });
  EXPECT_TRUE(b.dependences.empty());
  (void)a;
  auto r = h.run({Requirement{root, 0, Privilege::read()}}, nullptr);
  r.materialized[0].for_each([](coord_t p, const double& v) {
    EXPECT_EQ(v, std::max({0.0, static_cast<double>(p),
                           3.0 - static_cast<double>(p)}));
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, MultiField,
    ::testing::Values(Algorithm::NaivePaint, Algorithm::NaiveWarnock,
                      Algorithm::NaiveRayCast, Algorithm::Paint,
                      Algorithm::Warnock, Algorithm::RayCast,
                      Algorithm::Reference),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      std::string name = algorithm_name(info.param);
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

} // namespace
} // namespace visrt
