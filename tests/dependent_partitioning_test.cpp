// Tests for region/dependent_partitioning.h: the [25] operators that
// compute partitions from data.
#include "region/dependent_partitioning.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "region/region_tree.h"

namespace visrt {
namespace {

TEST(PartitionEqually, EvenSplit) {
  IntervalSet dom(0, 99);
  auto parts = partition_equally(dom, 4);
  ASSERT_EQ(parts.size(), 4u);
  for (const IntervalSet& p : parts) EXPECT_EQ(p.volume(), 25);
  EXPECT_TRUE(all_pairwise_disjoint(parts));
  IntervalSet u;
  for (const IntervalSet& p : parts) u = u.unite(p);
  EXPECT_EQ(u, dom);
}

TEST(PartitionEqually, UnevenSplitSpreadsRemainder) {
  IntervalSet dom(0, 9);
  auto parts = partition_equally(dom, 3);
  EXPECT_EQ(parts[0].volume(), 4); // 10 = 4 + 3 + 3
  EXPECT_EQ(parts[1].volume(), 3);
  EXPECT_EQ(parts[2].volume(), 3);
}

TEST(PartitionEqually, FragmentedDomain) {
  IntervalSet dom{{0, 3}, {10, 13}, {20, 23}};
  auto parts = partition_equally(dom, 3);
  for (const IntervalSet& p : parts) EXPECT_EQ(p.volume(), 4);
  EXPECT_TRUE(all_pairwise_disjoint(parts));
}

TEST(PartitionEqually, MoreColorsThanPoints) {
  auto parts = partition_equally(IntervalSet(0, 1), 4);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0].volume() + parts[1].volume() + parts[2].volume() +
                parts[3].volume(),
            2);
}

TEST(PartitionByField, ColorsPartitionTheDomain) {
  IntervalSet dom(0, 29);
  auto parts = partition_by_field(
      dom, 3, [](coord_t p) { return static_cast<std::size_t>(p % 3); });
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_TRUE(all_pairwise_disjoint(parts));
  for (const IntervalSet& p : parts) EXPECT_EQ(p.volume(), 10);
  EXPECT_TRUE(parts[0].contains(0));
  EXPECT_TRUE(parts[1].contains(1));
  EXPECT_TRUE(parts[2].contains(2));
}

TEST(PartitionByField, NoColorDropsPoints) {
  IntervalSet dom(0, 9);
  auto parts = partition_by_field(dom, 2, [](coord_t p) {
    return p < 4 ? static_cast<std::size_t>(0)
                 : (p < 8 ? static_cast<std::size_t>(1) : kNoColor);
  });
  EXPECT_EQ(parts[0], IntervalSet(0, 3));
  EXPECT_EQ(parts[1], IntervalSet(4, 7));
  // 8, 9 dropped: partition incomplete.
  IntervalSet u = parts[0].unite(parts[1]);
  EXPECT_FALSE(u.contains(8));
}

TEST(Image, PushesPartsThroughPointers) {
  // Two source parts, each point maps to 2*p in the destination.
  std::vector<IntervalSet> parts{IntervalSet(0, 2), IntervalSet(3, 5)};
  auto img = image(parts, [](coord_t p, std::vector<coord_t>& out) {
    out.push_back(2 * p);
  });
  EXPECT_EQ(img[0], IntervalSet::from_points({0, 2, 4}));
  EXPECT_EQ(img[1], IntervalSet::from_points({6, 8, 10}));
}

TEST(Image, MultiValuedPointersAlias) {
  // Wires with two endpoints: images of different parts may share nodes.
  std::vector<IntervalSet> parts{IntervalSet(0, 0), IntervalSet(1, 1)};
  auto img = image(parts, [](coord_t, std::vector<coord_t>& out) {
    out.push_back(7); // both wires touch node 7
  });
  EXPECT_EQ(img[0], IntervalSet(7, 7));
  EXPECT_EQ(img[1], IntervalSet(7, 7));
  EXPECT_FALSE(all_pairwise_disjoint(img));
}

TEST(Image, EmptyPointerMeansEmptyImage) {
  std::vector<IntervalSet> parts{IntervalSet(0, 3)};
  auto img = image(parts, [](coord_t, std::vector<coord_t>&) {});
  EXPECT_TRUE(img[0].empty());
}

TEST(Preimage, PullsPartsBackThroughPointers) {
  // Destination halves; source points map to p+10.
  std::vector<IntervalSet> dest{IntervalSet(10, 14), IntervalSet(15, 19)};
  auto pre = preimage(dest, IntervalSet(0, 9),
                      [](coord_t p, std::vector<coord_t>& out) {
                        out.push_back(p + 10);
                      });
  EXPECT_EQ(pre[0], IntervalSet(0, 4));
  EXPECT_EQ(pre[1], IntervalSet(5, 9));
}

TEST(Preimage, MultiValuedPointAppearsInSeveralParts) {
  std::vector<IntervalSet> dest{IntervalSet(0, 4), IntervalSet(5, 9)};
  auto pre = preimage(dest, IntervalSet(0, 0),
                      [](coord_t, std::vector<coord_t>& out) {
                        out.push_back(2);
                        out.push_back(7);
                      });
  EXPECT_TRUE(pre[0].contains(0));
  EXPECT_TRUE(pre[1].contains(0));
}

TEST(DependentPartitioning, ImagePreimageAdjointness) {
  // p in preimage(dest)[c]  <=>  ptr(p) intersects dest[c]; and the image
  // of the preimage is contained in dest (restricted to reachable points).
  Rng rng(99);
  IntervalSet source(0, 79);
  std::vector<coord_t> table(80);
  for (auto& t : table) t = rng.range(0, 59);
  PointerFn ptr = [&table](coord_t p, std::vector<coord_t>& out) {
    out.push_back(table[static_cast<std::size_t>(p)]);
  };
  std::vector<IntervalSet> dest{IntervalSet(0, 19), IntervalSet(20, 39),
                                IntervalSet(40, 59)};
  auto pre = preimage(dest, source, ptr);
  // Adjointness point by point.
  for (std::size_t c = 0; c < dest.size(); ++c) {
    source.for_each_point([&](coord_t p) {
      bool in_pre = pre[c].contains(p);
      bool maps_in = dest[c].contains(table[static_cast<std::size_t>(p)]);
      EXPECT_EQ(in_pre, maps_in) << "c=" << c << " p=" << p;
    });
  }
  // image(preimage(dest)) subset of dest.
  auto img = image(pre, ptr);
  for (std::size_t c = 0; c < dest.size(); ++c) {
    EXPECT_TRUE(dest[c].contains(img[c]));
  }
}

TEST(DependentPartitioning, CircuitStyleGhosts) {
  // The circuit recipe: ghost nodes of a piece = image of its wires
  // through both endpoints, minus the piece's own nodes.
  // 2 pieces of 4 nodes; wires: piece 0 {0-1, 1-5}, piece 1 {4-6, 7-2}.
  std::vector<IntervalSet> wire_parts{IntervalSet(0, 1), IntervalSet(2, 3)};
  struct Wire {
    coord_t src, dst;
  };
  std::vector<Wire> wires{{0, 1}, {1, 5}, {4, 6}, {7, 2}};
  PointerFn endpoints = [&wires](coord_t w, std::vector<coord_t>& out) {
    out.push_back(wires[static_cast<std::size_t>(w)].src);
    out.push_back(wires[static_cast<std::size_t>(w)].dst);
  };
  auto touched = image(wire_parts, endpoints);
  std::vector<IntervalSet> own{IntervalSet(0, 3), IntervalSet(4, 7)};
  IntervalSet ghost0 = touched[0].subtract(own[0]);
  IntervalSet ghost1 = touched[1].subtract(own[1]);
  EXPECT_EQ(ghost0, IntervalSet(5, 5)); // wire 1 reaches node 5
  EXPECT_EQ(ghost1, IntervalSet(2, 2)); // wire 3 reaches node 2
}

TEST(DependentPartitioning, Validation) {
  EXPECT_THROW(partition_equally(IntervalSet(0, 9), 0), ApiError);
  EXPECT_THROW(partition_by_field(IntervalSet(0, 9), 2, nullptr), ApiError);
  std::vector<IntervalSet> parts{IntervalSet(0, 1)};
  EXPECT_THROW(image(parts, nullptr), ApiError);
  EXPECT_THROW(preimage(parts, IntervalSet(0, 1), nullptr), ApiError);
}

} // namespace
} // namespace visrt
