// Tests for geom/bvh.h: correctness against brute force, traversal cost.
#include "geom/bvh.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace visrt {
namespace {

TEST(Bvh, EmptyTree) {
  Bvh bvh;
  EXPECT_TRUE(bvh.empty());
  BvhQueryResult r = bvh.query(Interval{0, 100});
  EXPECT_TRUE(r.items.empty());
  EXPECT_EQ(r.nodes_visited, 0u);
}

TEST(Bvh, SingleItem) {
  Bvh bvh({Bvh::Item{{10, 20}, 7}});
  EXPECT_EQ(bvh.item_count(), 1u);
  EXPECT_EQ(bvh.query(Interval{15, 30}).items,
            (std::vector<std::uint64_t>{7}));
  EXPECT_TRUE(bvh.query(Interval{21, 30}).items.empty());
  EXPECT_TRUE(bvh.query(Interval{0, 9}).items.empty());
}

TEST(Bvh, DropsEmptyBounds) {
  Bvh bvh({Bvh::Item{{10, 5}, 1}, Bvh::Item{{0, 3}, 2}});
  EXPECT_EQ(bvh.item_count(), 1u);
}

TEST(Bvh, QueryIntervalSetDeduplicates) {
  Bvh bvh({Bvh::Item{{0, 100}, 1}});
  // Two query intervals both hit the same item.
  BvhQueryResult r = bvh.query(IntervalSet{{0, 5}, {50, 60}});
  EXPECT_EQ(r.items, (std::vector<std::uint64_t>{1}));
}

TEST(Bvh, MatchesBruteForceRandom) {
  Rng rng(77);
  std::vector<Bvh::Item> items;
  for (std::uint64_t i = 0; i < 300; ++i) {
    coord_t lo = rng.range(0, 5000);
    items.push_back(Bvh::Item{{lo, lo + rng.range(0, 80)}, i});
  }
  Bvh bvh(items);
  for (int q = 0; q < 200; ++q) {
    coord_t lo = rng.range(0, 5000);
    Interval query{lo, lo + rng.range(0, 200)};
    std::vector<std::uint64_t> expect;
    for (const auto& it : items)
      if (it.bounds.overlaps(query)) expect.push_back(it.payload);
    std::sort(expect.begin(), expect.end());
    BvhQueryResult r = bvh.query(query);
    std::sort(r.items.begin(), r.items.end());
    EXPECT_EQ(r.items, expect);
  }
}

TEST(Bvh, TraversalIsLogarithmicForPointQueries) {
  // Disjoint unit-spaced items: a point query should visit O(log n) nodes,
  // far fewer than the total node count.
  std::vector<Bvh::Item> items;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    coord_t lo = static_cast<coord_t>(i) * 10;
    items.push_back(Bvh::Item{{lo, lo + 5}, i});
  }
  Bvh bvh(items);
  BvhQueryResult r = bvh.query(Interval{20481, 20484});
  EXPECT_LE(r.items.size(), 1u);
  EXPECT_LT(r.nodes_visited, 64u);
}

} // namespace
} // namespace visrt
