// Lifecycle-ledger and provenance tests (docs/OBSERVABILITY.md §schema v2).
//
// The ledger's engine-level claims:
//   - Warnock only ever refines: its live eq-set count grows monotonically
//     and it never emits a Coalesce event.
//   - Ray casting coalesces: a write that dominates every live set strictly
//     reduces the live-set count.
// Plus the determinism contract: the lifecycle and message-ledger JSON are
// bit-identical across analysis_threads (events are recorded only from the
// sequential canonical-order merge loops).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/oracle.h"
#include "fuzz/serialize.h"
#include "obs/lifecycle.h"
#include "runtime/runtime.h"
#include "sim/message_ledger.h"
#include "visibility/dep_graph.h"

#ifndef VISRT_CORPUS_DIR
#error "VISRT_CORPUS_DIR must point at tests/corpus"
#endif

namespace visrt::fuzz {
namespace {

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(VISRT_CORPUS_DIR))
    if (entry.path().extension() == ".visprog") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

ProgramSpec load(const std::filesystem::path& path) {
  std::ifstream is(path);
  return read_visprog(is);
}

LiveRun run_live(ProgramSpec spec, Algorithm subject, unsigned threads = 1) {
  LiveRunOptions options;
  options.provenance = true;
  options.analysis_threads = threads;
  options.subject = subject;
  return run_program_live(spec, options);
}

/// Four disjoint sub-block writes (forcing per-piece eq-sets) followed by
/// one read-write over the whole root: a dominating write.
ProgramSpec dominating_write_spec() {
  ProgramSpec spec;
  spec.num_nodes = 4;
  spec.trees.push_back(TreeSpec{"t", 64});
  PartitionSpec part;
  part.name = "p";
  part.parent = 0;
  for (coord_t c = 0; c < 4; ++c)
    part.subspaces.push_back(IntervalSet(16 * c, 16 * c + 15));
  spec.partitions.push_back(part);
  spec.fields.push_back(FieldSpec{"f", 0, 11});
  for (std::uint32_t c = 0; c < 4; ++c) {
    StreamItem item;
    item.task.requirements.push_back(
        ReqSpec{1 + c, 0, Privilege::read_write()});
    item.task.mapped_node = c;
    spec.stream.push_back(item);
  }
  StreamItem root;
  root.task.requirements.push_back(ReqSpec{0, 0, Privilege::read_write()});
  spec.stream.push_back(root);
  return spec;
}

TEST(Lifecycle, WarnockLiveSetCountGrowsMonotonically) {
  if (!obs::kProvenanceEnabled) GTEST_SKIP() << "provenance compiled out";
  for (const std::filesystem::path& path : corpus_files()) {
    LiveRun live = run_live(load(path), Algorithm::Warnock);
    ASSERT_NE(live.runtime, nullptr)
        << path.filename() << ": " << live.result.crash_message;
    const obs::LifecycleLedger& ledger = live.runtime->lifecycle();
    EXPECT_GT(ledger.event_count(), 0u) << path.filename();
    for (FieldID field : ledger.fields()) {
      obs::LifecycleSummary s = ledger.summary(field);
      EXPECT_EQ(s.coalesces, 0u)
          << path.filename() << " field " << field
          << ": warnock never coalesces";
      EXPECT_GT(s.creates, 0u) << path.filename() << " field " << field;
      std::uint64_t prev = 0;
      for (const obs::LifecycleEvent& ev : ledger.events(field)) {
        EXPECT_GE(ev.live_after, prev)
            << path.filename() << " field " << field << " at launch "
            << static_cast<long long>(ev.launch);
        prev = ev.live_after;
      }
      EXPECT_EQ(s.peak_live, prev)
          << path.filename() << " field " << field
          << ": monotone growth peaks at the end";
    }
  }
}

TEST(Lifecycle, RayCastDominatingWriteStrictlyReducesLiveSets) {
  if (!obs::kProvenanceEnabled) GTEST_SKIP() << "provenance compiled out";
  ProgramSpec spec = dominating_write_spec();
  const LaunchID dominating = 4; // the root read-write is the fifth launch
  LiveRun live = run_live(spec, Algorithm::RayCast);
  ASSERT_NE(live.runtime, nullptr) << live.result.crash_message;
  const obs::LifecycleLedger& ledger = live.runtime->lifecycle();
  std::vector<obs::LifecycleEvent> events = ledger.events(0);
  ASSERT_FALSE(events.empty());

  // Live count just before the dominating write's analysis.
  std::uint64_t before = 0;
  bool saw_dominating = false;
  std::uint64_t coalesce_prev = ~std::uint64_t{0};
  std::uint64_t min_during = ~std::uint64_t{0};
  std::uint64_t after = 0;
  std::size_t coalesces = 0;
  for (const obs::LifecycleEvent& ev : events) {
    if (ev.launch != dominating) {
      if (!saw_dominating) before = ev.live_after;
      continue;
    }
    saw_dominating = true;
    after = ev.live_after;
    min_during = std::min(min_during, ev.live_after);
    if (ev.kind == obs::LifecycleEventKind::Coalesce) {
      ++coalesces;
      // Each prune decrements the live count: strictly decreasing.
      EXPECT_LT(ev.live_after, coalesce_prev);
      coalesce_prev = ev.live_after;
    }
  }
  ASSERT_TRUE(saw_dominating) << "dominating write produced no events";
  EXPECT_GE(before, 2u) << "sub-block writes must split the root set";
  EXPECT_GE(coalesces, 2u) << "dominating write must prune the split sets";
  EXPECT_LT(min_during, before) << "coalescing must shrink the live set";
  EXPECT_LE(after, before);
  EXPECT_GT(ledger.summary(0).coalesces, 0u);
}

TEST(Lifecycle, LedgersAreBitIdenticalAcrossThreadCounts) {
  if (!obs::kProvenanceEnabled) GTEST_SKIP() << "provenance compiled out";
  constexpr Algorithm kSubjects[] = {Algorithm::Warnock, Algorithm::RayCast};
  for (const std::filesystem::path& path : corpus_files()) {
    ProgramSpec spec = load(path);
    for (Algorithm subject : kSubjects) {
      LiveRun sequential = run_live(spec, subject, 1);
      ASSERT_NE(sequential.runtime, nullptr)
          << path.filename() << ": " << sequential.result.crash_message;
      std::string lifecycle = sequential.runtime->lifecycle().json();
      std::string messages = sequential.runtime->message_ledger().json();
      for (unsigned threads : {2u, 8u}) {
        LiveRun parallel = run_live(spec, subject, threads);
        ASSERT_NE(parallel.runtime, nullptr)
            << path.filename() << ": " << parallel.result.crash_message;
        std::string label = std::string(path.filename()) + " on " +
                            algorithm_name(subject) + " threads=" +
                            std::to_string(threads);
        EXPECT_EQ(parallel.runtime->lifecycle().json(), lifecycle) << label;
        EXPECT_EQ(parallel.runtime->message_ledger().json(), messages)
            << label;
      }
    }
  }
}

TEST(Lifecycle, ProvenanceRecordsAreSane) {
  if (!obs::kProvenanceEnabled) GTEST_SKIP() << "provenance compiled out";
  constexpr Algorithm kSubjects[] = {Algorithm::Paint, Algorithm::Warnock,
                                     Algorithm::RayCast};
  for (const std::filesystem::path& path : corpus_files()) {
    ProgramSpec spec = load(path);
    for (Algorithm subject : kSubjects) {
      LiveRun live = run_live(spec, subject);
      ASSERT_NE(live.runtime, nullptr)
          << path.filename() << " on " << algorithm_name(subject) << ": "
          << live.result.crash_message;
      const Runtime& rt = *live.runtime;
      const DepGraph& deps = rt.dep_graph();
      std::string label =
          std::string(path.filename()) + " on " + algorithm_name(subject);
      EXPECT_GT(deps.provenance_count(), 0u) << label;
      EXPECT_LE(deps.provenance_count(), deps.edge_count()) << label;
#if VISRT_PROVENANCE
      std::size_t annotated = 0;
      for (LaunchID to = 0; to < deps.task_count(); ++to) {
        for (LaunchID from : deps.preds(to)) {
          const obs::EdgeProvenance* p = deps.provenance(from, to);
          if (p == nullptr) continue; // replayed trace edges carry none
          ++annotated;
          EXPECT_EQ(p->engine, static_cast<std::uint8_t>(subject)) << label;
          EXPECT_FALSE(describe_provenance(*p, rt.forest()).empty()) << label;
        }
      }
      EXPECT_GT(annotated, 0u) << label;
#endif
    }
  }
}

TEST(Lifecycle, ProvenanceOffByDefault) {
  // Without RuntimeConfig::provenance the ledgers stay empty and no edge
  // is annotated, at any VISRT_PROVENANCE setting.
  ProgramSpec spec = dominating_write_spec();
  LiveRunOptions options;
  options.provenance = false;
  LiveRun live = run_program_live(spec, options);
  ASSERT_NE(live.runtime, nullptr) << live.result.crash_message;
  EXPECT_EQ(live.runtime->lifecycle().event_count(), 0u);
  EXPECT_FALSE(live.runtime->lifecycle().enabled());
  EXPECT_FALSE(live.runtime->message_ledger().enabled());
  EXPECT_EQ(live.runtime->dep_graph().provenance_count(), 0u);
}

} // namespace
} // namespace visrt::fuzz
