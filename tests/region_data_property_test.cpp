// Randomized property tests for RegionData<T> against a std::map model —
// the region-with-values algebra underlying every engine.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "region/region_data.h"

namespace visrt {
namespace {

using Model = std::map<coord_t, double>;

IntervalSet random_domain(Rng& rng, coord_t universe) {
  std::vector<Interval> ivs;
  int n = static_cast<int>(rng.below(5)) + 1;
  for (int i = 0; i < n; ++i) {
    coord_t lo = rng.range(0, universe - 1);
    ivs.push_back(Interval{lo, std::min(lo + rng.range(0, 20), universe - 1)});
  }
  return IntervalSet::from_intervals(std::move(ivs));
}

RegionData<double> from_model(const IntervalSet& dom, const Model& m) {
  return RegionData<double>::generate(dom, [&m](coord_t p) {
    auto it = m.find(p);
    return it != m.end() ? it->second : 0.0;
  });
}

Model to_model(const RegionData<double>& r) {
  Model m;
  r.for_each([&m](coord_t p, const double& v) { m[p] = v; });
  return m;
}

class RegionDataProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegionDataProperty, OperationsMatchMapModel) {
  Rng rng(GetParam());
  constexpr coord_t kUniverse = 120;
  for (int round = 0; round < 25; ++round) {
    IntervalSet da = random_domain(rng, kUniverse);
    IntervalSet db = random_domain(rng, kUniverse);
    Model ma, mb;
    da.for_each_point(
        [&](coord_t p) { ma[p] = static_cast<double>(rng.range(-50, 50)); });
    db.for_each_point(
        [&](coord_t p) { mb[p] = static_cast<double>(rng.range(-50, 50)); });
    RegionData<double> a = from_model(da, ma);
    RegionData<double> b = from_model(db, mb);

    // restricted: keep a's values on da ∩ db.
    {
      Model expect;
      for (const auto& [p, v] : ma)
        if (mb.count(p)) expect[p] = v;
      EXPECT_EQ(to_model(a.restricted(db)), expect);
    }
    // subtracted: keep a's values off db.
    {
      Model expect;
      for (const auto& [p, v] : ma)
        if (!mb.count(p)) expect[p] = v;
      EXPECT_EQ(to_model(a.subtracted(db)), expect);
    }
    // overwrite_from: b's values win on the overlap, domain unchanged.
    {
      RegionData<double> c = a;
      c.overwrite_from(b);
      Model expect = ma;
      for (auto& [p, v] : expect)
        if (mb.count(p)) v = mb[p];
      EXPECT_EQ(to_model(c), expect);
    }
    // fold_from with +: pointwise sum on the overlap.
    {
      RegionData<double> c = a;
      c.fold_from([](double x, double v) { return x + v; }, b);
      Model expect = ma;
      for (auto& [p, v] : expect)
        if (mb.count(p)) v += mb[p];
      EXPECT_EQ(to_model(c), expect);
    }
    // merged_with: union domain, b's values win.
    {
      Model expect = ma;
      for (const auto& [p, v] : mb) expect[p] = v;
      EXPECT_EQ(to_model(a.merged_with(b)), expect);
    }
    // round trip: restricted + subtracted partitions a exactly.
    {
      Model got = to_model(a.restricted(db));
      Model rest = to_model(a.subtracted(db));
      got.insert(rest.begin(), rest.end());
      EXPECT_EQ(got, ma);
    }
  }
}

TEST_P(RegionDataProperty, PaintIdentityFromPaper) {
  // The paper's read-write paint step R := (R (+) R')/R equals
  // overwrite_from (Section 5's algebra).
  Rng rng(GetParam() ^ 0x9999);
  constexpr coord_t kUniverse = 100;
  for (int round = 0; round < 15; ++round) {
    IntervalSet da = random_domain(rng, kUniverse);
    IntervalSet db = random_domain(rng, kUniverse);
    RegionData<double> r = RegionData<double>::generate(
        da, [&rng](coord_t) { return static_cast<double>(rng.range(0, 9)); });
    RegionData<double> rp = RegionData<double>::generate(
        db, [&rng](coord_t) { return static_cast<double>(rng.range(10, 19)); });
    RegionData<double> lhs = r.merged_with(rp).restricted(r.domain());
    RegionData<double> rhs = r;
    rhs.overwrite_from(rp);
    EXPECT_EQ(lhs, rhs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionDataProperty,
                         ::testing::Values(11, 222, 3333, 44444));

} // namespace
} // namespace visrt
