// Tests for runtime/runtime.h: the end-to-end façade — launches, implicit
// communication, the work graph, DCR, and statistics.
#include "runtime/runtime.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "realm/reduction_ops.h"

namespace visrt {
namespace {

RuntimeConfig make_config(Algorithm algorithm, std::uint32_t nodes,
                          bool dcr = false, bool values = true) {
  RuntimeConfig cfg;
  cfg.algorithm = algorithm;
  cfg.dcr = dcr;
  cfg.track_values = values;
  cfg.machine.num_nodes = nodes;
  return cfg;
}

TEST(Runtime, SingleTaskRoundTrip) {
  Runtime rt(make_config(Algorithm::RayCast, 1));
  RegionHandle r = rt.create_region(IntervalSet(0, 9), "r");
  FieldID f = rt.add_field(r, "f", 1.0);
  rt.launch(TaskLaunch{
      "double",
      {RegionReq{r, f, Privilege::read_write()}},
      [](TaskContext& ctx) {
        ctx.data(0).for_each([](coord_t, double& v) { v *= 2.0; });
      },
      0,
      10});
  RegionData<double> out = rt.observe(r, f);
  out.for_each([](coord_t, const double& v) { EXPECT_EQ(v, 2.0); });
}

TEST(Runtime, FieldInitializerPerPoint) {
  Runtime rt(make_config(Algorithm::Warnock, 1));
  RegionHandle r = rt.create_region(IntervalSet(0, 9), "r");
  FieldID f = rt.add_field(r, "f",
                           [](coord_t p) { return static_cast<double>(p); });
  RegionData<double> out = rt.observe(r, f);
  out.for_each([](coord_t p, const double& v) {
    EXPECT_EQ(v, static_cast<double>(p));
  });
}

TEST(Runtime, DependentTasksThroughDifferentPartitions) {
  Runtime rt(make_config(Algorithm::RayCast, 2));
  RegionHandle r = rt.create_region(IntervalSet(0, 19), "r");
  PartitionHandle halves = rt.create_partition(
      r, {IntervalSet(0, 9), IntervalSet(10, 19)}, "halves");
  PartitionHandle shifted = rt.create_partition(
      r, {IntervalSet(5, 14)}, "shifted");
  FieldID f = rt.add_field(r, "f", 0.0);

  // Writers fill the two halves on different nodes.
  for (std::uint32_t i = 0; i < 2; ++i) {
    rt.launch(TaskLaunch{
        "write",
        {RegionReq{rt.subregion(halves, i), f, Privilege::read_write()}},
        [](TaskContext& ctx) {
          ctx.data(0).for_each(
              [](coord_t p, double& v) { v = static_cast<double>(p); });
        },
        static_cast<NodeID>(i),
        10});
  }
  // Reader sees both writes through a different partition.
  LaunchID reader = rt.launch(TaskLaunch{
      "read",
      {RegionReq{rt.subregion(shifted, 0), f, Privilege::read()}},
      [](TaskContext& ctx) {
        ctx.data(0).for_each([](coord_t p, const double& v) {
          EXPECT_EQ(v, static_cast<double>(p));
        });
      },
      0,
      10});
  EXPECT_TRUE(rt.dep_graph().has_edge(0, reader));
  EXPECT_TRUE(rt.dep_graph().has_edge(1, reader));

  // The cross-node write must have produced a real copy message of 8 bytes
  // per element fetched from node 1.
  EXPECT_GT(rt.work_graph().total_message_bytes(), 0u);
}

TEST(Runtime, ReductionsFoldAcrossNodes) {
  Runtime rt(make_config(Algorithm::RayCast, 3));
  RegionHandle r = rt.create_region(IntervalSet(0, 9), "r");
  FieldID f = rt.add_field(r, "f", 10.0);
  for (std::uint32_t i = 0; i < 3; ++i) {
    rt.launch(TaskLaunch{
        "reduce",
        {RegionReq{r, f, Privilege::reduce(kRedopSum)}},
        [](TaskContext& ctx) {
          ctx.data(0).for_each([](coord_t, double& v) { v += 1.0; });
        },
        static_cast<NodeID>(i),
        10});
  }
  RegionData<double> out = rt.observe(r, f);
  out.for_each([](coord_t, const double& v) { EXPECT_EQ(v, 13.0); });
}

TEST(Runtime, StatsReportIterationsAndLaunches) {
  Runtime rt(make_config(Algorithm::RayCast, 2));
  RegionHandle r = rt.create_region(IntervalSet(0, 9), "r");
  FieldID f = rt.add_field(r, "f", 0.0);
  for (int iter = 0; iter < 3; ++iter) {
    for (std::uint32_t i = 0; i < 2; ++i) {
      rt.launch(TaskLaunch{
          "t",
          {RegionReq{r, f, i == 0 ? Privilege::read()
                                  : Privilege::read()}},
          nullptr,
          static_cast<NodeID>(i),
          5});
    }
    rt.end_iteration();
  }
  RunStats stats = rt.finish();
  EXPECT_EQ(stats.iterations, 3u);
  EXPECT_EQ(stats.launches, 6u);
  EXPECT_GT(stats.total_time_s, 0.0);
  EXPECT_GT(stats.init_time_s, 0.0);
  EXPECT_LE(stats.init_time_s, stats.total_time_s);
  EXPECT_GT(stats.steady_iter_s, 0.0);
}

TEST(Runtime, AnalysisOnlyModeSkipsBodies) {
  Runtime rt(make_config(Algorithm::RayCast, 1, false, /*values=*/false));
  RegionHandle r = rt.create_region(IntervalSet(0, 9), "r");
  FieldID f = rt.add_field(r, "f", 0.0);
  bool body_ran = false;
  rt.launch(TaskLaunch{
      "t",
      {RegionReq{r, f, Privilege::read_write()}},
      [&body_ran](TaskContext&) { body_ran = true; },
      0,
      10});
  EXPECT_FALSE(body_ran);
  EXPECT_THROW(rt.observe(r, f), ApiError);
}

TEST(Runtime, DcrProducesSameDependencesAndValues) {
  for (Algorithm algo : {Algorithm::Warnock, Algorithm::RayCast}) {
    Runtime plain(make_config(algo, 4, /*dcr=*/false));
    Runtime dcr(make_config(algo, 4, /*dcr=*/true));
    for (Runtime* rt : {&plain, &dcr}) {
      RegionHandle r = rt->create_region(IntervalSet(0, 39), "r");
      PartitionHandle p = rt->create_partition(
          r,
          {IntervalSet(0, 9), IntervalSet(10, 19), IntervalSet(20, 29),
           IntervalSet(30, 39)},
          "p");
      PartitionHandle g = rt->create_partition(
          r,
          {IntervalSet(8, 12), IntervalSet(18, 22), IntervalSet(28, 32),
           IntervalSet{{0, 2}, {38, 39}}},
          "g");
      FieldID f = rt->add_field(r, "f", 0.0);
      for (int iter = 0; iter < 2; ++iter) {
        for (std::uint32_t i = 0; i < 4; ++i) {
          rt->launch(TaskLaunch{
              "w",
              {RegionReq{rt->subregion(p, i), f, Privilege::read_write()}},
              [](TaskContext& ctx) {
                ctx.data(0).for_each([](coord_t, double& v) { v += 1; });
              },
              static_cast<NodeID>(i),
              10});
        }
        for (std::uint32_t i = 0; i < 4; ++i) {
          rt->launch(TaskLaunch{
              "red",
              {RegionReq{rt->subregion(g, i), f,
                         Privilege::reduce(kRedopSum)}},
              [](TaskContext& ctx) {
                ctx.data(0).for_each([](coord_t, double& v) { v += 2; });
              },
              static_cast<NodeID>(i),
              10});
        }
        rt->end_iteration();
      }
    }
    // Same dependence structure…
    ASSERT_EQ(plain.dep_graph().task_count(), dcr.dep_graph().task_count());
    for (LaunchID i = 0; i < plain.dep_graph().task_count(); ++i) {
      auto a = plain.dep_graph().preds(i);
      auto b = dcr.dep_graph().preds(i);
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << algorithm_name(algo) << " launch " << i;
    }
    // …and identical final data.
    RegionHandle pr = RegionHandle{0}, dr = RegionHandle{0};
    EXPECT_EQ(plain.observe(pr, 0), dcr.observe(dr, 0));
  }
}

TEST(Runtime, NoDcrAnalysisConcentratesOnNodeZero) {
  // Without DCR, all Analysis compute ops are placed on node 0 or on
  // metadata owners; the launch-issue chain in particular lives on node 0.
  Runtime rt(make_config(Algorithm::RayCast, 4, /*dcr=*/false));
  RegionHandle r = rt.create_region(IntervalSet(0, 39), "r");
  PartitionHandle p = rt.create_partition(
      r,
      {IntervalSet(0, 9), IntervalSet(10, 19), IntervalSet(20, 29),
       IntervalSet(30, 39)},
      "p");
  FieldID f = rt.add_field(r, "f", 0.0);
  for (std::uint32_t i = 0; i < 4; ++i) {
    rt.launch(TaskLaunch{
        "w",
        {RegionReq{rt.subregion(p, i), f, Privilege::read_write()}},
        nullptr,
        static_cast<NodeID>(i),
        10});
  }
  const sim::WorkGraph& g = rt.work_graph();
  std::size_t runtime_ops_node0 = 0, runtime_ops_elsewhere = 0;
  for (sim::OpID id = 0; id < g.size(); ++id) {
    const sim::Op& op = g.op(id);
    if (op.kind == sim::OpKind::Compute &&
        op.category == static_cast<std::uint8_t>(sim::OpCategory::Runtime)) {
      (op.node == 0 ? runtime_ops_node0 : runtime_ops_elsewhere)++;
    }
  }
  EXPECT_GT(runtime_ops_node0, 0u);
  EXPECT_EQ(runtime_ops_elsewhere, 0u);
}

TEST(Runtime, DcrDistributesAnalysis) {
  Runtime rt(make_config(Algorithm::RayCast, 4, /*dcr=*/true));
  RegionHandle r = rt.create_region(IntervalSet(0, 39), "r");
  PartitionHandle p = rt.create_partition(
      r,
      {IntervalSet(0, 9), IntervalSet(10, 19), IntervalSet(20, 29),
       IntervalSet(30, 39)},
      "p");
  FieldID f = rt.add_field(r, "f", 0.0);
  for (std::uint32_t i = 0; i < 4; ++i) {
    rt.launch(TaskLaunch{
        "w",
        {RegionReq{rt.subregion(p, i), f, Privilege::read_write()}},
        nullptr,
        static_cast<NodeID>(i),
        10});
  }
  const sim::WorkGraph& g = rt.work_graph();
  std::set<NodeID> issue_nodes;
  for (sim::OpID id = 0; id < g.size(); ++id) {
    const sim::Op& op = g.op(id);
    if (op.kind == sim::OpKind::Compute &&
        op.category == static_cast<std::uint8_t>(sim::OpCategory::Runtime)) {
      issue_nodes.insert(op.node);
    }
  }
  EXPECT_EQ(issue_nodes.size(), 4u);
}

TEST(Runtime, LaunchValidation) {
  Runtime rt(make_config(Algorithm::RayCast, 2));
  RegionHandle r = rt.create_region(IntervalSet(0, 9), "r");
  FieldID f = rt.add_field(r, "f", 0.0);
  EXPECT_THROW(rt.launch(TaskLaunch{"empty", {}, nullptr, 0, 0}), ApiError);
  EXPECT_THROW(rt.launch(TaskLaunch{
                   "badnode",
                   {RegionReq{r, f, Privilege::read()}},
                   nullptr,
                   7,
                   0}),
               ApiError);
  EXPECT_THROW(rt.launch(TaskLaunch{
                   "badfield",
                   {RegionReq{r, 42, Privilege::read()}},
                   nullptr,
                   0,
                   0}),
               ApiError);
}

TEST(Runtime, FieldsOnlyOnRoots) {
  Runtime rt(make_config(Algorithm::RayCast, 1));
  RegionHandle r = rt.create_region(IntervalSet(0, 9), "r");
  PartitionHandle p =
      rt.create_partition(r, {IntervalSet(0, 4), IntervalSet(5, 9)}, "p");
  EXPECT_THROW(rt.add_field(rt.subregion(p, 0), "f", 0.0), ApiError);
}

} // namespace
} // namespace visrt
