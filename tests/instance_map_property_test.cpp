// Randomized property tests for realm/instance_map.h against a simple
// model: after any sequence of reads/writes/reductions,
//   - every requested read is fully covered by planned copies plus local
//     validity,
//   - at least one node holds a valid copy of every point,
//   - pending reductions never target points a later write overwrote.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "realm/instance_map.h"

namespace visrt {
namespace {

IntervalSet random_sub(Rng& rng, coord_t universe) {
  coord_t lo = rng.range(0, universe - 2);
  return IntervalSet(lo, lo + rng.range(0, (universe - 1 - lo) / 2));
}

class InstanceMapProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(InstanceMapProperty, InvariantsHoldUnderRandomTraffic) {
  Rng rng(GetParam());
  constexpr coord_t kUniverse = 200;
  constexpr std::uint32_t kNodes = 4;
  IntervalSet domain(0, kUniverse - 1);
  InstanceMap map(kNodes, 0, domain);

  // Model: the set of valid points per node (validity only; values are the
  // engines' business).
  std::vector<IntervalSet> model(kNodes, domain);

  for (int step = 0; step < 300; ++step) {
    NodeID node = static_cast<NodeID>(rng.below(kNodes));
    IntervalSet sub = random_sub(rng, kUniverse);
    double roll = rng.uniform();
    if (roll < 0.45) {
      // Read: plan must cover exactly the points missing at `node`, and
      // every copy source must be valid there per the model.
      IntervalSet missing = sub.subtract(model[node]);
      auto plans = map.plan_read(node, sub);
      IntervalSet copied;
      for (const CopyPlan& p : plans) {
        EXPECT_EQ(p.dst, node);
        if (p.kind == CopyPlan::Kind::Copy) {
          EXPECT_TRUE(model[p.src].contains(p.points))
              << "copy from a stale source";
          copied = copied.unite(p.points);
        }
      }
      EXPECT_EQ(copied, missing);
      model[node] = model[node].unite(sub);
      // ApplyReduction plans change values: points become valid only at
      // the reader.
      for (const CopyPlan& p : plans) {
        if (p.kind == CopyPlan::Kind::ApplyReduction) {
          for (NodeID n = 0; n < kNodes; ++n) {
            if (n != node) model[n] = model[n].subtract(p.points);
          }
        }
      }
    } else if (roll < 0.8) {
      map.record_write(node, sub);
      for (NodeID n = 0; n < kNodes; ++n) {
        model[n] = n == node ? model[n].unite(sub) : model[n].subtract(sub);
      }
    } else {
      map.record_reduction(node, sub, 1);
    }

    // Global invariants.
    IntervalSet anywhere;
    for (NodeID n = 0; n < kNodes; ++n) {
      EXPECT_EQ(map.valid_at(n), model[n]) << "node " << n << " step "
                                           << step;
      anywhere = anywhere.unite(map.valid_at(n));
    }
    EXPECT_EQ(anywhere, domain) << "some points valid nowhere";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InstanceMapProperty,
                         ::testing::Values(5, 77, 901, 20240707));

} // namespace
} // namespace visrt
