// Integration tests: each benchmark application, on every optimized
// algorithm, with and without DCR, validates bit-for-bit (or within the
// documented painter reduction-commutation tolerance) against its serial
// reference — the end-to-end proof that the coherence machinery delivers
// apparently-sequential semantics to real workloads.
#include <gtest/gtest.h>

#include "apps/circuit.h"
#include "apps/pennant.h"
#include "apps/stencil.h"

namespace visrt {
namespace {

struct AppParam {
  Algorithm algorithm;
  bool dcr;
};

RuntimeConfig app_config(const AppParam& p, std::uint32_t nodes) {
  RuntimeConfig cfg;
  cfg.algorithm = p.algorithm;
  cfg.dcr = p.dcr;
  cfg.track_values = true;
  cfg.machine.num_nodes = nodes;
  return cfg;
}

/// The painter may commute same-operator reduction folds (see DESIGN.md);
/// everything else must match bitwise.
double tolerance_for(Algorithm a) {
  return (a == Algorithm::Paint) ? 1e-9 : 0.0;
}

class AppValidation : public ::testing::TestWithParam<AppParam> {};

TEST_P(AppValidation, Stencil) {
  Runtime rt(app_config(GetParam(), 4));
  apps::StencilConfig cfg;
  cfg.pieces_x = 2;
  cfg.pieces_y = 2;
  cfg.tile_rows = 8;
  cfg.tile_cols = 12;
  cfg.iterations = 3;
  apps::StencilApp app(rt, cfg);
  app.run();
  EXPECT_TRUE(app.validate()) << algorithm_name(GetParam().algorithm);
  RunStats stats = rt.finish();
  EXPECT_EQ(stats.iterations, 3u);
  // 3 iterations x (stencil + add) x 4 pieces, plus the two observation
  // launches made by validate().
  EXPECT_EQ(stats.launches, 3u * 2u * 4u + 2u);
}

TEST_P(AppValidation, Circuit) {
  Runtime rt(app_config(GetParam(), 4));
  apps::CircuitConfig cfg;
  cfg.pieces = 4;
  cfg.nodes_per_piece = 16;
  cfg.wires_per_piece = 24;
  cfg.iterations = 3;
  apps::CircuitApp app(rt, cfg);
  app.run();
  EXPECT_TRUE(app.validate(tolerance_for(GetParam().algorithm)))
      << algorithm_name(GetParam().algorithm);
}

TEST_P(AppValidation, Pennant) {
  Runtime rt(app_config(GetParam(), 4));
  apps::PennantConfig cfg;
  cfg.pieces_x = 2;
  cfg.pieces_y = 2;
  cfg.zones_per_piece_x = 5;
  cfg.zones_per_piece_y = 5;
  cfg.iterations = 3;
  apps::PennantApp app(rt, cfg);
  app.run();
  EXPECT_TRUE(app.validate(tolerance_for(GetParam().algorithm)))
      << algorithm_name(GetParam().algorithm);
  EXPECT_GT(app.last_dt(), 0.0);
}

std::string app_param_name(const ::testing::TestParamInfo<AppParam>& info) {
  std::string name = algorithm_name(info.param.algorithm);
  for (char& c : name)
    if (c == '-') c = '_';
  return name + (info.param.dcr ? "_dcr" : "_nodcr");
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, AppValidation,
    ::testing::Values(AppParam{Algorithm::Paint, false},
                      AppParam{Algorithm::Warnock, false},
                      AppParam{Algorithm::Warnock, true},
                      AppParam{Algorithm::RayCast, false},
                      AppParam{Algorithm::RayCast, true},
                      AppParam{Algorithm::NaivePaint, false},
                      AppParam{Algorithm::NaiveWarnock, false},
                      AppParam{Algorithm::NaiveRayCast, false},
                      AppParam{Algorithm::Reference, false}),
    app_param_name);

TEST(AppScaling, StencilSinglePiece) {
  // Degenerate single-piece configs must still work.
  RuntimeConfig cfg;
  cfg.machine.num_nodes = 1;
  Runtime rt(cfg);
  apps::StencilConfig scfg;
  scfg.pieces_x = 1;
  scfg.pieces_y = 1;
  scfg.tile_rows = 12;
  scfg.tile_cols = 16;
  scfg.iterations = 2;
  apps::StencilApp app(rt, scfg);
  app.run();
  EXPECT_TRUE(app.validate());
}

TEST(AppScaling, CircuitSinglePiece) {
  RuntimeConfig cfg;
  cfg.machine.num_nodes = 1;
  Runtime rt(cfg);
  apps::CircuitConfig ccfg;
  ccfg.pieces = 1;
  ccfg.nodes_per_piece = 12;
  ccfg.wires_per_piece = 20;
  ccfg.iterations = 2;
  apps::CircuitApp app(rt, ccfg);
  app.run();
  EXPECT_TRUE(app.validate());
}

TEST(AppScaling, PennantSinglePiece) {
  RuntimeConfig cfg;
  cfg.machine.num_nodes = 1;
  Runtime rt(cfg);
  apps::PennantConfig pcfg;
  pcfg.pieces_x = 1;
  pcfg.pieces_y = 1;
  pcfg.zones_per_piece_x = 6;
  pcfg.zones_per_piece_y = 6;
  pcfg.iterations = 2;
  apps::PennantApp app(rt, pcfg);
  app.run();
  EXPECT_TRUE(app.validate());
}

TEST(AppScaling, MorePiecesThanNodes) {
  // Pieces wrap around nodes (8 pieces on 2 nodes).
  RuntimeConfig cfg;
  cfg.machine.num_nodes = 2;
  Runtime rt(cfg);
  apps::CircuitConfig ccfg;
  ccfg.pieces = 8;
  ccfg.nodes_per_piece = 8;
  ccfg.wires_per_piece = 12;
  ccfg.iterations = 2;
  apps::CircuitApp app(rt, ccfg);
  app.run();
  EXPECT_TRUE(app.validate());
}

} // namespace
} // namespace visrt
