// Tests for region/region_data.h: the paper's region algebra over values.
#include "region/region_data.h"

#include <gtest/gtest.h>

namespace visrt {
namespace {

TEST(RegionData, FilledAndAt) {
  auto r = RegionData<double>::filled(IntervalSet{{0, 2}, {10, 11}}, 7.0);
  EXPECT_EQ(r.volume(), 5);
  EXPECT_EQ(r.at(0), 7.0);
  EXPECT_EQ(r.at(11), 7.0);
  r.at(10) = 3.0;
  EXPECT_EQ(r.at(10), 3.0);
  EXPECT_EQ(r.at(11), 7.0);
}

TEST(RegionData, GenerateUsesPointValues) {
  auto r = RegionData<double>::generate(
      IntervalSet{{5, 7}, {20, 20}},
      [](coord_t p) { return static_cast<double>(p * 2); });
  EXPECT_EQ(r.at(5), 10.0);
  EXPECT_EQ(r.at(7), 14.0);
  EXPECT_EQ(r.at(20), 40.0);
}

TEST(RegionData, RestrictedKeepsValues) {
  auto r = RegionData<double>::generate(
      IntervalSet(0, 9), [](coord_t p) { return static_cast<double>(p); });
  auto sub = r.restricted(IntervalSet{{2, 4}, {8, 12}});
  EXPECT_EQ(sub.domain(), (IntervalSet{{2, 4}, {8, 9}}));
  EXPECT_EQ(sub.at(3), 3.0);
  EXPECT_EQ(sub.at(9), 9.0);
}

TEST(RegionData, SubtractedKeepsValues) {
  auto r = RegionData<double>::generate(
      IntervalSet(0, 9), [](coord_t p) { return static_cast<double>(p); });
  auto sub = r.subtracted(IntervalSet(3, 6));
  EXPECT_EQ(sub.domain(), (IntervalSet{{0, 2}, {7, 9}}));
  EXPECT_EQ(sub.at(2), 2.0);
  EXPECT_EQ(sub.at(7), 7.0);
}

TEST(RegionData, OverwriteFromTakesSourceValuesOnOverlap) {
  auto dst = RegionData<double>::filled(IntervalSet(0, 9), 1.0);
  auto src = RegionData<double>::filled(IntervalSet(5, 14), 2.0);
  dst.overwrite_from(src);
  EXPECT_EQ(dst.domain(), IntervalSet(0, 9)); // domain unchanged
  EXPECT_EQ(dst.at(4), 1.0);
  EXPECT_EQ(dst.at(5), 2.0);
  EXPECT_EQ(dst.at(9), 2.0);
}

TEST(RegionData, FoldFromAppliesPointwise) {
  auto dst = RegionData<double>::filled(IntervalSet(0, 9), 10.0);
  auto src = RegionData<double>::generate(
      IntervalSet(3, 12), [](coord_t p) { return static_cast<double>(p); });
  dst.fold_from([](double x, double v) { return x + v; }, src);
  EXPECT_EQ(dst.at(2), 10.0);
  EXPECT_EQ(dst.at(3), 13.0);
  EXPECT_EQ(dst.at(9), 19.0);
}

TEST(RegionData, MergedWithPrefersOtherValues) {
  auto a = RegionData<double>::filled(IntervalSet(0, 5), 1.0);
  auto b = RegionData<double>::filled(IntervalSet(4, 9), 2.0);
  auto m = a.merged_with(b);
  EXPECT_EQ(m.domain(), IntervalSet(0, 9));
  EXPECT_EQ(m.at(3), 1.0);
  EXPECT_EQ(m.at(4), 2.0); // other wins on overlap
  EXPECT_EQ(m.at(9), 2.0);
}

TEST(RegionData, MergedWithDisjointFragments) {
  auto a = RegionData<double>::filled(IntervalSet{{0, 1}, {6, 7}}, 1.0);
  auto b = RegionData<double>::filled(IntervalSet(3, 4), 2.0);
  auto m = a.merged_with(b);
  EXPECT_EQ(m.domain(), (IntervalSet{{0, 1}, {3, 4}, {6, 7}}));
  EXPECT_EQ(m.at(0), 1.0);
  EXPECT_EQ(m.at(3), 2.0);
  EXPECT_EQ(m.at(7), 1.0);
}

TEST(RegionData, EqualityIsDomainAndValues) {
  auto a = RegionData<double>::filled(IntervalSet(0, 3), 1.0);
  auto b = RegionData<double>::filled(IntervalSet(0, 3), 1.0);
  EXPECT_EQ(a, b);
  b.at(2) = 9.0;
  EXPECT_FALSE(a == b);
  auto c = RegionData<double>::filled(IntervalSet(0, 4), 1.0);
  EXPECT_FALSE(a == c);
}

TEST(RegionData, ForEachVisitsInOrder) {
  auto r = RegionData<double>::generate(
      IntervalSet{{0, 1}, {5, 5}},
      [](coord_t p) { return static_cast<double>(p); });
  std::vector<coord_t> pts;
  std::vector<double> vals;
  r.for_each([&](coord_t p, double& v) {
    pts.push_back(p);
    vals.push_back(v);
  });
  EXPECT_EQ(pts, (std::vector<coord_t>{0, 1, 5}));
  EXPECT_EQ(vals, (std::vector<double>{0.0, 1.0, 5.0}));
}

TEST(RegionData, PaperAlgebraIdentity) {
  // (R (+) R')/R == overwrite_from on the shared domain, values from R'.
  auto r = RegionData<double>::filled(IntervalSet(0, 9), 0.0);
  auto rp = RegionData<double>::generate(
      IntervalSet(4, 14), [](coord_t p) { return static_cast<double>(p); });
  auto merged_then_restricted = rp.merged_with(RegionData<double>{})
                                    .merged_with(rp); // rp itself
  auto lhs = r.merged_with(rp).restricted(r.domain());
  auto rhs = r;
  rhs.overwrite_from(rp);
  EXPECT_EQ(lhs, rhs);
  (void)merged_then_restricted;
}

TEST(RegionDataDeathTest, AtOutsideDomainAborts) {
  auto r = RegionData<double>::filled(IntervalSet(0, 3), 1.0);
  EXPECT_DEATH({ (void)r.at(10); }, "outside domain");
}

} // namespace
} // namespace visrt
