// Tests for Runtime::index_launch — one point task per partition color.
#include <gtest/gtest.h>

#include "common/check.h"
#include "realm/reduction_ops.h"
#include "runtime/runtime.h"

namespace visrt {
namespace {

RuntimeConfig make_config(std::uint32_t nodes) {
  RuntimeConfig cfg;
  cfg.machine.num_nodes = nodes;
  return cfg;
}

TEST(IndexLaunch, OnePointTaskPerColor) {
  Runtime rt(make_config(2));
  RegionHandle r = rt.create_region(IntervalSet(0, 29), "r");
  PartitionHandle p = rt.create_partition(
      r, {IntervalSet(0, 9), IntervalSet(10, 19), IntervalSet(20, 29)}, "p");
  FieldID f = rt.add_field(r, "f", 0.0);

  IndexLaunch launch;
  launch.name = "fill";
  launch.requirements = {IndexReq{p, f, Privilege::read_write()}};
  launch.work_items = 10;
  launch.fn = [](TaskContext& ctx, std::size_t color) {
    ctx.data(0).for_each([color](coord_t, double& v) {
      v = static_cast<double>(color + 1);
    });
  };
  std::vector<LaunchID> ids = rt.index_launch(launch);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0] + 1, ids[1]);
  EXPECT_EQ(ids[1] + 1, ids[2]);

  RegionData<double> out = rt.observe(r, f);
  EXPECT_EQ(out.at(5), 1.0);
  EXPECT_EQ(out.at(15), 2.0);
  EXPECT_EQ(out.at(25), 3.0);
}

TEST(IndexLaunch, MultiplePartitionsZippedByColor) {
  // The paper's `t1(P[i], G[i])` loop as one index launch.
  Runtime rt(make_config(3));
  RegionHandle r = rt.create_region(IntervalSet(0, 29), "r");
  PartitionHandle p = rt.create_partition(
      r, {IntervalSet(0, 9), IntervalSet(10, 19), IntervalSet(20, 29)}, "p");
  PartitionHandle g = rt.create_partition(
      r, {IntervalSet(10, 11), IntervalSet{{8, 9}, {20, 21}},
          IntervalSet(18, 19)},
      "g");
  FieldID f = rt.add_field(r, "f", 0.0);

  IndexLaunch launch;
  launch.name = "t1";
  launch.requirements = {IndexReq{p, f, Privilege::read_write()},
                         IndexReq{g, f, Privilege::reduce(kRedopSum)}};
  launch.fn = [](TaskContext& ctx, std::size_t) {
    ctx.data(0).for_each([](coord_t, double& v) { v += 1.0; });
    ctx.data(1).for_each([](coord_t, double& v) { v += 10.0; });
  };
  rt.index_launch(launch);

  RegionData<double> out = rt.observe(r, f);
  EXPECT_EQ(out.at(0), 1.0);   // written only
  EXPECT_EQ(out.at(10), 11.0); // written by p[1], reduced via g[0]
  EXPECT_EQ(out.at(8), 11.0);  // written by p[0], reduced via g[1]
}

TEST(IndexLaunch, DefaultMappingRoundRobins) {
  Runtime rt(make_config(2));
  RegionHandle r = rt.create_region(IntervalSet(0, 39), "r");
  PartitionHandle p = rt.create_partition(
      r,
      {IntervalSet(0, 9), IntervalSet(10, 19), IntervalSet(20, 29),
       IntervalSet(30, 39)},
      "p");
  FieldID f = rt.add_field(r, "f", 0.0);

  IndexLaunch launch;
  launch.name = "w";
  launch.requirements = {IndexReq{p, f, Privilege::read_write()}};
  rt.index_launch(launch);

  // Execution ops alternate between the two nodes.
  const sim::WorkGraph& g = rt.work_graph();
  std::vector<NodeID> exec_nodes;
  for (sim::OpID id = 0; id < g.size(); ++id) {
    const sim::Op& op = g.op(id);
    if (op.kind == sim::OpKind::Compute &&
        op.category == static_cast<std::uint8_t>(sim::OpCategory::TaskExec))
      exec_nodes.push_back(op.node);
  }
  EXPECT_EQ(exec_nodes, (std::vector<NodeID>{0, 1, 0, 1}));
}

TEST(IndexLaunch, CustomMapping) {
  Runtime rt(make_config(4));
  RegionHandle r = rt.create_region(IntervalSet(0, 19), "r");
  PartitionHandle p = rt.create_partition(
      r, {IntervalSet(0, 9), IntervalSet(10, 19)}, "p");
  FieldID f = rt.add_field(r, "f", 0.0);

  IndexLaunch launch;
  launch.name = "w";
  launch.requirements = {IndexReq{p, f, Privilege::read_write()}};
  launch.mapping = [](std::size_t) { return NodeID{3}; };
  rt.index_launch(launch);

  const sim::WorkGraph& g = rt.work_graph();
  for (sim::OpID id = 0; id < g.size(); ++id) {
    const sim::Op& op = g.op(id);
    if (op.kind == sim::OpKind::Compute &&
        op.category ==
            static_cast<std::uint8_t>(sim::OpCategory::TaskExec)) {
      EXPECT_EQ(op.node, 3u);
    }
  }
}

TEST(IndexLaunch, MismatchedColorCountsRejected) {
  Runtime rt(make_config(1));
  RegionHandle r = rt.create_region(IntervalSet(0, 29), "r");
  PartitionHandle p3 = rt.create_partition(
      r, {IntervalSet(0, 9), IntervalSet(10, 19), IntervalSet(20, 29)},
      "p3");
  PartitionHandle p2 =
      rt.create_partition(r, {IntervalSet(0, 14), IntervalSet(15, 29)}, "p2");
  FieldID f = rt.add_field(r, "f", 0.0);

  IndexLaunch launch;
  launch.name = "bad";
  launch.requirements = {IndexReq{p3, f, Privilege::read()},
                         IndexReq{p2, f, Privilege::read()}};
  EXPECT_THROW(rt.index_launch(launch), ApiError);
  EXPECT_THROW(rt.index_launch(IndexLaunch{}), ApiError);
}

TEST(IndexLaunch, EquivalentToManualLoop) {
  auto run = [](bool use_index) {
    Runtime rt(make_config(3));
    RegionHandle r = rt.create_region(IntervalSet(0, 29), "r");
    PartitionHandle p = rt.create_partition(
        r, {IntervalSet(0, 9), IntervalSet(10, 19), IntervalSet(20, 29)},
        "p");
    FieldID f = rt.add_field(r, "f", 1.0);
    auto body = [](TaskContext& ctx, std::size_t color) {
      ctx.data(0).for_each([color](coord_t pt, double& v) {
        v = v * 2 + static_cast<double>(color) + static_cast<double>(pt % 3);
      });
    };
    if (use_index) {
      IndexLaunch launch;
      launch.name = "k";
      launch.requirements = {IndexReq{p, f, Privilege::read_write()}};
      launch.fn = body;
      rt.index_launch(launch);
    } else {
      for (std::size_t color = 0; color < 3; ++color) {
        rt.launch(TaskLaunch{
            "k",
            {RegionReq{rt.subregion(p, color), f, Privilege::read_write()}},
            [body, color](TaskContext& ctx) { body(ctx, color); },
            static_cast<NodeID>(color % 3),
            0});
      }
    }
    return rt.observe(r, f);
  };
  EXPECT_EQ(run(true), run(false));
}

} // namespace
} // namespace visrt
