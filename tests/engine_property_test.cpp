// Randomized cross-algorithm property tests: every engine must agree with
// the sequential oracle on
//   (1) materialized values (apparently-sequential semantics, Section 3.1),
//   (2) dependence soundness — every interfering pair of launches is
//       transitively ordered in the engine's dependence DAG, and
//   (3) dependence precision — every direct edge the engine reports is a
//       truly interfering pair (no false direct dependences).
//
// Program generation is delegated to the fuzzing subsystem's generator
// (src/fuzz) — the single random-program code path shared with the
// visrt_fuzz driver: random region-tree forests (disjoint/aliased ×
// complete/incomplete partitions, nesting, image/preimage), multiple
// fields, individual and index launches, random privileges and reduction
// operators.  This test drives the *engine layer* directly through the
// expanded launch stream; visrt_fuzz covers the full Runtime stack.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine_harness.h"
#include "fuzz/generator.h"

namespace visrt {
namespace {

using testing::EngineHarness;

/// One generated program lowered to engine-level launches.
struct GeneratedProgram {
  fuzz::ProgramSpec spec;
  fuzz::BuiltForest built;
  std::vector<fuzz::ExpandedLaunch> launches;

  explicit GeneratedProgram(std::uint64_t seed) {
    Rng rng(seed);
    fuzz::GeneratorOptions options;
    options.randomize_config = false; // the test fixes the subject itself
    spec = fuzz::generate_program(rng, options);
    fuzz::build_forest(spec, built);
    launches = fuzz::expand_stream(spec);
  }

  std::vector<Requirement> requirements(const fuzz::ExpandedLaunch& l) const {
    std::vector<Requirement> reqs;
    for (const fuzz::ReqSpec& r : l.requirements) {
      Requirement req;
      req.region = built.regions[r.region];
      req.field = r.field;
      req.privilege = r.privilege;
      reqs.push_back(req);
    }
    return reqs;
  }

  void init_fields(EngineHarness& harness) const {
    for (std::size_t f = 0; f < spec.fields.size(); ++f) {
      const fuzz::FieldSpec& field = spec.fields[f];
      RegionHandle root = built.regions[field.tree];
      coord_t mod = field.init_mod;
      harness.init_field(root, static_cast<FieldID>(f),
                         RegionData<double>::generate(
                             built.forest.domain(root), [mod](coord_t p) {
                               return static_cast<double>(p % mod);
                             }));
    }
  }
};

/// The canonical deterministic body from the fuzz IR.
testing::Body make_body(const fuzz::ExpandedLaunch& launch, LaunchID id) {
  return [reqs = launch.requirements, salt = launch.salt,
          id](std::vector<RegionData<double>>& bufs) {
    std::vector<RegionData<double>*> ptrs;
    for (RegionData<double>& buf : bufs) ptrs.push_back(&buf);
    fuzz::apply_task_body(reqs, ptrs, id, salt);
  };
}

/// Interference between two launches' requirement lists (precise, per
/// point): true when some pair of requirements on the same field overlaps
/// with interfering privileges.
bool launches_interfere(const RegionTreeForest& forest,
                        const std::vector<Requirement>& a,
                        const std::vector<Requirement>& b) {
  for (const Requirement& ra : a) {
    for (const Requirement& rb : b) {
      if (ra.field != rb.field) continue;
      if (!interferes(ra.privilege, rb.privilege)) continue;
      if (forest.domain(ra.region).overlaps(forest.domain(rb.region)))
        return true;
    }
  }
  return false;
}

using PropertyParam = std::tuple<Algorithm, std::uint64_t>;

class EngineProperty : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(EngineProperty, AgreesWithSequentialOracle) {
  auto [algorithm, seed] = GetParam();
  GeneratedProgram prog(seed);

  EngineHarness subject(algorithm, &prog.built.forest);
  EngineHarness oracle(Algorithm::Reference, &prog.built.forest);
  prog.init_fields(subject);
  prog.init_fields(oracle);

  std::vector<std::vector<Requirement>> launched;
  for (const fuzz::ExpandedLaunch& launch : prog.launches) {
    LaunchID id = subject.next_launch();
    std::vector<Requirement> reqs = prog.requirements(launch);
    testing::Body body = make_body(launch, id);
    auto got = subject.run(reqs, body, launch.mapped_node, /*analysis=*/0);
    auto want = oracle.run(reqs, body, launch.mapped_node, 0);

    // (1) Values: identical materialization for every requirement.
    ASSERT_EQ(got.materialized.size(), want.materialized.size());
    for (std::size_t i = 0; i < got.materialized.size(); ++i) {
      EXPECT_EQ(got.materialized[i], want.materialized[i])
          << algorithm_name(algorithm) << " diverged at launch " << id
          << " requirement " << i << " (" << to_string(reqs[i].privilege)
          << " on " << prog.built.forest.name(reqs[i].region) << ")";
    }

    // (3) Precision: every direct dependence is a real interference.
    for (LaunchID d : got.dependences) {
      EXPECT_TRUE(launches_interfere(prog.built.forest, launched[d], reqs))
          << algorithm_name(algorithm) << ": false dependence " << d
          << " -> " << id;
    }
    launched.push_back(std::move(reqs));
  }

  // (2) Soundness: all interfering pairs are transitively ordered.
  const DepGraph& d = subject.deps();
  for (LaunchID i = 0; i < launched.size(); ++i) {
    for (LaunchID j = i + 1; j < launched.size(); ++j) {
      if (launches_interfere(prog.built.forest, launched[i], launched[j])) {
        EXPECT_TRUE(d.reaches(i, j))
            << algorithm_name(algorithm) << ": missed ordering " << i
            << " before " << j;
      }
    }
  }
}

TEST_P(EngineProperty, AnalysisOnlyModeMatchesDependences) {
  // With value tracking off (benchmark mode) the dependence DAG must be
  // identical to the tracked run.
  auto [algorithm, seed] = GetParam();
  if (algorithm == Algorithm::Reference) GTEST_SKIP();
  GeneratedProgram prog(seed ^ 0x5eed);

  EngineHarness tracked(algorithm, &prog.built.forest, /*track_values=*/true);
  EngineHarness untracked(algorithm, &prog.built.forest,
                          /*track_values=*/false);
  prog.init_fields(tracked);
  for (std::size_t f = 0; f < prog.spec.fields.size(); ++f)
    untracked.init_field(prog.built.regions[prog.spec.fields[f].tree],
                         static_cast<FieldID>(f), RegionData<double>{});

  for (const fuzz::ExpandedLaunch& launch : prog.launches) {
    LaunchID id = tracked.next_launch();
    std::vector<Requirement> reqs = prog.requirements(launch);
    auto a = tracked.run(reqs, make_body(launch, id), launch.mapped_node, 0);
    auto b = untracked.run(reqs, nullptr, launch.mapped_node, 0);
    EXPECT_EQ(a.dependences, b.dependences)
        << algorithm_name(algorithm) << " launch " << id;
  }
}

std::string param_name(const ::testing::TestParamInfo<PropertyParam>& info) {
  std::string name = algorithm_name(std::get<0>(info.param));
  for (char& c : name)
    if (c == '-') c = '_';
  return name + "_seed" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Streams, EngineProperty,
    ::testing::Combine(
        ::testing::Values(Algorithm::NaivePaint, Algorithm::NaiveWarnock,
                          Algorithm::NaiveRayCast, Algorithm::Paint,
                          Algorithm::Warnock, Algorithm::RayCast),
        ::testing::Values<std::uint64_t>(1, 7, 42, 99, 1234, 777777)),
    param_name);

} // namespace
} // namespace visrt
