// Randomized cross-algorithm property tests: every engine must agree with
// the sequential oracle on
//   (1) materialized values (apparently-sequential semantics, Section 3.1),
//   (2) dependence soundness — every interfering pair of launches is
//       transitively ordered in the engine's dependence DAG, and
//   (3) dependence precision — every direct edge the engine reports is a
//       truly interfering pair (no false direct dependences).
//
// Streams are generated over the paper's region structure (a disjoint
// complete primary partition, an aliased incomplete ghost partition, and a
// nested partition) with random privileges, reduction operators and
// task bodies.  Values are integer-valued doubles so sum/min/max folds are
// exact and order-insensitive for same-operator groups.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "engine_harness.h"
#include "realm/reduction_ops.h"

namespace visrt {
namespace {

using testing::EngineHarness;

struct RandomProgram {
  RegionTreeForest forest;
  RegionHandle root;
  std::vector<RegionHandle> regions; // candidate task arguments
  std::vector<FieldID> fields{0, 1};

  explicit RandomProgram(Rng& rng) {
    constexpr coord_t kSize = 160;
    root = forest.create_root(IntervalSet(0, kSize - 1), "A");
    regions.push_back(root);

    // Primary partition: 4 disjoint complete pieces.
    std::vector<IntervalSet> primary;
    for (coord_t i = 0; i < 4; ++i)
      primary.push_back(IntervalSet(i * 40, i * 40 + 39));
    PartitionHandle p =
        forest.create_partition(root, std::move(primary), "P");
    for (std::size_t i = 0; i < 4; ++i)
      regions.push_back(forest.subregion(p, i));

    // Ghost partition: random aliased blocks (possibly overlapping).
    std::vector<IntervalSet> ghost;
    for (int i = 0; i < 4; ++i) {
      coord_t lo = rng.range(0, kSize - 20);
      coord_t hi = lo + rng.range(5, 30);
      ghost.push_back(IntervalSet(lo, std::min(hi, kSize - 1)));
    }
    PartitionHandle g = forest.create_partition(root, std::move(ghost), "G");
    for (std::size_t i = 0; i < 4; ++i)
      regions.push_back(forest.subregion(g, i));

    // Nested partition under P[0].
    PartitionHandle nested = forest.create_partition(
        forest.subregion(p, 0), {IntervalSet(0, 19), IntervalSet(20, 39)},
        "P0sub");
    regions.push_back(forest.subregion(nested, 0));
    regions.push_back(forest.subregion(nested, 1));
  }
};

struct StreamOp {
  std::vector<Requirement> reqs;
  NodeID mapped;
};

std::vector<StreamOp> random_stream(RandomProgram& prog, Rng& rng,
                                    int length) {
  std::vector<StreamOp> stream;
  for (int t = 0; t < length; ++t) {
    StreamOp op;
    op.mapped = static_cast<NodeID>(rng.below(4));
    int nreqs = rng.chance(0.4) ? 2 : 1;
    for (int r = 0; r < nreqs; ++r) {
      Requirement req;
      req.region = prog.regions[rng.below(prog.regions.size())];
      // Two requirements of one task use distinct fields (the paper's
      // restriction on aliased interfering arguments, Section 4).
      req.field = nreqs == 2 ? static_cast<FieldID>(r)
                             : prog.fields[rng.below(2)];
      double roll = rng.uniform();
      if (roll < 0.3) {
        req.privilege = Privilege::read();
      } else if (roll < 0.6) {
        req.privilege = Privilege::read_write();
      } else {
        static const ReductionOpID ops[3] = {kRedopSum, kRedopMin,
                                             kRedopMax};
        req.privilege = Privilege::reduce(ops[rng.below(3)]);
      }
      op.reqs.push_back(req);
    }
    stream.push_back(std::move(op));
  }
  return stream;
}

/// Deterministic task body keyed by launch id: writes and reductions use
/// integer values so every fold is exact.
testing::Body make_body(const std::vector<Requirement>& reqs, LaunchID id) {
  return [reqs, id](std::vector<RegionData<double>>& bufs) {
    for (std::size_t i = 0; i < bufs.size(); ++i) {
      const Privilege& priv = reqs[i].privilege;
      if (priv.is_write()) {
        bufs[i].for_each([&](coord_t p, double& v) {
          v = static_cast<double>((p * 7 + static_cast<coord_t>(id) * 13 +
                                   static_cast<coord_t>(i)) %
                                  1001);
        });
      } else if (priv.is_reduce()) {
        const ReductionOp& op = reduction_op(priv.redop);
        bufs[i].for_each([&](coord_t p, double& v) {
          double contribution = static_cast<double>(
              (p * 3 + static_cast<coord_t>(id) * 5) % 97);
          v = op.fold(contribution, v);
        });
      }
      // Reads leave the buffer untouched.
    }
  };
}

/// Interference between two launches' requirement lists (precise, per
/// point): true when some pair of requirements on the same field overlaps
/// with interfering privileges.
bool launches_interfere(const RegionTreeForest& forest,
                        const std::vector<Requirement>& a,
                        const std::vector<Requirement>& b) {
  for (const Requirement& ra : a) {
    for (const Requirement& rb : b) {
      if (ra.field != rb.field) continue;
      if (!interferes(ra.privilege, rb.privilege)) continue;
      if (forest.domain(ra.region).overlaps(forest.domain(rb.region)))
        return true;
    }
  }
  return false;
}

using PropertyParam = std::tuple<Algorithm, std::uint64_t>;

class EngineProperty : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(EngineProperty, AgreesWithSequentialOracle) {
  auto [algorithm, seed] = GetParam();
  Rng rng(seed);
  RandomProgram prog(rng);
  auto stream = random_stream(prog, rng, 50);

  EngineHarness subject(algorithm, &prog.forest);
  EngineHarness oracle(Algorithm::Reference, &prog.forest);
  for (FieldID f : prog.fields) {
    auto init = RegionData<double>::generate(
        prog.forest.domain(prog.root),
        [](coord_t p) { return static_cast<double>(p % 11); });
    subject.init_field(prog.root, f, init);
    oracle.init_field(prog.root, f, init);
  }

  std::vector<std::vector<Requirement>> launched;
  for (const StreamOp& op : stream) {
    LaunchID id = subject.next_launch();
    testing::Body body = make_body(op.reqs, id);
    auto got = subject.run(op.reqs, body, op.mapped, /*analysis=*/0);
    auto want = oracle.run(op.reqs, body, op.mapped, 0);

    // (1) Values: identical materialization for every requirement.
    ASSERT_EQ(got.materialized.size(), want.materialized.size());
    for (std::size_t i = 0; i < got.materialized.size(); ++i) {
      EXPECT_EQ(got.materialized[i], want.materialized[i])
          << algorithm_name(algorithm) << " diverged at launch " << id
          << " requirement " << i << " (" << to_string(op.reqs[i].privilege)
          << " on " << prog.forest.name(op.reqs[i].region) << ")";
    }

    // (3) Precision: every direct dependence is a real interference.
    for (LaunchID d : got.dependences) {
      EXPECT_TRUE(
          launches_interfere(prog.forest, launched[d], op.reqs))
          << algorithm_name(algorithm) << ": false dependence " << d
          << " -> " << id;
    }
    launched.push_back(op.reqs);
  }

  // (2) Soundness: all interfering pairs are transitively ordered.
  const DepGraph& d = subject.deps();
  for (LaunchID i = 0; i < launched.size(); ++i) {
    for (LaunchID j = i + 1; j < launched.size(); ++j) {
      if (launches_interfere(prog.forest, launched[i], launched[j])) {
        EXPECT_TRUE(d.reaches(i, j))
            << algorithm_name(algorithm) << ": missed ordering " << i
            << " before " << j;
      }
    }
  }
}

TEST_P(EngineProperty, AnalysisOnlyModeMatchesDependences) {
  // With value tracking off (benchmark mode) the dependence DAG must be
  // identical to the tracked run.
  auto [algorithm, seed] = GetParam();
  if (algorithm == Algorithm::Reference) GTEST_SKIP();
  Rng rng(seed ^ 0x5eed);
  RandomProgram prog(rng);
  auto stream = random_stream(prog, rng, 40);

  EngineHarness tracked(algorithm, &prog.forest, /*track_values=*/true);
  EngineHarness untracked(algorithm, &prog.forest, /*track_values=*/false);
  for (FieldID f : prog.fields) {
    tracked.init_field(prog.root, f,
                       RegionData<double>::filled(
                           prog.forest.domain(prog.root), 0.0));
    untracked.init_field(prog.root, f, RegionData<double>{});
  }

  for (const StreamOp& op : stream) {
    LaunchID id = tracked.next_launch();
    auto a = tracked.run(op.reqs, make_body(op.reqs, id), op.mapped, 0);
    auto b = untracked.run(op.reqs, nullptr, op.mapped, 0);
    EXPECT_EQ(a.dependences, b.dependences)
        << algorithm_name(algorithm) << " launch " << id;
  }
}

std::string param_name(const ::testing::TestParamInfo<PropertyParam>& info) {
  std::string name = algorithm_name(std::get<0>(info.param));
  for (char& c : name)
    if (c == '-') c = '_';
  return name + "_seed" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Streams, EngineProperty,
    ::testing::Combine(
        ::testing::Values(Algorithm::NaivePaint, Algorithm::NaiveWarnock,
                          Algorithm::NaiveRayCast, Algorithm::Paint,
                          Algorithm::Warnock, Algorithm::RayCast),
        ::testing::Values<std::uint64_t>(1, 7, 42, 99, 1234, 777777)),
    param_name);

} // namespace
} // namespace visrt
