// Tests for visibility/privilege.h: the interference relation of Section 4.
#include "visibility/privilege.h"

#include <gtest/gtest.h>

namespace visrt {
namespace {

TEST(Privilege, Constructors) {
  EXPECT_TRUE(Privilege::read().is_read());
  EXPECT_TRUE(Privilege::read_write().is_write());
  Privilege r = Privilege::reduce(3);
  EXPECT_TRUE(r.is_reduce());
  EXPECT_EQ(r.redop, 3u);
}

TEST(Privilege, ReadReadDoesNotInterfere) {
  EXPECT_FALSE(interferes(Privilege::read(), Privilege::read()));
}

TEST(Privilege, SameReductionDoesNotInterfere) {
  EXPECT_FALSE(interferes(Privilege::reduce(1), Privilege::reduce(1)));
}

TEST(Privilege, DifferentReductionsInterfere) {
  EXPECT_TRUE(interferes(Privilege::reduce(1), Privilege::reduce(2)));
}

TEST(Privilege, WritesInterfereWithEverything) {
  Privilege w = Privilege::read_write();
  EXPECT_TRUE(interferes(w, Privilege::read()));
  EXPECT_TRUE(interferes(w, w));
  EXPECT_TRUE(interferes(w, Privilege::reduce(1)));
}

TEST(Privilege, ReadVsReduceInterferes) {
  EXPECT_TRUE(interferes(Privilege::read(), Privilege::reduce(1)));
  EXPECT_TRUE(interferes(Privilege::reduce(1), Privilege::read()));
}

TEST(Privilege, InterferenceIsSymmetric) {
  std::vector<Privilege> all{Privilege::read(), Privilege::read_write(),
                             Privilege::reduce(1), Privilege::reduce(2)};
  for (const Privilege& a : all)
    for (const Privilege& b : all)
      EXPECT_EQ(interferes(a, b), interferes(b, a));
}

TEST(Privilege, ToString) {
  EXPECT_EQ(to_string(Privilege::read()), "read");
  EXPECT_EQ(to_string(Privilege::read_write()), "read-write");
  EXPECT_EQ(to_string(Privilege::reduce(4)), "reduce#4");
}

} // namespace
} // namespace visrt
