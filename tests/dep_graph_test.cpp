// Tests for visibility/dep_graph.h.
#include "visibility/dep_graph.h"

#include <gtest/gtest.h>

#include "common/check.h"

#include <array>

namespace visrt {
namespace {

TEST(DepGraph, EmptyGraph) {
  DepGraph g;
  EXPECT_EQ(g.task_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.critical_path(), 0u);
}

TEST(DepGraph, ChainCriticalPath) {
  DepGraph g;
  for (LaunchID i = 0; i < 5; ++i) {
    g.add_task(i);
    if (i > 0) g.add_edges(i, std::array{i - 1});
  }
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.critical_path(), 5u);
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(3, 2));
  EXPECT_TRUE(g.reaches(0, 4));
  EXPECT_FALSE(g.reaches(4, 0));
}

TEST(DepGraph, ParallelTasksShortCriticalPath) {
  DepGraph g;
  g.add_task(0);
  for (LaunchID i = 1; i <= 8; ++i) {
    g.add_task(i);
    g.add_edges(i, std::array{LaunchID{0}});
  }
  EXPECT_EQ(g.critical_path(), 2u);
  EXPECT_FALSE(g.reaches(1, 2)); // siblings unordered
}

TEST(DepGraph, TransitiveReachability) {
  DepGraph g;
  for (LaunchID i = 0; i < 6; ++i) g.add_task(i);
  g.add_edges(2, std::array{LaunchID{0}});
  g.add_edges(4, std::array{LaunchID{2}});
  g.add_edges(5, std::array{LaunchID{4}, LaunchID{1}});
  EXPECT_TRUE(g.reaches(0, 5));
  EXPECT_TRUE(g.reaches(1, 5));
  EXPECT_FALSE(g.reaches(3, 5));
  EXPECT_FALSE(g.reaches(0, 1));
}

TEST(DepGraph, DuplicateEdgesIgnored) {
  DepGraph g;
  g.add_task(0);
  g.add_task(1);
  g.add_edges(1, std::array{LaunchID{0}});
  g.add_edges(1, std::array{LaunchID{0}});
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(DepGraph, ForwardEdgeRejected) {
  DepGraph g;
  g.add_task(0);
  g.add_task(1);
  EXPECT_THROW(g.add_edges(0, std::array{LaunchID{1}}), ApiError);
  EXPECT_THROW(g.add_edges(1, std::array{LaunchID{1}}), ApiError);
}

TEST(DepGraph, OutOfOrderRegistrationRejected) {
  DepGraph g;
  g.add_task(0);
  EXPECT_THROW(g.add_task(2), ApiError);
}

} // namespace
} // namespace visrt
