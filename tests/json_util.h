// tests/json_util.h
//
// Minimal recursive-descent JSON parser used by the telemetry tests to
// validate emitted metrics files and Chrome traces without an external
// JSON dependency.  Strict enough to reject the malformed output a buggy
// serializer would produce (trailing commas, unbalanced braces, bare
// words); not a general-purpose library.
#pragma once

#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace visrt::testjson {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
public:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v =
      nullptr;

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v); }
  bool is_bool() const { return std::holds_alternative<bool>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  bool is_array() const { return std::holds_alternative<Array>(v); }
  bool is_object() const { return std::holds_alternative<Object>(v); }

  // Accessors throw std::bad_variant_access on a type mismatch, which
  // surfaces as a test failure with a stack trace.
  bool boolean() const { return std::get<bool>(v); }
  double number() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
  const Array& array() const { return std::get<Array>(v); }
  const Object& object() const { return std::get<Object>(v); }

  bool has(const std::string& key) const {
    return is_object() && object().count(key) > 0;
  }
  const Value& at(const std::string& key) const { return object().at(key); }
};

namespace detail {

class Parser {
public:
  explicit Parser(std::string_view text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  std::optional<Value> parse() {
    Value v;
    skip_ws();
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (p_ != end_) return std::nullopt; // trailing garbage
    return v;
  }

private:
  void skip_ws() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r'))
      ++p_;
  }

  bool consume(char c) {
    if (p_ == end_ || *p_ != c) return false;
    ++p_;
    return true;
  }

  bool literal(std::string_view word) {
    if (static_cast<std::size_t>(end_ - p_) < word.size()) return false;
    if (std::string_view(p_, word.size()) != word) return false;
    p_ += word.size();
    return true;
  }

  bool parse_value(Value& out) {
    if (p_ == end_) return false;
    switch (*p_) {
    case '{': return parse_object(out);
    case '[': return parse_array(out);
    case '"': {
      std::string s;
      if (!parse_string(s)) return false;
      out.v = std::move(s);
      return true;
    }
    case 't':
      if (!literal("true")) return false;
      out.v = true;
      return true;
    case 'f':
      if (!literal("false")) return false;
      out.v = false;
      return true;
    case 'n':
      if (!literal("null")) return false;
      out.v = nullptr;
      return true;
    default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    if (!consume('{')) return false;
    Object obj;
    skip_ws();
    if (consume('}')) {
      out.v = std::move(obj);
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      obj.emplace(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      return false;
    }
    out.v = std::move(obj);
    return true;
  }

  bool parse_array(Value& out) {
    if (!consume('[')) return false;
    Array arr;
    skip_ws();
    if (consume(']')) {
      out.v = std::move(arr);
      return true;
    }
    for (;;) {
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      arr.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      return false;
    }
    out.v = std::move(arr);
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (p_ == end_) return false;
      char esc = *p_++;
      switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (end_ - p_ < 4) return false;
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          char h = *p_++;
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f')
            code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F')
            code |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        // UTF-8 encode the BMP code point (surrogate pairs are not
        // combined; the serializers under test never emit them).
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xE0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        break;
      }
      default: return false;
      }
    }
    return consume('"');
  }

  bool parse_number(Value& out) {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    bool digits = false;
    while (p_ != end_ && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' ||
                          *p_ == 'e' || *p_ == 'E' || *p_ == '-' ||
                          *p_ == '+'))
      digits |= (*p_ >= '0' && *p_ <= '9'), ++p_;
    if (!digits) return false;
    std::string text(start, static_cast<std::size_t>(p_ - start));
    char* parse_end = nullptr;
    double value = std::strtod(text.c_str(), &parse_end);
    if (parse_end != text.c_str() + text.size()) return false;
    out.v = value;
    return true;
  }

  const char* p_;
  const char* end_;
};

} // namespace detail

/// Parse a complete JSON document; nullopt on any syntax error.
inline std::optional<Value> parse(std::string_view text) {
  return detail::Parser(text).parse();
}

} // namespace visrt::testjson
