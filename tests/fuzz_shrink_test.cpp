// The delta-debugging shrinker: a synthetic engine bug (injected behind a
// test-only tuning flag) planted in a 40-launch stream must minimize to a
// handful of launches, and the minimized repro must still fail after a
// round-trip through the .visprog format.
#include <gtest/gtest.h>

#include "common/check.h"
#include "fuzz/oracle.h"
#include "fuzz/serialize.h"
#include "fuzz/shrink.h"
#include "realm/reduction_ops.h"

namespace visrt::fuzz {
namespace {

/// 40 launches, two of which matter: launch 20 commits a reduction to a
/// two-interval subregion (the injected paint bug drops such entries) and
/// launch 30 reads it back through the root.  Everything else is filler
/// traffic on a second field.
ProgramSpec forty_launch_failure() {
  ProgramSpec spec;
  spec.num_nodes = 2;
  spec.subject = Algorithm::Paint;
  spec.tracing = false;
  spec.tuning.inject_paint_reduce_bug = true;
  spec.trees.push_back(TreeSpec{"A", 160});
  // Region table: r0 = A, r1..r4 = P children, r5..r6 = G children.
  spec.partitions.push_back(PartitionSpec{
      "P", 0,
      {IntervalSet(0, 39), IntervalSet(40, 79), IntervalSet(80, 119),
       IntervalSet(120, 159)}});
  spec.partitions.push_back(PartitionSpec{
      "G", 0,
      {IntervalSet{Interval{0, 9}, Interval{80, 89}}, IntervalSet(40, 49)}});
  spec.fields.push_back(FieldSpec{"f0", 0, 11});
  spec.fields.push_back(FieldSpec{"f1", 0, 7});

  for (int i = 0; i < 40; ++i) {
    StreamItem item;
    item.kind = StreamItem::Kind::Task;
    item.task.mapped_node = static_cast<NodeID>(i % 2);
    item.task.salt = static_cast<std::uint64_t>(i);
    if (i == 20) {
      item.task.requirements.push_back(
          ReqSpec{5, 0, Privilege::reduce(kRedopSum)}); // G[0], two intervals
    } else if (i == 30) {
      item.task.requirements.push_back(ReqSpec{0, 0, Privilege::read()});
    } else {
      std::uint32_t region = 1 + static_cast<std::uint32_t>(i % 4);
      Privilege priv =
          i % 3 == 0 ? Privilege::read() : Privilege::read_write();
      item.task.requirements.push_back(ReqSpec{region, 1, priv});
    }
    spec.stream.push_back(std::move(item));
  }
  return spec;
}

TEST(FuzzShrink, MinimizesInjectedBugToAFewLaunches) {
  ProgramSpec spec = forty_launch_failure();
  ASSERT_EQ(expand_stream(spec).size(), 40u);

  DiffReport report = check_program(spec);
  ASSERT_TRUE(report) << "injected bug not detected";
  ASSERT_EQ(report.kind, FailureKind::Value) << report.detail;

  ShrinkResult shrunk = shrink_program(spec, report);
  EXPECT_EQ(shrunk.kind, FailureKind::Value);
  EXPECT_GT(shrunk.accepted, 0u);
  std::size_t launches = expand_stream(shrunk.spec).size();
  EXPECT_LE(launches, 6u) << to_visprog(shrunk.spec);
  // The reduce and the read that exposes it cannot be removed.
  EXPECT_GE(launches, 2u);
  // Minimization must not strip the trigger: the failure reproduces.
  DiffReport again = check_program(shrunk.spec);
  EXPECT_EQ(again.kind, FailureKind::Value) << to_visprog(shrunk.spec);
}

TEST(FuzzShrink, MinimizedReproRoundTripsThroughVisprog) {
  ProgramSpec spec = forty_launch_failure();
  DiffReport report = check_program(spec);
  ASSERT_TRUE(report);
  ShrinkResult shrunk = shrink_program(spec, report);

  std::string text = to_visprog(shrunk.spec);
  ProgramSpec reparsed = parse_visprog(text);
  EXPECT_EQ(reparsed, shrunk.spec);
  DiffReport replayed = check_program(reparsed);
  EXPECT_EQ(replayed.kind, FailureKind::Value)
      << "repro lost its failure through serialization:\n"
      << text;
}

TEST(FuzzShrink, GarbageCollectsUnusedStructure) {
  ProgramSpec spec = forty_launch_failure();
  DiffReport report = check_program(spec);
  ASSERT_TRUE(report);
  ShrinkResult shrunk = shrink_program(spec, report);
  // The filler field and the disjoint partition serve no role in the
  // failure; the table passes must have dropped them.
  EXPECT_LE(shrunk.spec.fields.size(), 1u) << to_visprog(shrunk.spec);
  EXPECT_LE(shrunk.spec.partitions.size(), 1u) << to_visprog(shrunk.spec);
  // And the config simplifications apply: one node is enough.
  EXPECT_EQ(shrunk.spec.num_nodes, 1u);
}

TEST(FuzzShrink, RequiresAFailingReport) {
  ProgramSpec spec = forty_launch_failure();
  spec.tuning.inject_paint_reduce_bug = false;
  DiffReport clean; // kind == None
  EXPECT_THROW(shrink_program(spec, clean), ApiError);
}

} // namespace
} // namespace visrt::fuzz
