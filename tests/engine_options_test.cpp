// Tests for the engines' option knobs (the ablation configurations):
// every variant must preserve the apparently-sequential semantics and the
// dependence properties; the knobs may only change *how much state/work*
// the engine uses.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine_harness.h"
#include "realm/reduction_ops.h"
#include "visibility/paint.h"
#include "visibility/raycast.h"
#include "visibility/warnock.h"

namespace visrt {
namespace {

using testing::EngineHarness;

struct Program {
  RegionTreeForest forest;
  RegionHandle root;
  std::vector<RegionHandle> primary, ghost;

  Program() {
    root = forest.create_root(IntervalSet(0, 119), "A");
    std::vector<IntervalSet> p, g;
    for (coord_t i = 0; i < 4; ++i) {
      p.push_back(IntervalSet(i * 30, i * 30 + 29));
      coord_t left = (i * 30 + 118) % 120;
      coord_t right = (i * 30 + 30) % 120;
      g.push_back(IntervalSet{{left, left + 1}, {right, right + 1}});
    }
    PartitionHandle ph = forest.create_partition(root, std::move(p), "P");
    PartitionHandle gh = forest.create_partition(root, std::move(g), "G");
    for (std::size_t i = 0; i < 4; ++i) {
      primary.push_back(forest.subregion(ph, i));
      ghost.push_back(forest.subregion(gh, i));
    }
  }
};

EngineConfig config_for(const Program& prog) {
  EngineConfig config;
  config.forest = &prog.forest;
  config.track_values = true;
  return config;
}

/// Drives the Figure-1 pattern against a configured engine and an oracle,
/// checking values at every materialization.
void check_against_oracle(CoherenceEngine& engine, Program& prog,
                          int iterations) {
  EngineConfig oc = config_for(prog);
  auto oracle = make_engine(Algorithm::Reference, oc);
  auto init = RegionData<double>::generate(
      prog.forest.domain(prog.root),
      [](coord_t p) { return static_cast<double>(p % 13); });
  engine.initialize_field(prog.root, 0, init, 0);
  oracle->initialize_field(prog.root, 0, init, 0);

  LaunchID next = 0;
  auto run = [&](CoherenceEngine& e, const Requirement& req, LaunchID id,
                 NodeID node) {
    AnalysisContext ctx{id, node, 0};
    MaterializeResult mr = e.materialize(req, ctx);
    if (req.privilege.is_write()) {
      mr.data.for_each([&](coord_t p, double& v) {
        v = static_cast<double>((p * 3 + static_cast<coord_t>(id)) % 50);
      });
    } else if (req.privilege.is_reduce()) {
      mr.data.for_each([&](coord_t p, double& v) {
        v += static_cast<double>((p + static_cast<coord_t>(id)) % 7);
      });
    }
    e.commit(req, mr.data, ctx);
    return mr;
  };

  for (int iter = 0; iter < iterations; ++iter) {
    for (std::size_t i = 0; i < 4; ++i) {
      LaunchID id = next++;
      Requirement rw{prog.primary[i], 0, Privilege::read_write()};
      auto a = run(engine, rw, id, static_cast<NodeID>(i));
      auto b = run(*oracle, rw, id, static_cast<NodeID>(i));
      EXPECT_EQ(a.data, b.data) << "rw materialize diverged, launch " << id;
      // The oracle reports every interfering prior; optimized engines may
      // omit transitively-implied ones, so only subset-ness is checked
      // here (full soundness is covered by engine_property_test).
      for (LaunchID d : a.dependences) {
        EXPECT_TRUE(std::binary_search(b.dependences.begin(),
                                       b.dependences.end(), d));
      }
    }
    for (std::size_t i = 0; i < 4; ++i) {
      LaunchID id = next++;
      Requirement red{prog.ghost[i], 0, Privilege::reduce(kRedopSum)};
      auto a = run(engine, red, id, static_cast<NodeID>(i));
      auto b = run(*oracle, red, id, static_cast<NodeID>(i));
      for (LaunchID d : a.dependences) {
        EXPECT_TRUE(std::binary_search(b.dependences.begin(),
                                       b.dependences.end(), d));
      }
    }
  }
  // Final read of everything.
  LaunchID id = next++;
  Requirement all{prog.root, 0, Privilege::read()};
  AnalysisContext ctx{id, 0, 0};
  MaterializeResult a = engine.materialize(all, ctx);
  MaterializeResult b = oracle->materialize(all, ctx);
  EXPECT_EQ(a.data, b.data) << "final read diverged";
}

TEST(EngineOptions, RayCastWithoutDominatingWritesIsCorrect) {
  Program prog;
  RayCastEngine::Options options;
  options.dominating_writes = false;
  RayCastEngine engine(config_for(prog), options);
  check_against_oracle(engine, prog, 3);
}

TEST(EngineOptions, RayCastKdFallbackIsCorrect) {
  Program prog;
  RayCastEngine::Options options;
  options.force_kd_fallback = true;
  RayCastEngine engine(config_for(prog), options);
  check_against_oracle(engine, prog, 3);
}

TEST(EngineOptions, WarnockWithoutMemoizationIsCorrect) {
  Program prog;
  WarnockEngine::Options options;
  options.memoize = false;
  WarnockEngine engine(config_for(prog), options);
  check_against_oracle(engine, prog, 3);
}

TEST(EngineOptions, PaintWithoutOcclusionPruningIsCorrect) {
  Program prog;
  PaintEngine::Options options;
  options.occlusion_pruning = false;
  PaintEngine engine(config_for(prog), options);
  check_against_oracle(engine, prog, 3);
}

TEST(EngineOptions, DominatingWritesBoundLiveSets) {
  // With coalescing, the live-set count returns to the primary-piece count
  // after every write phase; without it, refinements accumulate.
  Program prog;
  EngineConfig config = config_for(prog);
  config.track_values = false;

  RayCastEngine with(config, RayCastEngine::Options{});
  RayCastEngine::Options off;
  off.dominating_writes = false;
  RayCastEngine without(config, off);
  with.initialize_field(prog.root, 0, RegionData<double>{}, 0);
  without.initialize_field(prog.root, 0, RegionData<double>{}, 0);

  LaunchID next = 0;
  auto iteration = [&](CoherenceEngine& e, LaunchID base) {
    LaunchID id = base;
    for (std::size_t i = 0; i < 4; ++i) {
      AnalysisContext ctx{id++, static_cast<NodeID>(i), 0};
      Requirement rw{prog.primary[i], 0, Privilege::read_write()};
      e.commit(rw, e.materialize(rw, ctx).data, ctx);
    }
    for (std::size_t i = 0; i < 4; ++i) {
      AnalysisContext ctx{id++, static_cast<NodeID>(i), 0};
      Requirement red{prog.ghost[i], 0, Privilege::reduce(kRedopSum)};
      e.commit(red, e.materialize(red, ctx).data, ctx);
    }
    return id;
  };
  for (int iter = 0; iter < 4; ++iter) {
    LaunchID base = next;
    next = iteration(with, base);
    iteration(without, base);
  }
  // One more write phase to let coalescing do its job.
  for (std::size_t i = 0; i < 4; ++i) {
    AnalysisContext ctx{next++, static_cast<NodeID>(i), 0};
    Requirement rw{prog.primary[i], 0, Privilege::read_write()};
    with.commit(rw, with.materialize(rw, ctx).data, ctx);
    without.commit(rw, without.materialize(rw, ctx).data, ctx);
  }
  EXPECT_EQ(with.stats().live_eqsets, 4u); // exactly the P pieces
  EXPECT_GT(without.stats().live_eqsets, with.stats().live_eqsets);
}

TEST(EngineOptions, MemoizationReducesTraversalWork) {
  Program prog;
  EngineConfig config = config_for(prog);
  config.track_values = false;

  auto traversal_cost = [&](bool memoize) {
    WarnockEngine::Options options;
    options.memoize = memoize;
    WarnockEngine engine(config, options);
    engine.initialize_field(prog.root, 0, RegionData<double>{}, 0);
    LaunchID next = 0;
    std::uint64_t accel = 0;
    for (int iter = 0; iter < 4; ++iter) {
      for (std::size_t i = 0; i < 4; ++i) {
        AnalysisContext ctx{next++, static_cast<NodeID>(i), 0};
        Requirement red{prog.ghost[i], 0, Privilege::reduce(kRedopSum)};
        MaterializeResult mr = engine.materialize(red, ctx);
        for (const AnalysisStep& s : mr.steps)
          accel += s.counters.accel_nodes;
        engine.commit(red, mr.data, ctx);
      }
    }
    return accel;
  };
  EXPECT_LT(traversal_cost(true), traversal_cost(false));
}

TEST(EngineOptions, OcclusionPruningBoundsHistory) {
  Program prog;
  EngineConfig config = config_for(prog);
  config.track_values = false;

  auto history_after = [&](bool pruning) {
    PaintEngine::Options options;
    options.occlusion_pruning = pruning;
    PaintEngine engine(config, options);
    engine.initialize_field(prog.root, 0, RegionData<double>{}, 0);
    LaunchID next = 0;
    for (int iter = 0; iter < 8; ++iter) {
      for (std::size_t i = 0; i < 4; ++i) {
        AnalysisContext ctx{next++, static_cast<NodeID>(i), 0};
        Requirement rw{prog.primary[i], 0, Privilege::read_write()};
        engine.commit(rw, engine.materialize(rw, ctx).data, ctx);
      }
      for (std::size_t i = 0; i < 4; ++i) {
        AnalysisContext ctx{next++, static_cast<NodeID>(i), 0};
        Requirement red{prog.ghost[i], 0, Privilege::reduce(kRedopSum)};
        engine.commit(red, engine.materialize(red, ctx).data, ctx);
      }
    }
    return engine.stats().history_entries;
  };
  EXPECT_LT(history_after(true), history_after(false));
}

} // namespace
} // namespace visrt
