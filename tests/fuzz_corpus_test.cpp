// Replays every .visprog repro in tests/corpus/ through all six engines,
// with and without DCR, checking the full differential oracle each time.
// The corpus pins down historically interesting shapes (the paper's
// Figure 5 stream, multi-tree multi-field programs, traced index
// launches, nested/aliased partitions) so regressions fail loudly with a
// named file instead of a fuzzer seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <vector>

#include "fuzz/oracle.h"
#include "fuzz/serialize.h"

#ifndef VISRT_CORPUS_DIR
#error "VISRT_CORPUS_DIR must point at tests/corpus"
#endif

namespace visrt::fuzz {
namespace {

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(VISRT_CORPUS_DIR))
    if (entry.path().extension() == ".visprog") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FuzzCorpus, HasTheSeedRepros) {
  EXPECT_GE(corpus_files().size(), 4u)
      << "seed corpus went missing from " << VISRT_CORPUS_DIR;
}

TEST(FuzzCorpus, EveryReproPassesEveryEngine) {
  static constexpr Algorithm kSubjects[] = {
      Algorithm::Paint,        Algorithm::Warnock,
      Algorithm::RayCast,      Algorithm::NaivePaint,
      Algorithm::NaiveWarnock, Algorithm::NaiveRayCast,
  };
  for (const std::filesystem::path& path : corpus_files()) {
    std::ifstream is(path);
    ASSERT_TRUE(is) << path;
    ProgramSpec spec;
    ASSERT_NO_THROW(spec = read_visprog(is)) << path;
    for (Algorithm subject : kSubjects) {
      for (bool dcr : {false, true}) {
        ProgramSpec variant = spec;
        variant.subject = subject;
        variant.dcr = dcr;
        DiffReport report = check_program(variant);
        EXPECT_FALSE(report)
            << path.filename() << " on " << algorithm_name(subject)
            << (dcr ? "+dcr" : "") << ": "
            << failure_kind_name(report.kind) << ": " << report.detail;
      }
    }
  }
}

TEST(FuzzCorpus, SpyVerifiesEveryEngineWithoutReference) {
  // The acceptance sweep for the spy verifier: every corpus program, under
  // all six engines, with and without DCR, must emit a dependence graph
  // and DES schedule that verify sound and precise against ground truth —
  // no reference engine involved.
  static constexpr Algorithm kSubjects[] = {
      Algorithm::Paint,        Algorithm::Warnock,
      Algorithm::RayCast,      Algorithm::NaivePaint,
      Algorithm::NaiveWarnock, Algorithm::NaiveRayCast,
  };
  for (const std::filesystem::path& path : corpus_files()) {
    std::ifstream is(path);
    ASSERT_TRUE(is) << path;
    ProgramSpec spec = read_visprog(is);
    for (Algorithm subject : kSubjects) {
      for (bool dcr : {false, true}) {
        ProgramSpec variant = spec;
        variant.subject = subject;
        variant.dcr = dcr;
        SpyCheckResult result = spy_check(variant);
        ASSERT_FALSE(result.crashed)
            << path.filename() << " on " << algorithm_name(subject)
            << (dcr ? "+dcr" : "") << ": " << result.crash_message;
        EXPECT_TRUE(result.report.clean())
            << path.filename() << " on " << algorithm_name(subject)
            << (dcr ? "+dcr" : "") << ": " << result.report.summary();
      }
    }
  }
}

TEST(FuzzCorpus, LintReportsNoErrors) {
  // Corpus programs may carry lint warnings (some pin down intentionally
  // odd shapes) but must be free of outright errors.
  for (const std::filesystem::path& path : corpus_files()) {
    std::ifstream is(path);
    ProgramSpec spec = read_visprog(is);
    BuiltForest built;
    build_forest(spec, built);
    analysis::LintReport report =
        analysis::lint(built.forest, lint_events(spec, built));
    EXPECT_TRUE(report.ok()) << path.filename() << ": " << report.to_json();
  }
}

TEST(FuzzCorpus, ReprosAreCanonicallySerialized) {
  // parse -> serialize -> parse must be the identity for every corpus
  // file (comments and formatting aside, the spec is stable).
  for (const std::filesystem::path& path : corpus_files()) {
    std::ifstream is(path);
    ProgramSpec spec = read_visprog(is);
    EXPECT_EQ(parse_visprog(to_visprog(spec)), spec) << path;
  }
}

} // namespace
} // namespace visrt::fuzz
