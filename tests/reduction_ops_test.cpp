// Tests for realm/reduction_ops.h: built-ins, identities, registration.
#include "realm/reduction_ops.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/check.h"

namespace visrt {
namespace {

TEST(ReductionOps, SumHasZeroIdentity) {
  const ReductionOp& op = reduction_op(kRedopSum);
  EXPECT_EQ(op.identity, 0.0);
  EXPECT_EQ(op.fold(3.0, 4.0), 7.0);
  EXPECT_EQ(op.fold(op.identity, 42.0), 42.0);
  EXPECT_EQ(op.name, "sum");
}

TEST(ReductionOps, ProdHasOneIdentity) {
  const ReductionOp& op = reduction_op(kRedopProd);
  EXPECT_EQ(op.identity, 1.0);
  EXPECT_EQ(op.fold(3.0, 4.0), 12.0);
  EXPECT_EQ(op.fold(op.identity, 42.0), 42.0);
}

TEST(ReductionOps, MinMaxIdentities) {
  const ReductionOp& mn = reduction_op(kRedopMin);
  EXPECT_EQ(mn.identity, std::numeric_limits<double>::infinity());
  EXPECT_EQ(mn.fold(3.0, 4.0), 3.0);
  EXPECT_EQ(mn.fold(mn.identity, -5.0), -5.0);
  const ReductionOp& mx = reduction_op(kRedopMax);
  EXPECT_EQ(mx.identity, -std::numeric_limits<double>::infinity());
  EXPECT_EQ(mx.fold(3.0, 4.0), 4.0);
}

TEST(ReductionOps, UnknownIdThrows) {
  EXPECT_THROW(reduction_op(kNoReduction), ApiError);
  EXPECT_THROW(reduction_op(9999), ApiError);
}

TEST(ReductionOps, RegisterCustomOperator) {
  ReductionOpID id = register_reduction(
      0.0, [](double x, double v) { return x + 2 * v; }, "weird");
  const ReductionOp& op = reduction_op(id);
  EXPECT_EQ(op.fold(1.0, 3.0), 7.0);
  EXPECT_EQ(op.name, "weird");
  // Built-ins still resolve after registration (stable references).
  EXPECT_EQ(reduction_op(kRedopSum).fold(1.0, 1.0), 2.0);
}

TEST(ReductionOps, RegistrationRequiresFold) {
  EXPECT_THROW(register_reduction(0.0, nullptr, "nope"), ApiError);
}

} // namespace
} // namespace visrt
