// The random program generator: determinism, validity, feature coverage,
// and .visprog serialization round-trips.
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "fuzz/generator.h"
#include "fuzz/serialize.h"
#include "realm/reduction_ops.h"

namespace visrt::fuzz {
namespace {

TEST(FuzzGenerator, SameSeedSameProgram) {
  for (std::uint64_t seed : {1ULL, 42ULL, 999ULL}) {
    Rng a(seed), b(seed);
    EXPECT_EQ(generate_program(a), generate_program(b)) << "seed " << seed;
  }
  Rng a(5), b(6);
  EXPECT_NE(generate_program(a), generate_program(b));
}

TEST(FuzzGenerator, GeneratedProgramsAreValidAndBuildable) {
  std::size_t total_launches = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Rng rng(seed);
    ProgramSpec spec = generate_program(rng);
    ASSERT_NO_THROW(validate(spec)) << "seed " << seed;
    BuiltForest built;
    ASSERT_NO_THROW(build_forest(spec, built)) << "seed " << seed;
    EXPECT_EQ(built.regions.size(), region_table_size(spec));
    total_launches += expand_stream(spec).size();
  }
  EXPECT_GT(total_launches, 0u);
}

TEST(FuzzGenerator, CoversTheFeatureSpace) {
  // Over a modest seed range the generator must exercise every structural
  // and configuration feature it advertises; a silent regression to a
  // narrower space would hollow out the whole subsystem.
  bool index = false, traces = false, iterations = false, dcr = false;
  bool multi_interval = false, multi_tree = false, reduce = false;
  bool multi_req = false, tuned = false, multi_node = false;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    ProgramSpec spec = generate_program(rng);
    dcr |= spec.dcr;
    multi_tree |= spec.trees.size() > 1;
    multi_node |= spec.num_nodes > 1;
    tuned |= !(spec.tuning == EngineTuning{});
    for (const PartitionSpec& part : spec.partitions)
      for (const IntervalSet& sub : part.subspaces)
        multi_interval |= sub.interval_count() > 1;
    for (const StreamItem& item : spec.stream) {
      index |= item.kind == StreamItem::Kind::Index;
      traces |= item.kind == StreamItem::Kind::BeginTrace;
      iterations |= item.kind == StreamItem::Kind::EndIteration;
      if (item.kind == StreamItem::Kind::Task) {
        multi_req |= item.task.requirements.size() > 1;
        for (const ReqSpec& req : item.task.requirements)
          reduce |= req.privilege.is_reduce();
      }
    }
  }
  EXPECT_TRUE(index) << "no index launches generated";
  EXPECT_TRUE(traces) << "no traces generated";
  EXPECT_TRUE(iterations) << "no iteration markers generated";
  EXPECT_TRUE(dcr) << "DCR never enabled";
  EXPECT_TRUE(multi_interval) << "no multi-interval subspaces";
  EXPECT_TRUE(multi_tree) << "no multi-tree forests";
  EXPECT_TRUE(reduce) << "no reduction privileges";
  EXPECT_TRUE(multi_req) << "no multi-requirement tasks";
  EXPECT_TRUE(tuned) << "engine tuning never ablated";
  EXPECT_TRUE(multi_node) << "never more than one node";
}

TEST(FuzzGenerator, VisprogRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    ProgramSpec spec = generate_program(rng);
    std::string text = to_visprog(spec);
    ProgramSpec parsed = parse_visprog(text);
    EXPECT_EQ(parsed, spec) << "seed " << seed << "\n" << text;
    // Serialization is canonical: re-rendering reproduces the same bytes.
    EXPECT_EQ(to_visprog(parsed), text) << "seed " << seed;
  }
}

TEST(FuzzSerialize, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_visprog(""), ApiError);
  EXPECT_THROW(parse_visprog("visprog 2\n"), ApiError);
  EXPECT_THROW(parse_visprog("tree A 10\n"), ApiError); // missing header
  EXPECT_THROW(parse_visprog("visprog 1\nfrobnicate\n"), ApiError);
  // Semantically invalid: requirement region out of range.
  EXPECT_THROW(parse_visprog("visprog 1\n"
                             "config nodes=1 dcr=0 tracing=0 subject=paint\n"
                             "tree A 10\n"
                             "field f0 tree=0 mod=3\n"
                             "task node=0 salt=0 r7 f0 rw\n"),
               ApiError);
  // Unterminated trace.
  EXPECT_THROW(parse_visprog("visprog 1\n"
                             "config nodes=1 dcr=0 tracing=1 subject=paint\n"
                             "tree A 10\n"
                             "begin_trace 1\n"),
               ApiError);
}

TEST(FuzzSerialize, ParsesCommentsAndReportsLineNumbers) {
  ProgramSpec spec = parse_visprog("# a comment\n"
                                   "visprog 1\n"
                                   "\n"
                                   "config nodes=2 dcr=1 tracing=1 "
                                   "subject=naive-warnock\n"
                                   "tree A 16\n"
                                   "partition P parent=0 [0,7] [8,15]\n"
                                   "field f0 tree=0 mod=5\n"
                                   "task node=1 salt=3 r1 f0 red:max\n");
  EXPECT_EQ(spec.num_nodes, 2u);
  EXPECT_TRUE(spec.dcr);
  EXPECT_EQ(spec.subject, Algorithm::NaiveWarnock);
  ASSERT_EQ(spec.stream.size(), 1u);
  EXPECT_EQ(spec.stream[0].task.requirements[0].privilege,
            Privilege::reduce(kRedopMax));
  try {
    parse_visprog("visprog 1\nbogus\n");
    FAIL() << "expected ApiError";
  } catch (const ApiError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

} // namespace
} // namespace visrt::fuzz
