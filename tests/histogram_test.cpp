// Tests for obs::Histogram (obs/histogram.h): bucket-boundary geometry,
// merge associativity, concurrent recording (run under tsan by the
// concurrency label), and percentile accuracy against a sorted-vector
// oracle — the <= 1/16 relative quantization error the header promises.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/histogram.h"
#include "json_util.h"

using visrt::Rng;
using visrt::obs::Histogram;
using visrt::obs::HistogramSnapshot;

namespace {

std::vector<std::uint64_t> boundary_samples() {
  std::vector<std::uint64_t> vs;
  for (std::uint64_t v = 0; v < 64; ++v) vs.push_back(v);
  for (unsigned b = 4; b < 64; ++b) {
    const std::uint64_t base = std::uint64_t{1} << b;
    vs.push_back(base - 1);
    vs.push_back(base);
    vs.push_back(base + 1);
    vs.push_back(base + (base >> 1)); // mid-octave
  }
  vs.push_back(~std::uint64_t{0});
  return vs;
}

} // namespace

TEST(Histogram, BucketIndexIsMonotoneAndUpperBoundsAreTight) {
  std::size_t prev_index = 0;
  std::uint64_t prev_value = 0;
  for (std::uint64_t v : boundary_samples()) {
    const std::size_t index = Histogram::bucket_index(v);
    ASSERT_LT(index, Histogram::kBucketCount) << v;
    // Order-preserving.
    if (v > prev_value) {
      EXPECT_GE(index, prev_index) << v;
    }
    prev_index = index;
    prev_value = v;
    // The value lands at or below its bucket's upper bound...
    const std::uint64_t upper = Histogram::bucket_upper(index);
    EXPECT_LE(v, upper) << v;
    // ...and above the previous bucket's (bucket_upper is the *largest*
    // value mapping to the bucket).
    if (index > 0) {
      EXPECT_GT(v, Histogram::bucket_upper(index - 1)) << v;
    }
    // Relative quantization error <= 1/16.
    if (v >= 16) {
      EXPECT_LE(upper - v, v / 16 + 1) << v;
    } else {
      EXPECT_EQ(upper, v); // unit buckets are exact
    }
  }
}

TEST(Histogram, EveryBucketUpperMapsBackToItsOwnBucket) {
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    const std::uint64_t upper = Histogram::bucket_upper(i);
    EXPECT_EQ(Histogram::bucket_index(upper), i) << "bucket " << i;
  }
}

TEST(Histogram, CountSumMinMaxTrackRecords) {
  Histogram h;
  h.record(7);
  h.record(1000);
  h.record(3);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum, 1010u);
  EXPECT_EQ(s.min, 3u);
  EXPECT_EQ(s.max, 1000u);
}

TEST(Histogram, EmptySnapshotIsInert) {
  Histogram h;
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.quantile(0.99), 0u);
  HistogramSnapshot other = s;
  other.merge(s); // merging empties stays empty
  EXPECT_EQ(other.count, 0u);
}

TEST(Histogram, MergeIsAssociativeAndMatchesSingleRecorder) {
  Rng rng(0x5eedu);
  Histogram a, b, c, all;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t v = rng.next() >> rng.below(60);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(v);
    all.record(v);
  }
  // (a + b) + c
  HistogramSnapshot left = a.snapshot();
  left.merge(b.snapshot());
  left.merge(c.snapshot());
  // a + (b + c)
  HistogramSnapshot right_inner = b.snapshot();
  right_inner.merge(c.snapshot());
  HistogramSnapshot right = a.snapshot();
  right.merge(right_inner);
  EXPECT_EQ(left, right);
  EXPECT_EQ(left, all.snapshot());
  // Histogram::merge agrees with snapshot merge.
  Histogram folded;
  folded.merge(a);
  folded.merge(b);
  folded.merge(c);
  EXPECT_EQ(folded.snapshot(), left);
}

TEST(Histogram, ConcurrentRecordingLosesNothing) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 50000;
  Histogram h;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      Rng rng(0x1234u + t);
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        h.record(rng.below(1u << 20));
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
  EXPECT_LT(s.max, 1u << 20);
}

TEST(Histogram, QuantilesMatchSortedOracleWithinBucketError) {
  Rng rng(0xfeedu);
  Histogram h;
  std::vector<std::uint64_t> oracle;
  for (int i = 0; i < 20000; ++i) {
    // Mixed scales: exercises unit buckets through high octaves (top
    // octaves excluded so `exact + exact/16` below cannot overflow).
    const std::uint64_t v = rng.next() >> (8 + rng.below(48));
    h.record(v);
    oracle.push_back(v);
  }
  std::sort(oracle.begin(), oracle.end());
  const HistogramSnapshot s = h.snapshot();
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    std::size_t rank = static_cast<std::size_t>(
        std::max(1.0, std::ceil(q * static_cast<double>(oracle.size()))));
    const std::uint64_t exact = oracle[rank - 1];
    const std::uint64_t approx = s.quantile(q);
    EXPECT_GE(approx, exact) << "q=" << q;
    EXPECT_LE(approx, exact + exact / 16 + 1) << "q=" << q;
  }
  EXPECT_EQ(s.quantile(1.0), s.quantile(1.5)); // clamped
}

TEST(Histogram, TimingJsonParsesAndCarriesPercentiles) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v * 1000);
  const std::string json = visrt::obs::histogram_timing_json(h.snapshot());
  auto doc = visrt::testjson::parse(json);
  ASSERT_TRUE(doc.has_value()) << json;
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->at("sum_ns").number(), 1000.0 * 1001.0 / 2.0 * 1000.0);
  EXPECT_EQ(doc->at("min_ns").number(), 1000.0);
  EXPECT_GE(doc->at("p99_ns").number(), 990000.0);
  EXPECT_GE(doc->at("p999_ns").number(), doc->at("p99_ns").number());
  EXPECT_GE(doc->at("p90_ns").number(), doc->at("p50_ns").number());
  ASSERT_TRUE(doc->at("buckets").is_array());
  double bucket_count = 0;
  for (const auto& pair : doc->at("buckets").array()) {
    ASSERT_TRUE(pair.is_array());
    ASSERT_EQ(pair.array().size(), 2u);
    bucket_count += pair.array()[1].number();
  }
  EXPECT_EQ(bucket_count, 1000.0);
}
