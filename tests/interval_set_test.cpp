// Tests for geom/interval_set.h: normalization, algebra, and randomized
// property checks against a brute-force bitset model.
#include "geom/interval_set.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"

#include "common/rng.h"

namespace visrt {
namespace {

TEST(IntervalSet, DefaultIsEmpty) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.volume(), 0);
  EXPECT_EQ(s.interval_count(), 0u);
  EXPECT_TRUE(s.bounds().empty());
}

TEST(IntervalSet, SingleInterval) {
  IntervalSet s(3, 7);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.volume(), 5);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(2));
  EXPECT_FALSE(s.contains(8));
}

TEST(IntervalSet, InvertedBoundsMakeEmptySet) {
  IntervalSet s(5, 4);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, NormalizationMergesAdjacent) {
  IntervalSet s{{0, 3}, {4, 6}};
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.volume(), 7);
}

TEST(IntervalSet, NormalizationMergesOverlapping) {
  IntervalSet s{{0, 5}, {3, 9}, {20, 22}};
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_EQ(s.volume(), 13);
}

TEST(IntervalSet, NormalizationKeepsGaps) {
  IntervalSet s{{0, 3}, {5, 6}};
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_FALSE(s.contains(4));
}

TEST(IntervalSet, FromPoints) {
  IntervalSet s = IntervalSet::from_points({5, 1, 2, 3, 9});
  EXPECT_EQ(s.interval_count(), 3u);
  EXPECT_EQ(s.volume(), 5);
  EXPECT_TRUE(s.contains(1) && s.contains(2) && s.contains(3));
  EXPECT_TRUE(s.contains(5) && s.contains(9));
}

TEST(IntervalSet, UniteDisjoint) {
  IntervalSet a(0, 4), b(10, 14);
  IntervalSet u = a | b;
  EXPECT_EQ(u.volume(), 10);
  EXPECT_EQ(u.interval_count(), 2u);
}

TEST(IntervalSet, UniteOverlapping) {
  IntervalSet a(0, 6), b(4, 10);
  EXPECT_EQ((a | b), IntervalSet(0, 10));
}

TEST(IntervalSet, IntersectBasic) {
  IntervalSet a(0, 6), b(4, 10);
  EXPECT_EQ((a & b), IntervalSet(4, 6));
}

TEST(IntervalSet, IntersectDisjointIsEmpty) {
  IntervalSet a(0, 3), b(5, 9);
  EXPECT_TRUE((a & b).empty());
}

TEST(IntervalSet, SubtractSplitsInterval) {
  IntervalSet a(0, 10), b(3, 6);
  IntervalSet d = a - b;
  EXPECT_EQ(d, (IntervalSet{{0, 2}, {7, 10}}));
}

TEST(IntervalSet, SubtractEverything) {
  IntervalSet a(2, 8);
  EXPECT_TRUE((a - IntervalSet(0, 20)).empty());
}

TEST(IntervalSet, SubtractNothing) {
  IntervalSet a(2, 8);
  EXPECT_EQ(a - IntervalSet(9, 20), a);
}

TEST(IntervalSet, ContainsSet) {
  IntervalSet big{{0, 10}, {20, 30}};
  EXPECT_TRUE(big.contains(IntervalSet(2, 5)));
  EXPECT_TRUE(big.contains((IntervalSet{{0, 10}, {22, 25}})));
  EXPECT_FALSE(big.contains(IntervalSet(8, 12)));
  EXPECT_FALSE(big.contains(IntervalSet(15, 16)));
  EXPECT_TRUE(big.contains(IntervalSet{})); // empty subset of anything
}

TEST(IntervalSet, OverlapsSet) {
  IntervalSet a{{0, 3}, {10, 13}};
  EXPECT_TRUE(a.overlaps(IntervalSet(3, 5)));
  EXPECT_TRUE(a.overlaps(IntervalSet(12, 20)));
  EXPECT_FALSE(a.overlaps(IntervalSet(4, 9)));
  EXPECT_FALSE(a.overlaps(IntervalSet{}));
}

TEST(IntervalSet, BoundsSpanGaps) {
  IntervalSet a{{2, 3}, {10, 13}};
  EXPECT_EQ(a.bounds(), (Interval{2, 13}));
}

TEST(IntervalSet, NegativeCoordinates) {
  IntervalSet a(-10, -2);
  EXPECT_EQ(a.volume(), 9);
  EXPECT_TRUE(a.contains(-5));
  IntervalSet b(-4, 4);
  EXPECT_EQ((a & b), IntervalSet(-4, -2));
}

TEST(IntervalSet, ForEachPointVisitsAscending) {
  IntervalSet a{{0, 2}, {5, 6}};
  std::vector<coord_t> pts;
  a.for_each_point([&](coord_t p) { pts.push_back(p); });
  EXPECT_EQ(pts, (std::vector<coord_t>{0, 1, 2, 5, 6}));
}

TEST(IntervalSet, ToStringRendering) {
  IntervalSet a{{0, 2}, {5, 5}};
  EXPECT_EQ(a.to_string(), "{[0,2],[5,5]}");
  EXPECT_EQ(IntervalSet{}.to_string(), "{}");
}

TEST(IntervalSet, ShiftedTranslates) {
  IntervalSet a{{0, 2}, {10, 11}};
  EXPECT_EQ(a.shifted(5), (IntervalSet{{5, 7}, {15, 16}}));
  EXPECT_EQ(a.shifted(-3), (IntervalSet{{-3, -1}, {7, 8}}));
  EXPECT_EQ(a.shifted(0), a);
  EXPECT_TRUE(IntervalSet{}.shifted(100).empty());
}

TEST(IntervalSet, GrownDilates) {
  IntervalSet a{{5, 6}, {20, 20}};
  EXPECT_EQ(a.grown(2), (IntervalSet{{3, 8}, {18, 22}}));
  // Growth merges intervals whose gaps close.
  IntervalSet b{{0, 1}, {4, 5}};
  EXPECT_EQ(b.grown(1), IntervalSet(-1, 6));
  EXPECT_EQ(b.grown(0), b);
  EXPECT_THROW(b.grown(-1), ApiError);
}

// --- Randomized property tests against a std::set<coord_t> model --------

IntervalSet random_set(Rng& rng, coord_t universe, int max_intervals) {
  std::vector<Interval> ivs;
  int n = static_cast<int>(rng.below(static_cast<std::uint64_t>(max_intervals) + 1));
  for (int i = 0; i < n; ++i) {
    coord_t lo = rng.range(0, universe - 1);
    coord_t hi = lo + rng.range(0, universe / 4);
    ivs.push_back(Interval{lo, std::min(hi, universe - 1)});
  }
  return IntervalSet::from_intervals(std::move(ivs));
}

std::set<coord_t> to_model(const IntervalSet& s) {
  std::set<coord_t> m;
  s.for_each_point([&](coord_t p) { m.insert(p); });
  return m;
}

struct AlgebraCase {
  std::uint64_t seed;
};

class IntervalSetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSetProperty, MatchesSetModel) {
  Rng rng(GetParam());
  constexpr coord_t kUniverse = 200;
  for (int round = 0; round < 20; ++round) {
    IntervalSet a = random_set(rng, kUniverse, 6);
    IntervalSet b = random_set(rng, kUniverse, 6);
    std::set<coord_t> ma = to_model(a), mb = to_model(b);

    // union
    std::set<coord_t> mu = ma;
    mu.insert(mb.begin(), mb.end());
    EXPECT_EQ(to_model(a | b), mu);

    // intersection
    std::set<coord_t> mi;
    for (coord_t p : ma)
      if (mb.count(p)) mi.insert(p);
    EXPECT_EQ(to_model(a & b), mi);

    // difference
    std::set<coord_t> md;
    for (coord_t p : ma)
      if (!mb.count(p)) md.insert(p);
    EXPECT_EQ(to_model(a - b), md);

    // predicates
    EXPECT_EQ(a.overlaps(b), !mi.empty());
    EXPECT_EQ(a.contains(b), std::includes(ma.begin(), ma.end(), mb.begin(),
                                           mb.end()));
    EXPECT_EQ(a.volume(), static_cast<coord_t>(ma.size()));

    // normalization invariants
    IntervalSet ab = a | b;
    const auto& ivs = ab.intervals();
    for (std::size_t k = 1; k < ivs.size(); ++k) {
      EXPECT_GT(ivs[k].lo, ivs[k - 1].hi + 1) << "adjacent or overlapping";
    }
  }
}

TEST_P(IntervalSetProperty, AlgebraicIdentities) {
  Rng rng(GetParam() ^ 0xabcdef);
  constexpr coord_t kUniverse = 150;
  for (int round = 0; round < 20; ++round) {
    IntervalSet a = random_set(rng, kUniverse, 5);
    IntervalSet b = random_set(rng, kUniverse, 5);
    IntervalSet c = random_set(rng, kUniverse, 5);
    // De Morgan-ish over a universe U: a - b = a & (U - b)
    IntervalSet u(0, kUniverse);
    EXPECT_EQ(a - b, a & (u - b));
    // distributivity: a & (b | c) == (a & b) | (a & c)
    EXPECT_EQ(a & (b | c), (a & b) | (a & c));
    // subtraction then union restores: (a - b) | (a & b) == a
    EXPECT_EQ((a - b) | (a & b), a);
    // idempotence
    EXPECT_EQ(a | a, a);
    EXPECT_EQ(a & a, a);
    EXPECT_TRUE((a - a).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 42, 1234, 99999));

} // namespace
} // namespace visrt
