// Tests for realm/instance_map.h: validity tracking, copy planning, and
// lazy reduction application — the implicit-communication model.
#include "realm/instance_map.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace visrt {
namespace {

TEST(InstanceMap, InitialFillValidEverywhere) {
  // Fills are deferred and instantiated per instance without bulk copies,
  // so the initial contents are valid on every node.
  InstanceMap m(4, 0, IntervalSet(0, 99));
  EXPECT_EQ(m.valid_at(0), IntervalSet(0, 99));
  EXPECT_EQ(m.valid_at(3), IntervalSet(0, 99));
}

TEST(InstanceMap, ReadAtHomeNeedsNoCopies) {
  InstanceMap m(4, 0, IntervalSet(0, 99));
  auto plans = m.plan_read(0, IntervalSet(10, 20));
  EXPECT_TRUE(plans.empty());
}

TEST(InstanceMap, ReadAfterRemoteWriteCopiesFromWriterOnly) {
  InstanceMap m(4, 0, IntervalSet(0, 99));
  m.record_write(1, IntervalSet(10, 20));
  auto plans = m.plan_read(2, IntervalSet(10, 20));
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].kind, CopyPlan::Kind::Copy);
  EXPECT_EQ(plans[0].src, 1u);
  EXPECT_EQ(plans[0].dst, 2u);
  EXPECT_EQ(plans[0].points, IntervalSet(10, 20));
  // Destination now also holds a valid copy: re-reading is free.
  EXPECT_TRUE(m.plan_read(2, IntervalSet(12, 18)).empty());
  EXPECT_TRUE(m.valid_at(2).contains(IntervalSet(10, 20)));
}

TEST(InstanceMap, WriteInvalidatesOtherHolders) {
  InstanceMap m(3, 0, IntervalSet(0, 99));
  (void)m.plan_read(1, IntervalSet(0, 99)); // replicate everywhere
  m.record_write(2, IntervalSet(40, 60));
  EXPECT_EQ(m.valid_at(0), (IntervalSet{{0, 39}, {61, 99}}));
  EXPECT_EQ(m.valid_at(1), (IntervalSet{{0, 39}, {61, 99}}));
  EXPECT_TRUE(m.valid_at(2).contains(IntervalSet(40, 60)));
}

TEST(InstanceMap, ReadAfterRemoteWriteFetchesFromWriter) {
  InstanceMap m(3, 0, IntervalSet(0, 99));
  m.record_write(2, IntervalSet(40, 60));
  auto plans = m.plan_read(1, IntervalSet(50, 70));
  // Only 50..60 moves (from node 2); 61..70 is still valid locally.
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].src, 2u);
  EXPECT_EQ(plans[0].points, IntervalSet(50, 60));
}

TEST(InstanceMap, PendingReductionsApplyOnRead) {
  InstanceMap m(3, 0, IntervalSet(0, 99));
  m.record_reduction(1, IntervalSet(10, 30), 1);
  m.record_reduction(2, IntervalSet(20, 40), 1);
  EXPECT_EQ(m.pending_reductions(), 2u);
  auto plans = m.plan_read(0, IntervalSet(0, 50));
  // No copies needed (node 0 holds the base) but both buffers apply.
  std::size_t applies = 0;
  for (const auto& p : plans) {
    if (p.kind == CopyPlan::Kind::ApplyReduction) {
      ++applies;
      EXPECT_EQ(p.dst, 0u);
      EXPECT_EQ(p.redop, 1u);
    }
  }
  EXPECT_EQ(applies, 2u);
  EXPECT_EQ(m.pending_reductions(), 0u);
  // Reduced points are now valid only at the reader.
  EXPECT_TRUE(m.valid_at(0).contains(IntervalSet(10, 40)));
}

TEST(InstanceMap, PartialReductionApplicationKeepsRemainder) {
  InstanceMap m(2, 0, IntervalSet(0, 99));
  m.record_reduction(1, IntervalSet(10, 40), 1);
  auto plans = m.plan_read(0, IntervalSet(0, 20));
  std::size_t applies = 0;
  for (const auto& p : plans)
    if (p.kind == CopyPlan::Kind::ApplyReduction) {
      ++applies;
      EXPECT_EQ(p.points, IntervalSet(10, 20));
    }
  EXPECT_EQ(applies, 1u);
  EXPECT_EQ(m.pending_reductions(), 1u); // 21..40 still pending
}

TEST(InstanceMap, WriteDropsOverlappingPendingReductions) {
  InstanceMap m(2, 0, IntervalSet(0, 99));
  m.record_reduction(1, IntervalSet(10, 40), 1);
  m.record_write(0, IntervalSet(0, 50));
  EXPECT_EQ(m.pending_reductions(), 0u);
  EXPECT_TRUE(m.plan_read(0, IntervalSet(0, 50)).empty());
}

TEST(InstanceMap, ReductionApplicationInvalidatesOtherCopies) {
  InstanceMap m(3, 0, IntervalSet(0, 99));
  (void)m.plan_read(1, IntervalSet(0, 99));
  m.record_reduction(2, IntervalSet(10, 20), 1);
  (void)m.plan_read(1, IntervalSet(0, 99));
  // Node 0's copy of 10..20 is stale now.
  EXPECT_EQ(m.valid_at(0), (IntervalSet{{0, 9}, {21, 99}}));
  EXPECT_EQ(m.valid_at(1), IntervalSet(0, 99));
}

TEST(InstanceMap, OutOfRangeNodesRejected) {
  InstanceMap m(2, 0, IntervalSet(0, 9));
  EXPECT_THROW(m.plan_read(5, IntervalSet(0, 1)), ApiError);
  EXPECT_THROW(m.record_write(5, IntervalSet(0, 1)), ApiError);
  EXPECT_THROW(InstanceMap(2, 7, IntervalSet(0, 9)), ApiError);
}

} // namespace
} // namespace visrt
