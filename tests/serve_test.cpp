// Streaming analysis service tests: serve::StreamSession equivalence with
// the batch oracle under retirement / history collapsing / chunked feeds,
// bounded residency under caps, and serve::Server end-to-end over stdin
// streams and AF_UNIX sockets with concurrent clients.
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <cstdio>
#include <fstream>

#include "common/check.h"
#include "common/rng.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "fuzz/serialize.h"
#include "json_util.h"
#include "obs/flight.h"
#include "runtime/runtime.h"
#include "serve/server.h"
#include "serve/session.h"

using namespace visrt;

namespace {

/// Feed a serialized program through a StreamSession in fixed-size chunks.
void feed_chunked(serve::StreamSession& session, const std::string& prog,
                  std::size_t chunk) {
  for (std::size_t off = 0; off < prog.size(); off += chunk)
    session.feed(std::string_view(prog).substr(off, chunk));
  session.finish();
}

std::string serialize(const fuzz::ProgramSpec& spec) {
  std::ostringstream os;
  fuzz::write_visprog(os, spec);
  return os.str();
}

/// A long figure-5-shaped ghost-exchange stream: `pieces` disjoint primary
/// pieces, an aliased ghost partition, two fields swapped per step.
std::string ghost_stream(std::size_t pieces, std::size_t steps) {
  std::ostringstream os;
  os << "visprog 1\n"
     << "config nodes=4 dcr=0 tracing=0 subject=raycast\n"
     << "tree A " << 10 * pieces << "\n"
     << "partition P parent=0";
  for (std::size_t p = 0; p < pieces; ++p)
    os << " [" << 10 * p << "," << 10 * p + 9 << "]";
  os << "\npartition G parent=0";
  for (std::size_t p = 0; p < pieces; ++p) {
    if (p == 0)
      os << " [10,11]";
    else if (p + 1 == pieces)
      os << " [" << 10 * p - 2 << "," << 10 * p - 1 << "]";
    else
      os << " [" << 10 * p - 2 << "," << 10 * p - 1 << "]+[" << 10 * (p + 1)
         << "," << 10 * (p + 1) + 1 << "]";
  }
  os << "\nfield up tree=0 mod=11\nfield down tree=0 mod=11\n";
  for (std::size_t s = 0; s < steps; ++s) {
    os << "index salt=" << s
       << (s % 2 == 0 ? " p0 f0 rw | p1 f1 red:sum\n"
                      : " p0 f1 rw | p1 f0 red:sum\n");
    if (s % 2 == 1) os << "end_iteration\n";
  }
  return os.str();
}

} // namespace

// ---------------------------------------------------------------------------
// StreamSession equivalence with the batch oracle.

TEST(ServeSession, StreamMatchesBatchOnGeneratedPrograms) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    fuzz::ProgramSpec spec = fuzz::generate_program(rng);
    fuzz::RunResult batch = fuzz::run_program(spec);
    if (batch.crashed) continue; // the fuzz oracle's jurisdiction

    serve::SessionOptions so;
    so.retire_every = 1 + seed % 4;
    so.max_history_depth = seed % 3;
    serve::StreamSession session(so);
    feed_chunked(session, serialize(spec), 1 + seed % 37);

    const serve::SessionResult& r = session.result();
    EXPECT_EQ(r.launches, batch.launch_hashes.size()) << "seed " << seed;
    EXPECT_EQ(r.dep_edges, batch.dep_edges) << "seed " << seed;
    EXPECT_EQ(r.dep_graph_hash, batch.dep_graph_hash) << "seed " << seed;
    EXPECT_EQ(r.schedule_hash, batch.schedule_hash) << "seed " << seed;
    EXPECT_EQ(r.value_hash, serve::fold_value_hashes(batch.launch_hashes))
        << "seed " << seed;
    EXPECT_EQ(r.final_hashes, batch.final_hashes) << "seed " << seed;
  }
}

// The executor must be invisible through the service layer too: a session
// ingesting at 8 analysis threads, across adversarial shard batch
// granularities, must reproduce the sequential batch run bit-for-bit —
// both via SessionOptions overrides and via `threads` / `shard_batch`
// directives carried in the stream itself.
TEST(ServeSession, EightThreadStreamMatchesBatchAcrossShardBatches) {
  const std::string prog = ghost_stream(/*pieces=*/6, /*steps=*/40);
  fuzz::ProgramSpec spec = fuzz::parse_visprog(prog);
  ASSERT_EQ(spec.analysis_threads, 1u);
  fuzz::RunResult batch = fuzz::run_program(spec);
  ASSERT_FALSE(batch.crashed) << batch.crash_message;

  for (std::size_t shard_batch : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, std::size_t{1} << 20}) {
    serve::SessionOptions so;
    so.analysis_threads = 8;
    so.shard_batch = shard_batch;
    so.retire_every = 16;
    serve::StreamSession session(so);
    feed_chunked(session, prog, 64);
    const serve::SessionResult& r = session.result();
    EXPECT_EQ(r.dep_edges, batch.dep_edges) << "batch=" << shard_batch;
    EXPECT_EQ(r.dep_graph_hash, batch.dep_graph_hash)
        << "batch=" << shard_batch;
    EXPECT_EQ(r.schedule_hash, batch.schedule_hash)
        << "batch=" << shard_batch;
    EXPECT_EQ(r.value_hash, serve::fold_value_hashes(batch.launch_hashes))
        << "batch=" << shard_batch;
    EXPECT_EQ(r.final_hashes, batch.final_hashes) << "batch=" << shard_batch;
  }

  // Same knobs as stream directives instead of server-side options.
  fuzz::ProgramSpec directive_spec = spec;
  directive_spec.analysis_threads = 8;
  directive_spec.shard_batch = 7;
  serve::StreamSession session{serve::SessionOptions{}};
  feed_chunked(session, serialize(directive_spec), 37);
  const serve::SessionResult& r = session.result();
  EXPECT_EQ(r.dep_graph_hash, batch.dep_graph_hash);
  EXPECT_EQ(r.schedule_hash, batch.schedule_hash);
  EXPECT_EQ(r.final_hashes, batch.final_hashes);
}

// Retirement must be invisible in every fingerprint at any thread count:
// the live-run oracle with retire_every on/off, at 1 and 8 analysis
// threads, must agree bit-for-bit with plain batch execution.
TEST(ServeSession, RetirementEquivalenceAcrossThreadCounts) {
  Rng rng(2026);
  fuzz::ProgramSpec spec = fuzz::generate_program(rng);
  fuzz::RunResult batch = fuzz::run_program(spec);
  ASSERT_FALSE(batch.crashed) << batch.crash_message;

  for (unsigned threads : {1u, 8u}) {
    for (std::size_t retire_every : {std::size_t{0}, std::size_t{3}}) {
      fuzz::LiveRunOptions opts;
      opts.provenance = false;
      opts.analysis_threads = threads;
      opts.retire_every = retire_every;
      fuzz::LiveRun live = fuzz::run_program_live(spec, opts);
      ASSERT_NE(live.runtime, nullptr)
          << live.result.crash_message << " threads=" << threads
          << " retire_every=" << retire_every;
      EXPECT_EQ(live.result.dep_graph_hash, batch.dep_graph_hash)
          << "threads=" << threads << " retire_every=" << retire_every;
      EXPECT_EQ(live.result.schedule_hash, batch.schedule_hash)
          << "threads=" << threads << " retire_every=" << retire_every;
      EXPECT_EQ(live.result.launch_hashes, batch.launch_hashes)
          << "threads=" << threads << " retire_every=" << retire_every;
      EXPECT_EQ(live.result.final_hashes, batch.final_hashes)
          << "threads=" << threads << " retire_every=" << retire_every;
      // The resident window's DES schedule still honors every resident
      // dependence edge after retirement.
      EXPECT_EQ(fuzz::validate_schedule(*live.runtime), "")
          << "threads=" << threads << " retire_every=" << retire_every;
    }
  }
}

TEST(ServeSession, ResidencyCapPlateausUnderLongStreams) {
  constexpr std::size_t kPieces = 8;
  constexpr std::size_t kSteps = 400; // 3200 launches
  serve::SessionOptions so;
  so.retire_every = 32;
  so.max_resident_launches = 128;
  so.max_history_depth = 8;
  so.track_values = false;
  serve::StreamSession session(so);
  feed_chunked(session, ghost_stream(kPieces, kSteps), 512);

  const serve::SessionCounters& c = session.counters();
  EXPECT_EQ(c.launches, kPieces * kSteps);
  EXPECT_GT(c.retired_launches, c.launches / 2);
  // The plateau: the cap plus one retire interval's worth of growth plus
  // the analysis tail the pop-order cut cannot cross yet.
  EXPECT_LE(c.peak_resident_launches,
            so.max_resident_launches + 4 * (so.retire_every + kPieces) + 64);
  // Retirement actually bounds the op window too, not just launches.
  EXPECT_LT(c.peak_resident_ops, 16 * c.peak_resident_launches + 4096);
}

// Composite-view history collapsing must fold old value payloads without
// perturbing any hash, and must actually collapse something at low depth.
TEST(ServeSession, HistoryCollapsingPreservesHashes) {
  const std::string prog = ghost_stream(6, 40);

  serve::SessionOptions base;
  base.retire_every = 0;
  base.max_history_depth = 0; // keep everything
  serve::StreamSession full(base);
  feed_chunked(full, prog, 256);

  serve::SessionOptions shallow = base;
  shallow.max_history_depth = 2;
  serve::StreamSession collapsed(shallow);
  feed_chunked(collapsed, prog, 256);

  EXPECT_EQ(collapsed.result().dep_graph_hash, full.result().dep_graph_hash);
  EXPECT_EQ(collapsed.result().schedule_hash, full.result().schedule_hash);
  EXPECT_EQ(collapsed.result().value_hash, full.result().value_hash);
  EXPECT_EQ(collapsed.result().final_hashes, full.result().final_hashes);
  ASSERT_NE(collapsed.runtime(), nullptr);
  EXPECT_GT(collapsed.runtime()->engine_stats().collapsed_entries, 0u);
}

TEST(ServeSession, RejectedStatementsDoNotAbortTheSession) {
  serve::SessionOptions so;
  std::vector<std::string> errors;
  so.on_error = [&errors](const std::string& e) { errors.push_back(e); };
  serve::StreamSession session(so);
  session.feed("visprog 1\n"
               "config nodes=2 dcr=0 tracing=0 subject=raycast\n"
               "tree A 20\n"
               "this is not a statement\n"
               "field f tree=0 mod=7\n"
               "task node=0 salt=1 r0 f0 rw\n"
               "task node=0 salt=2 r0 f9 rw\n" // unknown field: rejected
               "task node=0 salt=3 r0 f0 rw\n");
  session.finish();
  EXPECT_EQ(errors.size(), 2u);
  EXPECT_EQ(session.counters().rejected, 2u);
  EXPECT_EQ(session.result().launches, 2u);
}

// ---------------------------------------------------------------------------
// Server: stdin-mode stream and AF_UNIX socket with concurrent clients.

TEST(ServeServer, StdinStreamEmitsResultAndMetrics) {
  serve::ServerOptions options;
  serve::Server server(options);
  std::istringstream in(ghost_stream(4, 10) + "@metrics\n@end\n");
  std::ostringstream out;
  server.run_stream(in, out);

  const std::string text = out.str();
  EXPECT_NE(text.find("\"schema_version\":2"), std::string::npos) << text;
  EXPECT_NE(text.find("\"serve\""), std::string::npos);
  EXPECT_NE(text.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(text.find("\"dep_graph_hash\""), std::string::npos);
  EXPECT_EQ(server.stats().sessions_failed, 0u);
  EXPECT_EQ(server.stats().sessions_completed, 1u);
}

namespace {

/// Minimal blocking AF_UNIX client: send `program`, shutdown the write
/// side when `eof` is set, then read until the server closes.
std::string client_roundtrip(const std::string& path,
                             const std::string& program, bool eof) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  // The server binds asynchronously; retry briefly.
  int rc = -1;
  for (int attempt = 0; attempt < 100 && rc != 0; ++attempt) {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(rc, 0) << "connect to " << path;
  std::size_t off = 0;
  while (off < program.size()) {
    ssize_t n = ::send(fd, program.data() + off, program.size() - off, 0);
    EXPECT_GT(n, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  if (eof) ::shutdown(fd, SHUT_WR);
  std::string reply;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

std::string test_socket_path(const char* tag) {
  return "/tmp/visrt_serve_test_" + std::to_string(::getpid()) + "_" + tag +
         ".sock";
}

} // namespace

TEST(ServeServer, ConcurrentSocketClientsGetIdenticalResults) {
  serve::ServerOptions options;
  options.socket_path = test_socket_path("conc");
  options.poll_interval_ms = 20;
  serve::Server server(options);
  server.start();

  const std::string program = ghost_stream(4, 20) + "@end\n";
  std::vector<std::string> replies(2);
  std::thread a([&] { replies[0] = client_roundtrip(options.socket_path,
                                                    program, false); });
  std::thread b([&] { replies[1] = client_roundtrip(options.socket_path,
                                                    program, false); });
  a.join();
  b.join();
  server.stop();

  EXPECT_FALSE(replies[0].empty());
  // Identical program => byte-identical result line (no timing inside).
  EXPECT_EQ(replies[0], replies[1]);
  EXPECT_NE(replies[0].find("\"ok\":true"), std::string::npos) << replies[0];
  EXPECT_EQ(server.stats().sessions_completed, 2u);
  EXPECT_EQ(server.stats().sessions_failed, 0u);
}

// A stop() while a client holds an open session must drain it: the client
// still receives its result line, and the session counts as completed.
TEST(ServeServer, StopDrainsInFlightSessions) {
  serve::ServerOptions options;
  options.socket_path = test_socket_path("drain");
  options.poll_interval_ms = 20;
  serve::Server server(options);
  server.start();

  std::string reply;
  std::thread client([&] {
    // Full program but no @end and no EOF: the session stays open until
    // the server drains it.
    reply = client_roundtrip(options.socket_path, ghost_stream(4, 6), false);
  });
  // Give the worker time to ingest, then ask for a drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  server.request_stop();
  server.stop();
  client.join();

  EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;
  EXPECT_EQ(server.stats().sessions_completed, 1u);
  EXPECT_EQ(server.stats().sessions_failed, 0u);
}

// ---------------------------------------------------------------------------
// Telemetry: @health / @prometheus, deterministic latency counts, and the
// flight-recorder crash-dump round trip.

TEST(ServeServer, HealthAndPrometheusAnswerOverTheSocket) {
  serve::ServerOptions options;
  options.socket_path = test_socket_path("health");
  options.poll_interval_ms = 20;
  options.sampler_interval_ms = 10; // exercise the sampler thread too
  serve::Server server(options);
  server.start();

  const std::string program =
      ghost_stream(4, 10) + "@health\n@prometheus\n@end\n";
  const std::string reply =
      client_roundtrip(options.socket_path, program, false);
  server.stop();

  // Health verdict: a live, uncapped single-session server is "ok".
  EXPECT_NE(reply.find("\"status\":\"ok\""), std::string::npos) << reply;
  EXPECT_NE(reply.find("\"draining\":false"), std::string::npos);
  EXPECT_NE(reply.find("\"sessions_in_backoff\":0"), std::string::npos);
  // Prometheus exposition: typed counters, latency histograms with
  // cumulative buckets, and the "# EOF" terminator for the block reply.
  EXPECT_NE(reply.find("# TYPE visrt_serve_launches_total counter"),
            std::string::npos);
  EXPECT_NE(reply.find("visrt_serve_launch_analysis_seconds_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(reply.find("visrt_serve_launch_analysis_seconds_count"),
            std::string::npos);
  EXPECT_NE(reply.find("# EOF"), std::string::npos);
  // The session still finishes normally after the control lines.
  EXPECT_NE(reply.find("\"ok\":true"), std::string::npos);
}

namespace {

/// The four latency-histogram counts out of one @metrics reply, in
/// declaration order (launch_analysis, statement_parse, retire_pause,
/// metrics_request).
std::vector<double> latency_counts(const std::string& out) {
  const std::size_t pos = out.find("\"schema_version\":2");
  EXPECT_NE(pos, std::string::npos) << out;
  const std::size_t begin = out.rfind('{', pos);
  const std::size_t end = out.find('\n', pos);
  auto doc = testjson::parse(out.substr(begin, end - begin));
  EXPECT_TRUE(doc.has_value()) << out;
  std::vector<double> counts;
  const testjson::Value& lat = doc->at("serve").at("latency");
  for (const char* key :
       {"launch_analysis", "statement_parse", "retire_pause",
        "metrics_request"}) {
    EXPECT_TRUE(lat.at(key).at("timing").is_object()) << key;
    counts.push_back(lat.at(key).at("count").number());
  }
  return counts;
}

} // namespace

// The latency section's structural half (the per-histogram counts) is a
// function of the stream alone: byte-identical across analysis thread
// counts once the host-dependent "timing" subobjects are stripped.
TEST(ServeServer, LatencyCountsAreDeterministicAcrossThreadCounts) {
  auto run = [](unsigned threads) {
    serve::ServerOptions options;
    options.session.analysis_threads = threads;
    serve::Server server(options);
    std::istringstream in(ghost_stream(6, 16) + "@metrics\n@end\n");
    std::ostringstream out;
    server.run_stream(in, out);
    return latency_counts(out.str());
  };
  const std::vector<double> one = run(1);
  const std::vector<double> eight = run(8);
  EXPECT_EQ(one, eight);
  EXPECT_GT(one[0], 0) << "launch_analysis must have recorded launches";
  EXPECT_GT(one[1], 0) << "statement_parse must have recorded statements";
}

TEST(ServeFlight, InjectedCheckFailureWritesParseableDump) {
#if !VISRT_FLIGHT
  GTEST_SKIP() << "flight recorder compiled out (VISRT_FLIGHT=0)";
#else
  const std::string dir = "/tmp"; // dump lands as /tmp/visrt-flight-*.json
  obs::flight_arm_crash_dumps(dir);

  ScopedCheckThrows catchable; // hook fires, then the failure throws
  serve::SessionOptions so;
  so.inject_check_failure_after = 10;
  serve::StreamSession session(so);
  bool threw = false;
  try {
    session.feed(ghost_stream(4, 20));
    session.finish();
  } catch (const CheckFailure& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos);
  }
  ASSERT_TRUE(threw) << "the injected check failure must surface";
  // Launch ids are the stream position: the last launch before the
  // injected failure is launches - 1.
  ASSERT_GE(session.counters().launches, 10u);
  const double failing = static_cast<double>(session.counters().launches - 1);

  const std::string path = obs::flight_last_dump_path();
  ASSERT_FALSE(path.empty()) << "check-failure hook must write a dump";
  std::ifstream f(path);
  ASSERT_TRUE(f.good()) << path;
  std::stringstream buf;
  buf << f.rdbuf();
  auto doc = testjson::parse(buf.str());
  ASSERT_TRUE(doc.has_value()) << "dump must be valid JSON: " << path;

  EXPECT_NE(doc->at("reason").str().find("injected"), std::string::npos);
  EXPECT_EQ(doc->at("last_launch").number(), failing);
  bool saw_check_failure = false;
  bool saw_failing_launch = false;
  for (const testjson::Value& ev : doc->at("events").array()) {
    const std::string& kind = ev.at("kind").str();
    if (kind == "check_failure") {
      saw_check_failure = true;
      // The breadcrumb: the failing launch id rides in the event payload.
      EXPECT_EQ(ev.at("a").number(), failing);
    }
    if (kind == "launch" && ev.at("a").number() == failing)
      saw_failing_launch = true;
  }
  EXPECT_TRUE(saw_check_failure);
  EXPECT_TRUE(saw_failing_launch);
  std::remove(path.c_str());
#endif
}
