// Tests for geom/interval_tree.h: dynamic insert/remove/query correctness.
#include "geom/interval_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"

namespace visrt {
namespace {

TEST(IntervalTree, EmptyTree) {
  IntervalTree t;
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.query(Interval{0, 10}).items.empty());
}

TEST(IntervalTree, InsertAndQuery) {
  IntervalTree t;
  t.insert({0, 10}, 1);
  t.insert({5, 15}, 2);
  t.insert({20, 30}, 3);
  EXPECT_EQ(t.size(), 3u);
  auto r = t.query(Interval{8, 9});
  EXPECT_EQ(r.items, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(t.query(Interval{16, 19}).items.size(), 0u);
  EXPECT_EQ(t.query(Interval{25, 25}).items,
            (std::vector<std::uint64_t>{3}));
}

TEST(IntervalTree, IgnoresEmptyBounds) {
  IntervalTree t;
  t.insert({10, 5}, 1);
  EXPECT_TRUE(t.empty());
}

TEST(IntervalTree, RemoveByPayload) {
  IntervalTree t;
  t.insert({0, 10}, 1);
  t.insert({5, 15}, 2);
  EXPECT_EQ(t.remove(1), 1u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.query(Interval{0, 20}).items,
            (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(t.remove(1), 0u); // already gone
}

TEST(IntervalTree, QueryIntervalSet) {
  IntervalTree t;
  t.insert({0, 3}, 1);
  t.insert({10, 13}, 2);
  t.insert({20, 23}, 3);
  auto r = t.query(IntervalSet{{2, 11}, {22, 30}});
  EXPECT_EQ(r.items, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(IntervalTree, MatchesBruteForceWithChurn) {
  Rng rng(123);
  IntervalTree t;
  std::map<std::uint64_t, Interval> model;
  std::uint64_t next_id = 0;
  for (int step = 0; step < 2000; ++step) {
    if (model.empty() || rng.chance(0.6)) {
      coord_t lo = rng.range(0, 2000);
      Interval iv{lo, lo + rng.range(0, 50)};
      t.insert(iv, next_id);
      model[next_id] = iv;
      ++next_id;
    } else {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.below(model.size())));
      EXPECT_EQ(t.remove(it->first), 1u);
      model.erase(it);
    }
    if (step % 50 == 0) {
      coord_t lo = rng.range(0, 2000);
      Interval q{lo, lo + rng.range(0, 100)};
      std::vector<std::uint64_t> expect;
      for (const auto& [id, iv] : model)
        if (iv.overlaps(q)) expect.push_back(id);
      std::sort(expect.begin(), expect.end());
      EXPECT_EQ(t.query(q).items, expect);
    }
    EXPECT_EQ(t.size(), model.size());
  }
}

} // namespace
} // namespace visrt
