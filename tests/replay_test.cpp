// Tests for sim/replay.h: scheduling semantics of the discrete-event
// machine model — CPU serialization, message timing, causality.
#include "sim/replay.h"

#include <gtest/gtest.h>

#include <array>

namespace visrt::sim {
namespace {

MachineConfig machine(std::uint32_t nodes) {
  MachineConfig m;
  m.num_nodes = nodes;
  m.network_latency_ns = 1000;
  m.network_bytes_per_ns = 1.0; // 1 byte/ns for easy arithmetic
  m.message_handler_ns = 100;
  return m;
}

TEST(Replay, SequentialChainOnOneNode) {
  WorkGraph g;
  OpID a = g.compute(0, 100, {});
  OpID b = g.compute(0, 200, std::array{a});
  ReplayResult r = replay(g, machine(1));
  EXPECT_EQ(r.finish[a], 100);
  EXPECT_EQ(r.finish[b], 300);
  EXPECT_EQ(r.makespan, 300);
  EXPECT_EQ(r.node_busy[0], 300);
}

TEST(Replay, IndependentOpsOnOneCpuSerialize) {
  WorkGraph g;
  OpID a = g.compute(0, 100, {});
  OpID b = g.compute(0, 100, {});
  ReplayResult r = replay(g, machine(1));
  // No dependence, but one CPU: they serialize.
  EXPECT_EQ(std::max(r.finish[a], r.finish[b]), 200);
}

TEST(Replay, IndependentOpsOnTwoNodesRunInParallel) {
  WorkGraph g;
  OpID a = g.compute(0, 100, {});
  OpID b = g.compute(1, 100, {});
  ReplayResult r = replay(g, machine(2));
  EXPECT_EQ(r.finish[a], 100);
  EXPECT_EQ(r.finish[b], 100);
  EXPECT_EQ(r.makespan, 100);
}

TEST(Replay, MessageTiming) {
  WorkGraph g;
  OpID m = g.message(0, 1, 500, {});
  ReplayResult r = replay(g, machine(2));
  // 100 ns sender injection + 500 bytes at 1 B/ns + 1000 ns latency +
  // 100 ns receive handler.
  EXPECT_EQ(r.finish[m], 100 + 500 + 1000 + 100);
}

TEST(Replay, IntraNodeMessageSkipsWire) {
  WorkGraph g;
  OpID m = g.message(0, 0, 1 << 20, {});
  ReplayResult r = replay(g, machine(1));
  EXPECT_EQ(r.finish[m], 100); // handler cost only
}

TEST(Replay, NicSerializesOutgoingTransfers) {
  WorkGraph g;
  OpID m1 = g.message(0, 1, 1000, {});
  OpID m2 = g.message(0, 2, 1000, {});
  ReplayResult r = replay(g, machine(3));
  // The second transfer waits for the first to clear the sender's NIC
  // (and each pays sender injection on the shared CPU first).
  SimTime first = std::min(r.finish[m1], r.finish[m2]);
  SimTime second = std::max(r.finish[m1], r.finish[m2]);
  EXPECT_EQ(first, 100 + 1000 + 1000 + 100);
  // The second injection finishes at 200 but waits for the first
  // transfer to clear the NIC at 1100 before its own 1000 ns of wire.
  EXPECT_EQ(second, 1100 + 1000 + 1000 + 100);
}

TEST(Replay, FanInMessagesSerializeAtReceiver) {
  // Many nodes sending to node 0 at once: receive side serializes — the
  // sequential-bottleneck effect of the paper's no-DCR configurations.
  constexpr int kSenders = 8;
  WorkGraph g;
  std::vector<OpID> msgs;
  for (int s = 1; s <= kSenders; ++s) {
    msgs.push_back(g.message(static_cast<NodeID>(s), 0, 10000, {}));
  }
  ReplayResult r = replay(g, machine(kSenders + 1));
  SimTime last = 0;
  for (OpID m : msgs) last = std::max(last, r.finish[m]);
  // All transfers must pass through node 0's NIC-in one at a time.
  EXPECT_GE(last, static_cast<SimTime>(kSenders) * 10000);
}

TEST(Replay, DependenceAcrossNodesWaitsForMessage) {
  WorkGraph g;
  OpID a = g.compute(0, 100, {});
  OpID m = g.message(0, 1, 100, std::array{a});
  OpID b = g.compute(1, 50, std::array{m});
  ReplayResult r = replay(g, machine(2));
  EXPECT_EQ(r.finish[b], 100 + (100 + 100 + 1000 + 100) + 50);
}

TEST(Replay, CausalityNeverViolated) {
  // Random-ish graph: finish(op) >= finish(dep) for every edge.
  WorkGraph g;
  std::vector<OpID> ops;
  for (int i = 0; i < 200; ++i) {
    std::vector<OpID> deps;
    if (!ops.empty() && i % 3 != 0) deps.push_back(ops[ops.size() / 2]);
    if (!ops.empty() && i % 5 == 0) deps.push_back(ops.back());
    if (i % 4 == 0 && !ops.empty()) {
      ops.push_back(g.message(static_cast<NodeID>(i % 4), (i + 1) % 4, 64,
                              deps));
    } else {
      ops.push_back(g.compute(static_cast<NodeID>(i % 4), 10 + i, deps));
    }
  }
  ReplayResult r = replay(g, machine(4));
  for (OpID id = 0; id < g.size(); ++id) {
    for (OpID d : g.deps(id)) {
      EXPECT_GE(r.finish[id], r.finish[d]);
    }
  }
}

TEST(Replay, DeterministicAcrossRuns) {
  WorkGraph g;
  std::vector<OpID> ops;
  for (int i = 0; i < 100; ++i) {
    std::vector<OpID> deps;
    if (!ops.empty()) deps.push_back(ops[static_cast<std::size_t>(i) / 2]);
    ops.push_back(g.compute(static_cast<NodeID>(i % 3), 7 * i + 1, deps));
  }
  ReplayResult r1 = replay(g, machine(3));
  ReplayResult r2 = replay(g, machine(3));
  EXPECT_EQ(r1.finish, r2.finish);
  EXPECT_EQ(r1.makespan, r2.makespan);
}

TEST(Replay, MarkerFinishesWithLastDep) {
  WorkGraph g;
  OpID a = g.compute(0, 100, {});
  OpID b = g.compute(1, 250, {});
  OpID m = g.marker(0, std::array{a, b});
  ReplayResult r = replay(g, machine(2));
  EXPECT_EQ(r.finish[m], 250);
}

} // namespace
} // namespace visrt::sim
