// The deterministic lock-free reduction primitive (common/executor.h:
// shard_range / sharded_reduce): a randomized differential suite pinning
// the contract the engines' slot merges and the runtime's canonical-order
// combines are built on — shard geometry is a pure function of (n,
// chunks), every index lands in exactly one shard, combine folds the
// per-shard buffers sequentially in chunk index order, and a scan
// exception is rethrown from the lowest-index shard with the combine pass
// skipped.  Runs under ThreadSanitizer in CI (label: concurrency).
#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/executor.h"

namespace visrt {
namespace {

TEST(ShardRange, PartitionsExactlyWithUnevenSizes) {
  std::mt19937 rng(20230801);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = rng() % 1000 + 1;
    const std::size_t chunks = rng() % n + 1;
    std::size_t expect_begin = 0;
    std::size_t min_len = n, max_len = 0;
    std::size_t prev_len = n + 1;
    for (std::size_t c = 0; c < chunks; ++c) {
      const auto [begin, end] = shard_range(n, chunks, c);
      ASSERT_EQ(begin, expect_begin) << "n=" << n << " chunks=" << chunks;
      ASSERT_LE(begin, end);
      const std::size_t len = end - begin;
      // Longer pieces come first, sizes differ by at most one.
      ASSERT_LE(len, prev_len);
      prev_len = len;
      min_len = std::min(min_len, len);
      max_len = std::max(max_len, len);
      expect_begin = end;
    }
    ASSERT_EQ(expect_begin, n) << "n=" << n << " chunks=" << chunks;
    EXPECT_LE(max_len - min_len, 1u);
  }
}

TEST(ShardCount, BatchOverridesTheSiteGrain) {
  Executor ex(8);
  // batch replaces the grain: 1 = finest legal sharding (capped at
  // 4*lanes), larger-than-work = inline, 0 = keep the site's grain.
  EXPECT_EQ(shard_count(&ex, 100, 64, 0), 1u);
  EXPECT_EQ(shard_count(&ex, 100, 64, 1), 32u); // capped at 4 * 8 lanes
  EXPECT_EQ(shard_count(&ex, 100, 64, 25), 4u);
  EXPECT_EQ(shard_count(&ex, 100, 64, 1 << 20), 1u);
  EXPECT_EQ(shard_count(&ex, 0, 64, 1), 0u);
  EXPECT_EQ(shard_count(nullptr, 100, 64, 1), 1u);
}

/// One reduction shard: the values this shard scanned, in scan order.
struct VecSlot {
  std::vector<std::uint64_t> out;
};

/// Differential harness: sharded_reduce over items must equal the inline
/// left-to-right fold for any (threads, batch) — uneven shard sizes and
/// empty shards (chunks > n never happens by construction, but n == 0 and
/// n == 1 do) included.
void expect_reduce_matches_fold(Executor* ex,
                                const std::vector<std::uint64_t>& items,
                                std::size_t grain, std::size_t batch) {
  std::vector<std::uint64_t> expected;
  std::uint64_t expected_fold = 0;
  for (std::uint64_t v : items) {
    expected.push_back(v * 2654435761u);
    // Deliberately non-commutative / non-associative fold: any combine
    // reordering changes the answer.
    expected_fold = expected_fold * 31 + v;
  }
  std::vector<std::uint64_t> got;
  std::uint64_t got_fold = 0;
  std::vector<std::size_t> combine_order;
  sharded_reduce<VecSlot>(
      ex, items.size(), grain, batch,
      [&](VecSlot& slot, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
          slot.out.push_back(items[i] * 2654435761u);
      },
      [&](VecSlot& slot, std::size_t chunk, std::size_t begin,
          std::size_t end) {
        ASSERT_EQ(slot.out.size(), end - begin);
        combine_order.push_back(chunk);
        got.insert(got.end(), slot.out.begin(), slot.out.end());
        for (std::size_t i = begin; i < end; ++i)
          got_fold = got_fold * 31 + items[i];
      });
  const std::string label = "n=" + std::to_string(items.size()) +
                            " grain=" + std::to_string(grain) +
                            " batch=" + std::to_string(batch);
  EXPECT_EQ(got, expected) << label;
  EXPECT_EQ(got_fold, expected_fold) << label;
  // Combine runs strictly in chunk index order — the ordering half of the
  // determinism argument (the geometry half is ShardRange above).
  EXPECT_TRUE(std::is_sorted(combine_order.begin(), combine_order.end()))
      << label;
}

TEST(ShardedReduce, RandomizedDifferentialAgainstInlineFold) {
  std::mt19937 rng(4242);
  for (unsigned lanes : {1u, 2u, 3u, 5u, 8u}) {
    Executor ex(lanes);
    for (int trial = 0; trial < 30; ++trial) {
      std::vector<std::uint64_t> items(rng() % 257);
      for (std::uint64_t& v : items) v = rng();
      const std::size_t grain = rng() % 16 + 1;
      for (std::size_t batch : {std::size_t{0}, std::size_t{1},
                                std::size_t{7}, std::size_t{1} << 20})
        expect_reduce_matches_fold(&ex, items, grain, batch);
    }
  }
}

TEST(ShardedReduce, EmptyAndSingletonRanges) {
  Executor ex(8);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}}) {
    std::vector<std::uint64_t> items(n, 7);
    expect_reduce_matches_fold(&ex, items, 1, 1);
  }
  // n == 0 must not call scan or combine at all.
  int calls = 0;
  sharded_reduce<VecSlot>(
      &ex, 0, 1, 1, [&](VecSlot&, std::size_t, std::size_t) { ++calls; },
      [&](VecSlot&, std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ShardedReduce, ScanExceptionRethrownFromLowestIndexSkipsCombine) {
  Executor ex(8);
  std::mt19937 rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    // Several shards throw; the caller must always see the lowest-index
    // shard's exception, and the combine pass must never start.
    const std::size_t n = 64;
    std::vector<bool> throws(n, false);
    std::size_t lowest = n;
    for (int k = 0; k < 5; ++k) {
      std::size_t i = rng() % n;
      throws[i] = true;
      lowest = std::min(lowest, i);
    }
    bool combined = false;
    try {
      sharded_reduce<VecSlot>(
          &ex, n, /*grain=*/1, /*batch=*/1,
          [&](VecSlot& slot, std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
              slot.out.push_back(i); // mid-shard progress before the throw
              if (throws[i])
                throw std::runtime_error("shard " + std::to_string(i));
            }
          },
          [&](VecSlot&, std::size_t, std::size_t, std::size_t) {
            combined = true;
          });
      FAIL() << "expected the shard exception to propagate";
    } catch (const std::runtime_error& e) {
      // Shards are contiguous ascending ranges and each scans in order,
      // so the lowest-index shard's exception is always the one raised at
      // the globally lowest throwing index.
      EXPECT_EQ(e.what(), "shard " + std::to_string(lowest));
    }
    EXPECT_FALSE(combined);
  }
}

/// Counter-shaped slot: commutative totals plus an append-only log, the
/// shape the engines' AnalysisCounters merges use.
struct CounterSlot {
  std::uint64_t visits = 0;
  std::uint64_t steps = 0;
  std::vector<std::uint32_t> hits;
};

TEST(ShardedReduce, CounterMergeOrderingIsChunkOrder) {
  std::vector<std::uint32_t> items(1000);
  std::iota(items.begin(), items.end(), 0);
  for (unsigned lanes : {1u, 3u, 8u}) {
    Executor ex(lanes);
    for (std::size_t batch : {std::size_t{1}, std::size_t{7},
                              std::size_t{333}, std::size_t{1} << 20}) {
      std::uint64_t visits = 0, steps = 0;
      std::vector<std::uint32_t> hits;
      sharded_reduce<CounterSlot>(
          &ex, items.size(), /*grain=*/8, batch,
          [&](CounterSlot& slot, std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
              ++slot.visits;
              slot.steps += items[i];
              if (items[i] % 3 == 0) slot.hits.push_back(items[i]);
            }
          },
          [&](CounterSlot& slot, std::size_t, std::size_t, std::size_t) {
            visits += slot.visits;
            steps += slot.steps;
            hits.insert(hits.end(), slot.hits.begin(), slot.hits.end());
          });
      EXPECT_EQ(visits, items.size());
      EXPECT_EQ(steps, 999u * 1000u / 2);
      // Chunk-order combine of in-order scans preserves global order.
      EXPECT_TRUE(std::is_sorted(hits.begin(), hits.end()));
      EXPECT_EQ(hits.size(), 334u);
    }
  }
}

} // namespace
} // namespace visrt
