// The differential oracle: clean engines pass on generated programs, the
// injected synthetic bug is detected, and crashes are caught rather than
// aborting the process.
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "fuzz/serialize.h"

namespace visrt::fuzz {
namespace {

TEST(FuzzOracle, CleanEnginesPassGeneratedPrograms) {
  // Every optimized and naive engine, with and without DCR, against a few
  // generated programs (the CLI smoke test covers a much larger sweep).
  static constexpr Algorithm kSubjects[] = {
      Algorithm::Paint,        Algorithm::Warnock,
      Algorithm::RayCast,      Algorithm::NaivePaint,
      Algorithm::NaiveWarnock, Algorithm::NaiveRayCast,
  };
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    ProgramSpec spec = generate_program(rng);
    for (Algorithm subject : kSubjects) {
      for (bool dcr : {false, true}) {
        spec.subject = subject;
        spec.dcr = dcr;
        spec.tuning = EngineTuning{};
        DiffReport report = check_program(spec);
        EXPECT_FALSE(report)
            << algorithm_name(subject) << (dcr ? "+dcr" : "") << " seed "
            << seed << ": " << failure_kind_name(report.kind) << ": "
            << report.detail;
      }
    }
  }
}

/// The minimal trigger for the injected paint bug: a reduction committed
/// to a two-interval domain, then read back through the root.
ProgramSpec injected_bug_spec() {
  return parse_visprog("visprog 1\n"
                       "config nodes=1 dcr=0 tracing=0 subject=paint\n"
                       "tuning occlusion=1 memoize=1 domwrites=1 "
                       "kdfallback=0 paintbug=1\n"
                       "tree A 40\n"
                       "partition P parent=0 [0,9]+[20,29] [10,19]\n"
                       "field f0 tree=0 mod=11\n"
                       "task node=0 salt=0 r1 f0 red:sum\n"
                       "task node=0 salt=0 r0 f0 read\n");
}

TEST(FuzzOracle, DetectsInjectedPaintBug) {
  ProgramSpec spec = injected_bug_spec();
  DiffReport report = check_program(spec);
  ASSERT_TRUE(report);
  EXPECT_EQ(report.kind, FailureKind::Value) << report.detail;

  // The same program without the injected bug is clean.
  spec.tuning.inject_paint_reduce_bug = false;
  EXPECT_FALSE(check_program(spec));
  // And the bug only fires on the paint engine.
  spec.tuning.inject_paint_reduce_bug = true;
  spec.subject = Algorithm::RayCast;
  EXPECT_FALSE(check_program(spec));
}

TEST(FuzzOracle, RunProgramCapturesPerLaunchHashes) {
  ProgramSpec spec = injected_bug_spec();
  spec.tuning.inject_paint_reduce_bug = false;
  RunResult result = run_program(spec);
  ASSERT_FALSE(result.crashed) << result.crash_message;
  ASSERT_EQ(result.launch_hashes.size(), 2u);
  ASSERT_EQ(result.final_hashes.size(), 1u);
  EXPECT_NE(result.launch_hashes[0], 0u);
  // Deterministic across executions.
  RunResult again = run_program(spec);
  EXPECT_EQ(again.launch_hashes, result.launch_hashes);
  EXPECT_EQ(again.final_hashes, result.final_hashes);
}

TEST(FuzzOracle, TracedReplayStaysExact) {
  // A trace-wrapped repetition must replay through the memoized analysis
  // and still agree with the reference on every value.
  ProgramSpec spec =
      parse_visprog("visprog 1\n"
                    "config nodes=2 dcr=0 tracing=1 subject=raycast\n"
                    "tuning occlusion=1 memoize=1 domwrites=1 "
                    "kdfallback=0 paintbug=0\n"
                    "tree A 64\n"
                    "partition P parent=0 [0,31] [32,63]\n"
                    "field f0 tree=0 mod=7\n"
                    "begin_trace 1\n"
                    "task node=0 salt=0 r1 f0 rw\n"
                    "task node=1 salt=0 r2 f0 rw\n"
                    "task node=0 salt=0 r0 f0 read\n"
                    "end_trace\n"
                    "begin_trace 1\n"
                    "task node=0 salt=0 r1 f0 rw\n"
                    "task node=1 salt=0 r2 f0 rw\n"
                    "task node=0 salt=0 r0 f0 read\n"
                    "end_trace\n");
  RunResult result = run_program(spec);
  ASSERT_FALSE(result.crashed) << result.crash_message;
  EXPECT_GT(result.traced_launches, 0u) << "trace was never replayed";
  EXPECT_FALSE(check_program(spec));
}

TEST(FuzzOracle, CatchableInvariantMode) {
  // ScopedCheckThrows turns invariant failures into CheckFailure
  // exceptions for the duration of the scope (the oracle relies on this
  // to survive engine crashes); the flag nests and restores.
  EXPECT_FALSE(check_failures_throw());
  {
    ScopedCheckThrows outer;
    EXPECT_TRUE(check_failures_throw());
    EXPECT_THROW(invariant(false, "fuzzer-visible failure"), CheckFailure);
    try {
      invariant(1 + 1 == 3, "arithmetic still works");
    } catch (const CheckFailure& e) {
      EXPECT_NE(std::string(e.what()).find("arithmetic still works"),
                std::string::npos);
    }
    {
      ScopedCheckThrows inner;
      EXPECT_TRUE(check_failures_throw());
    }
    EXPECT_TRUE(check_failures_throw());
  }
  EXPECT_FALSE(check_failures_throw());
}

} // namespace
} // namespace visrt::fuzz
