// Tests for sim/work_graph.h: op recording, dependences, aggregates.
#include "sim/work_graph.h"

#include <gtest/gtest.h>

#include <array>

namespace visrt::sim {
namespace {

TEST(WorkGraph, RecordsComputeOps) {
  WorkGraph g;
  OpID a = g.compute(0, 100, {}, OpCategory::Analysis);
  OpID b = g.compute(1, 200, std::array{a}, OpCategory::TaskExec);
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(g.op(a).cost, 100);
  EXPECT_EQ(g.op(b).node, 1u);
  ASSERT_EQ(g.deps(b).size(), 1u);
  EXPECT_EQ(g.deps(b)[0], a);
  EXPECT_TRUE(g.deps(a).empty());
}

TEST(WorkGraph, RecordsMessages) {
  WorkGraph g;
  OpID m = g.message(0, 3, 4096, {});
  EXPECT_EQ(g.op(m).kind, OpKind::Message);
  EXPECT_EQ(g.op(m).node, 0u);
  EXPECT_EQ(g.op(m).dst, 3u);
  EXPECT_EQ(g.op(m).bytes, 4096u);
  EXPECT_EQ(g.message_count(), 1u);
  EXPECT_EQ(g.total_message_bytes(), 4096u);
}

TEST(WorkGraph, TotalCostByCategory) {
  WorkGraph g;
  g.compute(0, 100, {}, OpCategory::Analysis);
  g.compute(0, 50, {}, OpCategory::Analysis);
  g.compute(0, 999, {}, OpCategory::TaskExec);
  EXPECT_EQ(g.total_cost(OpCategory::Analysis), 150);
  EXPECT_EQ(g.total_cost(OpCategory::TaskExec), 999);
  EXPECT_EQ(g.total_cost(OpCategory::Copy), 0);
}

TEST(WorkGraph, MarkerJoinsDeps) {
  WorkGraph g;
  OpID a = g.compute(0, 1, {});
  OpID b = g.compute(1, 1, {});
  OpID m = g.marker(0, std::array{a, b});
  EXPECT_EQ(g.op(m).kind, OpKind::Marker);
  EXPECT_EQ(g.deps(m).size(), 2u);
}

TEST(WorkGraphDeathTest, ForwardDependenceAborts) {
  WorkGraph g;
  OpID a = g.compute(0, 1, {});
  (void)a;
  // An op cannot depend on itself (the next id).
  EXPECT_DEATH(
      { g.compute(0, 1, std::array{static_cast<OpID>(1)}); }, "earlier op");
}

} // namespace
} // namespace visrt::sim
