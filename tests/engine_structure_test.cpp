// Structural unit tests for engine mechanics not covered by the Figure-5
// or property suites: ray casting's acceleration-structure selection and
// shifting, natural K-d fallback, deeply nested region trees for the
// painter, and fragmented/sparse regions.
#include <gtest/gtest.h>

#include "engine_harness.h"
#include "realm/reduction_ops.h"

namespace visrt {
namespace {

using testing::EngineHarness;

// --- Ray casting: acceleration structure selection ------------------------

TEST(RayCastStructure, NaturalKdFallbackWithoutDisjointCompletePartition) {
  // Only an aliased, incomplete partition exists: ray casting must fall
  // back to the interval tree and still be correct.
  RegionTreeForest forest;
  RegionHandle root = forest.create_root(IntervalSet(0, 59), "A");
  PartitionHandle aliased = forest.create_partition(
      root, {IntervalSet(0, 39), IntervalSet(20, 59)}, "aliased");
  ASSERT_FALSE(forest.is_disjoint(aliased));

  EngineHarness ray(Algorithm::RayCast, &forest);
  EngineHarness oracle(Algorithm::Reference, &forest);
  for (auto* h : {&ray, &oracle}) {
    h->init_field(root, 0,
                  RegionData<double>::filled(forest.domain(root), 1.0));
  }
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < 2; ++i) {
      Requirement rw{forest.subregion(aliased, i), 0,
                     Privilege::read_write()};
      auto body = [round, i](std::vector<RegionData<double>>& bufs) {
        bufs[0].for_each([round, i](coord_t p, double& v) {
          v = v + static_cast<double>(p % 5 + round + static_cast<int>(i));
        });
      };
      auto a = ray.run({rw}, body);
      auto b = oracle.run({rw}, body);
      EXPECT_EQ(a.materialized[0], b.materialized[0]);
    }
  }
}

TEST(RayCastStructure, PartitionShiftRebuildsAcceleration) {
  // The application switches between two different disjoint-and-complete
  // partitions: Section 7.1 says the runtime shifts the equivalence sets
  // to the new subtree.  Values must stay exact across the shift.
  RegionTreeForest forest;
  RegionHandle root = forest.create_root(IntervalSet(0, 59), "A");
  PartitionHandle by3 = forest.create_partition(
      root, {IntervalSet(0, 19), IntervalSet(20, 39), IntervalSet(40, 59)},
      "by3");
  PartitionHandle by2 = forest.create_partition(
      root, {IntervalSet(0, 29), IntervalSet(30, 59)}, "by2");
  ASSERT_TRUE(forest.is_disjoint(by3) && forest.is_complete(by3));
  ASSERT_TRUE(forest.is_disjoint(by2) && forest.is_complete(by2));

  EngineHarness ray(Algorithm::RayCast, &forest);
  EngineHarness oracle(Algorithm::Reference, &forest);
  for (auto* h : {&ray, &oracle}) {
    h->init_field(root, 0,
                  RegionData<double>::filled(forest.domain(root), 0.0));
  }
  auto bump = [](std::vector<RegionData<double>>& bufs) {
    bufs[0].for_each([](coord_t p, double& v) {
      v = 2 * v + static_cast<double>(p % 3);
    });
  };
  for (int round = 0; round < 3; ++round) {
    // Alternate partitions between phases.
    for (std::size_t i = 0; i < 3; ++i) {
      Requirement rw{forest.subregion(by3, i), 0, Privilege::read_write()};
      auto a = ray.run({rw}, bump);
      auto b = oracle.run({rw}, bump);
      EXPECT_EQ(a.materialized[0], b.materialized[0]);
    }
    for (std::size_t i = 0; i < 2; ++i) {
      Requirement rw{forest.subregion(by2, i), 0, Privilege::read_write()};
      auto a = ray.run({rw}, bump);
      auto b = oracle.run({rw}, bump);
      EXPECT_EQ(a.materialized[0], b.materialized[0]);
    }
  }
  // After the write phases through by2, coalescing bounds the live sets.
  EXPECT_LE(ray.engine().stats().live_eqsets, 3u);
}

TEST(RayCastStructure, SparseScatteredRegions) {
  // Highly fragmented (point-wise) regions through the K-d fallback.
  RegionTreeForest forest;
  RegionHandle root = forest.create_root(IntervalSet(0, 99), "A");
  std::vector<IntervalSet> scattered;
  for (coord_t c = 0; c < 4; ++c) {
    std::vector<coord_t> pts;
    for (coord_t p = c; p < 100; p += 4) pts.push_back(p);
    scattered.push_back(IntervalSet::from_points(std::move(pts)));
  }
  PartitionHandle strided =
      forest.create_partition(root, std::move(scattered), "strided");
  ASSERT_TRUE(forest.is_disjoint(strided) && forest.is_complete(strided));

  EngineHarness ray(Algorithm::RayCast, &forest);
  EngineHarness oracle(Algorithm::Reference, &forest);
  for (auto* h : {&ray, &oracle}) {
    h->init_field(root, 0,
                  RegionData<double>::filled(forest.domain(root), 3.0));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    Requirement rw{forest.subregion(strided, i), 0, Privilege::read_write()};
    auto body = [i](std::vector<RegionData<double>>& bufs) {
      bufs[0].for_each([i](coord_t, double& v) {
        v += static_cast<double>(i + 1);
      });
    };
    auto a = ray.run({rw}, body);
    auto b = oracle.run({rw}, body);
    EXPECT_EQ(a.materialized[0], b.materialized[0]);
  }
  auto a = ray.run({Requirement{root, 0, Privilege::read()}}, nullptr);
  auto b = oracle.run({Requirement{root, 0, Privilege::read()}}, nullptr);
  EXPECT_EQ(a.materialized[0], b.materialized[0]);
}

// --- Painter: deep nesting -------------------------------------------------

TEST(PaintStructure, DeeplyNestedPartitions) {
  // A three-level tree: accesses bounce between levels, forcing closes in
  // both directions (ancestor accesses after leaf accesses and vice
  // versa).
  RegionTreeForest forest;
  RegionHandle root = forest.create_root(IntervalSet(0, 63), "A");
  PartitionHandle top = forest.create_partition(
      root, {IntervalSet(0, 31), IntervalSet(32, 63)}, "top");
  std::vector<RegionHandle> leaves;
  for (std::size_t i = 0; i < 2; ++i) {
    RegionHandle mid = forest.subregion(top, i);
    coord_t lo = static_cast<coord_t>(i) * 32;
    PartitionHandle sub = forest.create_partition(
        mid, {IntervalSet(lo, lo + 15), IntervalSet(lo + 16, lo + 31)},
        "sub" + std::to_string(i));
    leaves.push_back(forest.subregion(sub, 0));
    leaves.push_back(forest.subregion(sub, 1));
  }

  EngineHarness paint(Algorithm::Paint, &forest);
  EngineHarness oracle(Algorithm::Reference, &forest);
  for (auto* h : {&paint, &oracle}) {
    h->init_field(root, 0,
                  RegionData<double>::filled(forest.domain(root), 0.0));
  }
  auto bump = [](std::vector<RegionData<double>>& bufs) {
    bufs[0].for_each([](coord_t p, double& v) {
      v = v * 2 + static_cast<double>(p % 7);
    });
  };
  // Leaves, then the root, then middles, then leaves again.
  for (RegionHandle leaf : leaves) {
    auto a = paint.run({Requirement{leaf, 0, Privilege::read_write()}}, bump);
    auto b = oracle.run({Requirement{leaf, 0, Privilege::read_write()}},
                        bump);
    EXPECT_EQ(a.materialized[0], b.materialized[0]);
  }
  {
    auto a = paint.run({Requirement{root, 0, Privilege::read_write()}}, bump);
    auto b =
        oracle.run({Requirement{root, 0, Privilege::read_write()}}, bump);
    EXPECT_EQ(a.materialized[0], b.materialized[0]);
    // Closing the whole tree into the root created composite views.
    EXPECT_GT(paint.engine().stats().total_composite_views, 0u);
  }
  for (std::size_t i = 0; i < 2; ++i) {
    RegionHandle mid = forest.subregion(top, i);
    auto a = paint.run({Requirement{mid, 0, Privilege::read_write()}}, bump);
    auto b = oracle.run({Requirement{mid, 0, Privilege::read_write()}}, bump);
    EXPECT_EQ(a.materialized[0], b.materialized[0]);
  }
  for (RegionHandle leaf : leaves) {
    auto a = paint.run({Requirement{leaf, 0, Privilege::read()}}, nullptr);
    auto b = oracle.run({Requirement{leaf, 0, Privilege::read()}}, nullptr);
    EXPECT_EQ(a.materialized[0], b.materialized[0]);
  }
}

TEST(PaintStructure, ReadOnlySubtreesAreNotCaptured) {
  // Reads in a sibling subtree do not interfere with reads elsewhere: no
  // composite views should be created for read-read crossings.
  RegionTreeForest forest;
  RegionHandle root = forest.create_root(IntervalSet(0, 19), "A");
  PartitionHandle p = forest.create_partition(
      root, {IntervalSet(0, 9), IntervalSet(10, 19)}, "p");
  PartitionHandle q = forest.create_partition(
      root, {IntervalSet(5, 14)}, "q");

  EngineHarness paint(Algorithm::Paint, &forest);
  paint.init_field(root, 0,
                   RegionData<double>::filled(forest.domain(root), 1.0));
  paint.run({Requirement{forest.subregion(p, 0), 0, Privilege::read()}},
            nullptr);
  paint.run({Requirement{forest.subregion(p, 1), 0, Privilege::read()}},
            nullptr);
  paint.run({Requirement{forest.subregion(q, 0), 0, Privilege::read()}},
            nullptr);
  EXPECT_EQ(paint.engine().stats().total_composite_views, 0u);
}

// --- Warnock: stability of the refinement tree ----------------------------

TEST(WarnockStructure, RepeatedRegionsNeverRefineTwice) {
  RegionTreeForest forest;
  RegionHandle root = forest.create_root(IntervalSet(0, 47), "A");
  PartitionHandle p = forest.create_partition(
      root, {IntervalSet(0, 15), IntervalSet(16, 31), IntervalSet(32, 47)},
      "p");
  PartitionHandle g = forest.create_partition(
      root, {IntervalSet(12, 19), IntervalSet(28, 35)}, "g");

  EngineHarness h(Algorithm::Warnock, &forest, /*track_values=*/false);
  h.init_field(root, 0, RegionData<double>{});

  auto one_round = [&] {
    for (std::size_t i = 0; i < 3; ++i)
      h.run({Requirement{forest.subregion(p, i), 0,
                         Privilege::read_write()}},
            nullptr);
    for (std::size_t i = 0; i < 2; ++i)
      h.run({Requirement{forest.subregion(g, i), 0,
                         Privilege::reduce(kRedopSum)}},
            nullptr);
  };
  one_round();
  std::size_t created = h.engine().stats().total_eqsets_created;
  for (int round = 0; round < 5; ++round) one_round();
  EXPECT_EQ(h.engine().stats().total_eqsets_created, created)
      << "steady-state rounds must not refine further";
}

} // namespace
} // namespace visrt
