// Tests for region/region_tree.h: tree construction, disjoint/complete
// classification, navigation.
#include "region/region_tree.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace visrt {
namespace {

TEST(AllPairwiseDisjoint, Basics) {
  std::vector<IntervalSet> a{IntervalSet(0, 4), IntervalSet(5, 9)};
  EXPECT_TRUE(all_pairwise_disjoint(a));
  std::vector<IntervalSet> b{IntervalSet(0, 5), IntervalSet(5, 9)};
  EXPECT_FALSE(all_pairwise_disjoint(b));
  std::vector<IntervalSet> c{IntervalSet(0, 9), IntervalSet(3, 4)};
  EXPECT_FALSE(all_pairwise_disjoint(c));
  // An interval that reaches past an intermediate one.
  std::vector<IntervalSet> d{IntervalSet(0, 100), IntervalSet(200, 300),
                             IntervalSet(150, 160)};
  EXPECT_TRUE(all_pairwise_disjoint(d));
  std::vector<IntervalSet> e{IntervalSet(0, 100), IntervalSet(200, 300),
                             IntervalSet(90, 110)};
  EXPECT_FALSE(all_pairwise_disjoint(e));
}

TEST(AllPairwiseDisjoint, LongReachAcrossSeveral) {
  // First interval spans everything; overlap detected even with sets
  // starting later sorted in between.
  std::vector<IntervalSet> s{IntervalSet(0, 1000), IntervalSet(10, 20)};
  EXPECT_FALSE(all_pairwise_disjoint(s));
  std::vector<IntervalSet> t{IntervalSet{{0, 5}, {100, 1000}},
                             IntervalSet(10, 20), IntervalSet(30, 40)};
  EXPECT_TRUE(all_pairwise_disjoint(t));
}

TEST(AllPairwiseDisjoint, MultiIntervalOwners) {
  std::vector<IntervalSet> s{IntervalSet{{0, 4}, {10, 14}},
                             IntervalSet{{5, 9}, {15, 19}}};
  EXPECT_TRUE(all_pairwise_disjoint(s));
  std::vector<IntervalSet> u{IntervalSet{{0, 4}, {10, 14}},
                             IntervalSet{{5, 10}}};
  EXPECT_FALSE(all_pairwise_disjoint(u));
}

class RegionTreeFixture : public ::testing::Test {
protected:
  void SetUp() override {
    root_ = forest_.create_root(IntervalSet(0, 99), "N");
    // Primary: disjoint and complete.
    primary_ = forest_.create_partition(
        root_,
        {IntervalSet(0, 33), IntervalSet(34, 66), IntervalSet(67, 99)}, "P");
    // Ghost: aliased (overlapping) and incomplete.
    ghost_ = forest_.create_partition(
        root_, {IntervalSet(30, 40), IntervalSet(25, 70), IntervalSet(60, 72)},
        "G");
  }
  RegionTreeForest forest_;
  RegionHandle root_;
  PartitionHandle primary_, ghost_;
};

TEST_F(RegionTreeFixture, RootProperties) {
  EXPECT_TRUE(forest_.is_root(root_));
  EXPECT_EQ(forest_.domain(root_).volume(), 100);
  EXPECT_EQ(forest_.name(root_), "N");
  EXPECT_EQ(forest_.depth(root_), 0u);
  EXPECT_EQ(forest_.partitions(root_).size(), 2u);
}

TEST_F(RegionTreeFixture, PartitionClassification) {
  EXPECT_TRUE(forest_.is_disjoint(primary_));
  EXPECT_TRUE(forest_.is_complete(primary_));
  EXPECT_FALSE(forest_.is_disjoint(ghost_));
  EXPECT_FALSE(forest_.is_complete(ghost_));
}

TEST_F(RegionTreeFixture, SubregionNavigation) {
  RegionHandle p1 = forest_.subregion(primary_, 1);
  EXPECT_EQ(forest_.domain(p1), IntervalSet(34, 66));
  EXPECT_EQ(forest_.name(p1), "P[1]");
  EXPECT_EQ(forest_.depth(p1), 1u);
  EXPECT_FALSE(forest_.is_root(p1));
  EXPECT_EQ(forest_.parent_partition(p1), primary_);
  EXPECT_EQ(forest_.parent_region(p1), root_);
  EXPECT_EQ(forest_.root_of(p1), root_);
}

TEST_F(RegionTreeFixture, PathFromRoot) {
  RegionHandle g2 = forest_.subregion(ghost_, 2);
  auto path = forest_.path_from_root(g2);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], root_);
  EXPECT_EQ(path[1], g2);
}

TEST_F(RegionTreeFixture, NestedPartitions) {
  RegionHandle p0 = forest_.subregion(primary_, 0);
  PartitionHandle sub = forest_.create_partition(
      p0, {IntervalSet(0, 16), IntervalSet(17, 33)}, "P0sub");
  EXPECT_TRUE(forest_.is_disjoint(sub));
  EXPECT_TRUE(forest_.is_complete(sub));
  RegionHandle leaf = forest_.subregion(sub, 1);
  EXPECT_EQ(forest_.depth(leaf), 2u);
  auto path = forest_.path_from_root(leaf);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], p0);
}

TEST_F(RegionTreeFixture, SubspaceMustBeInsideParent) {
  EXPECT_THROW(
      forest_.create_partition(root_, {IntervalSet(50, 120)}, "bad"),
      ApiError);
}

TEST_F(RegionTreeFixture, IncompleteDisjointPartition) {
  PartitionHandle p = forest_.create_partition(
      root_, {IntervalSet(0, 10), IntervalSet(20, 30)}, "sparse");
  EXPECT_TRUE(forest_.is_disjoint(p));
  EXPECT_FALSE(forest_.is_complete(p));
}

TEST_F(RegionTreeFixture, ToStringMentionsStructure) {
  std::string s = forest_.to_string(root_);
  EXPECT_NE(s.find("N {[0,99]}"), std::string::npos);
  EXPECT_NE(s.find("partition P disjoint complete"), std::string::npos);
  EXPECT_NE(s.find("partition G aliased incomplete"), std::string::npos);
  EXPECT_NE(s.find("G[2]"), std::string::npos);
}

TEST_F(RegionTreeFixture, InvalidHandleRejected) {
  EXPECT_THROW(forest_.domain(RegionHandle{}), ApiError);
  EXPECT_THROW(forest_.subregion(primary_, 99), ApiError);
}

TEST(RegionTree, MultipleTreesInForest) {
  RegionTreeForest forest;
  RegionHandle a = forest.create_root(IntervalSet(0, 9), "A");
  RegionHandle b = forest.create_root(IntervalSet(0, 999), "B");
  EXPECT_EQ(forest.domain(a).volume(), 10);
  EXPECT_EQ(forest.domain(b).volume(), 1000);
  EXPECT_EQ(forest.num_regions(), 2u);
}

TEST(PartitionClaims, DeclaredFlagsAreTrustedAndMarked) {
  RegionTreeForest forest;
  RegionHandle root = forest.create_root(IntervalSet(0, 19), "r");
  PartitionClaim claim;
  claim.disjoint = true;
  claim.complete = true;
  PartitionHandle p = forest.create_partition(
      root, {IntervalSet(0, 9), IntervalSet(10, 19)}, "claimed", claim);
  EXPECT_TRUE(forest.is_disjoint(p));
  EXPECT_TRUE(forest.is_complete(p));
  EXPECT_TRUE(forest.is_claimed(p));
  // Computed partitions are not marked as claimed.
  PartitionHandle q = forest.create_partition(
      root, {IntervalSet(0, 9), IntervalSet(10, 19)}, "computed");
  EXPECT_FALSE(forest.is_claimed(q));
  // An empty claim computes both flags and stays unclaimed.
  PartitionHandle e = forest.create_partition(
      root, {IntervalSet(0, 12), IntervalSet(10, 19)}, "empty-claim",
      PartitionClaim{});
  EXPECT_FALSE(forest.is_claimed(e));
  EXPECT_FALSE(forest.is_disjoint(e));
  EXPECT_TRUE(forest.is_complete(e));
}

TEST(PartitionClaims, UndeclaredFlagsAreStillComputed) {
  RegionTreeForest forest;
  RegionHandle root = forest.create_root(IntervalSet(0, 19), "r");
  PartitionClaim claim;
  claim.disjoint = true; // completeness left to the geometry
  PartitionHandle p = forest.create_partition(
      root, {IntervalSet(0, 9), IntervalSet(15, 19)}, "gap", claim);
  EXPECT_TRUE(forest.is_disjoint(p));
  EXPECT_FALSE(forest.is_complete(p));
}

TEST(PartitionClaims, WrongClaimsAreCaughtInCatchableMode) {
  // Under ScopedCheckThrows the claim validation always runs, so a false
  // declaration fails loudly instead of corrupting the analysis.
  RegionTreeForest forest;
  RegionHandle root = forest.create_root(IntervalSet(0, 19), "r");
  ScopedCheckThrows catchable;
  PartitionClaim wrong_disjoint;
  wrong_disjoint.disjoint = true;
  EXPECT_THROW(forest.create_partition(
                   root, {IntervalSet(0, 12), IntervalSet(10, 19)},
                   "aliased", wrong_disjoint),
               CheckFailure);
  PartitionClaim wrong_complete;
  wrong_complete.complete = true;
  EXPECT_THROW(forest.create_partition(
                   root, {IntervalSet(0, 4), IntervalSet(10, 19)},
                   "gappy", wrong_complete),
               CheckFailure);
  // Truthful claims pass validation.
  PartitionClaim honest;
  honest.disjoint = true;
  honest.complete = true;
  PartitionHandle p = forest.create_partition(
      root, {IntervalSet(0, 9), IntervalSet(10, 19)}, "honest", honest);
  EXPECT_TRUE(forest.is_claimed(p));
}

} // namespace
} // namespace visrt
