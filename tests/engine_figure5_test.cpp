// The paper's running example, end to end: the graph program of Figure 1,
// its task stream of Figure 5, the dependences of Section 3.2, and the
// structural behaviour the paper illustrates in Figures 8 and 10 —
// exercised against every engine.
//
// The "graph" is the paper's: a node region N with fields up/down, a
// disjoint complete primary partition P and an aliased ghost partition G
// where G[i] covers nodes adjacent to P[i] in the other pieces.
#include <gtest/gtest.h>

#include <array>

#include "engine_harness.h"
#include "realm/reduction_ops.h"

namespace visrt {
namespace {

using testing::EngineHarness;

struct Figure1Program {
  RegionTreeForest forest;
  RegionHandle n;
  PartitionHandle p, g;
  std::array<RegionHandle, 3> pr, gr;
  FieldID up = 0, down = 1;

  Figure1Program() {
    // 30 nodes, 3 pieces of 10.  Ghost of piece i: the 2 boundary nodes of
    // each neighbouring piece (aliased: G[0] and G[2] both include nodes of
    // piece 1).
    n = forest.create_root(IntervalSet(0, 29), "N");
    p = forest.create_partition(
        n, {IntervalSet(0, 9), IntervalSet(10, 19), IntervalSet(20, 29)},
        "P");
    g = forest.create_partition(
        n,
        {IntervalSet(10, 11),                 // ghosts of piece 0
         IntervalSet{{8, 9}, {20, 21}},       // ghosts of piece 1
         IntervalSet(18, 19)},                // ghosts of piece 2
        "G");
    for (std::size_t i = 0; i < 3; ++i) {
      pr[i] = forest.subregion(p, i);
      gr[i] = forest.subregion(g, i);
    }
  }
};

class Figure5Test : public ::testing::TestWithParam<Algorithm> {
protected:
  /// t1(P[i], G[i]): read-write P[i].up, reduce+ G[i].down.
  /// t2(P[i], G[i]): read-write P[i].down, reduce+ G[i].up.
  testing::EngineHarness::TaskResult launch_t1(EngineHarness& h,
                                               Figure1Program& prog,
                                               std::size_t i) {
    return h.run(
        {Requirement{prog.pr[i], prog.up, Privilege::read_write()},
         Requirement{prog.gr[i], prog.down, Privilege::reduce(kRedopSum)}},
        [](std::vector<RegionData<double>>& bufs) {
          bufs[0].for_each([](coord_t, double& v) { v += 1.0; });
          bufs[1].for_each([](coord_t, double& v) { v += 2.0; });
        },
        /*mapped_node=*/static_cast<NodeID>(i));
  }
  testing::EngineHarness::TaskResult launch_t2(EngineHarness& h,
                                               Figure1Program& prog,
                                               std::size_t i) {
    return h.run(
        {Requirement{prog.pr[i], prog.down, Privilege::read_write()},
         Requirement{prog.gr[i], prog.up, Privilege::reduce(kRedopSum)}},
        [](std::vector<RegionData<double>>& bufs) {
          bufs[0].for_each([](coord_t, double& v) { v += 1.0; });
          bufs[1].for_each([](coord_t, double& v) { v += 2.0; });
        },
        /*mapped_node=*/static_cast<NodeID>(i));
  }
};

TEST_P(Figure5Test, DependenceStructureOfSection32) {
  Figure1Program prog;
  EngineHarness h(GetParam(), &prog.forest);
  h.init_field(prog.n, prog.up,
               RegionData<double>::filled(prog.forest.domain(prog.n), 0.0));
  h.init_field(prog.n, prog.down,
               RegionData<double>::filled(prog.forest.domain(prog.n), 0.0));

  // Figure 5: t0..t2 = t1(P[i],G[i]); t3..t5 = t2(P[i],G[i]);
  //           t6..t8 = t1(P[i],G[i]) again.
  for (std::size_t i = 0; i < 3; ++i) launch_t1(h, prog, i);
  for (std::size_t i = 0; i < 3; ++i) launch_t2(h, prog, i);
  for (std::size_t i = 0; i < 3; ++i) launch_t1(h, prog, i);

  const DepGraph& d = h.deps();
  // "the system will discover that there are no dependences between tasks
  //  t0-2, t3-5, and t6-8, allowing those groups to execute in parallel"
  for (LaunchID a = 0; a < 9; a += 3) {
    for (LaunchID i = a; i < a + 3; ++i)
      for (LaunchID j = i + 1; j < a + 3; ++j)
        EXPECT_FALSE(d.reaches(i, j))
            << "tasks " << i << " and " << j << " should be parallel";
  }
  // t3 = t2(P[0],G[0]) reduces to G[0].up = {10,11}, written by t1 through
  // P[1].up, and writes P[0].down which t1 reduced through G[1].down={8,9}.
  EXPECT_TRUE(d.reaches(1, 3));
  EXPECT_FALSE(d.reaches(0, 3)); // no shared data with t0
  EXPECT_FALSE(d.reaches(2, 3));
  // t4 = t2(P[1],G[1]) touches data of both neighbouring pieces.
  EXPECT_TRUE(d.reaches(0, 4));
  EXPECT_TRUE(d.reaches(2, 4));
  // t6 = t1(P[0],G[0]) again: reads P[0].up written by t0 and reduced by
  // t4 (G[1].up covers {8,9}); t3 shares nothing with it.
  EXPECT_TRUE(d.reaches(0, 6));
  EXPECT_TRUE(d.reaches(4, 6));
  EXPECT_FALSE(d.reaches(3, 6));
  // t7 = t1(P[1],G[1]) depends on both neighbouring t2s.
  EXPECT_TRUE(d.reaches(3, 7));
  EXPECT_TRUE(d.reaches(5, 7));
  EXPECT_EQ(d.critical_path(), 3u);
}

TEST_P(Figure5Test, CoherentValuesAcrossPhases) {
  Figure1Program prog;
  EngineHarness h(GetParam(), &prog.forest);
  h.init_field(prog.n, prog.up,
               RegionData<double>::filled(prog.forest.domain(prog.n), 0.0));
  h.init_field(prog.n, prog.down,
               RegionData<double>::filled(prog.forest.domain(prog.n), 0.0));

  // Two full iterations of the Figure 1 while-loop.
  for (int iter = 0; iter < 2; ++iter) {
    for (std::size_t i = 0; i < 3; ++i) launch_t1(h, prog, i);
    for (std::size_t i = 0; i < 3; ++i) launch_t2(h, prog, i);
  }

  // Read back the whole region through a read task and check the expected
  // values.  up[p] = 2 (two t1 writes of +1) ... plus reductions of +2 per
  // covering ghost region per t2 round applied before the second t1's
  // read-write... The t1 body is v += 1 on the *current* value, so writes
  // do not reset the reductions; compute the expectation by simulation
  // against the reference engine instead of by hand.
  // Identical program driven through the reference (oracle) engine.
  Figure1Program ref_prog;
  EngineHarness ref(Algorithm::Reference, &ref_prog.forest);
  ref.init_field(ref_prog.n, ref_prog.up,
                 RegionData<double>::filled(
                     ref_prog.forest.domain(ref_prog.n), 0.0));
  ref.init_field(ref_prog.n, ref_prog.down,
                 RegionData<double>::filled(
                     ref_prog.forest.domain(ref_prog.n), 0.0));
  for (int iter = 0; iter < 2; ++iter) {
    for (std::size_t i = 0; i < 3; ++i) launch_t1(ref, ref_prog, i);
    for (std::size_t i = 0; i < 3; ++i) launch_t2(ref, ref_prog, i);
  }

  for (FieldID f : {prog.up, prog.down}) {
    auto got = h.run({Requirement{prog.n, f, Privilege::read()}}, nullptr);
    auto want =
        ref.run({Requirement{ref_prog.n, f, Privilege::read()}}, nullptr);
    EXPECT_EQ(got.materialized[0], want.materialized[0])
        << "field " << f << " diverged from sequential semantics";
  }
}

TEST_P(Figure5Test, SteadyStateDoesNotGrowStateUnboundedly) {
  Figure1Program prog;
  EngineHarness h(GetParam(), &prog.forest);
  h.init_field(prog.n, prog.up,
               RegionData<double>::filled(prog.forest.domain(prog.n), 0.0));
  h.init_field(prog.n, prog.down,
               RegionData<double>::filled(prog.forest.domain(prog.n), 0.0));

  auto iteration = [&] {
    for (std::size_t i = 0; i < 3; ++i) launch_t1(h, prog, i);
    for (std::size_t i = 0; i < 3; ++i) launch_t2(h, prog, i);
  };
  for (int k = 0; k < 3; ++k) iteration();
  EngineStats after3 = h.engine().stats();
  for (int k = 0; k < 6; ++k) iteration();
  EngineStats after9 = h.engine().stats();

  // Equivalence-set engines: the set structure stabilizes after the first
  // iteration (Section 6: "each subsequent iteration uses the same
  // regions, so no further refinements are needed").
  if (GetParam() == Algorithm::Warnock ||
      GetParam() == Algorithm::NaiveWarnock ||
      GetParam() == Algorithm::RayCast ||
      GetParam() == Algorithm::NaiveRayCast) {
    EXPECT_EQ(after9.live_eqsets, after3.live_eqsets);
  }
  // Histories must not grow linearly forever (writes occlude); allow some
  // slack for reduce entries awaiting the next write.
  EXPECT_LE(after9.history_entries, after3.history_entries * 3);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, Figure5Test,
    ::testing::Values(Algorithm::NaivePaint, Algorithm::NaiveWarnock,
                      Algorithm::NaiveRayCast, Algorithm::Paint,
                      Algorithm::Warnock, Algorithm::RayCast,
                      Algorithm::Reference),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      std::string name = algorithm_name(info.param);
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

// Structural expectations from the paper's figures -------------------------

TEST(Figure10, WarnockRefinementMatchesPaper) {
  // After t0..t5 Warnock's algorithm has refined N.up into the equivalence
  // sets of Figure 10; subsequent iterations add none.
  Figure1Program prog;
  EngineHarness h(Algorithm::NaiveWarnock, &prog.forest);
  h.init_field(prog.n, prog.up,
               RegionData<double>::filled(prog.forest.domain(prog.n), 0.0));

  auto t1_up = [&](std::size_t i) {
    h.run({Requirement{prog.pr[i], prog.up, Privilege::read_write()}},
          [](std::vector<RegionData<double>>& bufs) {
            bufs[0].for_each([](coord_t, double& v) { v += 1; });
          });
  };
  auto t2_up = [&](std::size_t i) {
    h.run({Requirement{prog.gr[i], prog.up, Privilege::reduce(kRedopSum)}},
          [](std::vector<RegionData<double>>& bufs) {
            bufs[0].for_each([](coord_t, double& v) { v += 2; });
          });
  };

  for (std::size_t i = 0; i < 3; ++i) t1_up(i);
  for (std::size_t i = 0; i < 3; ++i) t2_up(i);
  EngineStats after_first = h.engine().stats();
  // The P refinement gives 3 sets; each ghost region then splits the piece
  // sets it overlaps.  The exact count depends on the ghost shapes; what
  // matters is stability from here on.
  for (int round = 0; round < 4; ++round) {
    for (std::size_t i = 0; i < 3; ++i) t1_up(i);
    for (std::size_t i = 0; i < 3; ++i) t2_up(i);
  }
  EngineStats later = h.engine().stats();
  EXPECT_EQ(later.live_eqsets, after_first.live_eqsets);
  EXPECT_EQ(later.total_eqsets_created, after_first.total_eqsets_created);
  EXPECT_GT(after_first.live_eqsets, 3u); // ghosts refined beyond P
}

TEST(Figure10, RayCastCoalescesBackToPrimaryPieces) {
  // Ray casting produces the same refinements while ghosts are in use, but
  // the next round of read-writes on P[i] coalesces each piece back to a
  // single equivalence set (Section 7: "the write privilege causes any
  // refinements and their histories of P[1] to be discarded").
  Figure1Program prog;
  EngineHarness h(Algorithm::RayCast, &prog.forest);
  h.init_field(prog.n, prog.up,
               RegionData<double>::filled(prog.forest.domain(prog.n), 0.0));

  auto write_p = [&](std::size_t i) {
    h.run({Requirement{prog.pr[i], prog.up, Privilege::read_write()}},
          [](std::vector<RegionData<double>>& bufs) {
            bufs[0].for_each([](coord_t, double& v) { v += 1; });
          });
  };
  auto reduce_g = [&](std::size_t i) {
    h.run({Requirement{prog.gr[i], prog.up, Privilege::reduce(kRedopSum)}},
          [](std::vector<RegionData<double>>& bufs) {
            bufs[0].for_each([](coord_t, double& v) { v += 2; });
          });
  };

  for (std::size_t i = 0; i < 3; ++i) write_p(i);
  EXPECT_EQ(h.engine().stats().live_eqsets, 3u); // exactly the P pieces
  for (std::size_t i = 0; i < 3; ++i) reduce_g(i);
  std::size_t with_ghosts = h.engine().stats().live_eqsets;
  EXPECT_GT(with_ghosts, 3u);
  // Second round of writes coalesces back to the three pieces.
  for (std::size_t i = 0; i < 3; ++i) write_p(i);
  EXPECT_EQ(h.engine().stats().live_eqsets, 3u);
}

TEST(Figure8, PainterCreatesCompositeViewsOnPartitionCrossing) {
  Figure1Program prog;
  EngineHarness h(Algorithm::Paint, &prog.forest);
  h.init_field(prog.n, prog.up,
               RegionData<double>::filled(prog.forest.domain(prog.n), 0.0));

  auto write_p = [&](std::size_t i) {
    h.run({Requirement{prog.pr[i], prog.up, Privilege::read_write()}},
          [](std::vector<RegionData<double>>& bufs) {
            bufs[0].for_each([](coord_t, double& v) { v += 1; });
          });
  };
  auto reduce_g = [&](std::size_t i) {
    h.run({Requirement{prog.gr[i], prog.up, Privilege::reduce(kRedopSum)}},
          [](std::vector<RegionData<double>>& bufs) {
            bufs[0].for_each([](coord_t, double& v) { v += 2; });
          });
  };

  // t0-t2 record in P leaves: no views needed (disjoint partition).
  for (std::size_t i = 0; i < 3; ++i) write_p(i);
  EXPECT_EQ(h.engine().stats().total_composite_views, 0u);
  // t3 crosses to the ghost partition: V0 of the P subtree (Figure 8(b)).
  reduce_g(0);
  EXPECT_EQ(h.engine().stats().total_composite_views, 1u);
  // t4, t5 use the same reduction privilege: no further views.
  reduce_g(1);
  reduce_g(2);
  EXPECT_EQ(h.engine().stats().total_composite_views, 1u);
  // Crossing back to P creates V1 of the G subtree (Figure 8(c)).
  write_p(0);
  EXPECT_EQ(h.engine().stats().total_composite_views, 2u);
}

} // namespace
} // namespace visrt
