// The chunked bump allocator (common/arena.h) behind the dependence-edge
// and per-launch scratch records: alignment, oversized fallback chunks,
// reset()-with-retained-chunks reuse (the steady-state no-malloc
// contract), the ArenaAllocator container bridge, the per-worker arena
// pattern under ThreadSanitizer (label: concurrency), and the
// use-after-reset rails — 0xDD poisoning in debug builds, real ASan
// poisoning when AddressSanitizer is on.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/executor.h"

namespace visrt {
namespace {

TEST(Arena, RespectsAlignment) {
  Arena arena;
  for (std::size_t align : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                            std::size_t{8}, std::size_t{16}, std::size_t{32},
                            std::size_t{64}}) {
    for (std::size_t bytes : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                              std::size_t{100}}) {
      void* p = arena.alloc(bytes, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
          << "bytes=" << bytes << " align=" << align;
      std::memset(p, 0xAB, bytes); // must be writable
    }
  }
}

TEST(Arena, MakeConstructsOverAlignedTypes) {
  struct alignas(32) Wide {
    std::uint64_t a;
    std::uint64_t b;
  };
  Arena arena;
  for (int i = 0; i < 100; ++i) {
    Wide* w = arena.make<Wide>(Wide{std::uint64_t(i), std::uint64_t(i + 1)});
    ASSERT_EQ(reinterpret_cast<std::uintptr_t>(w) % alignof(Wide), 0u);
    EXPECT_EQ(w->a, std::uint64_t(i));
    EXPECT_EQ(w->b, std::uint64_t(i + 1));
  }
}

TEST(Arena, OversizedRequestsGetDedicatedChunks) {
  Arena arena(1024);
  const std::size_t before = arena.chunk_count();
  std::span<std::uint8_t> big = arena.make_span<std::uint8_t>(100 * 1024);
  ASSERT_EQ(big.size(), 100u * 1024u);
  EXPECT_GT(arena.chunk_count(), before);
  std::memset(big.data(), 0x5A, big.size());
  EXPECT_EQ(big[big.size() - 1], 0x5A);
  // The arena keeps bumping after an oversized detour.
  int* x = arena.make<int>(7);
  EXPECT_EQ(*x, 7);
}

TEST(Arena, ResetRetainsChunksForReuse) {
  Arena arena(1024);
  auto fill = [&] {
    for (int i = 0; i < 64; ++i) {
      std::span<std::uint64_t> s = arena.make_span<std::uint64_t>(32);
      std::iota(s.begin(), s.end(), std::uint64_t(i));
      ASSERT_EQ(s.front(), std::uint64_t(i));
    }
  };
  fill();
  const std::size_t reserved = arena.bytes_reserved();
  const std::size_t chunks = arena.chunk_count();
  EXPECT_GT(arena.bytes_allocated(), 0u);
  // Steady state: the same workload after reset() must not grow the
  // arena — no new chunks, no new reservation, i.e. no malloc at all.
  for (int round = 0; round < 10; ++round) {
    arena.reset();
    EXPECT_EQ(arena.bytes_allocated(), 0u);
    fill();
    EXPECT_EQ(arena.bytes_reserved(), reserved) << "round " << round;
    EXPECT_EQ(arena.chunk_count(), chunks) << "round " << round;
  }
}

TEST(Arena, CopySpanPersistsScratchContents) {
  Arena arena;
  std::vector<std::uint32_t> scratch = {3, 1, 4, 1, 5, 9, 2, 6};
  std::span<std::uint32_t> kept =
      arena.copy_span<std::uint32_t>(std::span<const std::uint32_t>(scratch));
  scratch.assign(scratch.size(), 0); // the source dies / is recycled
  ASSERT_EQ(kept.size(), 8u);
  EXPECT_EQ(kept[0], 3u);
  EXPECT_EQ(kept[5], 9u);
  EXPECT_TRUE(arena.copy_span<std::uint32_t>({}).empty());
  // make_span value-initializes.
  for (std::uint64_t v : arena.make_span<std::uint64_t>(16))
    EXPECT_EQ(v, 0u);
}

TEST(Arena, MoveTransfersTheChunks) {
  Arena a(1024);
  (void)a.make_span<std::uint8_t>(4096);
  const std::size_t reserved = a.bytes_reserved();
  Arena b = std::move(a);
  EXPECT_EQ(b.bytes_reserved(), reserved);
  // The moved-to arena keeps serving allocations.
  int* x = b.make<int>(11);
  EXPECT_EQ(*x, 11);
}

TEST(ArenaAllocator, BacksStandardContainers) {
  Arena arena;
  {
    // Non-trivially-destructible elements are allowed here: the vector
    // runs the destructors, the arena only recycles bytes afterwards.
    std::vector<std::string, ArenaAllocator<std::string>> v{
        ArenaAllocator<std::string>(&arena)};
    for (int i = 0; i < 100; ++i)
      v.push_back("a long enough string to defeat SSO #" + std::to_string(i));
    EXPECT_EQ(v.size(), 100u);
    EXPECT_NE(v[99].find("#99"), std::string::npos);
    EXPECT_GT(arena.bytes_allocated(), 0u);
    std::vector<std::string, ArenaAllocator<std::string>> w = v;
    EXPECT_EQ(w[0], v[0]);
  } // containers destroyed before the reset, per the contract
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
}

TEST(ArenaAllocator, EqualityFollowsTheArena) {
  Arena a, b;
  EXPECT_TRUE(ArenaAllocator<int>(&a) == ArenaAllocator<int>(&a));
  EXPECT_FALSE(ArenaAllocator<int>(&a) == ArenaAllocator<int>(&b));
  // Converting constructor (what container rebinding uses).
  ArenaAllocator<long> rebound{ArenaAllocator<int>(&a)};
  EXPECT_EQ(rebound.arena(), &a);
}

TEST(Arena, PerWorkerArenasAreRaceFreeUnderTheExecutor) {
  // The documented parallel pattern: one arena per shard, workers touch
  // only their own.  Run with ThreadSanitizer in CI (label: concurrency).
  Executor ex(8);
  const std::size_t n = 256;
  const std::size_t chunks = shard_count(&ex, n, /*grain=*/1, /*batch=*/1);
  ASSERT_GT(chunks, 1u);
  std::vector<Arena> arenas(chunks);
  std::vector<std::vector<std::span<std::uint64_t>>> out(chunks);
  for (int round = 0; round < 4; ++round) {
    for (Arena& a : arenas) a.reset();
    for (auto& spans : out) spans.clear();
    sharded_for(&ex, n, /*grain=*/1, /*batch=*/1,
                [&](std::size_t c, std::size_t begin, std::size_t end) {
                  for (std::size_t i = begin; i < end; ++i) {
                    std::span<std::uint64_t> s =
                        arenas[c].make_span<std::uint64_t>(i % 7 + 1);
                    for (std::uint64_t& v : s) v = i;
                    out[c].push_back(s);
                  }
                });
    // Join done: every span is intact and owned by its shard's arena.
    std::size_t total = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const auto [begin, end] = shard_range(n, chunks, c);
      ASSERT_EQ(out[c].size(), end - begin);
      for (std::size_t k = 0; k < out[c].size(); ++k) {
        const std::size_t i = begin + k;
        ASSERT_EQ(out[c][k].size(), i % 7 + 1);
        for (std::uint64_t v : out[c][k]) ASSERT_EQ(v, i);
        total += out[c][k].size();
      }
    }
    EXPECT_GT(total, n);
  }
}

TEST(Arena, UseAfterResetIsPoisoned) {
  Arena arena;
  std::span<std::uint8_t> s = arena.make_span<std::uint8_t>(64);
  std::memset(s.data(), 0x11, s.size());
  const volatile std::uint8_t* stale = s.data();
  arena.reset();
#if defined(VISRT_ARENA_ASAN)
  // ASan builds poison recycled regions for real: the stale bytes are
  // reported as poisoned without having to crash the test on a read.
  EXPECT_EQ(__asan_address_is_poisoned(
                const_cast<const std::uint8_t*>(stale)),
            1);
  // A fresh allocation unpoisons exactly the bytes it hands out.
  std::span<std::uint8_t> again = arena.make_span<std::uint8_t>(64);
  EXPECT_EQ(__asan_address_is_poisoned(again.data()), 0);
#elif !defined(NDEBUG)
  // Debug builds without ASan scribble 0xDD so a stale read is visibly
  // recycled memory rather than plausible stale data.
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(stale[i], 0xDD) << i;
#else
  (void)stale;
  GTEST_SKIP() << "use-after-reset rails are debug/ASan-only";
#endif
}

} // namespace
} // namespace visrt
