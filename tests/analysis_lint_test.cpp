// The program linter: each rule of the VL001–VL007 catalog on a planted
// program shape, plus report ordering, capping and the JSON rendering.
#include "analysis/lint.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace visrt::analysis {
namespace {

/// A forest with a root over [0, 39], a disjoint+complete halves
/// partition, and an aliased incomplete overlap partition.
struct Fixture {
  RegionTreeForest forest;
  RegionHandle root;
  PartitionHandle halves;  ///< [0,19] | [20,39] — disjoint, complete
  PartitionHandle overlap; ///< [0,24] | [15,39] — aliased, complete

  Fixture() {
    root = forest.create_root(IntervalSet(0, 39), "r");
    halves = forest.create_partition(
        root, {IntervalSet(0, 19), IntervalSet(20, 39)}, "halves");
    overlap = forest.create_partition(
        root, {IntervalSet(0, 24), IntervalSet(15, 39)}, "overlap");
  }

  RegionHandle sub(PartitionHandle p, std::size_t c) const {
    return forest.subregion(p, c);
  }

  LintEvent task(std::vector<Requirement> reqs) const {
    LintEvent ev;
    ev.kind = LintEvent::Kind::Task;
    ev.requirements = std::move(reqs);
    return ev;
  }

  LintEvent index(PartitionHandle p, Privilege privilege) const {
    LintEvent ev;
    ev.kind = LintEvent::Kind::Index;
    ev.index_requirements = {LintIndexReq{p, 0, privilege}};
    return ev;
  }

  static LintEvent begin_trace(std::uint32_t id) {
    LintEvent ev;
    ev.kind = LintEvent::Kind::BeginTrace;
    ev.trace_id = id;
    return ev;
  }

  static LintEvent end_trace() {
    LintEvent ev;
    ev.kind = LintEvent::Kind::EndTrace;
    return ev;
  }
};

std::size_t count_rule(const LintReport& report, LintRule rule) {
  std::size_t n = 0;
  for (const LintFinding& f : report.findings)
    if (f.rule == rule) ++n;
  return n;
}

TEST(Lint, CleanProgramHasNoFindings) {
  Fixture fx;
  std::vector<LintEvent> stream{
      fx.task({Requirement{fx.sub(fx.halves, 0), 0,
                           Privilege::read_write()}}),
      fx.index(fx.halves, Privilege::read_write()),
      fx.task({Requirement{fx.root, 0, Privilege::read()}}),
  };
  LintReport report = lint(fx.forest, stream);
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_EQ(report.summary(), "lint: clean");
}

#ifdef NDEBUG
TEST(Lint, VL001FlagsCommittedWrongPartitionClaim) {
  // In release builds a false claim is trusted at creation (the debug
  // cross-check is compiled out) and commits to the forest; the linter
  // recomputes the geometry and reports both wrong flags.
  Fixture fx;
  PartitionClaim claim;
  claim.disjoint = true; // actually aliased
  claim.complete = false; // actually complete
  fx.forest.create_partition(
      fx.root, {IntervalSet(0, 24), IntervalSet(15, 39)}, "lying", claim);
  LintReport report = lint(fx.forest, {});
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(count_rule(report, LintRule::PartitionClaim), 2u)
      << report.to_json();
  EXPECT_NE(report.findings.front().message.find("lying"),
            std::string::npos);
}
#endif

TEST(Lint, VL001TrustsCorrectClaims) {
  Fixture fx;
  PartitionClaim claim;
  claim.disjoint = false;
  claim.complete = true;
  PartitionHandle p = fx.forest.create_partition(
      fx.root, {IntervalSet(0, 24), IntervalSet(15, 39)}, "honest", claim);
  EXPECT_TRUE(fx.forest.is_claimed(p));
  LintReport report = lint(fx.forest, {});
  EXPECT_EQ(count_rule(report, LintRule::PartitionClaim), 0u)
      << report.to_json();
}

TEST(Lint, VL002FlagsInterferingPrivilegesInOneTask) {
  Fixture fx;
  std::vector<LintEvent> stream{fx.task(
      {Requirement{fx.sub(fx.overlap, 0), 0, Privilege::read_write()},
       Requirement{fx.sub(fx.overlap, 1), 0, Privilege::read()}})};
  LintReport report = lint(fx.forest, stream);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(count_rule(report, LintRule::PrivilegeSubsumption), 1u)
      << report.to_json();
  EXPECT_EQ(report.findings.front().severity, LintSeverity::Error);
  EXPECT_EQ(report.findings.front().item, 0u);
}

TEST(Lint, VL002AllowsNonInterferingAliasing) {
  // Two reads of overlapping data are fine, as are same-operator folds.
  Fixture fx;
  std::vector<LintEvent> stream{
      fx.task({Requirement{fx.sub(fx.overlap, 0), 0, Privilege::read()},
               Requirement{fx.sub(fx.overlap, 1), 0, Privilege::read()}}),
      fx.task(
          {Requirement{fx.sub(fx.overlap, 0), 0, Privilege::reduce(2)},
           Requirement{fx.sub(fx.overlap, 1), 0, Privilege::reduce(2)}}),
  };
  LintReport report = lint(fx.forest, stream);
  EXPECT_EQ(count_rule(report, LintRule::PrivilegeSubsumption), 0u)
      << report.to_json();
}

TEST(Lint, VL003FlagsAliasedWriteIndexLaunch) {
  Fixture fx;
  std::vector<LintEvent> stream{
      fx.index(fx.overlap, Privilege::read_write())};
  LintReport report = lint(fx.forest, stream);
  EXPECT_TRUE(report.ok()); // a warning, not an error
  EXPECT_EQ(count_rule(report, LintRule::AliasedWrite), 1u)
      << report.to_json();
  EXPECT_NE(report.findings.front().message.find("serialize"),
            std::string::npos);
}

TEST(Lint, VL003AllowsDisjointOrReadOnlyIndexLaunches) {
  Fixture fx;
  std::vector<LintEvent> stream{
      fx.index(fx.halves, Privilege::read_write()), // disjoint partition
      fx.index(fx.overlap, Privilege::read()),      // reads commute
      fx.index(fx.overlap, Privilege::reduce(1)),   // same-op folds commute
  };
  LintReport report = lint(fx.forest, stream);
  EXPECT_EQ(count_rule(report, LintRule::AliasedWrite), 0u)
      << report.to_json();
}

TEST(Lint, VL004FlagsRequirementCoveredByBroaderOne) {
  Fixture fx;
  std::vector<LintEvent> stream{
      fx.task({Requirement{fx.root, 0, Privilege::read()},
               Requirement{fx.sub(fx.halves, 0), 0, Privilege::read()}})};
  LintReport report = lint(fx.forest, stream);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(count_rule(report, LintRule::OverPrivilege), 1u)
      << report.to_json();
  EXPECT_NE(report.findings.front().message.find("can be dropped"),
            std::string::npos);
}

TEST(Lint, VL004RequiresASubsumingPrivilege) {
  // read does not subsume read-write: the narrower rw requirement is load
  // bearing, and the pair interferes anyway (VL002 owns that case).
  Fixture fx;
  std::vector<LintEvent> stream{
      fx.task({Requirement{fx.root, 0, Privilege::read()},
               Requirement{fx.sub(fx.halves, 0), 1, Privilege::read()}})};
  // Different fields: no finding at all.
  LintReport report = lint(fx.forest, stream);
  EXPECT_EQ(count_rule(report, LintRule::OverPrivilege), 0u)
      << report.to_json();
}

TEST(Lint, VL005FlagsEmptyDomainAndDuplicateRequirements) {
  Fixture fx;
  PartitionHandle with_empty = fx.forest.create_partition(
      fx.root, {IntervalSet(), IntervalSet(0, 39)}, "sparse");
  std::vector<LintEvent> stream{
      fx.task({Requirement{fx.sub(with_empty, 0), 0, Privilege::read()}}),
      fx.task({Requirement{fx.sub(fx.halves, 0), 0, Privilege::read()},
               Requirement{fx.sub(fx.halves, 0), 0, Privilege::read()}}),
  };
  LintReport report = lint(fx.forest, stream);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(count_rule(report, LintRule::UnusedPrivilege), 2u)
      << report.to_json();
}

TEST(Lint, VL006FlagsBrokenTraceBrackets) {
  Fixture fx;
  LintEvent launch =
      fx.task({Requirement{fx.root, 0, Privilege::read()}});
  {
    // end without begin
    std::vector<LintEvent> stream{Fixture::end_trace()};
    LintReport report = lint(fx.forest, stream);
    EXPECT_EQ(count_rule(report, LintRule::TraceShape), 1u);
    EXPECT_FALSE(report.ok());
  }
  {
    // nested begin
    std::vector<LintEvent> stream{Fixture::begin_trace(1), launch,
                                  Fixture::begin_trace(2), launch,
                                  Fixture::end_trace()};
    LintReport report = lint(fx.forest, stream);
    EXPECT_GE(count_rule(report, LintRule::TraceShape), 1u);
    EXPECT_FALSE(report.ok());
  }
  {
    // unterminated at end of stream
    std::vector<LintEvent> stream{Fixture::begin_trace(1), launch};
    LintReport report = lint(fx.forest, stream);
    EXPECT_EQ(count_rule(report, LintRule::TraceShape), 1u);
    EXPECT_FALSE(report.ok());
    EXPECT_NE(report.findings.front().message.find("never closed"),
              std::string::npos);
  }
  {
    // empty body: shape is legal, but memoizes nothing — a warning
    std::vector<LintEvent> stream{Fixture::begin_trace(1),
                                  Fixture::end_trace()};
    LintReport report = lint(fx.forest, stream);
    EXPECT_EQ(count_rule(report, LintRule::TraceShape), 1u);
    EXPECT_TRUE(report.ok());
  }
}

TEST(Lint, VL006FlagsTraceReplayedWithDifferentBody) {
  Fixture fx;
  LintEvent a = fx.task({Requirement{fx.root, 0, Privilege::read()}});
  LintEvent b =
      fx.task({Requirement{fx.sub(fx.halves, 0), 0, Privilege::read()}});
  std::vector<LintEvent> same{Fixture::begin_trace(7), a,
                              Fixture::end_trace(),   Fixture::begin_trace(7),
                              a,                      Fixture::end_trace()};
  EXPECT_EQ(count_rule(lint(fx.forest, same), LintRule::TraceShape), 0u);

  std::vector<LintEvent> different{
      Fixture::begin_trace(7), a, Fixture::end_trace(),
      Fixture::begin_trace(7), b, Fixture::end_trace()};
  LintReport report = lint(fx.forest, different);
  EXPECT_EQ(count_rule(report, LintRule::TraceShape), 1u);
  EXPECT_TRUE(report.ok()); // warning: legal, just re-captures
}

TEST(Lint, VL007FlagsRequirementWhoseEdgesAreAllImplied) {
  // 0: write A, 1: write root (edge 0->1), 2: write B (edge 1->2), then a
  // reader of both A and B.  Its read-A requirement induces edges to 0
  // and 1; 1 is also a partner of read-B, and 0's edge is implied through
  // the path 0 -> 1 -> reader.  So read-A adds no ordering: VL007.  The
  // read-B requirement's edge to 2 is implied by nothing — not flagged.
  Fixture fx;
  RegionHandle a = fx.sub(fx.halves, 0);
  RegionHandle b = fx.sub(fx.halves, 1);
  std::vector<LintEvent> stream{
      fx.task({Requirement{a, 0, Privilege::read_write()}}),
      fx.task({Requirement{fx.root, 0, Privilege::read_write()}}),
      fx.task({Requirement{b, 0, Privilege::read_write()}}),
      fx.task({Requirement{b, 0, Privilege::read()},
               Requirement{a, 0, Privilege::read()}}),
  };
  LintReport report = lint(fx.forest, stream);
  EXPECT_TRUE(report.ok()); // a warning, not an error
  ASSERT_EQ(count_rule(report, LintRule::RedundantEdges), 1u)
      << report.to_json();
  const LintFinding& f = report.findings.front();
  EXPECT_EQ(f.rule, LintRule::RedundantEdges);
  EXPECT_EQ(f.item, 3u);
  EXPECT_NE(f.message.find("requirement 1"), std::string::npos) << f.message;
  EXPECT_NE(f.message.find("no ordering"), std::string::npos) << f.message;
}

TEST(Lint, VL007NeverFlagsSingleRequirementLaunches) {
  // A serial chain of whole-region writers followed by a reader: every
  // launch holds one requirement, so however redundant the induced edges
  // are there is no "other requirement" to carry the ordering.
  Fixture fx;
  std::vector<LintEvent> stream{
      fx.task({Requirement{fx.root, 0, Privilege::read_write()}}),
      fx.task({Requirement{fx.root, 0, Privilege::read_write()}}),
      fx.task({Requirement{fx.root, 0, Privilege::read_write()}}),
      fx.task({Requirement{fx.root, 0, Privilege::read()}}),
  };
  LintReport report = lint(fx.forest, stream);
  EXPECT_EQ(count_rule(report, LintRule::RedundantEdges), 0u)
      << report.to_json();
}

TEST(Lint, VL007SkipsLoadBearingRequirements) {
  // Two disjoint chains: the reader's two requirements each carry a
  // distinct un-implied edge, so neither is redundant.
  Fixture fx;
  RegionHandle a = fx.sub(fx.halves, 0);
  RegionHandle b = fx.sub(fx.halves, 1);
  std::vector<LintEvent> stream{
      fx.task({Requirement{a, 0, Privilege::read_write()}}),
      fx.task({Requirement{b, 0, Privilege::read_write()}}),
      fx.task({Requirement{a, 0, Privilege::read()},
               Requirement{b, 0, Privilege::read()}}),
  };
  LintReport report = lint(fx.forest, stream);
  EXPECT_EQ(count_rule(report, LintRule::RedundantEdges), 0u)
      << report.to_json();
}

TEST(Lint, ReportOrdersErrorsFirstAndCapsFindings) {
  Fixture fx;
  std::vector<LintEvent> stream{
      // a warning (aliased-write index launch)...
      fx.index(fx.overlap, Privilege::read_write()),
      // ...then an error (interfering in-task privileges)
      fx.task(
          {Requirement{fx.sub(fx.overlap, 0), 0, Privilege::read_write()},
           Requirement{fx.sub(fx.overlap, 1), 0, Privilege::read()}}),
  };
  LintReport report = lint(fx.forest, stream);
  ASSERT_GE(report.findings.size(), 2u);
  EXPECT_EQ(report.findings.front().severity, LintSeverity::Error);
  EXPECT_EQ(report.errors, 1u);
  EXPECT_EQ(report.warnings, 1u);

  LintOptions capped;
  capped.max_findings = 1;
  LintReport small = lint(fx.forest, stream, capped);
  EXPECT_EQ(small.findings.size(), 1u);
  EXPECT_EQ(small.findings.front().severity, LintSeverity::Error);
  EXPECT_EQ(small.errors, 1u); // counts stay exact past the cap
  EXPECT_EQ(small.warnings, 1u);
}

TEST(Lint, JsonReportHasTheDocumentedShape) {
  Fixture fx;
  std::vector<LintEvent> stream{
      fx.index(fx.overlap, Privilege::read_write())};
  std::string json = lint(fx.forest, stream).to_json();
  for (const char* key :
       {"\"schema_version\":1", "\"errors\":0", "\"warnings\":1",
        "\"rule\":\"VL003\"", "\"name\":\"aliased-write\"",
        "\"severity\":\"warning\"", "\"item\":0"})
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
}

TEST(Lint, RuleIdsAreStable) {
  EXPECT_STREQ(lint_rule_id(LintRule::PartitionClaim), "VL001");
  EXPECT_STREQ(lint_rule_id(LintRule::PrivilegeSubsumption), "VL002");
  EXPECT_STREQ(lint_rule_id(LintRule::AliasedWrite), "VL003");
  EXPECT_STREQ(lint_rule_id(LintRule::OverPrivilege), "VL004");
  EXPECT_STREQ(lint_rule_id(LintRule::UnusedPrivilege), "VL005");
  EXPECT_STREQ(lint_rule_id(LintRule::TraceShape), "VL006");
  EXPECT_STREQ(lint_rule_id(LintRule::RedundantEdges), "VL007");
  EXPECT_STREQ(lint_rule_name(LintRule::RedundantEdges),
               "redundant-edge-producer");
}

} // namespace
} // namespace visrt::analysis
