// Edge-coordinate tests: negative domains, far-apart coordinates, and
// 3-D linearization flowing through a full coherence engine.
#include <gtest/gtest.h>

#include "engine_harness.h"
#include "geom/rect.h"
#include "realm/reduction_ops.h"

namespace visrt {
namespace {

using testing::EngineHarness;

TEST(GeomEdge, NegativeCoordinateRegionsThroughEngines) {
  RegionTreeForest forest;
  RegionHandle root = forest.create_root(IntervalSet(-50, 49), "A");
  PartitionHandle halves = forest.create_partition(
      root, {IntervalSet(-50, -1), IntervalSet(0, 49)}, "halves");
  EXPECT_TRUE(forest.is_disjoint(halves));
  EXPECT_TRUE(forest.is_complete(halves));

  for (Algorithm a : {Algorithm::Paint, Algorithm::Warnock,
                      Algorithm::RayCast}) {
    EngineHarness h(a, &forest);
    EngineHarness oracle(Algorithm::Reference, &forest);
    auto init = RegionData<double>::generate(
        forest.domain(root),
        [](coord_t p) { return static_cast<double>(p); });
    h.init_field(root, 0, init);
    oracle.init_field(root, 0, init);
    for (std::size_t i = 0; i < 2; ++i) {
      Requirement rw{forest.subregion(halves, i), 0,
                     Privilege::read_write()};
      auto body = [](std::vector<RegionData<double>>& b) {
        b[0].for_each([](coord_t p, double& v) {
          v = v * 2 + static_cast<double>(p < 0 ? -p : p) * 0.5;
        });
      };
      auto x = h.run({rw}, body);
      auto y = oracle.run({rw}, body);
      EXPECT_EQ(x.materialized[0], y.materialized[0]) << algorithm_name(a);
    }
    auto x = h.run({Requirement{root, 0, Privilege::read()}}, nullptr);
    auto y = oracle.run({Requirement{root, 0, Privilege::read()}}, nullptr);
    EXPECT_EQ(x.materialized[0], y.materialized[0]) << algorithm_name(a);
  }
}

TEST(GeomEdge, FarApartFragments) {
  // Regions with pieces separated by billions of points: the interval
  // representation must stay O(fragments), not O(volume).
  RegionTreeForest forest;
  constexpr coord_t kFar = 3'000'000'000LL;
  IntervalSet dom{{0, 9}, {kFar, kFar + 9}};
  RegionHandle root = forest.create_root(dom, "A");
  PartitionHandle parts = forest.create_partition(
      root, {IntervalSet(0, 9), IntervalSet(kFar, kFar + 9)}, "parts");

  EngineHarness h(Algorithm::RayCast, &forest);
  h.init_field(root, 0, RegionData<double>::filled(dom, 1.0));
  for (std::size_t i = 0; i < 2; ++i) {
    auto r = h.run({Requirement{forest.subregion(parts, i), 0,
                                Privilege::read_write()}},
                   [](std::vector<RegionData<double>>& b) {
                     b[0].for_each([](coord_t, double& v) { v += 1; });
                   });
    EXPECT_TRUE(r.dependences.empty());
  }
  auto r = h.run({Requirement{root, 0, Privilege::read()}}, nullptr);
  EXPECT_EQ(r.materialized[0].at(0), 2.0);
  EXPECT_EQ(r.materialized[0].at(kFar + 9), 2.0);
  EXPECT_EQ(r.materialized[0].volume(), 20);
}

TEST(GeomEdge, ThreeDimensionalLinearizationThroughEngine) {
  // A 4x4x4 volume partitioned into 2x2x2 octants via Linearizer<3>.
  Linearizer<3> lin(Rect<3>{{0, 0, 0}, {3, 3, 3}});
  RegionTreeForest forest;
  RegionHandle root = forest.create_root(lin.linearize(lin.base()), "vol");
  std::vector<IntervalSet> octants;
  for (coord_t z = 0; z < 2; ++z)
    for (coord_t y = 0; y < 2; ++y)
      for (coord_t x = 0; x < 2; ++x)
        octants.push_back(lin.linearize(Rect<3>{
            {2 * z, 2 * y, 2 * x}, {2 * z + 1, 2 * y + 1, 2 * x + 1}}));
  PartitionHandle oct = forest.create_partition(root, octants, "oct");
  EXPECT_TRUE(forest.is_disjoint(oct));
  EXPECT_TRUE(forest.is_complete(oct));

  EngineHarness h(Algorithm::Warnock, &forest);
  h.init_field(root, 0,
               RegionData<double>::filled(forest.domain(root), 0.0));
  for (std::size_t i = 0; i < 8; ++i) {
    h.run({Requirement{forest.subregion(oct, i), 0,
                       Privilege::read_write()}},
          [i](std::vector<RegionData<double>>& b) {
            b[0].for_each([i](coord_t, double& v) {
              v = static_cast<double>(i);
            });
          });
  }
  auto r = h.run({Requirement{root, 0, Privilege::read()}}, nullptr);
  // Each linearized point belongs to exactly one octant; spot-check the
  // corner points.
  EXPECT_EQ(r.materialized[0].at(lin.linearize(Point<3>{{0, 0, 0}})), 0.0);
  EXPECT_EQ(r.materialized[0].at(lin.linearize(Point<3>{{3, 3, 3}})), 7.0);
  EXPECT_EQ(r.materialized[0].at(lin.linearize(Point<3>{{0, 3, 0}})), 2.0);
  EXPECT_EQ(r.materialized[0].at(lin.linearize(Point<3>{{3, 0, 3}})), 5.0);
}

TEST(GeomEdge, LinearizerWithNegativeBase) {
  Linearizer<2> lin(Rect<2>{{-4, -4}, {3, 3}});
  EXPECT_EQ(lin.linearize(Point<2>{{-4, -4}}), 0);
  EXPECT_EQ(lin.linearize(Point<2>{{3, 3}}), 63);
  for (coord_t r = -4; r <= 3; ++r)
    for (coord_t c = -4; c <= 3; ++c)
      EXPECT_EQ(lin.delinearize(lin.linearize(Point<2>{{r, c}})),
                (Point<2>{{r, c}}));
}

TEST(GeomEdge, SinglePointRegions) {
  RegionTreeForest forest;
  RegionHandle root = forest.create_root(IntervalSet(5, 5), "one");
  EngineHarness h(Algorithm::RayCast, &forest);
  h.init_field(root, 0, RegionData<double>::filled(IntervalSet(5, 5), 9.0));
  auto w = h.run({Requirement{root, 0, Privilege::read_write()}},
                 [](std::vector<RegionData<double>>& b) {
                   EXPECT_EQ(b[0].at(5), 9.0);
                   b[0].at(5) = 11.0;
                 });
  auto r = h.run({Requirement{root, 0, Privilege::read()}}, nullptr);
  EXPECT_EQ(r.dependences, std::vector<LaunchID>{w.id});
  EXPECT_EQ(r.materialized[0].at(5), 11.0);
}

} // namespace
} // namespace visrt
