// The contention-aware analysis profiler (obs/profile.h): TimedMutex
// accounting, phase attribution, and the structure/timing split.  The
// determinism contract under test: every *structure* field (phase kinds,
// labels, event counts) is byte-identical across analysis thread counts,
// while *timing* fields (nanoseconds, worker utilization, lock waits) are
// host state and excluded from any golden.  With -DVISRT_PROFILE=OFF the
// whole layer compiles to stubs; these tests then skip cleanly.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "apps/circuit.h"
#include "obs/profile.h"
#include "runtime/runtime.h"

namespace visrt {
namespace {

/// One fig13-shaped (but small) circuit run with the profiler on.
struct ProfiledCircuit {
  std::unique_ptr<Runtime> rt;
  RunStats stats;
  obs::ProfileReport report;
  std::string structure;

  explicit ProfiledCircuit(unsigned threads, std::uint32_t nodes = 16,
                           bool profile = true, std::size_t shard_batch = 0) {
    RuntimeConfig cfg;
    cfg.algorithm = Algorithm::RayCast;
    cfg.dcr = true;
    cfg.track_values = false;
    cfg.profile = profile;
    cfg.analysis_threads = threads;
    cfg.shard_batch = shard_batch;
    cfg.machine.num_nodes = nodes;
    rt = std::make_unique<Runtime>(cfg);
    apps::CircuitConfig acfg;
    acfg.pieces = nodes;
    acfg.nodes_per_piece = 40;
    acfg.wires_per_piece = 60;
    acfg.iterations = 3;
    apps::CircuitApp app(*rt, acfg);
    app.run();
    stats = rt->finish();
    report = rt->profiler().report(
        static_cast<std::uint64_t>(stats.analysis_wall_s * 1e9));
    structure = rt->profiler().structure_json();
  }
};

TEST(TimedMutex, CountsUncontendedAcquisitions) {
  if (!obs::kProfileEnabled) GTEST_SKIP() << "VISRT_PROFILE=OFF";
  obs::TimedMutex mu;
  for (int i = 0; i < 100; ++i) {
    std::lock_guard<obs::TimedMutex> lock(mu);
  }
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
  const obs::ContentionStats st = mu.stats();
  EXPECT_EQ(st.acquisitions, 101u);
  EXPECT_EQ(st.contended, 0u);
  EXPECT_EQ(st.wait_total_ns, 0u);
  EXPECT_EQ(st.wait_max_ns, 0u);
}

TEST(TimedMutex, MeasuresContendedWaits) {
  if (!obs::kProfileEnabled) GTEST_SKIP() << "VISRT_PROFILE=OFF";
  obs::TimedMutex mu;
  mu.lock();
  std::thread waiter([&] {
    std::lock_guard<obs::TimedMutex> lock(mu);
  });
  // Hold long enough that the waiter reliably blocks.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  mu.unlock();
  waiter.join();
  const obs::ContentionStats st = mu.stats();
  EXPECT_EQ(st.acquisitions, 2u);
  EXPECT_EQ(st.contended, 1u);
  EXPECT_GT(st.wait_total_ns, 0u);
  EXPECT_GE(st.wait_total_ns, st.wait_max_ns);
  EXPECT_GT(st.wait_max_ns, 1000000u); // waited through most of the sleep
}

TEST(TimedMutex, FailedTryLockIsNotAnAcquisition) {
  if (!obs::kProfileEnabled) GTEST_SKIP() << "VISRT_PROFILE=OFF";
  obs::TimedMutex mu;
  mu.lock();
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  EXPECT_EQ(mu.stats().acquisitions, 1u);
}

TEST(Profiler, ScopedPhaseIsNullSafe) {
  obs::ScopedPhase null_phase(nullptr, obs::PhaseKind::Other, "nothing");
  obs::Profiler off; // never enabled
  obs::ScopedPhase disabled_phase(&off, obs::PhaseKind::Merge, "nothing");
  EXPECT_EQ(off.report(0).phases.size(), 0u);
}

TEST(Profiler, StructureIsByteIdenticalAcrossThreadCounts) {
  if (!obs::kProfileEnabled) GTEST_SKIP() << "VISRT_PROFILE=OFF";
  ProfiledCircuit t1(1);
  ProfiledCircuit t8(8);
  // The analysis itself is thread-count invariant...
  EXPECT_EQ(t1.stats.launches, t8.stats.launches);
  EXPECT_EQ(t1.stats.dep_edges, t8.stats.dep_edges);
  // ...and so is the profile's structure: same phases, same event counts.
  EXPECT_EQ(t1.structure, t8.structure);
  ASSERT_EQ(t1.report.phases.size(), t8.report.phases.size());
  for (std::size_t i = 0; i < t1.report.phases.size(); ++i) {
    EXPECT_EQ(t1.report.phases[i].kind, t8.report.phases[i].kind);
    EXPECT_EQ(t1.report.phases[i].label, t8.report.phases[i].label);
    EXPECT_EQ(t1.report.phases[i].events, t8.report.phases[i].events)
        << t1.report.phases[i].label;
  }
}

TEST(Profiler, PhasesCoverTheAnalysisWall) {
  if (!obs::kProfileEnabled) GTEST_SKIP() << "VISRT_PROFILE=OFF";
  ProfiledCircuit run(1);
  ASSERT_GT(run.stats.analysis_wall_s, 0.0);
  ASSERT_FALSE(run.report.phases.empty());
  // The named phases must explain at least 90% of the measured wall; the
  // self-time fan-out attribution is what closes the gap.
  EXPECT_GE(run.report.coverage, 0.9);
  EXPECT_GT(run.report.serial_fraction, 0.0);
  EXPECT_LE(run.report.serial_fraction, 1.0);
  EXPECT_GE(run.report.amdahl_max_speedup, 1.0);
  // The canonical-order combine loops and the engine scans are all present.
  bool has_emit_merge = false, has_scan = false, has_fanout = false;
  for (const obs::PhaseTotal& p : run.report.phases) {
    if (p.label == "runtime/emit_graph")
      has_emit_merge = p.kind == obs::PhaseKind::Combine;
    if (p.kind == obs::PhaseKind::ShardScan && p.events > 0) has_scan = true;
    if (p.label == "runtime/materialize_fanout") has_fanout = true;
  }
  EXPECT_TRUE(has_emit_merge);
  EXPECT_TRUE(has_scan);
  EXPECT_TRUE(has_fanout);
}

TEST(Profiler, WorkersAndGroupsPopulateInParallelMode) {
  if (!obs::kProfileEnabled) GTEST_SKIP() << "VISRT_PROFILE=OFF";
  // shard_batch=1 forces the finest sharding so even this small circuit's
  // two-field launches dispatch to the worker pool.
  ProfiledCircuit run(4, 16, true, 1);
  EXPECT_GT(run.report.groups, 0u);
  EXPECT_GT(run.report.group_tasks, 0u);
  EXPECT_GE(run.report.group_tasks, run.report.groups);
  std::uint64_t tasks = 0;
  for (const obs::WorkerTotal& w : run.report.workers) tasks += w.tasks;
  EXPECT_EQ(tasks, run.report.group_tasks);
  // The lock roster always includes the executor queue in parallel mode.
  bool has_queue = false;
  for (const auto& [name, st] : run.report.locks) {
    if (name == "executor.queue") has_queue = st.acquisitions > 0;
  }
  EXPECT_TRUE(has_queue);
  // The profiler's wall-clock timeline names its worker lanes.
  std::ostringstream trace;
  run.rt->export_profile_trace(trace);
  EXPECT_NE(trace.str().find("analysis profiler"), std::string::npos);
  EXPECT_NE(trace.str().find("\"ph\":\"X\""), std::string::npos);
}

TEST(Profiler, TimingJsonCarriesTheAttributionFields) {
  if (!obs::kProfileEnabled) GTEST_SKIP() << "VISRT_PROFILE=OFF";
  ProfiledCircuit run(2);
  const std::string json = run.rt->profile_json();
  for (const char* key :
       {"\"schema_version\":1", "\"structure\"", "\"timing\"",
        "\"serial_fraction\"", "\"amdahl_max_speedup\"",
        "\"critical_path_ns\"", "\"locks\"", "\"events_dropped\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(Profiler, DisabledProfilerRecordsNothing) {
  ProfiledCircuit run(4, 16, /*profile=*/false);
  EXPECT_FALSE(run.rt->profiler().enabled());
  EXPECT_TRUE(run.report.phases.empty());
  EXPECT_EQ(run.report.groups, 0u);
  EXPECT_EQ(run.structure, "{\"phases\":[]}");
}

TEST(Profiler, CompiledOutBuildReportsDisabled) {
  if (obs::kProfileEnabled) GTEST_SKIP() << "VISRT_PROFILE=ON build";
  // The stub layer: everything is inert and the JSON says so.
  ProfiledCircuit run(4);
  EXPECT_FALSE(run.rt->profiler().enabled());
  EXPECT_TRUE(run.report.phases.empty());
  EXPECT_NE(run.rt->profile_json().find("\"enabled\":false"),
            std::string::npos);
}

} // namespace
} // namespace visrt
