// Differential property suite for the order-maintenance structure
// (common/order_maintenance.h): `precedes()` is compared bit-for-bit
// against a brute-force transitive closure over randomized DAGs, through
// append-order edge streams, late-edge relabels, retirement-style prefix
// removal, and op-id remapping (contiguous and scattered, as
// WorkGraph::retire_ready_before produces).  Labeled `concurrency` so the
// tsan leg also exercises the concurrent const-query path.

#include "common/order_maintenance.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace visrt {
namespace {

constexpr std::uint64_t kRetired = ~std::uint64_t{0};

/// Brute-force ground truth: reach[b] holds one bit per node a with a
/// transitive path a -> b.  Node ids are absolute; rows are dense over
/// [0, n).
class Closure {
public:
  explicit Closure(std::size_t n) : n_(n), reach_(n, std::vector<bool>(n)) {}

  void add_edge(std::size_t from, std::size_t to) {
    if (reach_[to][from]) return;
    reach_[to][from] = true;
    // Re-close: to (and everything downstream of it) now sees from's
    // ancestors.  Quadratic is fine — this is the oracle.
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t b = 0; b < n_; ++b)
        for (std::size_t a = 0; a < n_; ++a) {
          if (!reach_[b][a]) continue;
          for (std::size_t p = 0; p < n_; ++p)
            if (reach_[a][p] && !reach_[b][p]) {
              reach_[b][p] = true;
              changed = true;
            }
        }
    }
  }

  bool precedes(std::size_t a, std::size_t b) const { return reach_[b][a]; }

private:
  std::size_t n_;
  std::vector<std::vector<bool>> reach_;
};

/// Compare every resident pair of `om` against the oracle, with ids
/// translated through `om_of_truth` (entry t = om id of truth node t, or
/// kRetired when that node retired out of the structure).
void expect_equivalent(const OrderMaintenance& om, const Closure& truth,
                       const std::vector<std::uint64_t>& om_of_truth) {
  for (std::size_t a = 0; a < om_of_truth.size(); ++a) {
    if (om_of_truth[a] == kRetired) continue;
    for (std::size_t b = 0; b < om_of_truth.size(); ++b) {
      if (om_of_truth[b] == kRetired) continue;
      ASSERT_EQ(om.precedes(om_of_truth[a], om_of_truth[b]),
                truth.precedes(a, b))
          << "pair " << a << " -> " << b;
    }
  }
}

TEST(OrderMaintenance, HandBuiltDiamond) {
  // 0 -> 1 -> 3, 0 -> 2 -> 3; 4 isolated.
  OrderMaintenance om;
  for (std::uint64_t id = 0; id < 5; ++id) om.add_node(id);
  om.add_edge(0, 1);
  om.add_edge(0, 2);
  om.add_edge(1, 3);
  om.add_edge(2, 3);
  EXPECT_TRUE(om.precedes(0, 1));
  EXPECT_TRUE(om.precedes(0, 2));
  EXPECT_TRUE(om.precedes(0, 3));
  EXPECT_TRUE(om.precedes(1, 3));
  EXPECT_TRUE(om.precedes(2, 3));
  EXPECT_FALSE(om.precedes(1, 2));
  EXPECT_FALSE(om.precedes(2, 1));
  EXPECT_FALSE(om.precedes(3, 0));
  for (std::uint64_t id = 0; id < 4; ++id) {
    EXPECT_FALSE(om.precedes(id, 4));
    EXPECT_FALSE(om.precedes(4, id));
    EXPECT_FALSE(om.precedes(id, id));
  }
}

TEST(OrderMaintenance, AppendOrderEdgesNeverRelabel) {
  Rng rng(7);
  OrderMaintenance om;
  for (std::uint64_t id = 0; id < 200; ++id) {
    om.add_node(id);
    if (id == 0) continue;
    std::size_t degree = rng.below(4);
    for (std::size_t e = 0; e < degree; ++e)
      om.add_edge(rng.below(id), id);
  }
  EXPECT_EQ(om.stats().relabels, 0u);
  EXPECT_EQ(om.stats().nodes, 200u);
}

TEST(OrderMaintenance, LateEdgesRelabelAndStayCorrect) {
  // Grow a random DAG in append order, then add edges to *older* targets
  // and check the suffix relabel restores exact equivalence.
  Rng rng(21);
  const std::size_t n = 60;
  OrderMaintenance om;
  Closure truth(n);
  std::vector<std::uint64_t> ids(n);
  for (std::size_t id = 0; id < n; ++id) {
    ids[id] = id;
    om.add_node(id);
    for (std::size_t e = 0; e < rng.below(3); ++e) {
      std::size_t from = rng.below(id ? id : 1);
      if (from == id) continue;
      om.add_edge(from, id);
      truth.add_edge(from, id);
    }
  }
  for (int late = 0; late < 30; ++late) {
    std::size_t to = 1 + rng.below(n - 1);
    std::size_t from = rng.below(to);
    om.add_edge(from, to);
    truth.add_edge(from, to);
  }
  EXPECT_GT(om.stats().relabels, 0u);
  expect_equivalent(om, truth, ids);
}

TEST(OrderMaintenance, RandomDagsDifferentialSweep) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 977);
    const std::size_t n = 20 + rng.below(60);
    OrderMaintenance om;
    Closure truth(n);
    std::vector<std::uint64_t> ids(n);
    for (std::size_t id = 0; id < n; ++id) {
      ids[id] = id;
      om.add_node(id);
      // Mixed shape: mostly fresh-node edges, occasionally a late edge to
      // an earlier target.
      for (std::size_t e = 0; e < rng.below(4); ++e) {
        std::size_t to = id;
        if (id >= 2 && rng.chance(0.15)) to = 1 + rng.below(id - 1);
        if (to == 0) continue;
        std::size_t from = rng.below(to);
        om.add_edge(from, to);
        truth.add_edge(from, to);
      }
    }
    expect_equivalent(om, truth, ids);
    const OrderStats& stats = om.stats();
    EXPECT_EQ(stats.nodes, n);
    EXPECT_GE(stats.chains, stats.active_chains);
  }
}

TEST(OrderMaintenance, RetirePrefixKeepsResidentOrder) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 1313);
    const std::size_t n = 80;
    OrderMaintenance om;
    Closure truth(n);
    std::vector<std::uint64_t> ids(n, kRetired);
    std::size_t next = 0;
    std::uint64_t base = 0;
    while (next < n) {
      // Grow a chunk...
      std::size_t chunk = 1 + rng.below(20);
      for (; chunk > 0 && next < n; --chunk, ++next) {
        ids[next] = next;
        om.add_node(next);
        for (std::size_t e = 0; e < rng.below(3); ++e) {
          std::uint64_t from = base + rng.below(next - base ? next - base : 1);
          if (from >= next) continue;
          om.add_edge(from, next);
          truth.add_edge(from, next);
        }
      }
      // ...then retire a random prefix of the resident window.
      if (next > base && rng.chance(0.7)) {
        std::uint64_t new_base = base + rng.below(next - base + 1);
        om.retire_prefix(new_base);
        for (std::uint64_t id = base; id < new_base; ++id) ids[id] = kRetired;
        base = new_base;
        EXPECT_EQ(om.base(), base);
      }
      expect_equivalent(om, truth, ids);
    }
  }
}

TEST(OrderMaintenance, RemapContiguousRenumbering) {
  // Retire a prefix by renumbering survivors down to a new origin — the
  // WorkGraph::retire_ready_before compaction shape.
  Rng rng(4242);
  const std::size_t n = 50;
  OrderMaintenance om;
  Closure truth(n);
  std::vector<std::uint64_t> ids(n);
  for (std::size_t id = 0; id < n; ++id) {
    ids[id] = id;
    om.add_node(id);
    for (std::size_t e = 0; e < rng.below(3); ++e) {
      std::size_t from = rng.below(id ? id : 1);
      if (from == id) continue;
      om.add_edge(from, id);
      truth.add_edge(from, id);
    }
  }
  const std::size_t drop = 17;
  std::vector<std::uint64_t> old_to_new(n);
  for (std::size_t i = 0; i < n; ++i)
    old_to_new[i] = i < drop ? kRetired : i - drop;
  om.remap_ids(old_to_new, kRetired);
  EXPECT_EQ(om.base(), 0u);
  EXPECT_EQ(om.end(), n - drop);
  for (std::size_t i = 0; i < n; ++i)
    ids[i] = i < drop ? kRetired : i - drop;
  expect_equivalent(om, truth, ids);
  // The structure keeps growing at the remapped origin.
  om.add_node(n - drop);
  om.add_edge(0, n - drop);
  EXPECT_TRUE(om.precedes(0, n - drop));
}

TEST(OrderMaintenance, RemapScatteredRetirement) {
  // Scattered retirement: interior nodes drop out and survivors compact,
  // including chain tails (their chains seal but stay queryable).
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 31337);
    const std::size_t n = 40;
    OrderMaintenance om;
    Closure truth(n);
    std::vector<std::uint64_t> ids(n);
    for (std::size_t id = 0; id < n; ++id) {
      ids[id] = id;
      om.add_node(id);
      for (std::size_t e = 0; e < rng.below(3); ++e) {
        std::size_t from = rng.below(id ? id : 1);
        if (from == id) continue;
        om.add_edge(from, id);
        truth.add_edge(from, id);
      }
    }
    std::vector<std::uint64_t> old_to_new(n);
    std::uint64_t next_id = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.chance(0.4)) {
        old_to_new[i] = kRetired;
        ids[i] = kRetired;
      } else {
        old_to_new[i] = next_id;
        ids[i] = next_id;
        ++next_id;
      }
    }
    om.remap_ids(old_to_new, kRetired);
    expect_equivalent(om, truth, ids);
  }
}

TEST(OrderMaintenance, ConcurrentConstQueries) {
  // precedes() is const and must be safe to call from many threads once
  // the structure is quiescent (the spy's sweep does exactly this under
  // the parallel executor).  stats() first forces label finalization.
  Rng rng(99);
  const std::size_t n = 300;
  OrderMaintenance om;
  for (std::size_t id = 0; id < n; ++id) {
    om.add_node(id);
    for (std::size_t e = 0; e < rng.below(3); ++e) {
      std::size_t from = rng.below(id ? id : 1);
      if (from != id) om.add_edge(from, id);
    }
  }
  (void)om.stats();
  std::vector<std::uint64_t> counts(4, 0);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < counts.size(); ++t) {
    threads.emplace_back([&om, &counts, t, n] {
      std::uint64_t hits = 0;
      for (std::size_t a = t; a < n; a += 4)
        for (std::size_t b = 0; b < n; ++b)
          if (om.precedes(a, b)) ++hits;
      counts[t] = hits + 1;
    });
  }
  for (std::thread& th : threads) th.join();
  for (std::uint64_t c : counts) EXPECT_GT(c, 0u);
}

} // namespace
} // namespace visrt
