// Cross-mode equivalence: the parallel analysis executor must be
// invisible in every observable result.  Each corpus program runs through
// all six engines, with and without DCR, at 1, 2 and 8 analysis lanes;
// the dependence DAG, the replayed DES schedule, the per-launch
// materialized values and the final field values must be bit-identical to
// the sequential run, and the spy verifier must stay clean in parallel
// mode.  This is the lockdown for the determinism-by-construction
// argument in docs/PERFORMANCE.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <vector>

#include "fuzz/oracle.h"
#include "fuzz/serialize.h"

#ifndef VISRT_CORPUS_DIR
#error "VISRT_CORPUS_DIR must point at tests/corpus"
#endif

namespace visrt::fuzz {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

constexpr Algorithm kSubjects[] = {
    Algorithm::Paint,        Algorithm::Warnock,
    Algorithm::RayCast,      Algorithm::NaivePaint,
    Algorithm::NaiveWarnock, Algorithm::NaiveRayCast,
};

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(VISRT_CORPUS_DIR))
    if (entry.path().extension() == ".visprog") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

ProgramSpec load(const std::filesystem::path& path) {
  std::ifstream is(path);
  return read_visprog(is);
}

TEST(ParallelEquivalence, ThreadsDirectiveRoundTrips) {
  ProgramSpec spec = load(corpus_files().front());
  spec.analysis_threads = 8;
  ProgramSpec again = parse_visprog(to_visprog(spec));
  EXPECT_EQ(again.analysis_threads, 8u);
  EXPECT_EQ(again, spec);
}

TEST(ParallelEquivalence, EveryEngineIsBitIdenticalAcrossThreadCounts) {
  for (const std::filesystem::path& path : corpus_files()) {
    ProgramSpec spec = load(path);
    for (Algorithm subject : kSubjects) {
      for (bool dcr : {false, true}) {
        ProgramSpec variant = spec;
        variant.subject = subject;
        variant.dcr = dcr;

        variant.analysis_threads = 1;
        RunResult sequential = run_program(variant);
        ASSERT_FALSE(sequential.crashed)
            << path.filename() << " on " << algorithm_name(subject)
            << (dcr ? "+dcr" : "") << ": " << sequential.crash_message;

        for (unsigned threads : kThreadCounts) {
          variant.analysis_threads = threads;
          RunResult parallel = run_program(variant);
          std::string label =
              std::string(path.filename()) + " on " +
              algorithm_name(subject) + (dcr ? "+dcr" : "") + " threads=" +
              std::to_string(threads);
          ASSERT_FALSE(parallel.crashed)
              << label << ": " << parallel.crash_message;
          // The dependence DAG and the DES schedule are the determinism
          // contract; the value hashes pin down the painted data too.
          EXPECT_EQ(parallel.dep_graph_hash, sequential.dep_graph_hash)
              << label;
          EXPECT_EQ(parallel.schedule_hash, sequential.schedule_hash)
              << label;
          EXPECT_EQ(parallel.dep_edges, sequential.dep_edges) << label;
          EXPECT_EQ(parallel.traced_launches, sequential.traced_launches)
              << label;
          EXPECT_EQ(parallel.launch_hashes, sequential.launch_hashes)
              << label;
          EXPECT_EQ(parallel.final_hashes, sequential.final_hashes) << label;
        }
      }
    }
  }
}

TEST(ParallelEquivalence, SpyVerifiesParallelMode) {
  // Reference-free ground truth: the dependence graphs and schedules
  // emitted in parallel mode verify sound and precise on their own, not
  // merely equal to sequential ones.
  for (const std::filesystem::path& path : corpus_files()) {
    ProgramSpec spec = load(path);
    for (Algorithm subject : kSubjects) {
      ProgramSpec variant = spec;
      variant.subject = subject;
      variant.analysis_threads = 8;
      SpyCheckResult result = spy_check(variant);
      ASSERT_FALSE(result.crashed)
          << path.filename() << " on " << algorithm_name(subject) << ": "
          << result.crash_message;
      EXPECT_TRUE(result.report.clean())
          << path.filename() << " on " << algorithm_name(subject) << ": "
          << result.report.summary();
    }
  }
}

TEST(ParallelEquivalence, DifferentialOracleInParallelMode) {
  // The full differential check (vs the sequential Reference engine) with
  // the subject running on 8 lanes.
  for (const std::filesystem::path& path : corpus_files()) {
    ProgramSpec spec = load(path);
    spec.analysis_threads = 8;
    for (Algorithm subject : kSubjects) {
      ProgramSpec variant = spec;
      variant.subject = subject;
      DiffReport report = check_program(variant);
      EXPECT_FALSE(report)
          << path.filename() << " on " << algorithm_name(subject) << ": "
          << failure_kind_name(report.kind) << ": " << report.detail;
    }
  }
}

} // namespace
} // namespace visrt::fuzz
