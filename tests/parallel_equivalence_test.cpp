// Cross-mode equivalence: the parallel analysis executor must be
// invisible in every observable result.  Each corpus program runs through
// all six engines, with and without DCR, across analysis lane counts and
// adversarial shard batch granularities (finest, prime, larger than any
// loop); the dependence DAG, the replayed DES schedule, the per-launch
// materialized values and the final field values must be bit-identical to
// the sequential run, the provenance and lifecycle ledgers must be
// byte-identical, and the spy verifier must stay clean in parallel mode.
// This is the lockdown for the determinism-by-construction argument in
// docs/PERFORMANCE.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "fuzz/oracle.h"
#include "fuzz/serialize.h"
#include "runtime/runtime.h"
#include "visibility/dep_graph.h"

#ifndef VISRT_CORPUS_DIR
#error "VISRT_CORPUS_DIR must point at tests/corpus"
#endif

namespace visrt::fuzz {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 3, 5, 8};

// Adversarial shard batch granularities: finest possible (every index its
// own shard), a prime that never divides the loop sizes evenly, and one
// larger than any loop in the corpus (forces every loop inline).
constexpr std::size_t kBatchGranularities[] = {1, 7, std::size_t{1} << 20};

constexpr Algorithm kSubjects[] = {
    Algorithm::Paint,        Algorithm::Warnock,
    Algorithm::RayCast,      Algorithm::NaivePaint,
    Algorithm::NaiveWarnock, Algorithm::NaiveRayCast,
};

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(VISRT_CORPUS_DIR))
    if (entry.path().extension() == ".visprog") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

ProgramSpec load(const std::filesystem::path& path) {
  std::ifstream is(path);
  return read_visprog(is);
}

TEST(ParallelEquivalence, ThreadsDirectiveRoundTrips) {
  ProgramSpec spec = load(corpus_files().front());
  spec.analysis_threads = 8;
  ProgramSpec again = parse_visprog(to_visprog(spec));
  EXPECT_EQ(again.analysis_threads, 8u);
  EXPECT_EQ(again, spec);
}

TEST(ParallelEquivalence, ShardBatchDirectiveRoundTrips) {
  ProgramSpec spec = load(corpus_files().front());
  spec.shard_batch = 7;
  ProgramSpec again = parse_visprog(to_visprog(spec));
  EXPECT_EQ(again.shard_batch, 7u);
  EXPECT_EQ(again, spec);
  // The default (0 = site-chosen grain) is not serialized, so existing
  // corpora keep parsing and re-serializing byte-identically.
  spec.shard_batch = 0;
  EXPECT_EQ(to_visprog(spec).find("shard_batch"), std::string::npos);
}

TEST(ParallelEquivalence, EveryEngineIsBitIdenticalAcrossThreadCounts) {
  for (const std::filesystem::path& path : corpus_files()) {
    ProgramSpec spec = load(path);
    for (Algorithm subject : kSubjects) {
      for (bool dcr : {false, true}) {
        ProgramSpec variant = spec;
        variant.subject = subject;
        variant.dcr = dcr;

        variant.analysis_threads = 1;
        RunResult sequential = run_program(variant);
        ASSERT_FALSE(sequential.crashed)
            << path.filename() << " on " << algorithm_name(subject)
            << (dcr ? "+dcr" : "") << ": " << sequential.crash_message;

        for (unsigned threads : kThreadCounts) {
          variant.analysis_threads = threads;
          RunResult parallel = run_program(variant);
          std::string label =
              std::string(path.filename()) + " on " +
              algorithm_name(subject) + (dcr ? "+dcr" : "") + " threads=" +
              std::to_string(threads);
          ASSERT_FALSE(parallel.crashed)
              << label << ": " << parallel.crash_message;
          // The dependence DAG and the DES schedule are the determinism
          // contract; the value hashes pin down the painted data too.
          EXPECT_EQ(parallel.dep_graph_hash, sequential.dep_graph_hash)
              << label;
          EXPECT_EQ(parallel.schedule_hash, sequential.schedule_hash)
              << label;
          EXPECT_EQ(parallel.dep_edges, sequential.dep_edges) << label;
          EXPECT_EQ(parallel.traced_launches, sequential.traced_launches)
              << label;
          EXPECT_EQ(parallel.launch_hashes, sequential.launch_hashes)
              << label;
          EXPECT_EQ(parallel.final_hashes, sequential.final_hashes) << label;
        }
      }
    }
  }
}

TEST(ParallelEquivalence, AdversarialBatchGranularitiesAreBitIdentical) {
  // The shard batch knob changes only how work is chunked, never what is
  // computed: every granularity must reproduce the sequential results.
  for (const std::filesystem::path& path : corpus_files()) {
    ProgramSpec spec = load(path);
    for (Algorithm subject : kSubjects) {
      for (bool dcr : {false, true}) {
        ProgramSpec variant = spec;
        variant.subject = subject;
        variant.dcr = dcr;

        variant.analysis_threads = 1;
        variant.shard_batch = 0;
        RunResult sequential = run_program(variant);
        ASSERT_FALSE(sequential.crashed)
            << path.filename() << " on " << algorithm_name(subject)
            << (dcr ? "+dcr" : "") << ": " << sequential.crash_message;

        for (unsigned threads : {3u, 8u}) {
          for (std::size_t batch : kBatchGranularities) {
            variant.analysis_threads = threads;
            variant.shard_batch = batch;
            RunResult parallel = run_program(variant);
            std::string label = std::string(path.filename()) + " on " +
                                algorithm_name(subject) +
                                (dcr ? "+dcr" : "") + " threads=" +
                                std::to_string(threads) + " batch=" +
                                std::to_string(batch);
            ASSERT_FALSE(parallel.crashed)
                << label << ": " << parallel.crash_message;
            EXPECT_EQ(parallel.dep_graph_hash, sequential.dep_graph_hash)
                << label;
            EXPECT_EQ(parallel.schedule_hash, sequential.schedule_hash)
                << label;
            EXPECT_EQ(parallel.dep_edges, sequential.dep_edges) << label;
            EXPECT_EQ(parallel.launch_hashes, sequential.launch_hashes)
                << label;
            EXPECT_EQ(parallel.final_hashes, sequential.final_hashes)
                << label;
          }
        }
      }
    }
  }
}

/// Every dependence edge with its provenance record, serialized in
/// canonical (to, from) order — the byte-compare target for the
/// provenance ledger.  Empty when the build has VISRT_PROVENANCE off.
std::string provenance_ledger(const Runtime& rt) {
  std::ostringstream os;
  const DepGraph& g = rt.dep_graph();
  for (LaunchID to = g.base(); to < g.task_count(); ++to) {
    for (LaunchID from : g.preds(to)) {
      os << from << "->" << to;
      if (const obs::EdgeProvenance* p = g.provenance(from, to)) {
        os << " engine=" << static_cast<unsigned>(p->engine)
           << " phase=" << static_cast<unsigned>(p->phase)
           << " region=" << p->region << " eqset=" << p->eqset
           << " field=" << p->field << " prev=" << to_string(p->prev)
           << " cur=" << to_string(p->cur);
      }
      os << "\n";
    }
  }
  return os.str();
}

TEST(ParallelEquivalence, ProvenanceAndLifecycleLedgersAreByteIdentical) {
  // Provenance records and lifecycle events are emitted from the
  // sequential canonical-order combine loops, so the full ledgers — not
  // just hashes — must be byte-identical across thread counts and batch
  // granularities.
  const std::filesystem::path path = corpus_files().front();
  ProgramSpec spec = load(path);
  spec.dcr = true;
  for (Algorithm subject : kSubjects) {
    ProgramSpec variant = spec;
    variant.subject = subject;

    LiveRunOptions base_opts;
    base_opts.analysis_threads = 1;
    LiveRun base = run_program_live(variant, base_opts);
    ASSERT_NE(base.runtime, nullptr)
        << algorithm_name(subject) << ": " << base.result.crash_message;
    const std::string base_prov = provenance_ledger(*base.runtime);
    const std::string base_life = base.runtime->lifecycle().json();
    if (obs::kProvenanceEnabled) EXPECT_FALSE(base_prov.empty());

    for (unsigned threads : kThreadCounts) {
      for (std::size_t batch : kBatchGranularities) {
        LiveRunOptions opts;
        opts.analysis_threads = threads;
        opts.shard_batch = batch;
        LiveRun run = run_program_live(variant, opts);
        std::string label = std::string(algorithm_name(subject)) +
                            " threads=" + std::to_string(threads) +
                            " batch=" + std::to_string(batch);
        ASSERT_NE(run.runtime, nullptr)
            << label << ": " << run.result.crash_message;
        EXPECT_EQ(provenance_ledger(*run.runtime), base_prov) << label;
        EXPECT_EQ(run.runtime->lifecycle().json(), base_life) << label;
      }
    }
  }
}

TEST(ParallelEquivalence, SpyVerifiesParallelMode) {
  // Reference-free ground truth: the dependence graphs and schedules
  // emitted in parallel mode verify sound and precise on their own, not
  // merely equal to sequential ones.
  for (const std::filesystem::path& path : corpus_files()) {
    ProgramSpec spec = load(path);
    for (Algorithm subject : kSubjects) {
      ProgramSpec variant = spec;
      variant.subject = subject;
      variant.analysis_threads = 8;
      SpyCheckResult result = spy_check(variant);
      ASSERT_FALSE(result.crashed)
          << path.filename() << " on " << algorithm_name(subject) << ": "
          << result.crash_message;
      EXPECT_TRUE(result.report.clean())
          << path.filename() << " on " << algorithm_name(subject) << ": "
          << result.report.summary();
    }
  }
}

TEST(ParallelEquivalence, DifferentialOracleInParallelMode) {
  // The full differential check (vs the sequential Reference engine) with
  // the subject running on 8 lanes.
  for (const std::filesystem::path& path : corpus_files()) {
    ProgramSpec spec = load(path);
    spec.analysis_threads = 8;
    for (Algorithm subject : kSubjects) {
      ProgramSpec variant = spec;
      variant.subject = subject;
      DiffReport report = check_program(variant);
      EXPECT_FALSE(report)
          << path.filename() << " on " << algorithm_name(subject) << ": "
          << failure_kind_name(report.kind) << ": " << report.detail;
    }
  }
}

} // namespace
} // namespace visrt::fuzz
