// Shared test harness: drives a CoherenceEngine through the run_task
// protocol of the paper's Figure 6 (materialize every argument, run the
// body, commit every argument) and records the dependences it reports.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "visibility/dep_graph.h"
#include "visibility/engine.h"

namespace visrt::testing {

/// A task body: receives the materialized buffers, one per requirement.
using Body = std::function<void(std::vector<RegionData<double>>&)>;

class EngineHarness {
public:
  EngineHarness(Algorithm algorithm, const RegionTreeForest* forest,
                bool track_values = true) {
    EngineConfig config;
    config.forest = forest;
    config.track_values = track_values;
    engine_ = make_engine(algorithm, config);
  }

  CoherenceEngine& engine() { return *engine_; }
  const DepGraph& deps() const { return deps_; }
  LaunchID next_launch() const { return next_; }

  void init_field(RegionHandle root, FieldID field,
                  RegionData<double> initial) {
    engine_->initialize_field(root, field, std::move(initial), 0);
  }

  struct TaskResult {
    LaunchID id;
    std::vector<LaunchID> dependences;            // union over requirements
    std::vector<RegionData<double>> materialized; // pre-body values
  };

  /// Figure 6 run_task.  The body mutates the materialized buffers in
  /// place; read-privilege buffers must be left untouched.
  TaskResult run(const std::vector<Requirement>& reqs, const Body& body,
                 NodeID mapped_node = 0, NodeID analysis_node = 0) {
    LaunchID id = next_++;
    deps_.add_task(id);
    AnalysisContext ctx{id, mapped_node, analysis_node};
    TaskResult result;
    result.id = id;

    std::vector<RegionData<double>> buffers;
    for (const Requirement& req : reqs) {
      MaterializeResult mr = engine_->materialize(req, ctx);
      for (LaunchID d : mr.dependences) {
        auto it = std::lower_bound(result.dependences.begin(),
                                   result.dependences.end(), d);
        if (it == result.dependences.end() || *it != d)
          result.dependences.insert(it, d);
      }
      buffers.push_back(std::move(mr.data));
    }
    result.materialized = buffers;
    if (body) body(buffers);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      engine_->commit(reqs[i], buffers[i], ctx);
    }
    deps_.add_edges(id, result.dependences);
    return result;
  }

private:
  std::unique_ptr<CoherenceEngine> engine_;
  DepGraph deps_;
  LaunchID next_ = 0;
};

} // namespace visrt::testing
