// Tests for the telemetry subsystem: obs::Recorder spans and counter
// series in isolation, then end-to-end through the Runtime — golden series
// names, monotone cumulative gauges, per-node busy-time accounting, the
// metrics JSON schema, and the enriched Chrome trace.
#include "obs/recorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <thread>

#include "json_util.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"

namespace visrt {
namespace {

// ---------------------------------------------------------------------------
// Recorder unit tests

TEST(Recorder, DisabledByDefault) {
  obs::Recorder r;
  EXPECT_FALSE(r.enabled());
  obs::SpanID id = r.begin_span(obs::SpanKind::Phase, "x", 0, 0);
  EXPECT_EQ(id, obs::kInvalidSpan);
  r.end_span(id, AnalysisCounters{});
  EXPECT_TRUE(r.spans().empty());
  EXPECT_EQ(r.spans_dropped(), 0u);
}

TEST(Recorder, ScopedSpanOnNullOrDisabledRecorderIsANoOp) {
  AnalysisCounters local;
  {
    obs::ScopedSpan s(nullptr, obs::SpanKind::Phase, "x", 0, 0, &local);
    local.eqset_visits += 1;
  }
  obs::Recorder r;
  {
    obs::ScopedSpan s(&r, obs::SpanKind::Phase, "x", 0, 0, &local);
    local.eqset_visits += 1;
  }
  EXPECT_TRUE(r.spans().empty());
}

TEST(Recorder, WorkerSpansAdoptTheParentHint) {
  // A worker lane has no open span of its own; its first span must nest
  // under the hint (the launch span the submitting thread had open),
  // while spans on the submitting thread keep nesting off its stack.
  obs::Recorder r;
  r.enable();
  obs::ScopedSpan launch(&r, obs::SpanKind::Launch, "task", 0, 0);
  std::thread worker([&] {
    obs::ScopedSpan mat(&r, obs::SpanKind::Materialize, "materialize", 0, 0,
                        nullptr, nullptr, launch.id());
    obs::ScopedSpan phase(&r, obs::SpanKind::Phase, "history_walk", 0, 0);
  });
  worker.join();
  // The (still open) launch span is index 0; the worker's spans follow in
  // stamp order: materialize under the hint, then its phase child.
  ASSERT_EQ(r.spans().size(), 3u);
  EXPECT_EQ(r.spans()[1].kind, obs::SpanKind::Materialize);
  EXPECT_EQ(r.spans()[1].parent, launch.id());
  EXPECT_EQ(r.spans()[2].kind, obs::SpanKind::Phase);
  EXPECT_EQ(r.spans()[2].parent, 1u);
}

TEST(Recorder, ConcurrentEmissionSerializesToValidStampedJson) {
  // Two workers interleave span emission; the recorder must serialize to
  // valid JSON with strictly monotonic stamps and per-thread nesting kept
  // intact (regression test for the span stack races of the sequential
  // recorder).
  obs::Recorder r;
  r.enable();
  constexpr int kSpansPerWorker = 200;
  auto emit = [&](NodeID node) {
    for (int i = 0; i < kSpansPerWorker; ++i) {
      AnalysisCounters local;
      obs::ScopedSpan outer(&r, obs::SpanKind::Materialize, "materialize",
                            static_cast<LaunchID>(i), node, &local);
      obs::ScopedSpan inner(&r, obs::SpanKind::Phase, "history_walk",
                            static_cast<LaunchID>(i), node, &local);
      local.history_entries += 1;
    }
  };
  std::thread a([&] { emit(1); });
  std::thread b([&] { emit(2); });
  a.join();
  b.join();

  ASSERT_EQ(r.spans().size(), 4u * kSpansPerWorker);
  for (std::size_t i = 0; i < r.spans().size(); ++i) {
    const obs::Span& span = r.spans()[i];
    // Stamps are the begin order: spans_[i].stamp == i by construction.
    EXPECT_EQ(span.stamp, i);
    // Nesting never crosses threads: each phase's parent is a materialize
    // span emitted by the same node.
    if (span.kind == obs::SpanKind::Phase) {
      ASSERT_LT(span.parent, r.spans().size());
      const obs::Span& parent = r.spans()[span.parent];
      EXPECT_EQ(parent.kind, obs::SpanKind::Materialize);
      EXPECT_EQ(parent.node, span.node);
      EXPECT_EQ(parent.launch, span.launch);
    }
  }

  std::string json = obs::spans_json(r);
  auto parsed = testjson::parse(json);
  ASSERT_TRUE(parsed.has_value()) << "spans_json emitted invalid JSON";
  ASSERT_TRUE(parsed->is_array());
  ASSERT_EQ(parsed->array().size(), r.spans().size());
  for (std::size_t i = 0; i < parsed->array().size(); ++i) {
    const testjson::Value& v = parsed->array()[i];
    EXPECT_EQ(static_cast<std::size_t>(v.at("stamp").number()), i);
    EXPECT_TRUE(v.at("parent").is_null() || v.at("parent").is_number());
  }
}

TEST(Recorder, ScopedSpanCapturesLocalDeltaAndStepSuffix) {
  obs::Recorder r;
  r.enable();
  AnalysisCounters local;
  local.history_entries = 5; // pre-existing work: excluded from the span
  std::vector<AnalysisStep> steps;
  AnalysisStep pre;
  pre.counters.eqset_visits = 100; // pre-existing step: excluded too
  steps.push_back(pre);
  {
    obs::ScopedSpan outer(&r, obs::SpanKind::Materialize, "materialize", 7, 1,
                          &local, &steps);
    local.history_entries += 3;
    {
      obs::ScopedSpan inner(&r, obs::SpanKind::Phase, "history_walk", 7, 1,
                            &local, nullptr);
      local.history_entries += 2;
    }
    AnalysisStep remote;
    remote.owner = 2;
    remote.counters.interval_ops = 4;
    steps.push_back(remote);
  }
  ASSERT_EQ(r.spans().size(), 2u);
  const obs::Span& outer = r.spans()[0];
  const obs::Span& inner = r.spans()[1];
  EXPECT_EQ(outer.kind, obs::SpanKind::Materialize);
  EXPECT_EQ(outer.parent, obs::kInvalidSpan);
  EXPECT_EQ(inner.kind, obs::SpanKind::Phase);
  EXPECT_EQ(inner.name, "history_walk");
  EXPECT_EQ(inner.parent, 0u);
  EXPECT_EQ(inner.launch, 7u);
  EXPECT_EQ(inner.node, 1u);
  EXPECT_EQ(inner.counters.history_entries, 2u);
  // Outer sees its own local delta (which includes the nested span's) plus
  // the steps appended inside it, and nothing from before construction.
  EXPECT_EQ(outer.counters.history_entries, 5u);
  EXPECT_EQ(outer.counters.interval_ops, 4u);
  EXPECT_EQ(outer.counters.eqset_visits, 0u);
}

TEST(Recorder, SpanCapDropsButKeepsNestingBalanced) {
  obs::Recorder r;
  r.set_max_spans(1);
  r.enable();
  obs::SpanID a = r.begin_span(obs::SpanKind::Launch, "a", 0, 0);
  obs::SpanID b = r.begin_span(obs::SpanKind::Phase, "b", 0, 0);
  EXPECT_NE(a, obs::kInvalidSpan);
  EXPECT_EQ(b, obs::kInvalidSpan);
  r.end_span(b, AnalysisCounters{});
  AnalysisCounters w;
  w.eqset_visits = 1;
  r.end_span(a, w);
  ASSERT_EQ(r.spans().size(), 1u);
  EXPECT_EQ(r.spans_dropped(), 1u);
  EXPECT_EQ(r.spans()[0].counters.eqset_visits, 1u);
}

TEST(CounterSeries, BoundedRingKeepsNewestSamplesOldestFirst) {
  obs::CounterSeries s("gauge", 4);
  for (std::uint32_t i = 0; i < 10; ++i)
    s.push(i, static_cast<double>(i));
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.total(), 10u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(s.at(i).launch, 6 + i);
    EXPECT_EQ(s.at(i).value, static_cast<double>(6 + i));
  }
  obs::SeriesSummary sum = s.summarize();
  EXPECT_EQ(sum.count, 10u); // pushes ever, not just retained
  EXPECT_EQ(sum.min, 6.0);
  EXPECT_EQ(sum.max, 9.0);
  EXPECT_EQ(sum.last, 9.0);
}

TEST(CounterSeries, SummaryPercentiles) {
  obs::CounterSeries s("v", 100);
  for (std::uint32_t i = 1; i <= 21; ++i)
    s.push(i, static_cast<double>(i));
  obs::SeriesSummary sum = s.summarize();
  EXPECT_EQ(sum.p50, 11.0);
  EXPECT_EQ(sum.p95, 20.0);
  EXPECT_EQ(sum.min, 1.0);
  EXPECT_EQ(sum.max, 21.0);
}

// ---------------------------------------------------------------------------
// JSON emission helpers

TEST(MetricsJson, EscapeRoundTripsThroughTheParser) {
  std::string raw = "quote\" slash\\ newline\n tab\t ctl\x01 done";
  std::string doc = "\"" + obs::json_escape(raw) + "\"";
  auto parsed = testjson::parse(doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->str(), raw);
}

TEST(MetricsJson, NumberDegradesNanAndInfToZero) {
  EXPECT_EQ(obs::json_number(0.0), "0");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::quiet_NaN()), "0");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()), "0");
  auto parsed = testjson::parse(obs::json_number(1.5e-7));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->number(), 1.5e-7);
}

TEST(MetricsJson, EmptyEnvelopeIsSchemaValid) {
  std::ostringstream os;
  obs::write_metrics_envelope(os, "micro_bench", {});
  auto doc = testjson::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at("schema_version").number(), obs::kMetricsSchemaVersion);
  EXPECT_EQ(doc->at("binary").str(), "micro_bench");
  EXPECT_TRUE(doc->at("runs").array().empty());
}

// ---------------------------------------------------------------------------
// End-to-end through the Runtime

RuntimeConfig telemetry_config(std::uint32_t nodes, bool telemetry = true) {
  RuntimeConfig cfg;
  cfg.algorithm = Algorithm::RayCast;
  cfg.dcr = true;
  cfg.machine.num_nodes = nodes;
  cfg.telemetry = telemetry;
  return cfg;
}

/// A small writer/reader workload: 4 pieces striped over the nodes, with a
/// whole-region reader forcing cross-piece (and cross-node) dependences.
void run_workload(Runtime& rt, std::uint32_t nodes, int iterations) {
  RegionHandle r = rt.create_region(IntervalSet(0, 63), "r");
  std::vector<IntervalSet> pieces;
  for (coord_t i = 0; i < 4; ++i)
    pieces.push_back(IntervalSet(i * 16, i * 16 + 15));
  PartitionHandle part = rt.create_partition(r, std::move(pieces), "quarters");
  FieldID f = rt.add_field(r, "f", 0.0);
  for (int it = 0; it < iterations; ++it) {
    for (std::uint32_t i = 0; i < 4; ++i) {
      rt.launch(TaskLaunch{
          "write",
          {RegionReq{rt.subregion(part, i), f, Privilege::read_write()}},
          [](TaskContext& ctx) {
            ctx.data(0).for_each([](coord_t, double& v) { v += 1.0; });
          },
          static_cast<NodeID>(i % nodes),
          16});
    }
    rt.launch(TaskLaunch{
        "read",
        {RegionReq{r, f, Privilege::read()}},
        [](TaskContext&) {},
        0,
        64});
    rt.end_iteration();
  }
}

TEST(Telemetry, OffByDefaultRecordsNothing) {
  Runtime rt(telemetry_config(2, /*telemetry=*/false));
  run_workload(rt, 2, 2);
  EXPECT_FALSE(rt.recorder().enabled());
  EXPECT_TRUE(rt.recorder().spans().empty());
  EXPECT_EQ(rt.recorder().series_count(), 0u);
}

TEST(Telemetry, GoldenSeriesExistWithOneSamplePerLaunch) {
  Runtime rt(telemetry_config(2));
  run_workload(rt, 2, 3);
  RunStats stats = rt.finish();
  obs::Recorder& rec = rt.recorder();
  ASSERT_TRUE(rec.enabled());

  std::set<std::string> names;
  for (std::size_t i = 0; i < rec.series_count(); ++i)
    names.insert(rec.series(i).name());
  for (const char* want :
       {"live_eqsets", "live_composite_views", "history_entries",
        "messages_total", "analysis_busy_ns/node0",
        "analysis_busy_ns/node1"})
    EXPECT_TRUE(names.count(want)) << "missing series " << want;

  for (std::size_t i = 0; i < rec.series_count(); ++i)
    EXPECT_EQ(rec.series(i).total(), stats.launches)
        << rec.series(i).name() << " should sample once per launch";
}

TEST(Telemetry, CumulativeSeriesAreMonotoneOnTheLaunchClock) {
  Runtime rt(telemetry_config(2));
  run_workload(rt, 2, 3);
  obs::Recorder& rec = rt.recorder();
  for (const char* name : {"messages_total", "analysis_busy_ns/node0",
                           "analysis_busy_ns/node1"}) {
    const obs::CounterSeries& s = rec.series(rec.series_id(name));
    ASSERT_GT(s.size(), 1u) << name;
    for (std::size_t i = 1; i < s.size(); ++i) {
      EXPECT_LT(s.at(i - 1).launch, s.at(i).launch) << name;
      EXPECT_GE(s.at(i).value, s.at(i - 1).value) << name;
    }
  }
}

TEST(Telemetry, SpansNestLaunchMaterializeCommitPhase) {
  Runtime rt(telemetry_config(2));
  run_workload(rt, 2, 2);
  RunStats stats = rt.finish();
  const std::vector<obs::Span>& spans = rt.recorder().spans();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(rt.recorder().spans_dropped(), 0u);

  std::size_t launches = 0, materializes = 0, commits = 0, phases = 0;
  for (const obs::Span& s : spans) {
    switch (s.kind) {
    case obs::SpanKind::Launch:
      ++launches;
      EXPECT_EQ(s.parent, obs::kInvalidSpan);
      break;
    case obs::SpanKind::Materialize:
    case obs::SpanKind::Commit:
      (s.kind == obs::SpanKind::Materialize ? ++materializes : ++commits);
      ASSERT_NE(s.parent, obs::kInvalidSpan);
      EXPECT_EQ(spans[s.parent].kind, obs::SpanKind::Launch);
      EXPECT_EQ(spans[s.parent].launch, s.launch);
      break;
    case obs::SpanKind::Phase:
      ++phases;
      ASSERT_NE(s.parent, obs::kInvalidSpan);
      EXPECT_NE(spans[s.parent].kind, obs::SpanKind::Launch);
      break;
    }
  }
  // One Launch span per launch (observe() in finish() does not launch
  // here), one Materialize/Commit pair per region requirement.
  EXPECT_EQ(launches, stats.launches);
  EXPECT_EQ(materializes, stats.launches); // every launch has 1 requirement
  EXPECT_EQ(commits, stats.launches);
  EXPECT_GT(phases, 0u);
}

TEST(Telemetry, PerNodeBusyTimeSumsToAnalysisCpu) {
  Runtime rt(telemetry_config(2));
  run_workload(rt, 2, 3);
  RunStats stats = rt.finish();
  double sum_ns = 0;
  for (SimTime t : rt.analysis_busy_ns()) sum_ns += static_cast<double>(t);
  EXPECT_GT(sum_ns, 0);
  EXPECT_NEAR(sum_ns, stats.analysis_cpu_s * 1e9, 0.5);
}

TEST(Telemetry, PerNodeAccountingIsIndependentOfTelemetry) {
  // analysis_busy_ns_ is always-on bookkeeping; the recorder only adds
  // spans/series on top.
  Runtime on(telemetry_config(2, true));
  Runtime off(telemetry_config(2, false));
  run_workload(on, 2, 2);
  run_workload(off, 2, 2);
  ASSERT_EQ(on.analysis_busy_ns().size(), off.analysis_busy_ns().size());
  for (std::size_t n = 0; n < on.analysis_busy_ns().size(); ++n)
    EXPECT_EQ(on.analysis_busy_ns()[n], off.analysis_busy_ns()[n]);
}

TEST(Metrics, RunJsonHasGoldenKeysAndConsistentValues) {
  Runtime rt(telemetry_config(2));
  run_workload(rt, 2, 2);
  RunStats stats = rt.finish();

  MetricsRunInfo info;
  info.name = "raycast/dcr/2";
  info.app = "unit";
  info.algorithm = "raycast";
  info.dcr = true;
  info.nodes = 2;
  MetricsFile file("obs_test");
  file.add_run(metrics_run_json(info, rt, stats));
  EXPECT_EQ(file.run_count(), 1u);

  auto doc = testjson::parse(file.json());
  ASSERT_TRUE(doc.has_value()) << "metrics file is not valid JSON";
  EXPECT_EQ(doc->at("schema_version").number(), obs::kMetricsSchemaVersion);
  EXPECT_EQ(doc->at("binary").str(), "obs_test");
  ASSERT_EQ(doc->at("runs").array().size(), 1u);
  const testjson::Value& run = doc->at("runs").array()[0];

  for (const char* key : {"name", "app", "algorithm", "dcr", "nodes",
                          "stats", "per_node", "telemetry", "series",
                          "spans"})
    EXPECT_TRUE(run.has(key)) << "missing run key " << key;
  EXPECT_EQ(run.at("name").str(), "raycast/dcr/2");
  EXPECT_EQ(run.at("dcr").boolean(), true);
  EXPECT_EQ(run.at("nodes").number(), 2.0);
  EXPECT_EQ(run.at("telemetry").boolean(), true);

  const testjson::Value& st = run.at("stats");
  EXPECT_EQ(st.at("launches").number(),
            static_cast<double>(stats.launches));
  EXPECT_EQ(st.at("messages").number(),
            static_cast<double>(stats.messages));
  EXPECT_EQ(st.at("engine").at("live_eqsets").number(),
            static_cast<double>(stats.engine.live_eqsets));

  const auto& busy = run.at("per_node").at("analysis_busy_ns").array();
  ASSERT_EQ(busy.size(), 2u);
  double sum_ns = 0;
  for (const testjson::Value& v : busy) sum_ns += v.number();
  EXPECT_NEAR(sum_ns, stats.analysis_cpu_s * 1e9, 0.5);
  EXPECT_EQ(run.at("per_node").at("messages_sent").array().size(), 2u);

  ASSERT_TRUE(run.at("series").has("messages_total"));
  const testjson::Value& series = run.at("series").at("messages_total");
  for (const char* k : {"count", "min", "max", "p50", "p95", "last"})
    EXPECT_TRUE(series.has(k)) << "missing summary key " << k;
  EXPECT_EQ(series.at("last").number(),
            static_cast<double>(stats.messages));

  const testjson::Value& spans = run.at("spans");
  EXPECT_EQ(spans.at("dropped").number(), 0.0);
  for (const char* k : {"launch/task", "materialize/materialize",
                        "commit/commit"})
    EXPECT_TRUE(spans.has(k)) << "missing span aggregate " << k;
  EXPECT_GT(spans.at("launch/task").at("count").number(), 0.0);
  EXPECT_TRUE(spans.at("launch/task").at("counters").has("history_entries"));
}

TEST(Metrics, RunJsonIsValidWithTelemetryOff) {
  Runtime rt(telemetry_config(2, /*telemetry=*/false));
  run_workload(rt, 2, 1);
  RunStats stats = rt.finish();
  MetricsRunInfo info;
  info.name = "off";
  auto doc = testjson::parse(metrics_run_json(info, rt, stats));
  ASSERT_TRUE(doc.has_value()) << "telemetry-off run JSON must still parse";
  EXPECT_EQ(doc->at("telemetry").boolean(), false);
  EXPECT_EQ(doc->at("spans").at("dropped").number(), 0.0);
}

TEST(Telemetry, EnrichedTraceHasCounterTracksAndPairedFlows) {
  Runtime rt(telemetry_config(2));
  run_workload(rt, 2, 2);
  rt.finish();
  std::ostringstream os;
  rt.export_chrome_trace(os);
  auto doc = testjson::parse(os.str());
  ASSERT_TRUE(doc.has_value()) << "trace is not valid JSON";
  ASSERT_TRUE(doc->is_array());

  std::size_t counter_events = 0;
  std::map<double, std::pair<int, int>> flow_ends; // id -> (#s, #f)
  for (const testjson::Value& ev : doc->array()) {
    ASSERT_TRUE(ev.is_object());
    const std::string& ph = ev.at("ph").str();
    if (ph == "C") {
      ++counter_events;
      EXPECT_TRUE(ev.at("args").at("value").is_number());
      EXPECT_GE(ev.at("ts").number(), 0.0);
    } else if (ph == "s") {
      flow_ends[ev.at("id").number()].first++;
      EXPECT_EQ(ev.at("cat").str(), "flow");
    } else if (ph == "f") {
      flow_ends[ev.at("id").number()].second++;
      EXPECT_EQ(ev.at("bp").str(), "e");
    }
  }
  EXPECT_GT(counter_events, 0u) << "expected at least one counter track";
  EXPECT_FALSE(flow_ends.empty()) << "expected at least one flow event";
  for (const auto& [id, ends] : flow_ends) {
    EXPECT_EQ(ends.first, 1) << "flow " << id;
    EXPECT_EQ(ends.second, 1) << "flow " << id;
  }
}

TEST(Telemetry, PlainTraceStaysValidWithTelemetryOff) {
  Runtime rt(telemetry_config(2, /*telemetry=*/false));
  run_workload(rt, 2, 1);
  rt.finish();
  std::ostringstream os;
  rt.export_chrome_trace(os);
  auto doc = testjson::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  bool any_flow_or_counter = false;
  for (const testjson::Value& ev : doc->array()) {
    const std::string& ph = ev.at("ph").str();
    if (ph == "C" || ph == "s" || ph == "f") any_flow_or_counter = true;
  }
  EXPECT_FALSE(any_flow_or_counter);
}

} // namespace
} // namespace visrt
