// The spy verifier: soundness and precision checks against ground truth
// recomputed from geometry and privileges — planted violations in
// hand-built graphs, live Runtime runs, and the injected paint bug caught
// with no reference engine in sight.
#include "analysis/spy.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "fuzz/oracle.h"
#include "fuzz/serialize.h"
#include "runtime/runtime.h"

namespace visrt::analysis {
namespace {

/// A forest with one root over [0, 19] and a disjoint halves partition.
struct Fixture {
  RegionTreeForest forest;
  RegionHandle root;
  RegionHandle half0, half1;

  Fixture() {
    root = forest.create_root(IntervalSet(0, 19), "r");
    PartitionHandle halves = forest.create_partition(
        root, {IntervalSet(0, 9), IntervalSet(10, 19)}, "halves");
    half0 = forest.subregion(halves, 0);
    half1 = forest.subregion(halves, 1);
  }

  LaunchRecord rec(RegionHandle region, Privilege privilege) const {
    return LaunchRecord{{Requirement{region, 0, privilege}}, 0};
  }
};

DepGraph graph_with_edges(
    std::size_t tasks,
    const std::vector<std::pair<LaunchID, LaunchID>>& edges) {
  DepGraph deps;
  for (std::size_t id = 0; id < tasks; ++id)
    deps.add_task(static_cast<LaunchID>(id));
  for (const auto& [from, to] : edges) {
    std::vector<LaunchID> froms{from};
    deps.add_edges(to, froms);
  }
  return deps;
}

TEST(SpyVerify, OrderedInterferingPairIsSoundAndPrecise) {
  Fixture fx;
  std::vector<LaunchRecord> launches{
      fx.rec(fx.root, Privilege::read_write()),
      fx.rec(fx.half0, Privilege::read()),
  };
  DepGraph deps = graph_with_edges(2, {{0, 1}});
  SpyReport report = verify(fx.forest, deps, launches);
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_EQ(report.launches, 2u);
  EXPECT_EQ(report.interfering_pairs, 1u);
  EXPECT_EQ(report.transitive_edges, 0u);
}

TEST(SpyVerify, DetectsMissingEdgeAsUnorderedInterference) {
  Fixture fx;
  std::vector<LaunchRecord> launches{
      fx.rec(fx.root, Privilege::read_write()),
      fx.rec(fx.half0, Privilege::read()),
  };
  DepGraph deps = graph_with_edges(2, {});
  SpyReport report = verify(fx.forest, deps, launches);
  EXPECT_FALSE(report.sound());
  EXPECT_EQ(report.unordered_pairs, 1u);
  ASSERT_FALSE(report.violations.empty());
  const SpyViolation& v = report.violations.front();
  EXPECT_EQ(v.kind, SpyViolationKind::UnorderedInterference);
  EXPECT_EQ(v.earlier, 0u);
  EXPECT_EQ(v.later, 1u);
  // The witness names the privileges and regions involved.
  EXPECT_NE(v.detail.find("read-write"), std::string::npos) << v.detail;
  EXPECT_NE(v.detail.find("r"), std::string::npos) << v.detail;
}

TEST(SpyVerify, TransitiveOrderIsSound) {
  // 0 -> 1 -> 2 with all three mutually interfering: the 0/2 pair has no
  // direct edge but is transitively ordered — sound.
  Fixture fx;
  std::vector<LaunchRecord> launches{
      fx.rec(fx.root, Privilege::read_write()),
      fx.rec(fx.root, Privilege::read_write()),
      fx.rec(fx.root, Privilege::read_write()),
  };
  DepGraph deps = graph_with_edges(3, {{0, 1}, {1, 2}});
  SpyReport report = verify(fx.forest, deps, launches);
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_EQ(report.interfering_pairs, 3u);
}

TEST(SpyVerify, FlagsEdgeBetweenNonInterferingLaunches) {
  // Two reads never interfere; a direct edge between them is imprecise.
  Fixture fx;
  std::vector<LaunchRecord> launches{
      fx.rec(fx.half0, Privilege::read()),
      fx.rec(fx.half1, Privilege::read()),
  };
  DepGraph deps = graph_with_edges(2, {{0, 1}});
  SpyReport report = verify(fx.forest, deps, launches);
  EXPECT_TRUE(report.sound());
  EXPECT_FALSE(report.precise());
  EXPECT_EQ(report.imprecise_edges, 1u);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_EQ(report.violations.front().kind, SpyViolationKind::ImpreciseEdge);
  EXPECT_NE(report.summary().find("imprecise"), std::string::npos);
}

TEST(SpyVerify, CountsTransitivelyImpliedEdgesAsInformational) {
  // The direct 0 -> 2 edge joins an interfering pair, but the 0 -> 1 -> 2
  // path already implies it: counted, not a violation.
  Fixture fx;
  std::vector<LaunchRecord> launches{
      fx.rec(fx.root, Privilege::read_write()),
      fx.rec(fx.root, Privilege::read_write()),
      fx.rec(fx.root, Privilege::read_write()),
  };
  DepGraph deps = graph_with_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  SpyReport report = verify(fx.forest, deps, launches);
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_EQ(report.transitive_edges, 1u);
}

TEST(SpyVerify, SameOperatorReductionsCommute) {
  Fixture fx;
  std::vector<LaunchRecord> launches{
      fx.rec(fx.root, Privilege::reduce(0)),
      fx.rec(fx.root, Privilege::reduce(0)),
      fx.rec(fx.root, Privilege::reduce(1)),
  };
  // Same-operator folds commute (no order needed); the different-operator
  // pair interferes and must be ordered.
  DepGraph deps = graph_with_edges(3, {{0, 2}, {1, 2}});
  SpyReport report = verify(fx.forest, deps, launches);
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_EQ(report.interfering_pairs, 2u);
}

TEST(SpyVerify, LaunchLogMustCoverTheGraph) {
  Fixture fx;
  std::vector<LaunchRecord> launches{fx.rec(fx.root, Privilege::read()),
                                     fx.rec(fx.root, Privilege::read())};
  DepGraph deps = graph_with_edges(1, {});
  EXPECT_THROW(verify(fx.forest, deps, launches), ApiError);
}

TEST(SpyVerify, ShorterLogVerifiesTheTrailingWindow) {
  Fixture fx;
  // Records for launches 1 and 2 of a three-task graph: the spy verifies
  // the window [1, 3).  The interfering pair (1, 2) must still be caught;
  // edges reaching below the window (0 -> 1) are skipped, and pairs
  // involving the retired launch 0 are out of scope.
  std::vector<LaunchRecord> launches{
      fx.rec(fx.root, Privilege::read_write()),
      fx.rec(fx.half0, Privilege::read()),
  };
  DepGraph deps = graph_with_edges(3, {{0, 1}, {1, 2}});
  SpyReport report = verify(fx.forest, deps, launches);
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_EQ(report.launches, 2u);
  EXPECT_EQ(report.interfering_pairs, 1u);

  DepGraph unordered = graph_with_edges(3, {{0, 1}});
  SpyReport bad = verify(fx.forest, unordered, launches);
  EXPECT_EQ(bad.unordered_pairs, 1u);
  ASSERT_FALSE(bad.violations.empty());
  EXPECT_EQ(bad.violations[0].earlier, 1u); // global launch ids
  EXPECT_EQ(bad.violations[0].later, 2u);
}

TEST(SpyVerify, ViolationRecordsAreCappedButCountsStayExact) {
  Fixture fx;
  std::vector<LaunchRecord> launches;
  for (int i = 0; i < 12; ++i)
    launches.push_back(fx.rec(fx.root, Privilege::read_write()));
  DepGraph deps = graph_with_edges(12, {});
  SpyOptions options;
  options.max_violations = 3;
  SpyReport report = verify(fx.forest, deps, launches, options);
  EXPECT_EQ(report.unordered_pairs, 66u); // 12 choose 2
  EXPECT_EQ(report.violations.size(), 3u);
}

TEST(SpyVerify, LiveRuntimeRunVerifiesClean) {
  RuntimeConfig cfg;
  cfg.algorithm = Algorithm::RayCast;
  cfg.track_values = true;
  cfg.record_launches = true;
  cfg.machine.num_nodes = 2;
  Runtime rt(cfg);
  RegionHandle r = rt.create_region(IntervalSet(0, 19), "r");
  PartitionHandle halves = rt.create_partition(
      r, {IntervalSet(0, 9), IntervalSet(10, 19)}, "halves");
  FieldID f = rt.add_field(r, "f", 1.0);
  auto bump = [](TaskContext& ctx) {
    ctx.data(0).for_each([](coord_t, double& v) { v += 1.0; });
  };
  for (int round = 0; round < 3; ++round)
    for (std::size_t c = 0; c < 2; ++c)
      rt.launch(TaskLaunch{"bump",
                           {RegionReq{rt.subregion(halves, c), f,
                                      Privilege::read_write()}},
                           bump,
                           static_cast<NodeID>(c),
                           10});
  rt.observe(r, f);

  SpyReport report = verify(rt);
  EXPECT_TRUE(report.clean()) << report.summary();
  // 6 task launches plus the trailing observe() — all in the log.
  EXPECT_EQ(report.launches, 7u);
  EXPECT_GT(report.interfering_pairs, 0u);
  EXPECT_EQ(report.schedule_overlaps, 0u);
}

TEST(SpyVerify, LiveRuntimeRequiresLaunchRecording) {
  RuntimeConfig cfg;
  cfg.algorithm = Algorithm::RayCast;
  Runtime rt(cfg);
  EXPECT_THROW(verify(rt), ApiError);
}

TEST(SpyVerify, JsonReportHasTheDocumentedShape) {
  Fixture fx;
  std::vector<LaunchRecord> launches{
      fx.rec(fx.root, Privilege::read_write()),
      fx.rec(fx.half0, Privilege::read()),
  };
  DepGraph deps = graph_with_edges(2, {});
  std::string json = verify(fx.forest, deps, launches).to_json();
  for (const char* key :
       {"\"schema_version\":1", "\"launches\":2", "\"unordered_pairs\":1",
        "\"sound\":false", "\"precise\":true", "\"violations\":[",
        "\"kind\":\"unordered-interference\""})
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
}

// --- the acceptance criterion: reference-free detection ------------------

/// The minimal trigger for the injected paint bug (the same shape the
/// differential oracle uses): a reduction committed to a two-interval
/// domain, then read back through the root.
fuzz::ProgramSpec injected_bug_spec() {
  return fuzz::parse_visprog("visprog 1\n"
                             "config nodes=1 dcr=0 tracing=0 subject=paint\n"
                             "tuning occlusion=1 memoize=1 domwrites=1 "
                             "kdfallback=0 paintbug=1\n"
                             "tree A 40\n"
                             "partition P parent=0 [0,9]+[20,29] [10,19]\n"
                             "field f0 tree=0 mod=11\n"
                             "task node=0 salt=0 r1 f0 red:sum\n"
                             "task node=0 salt=0 r0 f0 read\n");
}

TEST(SpyCheck, FlagsInjectedPaintBugAsUnsoundWithoutReference) {
  // spy_check runs only the subject engine — no reference execution, no
  // value comparison.  The dropped reduce dependence must surface as a
  // soundness violation from first principles.
  fuzz::SpyCheckResult result = fuzz::spy_check(injected_bug_spec());
  ASSERT_FALSE(result.crashed) << result.crash_message;
  EXPECT_FALSE(result.report.sound()) << result.report.summary();
  EXPECT_GT(result.report.unordered_pairs, 0u);
  ASSERT_FALSE(result.report.violations.empty());
  EXPECT_EQ(result.report.violations.front().kind,
            SpyViolationKind::UnorderedInterference);
}

TEST(SpyCheck, CleanConfigurationsVerifyClean) {
  // Without the injected bug the same program is sound and precise; the
  // bug is also specific to the paint engine.
  fuzz::ProgramSpec spec = injected_bug_spec();
  spec.tuning.inject_paint_reduce_bug = false;
  EXPECT_TRUE(fuzz::spy_check(spec).clean());
  spec.tuning.inject_paint_reduce_bug = true;
  spec.subject = Algorithm::RayCast;
  EXPECT_TRUE(fuzz::spy_check(spec).clean());
}

} // namespace
} // namespace visrt::analysis
