// Tests for sim/trace_export.h: valid JSON-ish structure, one event per
// non-marker op, correct rows and timings, and the TraceEnrichment extras
// (flow arrows, counter tracks, per-op args).
#include "sim/trace_export.h"

#include <gtest/gtest.h>

#include <array>

#include "json_util.h"

namespace visrt::sim {
namespace {

MachineConfig machine(std::uint32_t nodes) {
  MachineConfig m;
  m.num_nodes = nodes;
  m.network_latency_ns = 1000;
  m.network_bytes_per_ns = 1.0;
  m.message_handler_ns = 100;
  return m;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(TraceExport, EmitsOneEventPerOp) {
  WorkGraph g;
  OpID a = g.compute(0, 500, {}, OpCategory::Analysis);
  OpID m = g.message(0, 1, 256, std::array{a});
  OpID b = g.compute(1, 700, std::array{m}, OpCategory::TaskExec);
  g.marker(0, std::array{b});
  MachineConfig mc = machine(2);
  ReplayResult r = replay(g, mc);
  std::string json = chrome_trace_json(g, r, mc);

  // 3 real ops -> 3 "X" events; marker skipped.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 3u);
  // 2 nodes x 3 tracks of metadata.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"M\""), 6u);
  // Categories present.
  EXPECT_NE(json.find("\"name\":\"analysis\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"task\""), std::string::npos);
  // Balanced brackets and valid-ish structure.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}") - 3u +
                                              3u); // args nest inside events
}

TEST(TraceExport, TaskOpsLandOnAcceleratorTrack) {
  WorkGraph g;
  g.compute(0, 100, {}, OpCategory::TaskExec);
  MachineConfig mc = machine(1);
  ReplayResult r = replay(g, mc);
  std::string json = chrome_trace_json(g, r, mc);
  // TaskExec uses tid 1 (accel).
  EXPECT_NE(json.find("\"pid\":0,\"tid\":1,\"ts\""), std::string::npos);
}

TEST(TraceExport, MessagesCarrySourceAndBytes) {
  WorkGraph g;
  g.message(1, 0, 4096, {});
  MachineConfig mc = machine(2);
  ReplayResult r = replay(g, mc);
  std::string json = chrome_trace_json(g, r, mc);
  EXPECT_NE(json.find("\"src\":1"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":4096"), std::string::npos);
}

TEST(TraceExport, ZeroCostOpsAreSkipped) {
  WorkGraph g;
  g.compute(0, 0, {});
  MachineConfig mc = machine(1);
  ReplayResult r = replay(g, mc);
  std::string json = chrome_trace_json(g, r, mc);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 0u);
}

// ---------------------------------------------------------------------------
// TraceEnrichment

/// Parse the trace and return its events; fails the test on bad JSON.
std::vector<testjson::Value> parse_events(const std::string& json) {
  auto doc = testjson::parse(json);
  EXPECT_TRUE(doc.has_value()) << "trace is not valid JSON";
  if (!doc.has_value() || !doc->is_array()) return {};
  return doc->array();
}

/// Find the slice ("X") event whose args.op == id.
const testjson::Value* slice_for_op(const std::vector<testjson::Value>& evs,
                                    OpID id) {
  for (const testjson::Value& ev : evs) {
    if (ev.at("ph").str() == "X" &&
        ev.at("args").at("op").number() == static_cast<double>(id))
      return &ev;
  }
  return nullptr;
}

TEST(TraceEnrichment, FlowEventsPairAtSliceMidpoints) {
  WorkGraph g;
  OpID a = g.compute(0, 500, {}, OpCategory::Analysis);
  OpID b = g.compute(1, 700, std::array{a}, OpCategory::TaskExec);
  MachineConfig mc = machine(2);
  ReplayResult r = replay(g, mc);

  TraceEnrichment enrich;
  enrich.flows.push_back(TraceFlow{a, b, "dep"});
  std::vector<testjson::Value> evs =
      parse_events(chrome_trace_json(g, r, mc, &enrich));
  ASSERT_FALSE(evs.empty());

  const testjson::Value* start = nullptr;
  const testjson::Value* finish = nullptr;
  for (const testjson::Value& ev : evs) {
    if (ev.at("ph").str() == "s") start = &ev;
    if (ev.at("ph").str() == "f") finish = &ev;
  }
  ASSERT_NE(start, nullptr);
  ASSERT_NE(finish, nullptr);
  EXPECT_EQ(start->at("id").number(), finish->at("id").number());
  EXPECT_EQ(start->at("name").str(), "dep");
  EXPECT_EQ(start->at("cat").str(), "flow");
  EXPECT_EQ(finish->at("bp").str(), "e");

  // Each endpoint's ts lands strictly inside its op's slice, so Perfetto
  // binds the arrow to that slice.
  const testjson::Value* src = slice_for_op(evs, a);
  const testjson::Value* dst = slice_for_op(evs, b);
  ASSERT_NE(src, nullptr);
  ASSERT_NE(dst, nullptr);
  EXPECT_EQ(start->at("pid").number(), src->at("pid").number());
  EXPECT_EQ(start->at("tid").number(), src->at("tid").number());
  EXPECT_GT(start->at("ts").number(), src->at("ts").number());
  EXPECT_LT(start->at("ts").number(),
            src->at("ts").number() + src->at("dur").number());
  EXPECT_GT(finish->at("ts").number(), dst->at("ts").number());
  EXPECT_LT(finish->at("ts").number(),
            dst->at("ts").number() + dst->at("dur").number());
}

TEST(TraceEnrichment, FlowsWithUnrenderedEndpointsAreDropped) {
  WorkGraph g;
  OpID a = g.compute(0, 500, {}, OpCategory::Analysis);
  OpID zero = g.compute(0, 0, std::array{a}); // zero-cost: no slice
  OpID mark = g.marker(0, std::array{a});     // marker: no slice
  MachineConfig mc = machine(1);
  ReplayResult r = replay(g, mc);

  TraceEnrichment enrich;
  enrich.flows.push_back(TraceFlow{a, zero, "x"});
  enrich.flows.push_back(TraceFlow{a, mark, "x"});
  enrich.flows.push_back(TraceFlow{a, static_cast<OpID>(999), "x"});
  std::string json = chrome_trace_json(g, r, mc, &enrich);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"s\""), 0u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"f\""), 0u);
  // Still valid JSON.
  EXPECT_FALSE(parse_events(json).empty());
}

TEST(TraceEnrichment, CounterTrackSamplesAtAnchorFinishTimes) {
  WorkGraph g;
  OpID a = g.compute(0, 500, {}, OpCategory::Analysis);
  OpID b = g.compute(0, 700, std::array{a}, OpCategory::Analysis);
  MachineConfig mc = machine(1);
  ReplayResult r = replay(g, mc);

  TraceEnrichment enrich;
  TraceCounterTrack track;
  track.name = "live_eqsets";
  track.pid = 0;
  track.samples = {{a, 3.0}, {b, 5.0}, {static_cast<OpID>(999), 7.0}};
  enrich.counters.push_back(std::move(track));
  std::vector<testjson::Value> evs =
      parse_events(chrome_trace_json(g, r, mc, &enrich));

  std::vector<const testjson::Value*> counters;
  for (const testjson::Value& ev : evs)
    if (ev.at("ph").str() == "C") counters.push_back(&ev);
  ASSERT_EQ(counters.size(), 2u); // out-of-range anchor dropped
  EXPECT_EQ(counters[0]->at("name").str(), "live_eqsets");
  EXPECT_EQ(counters[0]->at("pid").number(), 0.0);
  EXPECT_EQ(counters[0]->at("args").at("value").number(), 3.0);
  EXPECT_EQ(counters[1]->at("args").at("value").number(), 5.0);
  // Stamped at the anchors' finish times, in order.
  EXPECT_DOUBLE_EQ(counters[0]->at("ts").number(),
                   static_cast<double>(r.finish[a]) / 1000.0);
  EXPECT_DOUBLE_EQ(counters[1]->at("ts").number(),
                   static_cast<double>(r.finish[b]) / 1000.0);
  EXPECT_LT(counters[0]->at("ts").number(), counters[1]->at("ts").number());
}

TEST(TraceEnrichment, OpArgsAreMergedIntoTheSlice) {
  WorkGraph g;
  OpID a = g.compute(0, 500, {}, OpCategory::Analysis);
  MachineConfig mc = machine(1);
  ReplayResult r = replay(g, mc);

  TraceEnrichment enrich;
  enrich.op_args[a] = "\"launch\":7,\"task\":\"stencil\"";
  std::vector<testjson::Value> evs =
      parse_events(chrome_trace_json(g, r, mc, &enrich));
  const testjson::Value* slice = slice_for_op(evs, a);
  ASSERT_NE(slice, nullptr);
  EXPECT_EQ(slice->at("args").at("launch").number(), 7.0);
  EXPECT_EQ(slice->at("args").at("task").str(), "stencil");
}

TEST(TraceEnrichment, NullEnrichmentMatchesPlainExport) {
  WorkGraph g;
  g.compute(0, 500, {}, OpCategory::Analysis);
  MachineConfig mc = machine(1);
  ReplayResult r = replay(g, mc);
  TraceEnrichment empty;
  EXPECT_EQ(chrome_trace_json(g, r, mc, nullptr),
            chrome_trace_json(g, r, mc, &empty));
}

} // namespace
} // namespace visrt::sim
