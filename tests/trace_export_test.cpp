// Tests for sim/trace_export.h: valid JSON-ish structure, one event per
// non-marker op, correct rows and timings.
#include "sim/trace_export.h"

#include <gtest/gtest.h>

#include <array>

namespace visrt::sim {
namespace {

MachineConfig machine(std::uint32_t nodes) {
  MachineConfig m;
  m.num_nodes = nodes;
  m.network_latency_ns = 1000;
  m.network_bytes_per_ns = 1.0;
  m.message_handler_ns = 100;
  return m;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(TraceExport, EmitsOneEventPerOp) {
  WorkGraph g;
  OpID a = g.compute(0, 500, {}, OpCategory::Analysis);
  OpID m = g.message(0, 1, 256, std::array{a});
  OpID b = g.compute(1, 700, std::array{m}, OpCategory::TaskExec);
  g.marker(0, std::array{b});
  MachineConfig mc = machine(2);
  ReplayResult r = replay(g, mc);
  std::string json = chrome_trace_json(g, r, mc);

  // 3 real ops -> 3 "X" events; marker skipped.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 3u);
  // 2 nodes x 3 tracks of metadata.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"M\""), 6u);
  // Categories present.
  EXPECT_NE(json.find("\"name\":\"analysis\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"task\""), std::string::npos);
  // Balanced brackets and valid-ish structure.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}") - 3u +
                                              3u); // args nest inside events
}

TEST(TraceExport, TaskOpsLandOnAcceleratorTrack) {
  WorkGraph g;
  g.compute(0, 100, {}, OpCategory::TaskExec);
  MachineConfig mc = machine(1);
  ReplayResult r = replay(g, mc);
  std::string json = chrome_trace_json(g, r, mc);
  // TaskExec uses tid 1 (accel).
  EXPECT_NE(json.find("\"pid\":0,\"tid\":1,\"ts\""), std::string::npos);
}

TEST(TraceExport, MessagesCarrySourceAndBytes) {
  WorkGraph g;
  g.message(1, 0, 4096, {});
  MachineConfig mc = machine(2);
  ReplayResult r = replay(g, mc);
  std::string json = chrome_trace_json(g, r, mc);
  EXPECT_NE(json.find("\"src\":1"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":4096"), std::string::npos);
}

TEST(TraceExport, ZeroCostOpsAreSkipped) {
  WorkGraph g;
  g.compute(0, 0, {});
  MachineConfig mc = machine(1);
  ReplayResult r = replay(g, mc);
  std::string json = chrome_trace_json(g, r, mc);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 0u);
}

} // namespace
} // namespace visrt::sim
