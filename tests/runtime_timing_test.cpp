// Timing-model invariants at the runtime level: determinism, marker
// monotonicity, and sane relationships between configurations (more nodes
// never slow a fixed-size problem; tracing never slows an iteration;
// messages only flow when data actually moves).
#include <gtest/gtest.h>

#include "apps/circuit.h"
#include "apps/stencil.h"

namespace visrt {
namespace {

RunStats run_stencil(Algorithm algo, std::uint32_t nodes, bool dcr,
                     bool trace = false) {
  RuntimeConfig cfg;
  cfg.algorithm = algo;
  cfg.dcr = dcr;
  cfg.track_values = false;
  cfg.machine.num_nodes = nodes;
  Runtime rt(cfg);
  apps::StencilConfig scfg;
  scfg.pieces_x = 2;
  scfg.pieces_y = 2;
  scfg.tile_rows = 16;
  scfg.tile_cols = 16;
  scfg.iterations = 4;
  scfg.trace = trace;
  apps::StencilApp app(rt, scfg);
  app.run();
  return rt.finish();
}

TEST(RuntimeTiming, DeterministicAcrossRuns) {
  RunStats a = run_stencil(Algorithm::RayCast, 4, false);
  RunStats b = run_stencil(Algorithm::RayCast, 4, false);
  EXPECT_EQ(a.total_time_s, b.total_time_s);
  EXPECT_EQ(a.init_time_s, b.init_time_s);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.message_bytes, b.message_bytes);
  EXPECT_EQ(a.dep_edges, b.dep_edges);
}

TEST(RuntimeTiming, InitNeverExceedsTotal) {
  for (Algorithm algo :
       {Algorithm::Paint, Algorithm::Warnock, Algorithm::RayCast}) {
    RunStats s = run_stencil(algo, 4, false);
    EXPECT_GT(s.init_time_s, 0.0);
    EXPECT_LE(s.init_time_s, s.total_time_s);
    EXPECT_GT(s.steady_iter_s, 0.0);
  }
}

TEST(RuntimeTiming, MorePiecesOnMoreNodesRunFaster) {
  // Fixed 4-piece problem: 4 nodes execute the pieces in parallel, 1 node
  // serializes them on its accelerator.
  RunStats wide = run_stencil(Algorithm::RayCast, 4, false);
  RunStats narrow = run_stencil(Algorithm::RayCast, 1, false);
  EXPECT_LT(wide.total_time_s, narrow.total_time_s);
}

TEST(RuntimeTiming, TracingNeverSlowsSteadyState) {
  for (Algorithm algo :
       {Algorithm::Paint, Algorithm::Warnock, Algorithm::RayCast}) {
    RunStats untraced = run_stencil(algo, 4, false, false);
    RunStats traced = run_stencil(algo, 4, false, true);
    EXPECT_LE(traced.steady_iter_s, untraced.steady_iter_s * 1.01)
        << algorithm_name(algo);
    EXPECT_LT(traced.messages, untraced.messages);
  }
}

TEST(RuntimeTiming, SingleNodeRunsMoveNoBytes) {
  // On one node nothing crosses the network; intra-node handler dispatch
  // still happens but no wire traffic does.
  RuntimeConfig cfg;
  cfg.machine.num_nodes = 1;
  cfg.track_values = true;
  Runtime rt(cfg);
  apps::CircuitConfig ccfg;
  ccfg.pieces = 2;
  ccfg.nodes_per_piece = 10;
  ccfg.wires_per_piece = 12;
  ccfg.iterations = 2;
  apps::CircuitApp app(rt, ccfg);
  app.run();
  const sim::WorkGraph& g = rt.work_graph();
  for (sim::OpID id = 0; id < g.size(); ++id) {
    const sim::Op& op = g.op(id);
    if (op.kind == sim::OpKind::Message) {
      EXPECT_EQ(op.node, op.dst) << "cross-node message on a 1-node machine";
    }
  }
}

TEST(RuntimeTiming, AnalysisCpuGrowsWithLaunches) {
  RuntimeConfig cfg;
  cfg.track_values = false;
  cfg.machine.num_nodes = 2;

  auto analysis_for_iters = [&](int iters) {
    Runtime rt(cfg);
    apps::StencilConfig scfg;
    scfg.pieces_x = 2;
    scfg.pieces_y = 1;
    scfg.tile_rows = 16;
    scfg.tile_cols = 16;
    scfg.iterations = iters;
    apps::StencilApp app(rt, scfg);
    app.run();
    return rt.finish().analysis_cpu_s;
  };
  EXPECT_LT(analysis_for_iters(2), analysis_for_iters(6));
}

TEST(RuntimeTiming, DcrReducesNodeZeroShareOfRuntimeOps) {
  auto node0_share = [](bool dcr) {
    RuntimeConfig cfg;
    cfg.dcr = dcr;
    cfg.track_values = false;
    cfg.machine.num_nodes = 4;
    Runtime rt(cfg);
    apps::StencilConfig scfg;
    scfg.pieces_x = 2;
    scfg.pieces_y = 2;
    scfg.tile_rows = 16;
    scfg.tile_cols = 16;
    scfg.iterations = 3;
    apps::StencilApp app(rt, scfg);
    app.run();
    const sim::WorkGraph& g = rt.work_graph();
    double node0 = 0, total = 0;
    for (sim::OpID id = 0; id < g.size(); ++id) {
      const sim::Op& op = g.op(id);
      if (op.kind == sim::OpKind::Compute &&
          op.category ==
              static_cast<std::uint8_t>(sim::OpCategory::Runtime)) {
        total += static_cast<double>(op.cost);
        if (op.node == 0) node0 += static_cast<double>(op.cost);
      }
    }
    return node0 / total;
  };
  EXPECT_GT(node0_share(false), 0.99);
  EXPECT_LT(node0_share(true), 0.5);
}

} // namespace
} // namespace visrt
