// Tests for geom/rect.h: points, rectangles, and row-major linearization.
#include "geom/rect.h"

#include <gtest/gtest.h>

namespace visrt {
namespace {

TEST(Rect, VolumeAndEmpty) {
  Rect<2> r{{0, 0}, {3, 4}};
  EXPECT_EQ(r.volume(), 20);
  EXPECT_FALSE(r.empty());
  Rect<2> e{{2, 2}, {1, 5}};
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.volume(), 0);
}

TEST(Rect, Contains) {
  Rect<3> r{{0, 0, 0}, {2, 2, 2}};
  EXPECT_TRUE(r.contains(Point<3>{{1, 2, 0}}));
  EXPECT_FALSE(r.contains(Point<3>{{1, 3, 0}}));
}

TEST(Rect, Intersect) {
  Rect<2> a{{0, 0}, {5, 5}};
  Rect<2> b{{3, 4}, {9, 9}};
  Rect<2> i = a.intersect(b);
  EXPECT_EQ(i, (Rect<2>{{3, 4}, {5, 5}}));
  Rect<2> far{{10, 10}, {12, 12}};
  EXPECT_TRUE(a.intersect(far).empty());
}

TEST(Linearizer, RoundTrip1D) {
  Linearizer<1> lin(Rect<1>{{10}, {29}});
  EXPECT_EQ(lin.linearize(Point<1>{{10}}), 0);
  EXPECT_EQ(lin.linearize(Point<1>{{29}}), 19);
  for (coord_t p = 10; p <= 29; ++p) {
    EXPECT_EQ(lin.delinearize(lin.linearize(Point<1>{{p}}))[0], p);
  }
}

TEST(Linearizer, RoundTrip2D) {
  Linearizer<2> lin(Rect<2>{{0, 0}, {7, 9}});
  coord_t expect = 0;
  for (coord_t i = 0; i <= 7; ++i) {
    for (coord_t j = 0; j <= 9; ++j) {
      Point<2> p{{i, j}};
      EXPECT_EQ(lin.linearize(p), expect);
      EXPECT_EQ(lin.delinearize(expect), p);
      ++expect;
    }
  }
}

TEST(Linearizer, RectToIntervalsRowMajor) {
  Linearizer<2> lin(Rect<2>{{0, 0}, {3, 9}}); // 4 rows of 10
  IntervalSet s = lin.linearize(Rect<2>{{1, 2}, {2, 5}});
  // rows 1 and 2, columns 2..5 -> [12,15] and [22,25]
  EXPECT_EQ(s, (IntervalSet{{12, 15}, {22, 25}}));
  EXPECT_EQ(s.volume(), 8);
}

TEST(Linearizer, FullRowsMerge) {
  Linearizer<2> lin(Rect<2>{{0, 0}, {3, 9}});
  // Full-width rows are contiguous in the linearization and merge.
  IntervalSet s = lin.linearize(Rect<2>{{1, 0}, {2, 9}});
  EXPECT_EQ(s, IntervalSet(10, 29));
}

TEST(Linearizer, ClampsToBase) {
  Linearizer<2> lin(Rect<2>{{0, 0}, {3, 3}});
  IntervalSet s = lin.linearize(Rect<2>{{-5, -5}, {0, 10}});
  EXPECT_EQ(s, IntervalSet(0, 3)); // only row 0 survives
}

TEST(Linearizer, DisjointRowsOfNonFullWidth) {
  Linearizer<2> lin(Rect<2>{{0, 0}, {2, 4}});
  IntervalSet s = lin.linearize(Rect<2>{{0, 1}, {2, 2}});
  EXPECT_EQ(s.interval_count(), 3u);
  EXPECT_EQ(s.volume(), 6);
}

TEST(Linearizer, ThreeDimensional) {
  Linearizer<3> lin(Rect<3>{{0, 0, 0}, {1, 2, 3}});
  EXPECT_EQ(lin.linearize(Point<3>{{0, 0, 0}}), 0);
  EXPECT_EQ(lin.linearize(Point<3>{{1, 2, 3}}), 23);
  IntervalSet s = lin.linearize(Rect<3>{{0, 0, 1}, {1, 2, 2}});
  EXPECT_EQ(s.volume(), 12);
  EXPECT_EQ(s.interval_count(), 6u); // 2*3 partial rows
}

TEST(Linearizer, RejectsEmptyBase) {
  EXPECT_THROW(Linearizer<1>(Rect<1>{{5}, {4}}), ApiError);
}

} // namespace
} // namespace visrt
