// Tests for the dynamic-tracing extension: replayed analysis must be
// invisible semantically (same values, same dependence DAG) while removing
// analysis traffic from the simulated machine.
#include <gtest/gtest.h>

#include "common/check.h"
#include "realm/reduction_ops.h"
#include "runtime/runtime.h"

namespace visrt {
namespace {

struct Fixture {
  RegionHandle region;
  PartitionHandle primary, ghost;
  FieldID field;
};

Fixture build(Runtime& rt) {
  Fixture s;
  s.region = rt.create_region(IntervalSet(0, 39), "r");
  s.primary = rt.create_partition(
      s.region,
      {IntervalSet(0, 9), IntervalSet(10, 19), IntervalSet(20, 29),
       IntervalSet(30, 39)},
      "p");
  s.ghost = rt.create_partition(
      s.region,
      {IntervalSet(8, 12), IntervalSet(18, 22), IntervalSet(28, 32),
       IntervalSet{{0, 2}, {38, 39}}},
      "g");
  s.field = rt.add_field(s.region, "f", 1.0);
  return s;
}

void run_iteration(Runtime& rt, const Fixture& s) {
  for (std::uint32_t i = 0; i < 4; ++i) {
    rt.launch(TaskLaunch{
        "w",
        {RegionReq{rt.subregion(s.primary, i), s.field,
                   Privilege::read_write()}},
        [](TaskContext& ctx) {
          ctx.data(0).for_each([](coord_t, double& v) { v += 1; });
        },
        static_cast<NodeID>(i),
        10});
  }
  for (std::uint32_t i = 0; i < 4; ++i) {
    rt.launch(TaskLaunch{
        "red",
        {RegionReq{rt.subregion(s.ghost, i), s.field,
                   Privilege::reduce(kRedopSum)}},
        [](TaskContext& ctx) {
          ctx.data(0).for_each([](coord_t, double& v) { v += 2; });
        },
        static_cast<NodeID>(i),
        10});
  }
}

RuntimeConfig traced_config(bool tracing, std::uint32_t nodes = 4) {
  RuntimeConfig cfg;
  cfg.algorithm = Algorithm::RayCast;
  cfg.machine.num_nodes = nodes;
  cfg.enable_tracing = tracing;
  return cfg;
}

TEST(Tracing, ReplayPreservesValuesAndDependences) {
  Runtime traced(traced_config(true));
  Runtime plain(traced_config(false));
  Fixture st = build(traced);
  Fixture sp = build(plain);

  for (int iter = 0; iter < 5; ++iter) {
    traced.begin_trace(7);
    run_iteration(traced, st);
    traced.end_trace();
    traced.end_iteration();
    run_iteration(plain, sp);
    plain.end_iteration();
  }
  // Iterations 2..5 replay (iteration 1 captured).
  EXPECT_EQ(traced.traced_launches(), 4u * 8u);

  EXPECT_EQ(traced.observe(st.region, st.field),
            plain.observe(sp.region, sp.field));
  ASSERT_EQ(traced.dep_graph().task_count(), plain.dep_graph().task_count());
  for (LaunchID i = 0; i < plain.dep_graph().task_count(); ++i) {
    auto a = traced.dep_graph().preds(i);
    auto b = plain.dep_graph().preds(i);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "launch " << i;
  }
}

TEST(Tracing, ReplayRemovesAnalysisTraffic) {
  auto messages = [](bool tracing) {
    Runtime rt(traced_config(tracing));
    Fixture s = build(rt);
    for (int iter = 0; iter < 6; ++iter) {
      rt.begin_trace(1);
      run_iteration(rt, s);
      rt.end_trace();
      rt.end_iteration();
    }
    RunStats stats = rt.finish();
    return stats.messages;
  };
  std::size_t with = messages(true);
  std::size_t without = messages(false);
  EXPECT_LT(with, without / 2) << "tracing should remove most messages";
}

TEST(Tracing, ReplaySpeedsUpSteadyState) {
  auto steady = [](bool tracing) {
    RuntimeConfig cfg = traced_config(tracing, 4);
    cfg.track_values = false;
    Runtime rt(cfg);
    Fixture s = build(rt);
    for (int iter = 0; iter < 6; ++iter) {
      rt.begin_trace(1);
      run_iteration(rt, s);
      rt.end_trace();
      rt.end_iteration();
    }
    return rt.finish().steady_iter_s;
  };
  EXPECT_LT(steady(true), steady(false));
}

TEST(Tracing, SequenceMismatchFallsBackGracefully) {
  Runtime rt(traced_config(true));
  Fixture s = build(rt);

  rt.begin_trace(3);
  run_iteration(rt, s);
  rt.end_trace();

  // A different sequence under the same trace id: must invalidate, not
  // crash, and produce correct values.
  rt.begin_trace(3);
  for (std::uint32_t i = 0; i < 4; ++i) {
    rt.launch(TaskLaunch{
        "other",
        {RegionReq{rt.subregion(s.ghost, i), s.field, Privilege::read()}},
        nullptr,
        static_cast<NodeID>(i),
        5});
  }
  rt.end_trace();
  EXPECT_EQ(rt.traced_launches(), 0u);

  // The invalidated trace keeps falling back silently.
  rt.begin_trace(3);
  run_iteration(rt, s);
  rt.end_trace();
  EXPECT_EQ(rt.traced_launches(), 0u);

  Runtime plain(traced_config(false));
  Fixture sp = build(plain);
  run_iteration(plain, sp);
  for (std::uint32_t i = 0; i < 4; ++i) {
    plain.launch(TaskLaunch{
        "other",
        {RegionReq{plain.subregion(sp.ghost, i), sp.field,
                   Privilege::read()}},
        nullptr,
        static_cast<NodeID>(i),
        5});
  }
  run_iteration(plain, sp);
  EXPECT_EQ(rt.observe(s.region, s.field),
            plain.observe(sp.region, sp.field));
}

TEST(Tracing, ShortReplayInvalidatesTemplate) {
  Runtime rt(traced_config(true));
  Fixture s = build(rt);
  rt.begin_trace(9);
  run_iteration(rt, s);
  rt.end_trace();

  // Replay fewer launches than the template: stale template detected.
  rt.begin_trace(9);
  rt.launch(TaskLaunch{
      "w",
      {RegionReq{rt.subregion(s.primary, 0), s.field,
                 Privilege::read_write()}},
      nullptr,
      0,
      10});
  rt.end_trace();

  std::size_t traced_before = rt.traced_launches();
  rt.begin_trace(9);
  run_iteration(rt, s);
  rt.end_trace();
  EXPECT_EQ(rt.traced_launches(), traced_before); // no further replays
}

TEST(Tracing, NestingAndUnderflowRejected) {
  Runtime rt(traced_config(true));
  (void)build(rt);
  EXPECT_THROW(rt.end_trace(), ApiError);
  rt.begin_trace(0);
  EXPECT_THROW(rt.begin_trace(1), ApiError);
  rt.end_trace();
}

TEST(Tracing, DisabledTracingIsNoop) {
  Runtime rt(traced_config(false));
  Fixture s = build(rt);
  rt.begin_trace(0); // ignored
  run_iteration(rt, s);
  rt.end_trace();
  rt.begin_trace(0);
  run_iteration(rt, s);
  rt.end_trace();
  EXPECT_EQ(rt.traced_launches(), 0u);
}

TEST(Tracing, DeterministicUnderParallelAnalysis) {
  // Trace capture, replay and invalidation are driven by launch
  // fingerprints computed on the issuing thread; sharding the analysis
  // across worker lanes must not change which launches replay, the
  // dependence DAG, or the final values.
  auto run = [](unsigned threads) {
    RuntimeConfig cfg = traced_config(true);
    cfg.analysis_threads = threads;
    auto rt = std::make_unique<Runtime>(cfg);
    Fixture s = build(*rt);
    for (int iter = 0; iter < 5; ++iter) {
      rt->begin_trace(7);
      run_iteration(*rt, s);
      rt->end_trace();
      rt->end_iteration();
    }
    return std::make_pair(std::move(rt), s);
  };
  // Capture the sequential fingerprints once; observe()/finish() mutate
  // the runtime, so the parallel runs compare against these snapshots.
  auto [seq, ss] = run(1);
  const std::size_t seq_traced = seq->traced_launches();
  const LaunchID seq_tasks = seq->dep_graph().task_count();
  std::vector<std::vector<LaunchID>> seq_preds;
  for (LaunchID i = 0; i < seq_tasks; ++i) {
    auto p = seq->dep_graph().preds(i);
    seq_preds.emplace_back(p.begin(), p.end());
  }
  const RegionData<double> seq_values = seq->observe(ss.region, ss.field);
  const RunStats seq_stats = seq->finish();

  for (unsigned threads : {2u, 8u}) {
    auto [par, sp] = run(threads);
    EXPECT_EQ(par->traced_launches(), seq_traced) << "threads=" << threads;
    ASSERT_EQ(par->dep_graph().task_count(), seq_tasks);
    for (LaunchID i = 0; i < seq_tasks; ++i) {
      auto a = par->dep_graph().preds(i);
      EXPECT_TRUE(std::equal(a.begin(), a.end(), seq_preds[i].begin(),
                             seq_preds[i].end()))
          << "threads=" << threads << " launch " << i;
    }
    EXPECT_EQ(par->observe(sp.region, sp.field), seq_values)
        << "threads=" << threads;
    RunStats p = par->finish();
    EXPECT_EQ(p.messages, seq_stats.messages) << "threads=" << threads;
    EXPECT_EQ(p.total_time_s, seq_stats.total_time_s)
        << "threads=" << threads;
  }
}

TEST(Tracing, WorksUnderDcr) {
  RuntimeConfig cfg = traced_config(true);
  cfg.dcr = true;
  Runtime rt(cfg);
  Fixture s = build(rt);
  for (int iter = 0; iter < 3; ++iter) {
    rt.begin_trace(0);
    run_iteration(rt, s);
    rt.end_trace();
    rt.end_iteration();
  }
  EXPECT_EQ(rt.traced_launches(), 2u * 8u);

  Runtime plain(traced_config(false));
  Fixture sp = build(plain);
  for (int iter = 0; iter < 3; ++iter) {
    run_iteration(plain, sp);
    plain.end_iteration();
  }
  EXPECT_EQ(rt.observe(s.region, s.field),
            plain.observe(sp.region, sp.field));
}

} // namespace
} // namespace visrt
