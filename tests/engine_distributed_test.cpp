// Distribution-invariance tests at the engine level: where the analysis
// runs (node 0 vs. the mapped shard, as under DCR) and where tasks are
// mapped must never change the semantics — only the attribution of the
// analysis work.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine_harness.h"
#include "realm/reduction_ops.h"

namespace visrt {
namespace {

struct Program {
  RegionTreeForest forest;
  RegionHandle root;
  std::vector<RegionHandle> regions;

  explicit Program(Rng& rng) {
    root = forest.create_root(IntervalSet(0, 127), "A");
    regions.push_back(root);
    std::vector<IntervalSet> p, g;
    for (coord_t i = 0; i < 4; ++i) {
      p.push_back(IntervalSet(i * 32, i * 32 + 31));
      coord_t lo = rng.range(0, 100);
      g.push_back(IntervalSet(lo, lo + rng.range(4, 20)));
    }
    PartitionHandle ph = forest.create_partition(root, std::move(p), "P");
    PartitionHandle gh = forest.create_partition(root, std::move(g), "G");
    for (std::size_t i = 0; i < 4; ++i) {
      regions.push_back(forest.subregion(ph, i));
      regions.push_back(forest.subregion(gh, i));
    }
  }
};

struct Op {
  Requirement req;
  NodeID mapped;
};

std::vector<Op> random_ops(Program& prog, Rng& rng, int n) {
  std::vector<Op> ops;
  for (int t = 0; t < n; ++t) {
    Op op;
    op.req.region = prog.regions[rng.below(prog.regions.size())];
    op.req.field = 0;
    double roll = rng.uniform();
    if (roll < 0.3) op.req.privilege = Privilege::read();
    else if (roll < 0.6) op.req.privilege = Privilege::read_write();
    else op.req.privilege = Privilege::reduce(kRedopSum);
    op.mapped = static_cast<NodeID>(rng.below(4));
    ops.push_back(op);
  }
  return ops;
}

using Param = std::tuple<Algorithm, std::uint64_t>;
class DistributionInvariance : public ::testing::TestWithParam<Param> {};

TEST_P(DistributionInvariance, AnalysisPlacementDoesNotChangeSemantics) {
  auto [algorithm, seed] = GetParam();
  Rng rng(seed);
  Program prog(rng);
  auto ops = random_ops(prog, rng, 40);

  EngineConfig config;
  config.forest = &prog.forest;
  auto centralized = make_engine(algorithm, config); // analysis at node 0
  auto sharded = make_engine(algorithm, config);     // analysis at mapped

  auto init = RegionData<double>::generate(
      prog.forest.domain(prog.root),
      [](coord_t p) { return static_cast<double>(p % 9); });
  centralized->initialize_field(prog.root, 0, init, 0);
  sharded->initialize_field(prog.root, 0, init, 0);

  LaunchID id = 0;
  for (const Op& op : ops) {
    AnalysisContext c0{id, op.mapped, 0};
    AnalysisContext cm{id, op.mapped, op.mapped};
    auto a = centralized->materialize(op.req, c0);
    auto b = sharded->materialize(op.req, cm);
    EXPECT_EQ(a.dependences, b.dependences) << "launch " << id;
    EXPECT_EQ(a.data, b.data) << "launch " << id;
    if (op.req.privilege.is_write()) {
      a.data.for_each([id](coord_t p, double& v) {
        v = static_cast<double>((p + static_cast<coord_t>(id)) % 17);
      });
      b.data = a.data;
    } else if (op.req.privilege.is_reduce()) {
      a.data.for_each([](coord_t, double& v) { v += 1.0; });
      b.data = a.data;
    }
    centralized->commit(op.req, a.data, c0);
    sharded->commit(op.req, b.data, cm);
    ++id;
  }
  EXPECT_EQ(centralized->stats().live_eqsets, sharded->stats().live_eqsets);
}

TEST_P(DistributionInvariance, TotalAnalysisWorkIndependentOfPlacement) {
  // The *sum* of the reported counters must be the same whether the work
  // lands locally or at remote owners; only the owner attribution moves.
  auto [algorithm, seed] = GetParam();
  Rng rng(seed ^ 0xfeed);
  Program prog(rng);
  auto ops = random_ops(prog, rng, 30);

  EngineConfig config;
  config.forest = &prog.forest;
  config.track_values = false;

  auto total_visits = [&](NodeID analysis_of(NodeID mapped)) {
    auto engine = make_engine(algorithm, config);
    engine->initialize_field(prog.root, 0, RegionData<double>{}, 0);
    std::uint64_t visits = 0;
    LaunchID id = 0;
    for (const Op& op : ops) {
      AnalysisContext ctx{id++, op.mapped, analysis_of(op.mapped)};
      auto mr = engine->materialize(op.req, ctx);
      for (const AnalysisStep& s : mr.steps) visits += s.counters.eqset_visits;
      engine->commit(op.req, mr.data, ctx);
    }
    return visits;
  };
  std::uint64_t central = total_visits([](NodeID) { return NodeID{0}; });
  std::uint64_t shard = total_visits([](NodeID m) { return m; });
  EXPECT_EQ(central, shard);
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string name = algorithm_name(std::get<0>(info.param));
  for (char& c : name)
    if (c == '-') c = '_';
  return name + "_s" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Engines, DistributionInvariance,
    ::testing::Combine(::testing::Values(Algorithm::Paint,
                                         Algorithm::Warnock,
                                         Algorithm::RayCast),
                       ::testing::Values<std::uint64_t>(3, 17, 4242)),
    param_name);

} // namespace
} // namespace visrt
