file(REMOVE_RECURSE
  "CMakeFiles/fig16_circuit_weak.dir/fig16_circuit_weak.cpp.o"
  "CMakeFiles/fig16_circuit_weak.dir/fig16_circuit_weak.cpp.o.d"
  "fig16_circuit_weak"
  "fig16_circuit_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_circuit_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
