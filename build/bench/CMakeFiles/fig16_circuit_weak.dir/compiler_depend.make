# Empty compiler generated dependencies file for fig16_circuit_weak.
# This may be replaced when dependencies are built.
