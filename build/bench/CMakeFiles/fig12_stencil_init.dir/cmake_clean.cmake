file(REMOVE_RECURSE
  "CMakeFiles/fig12_stencil_init.dir/fig12_stencil_init.cpp.o"
  "CMakeFiles/fig12_stencil_init.dir/fig12_stencil_init.cpp.o.d"
  "fig12_stencil_init"
  "fig12_stencil_init.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_stencil_init.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
