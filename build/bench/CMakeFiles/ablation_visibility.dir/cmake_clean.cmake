file(REMOVE_RECURSE
  "CMakeFiles/ablation_visibility.dir/ablation_visibility.cpp.o"
  "CMakeFiles/ablation_visibility.dir/ablation_visibility.cpp.o.d"
  "ablation_visibility"
  "ablation_visibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
