file(REMOVE_RECURSE
  "CMakeFiles/fig13_circuit_init.dir/fig13_circuit_init.cpp.o"
  "CMakeFiles/fig13_circuit_init.dir/fig13_circuit_init.cpp.o.d"
  "fig13_circuit_init"
  "fig13_circuit_init.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_circuit_init.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
