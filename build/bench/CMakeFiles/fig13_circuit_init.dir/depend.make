# Empty dependencies file for fig13_circuit_init.
# This may be replaced when dependencies are built.
