file(REMOVE_RECURSE
  "CMakeFiles/fig17_pennant_weak.dir/fig17_pennant_weak.cpp.o"
  "CMakeFiles/fig17_pennant_weak.dir/fig17_pennant_weak.cpp.o.d"
  "fig17_pennant_weak"
  "fig17_pennant_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_pennant_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
