# Empty compiler generated dependencies file for fig17_pennant_weak.
# This may be replaced when dependencies are built.
