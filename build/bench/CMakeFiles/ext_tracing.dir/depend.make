# Empty dependencies file for ext_tracing.
# This may be replaced when dependencies are built.
