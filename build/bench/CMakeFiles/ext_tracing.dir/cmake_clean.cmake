file(REMOVE_RECURSE
  "CMakeFiles/ext_tracing.dir/ext_tracing.cpp.o"
  "CMakeFiles/ext_tracing.dir/ext_tracing.cpp.o.d"
  "ext_tracing"
  "ext_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
