# Empty compiler generated dependencies file for micro_intervalset.
# This may be replaced when dependencies are built.
