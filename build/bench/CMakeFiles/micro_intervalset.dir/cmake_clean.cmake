file(REMOVE_RECURSE
  "CMakeFiles/micro_intervalset.dir/micro_intervalset.cpp.o"
  "CMakeFiles/micro_intervalset.dir/micro_intervalset.cpp.o.d"
  "micro_intervalset"
  "micro_intervalset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_intervalset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
