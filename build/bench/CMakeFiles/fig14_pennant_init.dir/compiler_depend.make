# Empty compiler generated dependencies file for fig14_pennant_init.
# This may be replaced when dependencies are built.
