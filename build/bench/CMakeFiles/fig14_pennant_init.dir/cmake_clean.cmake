file(REMOVE_RECURSE
  "CMakeFiles/fig14_pennant_init.dir/fig14_pennant_init.cpp.o"
  "CMakeFiles/fig14_pennant_init.dir/fig14_pennant_init.cpp.o.d"
  "fig14_pennant_init"
  "fig14_pennant_init.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_pennant_init.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
