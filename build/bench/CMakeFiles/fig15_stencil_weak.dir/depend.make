# Empty dependencies file for fig15_stencil_weak.
# This may be replaced when dependencies are built.
