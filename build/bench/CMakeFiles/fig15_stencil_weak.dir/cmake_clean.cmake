file(REMOVE_RECURSE
  "CMakeFiles/fig15_stencil_weak.dir/fig15_stencil_weak.cpp.o"
  "CMakeFiles/fig15_stencil_weak.dir/fig15_stencil_weak.cpp.o.d"
  "fig15_stencil_weak"
  "fig15_stencil_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_stencil_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
