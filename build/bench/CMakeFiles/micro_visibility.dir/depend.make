# Empty dependencies file for micro_visibility.
# This may be replaced when dependencies are built.
