file(REMOVE_RECURSE
  "CMakeFiles/micro_visibility.dir/micro_visibility.cpp.o"
  "CMakeFiles/micro_visibility.dir/micro_visibility.cpp.o.d"
  "micro_visibility"
  "micro_visibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
