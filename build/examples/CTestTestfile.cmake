# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stencil "/root/repo/build/examples/stencil")
set_tests_properties(example_stencil PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_circuit "/root/repo/build/examples/circuit")
set_tests_properties(example_circuit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pennant "/root/repo/build/examples/pennant")
set_tests_properties(example_pennant PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_region_tree_explorer "/root/repo/build/examples/region_tree_explorer")
set_tests_properties(example_region_tree_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_algorithm_comparison "/root/repo/build/examples/algorithm_comparison" "3")
set_tests_properties(example_algorithm_comparison PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_stencil "/root/repo/build/examples/visrt_cli" "stencil" "raycast" "--trace")
set_tests_properties(example_cli_stencil PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_circuit "/root/repo/build/examples/visrt_cli" "circuit" "warnock" "--dcr")
set_tests_properties(example_cli_circuit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_pennant "/root/repo/build/examples/visrt_cli" "pennant" "paint")
set_tests_properties(example_cli_pennant PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
