file(REMOVE_RECURSE
  "CMakeFiles/pennant.dir/pennant.cpp.o"
  "CMakeFiles/pennant.dir/pennant.cpp.o.d"
  "pennant"
  "pennant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pennant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
