# Empty dependencies file for pennant.
# This may be replaced when dependencies are built.
