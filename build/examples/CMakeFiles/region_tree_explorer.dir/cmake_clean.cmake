file(REMOVE_RECURSE
  "CMakeFiles/region_tree_explorer.dir/region_tree_explorer.cpp.o"
  "CMakeFiles/region_tree_explorer.dir/region_tree_explorer.cpp.o.d"
  "region_tree_explorer"
  "region_tree_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_tree_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
