# Empty dependencies file for region_tree_explorer.
# This may be replaced when dependencies are built.
