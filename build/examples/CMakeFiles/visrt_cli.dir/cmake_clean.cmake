file(REMOVE_RECURSE
  "CMakeFiles/visrt_cli.dir/visrt_cli.cpp.o"
  "CMakeFiles/visrt_cli.dir/visrt_cli.cpp.o.d"
  "visrt_cli"
  "visrt_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visrt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
