# Empty dependencies file for visrt_cli.
# This may be replaced when dependencies are built.
