# Empty compiler generated dependencies file for visrt_realm.
# This may be replaced when dependencies are built.
