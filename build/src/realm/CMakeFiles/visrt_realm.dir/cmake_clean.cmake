file(REMOVE_RECURSE
  "CMakeFiles/visrt_realm.dir/instance_map.cc.o"
  "CMakeFiles/visrt_realm.dir/instance_map.cc.o.d"
  "CMakeFiles/visrt_realm.dir/reduction_ops.cc.o"
  "CMakeFiles/visrt_realm.dir/reduction_ops.cc.o.d"
  "libvisrt_realm.a"
  "libvisrt_realm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visrt_realm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
