file(REMOVE_RECURSE
  "libvisrt_realm.a"
)
