# Empty compiler generated dependencies file for visrt_geom.
# This may be replaced when dependencies are built.
