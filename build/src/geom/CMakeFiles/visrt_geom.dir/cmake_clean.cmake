file(REMOVE_RECURSE
  "CMakeFiles/visrt_geom.dir/bvh.cc.o"
  "CMakeFiles/visrt_geom.dir/bvh.cc.o.d"
  "CMakeFiles/visrt_geom.dir/interval_set.cc.o"
  "CMakeFiles/visrt_geom.dir/interval_set.cc.o.d"
  "CMakeFiles/visrt_geom.dir/interval_tree.cc.o"
  "CMakeFiles/visrt_geom.dir/interval_tree.cc.o.d"
  "libvisrt_geom.a"
  "libvisrt_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visrt_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
