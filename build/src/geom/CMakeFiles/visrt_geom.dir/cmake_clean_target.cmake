file(REMOVE_RECURSE
  "libvisrt_geom.a"
)
