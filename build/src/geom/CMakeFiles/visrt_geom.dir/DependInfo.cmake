
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/bvh.cc" "src/geom/CMakeFiles/visrt_geom.dir/bvh.cc.o" "gcc" "src/geom/CMakeFiles/visrt_geom.dir/bvh.cc.o.d"
  "/root/repo/src/geom/interval_set.cc" "src/geom/CMakeFiles/visrt_geom.dir/interval_set.cc.o" "gcc" "src/geom/CMakeFiles/visrt_geom.dir/interval_set.cc.o.d"
  "/root/repo/src/geom/interval_tree.cc" "src/geom/CMakeFiles/visrt_geom.dir/interval_tree.cc.o" "gcc" "src/geom/CMakeFiles/visrt_geom.dir/interval_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/visrt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
