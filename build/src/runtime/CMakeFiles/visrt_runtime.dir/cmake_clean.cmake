file(REMOVE_RECURSE
  "CMakeFiles/visrt_runtime.dir/runtime.cc.o"
  "CMakeFiles/visrt_runtime.dir/runtime.cc.o.d"
  "libvisrt_runtime.a"
  "libvisrt_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visrt_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
