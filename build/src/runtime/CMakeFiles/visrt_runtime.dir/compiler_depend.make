# Empty compiler generated dependencies file for visrt_runtime.
# This may be replaced when dependencies are built.
