file(REMOVE_RECURSE
  "libvisrt_runtime.a"
)
