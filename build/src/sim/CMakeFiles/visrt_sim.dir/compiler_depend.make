# Empty compiler generated dependencies file for visrt_sim.
# This may be replaced when dependencies are built.
