file(REMOVE_RECURSE
  "CMakeFiles/visrt_sim.dir/replay.cc.o"
  "CMakeFiles/visrt_sim.dir/replay.cc.o.d"
  "CMakeFiles/visrt_sim.dir/trace_export.cc.o"
  "CMakeFiles/visrt_sim.dir/trace_export.cc.o.d"
  "CMakeFiles/visrt_sim.dir/work_graph.cc.o"
  "CMakeFiles/visrt_sim.dir/work_graph.cc.o.d"
  "libvisrt_sim.a"
  "libvisrt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visrt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
