file(REMOVE_RECURSE
  "libvisrt_sim.a"
)
