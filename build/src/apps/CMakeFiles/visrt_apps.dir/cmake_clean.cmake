file(REMOVE_RECURSE
  "CMakeFiles/visrt_apps.dir/circuit.cc.o"
  "CMakeFiles/visrt_apps.dir/circuit.cc.o.d"
  "CMakeFiles/visrt_apps.dir/pennant.cc.o"
  "CMakeFiles/visrt_apps.dir/pennant.cc.o.d"
  "CMakeFiles/visrt_apps.dir/stencil.cc.o"
  "CMakeFiles/visrt_apps.dir/stencil.cc.o.d"
  "libvisrt_apps.a"
  "libvisrt_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visrt_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
