# Empty compiler generated dependencies file for visrt_apps.
# This may be replaced when dependencies are built.
