file(REMOVE_RECURSE
  "libvisrt_apps.a"
)
