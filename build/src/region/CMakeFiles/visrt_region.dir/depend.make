# Empty dependencies file for visrt_region.
# This may be replaced when dependencies are built.
