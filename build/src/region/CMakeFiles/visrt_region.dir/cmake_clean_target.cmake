file(REMOVE_RECURSE
  "libvisrt_region.a"
)
