file(REMOVE_RECURSE
  "CMakeFiles/visrt_region.dir/dependent_partitioning.cc.o"
  "CMakeFiles/visrt_region.dir/dependent_partitioning.cc.o.d"
  "CMakeFiles/visrt_region.dir/region_tree.cc.o"
  "CMakeFiles/visrt_region.dir/region_tree.cc.o.d"
  "libvisrt_region.a"
  "libvisrt_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visrt_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
