file(REMOVE_RECURSE
  "CMakeFiles/visrt_common.dir/check.cc.o"
  "CMakeFiles/visrt_common.dir/check.cc.o.d"
  "CMakeFiles/visrt_common.dir/log.cc.o"
  "CMakeFiles/visrt_common.dir/log.cc.o.d"
  "libvisrt_common.a"
  "libvisrt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visrt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
