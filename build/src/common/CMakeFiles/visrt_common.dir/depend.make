# Empty dependencies file for visrt_common.
# This may be replaced when dependencies are built.
