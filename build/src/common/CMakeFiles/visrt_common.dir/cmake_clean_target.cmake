file(REMOVE_RECURSE
  "libvisrt_common.a"
)
