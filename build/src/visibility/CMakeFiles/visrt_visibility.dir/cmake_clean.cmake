file(REMOVE_RECURSE
  "CMakeFiles/visrt_visibility.dir/dep_graph.cc.o"
  "CMakeFiles/visrt_visibility.dir/dep_graph.cc.o.d"
  "CMakeFiles/visrt_visibility.dir/engine.cc.o"
  "CMakeFiles/visrt_visibility.dir/engine.cc.o.d"
  "CMakeFiles/visrt_visibility.dir/naive.cc.o"
  "CMakeFiles/visrt_visibility.dir/naive.cc.o.d"
  "CMakeFiles/visrt_visibility.dir/paint.cc.o"
  "CMakeFiles/visrt_visibility.dir/paint.cc.o.d"
  "CMakeFiles/visrt_visibility.dir/raycast.cc.o"
  "CMakeFiles/visrt_visibility.dir/raycast.cc.o.d"
  "CMakeFiles/visrt_visibility.dir/reference.cc.o"
  "CMakeFiles/visrt_visibility.dir/reference.cc.o.d"
  "CMakeFiles/visrt_visibility.dir/warnock.cc.o"
  "CMakeFiles/visrt_visibility.dir/warnock.cc.o.d"
  "libvisrt_visibility.a"
  "libvisrt_visibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visrt_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
