
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/visibility/dep_graph.cc" "src/visibility/CMakeFiles/visrt_visibility.dir/dep_graph.cc.o" "gcc" "src/visibility/CMakeFiles/visrt_visibility.dir/dep_graph.cc.o.d"
  "/root/repo/src/visibility/engine.cc" "src/visibility/CMakeFiles/visrt_visibility.dir/engine.cc.o" "gcc" "src/visibility/CMakeFiles/visrt_visibility.dir/engine.cc.o.d"
  "/root/repo/src/visibility/naive.cc" "src/visibility/CMakeFiles/visrt_visibility.dir/naive.cc.o" "gcc" "src/visibility/CMakeFiles/visrt_visibility.dir/naive.cc.o.d"
  "/root/repo/src/visibility/paint.cc" "src/visibility/CMakeFiles/visrt_visibility.dir/paint.cc.o" "gcc" "src/visibility/CMakeFiles/visrt_visibility.dir/paint.cc.o.d"
  "/root/repo/src/visibility/raycast.cc" "src/visibility/CMakeFiles/visrt_visibility.dir/raycast.cc.o" "gcc" "src/visibility/CMakeFiles/visrt_visibility.dir/raycast.cc.o.d"
  "/root/repo/src/visibility/reference.cc" "src/visibility/CMakeFiles/visrt_visibility.dir/reference.cc.o" "gcc" "src/visibility/CMakeFiles/visrt_visibility.dir/reference.cc.o.d"
  "/root/repo/src/visibility/warnock.cc" "src/visibility/CMakeFiles/visrt_visibility.dir/warnock.cc.o" "gcc" "src/visibility/CMakeFiles/visrt_visibility.dir/warnock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/region/CMakeFiles/visrt_region.dir/DependInfo.cmake"
  "/root/repo/build/src/realm/CMakeFiles/visrt_realm.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/visrt_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/visrt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
