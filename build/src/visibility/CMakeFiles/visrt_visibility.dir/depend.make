# Empty dependencies file for visrt_visibility.
# This may be replaced when dependencies are built.
