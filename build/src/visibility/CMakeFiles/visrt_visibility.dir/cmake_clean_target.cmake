file(REMOVE_RECURSE
  "libvisrt_visibility.a"
)
