file(REMOVE_RECURSE
  "CMakeFiles/reduction_ops_test.dir/reduction_ops_test.cpp.o"
  "CMakeFiles/reduction_ops_test.dir/reduction_ops_test.cpp.o.d"
  "reduction_ops_test"
  "reduction_ops_test.pdb"
  "reduction_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduction_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
