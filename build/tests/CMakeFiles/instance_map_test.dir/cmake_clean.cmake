file(REMOVE_RECURSE
  "CMakeFiles/instance_map_test.dir/instance_map_test.cpp.o"
  "CMakeFiles/instance_map_test.dir/instance_map_test.cpp.o.d"
  "instance_map_test"
  "instance_map_test.pdb"
  "instance_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
