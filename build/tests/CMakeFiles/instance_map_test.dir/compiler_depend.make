# Empty compiler generated dependencies file for instance_map_test.
# This may be replaced when dependencies are built.
