file(REMOVE_RECURSE
  "CMakeFiles/region_tree_test.dir/region_tree_test.cpp.o"
  "CMakeFiles/region_tree_test.dir/region_tree_test.cpp.o.d"
  "region_tree_test"
  "region_tree_test.pdb"
  "region_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
