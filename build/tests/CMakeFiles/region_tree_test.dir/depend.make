# Empty dependencies file for region_tree_test.
# This may be replaced when dependencies are built.
