# Empty dependencies file for engine_distributed_test.
# This may be replaced when dependencies are built.
