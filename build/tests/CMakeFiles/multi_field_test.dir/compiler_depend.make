# Empty compiler generated dependencies file for multi_field_test.
# This may be replaced when dependencies are built.
