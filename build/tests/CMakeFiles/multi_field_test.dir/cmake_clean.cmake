file(REMOVE_RECURSE
  "CMakeFiles/multi_field_test.dir/multi_field_test.cpp.o"
  "CMakeFiles/multi_field_test.dir/multi_field_test.cpp.o.d"
  "multi_field_test"
  "multi_field_test.pdb"
  "multi_field_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_field_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
