# Empty compiler generated dependencies file for region_data_property_test.
# This may be replaced when dependencies are built.
