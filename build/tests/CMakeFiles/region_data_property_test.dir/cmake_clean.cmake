file(REMOVE_RECURSE
  "CMakeFiles/region_data_property_test.dir/region_data_property_test.cpp.o"
  "CMakeFiles/region_data_property_test.dir/region_data_property_test.cpp.o.d"
  "region_data_property_test"
  "region_data_property_test.pdb"
  "region_data_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_data_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
