file(REMOVE_RECURSE
  "CMakeFiles/dependent_partitioning_test.dir/dependent_partitioning_test.cpp.o"
  "CMakeFiles/dependent_partitioning_test.dir/dependent_partitioning_test.cpp.o.d"
  "dependent_partitioning_test"
  "dependent_partitioning_test.pdb"
  "dependent_partitioning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependent_partitioning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
