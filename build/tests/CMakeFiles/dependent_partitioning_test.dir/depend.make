# Empty dependencies file for dependent_partitioning_test.
# This may be replaced when dependencies are built.
