file(REMOVE_RECURSE
  "CMakeFiles/naive_pseudocode_test.dir/naive_pseudocode_test.cpp.o"
  "CMakeFiles/naive_pseudocode_test.dir/naive_pseudocode_test.cpp.o.d"
  "naive_pseudocode_test"
  "naive_pseudocode_test.pdb"
  "naive_pseudocode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naive_pseudocode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
