# Empty compiler generated dependencies file for naive_pseudocode_test.
# This may be replaced when dependencies are built.
