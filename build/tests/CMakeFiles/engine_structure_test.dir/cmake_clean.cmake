file(REMOVE_RECURSE
  "CMakeFiles/engine_structure_test.dir/engine_structure_test.cpp.o"
  "CMakeFiles/engine_structure_test.dir/engine_structure_test.cpp.o.d"
  "engine_structure_test"
  "engine_structure_test.pdb"
  "engine_structure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_structure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
