# Empty compiler generated dependencies file for engine_structure_test.
# This may be replaced when dependencies are built.
