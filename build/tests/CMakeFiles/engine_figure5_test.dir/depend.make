# Empty dependencies file for engine_figure5_test.
# This may be replaced when dependencies are built.
