file(REMOVE_RECURSE
  "CMakeFiles/engine_figure5_test.dir/engine_figure5_test.cpp.o"
  "CMakeFiles/engine_figure5_test.dir/engine_figure5_test.cpp.o.d"
  "engine_figure5_test"
  "engine_figure5_test.pdb"
  "engine_figure5_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_figure5_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
