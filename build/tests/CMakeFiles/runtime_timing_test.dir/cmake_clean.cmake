file(REMOVE_RECURSE
  "CMakeFiles/runtime_timing_test.dir/runtime_timing_test.cpp.o"
  "CMakeFiles/runtime_timing_test.dir/runtime_timing_test.cpp.o.d"
  "runtime_timing_test"
  "runtime_timing_test.pdb"
  "runtime_timing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
