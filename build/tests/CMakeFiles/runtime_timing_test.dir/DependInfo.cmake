
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime_timing_test.cpp" "tests/CMakeFiles/runtime_timing_test.dir/runtime_timing_test.cpp.o" "gcc" "tests/CMakeFiles/runtime_timing_test.dir/runtime_timing_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/visrt_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/visrt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/visibility/CMakeFiles/visrt_visibility.dir/DependInfo.cmake"
  "/root/repo/build/src/region/CMakeFiles/visrt_region.dir/DependInfo.cmake"
  "/root/repo/build/src/realm/CMakeFiles/visrt_realm.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/visrt_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/visrt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/visrt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
