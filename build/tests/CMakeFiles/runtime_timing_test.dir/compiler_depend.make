# Empty compiler generated dependencies file for runtime_timing_test.
# This may be replaced when dependencies are built.
