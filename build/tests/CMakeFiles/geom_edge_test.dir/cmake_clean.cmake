file(REMOVE_RECURSE
  "CMakeFiles/geom_edge_test.dir/geom_edge_test.cpp.o"
  "CMakeFiles/geom_edge_test.dir/geom_edge_test.cpp.o.d"
  "geom_edge_test"
  "geom_edge_test.pdb"
  "geom_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
