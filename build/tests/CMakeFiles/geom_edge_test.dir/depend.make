# Empty dependencies file for geom_edge_test.
# This may be replaced when dependencies are built.
