# Empty dependencies file for region_data_test.
# This may be replaced when dependencies are built.
