file(REMOVE_RECURSE
  "CMakeFiles/privilege_test.dir/privilege_test.cpp.o"
  "CMakeFiles/privilege_test.dir/privilege_test.cpp.o.d"
  "privilege_test"
  "privilege_test.pdb"
  "privilege_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privilege_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
