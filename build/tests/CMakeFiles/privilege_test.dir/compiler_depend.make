# Empty compiler generated dependencies file for privilege_test.
# This may be replaced when dependencies are built.
