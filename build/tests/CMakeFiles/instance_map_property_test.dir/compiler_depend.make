# Empty compiler generated dependencies file for instance_map_property_test.
# This may be replaced when dependencies are built.
