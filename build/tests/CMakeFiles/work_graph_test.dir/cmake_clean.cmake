file(REMOVE_RECURSE
  "CMakeFiles/work_graph_test.dir/work_graph_test.cpp.o"
  "CMakeFiles/work_graph_test.dir/work_graph_test.cpp.o.d"
  "work_graph_test"
  "work_graph_test.pdb"
  "work_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/work_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
