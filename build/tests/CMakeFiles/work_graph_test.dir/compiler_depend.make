# Empty compiler generated dependencies file for work_graph_test.
# This may be replaced when dependencies are built.
