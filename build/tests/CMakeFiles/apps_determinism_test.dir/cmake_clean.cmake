file(REMOVE_RECURSE
  "CMakeFiles/apps_determinism_test.dir/apps_determinism_test.cpp.o"
  "CMakeFiles/apps_determinism_test.dir/apps_determinism_test.cpp.o.d"
  "apps_determinism_test"
  "apps_determinism_test.pdb"
  "apps_determinism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
