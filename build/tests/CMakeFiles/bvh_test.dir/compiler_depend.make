# Empty compiler generated dependencies file for bvh_test.
# This may be replaced when dependencies are built.
