file(REMOVE_RECURSE
  "CMakeFiles/bvh_test.dir/bvh_test.cpp.o"
  "CMakeFiles/bvh_test.dir/bvh_test.cpp.o.d"
  "bvh_test"
  "bvh_test.pdb"
  "bvh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
