file(REMOVE_RECURSE
  "CMakeFiles/index_launch_test.dir/index_launch_test.cpp.o"
  "CMakeFiles/index_launch_test.dir/index_launch_test.cpp.o.d"
  "index_launch_test"
  "index_launch_test.pdb"
  "index_launch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_launch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
