# Empty dependencies file for index_launch_test.
# This may be replaced when dependencies are built.
