// Figure 13: Circuit initialization time (init time).
#include "app_benches.h"

int main() {
  using namespace visrt::bench;
  FigureSpec spec{"Figure 13", "Circuit initialization time", "wires/s", false};
  run_figure(spec, [](const SystemConfig& sys, std::uint32_t nodes) {
    return run_circuit(sys, nodes);
  });
  return 0;
}
