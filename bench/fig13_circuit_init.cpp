// Figure 13: Circuit initialization time (init time).
#include "app_benches.h"

int main(int argc, char** argv) {
  using namespace visrt::bench;
  std::string metrics = take_metrics_json_arg(argc, argv);
  bool telemetry = !metrics.empty();
  FigureSpec spec{"Figure 13", "Circuit initialization time", "wires/s", false};
  run_figure(
      spec,
      [telemetry](const SystemConfig& sys, std::uint32_t nodes) {
        return run_circuit(sys, nodes, 5, telemetry);
      },
      metrics, "fig13_circuit_init");
  return 0;
}
