// Figure 13: Circuit initialization time (init time).
#include "app_benches.h"
#include "wallclock_common.h"

int main(int argc, char** argv) {
  using namespace visrt::bench;
  WallClockOptions wc = take_wall_clock_args(argc, argv);
  std::string metrics = take_metrics_json_arg(argc, argv);
  bool telemetry = !metrics.empty();
  auto runner = [telemetry, &wc](const SystemConfig& sys,
                                 std::uint32_t nodes) {
    return run_circuit(sys, nodes, 5, telemetry, wc.threads,
                      wall_clock_profiling(wc));
  };
  if (wc.enabled)
    return run_wall_clock("fig13_circuit_init", "circuit", wc, runner);
  FigureSpec spec{"Figure 13", "Circuit initialization time", "wires/s", false};
  run_figure(spec, runner, metrics, "fig13_circuit_init");
  return 0;
}
