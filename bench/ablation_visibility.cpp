// Ablation benchmarks for the design choices DESIGN.md calls out:
//   - ray casting with dominating writes disabled (degenerates to
//     Warnock-style refinement-only behaviour): equivalence sets pile up;
//   - ray casting forced onto the K-d (interval tree) fallback instead of
//     the disjoint-complete-partition BVH;
//   - Warnock without memoized equivalence-set lookups;
//   - the painter without occlusion pruning: history grows unboundedly.
// Reported both as wall-clock (google-benchmark) and as engine state
// counters printed once per configuration.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "metrics_common.h"
#include "realm/reduction_ops.h"
#include "visibility/paint.h"
#include "visibility/raycast.h"
#include "visibility/warnock.h"

namespace visrt {
namespace {

/// Figure-1-shaped workload: ring of pieces, primary + aliased ghosts.
struct Workload {
  RegionTreeForest forest;
  RegionHandle root;
  std::vector<RegionHandle> primary, ghost;

  explicit Workload(int pieces, coord_t piece_size = 64) {
    coord_t total = pieces * piece_size;
    root = forest.create_root(IntervalSet(0, total - 1), "A");
    std::vector<IntervalSet> p, g;
    for (int i = 0; i < pieces; ++i) {
      coord_t lo = i * piece_size;
      p.push_back(IntervalSet(lo, lo + piece_size - 1));
      coord_t left = (lo + total - 2) % total;
      coord_t right = (lo + piece_size) % total;
      g.push_back(IntervalSet{{left, left + 1}, {right, right + 1}});
    }
    PartitionHandle ph = forest.create_partition(root, std::move(p), "P");
    PartitionHandle gh = forest.create_partition(root, std::move(g), "G");
    for (int i = 0; i < pieces; ++i) {
      primary.push_back(forest.subregion(ph, static_cast<std::size_t>(i)));
      ghost.push_back(forest.subregion(gh, static_cast<std::size_t>(i)));
    }
  }
};

void run_iteration(CoherenceEngine& engine, const Workload& w,
                   LaunchID& next) {
  for (std::size_t i = 0; i < w.primary.size(); ++i) {
    AnalysisContext ctx{next++, static_cast<NodeID>(i % 4), 0};
    Requirement rw{w.primary[i], 0, Privilege::read_write()};
    Requirement red{w.ghost[i], 0, Privilege::reduce(kRedopSum)};
    auto r1 = engine.materialize(rw, ctx);
    engine.commit(rw, r1.data, ctx);
    auto r2 = engine.materialize(red, ctx);
    engine.commit(red, r2.data, ctx);
  }
}

template <typename Engine>
void drive(benchmark::State& state, Engine& engine, const Workload& w,
           const char* label) {
  engine.initialize_field(w.root, 0, RegionData<double>{}, 0);
  LaunchID next = 0;
  for (auto _ : state) {
    run_iteration(engine, w, next);
  }
  EngineStats s = engine.stats();
  state.counters["live_eqsets"] = static_cast<double>(s.live_eqsets);
  state.counters["created"] = static_cast<double>(s.total_eqsets_created);
  state.counters["hist"] = static_cast<double>(s.history_entries);
  state.counters["views"] = static_cast<double>(s.total_composite_views);
  (void)label;
}

EngineConfig config_for(const Workload& w) {
  EngineConfig config;
  config.forest = &w.forest;
  config.track_values = false;
  return config;
}

void BM_RayCast_DominatingWrites(benchmark::State& state) {
  Workload w(static_cast<int>(state.range(0)));
  RayCastEngine engine(config_for(w), RayCastEngine::Options{});
  drive(state, engine, w, "dominating writes ON");
}
BENCHMARK(BM_RayCast_DominatingWrites)->Arg(16)->Arg(64);

void BM_RayCast_NoDominatingWrites(benchmark::State& state) {
  // Ablation: without dominating writes, ray casting never coalesces and
  // behaves like Warnock — watch live_eqsets grow.
  Workload w(static_cast<int>(state.range(0)));
  RayCastEngine::Options options;
  options.dominating_writes = false;
  RayCastEngine engine(config_for(w), options);
  drive(state, engine, w, "dominating writes OFF");
}
BENCHMARK(BM_RayCast_NoDominatingWrites)->Arg(16)->Arg(64);

void BM_RayCast_KdFallback(benchmark::State& state) {
  // Ablation: force the K-d interval-tree fallback instead of the
  // partition-aligned buckets (Section 7.1's rare case).
  Workload w(static_cast<int>(state.range(0)));
  RayCastEngine::Options options;
  options.force_kd_fallback = true;
  RayCastEngine engine(config_for(w), options);
  drive(state, engine, w, "k-d fallback");
}
BENCHMARK(BM_RayCast_KdFallback)->Arg(16)->Arg(64);

void BM_Warnock_Memoized(benchmark::State& state) {
  Workload w(static_cast<int>(state.range(0)));
  WarnockEngine engine(config_for(w), WarnockEngine::Options{});
  drive(state, engine, w, "memoized");
}
BENCHMARK(BM_Warnock_Memoized)->Arg(16)->Arg(64);

void BM_Warnock_NoMemo(benchmark::State& state) {
  // Ablation: every lookup re-descends the refinement BVH from the root.
  Workload w(static_cast<int>(state.range(0)));
  WarnockEngine::Options options;
  options.memoize = false;
  WarnockEngine engine(config_for(w), options);
  drive(state, engine, w, "no memoization");
}
BENCHMARK(BM_Warnock_NoMemo)->Arg(16)->Arg(64);

void BM_Paint_OcclusionPruning(benchmark::State& state) {
  Workload w(static_cast<int>(state.range(0)));
  PaintEngine engine(config_for(w), PaintEngine::Options{});
  drive(state, engine, w, "occlusion pruning ON");
}
BENCHMARK(BM_Paint_OcclusionPruning)->Arg(16)->Arg(64);

void BM_Paint_NoOcclusionPruning(benchmark::State& state) {
  // Ablation: composite views are never deleted; histories only grow.
  Workload w(static_cast<int>(state.range(0)));
  PaintEngine::Options options;
  options.occlusion_pruning = false;
  PaintEngine engine(config_for(w), options);
  drive(state, engine, w, "occlusion pruning OFF");
}
BENCHMARK(BM_Paint_NoOcclusionPruning)->Arg(16)->Arg(64);

} // namespace
} // namespace visrt

// Custom main: --metrics-json must be stripped before google-benchmark
// sees the arguments (benchmark_main rejects unrecognized flags).
int main(int argc, char** argv) {
  std::string metrics = visrt::bench::take_metrics_json_arg(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  visrt::bench::write_envelope_only(metrics, "ablation_visibility");
  return 0;
}
