// Microbenchmarks of the coherence engines' core operations on synthetic
// histories: materialize cost per algorithm, BVH vs. linear equivalence-set
// lookup, memoization effect.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "metrics_common.h"
#include "geom/bvh.h"
#include "geom/interval_tree.h"
#include "realm/reduction_ops.h"
#include "visibility/engine.h"

namespace visrt {
namespace {

/// A paper-Figure-1-shaped program: primary + aliased ghost partitions.
struct Workload {
  RegionTreeForest forest;
  RegionHandle root;
  std::vector<RegionHandle> primary, ghost;

  explicit Workload(int pieces, coord_t piece_size = 64) {
    coord_t total = pieces * piece_size;
    root = forest.create_root(IntervalSet(0, total - 1), "A");
    std::vector<IntervalSet> p, g;
    for (int i = 0; i < pieces; ++i) {
      coord_t lo = i * piece_size;
      p.push_back(IntervalSet(lo, lo + piece_size - 1));
      // Ghosts: boundary cells of both neighbours (wrapping).
      coord_t left = (lo + total - 2) % total;
      coord_t right = (lo + piece_size) % total;
      g.push_back(IntervalSet{{left, left + 1}, {right, right + 1}});
    }
    PartitionHandle ph = forest.create_partition(root, std::move(p), "P");
    PartitionHandle gh = forest.create_partition(root, std::move(g), "G");
    for (int i = 0; i < pieces; ++i) {
      primary.push_back(forest.subregion(ph, static_cast<std::size_t>(i)));
      ghost.push_back(forest.subregion(gh, static_cast<std::size_t>(i)));
    }
  }
};

void run_iteration(CoherenceEngine& engine, const Workload& w,
                   LaunchID& next) {
  for (std::size_t i = 0; i < w.primary.size(); ++i) {
    AnalysisContext ctx{next++, static_cast<NodeID>(i % 4), 0};
    Requirement rw{w.primary[i], 0, Privilege::read_write()};
    Requirement red{w.ghost[i], 0, Privilege::reduce(kRedopSum)};
    auto r1 = engine.materialize(rw, ctx);
    engine.commit(rw, r1.data, ctx);
    auto r2 = engine.materialize(red, ctx);
    engine.commit(red, r2.data, ctx);
  }
}

void BM_EngineIteration(benchmark::State& state, Algorithm algorithm) {
  int pieces = static_cast<int>(state.range(0));
  Workload w(pieces);
  EngineConfig config;
  config.forest = &w.forest;
  config.track_values = false;
  auto engine = make_engine(algorithm, config);
  engine->initialize_field(w.root, 0, RegionData<double>{}, 0);
  LaunchID next = 0;
  for (auto _ : state) {
    run_iteration(*engine, w, next);
  }
  state.SetItemsProcessed(state.iterations() * pieces * 2);
}

BENCHMARK_CAPTURE(BM_EngineIteration, naive_paint, Algorithm::NaivePaint)
    ->Arg(8)
    ->Arg(32);
BENCHMARK_CAPTURE(BM_EngineIteration, paint, Algorithm::Paint)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128);
BENCHMARK_CAPTURE(BM_EngineIteration, warnock, Algorithm::Warnock)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128);
BENCHMARK_CAPTURE(BM_EngineIteration, raycast, Algorithm::RayCast)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128);

// BVH vs linear scan vs interval tree for eqset lookup ---------------------

void BM_LookupLinear(benchmark::State& state) {
  Rng rng(5);
  int n = static_cast<int>(state.range(0));
  std::vector<Interval> sets;
  for (int i = 0; i < n; ++i) {
    coord_t lo = static_cast<coord_t>(i) * 64;
    sets.push_back(Interval{lo, lo + 63});
  }
  for (auto _ : state) {
    coord_t lo = rng.range(0, n * 64 - 130);
    Interval q{lo, lo + 128};
    int hits = 0;
    for (const Interval& s : sets)
      if (s.overlaps(q)) ++hits;
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_LookupLinear)->Arg(64)->Arg(512)->Arg(4096);

void BM_LookupBvh(benchmark::State& state) {
  Rng rng(5);
  int n = static_cast<int>(state.range(0));
  std::vector<Bvh::Item> items;
  for (int i = 0; i < n; ++i) {
    coord_t lo = static_cast<coord_t>(i) * 64;
    items.push_back(Bvh::Item{{lo, lo + 63}, static_cast<std::uint64_t>(i)});
  }
  Bvh bvh(items);
  for (auto _ : state) {
    coord_t lo = rng.range(0, n * 64 - 130);
    benchmark::DoNotOptimize(bvh.query(Interval{lo, lo + 128}));
  }
}
BENCHMARK(BM_LookupBvh)->Arg(64)->Arg(512)->Arg(4096);

void BM_LookupIntervalTree(benchmark::State& state) {
  Rng rng(5);
  int n = static_cast<int>(state.range(0));
  IntervalTree tree;
  for (int i = 0; i < n; ++i) {
    coord_t lo = static_cast<coord_t>(i) * 64;
    tree.insert(Interval{lo, lo + 63}, static_cast<std::uint64_t>(i));
  }
  for (auto _ : state) {
    coord_t lo = rng.range(0, n * 64 - 130);
    benchmark::DoNotOptimize(tree.query(Interval{lo, lo + 128}));
  }
}
BENCHMARK(BM_LookupIntervalTree)->Arg(64)->Arg(512)->Arg(4096);

} // namespace
} // namespace visrt

// Custom main: --metrics-json must be stripped before google-benchmark
// sees the arguments (benchmark_main rejects unrecognized flags).
int main(int argc, char** argv) {
  std::string metrics = visrt::bench::take_metrics_json_arg(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  visrt::bench::write_envelope_only(metrics, "micro_visibility");
  return 0;
}
