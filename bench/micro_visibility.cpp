// Microbenchmarks of the coherence engines' core operations on synthetic
// histories: materialize cost per algorithm, BVH vs. linear equivalence-set
// lookup, memoization effect.
#include <benchmark/benchmark.h>

#include <chrono>

#include "common/executor.h"
#include "common/rng.h"
#include "metrics_common.h"
#include "wallclock_common.h"
#include "geom/bvh.h"
#include "geom/interval_tree.h"
#include "realm/reduction_ops.h"
#include "visibility/engine.h"

namespace visrt {
namespace {

/// Lanes for the *Parallel benchmark variants; set from --threads.
unsigned g_engine_threads = 1;

/// A paper-Figure-1-shaped program: primary + aliased ghost partitions.
struct Workload {
  RegionTreeForest forest;
  RegionHandle root;
  std::vector<RegionHandle> primary, ghost;

  explicit Workload(int pieces, coord_t piece_size = 64) {
    coord_t total = pieces * piece_size;
    root = forest.create_root(IntervalSet(0, total - 1), "A");
    std::vector<IntervalSet> p, g;
    for (int i = 0; i < pieces; ++i) {
      coord_t lo = i * piece_size;
      p.push_back(IntervalSet(lo, lo + piece_size - 1));
      // Ghosts: boundary cells of both neighbours (wrapping).
      coord_t left = (lo + total - 2) % total;
      coord_t right = (lo + piece_size) % total;
      g.push_back(IntervalSet{{left, left + 1}, {right, right + 1}});
    }
    PartitionHandle ph = forest.create_partition(root, std::move(p), "P");
    PartitionHandle gh = forest.create_partition(root, std::move(g), "G");
    for (int i = 0; i < pieces; ++i) {
      primary.push_back(forest.subregion(ph, static_cast<std::size_t>(i)));
      ghost.push_back(forest.subregion(gh, static_cast<std::size_t>(i)));
    }
  }
};

void run_iteration(CoherenceEngine& engine, const Workload& w,
                   LaunchID& next) {
  for (std::size_t i = 0; i < w.primary.size(); ++i) {
    AnalysisContext ctx{next++, static_cast<NodeID>(i % 4), 0};
    Requirement rw{w.primary[i], 0, Privilege::read_write()};
    Requirement red{w.ghost[i], 0, Privilege::reduce(kRedopSum)};
    auto r1 = engine.materialize(rw, ctx);
    engine.commit(rw, r1.data, ctx);
    auto r2 = engine.materialize(red, ctx);
    engine.commit(red, r2.data, ctx);
  }
}

void BM_EngineIteration(benchmark::State& state, Algorithm algorithm) {
  int pieces = static_cast<int>(state.range(0));
  Workload w(pieces);
  EngineConfig config;
  config.forest = &w.forest;
  config.track_values = false;
  auto engine = make_engine(algorithm, config);
  engine->initialize_field(w.root, 0, RegionData<double>{}, 0);
  LaunchID next = 0;
  for (auto _ : state) {
    run_iteration(*engine, w, next);
  }
  state.SetItemsProcessed(state.iterations() * pieces * 2);
}

BENCHMARK_CAPTURE(BM_EngineIteration, naive_paint, Algorithm::NaivePaint)
    ->Arg(8)
    ->Arg(32);
BENCHMARK_CAPTURE(BM_EngineIteration, paint, Algorithm::Paint)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128);
BENCHMARK_CAPTURE(BM_EngineIteration, warnock, Algorithm::Warnock)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128);
BENCHMARK_CAPTURE(BM_EngineIteration, raycast, Algorithm::RayCast)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128);

// Same iteration loop with the analysis executor attached: the engines
// shard their interference scans across g_engine_threads lanes
// (bit-identical results; see docs/PERFORMANCE.md).
void BM_EngineIterationParallel(benchmark::State& state,
                                Algorithm algorithm) {
  int pieces = static_cast<int>(state.range(0));
  Workload w(pieces);
  Executor ex(g_engine_threads);
  EngineConfig config;
  config.forest = &w.forest;
  config.track_values = false;
  if (ex.parallel()) config.executor = &ex;
  auto engine = make_engine(algorithm, config);
  engine->initialize_field(w.root, 0, RegionData<double>{}, 0);
  LaunchID next = 0;
  for (auto _ : state) {
    run_iteration(*engine, w, next);
  }
  state.SetItemsProcessed(state.iterations() * pieces * 2);
}

BENCHMARK_CAPTURE(BM_EngineIterationParallel, paint, Algorithm::Paint)
    ->Arg(128)
    ->Arg(512);
BENCHMARK_CAPTURE(BM_EngineIterationParallel, warnock, Algorithm::Warnock)
    ->Arg(128)
    ->Arg(512);
BENCHMARK_CAPTURE(BM_EngineIterationParallel, raycast, Algorithm::RayCast)
    ->Arg(128)
    ->Arg(512);

// --wall-clock mode: bypass google-benchmark and time the engine
// iteration loop directly, appending a BENCH_analysis.json entry so the
// micro numbers land next to the figure-bench ones.
int run_wall_clock_micro(const bench::WallClockOptions& wc) {
  struct Sys {
    const char* label;
    Algorithm algorithm;
  };
  const Sys systems[] = {
      {"naive_paint", Algorithm::NaivePaint},
      {"paint", Algorithm::Paint},
      {"warnock", Algorithm::Warnock},
      {"raycast", Algorithm::RayCast},
  };
  constexpr int kIters = 10;
  std::printf("# micro_visibility --wall-clock: engine-iteration seconds, "
              "threads=%u\n", wc.threads);
  std::printf("system\tpieces\tthreads\tanalysis_wall_s\n");
  std::ostringstream runs;
  bool first = true;
  for (const Sys& sys : systems) {
    for (std::uint32_t pieces : wc.nodes) {
      Workload w(static_cast<int>(pieces));
      Executor ex(wc.threads);
      EngineConfig config;
      config.forest = &w.forest;
      config.track_values = false;
      if (ex.parallel()) config.executor = &ex;
      auto engine = make_engine(sys.algorithm, config);
      engine->initialize_field(w.root, 0, RegionData<double>{}, 0);
      LaunchID next = 0;
      run_iteration(*engine, w, next); // warm-up: first-touch refinements
      auto start = std::chrono::steady_clock::now();
      for (int it = 0; it < kIters; ++it) run_iteration(*engine, w, next);
      double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      std::printf("%s\t%u\t%u\t%.6f\n", sys.label, pieces, wc.threads,
                  seconds);
      if (!first) runs << ",\n    ";
      first = false;
      runs << "{\"system\":\"" << sys.label << "\",\"nodes\":" << pieces
           << ",\"analysis_wall_s\":" << bench::wall_clock_number(seconds)
           << ",\"launches\":" << (kIters * pieces * 2) << "}";
    }
  }
  std::ostringstream entry;
  entry << " {\"bench\":\"micro_visibility\",\"app\":\"synthetic\","
        << "\"threads\":" << wc.threads << ",\n  \"runs\":[\n    "
        << runs.str() << "]}";
  if (!bench::append_bench_entry(wc.out_path, entry.str())) {
    std::fprintf(stderr, "error: could not write %s\n", wc.out_path.c_str());
    return 1;
  }
  std::printf("# appended entry to %s\n", wc.out_path.c_str());
  return 0;
}

// BVH vs linear scan vs interval tree for eqset lookup ---------------------

void BM_LookupLinear(benchmark::State& state) {
  Rng rng(5);
  int n = static_cast<int>(state.range(0));
  std::vector<Interval> sets;
  for (int i = 0; i < n; ++i) {
    coord_t lo = static_cast<coord_t>(i) * 64;
    sets.push_back(Interval{lo, lo + 63});
  }
  for (auto _ : state) {
    coord_t lo = rng.range(0, n * 64 - 130);
    Interval q{lo, lo + 128};
    int hits = 0;
    for (const Interval& s : sets)
      if (s.overlaps(q)) ++hits;
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_LookupLinear)->Arg(64)->Arg(512)->Arg(4096);

void BM_LookupBvh(benchmark::State& state) {
  Rng rng(5);
  int n = static_cast<int>(state.range(0));
  std::vector<Bvh::Item> items;
  for (int i = 0; i < n; ++i) {
    coord_t lo = static_cast<coord_t>(i) * 64;
    items.push_back(Bvh::Item{{lo, lo + 63}, static_cast<std::uint64_t>(i)});
  }
  Bvh bvh(items);
  for (auto _ : state) {
    coord_t lo = rng.range(0, n * 64 - 130);
    benchmark::DoNotOptimize(bvh.query(Interval{lo, lo + 128}));
  }
}
BENCHMARK(BM_LookupBvh)->Arg(64)->Arg(512)->Arg(4096);

void BM_LookupIntervalTree(benchmark::State& state) {
  Rng rng(5);
  int n = static_cast<int>(state.range(0));
  IntervalTree tree;
  for (int i = 0; i < n; ++i) {
    coord_t lo = static_cast<coord_t>(i) * 64;
    tree.insert(Interval{lo, lo + 63}, static_cast<std::uint64_t>(i));
  }
  for (auto _ : state) {
    coord_t lo = rng.range(0, n * 64 - 130);
    benchmark::DoNotOptimize(tree.query(Interval{lo, lo + 128}));
  }
}
BENCHMARK(BM_LookupIntervalTree)->Arg(64)->Arg(512)->Arg(4096);

} // namespace
} // namespace visrt

// Custom main: --metrics-json and the wall-clock flags must be stripped
// before google-benchmark sees the arguments (benchmark_main rejects
// unrecognized flags).
int main(int argc, char** argv) {
  visrt::bench::WallClockOptions wc =
      visrt::bench::take_wall_clock_args(argc, argv);
  std::string metrics = visrt::bench::take_metrics_json_arg(argc, argv);
  visrt::g_engine_threads = wc.threads;
  if (wc.enabled) return visrt::run_wall_clock_micro(wc);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  visrt::bench::write_envelope_only(metrics, "micro_visibility");
  return 0;
}
