// Figure 17: Pennant weak scaling (weak scaling).
#include "app_benches.h"

int main(int argc, char** argv) {
  using namespace visrt::bench;
  std::string metrics = take_metrics_json_arg(argc, argv);
  bool telemetry = !metrics.empty();
  FigureSpec spec{"Figure 17", "Pennant weak scaling", "zones/s", true};
  run_figure(
      spec,
      [telemetry](const SystemConfig& sys, std::uint32_t nodes) {
        return run_pennant(sys, nodes, 5, telemetry);
      },
      metrics, "fig17_pennant_weak");
  return 0;
}
