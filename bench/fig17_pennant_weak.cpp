// Figure 17: Pennant weak scaling (weak scaling).
#include "app_benches.h"

int main() {
  using namespace visrt::bench;
  FigureSpec spec{"Figure 17", "Pennant weak scaling", "zones/s", true};
  run_figure(spec, [](const SystemConfig& sys, std::uint32_t nodes) {
    return run_pennant(sys, nodes);
  });
  return 0;
}
