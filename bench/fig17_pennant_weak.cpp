// Figure 17: Pennant weak scaling (weak scaling).
#include "app_benches.h"
#include "wallclock_common.h"

int main(int argc, char** argv) {
  using namespace visrt::bench;
  WallClockOptions wc = take_wall_clock_args(argc, argv);
  std::string metrics = take_metrics_json_arg(argc, argv);
  bool telemetry = !metrics.empty();
  auto runner = [telemetry, &wc](const SystemConfig& sys,
                                 std::uint32_t nodes) {
    return run_pennant(sys, nodes, 5, telemetry, wc.threads,
                      wall_clock_profiling(wc));
  };
  if (wc.enabled)
    return run_wall_clock("fig17_pennant_weak", "pennant", wc, runner);
  FigureSpec spec{"Figure 17", "Pennant weak scaling", "zones/s", true};
  run_figure(spec, runner, metrics, "fig17_pennant_weak");
  return 0;
}
