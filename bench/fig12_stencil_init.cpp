// Figure 12: Stencil initialization time (init time).
#include "app_benches.h"

int main() {
  using namespace visrt::bench;
  FigureSpec spec{"Figure 12", "Stencil initialization time", "points/s", false};
  run_figure(spec, [](const SystemConfig& sys, std::uint32_t nodes) {
    return run_stencil(sys, nodes);
  });
  return 0;
}
