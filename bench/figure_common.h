// Shared driver for the paper-figure benchmarks (Figures 12-17).
//
// Each figure bench sweeps node counts 1..512 over the five systems of the
// paper's evaluation:
//     RayCast DCR / RayCast No DCR / Warnock DCR / Warnock No DCR /
//     Paint No DCR   (the painter predates DCR, as in the paper)
// and prints
//   (a) the artifact's parse_results.py TSV
//       (system nodes procs_per_node rep init_time elapsed_time), and
//   (b) the figure's series: init-time seconds (Figures 12-14) or
//       weak-scaling throughput per node (Figures 15-17).
//
// The simulator is deterministic, so all five repetitions of the artifact
// format are identical by construction; they are printed anyway to stay
// drop-in compatible with the paper's spreadsheet pipeline.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "metrics_common.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"

namespace visrt::bench {

struct SystemConfig {
  const char* label;        ///< paper-artifact system name
  const char* figure_label; ///< legend label used in the figures
  Algorithm algorithm;
  bool dcr;
};

inline const std::vector<SystemConfig>& paper_systems() {
  static const std::vector<SystemConfig> systems = {
      {"neweqcr_dcr", "RayCast, DCR", Algorithm::RayCast, true},
      {"neweqcr_nodcr", "RayCast, No DCR", Algorithm::RayCast, false},
      {"oldeqcr_dcr", "Warnock, DCR", Algorithm::Warnock, true},
      {"oldeqcr_nodcr", "Warnock, No DCR", Algorithm::Warnock, false},
      {"paint_nodcr", "Paint, No DCR", Algorithm::Paint, false},
  };
  return systems;
}

inline std::vector<std::uint32_t> paper_node_counts() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
}

struct RunResult {
  RunStats stats;
  double work_per_node_per_iter = 0; ///< app-specific throughput unit
  /// Serialized metrics run object (metrics_run_json); collected into the
  /// --metrics-json file when one was requested.
  std::string metrics_json;
  /// Serialized profile report (Runtime::profile_json); collected into the
  /// --profile-out file when one was requested.  Empty otherwise.
  std::string profile_json;
};

/// Runs one (system, nodes) configuration: the callback constructs the
/// runtime (via bench_runtime_config, typically adjusting the leaf-task
/// cost model to the app's kernel weight), builds and runs the app, and
/// reports the throughput unit.
using ConfigRunner = std::function<RunResult(const SystemConfig& sys,
                                             std::uint32_t nodes)>;

struct FigureSpec {
  std::string figure;     ///< e.g. "Figure 12"
  std::string title;      ///< e.g. "Stencil initialization time"
  std::string unit;       ///< throughput unit name, e.g. "points/s"
  bool weak_scaling;      ///< false: init-time figure; true: throughput
};

inline RuntimeConfig bench_runtime_config(const SystemConfig& sys,
                                          std::uint32_t nodes,
                                          bool telemetry = false,
                                          unsigned analysis_threads = 1) {
  RuntimeConfig cfg;
  cfg.algorithm = sys.algorithm;
  cfg.dcr = sys.dcr;
  cfg.track_values = false; // analysis-only: the figures measure overhead
  cfg.telemetry = telemetry;
  cfg.machine.num_nodes = nodes;
  cfg.analysis_threads = analysis_threads;
  return cfg;
}

/// Serialize one finished bench run; call before the Runtime goes away.
inline std::string bench_metrics_json(const SystemConfig& sys,
                                      std::uint32_t nodes, const char* app,
                                      const Runtime& rt,
                                      const RunStats& stats) {
  MetricsRunInfo info;
  info.name = std::string(sys.label) + "/" + std::to_string(nodes);
  info.app = app;
  info.algorithm = algorithm_name(sys.algorithm);
  info.dcr = sys.dcr;
  info.nodes = nodes;
  return metrics_run_json(info, rt, stats);
}

inline void run_figure(const FigureSpec& spec, const ConfigRunner& runner,
                       const std::string& metrics_path = "",
                       const char* binary = "") {
  MetricsFile metrics(binary);
  std::printf("# %s: %s\n", spec.figure.c_str(), spec.title.c_str());
  std::printf("# deterministic simulator: the 5 artifact reps are "
              "identical by construction\n");
  std::printf("system\tnodes\tprocs_per_node\trep\tinit_time\t"
              "elapsed_time\n");

  struct Series {
    const SystemConfig* sys;
    std::vector<double> values; // per node count
  };
  std::vector<Series> series;
  for (const SystemConfig& sys : paper_systems())
    series.push_back(Series{&sys, {}});

  std::vector<std::uint32_t> nodes_list = paper_node_counts();
  for (std::size_t s = 0; s < series.size(); ++s) {
    const SystemConfig& sys = *series[s].sys;
    for (std::uint32_t nodes : nodes_list) {
      RunResult result = runner(sys, nodes);
      if (!metrics_path.empty() && !result.metrics_json.empty())
        metrics.add_run(std::move(result.metrics_json));
      const RunStats& st = result.stats;
      for (int rep = 0; rep < 5; ++rep) {
        std::printf("%s\t%u\t1\t%d\t%.6f\t%.6f\n", sys.label, nodes, rep,
                    st.init_time_s, st.total_time_s);
      }
      double value = spec.weak_scaling
                         ? (st.steady_iter_s > 0
                                ? result.work_per_node_per_iter /
                                      st.steady_iter_s
                                : 0.0)
                         : st.init_time_s;
      series[s].values.push_back(value);
    }
  }

  // Figure series block.
  std::printf("\n# %s series (%s)\n", spec.figure.c_str(),
              spec.weak_scaling
                  ? (spec.unit + " per node, higher is better").c_str()
                  : "initialization seconds, lower is better");
  std::printf("%-18s", "nodes");
  for (std::uint32_t n : nodes_list) std::printf("%12u", n);
  std::printf("\n");
  for (const Series& s : series) {
    std::printf("%-18s", s.sys->figure_label);
    for (double v : s.values) std::printf("%12.4g", v);
    std::printf("\n");
  }
  std::printf("\n");
  metrics.write(metrics_path);
}

} // namespace visrt::bench
