// App-specific benchmark configurations shared by the figure benches
// (Figures 12-17) and the ablation benches.  Weak scaling: one piece per
// node, per-piece problem size fixed; the leaf-task cost model is tuned so
// a piece's kernel costs ~2 ms of simulated time, the regime where the
// paper's analysis-overhead crossovers appear on realistic node counts.
#pragma once

#include "apps/circuit.h"
#include "apps/pennant.h"
#include "apps/stencil.h"
#include "figure_common.h"

namespace visrt::bench {

inline RunResult run_stencil(const SystemConfig& sys, std::uint32_t nodes,
                             int iterations = 5, bool telemetry = false,
                             unsigned analysis_threads = 1,
                             bool profile = false) {
  RuntimeConfig rcfg =
      bench_runtime_config(sys, nodes, telemetry, analysis_threads);
  rcfg.profile = profile;
  apps::StencilConfig cfg;
  // Near-square 2-D piece grid (node counts are powers of two).
  std::uint32_t px = 1;
  while (px * px < nodes) px *= 2;
  cfg.pieces_x = px;
  cfg.pieces_y = nodes / px;
  cfg.tile_rows = 128;
  cfg.tile_cols = 128;
  cfg.iterations = iterations;
  // ~16k points per piece; 125 ns/point ~ 2 ms kernels.
  rcfg.costs.task_element_ns = 125;
  Runtime rt(rcfg);
  apps::StencilApp app(rt, cfg);
  app.run();
  RunResult out;
  out.stats = rt.finish();
  out.work_per_node_per_iter =
      static_cast<double>(app.points_per_piece());
  out.metrics_json = bench_metrics_json(sys, nodes, "stencil", rt, out.stats);
  if (profile) out.profile_json = rt.profile_json();
  return out;
}

inline RunResult run_circuit(const SystemConfig& sys, std::uint32_t nodes,
                             int iterations = 5, bool telemetry = false,
                             unsigned analysis_threads = 1,
                             bool profile = false) {
  RuntimeConfig rcfg =
      bench_runtime_config(sys, nodes, telemetry, analysis_threads);
  rcfg.profile = profile;
  apps::CircuitConfig cfg;
  cfg.pieces = nodes;
  cfg.nodes_per_piece = 200;
  cfg.wires_per_piece = 300;
  cfg.cross_fraction = 0.15;
  cfg.iterations = iterations;
  // 300 wires per piece; 6 us/wire ~ 1.8 ms kernels.
  rcfg.costs.task_element_ns = 6000;
  Runtime rt(rcfg);
  apps::CircuitApp app(rt, cfg);
  app.run();
  RunResult out;
  out.stats = rt.finish();
  out.work_per_node_per_iter = static_cast<double>(app.wires_per_piece());
  out.metrics_json = bench_metrics_json(sys, nodes, "circuit", rt, out.stats);
  if (profile) out.profile_json = rt.profile_json();
  return out;
}

inline RunResult run_pennant(const SystemConfig& sys, std::uint32_t nodes,
                             int iterations = 5, bool telemetry = false,
                             unsigned analysis_threads = 1,
                             bool profile = false) {
  RuntimeConfig rcfg =
      bench_runtime_config(sys, nodes, telemetry, analysis_threads);
  rcfg.profile = profile;
  apps::PennantConfig cfg;
  // Pieces in a near-square 2-D grid covering `nodes` pieces.
  std::uint32_t px = 1;
  while (px * px < nodes) px *= 2;
  std::uint32_t py = nodes / px;
  if (px * py < nodes) py = nodes; // fall back to a strip
  if (px * py != nodes) {
    px = nodes;
    py = 1;
  }
  cfg.pieces_x = px;
  cfg.pieces_y = py;
  cfg.zones_per_piece_x = 32;
  cfg.zones_per_piece_y = 32;
  cfg.iterations = iterations;
  // 1024 zones per piece; 2 us/zone ~ 2 ms kernels.
  rcfg.costs.task_element_ns = 2000;
  Runtime rt(rcfg);
  apps::PennantApp app(rt, cfg);
  app.run();
  RunResult out;
  out.stats = rt.finish();
  out.work_per_node_per_iter = static_cast<double>(app.zones_per_piece());
  out.metrics_json = bench_metrics_json(sys, nodes, "pennant", rt, out.stats);
  if (profile) out.profile_json = rt.profile_json();
  return out;
}

} // namespace visrt::bench
