// Wall-clock benchmark mode for the figure and micro benches:
//   --wall-clock [--threads N] [--nodes A,B,...] [--bench-out PATH]
// Instead of the simulated-time figure sweep, run each paper system at the
// requested node counts with RuntimeConfig::analysis_threads = N and
// report real seconds spent inside the analysis sections
// (RunStats::analysis_wall_s).  Results append to BENCH_analysis.json at
// the working directory root (schema v1; see docs/PERFORMANCE.md):
//
//   {"schema_version":1,
//    "entries":[{"bench":"fig13_circuit_init","app":"circuit","threads":8,
//                "runs":[{"system":"neweqcr_dcr","nodes":256,
//                         "analysis_wall_s":...,"analysis_cpu_s":...,
//                         "launches":...,"dep_edges":...,"messages":...,
//                         "init_time_s":...,"total_time_s":...}, ...]},
//               ...]}
//
// Each invocation appends one entry, so a threads-1 run followed by a
// threads-8 run of the same bench lands in one file for the speedup
// comparison.  The flags are stripped from argv before any other parsing
// so they compose with --metrics-json and google-benchmark's own flags.
#pragma once

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "figure_common.h"

namespace visrt::bench {

struct WallClockOptions {
  bool enabled = false;
  unsigned threads = 1;
  /// Simulated node counts to sweep; defaults to {256}, the size the
  /// speedup acceptance runs at.
  std::vector<std::uint32_t> nodes;
  std::string out_path = "BENCH_analysis.json";
  /// When nonempty, run with the analysis profiler on and write every
  /// run's schema-v1 profile report (phase attribution, serial fraction,
  /// lock contention; docs/OBSERVABILITY.md) to this file.
  std::string profile_out;
};

/// True when this sweep should run with RuntimeConfig::profile set.
inline bool wall_clock_profiling(const WallClockOptions& opts) {
  return !opts.profile_out.empty();
}

/// Remove the wall-clock flags from argv (compacting it, like
/// take_metrics_json_arg) and return the parsed options.
inline WallClockOptions take_wall_clock_args(int& argc, char** argv) {
  WallClockOptions opts;
  auto parse_nodes = [&opts](const char* list) {
    opts.nodes.clear();
    std::uint32_t value = 0;
    bool have_digit = false;
    for (const char* p = list;; ++p) {
      if (*p >= '0' && *p <= '9') {
        value = value * 10 + static_cast<std::uint32_t>(*p - '0');
        have_digit = true;
      } else {
        if (have_digit) opts.nodes.push_back(value);
        value = 0;
        have_digit = false;
        if (*p == '\0') break;
      }
    }
  };
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--wall-clock") == 0) {
      opts.enabled = true;
      continue;
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      opts.threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
      continue;
    }
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      opts.threads = static_cast<unsigned>(std::atoi(argv[++i]));
      continue;
    }
    if (std::strncmp(argv[i], "--nodes=", 8) == 0) {
      parse_nodes(argv[i] + 8);
      continue;
    }
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      parse_nodes(argv[++i]);
      continue;
    }
    if (std::strncmp(argv[i], "--bench-out=", 12) == 0) {
      opts.out_path = argv[i] + 12;
      continue;
    }
    if (std::strcmp(argv[i], "--bench-out") == 0 && i + 1 < argc) {
      opts.out_path = argv[++i];
      continue;
    }
    if (std::strncmp(argv[i], "--profile-out=", 14) == 0) {
      opts.profile_out = argv[i] + 14;
      continue;
    }
    if (std::strcmp(argv[i], "--profile-out") == 0 && i + 1 < argc) {
      opts.profile_out = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  argv[argc] = nullptr;
  if (opts.threads < 1) opts.threads = 1;
  if (opts.nodes.empty()) opts.nodes.push_back(256);
  return opts;
}

inline std::string wall_clock_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// Append one entry to the BENCH_analysis.json file, creating it (with the
/// schema envelope) when absent.  Existing files are extended textually:
/// the envelope always ends with "]}" and entries are never empty, so the
/// append splices ",<entry>" before the closing brackets.  A file that
/// does not look like a schema-v1 envelope is overwritten.
inline bool append_bench_entry(const std::string& path,
                               const std::string& entry) {
  std::string existing;
  {
    std::ifstream in(path);
    if (in)
      existing.assign(std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>());
  }
  static const char kHead[] = "{\"schema_version\":1,\"entries\":[";
  std::string doc;
  std::size_t end = existing.find_last_not_of(" \t\r\n");
  if (end != std::string::npos && end >= 1 && existing[end] == '}' &&
      existing[end - 1] == ']' && existing.rfind(kHead, 0) == 0) {
    doc = existing.substr(0, end - 1) + ",\n" + entry + "]}\n";
  } else {
    doc = std::string(kHead) + "\n" + entry + "]}\n";
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << doc;
  return out.good();
}

/// The wall-clock sweep: every paper system at every requested node count,
/// one measured run each (the analysis is deterministic; host timing noise
/// is what it is).  The runner must construct its RuntimeConfig with
/// analysis_threads = opts.threads (the figure mains capture it).
inline int run_wall_clock(const char* bench, const char* app,
                          const WallClockOptions& opts,
                          const ConfigRunner& runner) {
  std::printf("# %s --wall-clock: real analysis seconds, threads=%u\n",
              bench, opts.threads);
  std::printf("system\tnodes\tthreads\tanalysis_wall_s\tanalysis_cpu_s\t"
              "launches\tdep_edges\n");
  std::ostringstream runs;
  std::ostringstream profiles;
  bool first = true;
  double total_wall = 0;
  for (const SystemConfig& sys : paper_systems()) {
    for (std::uint32_t nodes : opts.nodes) {
      RunResult result = runner(sys, nodes);
      if (wall_clock_profiling(opts) && !result.profile_json.empty()) {
        if (!first) profiles << ",\n  ";
        profiles << "{\"system\":\"" << sys.label
                 << "\",\"nodes\":" << nodes
                 << ",\"profile\":" << result.profile_json << "}";
      }
      const RunStats& st = result.stats;
      std::printf("%s\t%u\t%u\t%.6f\t%.6f\t%zu\t%zu\n", sys.label, nodes,
                  opts.threads, st.analysis_wall_s, st.analysis_cpu_s,
                  st.launches, st.dep_edges);
      total_wall += st.analysis_wall_s;
      if (!first) runs << ",\n    ";
      first = false;
      runs << "{\"system\":\"" << sys.label << "\",\"nodes\":" << nodes
           << ",\"analysis_wall_s\":" << wall_clock_number(st.analysis_wall_s)
           << ",\"analysis_cpu_s\":" << wall_clock_number(st.analysis_cpu_s)
           << ",\"launches\":" << st.launches
           << ",\"dep_edges\":" << st.dep_edges
           << ",\"messages\":" << st.messages
           << ",\"init_time_s\":" << wall_clock_number(st.init_time_s)
           << ",\"total_time_s\":" << wall_clock_number(st.total_time_s)
           << "}";
    }
  }
  std::printf("# total analysis_wall_s across systems: %.6f\n", total_wall);
  std::ostringstream entry;
  entry << " {\"bench\":\"" << bench << "\",\"app\":\"" << app
        << "\",\"threads\":" << opts.threads << ",\n  \"runs\":[\n    "
        << runs.str() << "]}";
  if (!append_bench_entry(opts.out_path, entry.str())) {
    std::fprintf(stderr, "error: could not write %s\n",
                 opts.out_path.c_str());
    return 1;
  }
  std::printf("# appended entry to %s\n", opts.out_path.c_str());
  if (wall_clock_profiling(opts)) {
    std::ofstream prof(opts.profile_out, std::ios::trunc);
    prof << "{\"schema_version\":1,\"bench\":\"" << bench
         << "\",\"threads\":" << opts.threads << ",\n \"runs\":[\n  "
         << profiles.str() << "]}\n";
    if (prof.good())
      std::printf("# profile reports written to %s\n",
                  opts.profile_out.c_str());
    else
      std::fprintf(stderr, "error: could not write %s\n",
                   opts.profile_out.c_str());
  }
  return 0;
}

} // namespace visrt::bench
