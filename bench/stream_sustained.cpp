// stream_sustained: the streaming-service endurance bench.
//
// Drives a multi-million-launch `.visprog` stream — the paper's Figure 5
// shape (aliased ghost exchanges over two fields) scaled out to many
// pieces and unbounded iterations — through serve::StreamSession with
// epoch retirement and composite-view history collapsing on, and reports
// the sustained ingest rate and the residency plateau:
//
//   stream_sustained [--launches N] [--pieces N] [--threads N]
//                    [--retire-interval N] [--max-resident-launches N]
//                    [--max-history-depth N] [--values]
//                    [--bench-out PATH] [--metrics-json PATH]
//
// Statements are synthesized on the fly (the stream text is never
// materialized), so the only O(stream) state is whatever the session
// fails to retire — the point of the bench.  The run aborts nonzero if
// residency exceeds the configured cap plus the analysis tail, i.e. if
// memory is not actually bounded.
//
// Appends one schema-v1 entry to BENCH_analysis.json (system
// "serve_stream"), with launches_per_s and peak_resident_launches
// alongside the standard analysis_wall_s.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "metrics_common.h"
#include "serve/session.h"
#include "wallclock_common.h"

using namespace visrt;

namespace {

struct Options {
  std::size_t launches = 1u << 20; // 1,048,576
  std::size_t pieces = 64;
  unsigned threads = 1;
  std::size_t retire_interval = 1024;
  std::size_t max_resident_launches = 8192;
  std::size_t max_history_depth = 64;
  bool values = false; // analysis-only by default: the service-rate metric
  std::string bench_out = "BENCH_analysis.json";
};

/// The figure-5 stream prologue at `pieces` primary pieces: tree of
/// 10*pieces cells, a disjoint primary partition, an aliased ghost
/// partition (each ghost straddles its neighbours' edge cells), two
/// fields exchanged in alternating directions.
std::string prologue(const Options& opt) {
  std::ostringstream os;
  const std::size_t cells = 10 * opt.pieces;
  os << "visprog 1\n"
     << "config nodes=4 dcr=0 tracing=0 subject=raycast\n"
     << "tuning occlusion=1 memoize=1 domwrites=1 kdfallback=0 paintbug=0\n"
     << "tree A " << cells << "\n";
  os << "partition P parent=0";
  for (std::size_t p = 0; p < opt.pieces; ++p)
    os << " [" << 10 * p << "," << 10 * p + 9 << "]";
  os << "\n";
  os << "partition G parent=0";
  for (std::size_t p = 0; p < opt.pieces; ++p) {
    if (p == 0) {
      os << " [10,11]";
    } else if (p + 1 == opt.pieces) {
      os << " [" << 10 * p - 2 << "," << 10 * p - 1 << "]";
    } else {
      os << " [" << 10 * p - 2 << "," << 10 * p - 1 << "]+[" << 10 * (p + 1)
         << "," << 10 * (p + 1) + 1 << "]";
    }
  }
  os << "\n";
  os << "field up tree=0 mod=11\n"
     << "field down tree=0 mod=11\n";
  return os.str();
}

int usage() {
  std::fprintf(stderr,
               "usage: stream_sustained [--launches N] [--pieces N] "
               "[--threads N] [--retire-interval N] "
               "[--max-resident-launches N] [--max-history-depth N] "
               "[--values] [--bench-out PATH] [--metrics-json PATH]\n");
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  std::string metrics_path = bench::take_metrics_json_arg(argc, argv);
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> long {
      return i + 1 < argc ? std::atol(argv[++i]) : 0;
    };
    if (arg == "--launches") opt.launches = static_cast<std::size_t>(next());
    else if (arg == "--pieces") opt.pieces = static_cast<std::size_t>(next());
    else if (arg == "--threads") opt.threads = static_cast<unsigned>(next());
    else if (arg == "--retire-interval")
      opt.retire_interval = static_cast<std::size_t>(next());
    else if (arg == "--max-resident-launches")
      opt.max_resident_launches = static_cast<std::size_t>(next());
    else if (arg == "--max-history-depth")
      opt.max_history_depth = static_cast<std::size_t>(next());
    else if (arg == "--values") opt.values = true;
    else if (arg == "--bench-out" && i + 1 < argc) opt.bench_out = argv[++i];
    else return usage();
  }
  if (opt.pieces < 3) opt.pieces = 3; // the ghost shape needs neighbours

  serve::SessionOptions so;
  so.retire_every = opt.retire_interval;
  so.max_resident_launches = opt.max_resident_launches;
  so.max_history_depth = opt.max_history_depth;
  so.track_values = opt.values;
  so.analysis_threads = opt.threads;
  so.on_error = [](const std::string& e) {
    std::fprintf(stderr, "stream_sustained: statement rejected: %s\n",
                 e.c_str());
    std::exit(1);
  };
  serve::StreamSession session(so);

  std::printf("# stream_sustained: %zu launches, %zu pieces, threads=%u, "
              "retire=%zu cap=%zu depth=%zu values=%d\n",
              opt.launches, opt.pieces, opt.threads, opt.retire_interval,
              opt.max_resident_launches, opt.max_history_depth,
              opt.values ? 1 : 0);

  auto start = std::chrono::steady_clock::now();
  session.feed(prologue(opt));

  // Alternating ghost exchanges; every `pieces` launches one iteration
  // marker, exactly the paper's outer-loop shape.  Statements are
  // regenerated each round so the resident stream text is one line.
  std::size_t ingested = 0;
  std::uint64_t salt = 0;
  std::string line;
  while (ingested < opt.launches) {
    const bool up = (salt % 2) == 0;
    line = "index salt=" + std::to_string(salt) +
           (up ? " p0 f0 rw | p1 f1 red:sum\n" : " p0 f1 rw | p1 f0 red:sum\n");
    session.feed(line);
    ingested += opt.pieces;
    ++salt;
    if (salt % 2 == 0) session.feed("end_iteration\n");
  }
  session.finish();
  double wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();

  const serve::SessionCounters& c = session.counters();
  const serve::SessionResult& r = session.result();
  const double rate = wall > 0 ? static_cast<double>(c.launches) / wall : 0;
  // Per-launch analysis latency percentiles from the session's always-on
  // histogram (the telemetry the serve daemon exports via @metrics).
  const obs::HistogramSnapshot lat = session.latency().launch_analysis.snapshot();
  const std::uint64_t p50 = lat.quantile(0.50);
  const std::uint64_t p99 = lat.quantile(0.99);
  const std::uint64_t p999 = lat.quantile(0.999);
  std::printf("launches\twall_s\tlaunches_per_s\tpeak_resident\tretired\t"
              "dep_edges\tp50_ns\tp99_ns\tp999_ns\n");
  std::printf("%llu\t%.3f\t%.0f\t%llu\t%llu\t%zu\t%llu\t%llu\t%llu\n",
              static_cast<unsigned long long>(c.launches), wall, rate,
              static_cast<unsigned long long>(c.peak_resident_launches),
              static_cast<unsigned long long>(c.retired_launches), r.dep_edges,
              static_cast<unsigned long long>(p50),
              static_cast<unsigned long long>(p99),
              static_cast<unsigned long long>(p999));

  // The bounded-memory acceptance: the plateau is the cap plus the
  // analysis-dependent tail the cut cannot cross yet (at most one retire
  // interval plus one iteration of launches, with generous slack for the
  // engine watermark lag).
  if (opt.max_resident_launches != 0) {
    const std::uint64_t bound = opt.max_resident_launches +
                                4 * (opt.retire_interval + opt.pieces) + 64;
    if (c.peak_resident_launches > bound) {
      std::fprintf(stderr,
                   "stream_sustained: residency NOT bounded: peak %llu > "
                   "allowed %llu\n",
                   static_cast<unsigned long long>(c.peak_resident_launches),
                   static_cast<unsigned long long>(bound));
      return 1;
    }
  }

  std::ostringstream entry;
  entry << "{\"bench\":\"stream_sustained\",\"app\":\"synthetic\","
        << "\"threads\":" << opt.threads << ",\"runs\":[{"
        << "\"system\":\"serve_stream\",\"nodes\":4,"
        << "\"analysis_wall_s\":" << obs::json_number(wall)
        << ",\"launches\":" << c.launches
        << ",\"dep_edges\":" << r.dep_edges
        << ",\"launches_per_s\":" << obs::json_number(rate)
        << ",\"peak_resident_launches\":" << c.peak_resident_launches
        << ",\"peak_resident_ops\":" << c.peak_resident_ops
        << ",\"retired_launches\":" << c.retired_launches
        << ",\"retire_calls\":" << c.retire_calls
        << ",\"eqset_slots_reclaimed\":" << c.eqset_slots_reclaimed
        << ",\"launch_p50_ns\":" << p50 << ",\"launch_p99_ns\":" << p99
        << ",\"launch_p999_ns\":" << p999 << "}]}";
  if (!bench::append_bench_entry(opt.bench_out, entry.str())) {
    std::fprintf(stderr, "error: could not write %s\n", opt.bench_out.c_str());
    return 1;
  }
  std::printf("# appended entry to %s\n", opt.bench_out.c_str());
  bench::write_envelope_only(metrics_path, "stream_sustained");
  return 0;
}
