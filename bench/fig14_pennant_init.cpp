// Figure 14: Pennant initialization time (init time).
#include "app_benches.h"

int main() {
  using namespace visrt::bench;
  FigureSpec spec{"Figure 14", "Pennant initialization time", "zones/s", false};
  run_figure(spec, [](const SystemConfig& sys, std::uint32_t nodes) {
    return run_pennant(sys, nodes);
  });
  return 0;
}
