// Figure 14: Pennant initialization time (init time).
#include "app_benches.h"

int main(int argc, char** argv) {
  using namespace visrt::bench;
  std::string metrics = take_metrics_json_arg(argc, argv);
  bool telemetry = !metrics.empty();
  FigureSpec spec{"Figure 14", "Pennant initialization time", "zones/s", false};
  run_figure(
      spec,
      [telemetry](const SystemConfig& sys, std::uint32_t nodes) {
        return run_pennant(sys, nodes, 5, telemetry);
      },
      metrics, "fig14_pennant_init");
  return 0;
}
