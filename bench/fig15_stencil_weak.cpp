// Figure 15: Stencil weak scaling (weak scaling).
#include "app_benches.h"

int main() {
  using namespace visrt::bench;
  FigureSpec spec{"Figure 15", "Stencil weak scaling", "points/s", true};
  run_figure(spec, [](const SystemConfig& sys, std::uint32_t nodes) {
    return run_stencil(sys, nodes);
  });
  return 0;
}
