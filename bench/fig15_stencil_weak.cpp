// Figure 15: Stencil weak scaling (weak scaling).
#include "app_benches.h"

int main(int argc, char** argv) {
  using namespace visrt::bench;
  std::string metrics = take_metrics_json_arg(argc, argv);
  bool telemetry = !metrics.empty();
  FigureSpec spec{"Figure 15", "Stencil weak scaling", "points/s", true};
  run_figure(
      spec,
      [telemetry](const SystemConfig& sys, std::uint32_t nodes) {
        return run_stencil(sys, nodes, 5, telemetry);
      },
      metrics, "fig15_stencil_weak");
  return 0;
}
