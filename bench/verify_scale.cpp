// verify_scale: spy-verification scaling — batch closure vs batch
// order-maintenance vs streamed incremental verification.
//
//   verify_scale [--launches N] [--pieces N] [--retire-interval N]
//                [--max-resident-launches N] [--batch-cap N]
//                [--bench-out PATH] [--metrics-json PATH]
//
// Drives the paper's Figure-5 ghost-exchange shape (aliased neighbour
// ghosts over two alternating fields) at the requested launch count
// through up to three verification systems and appends one schema-v1
// entry (bench "verify_scale") to BENCH_analysis.json:
//
//   spy_bitmatrix       the pre-order-maintenance spy: an O(n²)-memory
//                       BitMatrix transitive closure plus the same
//                       interference sweep, reimplemented here as the
//                       baseline.  Only run when launches <= --batch-cap
//                       (the closure alone is n²/8 bytes).
//   spy_order           analysis::verify over a finished batch run — the
//                       shipped spy, order-maintenance labels, same
//                       ground-truth interference matrix.  Same cap: the
//                       interference matrix is still pairwise.
//   serve_stream_verify serve::StreamSession with SessionOptions::verify:
//                       the program is streamed, each launch's edges are
//                       verified on arrival against the resident window,
//                       and epoch retirement keeps memory bounded — the
//                       only system that reaches the 1,048,576-launch
//                       point.  Always run; wall time is end to end
//                       (ingest + analysis + verification).
//
// Any verification failure (the program is interference-clean by
// construction) exits nonzero, so CI can use a single invocation as both
// a perf smoke and a correctness check.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/spy.h"
#include "metrics_common.h"
#include "runtime/runtime.h"
#include "serve/session.h"
#include "wallclock_common.h"

using namespace visrt;

namespace {

struct Options {
  std::size_t launches = 10240;
  std::size_t pieces = 64;
  std::size_t retire_interval = 1024;
  std::size_t max_resident_launches = 8192;
  /// Largest launch count the batch systems attempt; beyond it only the
  /// streamed system runs (the batch matrices are O(n²) memory).
  std::size_t batch_cap = 16384;
  std::string bench_out = "BENCH_analysis.json";
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ---------------------------------------------------------------------------
// The Figure-5 ghost-exchange program, in two forms: Runtime API calls for
// the batch systems, .visprog text for the streamed one.  Same shape as
// bench/stream_sustained.

/// Build the region tree and issue `launches` index launches.
void run_batch_program(Runtime& rt, const Options& opt) {
  const coord_t cells = static_cast<coord_t>(10 * opt.pieces);
  RegionHandle root = rt.create_region(IntervalSet(0, cells - 1), "A");
  std::vector<IntervalSet> primary, ghost;
  for (std::size_t p = 0; p < opt.pieces; ++p) {
    const coord_t lo = static_cast<coord_t>(10 * p);
    primary.push_back(IntervalSet(lo, lo + 9));
    if (p == 0) {
      ghost.push_back(IntervalSet(10, 11));
    } else if (p + 1 == opt.pieces) {
      ghost.push_back(IntervalSet(lo - 2, lo - 1));
    } else {
      ghost.push_back(
          IntervalSet(lo - 2, lo - 1).unite(IntervalSet(lo + 10, lo + 11)));
    }
  }
  PartitionHandle pp = rt.create_partition(root, primary, "P");
  PartitionHandle gp = rt.create_partition(root, ghost, "G");
  FieldID up = rt.add_field(root, "up", 0.0);
  FieldID down = rt.add_field(root, "down", 0.0);

  std::size_t ingested = 0;
  std::uint64_t salt = 0;
  while (ingested < opt.launches) {
    IndexLaunch il;
    il.name = "exchange";
    const FieldID fw = (salt % 2) == 0 ? up : down;
    const FieldID fr = (salt % 2) == 0 ? down : up;
    il.requirements = {IndexReq{pp, fw, Privilege::read_write()},
                       IndexReq{gp, fr, Privilege::reduce(1)}};
    rt.index_launch(il);
    ingested += opt.pieces;
    ++salt;
    if (salt % 2 == 0) rt.end_iteration();
  }
}

/// The same program as stream text (see stream_sustained for the shape).
std::string stream_prologue(const Options& opt) {
  std::ostringstream os;
  const std::size_t cells = 10 * opt.pieces;
  os << "visprog 1\n"
     << "config nodes=4 dcr=0 tracing=0 subject=raycast\n"
     << "tuning occlusion=1 memoize=1 domwrites=1 kdfallback=0 paintbug=0\n"
     << "tree A " << cells << "\n";
  os << "partition P parent=0";
  for (std::size_t p = 0; p < opt.pieces; ++p)
    os << " [" << 10 * p << "," << 10 * p + 9 << "]";
  os << "\n";
  os << "partition G parent=0";
  for (std::size_t p = 0; p < opt.pieces; ++p) {
    if (p == 0) {
      os << " [10,11]";
    } else if (p + 1 == opt.pieces) {
      os << " [" << 10 * p - 2 << "," << 10 * p - 1 << "]";
    } else {
      os << " [" << 10 * p - 2 << "," << 10 * p - 1 << "]+[" << 10 * (p + 1)
         << "," << 10 * (p + 1) + 1 << "]";
    }
  }
  os << "\n";
  os << "field up tree=0 mod=11\n"
     << "field down tree=0 mod=11\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// The baseline: the spy as it was before the order-maintenance structure —
// ground-truth interference into a pairwise BitMatrix plus an O(n²)-memory
// transitive-closure matrix folded over predecessor rows in id order.

class BitMatrix {
public:
  explicit BitMatrix(std::size_t n)
      : words_((n + 63) / 64), bits_(n * words_, 0) {}

  void set(std::size_t row, std::size_t bit) {
    bits_[row * words_ + bit / 64] |= std::uint64_t{1} << (bit % 64);
  }
  bool test(std::size_t row, std::size_t bit) const {
    return (bits_[row * words_ + bit / 64] >> (bit % 64)) & 1;
  }
  void merge_row(std::size_t into, std::size_t from) {
    for (std::size_t w = 0; w < words_; ++w)
      bits_[into * words_ + w] |= bits_[from * words_ + w];
  }

private:
  std::size_t words_;
  std::vector<std::uint64_t> bits_;
};

struct BaselineReport {
  std::size_t interfering_pairs = 0;
  std::size_t unordered_pairs = 0;
  std::size_t imprecise_edges = 0;
  std::size_t transitive_edges = 0;

  bool clean() const { return unordered_pairs == 0 && imprecise_edges == 0; }
};

BaselineReport baseline_verify(const RegionTreeForest& forest,
                               const DepGraph& deps,
                               std::span<const LaunchRecord> launches) {
  const std::size_t n = launches.size();
  BaselineReport report;

  // Transitive closure: row b accumulates every ancestor of b.
  BitMatrix reach(n);
  for (std::size_t id = 0; id < n; ++id) {
    for (LaunchID p : deps.preds(static_cast<LaunchID>(id))) {
      reach.merge_row(id, p);
      reach.set(id, p);
    }
  }

  // Ground-truth interference, grouped by field exactly like the spy.
  BitMatrix interf(n);
  std::map<FieldID, std::vector<std::pair<LaunchID, const Requirement*>>>
      by_field;
  for (std::size_t id = 0; id < n; ++id)
    for (const Requirement& req : launches[id].requirements)
      by_field[req.field].push_back({static_cast<LaunchID>(id), &req});
  for (const auto& [field, entries] : by_field) {
    for (std::size_t j = 0; j < entries.size(); ++j) {
      for (std::size_t i = 0; i < j; ++i) {
        const auto& [ai, ri] = entries[i];
        const auto& [aj, rj] = entries[j];
        if (ai == aj || interf.test(aj, ai)) continue;
        if (!interferes(ri->privilege, rj->privilege)) continue;
        if (!forest.domain(ri->region).overlaps(forest.domain(rj->region)))
          continue;
        interf.set(aj, ai);
        ++report.interfering_pairs;
        if (!reach.test(aj, ai)) ++report.unordered_pairs;
      }
    }
  }

  // Precision: direct edges joining non-interfering pairs, plus the
  // informational count of edges already implied through another path.
  for (std::size_t id = 0; id < n; ++id) {
    std::span<const LaunchID> preds = deps.preds(static_cast<LaunchID>(id));
    for (LaunchID p : preds) {
      if (!interf.test(id, p)) ++report.imprecise_edges;
      for (LaunchID q : preds) {
        if (q != p && reach.test(q, p)) {
          ++report.transitive_edges;
          break;
        }
      }
    }
  }
  return report;
}

int usage() {
  std::fprintf(stderr,
               "usage: verify_scale [--launches N] [--pieces N] "
               "[--retire-interval N] [--max-resident-launches N] "
               "[--batch-cap N] [--bench-out PATH] [--metrics-json PATH]\n");
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  std::string metrics_path = bench::take_metrics_json_arg(argc, argv);
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> long {
      return i + 1 < argc ? std::atol(argv[++i]) : 0;
    };
    if (arg == "--launches") opt.launches = static_cast<std::size_t>(next());
    else if (arg == "--pieces") opt.pieces = static_cast<std::size_t>(next());
    else if (arg == "--retire-interval")
      opt.retire_interval = static_cast<std::size_t>(next());
    else if (arg == "--max-resident-launches")
      opt.max_resident_launches = static_cast<std::size_t>(next());
    else if (arg == "--batch-cap")
      opt.batch_cap = static_cast<std::size_t>(next());
    else if (arg == "--bench-out" && i + 1 < argc) opt.bench_out = argv[++i];
    else return usage();
  }
  if (opt.pieces < 3) opt.pieces = 3; // the ghost shape needs neighbours

  std::printf("# verify_scale: %zu launches, %zu pieces, retire=%zu cap=%zu\n",
              opt.launches, opt.pieces, opt.retire_interval,
              opt.max_resident_launches);
  std::printf("system\tlaunches\tverify_wall_s\tinterfering\tverdict\n");

  std::vector<std::string> runs;
  bool failed = false;

  // --- Batch systems: one engine run, two verifiers over its output. ---
  if (opt.launches <= opt.batch_cap) {
    RuntimeConfig config;
    config.algorithm = Algorithm::RayCast;
    config.track_values = false;
    config.record_launches = true;
    config.machine.num_nodes = 4;
    Runtime rt(config);
    run_batch_program(rt, opt);

    analysis::SpyOptions so;
    so.check_schedule = false; // measure dependence verification only
    auto t0 = std::chrono::steady_clock::now();
    analysis::SpyReport spy = analysis::verify(rt, so);
    const double order_wall = seconds_since(t0);
    std::printf("spy_order\t%zu\t%.3f\t%zu\t%s\n", spy.launches, order_wall,
                spy.interfering_pairs, spy.clean() ? "clean" : "VIOLATIONS");
    if (!spy.clean()) {
      std::fprintf(stderr, "verify_scale: spy_order: %s\n",
                   spy.summary().c_str());
      failed = true;
    }

    t0 = std::chrono::steady_clock::now();
    BaselineReport base =
        baseline_verify(rt.forest(), rt.dep_graph(), rt.launch_log());
    const double bitmatrix_wall = seconds_since(t0);
    std::printf("spy_bitmatrix\t%zu\t%.3f\t%zu\t%s\n", rt.launch_log().size(),
                bitmatrix_wall, base.interfering_pairs,
                base.clean() ? "clean" : "VIOLATIONS");
    if (!base.clean()) {
      std::fprintf(stderr,
                   "verify_scale: spy_bitmatrix: %zu unordered, %zu "
                   "imprecise\n",
                   base.unordered_pairs, base.imprecise_edges);
      failed = true;
    }
    // The two verifiers recompute the same ground truth; disagreement
    // means one of them is wrong.
    if (base.interfering_pairs != spy.interfering_pairs ||
        base.unordered_pairs != spy.unordered_pairs ||
        base.imprecise_edges != spy.imprecise_edges ||
        base.transitive_edges != spy.transitive_edges) {
      std::fprintf(stderr,
                   "verify_scale: baseline/order verdict mismatch: "
                   "pairs %zu/%zu unordered %zu/%zu imprecise %zu/%zu "
                   "transitive %zu/%zu\n",
                   base.interfering_pairs, spy.interfering_pairs,
                   base.unordered_pairs, spy.unordered_pairs,
                   base.imprecise_edges, spy.imprecise_edges,
                   base.transitive_edges, spy.transitive_edges);
      failed = true;
    }

    std::ostringstream os;
    os << "{\"system\":\"spy_order\",\"nodes\":4,\"analysis_wall_s\":"
       << obs::json_number(order_wall) << ",\"launches\":" << spy.launches
       << ",\"dep_edges\":" << spy.dep_edges
       << ",\"interfering_pairs\":" << spy.interfering_pairs
       << ",\"transitive_edges\":" << spy.transitive_edges
       << ",\"order_chains\":" << spy.order_chains
       << ",\"order_relabels\":" << spy.order_relabels << "}";
    runs.push_back(os.str());
    os.str("");
    os << "{\"system\":\"spy_bitmatrix\",\"nodes\":4,\"analysis_wall_s\":"
       << obs::json_number(bitmatrix_wall)
       << ",\"launches\":" << rt.launch_log().size()
       << ",\"dep_edges\":" << rt.dep_graph().edge_count()
       << ",\"interfering_pairs\":" << base.interfering_pairs
       << ",\"transitive_edges\":" << base.transitive_edges << "}";
    runs.push_back(os.str());
  } else {
    std::printf("# batch systems skipped: %zu launches > batch cap %zu\n",
                opt.launches, opt.batch_cap);
  }

  // --- Streamed incremental verification, end to end. ---
  {
    serve::SessionOptions so;
    so.retire_every = opt.retire_interval;
    so.max_resident_launches = opt.max_resident_launches;
    so.track_values = false;
    so.verify = true;
    std::size_t rejected = 0;
    so.on_error = [&rejected](const std::string& e) {
      std::fprintf(stderr, "verify_scale: %s\n", e.c_str());
      ++rejected;
    };
    serve::StreamSession session(so);

    auto t0 = std::chrono::steady_clock::now();
    session.feed(stream_prologue(opt));
    std::size_t ingested = 0;
    std::uint64_t salt = 0;
    std::string line;
    while (ingested < opt.launches) {
      const bool up = (salt % 2) == 0;
      line = "index salt=" + std::to_string(salt) +
             (up ? " p0 f0 rw | p1 f1 red:sum\n"
                 : " p0 f1 rw | p1 f0 red:sum\n");
      session.feed(line);
      ingested += opt.pieces;
      ++salt;
      if (salt % 2 == 0) session.feed("end_iteration\n");
    }
    session.finish();
    const double wall = seconds_since(t0);

    const serve::SessionCounters& c = session.counters();
    const serve::SessionResult& r = session.result();
    const bool clean = rejected == 0 && c.verify_violations == 0 &&
                       r.verify.has_value() && r.verify->clean();
    std::printf("serve_stream_verify\t%llu\t%.3f\t%zu\t%s\n",
                static_cast<unsigned long long>(c.verified_launches), wall,
                r.verify.has_value() ? r.verify->interfering_pairs : 0,
                clean ? "clean" : "VIOLATIONS");
    if (!clean) {
      std::fprintf(stderr, "verify_scale: serve_stream_verify: %s\n",
                   r.verify.has_value() ? r.verify->summary().c_str()
                                        : "no verify report");
      failed = true;
    }

    std::ostringstream os;
    os << "{\"system\":\"serve_stream_verify\",\"nodes\":4,"
       << "\"analysis_wall_s\":" << obs::json_number(wall)
       << ",\"launches\":" << c.launches
       << ",\"verified_launches\":" << c.verified_launches
       << ",\"launches_per_s\":"
       << obs::json_number(wall > 0 ? static_cast<double>(c.launches) / wall
                                    : 0)
       << ",\"peak_resident_launches\":" << c.peak_resident_launches
       << ",\"interfering_pairs\":"
       << (r.verify.has_value() ? r.verify->interfering_pairs : 0)
       << ",\"transitive_edges\":"
       << (r.verify.has_value() ? r.verify->transitive_edges : 0) << "}";
    runs.push_back(os.str());
  }

  std::ostringstream entry;
  entry << "{\"bench\":\"verify_scale\",\"app\":\"synthetic\",\"threads\":1,"
        << "\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i)
    entry << (i ? "," : "") << runs[i];
  entry << "]}";
  if (!bench::append_bench_entry(opt.bench_out, entry.str())) {
    std::fprintf(stderr, "error: could not write %s\n", opt.bench_out.c_str());
    return 1;
  }
  std::printf("# appended entry to %s\n", opt.bench_out.c_str());
  bench::write_envelope_only(metrics_path, "verify_scale");
  return failed ? 1 : 0;
}
