// Extension experiment: dynamic tracing ([15] in the paper).
//
// The paper's evaluation deliberately disables Legion's tracing so the
// figures isolate the raw analysis cost of each visibility algorithm
// ("We did not use Legion's tracing, which memoizes the dependence and
// coherence analyses").  This bench runs the Stencil weak-scaling sweep
// with tracing ENABLED and shows the converse: once the analysis is
// memoized, even the no-DCR configurations scale, because the per-launch
// analysis no longer grows a sequential bottleneck on node 0.
#include <cstdio>

#include "app_benches.h"

namespace visrt::bench {
namespace {

RunResult run_traced_stencil(const SystemConfig& sys, std::uint32_t nodes,
                             bool trace, bool telemetry) {
  RuntimeConfig rcfg = bench_runtime_config(sys, nodes, telemetry);
  apps::StencilConfig cfg;
  std::uint32_t px = 1;
  while (px * px < nodes) px *= 2;
  cfg.pieces_x = px;
  cfg.pieces_y = nodes / px;
  cfg.tile_rows = 128;
  cfg.tile_cols = 128;
  cfg.iterations = 5;
  cfg.trace = trace;
  rcfg.costs.task_element_ns = 125;
  Runtime rt(rcfg);
  apps::StencilApp app(rt, cfg);
  app.run();
  RunResult out;
  out.stats = rt.finish();
  out.work_per_node_per_iter = static_cast<double>(app.points_per_piece());
  out.metrics_json = bench_metrics_json(sys, nodes, "stencil", rt, out.stats);
  return out;
}

} // namespace
} // namespace visrt::bench

int main(int argc, char** argv) {
  using namespace visrt::bench;
  std::string metrics_path = take_metrics_json_arg(argc, argv);
  visrt::MetricsFile metrics("ext_tracing");
  std::printf("# Extension: Stencil weak scaling with dynamic tracing\n");
  std::printf("# (points/s per node; the paper's Figures ran untraced)\n");

  std::vector<std::uint32_t> nodes_list = paper_node_counts();
  struct Config {
    const char* label;
    SystemConfig sys;
    bool trace;
  };
  std::vector<Config> configs = {
      {"RayCast NoDCR untraced",
       {"raycast_untraced", "", visrt::Algorithm::RayCast, false},
       false},
      {"RayCast NoDCR traced",
       {"raycast_traced", "", visrt::Algorithm::RayCast, false},
       true},
      {"Warnock NoDCR untraced",
       {"warnock_untraced", "", visrt::Algorithm::Warnock, false},
       false},
      {"Warnock NoDCR traced",
       {"warnock_traced", "", visrt::Algorithm::Warnock, false},
       true},
      {"Paint NoDCR untraced",
       {"paint_untraced", "", visrt::Algorithm::Paint, false},
       false},
      {"Paint NoDCR traced",
       {"paint_traced", "", visrt::Algorithm::Paint, false},
       true},
  };

  std::printf("%-24s", "nodes");
  for (std::uint32_t n : nodes_list) std::printf("%12u", n);
  std::printf("\n");
  for (const Config& c : configs) {
    std::printf("%-24s", c.label);
    for (std::uint32_t n : nodes_list) {
      RunResult r =
          run_traced_stencil(c.sys, n, c.trace, !metrics_path.empty());
      if (!metrics_path.empty()) metrics.add_run(std::move(r.metrics_json));
      double tput = r.stats.steady_iter_s > 0
                        ? r.work_per_node_per_iter / r.stats.steady_iter_s
                        : 0.0;
      std::printf("%12.4g", tput);
    }
    std::printf("\n");
  }
  metrics.write(metrics_path);
  return 0;
}
