// Figure 16: Circuit weak scaling (weak scaling).
#include "app_benches.h"

int main() {
  using namespace visrt::bench;
  FigureSpec spec{"Figure 16", "Circuit weak scaling", "wires/s", true};
  run_figure(spec, [](const SystemConfig& sys, std::uint32_t nodes) {
    return run_circuit(sys, nodes);
  });
  return 0;
}
