// CLI plumbing for the benchmark metrics sink: every bench binary accepts
//   --metrics-json=PATH   (or: --metrics-json PATH)
// and writes a schema-valid metrics file there (see docs/OBSERVABILITY.md).
// The flag is extracted before any other argument parsing so it composes
// with google-benchmark's own flags.
#pragma once

#include <cstring>
#include <string>

#include "obs/metrics.h"

namespace visrt::bench {

/// Remove --metrics-json from argv (compacting it) and return its value,
/// or "" when absent.
inline std::string take_metrics_json_arg(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-json=", 15) == 0) {
      path = argv[i] + 15;
      continue;
    }
    if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      path = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  argv[argc] = nullptr;
  return path;
}

/// Write an empty (but schema-valid) metrics envelope: used by binaries
/// without per-run stats (microbenchmarks).  No-op when `path` is empty.
inline void write_envelope_only(const std::string& path,
                                const char* binary) {
  if (path.empty()) return;
  obs::write_metrics_file(path, binary, {});
}

} // namespace visrt::bench
