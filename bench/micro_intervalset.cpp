// Microbenchmark: interval-set algebra throughput — the inner loop of all
// three coherence algorithms.
#include <benchmark/benchmark.h>

#include <chrono>

#include "common/rng.h"
#include "geom/interval_set.h"
#include "metrics_common.h"
#include "wallclock_common.h"

namespace visrt {
namespace {

IntervalSet make_set(Rng& rng, int intervals, coord_t universe) {
  std::vector<Interval> ivs;
  ivs.reserve(static_cast<std::size_t>(intervals));
  for (int i = 0; i < intervals; ++i) {
    coord_t lo = rng.range(0, universe);
    ivs.push_back(Interval{lo, lo + rng.range(1, universe / (4 * intervals) + 2)});
  }
  return IntervalSet::from_intervals(std::move(ivs));
}

void BM_Unite(benchmark::State& state) {
  Rng rng(7);
  int n = static_cast<int>(state.range(0));
  IntervalSet a = make_set(rng, n, 1 << 20);
  IntervalSet b = make_set(rng, n, 1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.unite(b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Unite)->Arg(4)->Arg(64)->Arg(1024);

void BM_Intersect(benchmark::State& state) {
  Rng rng(8);
  int n = static_cast<int>(state.range(0));
  IntervalSet a = make_set(rng, n, 1 << 20);
  IntervalSet b = make_set(rng, n, 1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersect(b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Intersect)->Arg(4)->Arg(64)->Arg(1024);

void BM_Subtract(benchmark::State& state) {
  Rng rng(9);
  int n = static_cast<int>(state.range(0));
  IntervalSet a = make_set(rng, n, 1 << 20);
  IntervalSet b = make_set(rng, n, 1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.subtract(b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Subtract)->Arg(4)->Arg(64)->Arg(1024);

void BM_Overlaps(benchmark::State& state) {
  Rng rng(10);
  int n = static_cast<int>(state.range(0));
  IntervalSet a = make_set(rng, n, 1 << 20);
  IntervalSet b = make_set(rng, n, 1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.overlaps(b));
  }
}
BENCHMARK(BM_Overlaps)->Arg(4)->Arg(64)->Arg(1024);

// --wall-clock mode: time the four interval-set operations directly and
// append a BENCH_analysis.json entry.  The algebra is pure and
// single-threaded, so --threads is recorded but does not change the work.
int run_wall_clock_micro(const bench::WallClockOptions& wc) {
  struct Op {
    const char* label;
    IntervalSet (IntervalSet::*binary)(const IntervalSet&) const;
  };
  const Op ops[] = {
      {"unite", &IntervalSet::unite},
      {"intersect", &IntervalSet::intersect},
      {"subtract", &IntervalSet::subtract},
  };
  constexpr int kReps = 20000;
  std::printf("# micro_intervalset --wall-clock: interval-algebra seconds "
              "(%d reps)\n", kReps);
  std::printf("system\tintervals\tanalysis_wall_s\n");
  std::ostringstream runs;
  bool first = true;
  for (const Op& op : ops) {
    for (std::uint32_t n : wc.nodes) {
      Rng rng(11);
      IntervalSet a = make_set(rng, static_cast<int>(n), 1 << 20);
      IntervalSet b = make_set(rng, static_cast<int>(n), 1 << 20);
      auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < kReps; ++r)
        benchmark::DoNotOptimize((a.*op.binary)(b));
      double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      std::printf("%s\t%u\t%.6f\n", op.label, n, seconds);
      if (!first) runs << ",\n    ";
      first = false;
      runs << "{\"system\":\"" << op.label << "\",\"nodes\":" << n
           << ",\"analysis_wall_s\":" << bench::wall_clock_number(seconds)
           << "}";
    }
  }
  std::ostringstream entry;
  entry << " {\"bench\":\"micro_intervalset\",\"app\":\"synthetic\","
        << "\"threads\":" << wc.threads << ",\n  \"runs\":[\n    "
        << runs.str() << "]}";
  if (!bench::append_bench_entry(wc.out_path, entry.str())) {
    std::fprintf(stderr, "error: could not write %s\n", wc.out_path.c_str());
    return 1;
  }
  std::printf("# appended entry to %s\n", wc.out_path.c_str());
  return 0;
}

} // namespace
} // namespace visrt

// Custom main: --metrics-json and the wall-clock flags must be stripped
// before google-benchmark sees the arguments (benchmark_main rejects
// unrecognized flags).
int main(int argc, char** argv) {
  visrt::bench::WallClockOptions wc =
      visrt::bench::take_wall_clock_args(argc, argv);
  std::string metrics = visrt::bench::take_metrics_json_arg(argc, argv);
  if (wc.enabled) return visrt::run_wall_clock_micro(wc);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  visrt::bench::write_envelope_only(metrics, "micro_intervalset");
  return 0;
}
