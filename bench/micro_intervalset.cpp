// Microbenchmark: interval-set algebra throughput — the inner loop of all
// three coherence algorithms.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "geom/interval_set.h"
#include "metrics_common.h"

namespace visrt {
namespace {

IntervalSet make_set(Rng& rng, int intervals, coord_t universe) {
  std::vector<Interval> ivs;
  ivs.reserve(static_cast<std::size_t>(intervals));
  for (int i = 0; i < intervals; ++i) {
    coord_t lo = rng.range(0, universe);
    ivs.push_back(Interval{lo, lo + rng.range(1, universe / (4 * intervals) + 2)});
  }
  return IntervalSet::from_intervals(std::move(ivs));
}

void BM_Unite(benchmark::State& state) {
  Rng rng(7);
  int n = static_cast<int>(state.range(0));
  IntervalSet a = make_set(rng, n, 1 << 20);
  IntervalSet b = make_set(rng, n, 1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.unite(b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Unite)->Arg(4)->Arg(64)->Arg(1024);

void BM_Intersect(benchmark::State& state) {
  Rng rng(8);
  int n = static_cast<int>(state.range(0));
  IntervalSet a = make_set(rng, n, 1 << 20);
  IntervalSet b = make_set(rng, n, 1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersect(b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Intersect)->Arg(4)->Arg(64)->Arg(1024);

void BM_Subtract(benchmark::State& state) {
  Rng rng(9);
  int n = static_cast<int>(state.range(0));
  IntervalSet a = make_set(rng, n, 1 << 20);
  IntervalSet b = make_set(rng, n, 1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.subtract(b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Subtract)->Arg(4)->Arg(64)->Arg(1024);

void BM_Overlaps(benchmark::State& state) {
  Rng rng(10);
  int n = static_cast<int>(state.range(0));
  IntervalSet a = make_set(rng, n, 1 << 20);
  IntervalSet b = make_set(rng, n, 1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.overlaps(b));
  }
}
BENCHMARK(BM_Overlaps)->Arg(4)->Arg(64)->Arg(1024);

} // namespace
} // namespace visrt

// Custom main: --metrics-json must be stripped before google-benchmark
// sees the arguments (benchmark_main rejects unrecognized flags).
int main(int argc, char** argv) {
  std::string metrics = visrt::bench::take_metrics_json_arg(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  visrt::bench::write_envelope_only(metrics, "micro_intervalset");
  return 0;
}
