// visrt/obs/metrics.h
//
// The metrics layer: the file envelope, the small JSON emission helpers
// shared by every serializer, and the per-run serialization of finished
// Runtime runs (RunStats, per-node breakdowns, recorder series summaries,
// and — schema v2 — provenance / lifecycle / message-ledger sections).
// The schema is documented in docs/OBSERVABILITY.md.  This is the single
// metrics target: the former runtime/metrics.{h,cc} pair was folded in
// here (the run serializer keeps its visrt-namespace names, so call sites
// only changed their include).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace visrt {
class Runtime;
struct RunStats;
} // namespace visrt

namespace visrt::obs {

/// Bumped whenever a key is renamed or removed; additions are backward
/// compatible and do not bump it.  v2: per-run "provenance", "lifecycle"
/// and "messages" objects (see docs/OBSERVABILITY.md).
inline constexpr int kMetricsSchemaVersion = 2;

/// JSON-escape the contents of a string (quotes not included).
std::string json_escape(std::string_view s);

/// Render a double as a JSON number (finite shortest round-trip form;
/// NaN/Inf degrade to 0 since JSON cannot carry them).
std::string json_number(double value);

/// Write the metrics-file envelope around pre-serialized run objects:
///   {"schema_version":1,"binary":"<name>","runs":[...]}
void write_metrics_envelope(std::ostream& os, std::string_view binary,
                            std::span<const std::string> runs);

/// Convenience: write an envelope to `path`; returns false (and logs a
/// warning) when the file cannot be written.
bool write_metrics_file(const std::string& path, std::string_view binary,
                        std::span<const std::string> runs);

} // namespace visrt::obs

namespace visrt {

/// Identity of one run within a metrics file.
struct MetricsRunInfo {
  std::string name;      ///< configuration label, e.g. "raycast/dcr/16"
  std::string app;       ///< application, e.g. "stencil"
  std::string algorithm; ///< algorithm_name() of the engine
  bool dcr = false;
  std::uint32_t nodes = 0;
};

/// Serialize one finished run as a JSON object (stats, per-node analysis
/// busy time and message counts, series summaries, span aggregates, and
/// the schema-v2 provenance / lifecycle / message-ledger sections).
std::string metrics_run_json(const MetricsRunInfo& info, const Runtime& rt,
                             const RunStats& stats);

/// Accumulates run objects and writes the envelope.
class MetricsFile {
public:
  explicit MetricsFile(std::string binary) : binary_(std::move(binary)) {}

  void add_run(std::string run_json) {
    runs_.push_back(std::move(run_json));
  }
  std::size_t run_count() const { return runs_.size(); }

  /// The complete file contents.
  std::string json() const;
  /// Write to `path`; returns false (and logs) on failure.  A no-op
  /// returning true when `path` is empty, so callers can pass the
  /// --metrics-json value through unconditionally.
  bool write(const std::string& path) const;

private:
  std::string binary_;
  std::vector<std::string> runs_;
};

} // namespace visrt
