// visrt/obs/metrics.h
//
// The metrics-file envelope and the small JSON emission helpers shared by
// every serializer in the telemetry layer (metrics sink, trace export).
// The schema is documented in docs/OBSERVABILITY.md; obs owns the envelope
// (schema_version, binary, runs[]) while the runtime layer serializes the
// per-run objects, so binaries without a Runtime (e.g. microbenchmarks)
// can still emit schema-valid files.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>

namespace visrt::obs {

/// Bumped whenever a key is renamed or removed; additions are backward
/// compatible and do not bump it.
inline constexpr int kMetricsSchemaVersion = 1;

/// JSON-escape the contents of a string (quotes not included).
std::string json_escape(std::string_view s);

/// Render a double as a JSON number (finite shortest round-trip form;
/// NaN/Inf degrade to 0 since JSON cannot carry them).
std::string json_number(double value);

/// Write the metrics-file envelope around pre-serialized run objects:
///   {"schema_version":1,"binary":"<name>","runs":[...]}
void write_metrics_envelope(std::ostream& os, std::string_view binary,
                            std::span<const std::string> runs);

/// Convenience: write an envelope to `path`; returns false (and logs a
/// warning) when the file cannot be written.
bool write_metrics_file(const std::string& path, std::string_view binary,
                        std::span<const std::string> runs);

} // namespace visrt::obs
