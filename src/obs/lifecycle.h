// visrt/obs/lifecycle.h
//
// Equivalence-set lifecycle ledger (paper §6–§7 instrumentation): every
// engine reports create / refine / coalesce / migrate events for its
// per-field coherence state — Warnock's refinement-tree splits, ray
// casting's dominating-write coalescing, the painter's composite-view
// captures and replications — stamped on the launch clock with the
// owning node, the refined parent and the resulting live-set count.
//
// Determinism contract: engines record events only from their sequential
// canonical-order merge loops, so within one field the event sequence is
// bit-identical across `analysis_threads`.  Different *fields* of one
// launch may be analyzed concurrently, so the ledger keeps one event
// vector per field behind a mutex and every exporter walks fields in
// sorted order — the exported JSON and Perfetto tracks are therefore
// bit-identical across thread counts too (tests/lifecycle_test.cpp).
//
// Compiled out entirely with -DVISRT_PROVENANCE=OFF (see provenance.h);
// when compiled in, a disabled ledger costs one branch per event site.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/provenance.h"

namespace visrt::obs {

enum class LifecycleEventKind : std::uint8_t {
  Create,   ///< a new eq-set / composite view came alive
  Refine,   ///< a set was split (its children arrive as Create events)
  Coalesce, ///< a set died: pruned by a dominating write / occlusion
  Migrate,  ///< a set's metadata was replicated to / adopted by a node
};

#if VISRT_PROVENANCE
const char* lifecycle_event_kind_name(LifecycleEventKind kind);
#else
inline const char* lifecycle_event_kind_name(LifecycleEventKind) {
  return "?";
}
#endif

/// One lifecycle event.  `depth` is derived by the ledger from the parent
/// chain (roots are depth 0); `live_after` is the engine's live-set count
/// for the field immediately after the event.
struct LifecycleEvent {
  LifecycleEventKind kind = LifecycleEventKind::Create;
  LaunchID launch = kInvalidLaunch; ///< launch clock of the event
  FieldID field = 0;
  EqSetID eqset = kNoEqSetID;  ///< subject set / view
  EqSetID parent = kNoEqSetID; ///< refined parent (Refine, split Create)
  NodeID owner = 0;            ///< owning node after the event
  std::uint32_t depth = 0;     ///< refinement depth (ledger-derived)
  std::uint64_t live_after = 0;
};

/// Aggregate over one field (or over all fields).
struct LifecycleSummary {
  std::uint64_t creates = 0;
  std::uint64_t refines = 0;
  std::uint64_t coalesces = 0;
  std::uint64_t migrates = 0;
  std::uint64_t peak_live = 0;
  std::uint32_t max_depth = 0;
};

/// The per-runtime ledger.  Engines hold a pointer (via EngineConfig) and
/// call `record`; a null pointer or a disabled ledger is a no-op.
class LifecycleLedger {
public:
#if VISRT_PROVENANCE
  void enable();
  bool enabled() const { return enabled_; }

  /// Record one event; `depth` of the event is derived from
  /// `parent` (kNoEqSetID parent => depth 0).  Thread-safe across fields.
  void record(LifecycleEventKind kind, LaunchID launch, FieldID field,
              EqSetID eqset, EqSetID parent, NodeID owner,
              std::uint64_t live_after);

  /// Fields with at least one event, sorted ascending.
  std::vector<FieldID> fields() const;
  /// Events of one field, in record order (deterministic per field).
  std::vector<LifecycleEvent> events(FieldID field) const;
  std::size_t event_count() const;
  LifecycleSummary summary(FieldID field) const;
  LifecycleSummary total() const;

  /// Deterministic JSON: {"summary": {...}, "fields": {"<id>": {summary,
  /// events[]}}}.  Field order is sorted; no timestamps or host state.
  std::string json() const;
#else
  void enable() {}
  bool enabled() const { return false; }
  void record(LifecycleEventKind, LaunchID, FieldID, EqSetID, EqSetID,
              NodeID, std::uint64_t) {}
  std::vector<FieldID> fields() const { return {}; }
  std::vector<LifecycleEvent> events(FieldID) const { return {}; }
  std::size_t event_count() const { return 0; }
  LifecycleSummary summary(FieldID) const { return {}; }
  LifecycleSummary total() const { return {}; }
  std::string json() const { return "{}"; }
#endif

private:
  struct PerField {
    std::vector<LifecycleEvent> events;
    std::map<EqSetID, std::uint32_t> depth; ///< eqset -> refinement depth
    std::uint64_t peak_live = 0;
  };

  mutable std::mutex mu_;
  bool enabled_ = false;
  std::map<FieldID, PerField> fields_;
};

} // namespace visrt::obs
