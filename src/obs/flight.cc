#include "obs/flight.h"

#if VISRT_FLIGHT

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <vector>

#include <unistd.h>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace visrt::obs {

namespace {

// One thread's ring.  Single writer (the owning thread); every field of
// every slot is individually atomic so concurrent readers (snapshot,
// crash dump from another thread or a signal frame) never race in the
// language-semantics sense — at worst they read a torn *slot* (fields
// from two different events), which the seq-ordering pass tolerates.
struct FlightRing {
  static constexpr std::size_t kCapacity = 2048;

  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> ns{0};
    std::atomic<std::uint32_t> kind{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
  };

  std::array<Slot, kCapacity> slots;
  std::atomic<std::uint64_t> head{0}; ///< events ever written
};

std::atomic<std::uint64_t> g_seq{0};
std::atomic<std::uint64_t> g_last_launch{0}; ///< breadcrumb for CheckFailure

PerThread<FlightRing>& rings() {
  static PerThread<FlightRing> instance;
  return instance;
}

std::atomic<FlightContextProvider> g_context_provider{nullptr};

std::mutex g_dump_mu; ///< guards g_dump_dir / g_last_dump_path
std::string& dump_dir() {
  static std::string dir;
  return dir;
}
std::string& last_dump_path() {
  static std::string path;
  return path;
}

std::atomic<bool> g_dumped{false}; ///< one crash dump per process

void crash_dump(std::string_view reason) {
  if (g_dumped.exchange(true, std::memory_order_acq_rel)) return;
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(g_dump_mu);
    dir = dump_dir();
  }
  const std::string path = flight_dump(reason, dir);
  if (!path.empty())
    std::fprintf(stderr, "visrt: flight recorder dump written to %s\n",
                 path.c_str());
}

void check_hook(std::string_view message) {
  flight_record(FlightKind::CheckFailure,
                g_last_launch.load(std::memory_order_relaxed), 0);
  crash_dump(message);
}

void fatal_signal_handler(int sig) {
  // Not async-signal-safe in the strict sense (allocation, stdio) — the
  // process is dying anyway and a best-effort artifact beats none.  The
  // g_dumped guard keeps a crash *inside* the dump path from recursing.
  crash_dump(std::string("fatal signal ") + std::to_string(sig));
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

} // namespace

void flight_record(FlightKind kind, std::uint64_t a, std::uint64_t b) {
  if (kind == FlightKind::Launch)
    g_last_launch.store(a, std::memory_order_relaxed);
  FlightRing& ring = rings().local();
  const std::uint64_t seq = g_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t at =
      ring.head.fetch_add(1, std::memory_order_relaxed) %
      FlightRing::kCapacity;
  FlightRing::Slot& slot = ring.slots[at];
  slot.ns.store(prof_now_ns(), std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint32_t>(kind),
                  std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  // seq last, with release: a reader that sees the new seq sees the new
  // payload (same-slot overwrites can still tear; see FlightRing).
  slot.seq.store(seq, std::memory_order_release);
}

std::vector<FlightEvent> flight_snapshot() {
  std::vector<FlightEvent> events;
  rings().for_each([&](const FlightRing& ring) {
    for (const FlightRing::Slot& slot : ring.slots) {
      FlightEvent ev;
      ev.seq = slot.seq.load(std::memory_order_acquire);
      if (ev.seq == 0) continue;
      ev.ns = slot.ns.load(std::memory_order_relaxed);
      ev.kind = static_cast<FlightKind>(
          slot.kind.load(std::memory_order_relaxed));
      ev.a = slot.a.load(std::memory_order_relaxed);
      ev.b = slot.b.load(std::memory_order_relaxed);
      events.push_back(ev);
    }
  });
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.seq < y.seq;
            });
  return events;
}

void flight_set_context_provider(FlightContextProvider provider) {
  g_context_provider.store(provider, std::memory_order_release);
}

std::string flight_dump_json(std::string_view reason) {
  const std::vector<FlightEvent> events = flight_snapshot();
  std::ostringstream os;
  os << "{\"schema_version\":1,\"reason\":\"" << json_escape(reason)
     << "\",\"pid\":" << static_cast<std::uint64_t>(::getpid())
     << ",\"time_ns\":" << prof_now_ns()
     << ",\"last_launch\":" << g_last_launch.load(std::memory_order_relaxed)
     << ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i != 0) os << ",";
    const FlightEvent& ev = events[i];
    os << "{\"seq\":" << ev.seq << ",\"ns\":" << ev.ns << ",\"kind\":\""
       << flight_kind_name(ev.kind) << "\",\"a\":" << ev.a
       << ",\"b\":" << ev.b << "}";
  }
  os << "],\"context\":";
  FlightContextProvider provider =
      g_context_provider.load(std::memory_order_acquire);
  if (provider != nullptr) {
    os << provider();
  } else {
    os << "null";
  }
  os << "}";
  return os.str();
}

std::string flight_dump(std::string_view reason, std::string_view dir) {
  const std::uint64_t epoch_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  std::string path;
  if (!dir.empty()) {
    path = std::string(dir);
    if (path.back() != '/') path += '/';
  }
  path += "visrt-flight-" + std::to_string(epoch_ms) + "-" +
          std::to_string(static_cast<std::uint64_t>(::getpid())) + ".json";
  const std::string doc = flight_dump_json(reason);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return {};
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  if (!ok) return {};
  std::lock_guard<std::mutex> lock(g_dump_mu);
  last_dump_path() = path;
  return path;
}

std::string flight_last_dump_path() {
  std::lock_guard<std::mutex> lock(g_dump_mu);
  return last_dump_path();
}

void flight_arm_crash_dumps(std::string_view dir) {
  {
    std::lock_guard<std::mutex> lock(g_dump_mu);
    dump_dir() = std::string(dir);
  }
  set_check_failure_hook(&check_hook);
  for (int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT})
    std::signal(sig, &fatal_signal_handler);
}

} // namespace visrt::obs

#endif // VISRT_FLIGHT
