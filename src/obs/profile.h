// visrt/obs/profile.h
//
// The contention-aware analysis profiler: a low-overhead layer threaded
// through the Executor, the Recorder, the runtime and every engine's
// merge loops, recording the evidence the executor-scaling work needs
// (docs/PERFORMANCE.md documents the negative fig13 scaling it exists to
// explain):
//
//   - Per-worker utilization: shard-task begin/end events (launch, field,
//     shard index) plus per-lane busy totals, emitted by Executor::run_some.
//   - Lock contention: TimedMutex wraps the serialization points (the
//     Recorder series lock, the executor queue) and counts acquisitions,
//     contended acquisitions and total/max wait time.
//   - Phase attribution: ScopedPhase classifies analysis wall time into
//     parallel shard scans, sequential canonical-order merges, provenance
//     recording and other serial work; the report derives the serial
//     fraction, the Amdahl speedup bound and a critical-path estimate
//     over the fork/join groups.
//
// Report determinism contract: the `structure` half of the JSON report
// (phase names, kinds and event counts) is byte-identical across
// --threads because every instrumentation site executes a thread-count-
// independent number of times; the `timing` half (nanoseconds, worker
// lanes, groups, locks) depends on the host and thread count and is
// excluded from golden comparisons.
//
// With -DVISRT_PROFILE=OFF every class below compiles to an empty stub:
// no members beyond the raw mutex, no timing calls, no symbols in the
// binary (the CI provenance-off job asserts this with `nm`).
//
// Layering: visrt_common (the Executor) sits *below* visrt_obs, so every
// hook the executor calls — TimedMutex lock/unlock, task_event,
// group_complete — is header-inline here; only the cold report/JSON
// builders live in profile.cc.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"

#ifndef VISRT_PROFILE
#define VISRT_PROFILE 1
#endif

namespace visrt::obs {

/// Compile-time switch mirroring kProvenanceEnabled: with
/// -DVISRT_PROFILE=OFF this is false and every hook folds away.
inline constexpr bool kProfileEnabled = VISRT_PROFILE != 0;

/// Monotonic wall clock in nanoseconds (steady_clock, epoch-relative).
inline std::uint64_t prof_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline std::uint64_t next_per_thread_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Registry of per-thread slots: each thread that calls local() gets its
/// own T, created on first use, with lock-free access afterwards (one
/// thread_local probe).  Slots are keyed by a process-unique instance id,
/// never by address, so a slot cached for a destroyed registry can never
/// be revived by allocator address reuse.  for_each visits every slot
/// ever created; synchronizing with the writing threads (join them first)
/// is the caller's job.  Memory: one cache entry per (thread, registry)
/// pair ever paired — bounded by design in visrt (one registry per
/// Recorder, threads live inside one Executor).
template <typename T>
class PerThread {
public:
  PerThread() : uid_(next_per_thread_uid()) {}
  PerThread(const PerThread&) = delete;
  PerThread& operator=(const PerThread&) = delete;

  /// The calling thread's slot, created on first use.
  T& local() {
    thread_local Cache cache;
    if (cache.last_uid == uid_) return *static_cast<T*>(cache.last_slot);
    return lookup_slow(cache);
  }

  /// Visit every slot ever created, in creation order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& slot : slots_) fn(*slot);
  }

private:
  struct Cache {
    std::uint64_t last_uid = 0;
    void* last_slot = nullptr;
    std::unordered_map<std::uint64_t, void*> by_uid;
  };

  T& lookup_slow(Cache& cache) {
    auto it = cache.by_uid.find(uid_);
    if (it == cache.by_uid.end()) {
      std::lock_guard<std::mutex> lock(mu_);
      slots_.push_back(std::make_unique<T>());
      it = cache.by_uid.emplace(uid_, slots_.back().get()).first;
    }
    cache.last_uid = uid_;
    cache.last_slot = it->second;
    return *static_cast<T*>(it->second);
  }

  const std::uint64_t uid_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<T>> slots_;
};

/// Identity of the work a fork/join group shards: the launch and field
/// whose analysis is being scanned.  Attached to task begin/end events.
struct TaskTag {
  LaunchID launch = kInvalidLaunch;
  FieldID field = std::numeric_limits<FieldID>::max();
};

/// Cumulative contention counters of one TimedMutex.
struct ContentionStats {
  std::uint64_t acquisitions = 0; ///< successful lock()/try_lock() calls
  std::uint64_t contended = 0;    ///< lock() calls that had to wait
  std::uint64_t wait_total_ns = 0;
  std::uint64_t wait_max_ns = 0;
};

/// One contended acquisition, for the contention counter tracks of the
/// profile trace (at_ns is the wall time the wait started).
struct ContentionSample {
  std::uint64_t at_ns = 0;
  std::uint64_t wait_ns = 0;
};

/// How a phase's wall time scales: ShardScan work spreads across the
/// executor; everything else serializes on the calling thread.  Merge is
/// called out separately because the canonical-order merge loops are the
/// determinism contract's mandatory serial section; Combine is the new,
/// slimmer flavor of that section — the index-order fold of per-shard
/// reduction buffers after the parallel scan (what remains serial once
/// the heavy per-requirement work moved into the shards); Provenance
/// because the ISSUE-6 attribution asks for it by name.
enum class PhaseKind : std::uint8_t {
  ShardScan = 0,
  Merge,
  Provenance,
  Combine,
  Other,
};

inline const char* phase_kind_name(PhaseKind kind) {
  switch (kind) {
  case PhaseKind::ShardScan: return "shard_scan";
  case PhaseKind::Merge: return "merge";
  case PhaseKind::Provenance: return "provenance";
  case PhaseKind::Combine: return "combine";
  case PhaseKind::Other: return "other";
  }
  return "?";
}

/// Aggregated wall time of one instrumentation site (kind + label).
struct PhaseTotal {
  PhaseKind kind = PhaseKind::Other;
  std::string label;
  std::uint64_t events = 0;  ///< thread-count invariant (structure field)
  std::uint64_t wall_ns = 0; ///< host/thread dependent (timing field)
};

/// Per-lane utilization totals (lane 0 is the submitting thread).
struct WorkerTotal {
  std::uint64_t tasks = 0;
  std::uint64_t busy_ns = 0;
};

/// One shard-task execution on a worker lane.
struct TaskEvent {
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  LaunchID launch = kInvalidLaunch;
  FieldID field = 0;
  std::uint32_t shard = 0;
};

/// Everything the cold report builders derive; see profile.cc for the
/// formulas.  Populated (and meaningful) only when the profiler ran.
struct ProfileReport {
  std::uint64_t wall_ns = 0;        ///< measured analysis wall time
  std::uint64_t parallel_ns = 0;    ///< ShardScan phases
  std::uint64_t merge_ns = 0;       ///< Merge phases
  std::uint64_t provenance_ns = 0;  ///< Provenance phases
  std::uint64_t combine_ns = 0;     ///< Combine phases (reduction folds)
  std::uint64_t other_ns = 0;       ///< Other phases
  std::uint64_t unattributed_ns = 0;
  double coverage = 0;          ///< attributed / wall
  double serial_fraction = 0;   ///< (serial + unattributed) share
  double amdahl_max_speedup = 0;
  std::uint64_t critical_path_ns = 0;
  std::vector<PhaseTotal> phases; ///< sorted by (kind, label)
  std::vector<WorkerTotal> workers;
  std::uint64_t groups = 0;
  std::uint64_t group_tasks = 0;
  std::uint64_t group_wall_ns = 0;
  std::uint64_t group_max_ns = 0; ///< sum over groups of the longest task
  std::uint64_t group_task_ns = 0;
  std::vector<std::pair<std::string, ContentionStats>> locks;
  std::uint64_t events_dropped = 0;
};

#if VISRT_PROFILE

/// A std::mutex that counts acquisitions and contended waits.  The fast
/// path is one relaxed increment plus try_lock; only a *contended*
/// acquisition pays two clock reads.  Contended acquisitions are also
/// appended (bounded, while already holding the lock) to a sample ring
/// for the profile trace's contention counter tracks.  Satisfies
/// BasicLockable, so lock_guard/unique_lock/condition_variable_any work.
class TimedMutex {
public:
  void lock() {
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    if (mu_.try_lock()) return;
    const std::uint64_t t0 = prof_now_ns();
    mu_.lock();
    const std::uint64_t waited = prof_now_ns() - t0;
    contended_.fetch_add(1, std::memory_order_relaxed);
    wait_total_.fetch_add(waited, std::memory_order_relaxed);
    std::uint64_t prev = wait_max_.load(std::memory_order_relaxed);
    while (waited > prev &&
           !wait_max_.compare_exchange_weak(prev, waited,
                                            std::memory_order_relaxed)) {
    }
    if (samples_.size() < kMaxSamples)
      samples_.push_back(ContentionSample{t0, waited});
  }

  bool try_lock() {
    if (!mu_.try_lock()) return false;
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  void unlock() { mu_.unlock(); }

  ContentionStats stats() const {
    ContentionStats s;
    s.acquisitions = acquisitions_.load(std::memory_order_relaxed);
    s.contended = contended_.load(std::memory_order_relaxed);
    s.wait_total_ns = wait_total_.load(std::memory_order_relaxed);
    s.wait_max_ns = wait_max_.load(std::memory_order_relaxed);
    return s;
  }

  /// Contended-acquisition samples; read only once the lock's users have
  /// quiesced (post-run).
  const std::vector<ContentionSample>& samples() const { return samples_; }

  /// The underlying mutex, for condition-variable waits.  Acquisitions
  /// made through it bypass the accounting above on purpose: a worker
  /// blocked on "is there work?" is *idle*, not contending, and charging
  /// those waits here would both distort the contention report and put a
  /// condition_variable_any (with its per-wait internal locking) on the
  /// pool's hottest path.
  std::mutex& raw() { return mu_; }

private:
  static constexpr std::size_t kMaxSamples = 4096;
  std::mutex mu_;
  std::atomic<std::uint64_t> acquisitions_{0};
  std::atomic<std::uint64_t> contended_{0};
  std::atomic<std::uint64_t> wait_total_{0};
  std::atomic<std::uint64_t> wait_max_{0};
  std::vector<ContentionSample> samples_; ///< appended under mu_
};

/// The profiler.  One instance per Runtime; disabled (the default) every
/// hook is a single branch.  enable() must precede the first hook (the
/// runtime enables it before creating the executor).
class Profiler {
public:
  bool enabled() const { return enabled_; }
  void enable() { enabled_ = true; }

  /// Attribute `wall_ns` of wall time to the site (kind, label).
  /// Callable from any thread (engines run on worker lanes).
  void phase(PhaseKind kind, std::string_view label, std::uint64_t wall_ns) {
    if (!enabled_) return;
    phase_ns_total_.fetch_add(wall_ns, std::memory_order_relaxed);
    std::lock_guard<TimedMutex> lock(phase_mu_);
    PhaseTotal& t = phase_slot_locked(kind, label);
    ++t.events;
    t.wall_ns += wall_ns;
  }

  /// Running sum of all phase wall time recorded so far.  Snapshot before
  /// and after a section to compute its *self* time (section wall minus
  /// the phase time its callees recorded) -- the runtime attributes its
  /// fork/join fan-out glue this way without double-counting the engine
  /// phases that run inside the forked bodies.
  std::uint64_t phase_ns_snapshot() const {
    return phase_ns_total_.load(std::memory_order_relaxed);
  }

  /// One shard task ran on `lane` (0 = submitter).  Called by
  /// Executor::run_some before the group's done-counter increment, so the
  /// join's release/acquire chain orders these writes before any
  /// post-join read.
  void task_event(unsigned lane, TaskTag tag, std::uint32_t shard,
                  std::uint64_t begin_ns, std::uint64_t end_ns) {
    if (!enabled_) return;
    if (lane >= kMaxLanes) {
      events_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Lane& ln = lanes_[lane];
    ln.tasks.fetch_add(1, std::memory_order_relaxed);
    ln.busy_ns.fetch_add(end_ns - begin_ns, std::memory_order_relaxed);
    // Single writer per lane (a lane is one thread), so the event log
    // needs no lock; bounded so long runs stay bounded.
    if (ln.events.size() < kMaxTaskEvents) {
      ln.events.push_back(
          TaskEvent{begin_ns, end_ns, tag.launch, tag.field, shard});
    } else {
      events_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// One fork/join group finished: `n` tasks, `wall_ns` from submit to
  /// join, the longest single task and the summed task time.  Called by
  /// the submitting lane after the join.
  void group_complete(std::uint32_t n, std::uint64_t wall_ns,
                      std::uint64_t max_task_ns, std::uint64_t sum_task_ns) {
    if (!enabled_) return;
    groups_.fetch_add(1, std::memory_order_relaxed);
    group_tasks_.fetch_add(n, std::memory_order_relaxed);
    group_wall_ns_.fetch_add(wall_ns, std::memory_order_relaxed);
    group_max_ns_.fetch_add(max_task_ns, std::memory_order_relaxed);
    group_task_ns_.fetch_add(sum_task_ns, std::memory_order_relaxed);
  }

  /// Register a serialization point for contention reporting.  `mu` must
  /// outlive the profiler's reports (both live on the Runtime).
  void add_lock(std::string name, const TimedMutex* mu);

  // ----- cold accessors (profile.cc); call after the run has quiesced.

  /// Derive the full report.  `analysis_wall_ns` is the measured wall
  /// time being attributed (RunStats::analysis_wall_s).
  ProfileReport report(std::uint64_t analysis_wall_ns) const;

  /// Deterministic half: {"phases":[{"kind","label","events"}...]} —
  /// byte-identical across thread counts.
  std::string structure_json() const;
  /// Host/thread-dependent half: phase wall times, serial fraction,
  /// Amdahl bound, critical path, workers, groups, locks.
  std::string timing_json(std::uint64_t analysis_wall_ns,
                          unsigned threads) const;
  /// Full schema-v1 report: {"schema_version":1,"enabled":...,
  /// "structure":{...},"timing":{...}}.
  std::string json(std::uint64_t analysis_wall_ns, unsigned threads) const;

  /// Chrome-trace (Perfetto JSON array) view: one thread row per worker
  /// lane with the shard-task events, plus one cumulative lock-wait
  /// counter track per registered TimedMutex.  Wall-clock microseconds,
  /// relative to the earliest event.
  void write_chrome_trace(std::ostream& os) const;

private:
  static constexpr unsigned kMaxLanes = 64;
  static constexpr std::size_t kMaxTaskEvents = 1u << 16;

  struct Lane {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> busy_ns{0};
    std::vector<TaskEvent> events;
  };

  PhaseTotal& phase_slot_locked(PhaseKind kind, std::string_view label);

  bool enabled_ = false;
  /// Guards phases_ and phase_ids_.  A TimedMutex so the profiler's own
  /// serialization shows up in its contention report ("profiler.phases").
  mutable TimedMutex phase_mu_;
  std::atomic<std::uint64_t> phase_ns_total_{0};
  std::vector<PhaseTotal> phases_;
  std::unordered_map<std::string, std::size_t> phase_ids_;
  Lane lanes_[kMaxLanes];
  std::atomic<std::uint64_t> groups_{0};
  std::atomic<std::uint64_t> group_tasks_{0};
  std::atomic<std::uint64_t> group_wall_ns_{0};
  std::atomic<std::uint64_t> group_max_ns_{0};
  std::atomic<std::uint64_t> group_task_ns_{0};
  std::atomic<std::uint64_t> events_dropped_{0};
  std::vector<std::pair<std::string, const TimedMutex*>> locks_;
};

#else // !VISRT_PROFILE — constexpr stubs; no timing, no symbols.

class TimedMutex {
public:
  void lock() { mu_.lock(); }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }
  ContentionStats stats() const { return {}; }
  const std::vector<ContentionSample>& samples() const {
    static const std::vector<ContentionSample> empty;
    return empty;
  }
  std::mutex& raw() { return mu_; }

private:
  std::mutex mu_;
};

class Profiler {
public:
  constexpr bool enabled() const { return false; }
  void enable() {}
  void phase(PhaseKind, std::string_view, std::uint64_t) {}
  std::uint64_t phase_ns_snapshot() const { return 0; }
  void task_event(unsigned, TaskTag, std::uint32_t, std::uint64_t,
                  std::uint64_t) {}
  void group_complete(std::uint32_t, std::uint64_t, std::uint64_t,
                      std::uint64_t) {}
  void add_lock(std::string, const TimedMutex*) {}
  ProfileReport report(std::uint64_t) const { return {}; }
  std::string structure_json() const { return "{\"phases\":[]}"; }
  std::string timing_json(std::uint64_t, unsigned) const { return "{}"; }
  std::string json(std::uint64_t, unsigned) const {
    return "{\"schema_version\":1,\"enabled\":false}";
  }
  void write_chrome_trace(std::ostream&) const {}
};

#endif // VISRT_PROFILE

/// RAII phase attribution: measures the enclosed scope's wall time and
/// adds it to (kind, label).  With a null or disabled profiler (or a
/// stubbed build) construction and destruction cost one branch each and
/// no clock reads.
class ScopedPhase {
public:
  ScopedPhase(Profiler* profiler, PhaseKind kind, std::string_view label) {
    if (profiler == nullptr || !profiler->enabled()) return;
    profiler_ = profiler;
    kind_ = kind;
    label_ = label;
    begin_ns_ = prof_now_ns();
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  ~ScopedPhase() {
    if (profiler_ == nullptr) return;
    profiler_->phase(kind_, label_, prof_now_ns() - begin_ns_);
  }

private:
  Profiler* profiler_ = nullptr;
  PhaseKind kind_ = PhaseKind::Other;
  std::string_view label_;
  std::uint64_t begin_ns_ = 0;
};

} // namespace visrt::obs
