// visrt/obs/recorder.h
//
// The telemetry recorder: a low-overhead span/event log plus bounded
// counter time-series, populated by the runtime and the coherence engines
// while a run executes.
//
//   - Spans mark one unit of analysis on the launch clock: the runtime
//     opens a Launch span per task launch with Materialize/Commit children
//     per region requirement, and each engine opens Phase spans around its
//     internal phases (history walk, composite capture, eqset refine, BVH
//     traversal).  Every span captures the AnalysisCounters delta of the
//     work performed inside it.
//   - Counter time-series sample run-state gauges (live equivalence sets,
//     composite views, history entries, messages, per-node analysis busy
//     time) at launch granularity into bounded ring buffers.
//
// When the recorder is disabled (the default) every hook folds to a single
// branch on `enabled()`: no allocation, no counter snapshots, no samples.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "obs/counters.h"

namespace visrt::obs {

using SpanID = std::uint32_t;
inline constexpr SpanID kInvalidSpan = std::numeric_limits<SpanID>::max();

enum class SpanKind : std::uint8_t { Launch, Materialize, Commit, Phase };

const char* span_kind_name(SpanKind kind);

/// One closed span.  `counters` is the analysis work performed between
/// begin and end (including work attributed to remote owners).
struct Span {
  SpanKind kind = SpanKind::Phase;
  std::string name;             ///< task name or phase label
  SpanID parent = kInvalidSpan; ///< enclosing span, if any
  LaunchID launch = kInvalidLaunch;
  NodeID node = 0;              ///< analyzing node
  AnalysisCounters counters;
};

/// One sample of a counter series, positioned on the launch clock (launch
/// ids are the paper's global analysis clock).
struct SeriesSample {
  LaunchID launch = 0;
  double value = 0;
};

/// Summary statistics over the retained window of one series.
struct SeriesSummary {
  std::uint64_t count = 0; ///< samples ever pushed (not just retained)
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double last = 0;
};

/// Bounded ring buffer of launch-indexed samples for one counter.  Once
/// `capacity` samples are retained the oldest are overwritten, so memory
/// stays constant for arbitrarily long runs.
class CounterSeries {
public:
  CounterSeries(std::string name, std::size_t capacity);

  const std::string& name() const { return name_; }
  std::size_t capacity() const { return capacity_; }
  void push(LaunchID launch, double value);

  /// Samples retained (<= capacity).
  std::size_t size() const { return ring_.size(); }
  /// Samples ever pushed.
  std::uint64_t total() const { return total_; }
  /// i-th retained sample, oldest first.
  const SeriesSample& at(std::size_t i) const;

  SeriesSummary summarize() const;

private:
  std::string name_;
  std::size_t capacity_;
  std::vector<SeriesSample> ring_;
  std::size_t head_ = 0; ///< overwrite position once the ring is full
  std::uint64_t total_ = 0;
};

class Recorder {
public:
  bool enabled() const { return enabled_; }

  /// Turn recording on.  Must be called before any spans/samples; the
  /// limits apply to series created afterwards.
  void enable();
  void set_series_capacity(std::size_t capacity);
  void set_max_spans(std::size_t max_spans);

  /// Open a span; returns kInvalidSpan when disabled or at the span cap
  /// (end_span on the result is then a no-op, but must still be called to
  /// balance the nesting stack).
  SpanID begin_span(SpanKind kind, std::string_view name, LaunchID launch,
                    NodeID node);
  /// Close the innermost open span, attributing `work` to it.
  void end_span(SpanID id, const AnalysisCounters& work);

  /// Find-or-create a series.  Ids are stable for the recorder's lifetime.
  std::size_t series_id(std::string_view name);
  void sample(std::size_t series, LaunchID launch, double value);

  const std::vector<Span>& spans() const { return spans_; }
  std::uint64_t spans_dropped() const { return dropped_; }
  std::size_t series_count() const { return series_.size(); }
  const CounterSeries& series(std::size_t id) const { return series_[id]; }

private:
  bool enabled_ = false;
  std::size_t series_capacity_ = 4096;
  std::size_t max_spans_ = 1u << 20;
  std::vector<Span> spans_;
  std::vector<SpanID> open_; ///< stack of open spans (kInvalidSpan = dropped)
  std::uint64_t dropped_ = 0;
  std::vector<CounterSeries> series_;
  std::unordered_map<std::string, std::size_t> series_ids_;
};

/// RAII span that captures the counter delta of the code it encloses.
///
/// `local` (optional) points at the accumulator the enclosed code
/// increments directly; `steps` (optional) points at the step vector the
/// enclosed code appends attributed work to.  On destruction the span's
/// counters are (local now - local at begin) + sum of counters of steps
/// appended since begin.  With a null/disabled recorder construction and
/// destruction cost one branch each.
class ScopedSpan {
public:
  ScopedSpan(Recorder* recorder, SpanKind kind, std::string_view name,
             LaunchID launch, NodeID node,
             const AnalysisCounters* local = nullptr,
             const std::vector<AnalysisStep>* steps = nullptr)
      : local_(local), steps_(steps) {
    if (recorder == nullptr || !recorder->enabled()) return;
    recorder_ = recorder;
    if (local_ != nullptr) local_begin_ = *local_;
    if (steps_ != nullptr) steps_begin_ = steps_->size();
    id_ = recorder_->begin_span(kind, name, launch, node);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (recorder_ == nullptr) return;
    AnalysisCounters work;
    if (local_ != nullptr) work += *local_ - local_begin_;
    if (steps_ != nullptr) {
      for (std::size_t i = steps_begin_; i < steps_->size(); ++i)
        work += (*steps_)[i].counters;
    }
    recorder_->end_span(id_, work);
  }

private:
  Recorder* recorder_ = nullptr;
  SpanID id_ = kInvalidSpan;
  const AnalysisCounters* local_;
  const std::vector<AnalysisStep>* steps_;
  AnalysisCounters local_begin_;
  std::size_t steps_begin_ = 0;
};

} // namespace visrt::obs
