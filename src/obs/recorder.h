// visrt/obs/recorder.h
//
// The telemetry recorder: a low-overhead span/event log plus bounded
// counter time-series, populated by the runtime and the coherence engines
// while a run executes.
//
//   - Spans mark one unit of analysis on the launch clock: the runtime
//     opens a Launch span per task launch with Materialize/Commit children
//     per region requirement, and each engine opens Phase spans around its
//     internal phases (history walk, composite capture, eqset refine, BVH
//     traversal).  Every span captures the AnalysisCounters delta of the
//     work performed inside it.
//   - Counter time-series sample run-state gauges (live equivalence sets,
//     composite views, history entries, messages, per-node analysis busy
//     time) at launch granularity into bounded ring buffers.
//
// When the recorder is disabled (the default) every hook folds to a single
// branch on `enabled()`: no allocation, no counter snapshots, no samples.
//
// Concurrency: begin_span/end_span/sample/series_id are safe to call from
// multiple threads at once (the runtime shards a launch's analysis across
// an Executor, so engines emit spans from worker lanes).  Span nesting is
// tracked per thread — a worker's first span adopts the submitted
// `parent_hint` (the enclosing Launch span) instead of whatever happens to
// be open on another lane.  Every span carries a globally monotonic
// `stamp` assigned at begin, so interleaved emission still serializes in a
// well-defined order.  The read accessors (spans(), series()) are meant
// for after the run, when no emission is in flight.
//
// Hot path: span emission writes only the calling thread's own buffer
// (one atomic stamp fetch_add is the sole shared write), so worker lanes
// never contend on a global recorder lock — the PR-4 profiler showed the
// old single-mutex design serializing the sharded scans.  The per-thread
// logs are merged (sorted by stamp) lazily when spans() is first read
// after new emission; series keep a shared TimedMutex because samples are
// per-launch (rare) and the ring/id maps want a coherent order anyway.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "obs/counters.h"
#include "obs/profile.h"

namespace visrt::obs {

using SpanID = std::uint32_t;
inline constexpr SpanID kInvalidSpan = std::numeric_limits<SpanID>::max();

enum class SpanKind : std::uint8_t { Launch, Materialize, Commit, Phase };

const char* span_kind_name(SpanKind kind);

/// One closed span.  `counters` is the analysis work performed between
/// begin and end (including work attributed to remote owners).
struct Span {
  SpanKind kind = SpanKind::Phase;
  std::string name;             ///< task name or phase label
  SpanID parent = kInvalidSpan; ///< enclosing span, if any
  LaunchID launch = kInvalidLaunch;
  NodeID node = 0;              ///< analyzing node
  /// Globally monotonic begin-order stamp (0, 1, 2, ... across all
  /// threads); spans_[i].stamp == i by construction, which the concurrent
  /// serialization test pins down.
  std::uint64_t stamp = 0;
  AnalysisCounters counters;
};

/// One sample of a counter series, positioned on the launch clock (launch
/// ids are the paper's global analysis clock).
struct SeriesSample {
  LaunchID launch = 0;
  double value = 0;
};

/// Summary statistics over the retained window of one series.
struct SeriesSummary {
  std::uint64_t count = 0; ///< samples ever pushed (not just retained)
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double last = 0;
};

/// Bounded ring buffer of launch-indexed samples for one counter.  Once
/// `capacity` samples are retained the oldest are overwritten, so memory
/// stays constant for arbitrarily long runs.
class CounterSeries {
public:
  CounterSeries(std::string name, std::size_t capacity);

  const std::string& name() const { return name_; }
  std::size_t capacity() const { return capacity_; }
  void push(LaunchID launch, double value);

  /// Samples retained (<= capacity).
  std::size_t size() const { return ring_.size(); }
  /// Samples ever pushed.
  std::uint64_t total() const { return total_; }
  /// i-th retained sample, oldest first.
  const SeriesSample& at(std::size_t i) const;

  SeriesSummary summarize() const;

private:
  std::string name_;
  std::size_t capacity_;
  std::vector<SeriesSample> ring_;
  std::size_t head_ = 0; ///< overwrite position once the ring is full
  std::uint64_t total_ = 0;
};

class Recorder {
public:
  bool enabled() const { return enabled_; }

  /// Turn recording on.  Must be called before any spans/samples; the
  /// limits apply to series created afterwards.
  void enable();
  void set_series_capacity(std::size_t capacity);
  void set_max_spans(std::size_t max_spans);

  /// Open a span; returns kInvalidSpan when disabled or at the span cap
  /// (end_span on the result is then a no-op, but must still be called to
  /// balance the nesting stack).  The parent is the calling thread's
  /// innermost open span; when the thread has none, `parent_hint` (the
  /// span the submitting thread had open at fork time) is adopted so
  /// worker-side spans still nest under their launch.
  SpanID begin_span(SpanKind kind, std::string_view name, LaunchID launch,
                    NodeID node, SpanID parent_hint = kInvalidSpan);
  /// Close the calling thread's innermost open span, attributing `work`
  /// to it.
  void end_span(SpanID id, const AnalysisCounters& work);

  /// Find-or-create a series.  Ids are stable for the recorder's lifetime.
  std::size_t series_id(std::string_view name);
  void sample(std::size_t series, LaunchID launch, double value);

  /// All recorded spans in stamp order (spans()[i].stamp == i).  Merges
  /// the per-thread logs on first read after new emission; like every
  /// read accessor it requires emission to have quiesced (threads joined).
  const std::vector<Span>& spans() const {
    if (spans_dirty_.load(std::memory_order_relaxed)) merge_spans();
    return merged_;
  }
  std::uint64_t spans_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t series_count() const { return series_.size(); }
  const CounterSeries& series(std::size_t id) const { return series_[id]; }

  /// Contention stats source for the series/merge lock (register with a
  /// Profiler via add_lock).
  const TimedMutex& series_mutex() const { return mu_; }

private:
  /// One thread's slice of the span log: records in local emission order
  /// plus the thread's open-span stack (span id, index into `log`;
  /// id == kInvalidSpan marks a span dropped at the cap).
  struct ThreadSpans {
    std::vector<Span> log;
    std::vector<std::pair<SpanID, std::size_t>> open;
  };

  void merge_spans() const;

  bool enabled_ = false;
  std::size_t series_capacity_ = 4096;
  std::size_t max_spans_ = 1u << 20;
  /// Span emission is per-thread: the stamp counter is the only shared
  /// write on the begin/end path.  A stamp is also the span's id; stamps
  /// at or past max_spans_ are dropped, keeping recorded stamps dense.
  PerThread<ThreadSpans> threads_;
  std::atomic<std::uint64_t> next_stamp_{0};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::atomic<bool> spans_dirty_{false};
  /// Guards series_/series_ids_ and the merged-span cache.  TimedMutex so
  /// the remaining shared lock is visible in contention reports.
  mutable TimedMutex mu_;
  mutable std::vector<Span> merged_;
  std::vector<CounterSeries> series_;
  std::unordered_map<std::string, std::size_t> series_ids_;
};

/// Serialize every recorded span, in stamp order, as a JSON array:
///   [{"stamp":0,"kind":"launch","name":...,"parent":null|id,
///     "launch":...,"node":...,"counters":{...nonzero only...}}, ...]
/// Used by the metrics sink and the concurrent-emission regression test.
std::string spans_json(const Recorder& recorder);

/// RAII span that captures the counter delta of the code it encloses.
///
/// `local` (optional) points at the accumulator the enclosed code
/// increments directly; `steps` (optional) points at the step vector the
/// enclosed code appends attributed work to.  On destruction the span's
/// counters are (local now - local at begin) + sum of counters of steps
/// appended since begin.  With a null/disabled recorder construction and
/// destruction cost one branch each.
class ScopedSpan {
public:
  ScopedSpan(Recorder* recorder, SpanKind kind, std::string_view name,
             LaunchID launch, NodeID node,
             const AnalysisCounters* local = nullptr,
             const std::vector<AnalysisStep>* steps = nullptr,
             SpanID parent_hint = kInvalidSpan)
      : local_(local), steps_(steps) {
    if (recorder == nullptr || !recorder->enabled()) return;
    recorder_ = recorder;
    if (local_ != nullptr) local_begin_ = *local_;
    if (steps_ != nullptr) steps_begin_ = steps_->size();
    id_ = recorder_->begin_span(kind, name, launch, node, parent_hint);
  }

  /// Id of the opened span (kInvalidSpan when disabled/dropped); pass as
  /// parent_hint to spans opened on other lanes inside this one.
  SpanID id() const { return id_; }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (recorder_ == nullptr) return;
    AnalysisCounters work;
    if (local_ != nullptr) work += *local_ - local_begin_;
    if (steps_ != nullptr) {
      for (std::size_t i = steps_begin_; i < steps_->size(); ++i)
        work += (*steps_)[i].counters;
    }
    recorder_->end_span(id_, work);
  }

private:
  Recorder* recorder_ = nullptr;
  SpanID id_ = kInvalidSpan;
  const AnalysisCounters* local_;
  const std::vector<AnalysisStep>* steps_;
  AnalysisCounters local_begin_;
  std::size_t steps_begin_ = 0;
};

} // namespace visrt::obs
