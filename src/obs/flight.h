// visrt/obs/flight.h
//
// Always-on flight recorder: a fixed-size per-thread ring of recent
// structured events (launch ids, retire epochs, session transitions,
// check-failure breadcrumbs) that costs a handful of relaxed atomic
// stores per event, plus the crash-dump machinery that makes the rings
// useful post-mortem:
//
//   - flight_record(kind, a, b) on the hot paths (session apply loop,
//     retirement, server connection lifecycle),
//   - a visrt::check failure hook and fatal-signal handlers
//     (flight_arm_crash_dumps) that merge every thread's ring, attach
//     the process context (histograms + active-session summaries via a
//     registered provider) and write a timestamped JSON dump, so a soak
//     run or a future multi-process worker that dies without a
//     reproducer still leaves its last ~few-thousand events behind.
//
// Concurrency contract: each ring has exactly one writer (its thread);
// readers (flight_snapshot, the dump path) load the per-slot atomics
// and may observe a torn slot mid-overwrite — acceptable for a
// best-effort crash artifact, and tsan-clean because every slot field
// is individually atomic.  Ordering across threads comes from a global
// sequence counter stamped into each event.
//
// With -DVISRT_FLIGHT=OFF everything here folds to constexpr no-op
// stubs: no rings, no handlers, no symbols in the binary (the CI
// flight-off leg asserts this with `nm`).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef VISRT_FLIGHT
#define VISRT_FLIGHT 1
#endif

namespace visrt::obs {

/// Compile-time switch mirroring kProfileEnabled: with
/// -DVISRT_FLIGHT=OFF this is false and every hook folds away.
inline constexpr bool kFlightEnabled = VISRT_FLIGHT != 0;

/// What happened.  The two payload words `a`/`b` are kind-specific:
///   Launch        a = launch id              b = statements applied so far
///   RetireEpoch   a = retire-call ordinal    b = resident launches after
///   SessionBegin  a = 0                      b = 0
///   SessionEnd    a = launches ingested      b = statements applied
///   Control       a = control line length    b = reply bytes
///   CheckFailure  a = last launch id recorded process-wide  b = 0
enum class FlightKind : std::uint32_t {
  Launch = 0,
  RetireEpoch,
  SessionBegin,
  SessionEnd,
  Control,
  CheckFailure,
};

inline const char* flight_kind_name(FlightKind kind) {
  switch (kind) {
  case FlightKind::Launch: return "launch";
  case FlightKind::RetireEpoch: return "retire_epoch";
  case FlightKind::SessionBegin: return "session_begin";
  case FlightKind::SessionEnd: return "session_end";
  case FlightKind::Control: return "control";
  case FlightKind::CheckFailure: return "check_failure";
  }
  return "?";
}

/// One merged event as read back out of the rings.
struct FlightEvent {
  std::uint64_t seq = 0; ///< global order (1-based; 0 = empty slot)
  std::uint64_t ns = 0;  ///< prof_now_ns at record time
  FlightKind kind = FlightKind::Launch;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Context the dump attaches beside the events: the serving layer
/// registers a provider that serializes live histograms and
/// active-session summaries.  Must return a complete JSON value and be
/// callable from any thread at any time (it runs during crash
/// handling).
using FlightContextProvider = std::string (*)();

#if VISRT_FLIGHT

/// Append one event to the calling thread's ring (wait-free: a global
/// seq fetch_add plus five relaxed stores; overwrites the oldest slot
/// once the ring is full).
void flight_record(FlightKind kind, std::uint64_t a = 0, std::uint64_t b = 0);

/// Merge every thread's ring into one seq-ordered event list.
/// Best-effort under concurrent writers (see the header comment).
std::vector<FlightEvent> flight_snapshot();

/// Register the process context provider (nullptr to clear).
void flight_set_context_provider(FlightContextProvider provider);

/// Serialize reason + merged events + context as the dump JSON document
/// ({"schema_version":1,"reason":...,"pid":...,"events":[...],
/// "context":...}).  Exposed separately from flight_dump so tests can
/// validate the document without touching the filesystem.
std::string flight_dump_json(std::string_view reason);

/// Write a dump to `dir` (empty = current directory) as
/// visrt-flight-<epoch_ms>-<pid>.json.  Returns the path, or empty on
/// I/O failure.  Safe to call at any time, not just during crashes.
std::string flight_dump(std::string_view reason, std::string_view dir);

/// Path written by the most recent successful flight_dump (empty if
/// none).  Lets the post-abort parent locate the artifact.
std::string flight_last_dump_path();

/// Arm crash dumps: install the visrt::check failure hook and fatal
/// signal handlers (SEGV/BUS/FPE/ILL/ABRT) that write one dump to `dir`
/// before the process dies.  At most one dump is written per process no
/// matter how many threads crash.  Idempotent; later calls update the
/// directory.
void flight_arm_crash_dumps(std::string_view dir);

#else // !VISRT_FLIGHT — constexpr stubs; no rings, no symbols.

inline void flight_record(FlightKind, std::uint64_t = 0, std::uint64_t = 0) {}
inline std::vector<FlightEvent> flight_snapshot() { return {}; }
inline void flight_set_context_provider(FlightContextProvider) {}
inline std::string flight_dump_json(std::string_view) { return "{}"; }
inline std::string flight_dump(std::string_view, std::string_view) {
  return {};
}
inline std::string flight_last_dump_path() { return {}; }
inline void flight_arm_crash_dumps(std::string_view) {}

#endif // VISRT_FLIGHT

} // namespace visrt::obs
