#include "obs/profile.h"

#if VISRT_PROFILE

#include <algorithm>
#include <ostream>
#include <sstream>

#include "obs/metrics.h"

namespace visrt::obs {

PhaseTotal& Profiler::phase_slot_locked(PhaseKind kind,
                                        std::string_view label) {
  // Keyed by label alone: a label always carries one kind (the call sites
  // are literals), so the composite key would only duplicate bytes.
  auto it = phase_ids_.find(std::string(label));
  if (it != phase_ids_.end()) return phases_[it->second];
  std::size_t id = phases_.size();
  PhaseTotal t;
  t.kind = kind;
  t.label.assign(label);
  phases_.push_back(std::move(t));
  phase_ids_.emplace(std::string(label), id);
  return phases_[id];
}

void Profiler::add_lock(std::string name, const TimedMutex* mu) {
  locks_.emplace_back(std::move(name), mu);
}

ProfileReport Profiler::report(std::uint64_t analysis_wall_ns) const {
  ProfileReport r;
  r.wall_ns = analysis_wall_ns;
  {
    std::lock_guard<TimedMutex> lock(phase_mu_);
    r.phases = phases_;
  }
  // Deterministic order: kind, then label.  Insertion order depends on
  // which thread created a slot first.
  std::sort(r.phases.begin(), r.phases.end(),
            [](const PhaseTotal& a, const PhaseTotal& b) {
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.label < b.label;
            });
  for (const PhaseTotal& p : r.phases) {
    switch (p.kind) {
    case PhaseKind::ShardScan: r.parallel_ns += p.wall_ns; break;
    case PhaseKind::Merge: r.merge_ns += p.wall_ns; break;
    case PhaseKind::Provenance: r.provenance_ns += p.wall_ns; break;
    case PhaseKind::Combine: r.combine_ns += p.wall_ns; break;
    case PhaseKind::Other: r.other_ns += p.wall_ns; break;
    }
  }
  const std::uint64_t serial_ns =
      r.merge_ns + r.provenance_ns + r.combine_ns + r.other_ns;
  const std::uint64_t attributed = r.parallel_ns + serial_ns;
  r.unattributed_ns =
      analysis_wall_ns > attributed ? analysis_wall_ns - attributed : 0;
  r.coverage = analysis_wall_ns > 0
                   ? static_cast<double>(attributed) /
                         static_cast<double>(analysis_wall_ns)
                   : 0.0;
  // Serial fraction over the attributed+unattributed total: phases on
  // concurrent field groups can overlap, so sums may exceed the measured
  // wall; normalizing by the same sum keeps the fraction in [0, 1].
  // Unattributed time is charged as serial (it is the sequential glue of
  // launch() between the instrumented sections) — conservative for the
  // Amdahl bound.
  const std::uint64_t denom = attributed + r.unattributed_ns;
  r.serial_fraction =
      denom > 0
          ? static_cast<double>(serial_ns + r.unattributed_ns) /
                static_cast<double>(denom)
          : 0.0;
  r.amdahl_max_speedup =
      r.serial_fraction > 0 ? 1.0 / r.serial_fraction : 0.0;
  for (unsigned lane = 0; lane < kMaxLanes; ++lane) {
    const Lane& ln = lanes_[lane];
    WorkerTotal w;
    w.tasks = ln.tasks.load(std::memory_order_relaxed);
    w.busy_ns = ln.busy_ns.load(std::memory_order_relaxed);
    r.workers.push_back(w);
  }
  while (!r.workers.empty() && r.workers.back().tasks == 0)
    r.workers.pop_back();
  r.groups = groups_.load(std::memory_order_relaxed);
  r.group_tasks = group_tasks_.load(std::memory_order_relaxed);
  r.group_wall_ns = group_wall_ns_.load(std::memory_order_relaxed);
  r.group_max_ns = group_max_ns_.load(std::memory_order_relaxed);
  r.group_task_ns = group_task_ns_.load(std::memory_order_relaxed);
  // Critical-path estimate: replace every fork/join group's elapsed time
  // with its longest single task — what a perfectly load-balanced,
  // zero-overhead pool would pay — and keep everything else as measured.
  const std::uint64_t collapsed =
      analysis_wall_ns > r.group_wall_ns
          ? analysis_wall_ns - r.group_wall_ns + r.group_max_ns
          : r.group_max_ns;
  r.critical_path_ns = collapsed;
  r.locks.emplace_back("profiler.phases", phase_mu_.stats());
  for (const auto& [name, mu] : locks_)
    r.locks.emplace_back(name, mu->stats());
  r.events_dropped = events_dropped_.load(std::memory_order_relaxed);
  return r;
}

std::string Profiler::structure_json() const {
  // Only thread-count-invariant fields: phase kinds, labels and event
  // counts.  Every instrumentation site runs a fixed number of times per
  // requirement regardless of sharding, so this half is byte-identical
  // across --threads (profile_test pins it).
  std::vector<PhaseTotal> phases;
  {
    std::lock_guard<TimedMutex> lock(phase_mu_);
    phases = phases_;
  }
  std::sort(phases.begin(), phases.end(),
            [](const PhaseTotal& a, const PhaseTotal& b) {
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.label < b.label;
            });
  std::ostringstream os;
  os << "{\"phases\":[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i != 0) os << ",";
    os << "{\"kind\":\"" << phase_kind_name(phases[i].kind)
       << "\",\"label\":\"" << json_escape(phases[i].label)
       << "\",\"events\":" << phases[i].events << "}";
  }
  os << "]}";
  return os.str();
}

std::string Profiler::timing_json(std::uint64_t analysis_wall_ns,
                                  unsigned threads) const {
  const ProfileReport r = report(analysis_wall_ns);
  std::ostringstream os;
  os << "{\"threads\":" << threads << ",\"wall_ns\":" << r.wall_ns
     << ",\"parallel_ns\":" << r.parallel_ns
     << ",\"merge_ns\":" << r.merge_ns
     << ",\"provenance_ns\":" << r.provenance_ns
     << ",\"combine_ns\":" << r.combine_ns
     << ",\"other_ns\":" << r.other_ns
     << ",\"unattributed_ns\":" << r.unattributed_ns
     << ",\"coverage\":" << json_number(r.coverage)
     << ",\"serial_fraction\":" << json_number(r.serial_fraction)
     << ",\"amdahl_max_speedup\":" << json_number(r.amdahl_max_speedup)
     << ",\"critical_path_ns\":" << r.critical_path_ns;
  os << ",\"phases\":[";
  for (std::size_t i = 0; i < r.phases.size(); ++i) {
    if (i != 0) os << ",";
    os << "{\"label\":\"" << json_escape(r.phases[i].label)
       << "\",\"wall_ns\":" << r.phases[i].wall_ns << "}";
  }
  os << "],\"workers\":[";
  for (std::size_t i = 0; i < r.workers.size(); ++i) {
    if (i != 0) os << ",";
    os << "{\"lane\":" << i << ",\"tasks\":" << r.workers[i].tasks
       << ",\"busy_ns\":" << r.workers[i].busy_ns << "}";
  }
  os << "],\"groups\":{\"count\":" << r.groups
     << ",\"tasks\":" << r.group_tasks << ",\"wall_ns\":" << r.group_wall_ns
     << ",\"max_task_ns\":" << r.group_max_ns
     << ",\"task_ns\":" << r.group_task_ns << "}";
  os << ",\"locks\":[";
  for (std::size_t i = 0; i < r.locks.size(); ++i) {
    const auto& [name, s] = r.locks[i];
    if (i != 0) os << ",";
    os << "{\"name\":\"" << json_escape(name)
       << "\",\"acquisitions\":" << s.acquisitions
       << ",\"contended\":" << s.contended
       << ",\"wait_total_ns\":" << s.wait_total_ns
       << ",\"wait_max_ns\":" << s.wait_max_ns << "}";
  }
  os << "],\"events_dropped\":" << r.events_dropped << "}";
  return os.str();
}

std::string Profiler::json(std::uint64_t analysis_wall_ns,
                           unsigned threads) const {
  std::ostringstream os;
  os << "{\"schema_version\":1,\"enabled\":" << (enabled_ ? "true" : "false")
     << ",\"structure\":" << structure_json()
     << ",\"timing\":" << timing_json(analysis_wall_ns, threads) << "}";
  return os.str();
}

void Profiler::write_chrome_trace(std::ostream& os) const {
  // One synthetic process for the analysis pool: tid = lane.  Timestamps
  // are wall-clock microseconds relative to the earliest recorded event,
  // so the trace starts at t=0 like the simulator traces do.
  constexpr std::uint32_t kPid = 9999;
  std::uint64_t t0 = ~std::uint64_t{0};
  for (unsigned lane = 0; lane < kMaxLanes; ++lane) {
    for (const TaskEvent& e : lanes_[lane].events)
      t0 = std::min(t0, e.begin_ns);
  }
  for (const auto& [name, mu] : locks_) {
    for (const ContentionSample& s : mu->samples())
      t0 = std::min(t0, s.at_ns);
  }
  if (t0 == ~std::uint64_t{0}) t0 = 0;
  auto us = [&](std::uint64_t ns) {
    return static_cast<double>(ns - t0) / 1000.0;
  };
  os << "[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  sep();
  os << "{\"ph\":\"M\",\"pid\":" << kPid
     << ",\"name\":\"process_name\",\"args\":{\"name\":\"analysis "
        "profiler\"}}";
  for (unsigned lane = 0; lane < kMaxLanes; ++lane) {
    const Lane& ln = lanes_[lane];
    if (ln.events.empty()) continue;
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << kPid << ",\"tid\":" << lane
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"lane "
       << lane << (lane == 0 ? " (submitter)" : "") << "\"}}";
    for (const TaskEvent& e : ln.events) {
      sep();
      os << "{\"ph\":\"X\",\"pid\":" << kPid << ",\"tid\":" << lane
         << ",\"ts\":" << json_number(us(e.begin_ns))
         << ",\"dur\":" << json_number(us(e.end_ns) - us(e.begin_ns))
         << ",\"name\":\"shard\",\"args\":{\"launch\":" << e.launch
         << ",\"field\":" << e.field << ",\"shard\":" << e.shard << "}}";
    }
  }
  // Cumulative lock-wait counter tracks (one per registered TimedMutex).
  for (const auto& [name, mu] : locks_) {
    std::uint64_t total = 0;
    for (const ContentionSample& s : mu->samples()) {
      total += s.wait_ns;
      sep();
      os << "{\"ph\":\"C\",\"pid\":" << kPid << ",\"ts\":"
         << json_number(us(s.at_ns)) << ",\"name\":\"lock_wait_ns/"
         << json_escape(name) << "\",\"args\":{\"wait_ns\":"
         << total << "}}";
    }
  }
  os << "]\n";
}

} // namespace visrt::obs

#endif // VISRT_PROFILE
