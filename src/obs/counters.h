// visrt/obs/counters.h
//
// The analysis work counters shared by every coherence engine and the
// telemetry layer.  They live below src/visibility so the observability
// subsystem (obs::Recorder spans, counter time-series, metrics export) can
// capture them without depending on the engines themselves.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "sim/cost_model.h"

namespace visrt {

/// Work counters for one analysis step; converted to CPU nanoseconds by the
/// simulator's cost model.
struct AnalysisCounters {
  std::uint64_t history_entries = 0;     ///< history entries examined
  std::uint64_t composite_child_tests = 0;
  std::uint64_t composite_captures = 0;  ///< node histories captured
  std::uint64_t eqset_refines = 0;       ///< equivalence-set splits
  std::uint64_t refine_intervals = 0;    ///< domain intervals restricted
  std::uint64_t eqset_visits = 0;        ///< equivalence sets touched
  std::uint64_t accel_nodes = 0;         ///< BVH / K-d nodes traversed
  std::uint64_t interval_ops = 0;        ///< interval-set algebra intervals
  std::uint64_t eqsets_created = 0;
  std::uint64_t eqsets_pruned = 0;

  SimTime cpu_ns(const sim::CostModel& m) const {
    return static_cast<SimTime>(
        history_entries * static_cast<std::uint64_t>(m.history_entry_ns) +
        composite_child_tests *
            static_cast<std::uint64_t>(m.composite_child_test_ns) +
        composite_captures *
            static_cast<std::uint64_t>(m.composite_capture_ns) +
        eqset_refines * static_cast<std::uint64_t>(m.eqset_refine_ns) +
        refine_intervals * static_cast<std::uint64_t>(m.refine_interval_ns) +
        eqset_visits * static_cast<std::uint64_t>(m.eqset_visit_ns) +
        accel_nodes * static_cast<std::uint64_t>(m.accel_node_ns) +
        interval_ops * static_cast<std::uint64_t>(m.interval_op_ns) +
        eqsets_created * static_cast<std::uint64_t>(m.eqset_create_ns) +
        eqsets_pruned * static_cast<std::uint64_t>(m.eqset_prune_ns));
  }

  AnalysisCounters& operator+=(const AnalysisCounters& o) {
    history_entries += o.history_entries;
    composite_child_tests += o.composite_child_tests;
    composite_captures += o.composite_captures;
    eqset_refines += o.eqset_refines;
    refine_intervals += o.refine_intervals;
    eqset_visits += o.eqset_visits;
    accel_nodes += o.accel_nodes;
    interval_ops += o.interval_ops;
    eqsets_created += o.eqsets_created;
    eqsets_pruned += o.eqsets_pruned;
    return *this;
  }

  /// Component-wise difference; operands must satisfy o <= *this
  /// component-wise (spans only ever subtract an earlier snapshot of the
  /// same accumulator).
  AnalysisCounters operator-(const AnalysisCounters& o) const {
    AnalysisCounters d;
    d.history_entries = history_entries - o.history_entries;
    d.composite_child_tests = composite_child_tests - o.composite_child_tests;
    d.composite_captures = composite_captures - o.composite_captures;
    d.eqset_refines = eqset_refines - o.eqset_refines;
    d.refine_intervals = refine_intervals - o.refine_intervals;
    d.eqset_visits = eqset_visits - o.eqset_visits;
    d.accel_nodes = accel_nodes - o.accel_nodes;
    d.interval_ops = interval_ops - o.interval_ops;
    d.eqsets_created = eqsets_created - o.eqsets_created;
    d.eqsets_pruned = eqsets_pruned - o.eqsets_pruned;
    return d;
  }

  std::uint64_t total() const {
    return history_entries + composite_child_tests + composite_captures +
           eqset_refines + refine_intervals + eqset_visits + accel_nodes +
           interval_ops + eqsets_created + eqsets_pruned;
  }
};

/// Visit each counter as ("name", value) — the single source of truth for
/// the counter catalog used by the metrics schema and trace span args.
template <typename Fn>
void for_each_counter(const AnalysisCounters& c, Fn&& fn) {
  fn("history_entries", c.history_entries);
  fn("composite_child_tests", c.composite_child_tests);
  fn("composite_captures", c.composite_captures);
  fn("eqset_refines", c.eqset_refines);
  fn("refine_intervals", c.refine_intervals);
  fn("eqset_visits", c.eqset_visits);
  fn("accel_nodes", c.accel_nodes);
  fn("interval_ops", c.interval_ops);
  fn("eqsets_created", c.eqsets_created);
  fn("eqsets_pruned", c.eqsets_pruned);
}

/// One unit of analysis work attributed to the node that owns the metadata
/// it touched.  Steps on nodes other than the analyzing node cost a
/// round-trip message pair in the simulation.
struct AnalysisStep {
  NodeID owner = 0;
  AnalysisCounters counters;
  std::uint64_t meta_bytes = 0; ///< metadata shipped back (views, histories)
  /// Equivalence set (or composite view) whose metadata this step touched,
  /// when attributable — threads through to the message ledger so remote
  /// fan-in can be traced back to the triggering set.
  EqSetID eqset = kNoEqSetID;
};

} // namespace visrt
