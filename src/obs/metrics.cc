#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/log.h"

namespace visrt::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\n': out += "\\n"; break;
    case '\r': out += "\\r"; break;
    case '\t': out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  // %g may produce "1e+05"-style exponents, which are valid JSON; the only
  // invalid outputs are nan/inf, excluded above.
  return buf;
}

void write_metrics_envelope(std::ostream& os, std::string_view binary,
                            std::span<const std::string> runs) {
  os << "{\"schema_version\":" << kMetricsSchemaVersion << ",\"binary\":\""
     << json_escape(binary) << "\",\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i > 0) os << ",";
    os << "\n" << runs[i];
  }
  os << "\n]}\n";
}

bool write_metrics_file(const std::string& path, std::string_view binary,
                        std::span<const std::string> runs) {
  std::ofstream out(path);
  if (!out) {
    Logger(LogLevel::Warning, "obs")
        << "cannot open metrics file for writing: " << path;
    return false;
  }
  write_metrics_envelope(out, binary, runs);
  return out.good();
}

} // namespace visrt::obs
