#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/log.h"
#include "runtime/runtime.h"

namespace visrt::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\n': out += "\\n"; break;
    case '\r': out += "\\r"; break;
    case '\t': out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  // %g may produce "1e+05"-style exponents, which are valid JSON; the only
  // invalid outputs are nan/inf, excluded above.
  return buf;
}

void write_metrics_envelope(std::ostream& os, std::string_view binary,
                            std::span<const std::string> runs) {
  os << "{\"schema_version\":" << kMetricsSchemaVersion << ",\"binary\":\""
     << json_escape(binary) << "\",\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i > 0) os << ",";
    os << "\n" << runs[i];
  }
  os << "\n]}\n";
}

bool write_metrics_file(const std::string& path, std::string_view binary,
                        std::span<const std::string> runs) {
  std::ofstream out(path);
  if (!out) {
    Logger(LogLevel::Warning, "obs")
        << "cannot open metrics file for writing: " << path;
    return false;
  }
  write_metrics_envelope(out, binary, runs);
  return out.good();
}

} // namespace visrt::obs

namespace visrt {

namespace {

using obs::json_escape;
using obs::json_number;

void append_series_summary(std::ostream& os, const obs::CounterSeries& cs) {
  obs::SeriesSummary s = cs.summarize();
  os << "{\"count\":" << s.count << ",\"min\":" << json_number(s.min)
     << ",\"max\":" << json_number(s.max) << ",\"p50\":" << json_number(s.p50)
     << ",\"p95\":" << json_number(s.p95)
     << ",\"last\":" << json_number(s.last) << "}";
}

} // namespace

std::string metrics_run_json(const MetricsRunInfo& info, const Runtime& rt,
                             const RunStats& stats) {
  std::ostringstream os;
  os << "{\"name\":\"" << json_escape(info.name) << "\",\"app\":\""
     << json_escape(info.app) << "\",\"algorithm\":\""
     << json_escape(info.algorithm) << "\",\"dcr\":"
     << (info.dcr ? "true" : "false") << ",\"nodes\":" << info.nodes;

  os << ",\"stats\":{"
     << "\"init_time_s\":" << json_number(stats.init_time_s)
     << ",\"total_time_s\":" << json_number(stats.total_time_s)
     << ",\"steady_iter_s\":" << json_number(stats.steady_iter_s)
     << ",\"iterations\":" << stats.iterations
     << ",\"launches\":" << stats.launches
     << ",\"dep_edges\":" << stats.dep_edges
     << ",\"critical_path\":" << stats.critical_path
     << ",\"messages\":" << stats.messages
     << ",\"message_bytes\":" << stats.message_bytes
     << ",\"analysis_cpu_s\":" << json_number(stats.analysis_cpu_s)
     << ",\"analysis_wall_s\":" << json_number(stats.analysis_wall_s)
     << ",\"engine\":{"
     << "\"live_eqsets\":" << stats.engine.live_eqsets
     << ",\"total_eqsets_created\":" << stats.engine.total_eqsets_created
     << ",\"live_composite_views\":" << stats.engine.live_composite_views
     << ",\"total_composite_views\":" << stats.engine.total_composite_views
     << ",\"history_entries\":" << stats.engine.history_entries << "}}";

  os << ",\"per_node\":{\"analysis_busy_ns\":[";
  std::span<const SimTime> busy = rt.analysis_busy_ns();
  for (std::size_t n = 0; n < busy.size(); ++n) {
    if (n != 0) os << ",";
    os << busy[n];
  }
  os << "],\"messages_sent\":[";
  std::vector<std::uint64_t> msgs = rt.messages_by_node();
  for (std::size_t n = 0; n < msgs.size(); ++n) {
    if (n != 0) os << ",";
    os << msgs[n];
  }
  os << "]}";

  const obs::Recorder& rec = rt.recorder();
  os << ",\"telemetry\":" << (rec.enabled() ? "true" : "false");
  os << ",\"series\":{";
  for (std::size_t sid = 0; sid < rec.series_count(); ++sid) {
    if (sid != 0) os << ",";
    os << "\"" << json_escape(rec.series(sid).name()) << "\":";
    append_series_summary(os, rec.series(sid));
  }
  os << "}";

  // Span aggregates: per (kind, name), span count and summed counters.
  std::map<std::string, std::pair<std::uint64_t, AnalysisCounters>> agg;
  for (const obs::Span& span : rec.spans()) {
    std::string key =
        std::string(obs::span_kind_name(span.kind)) + "/" +
        (span.kind == obs::SpanKind::Launch ? "task" : span.name);
    auto& slot = agg[key];
    ++slot.first;
    slot.second += span.counters;
  }
  os << ",\"spans\":{\"dropped\":" << rec.spans_dropped();
  for (const auto& [key, slot] : agg) {
    os << ",\"" << json_escape(key) << "\":{\"count\":" << slot.first
       << ",\"counters\":{";
    bool cfirst = true;
    for_each_counter(slot.second,
                     [&](const char* name, std::uint64_t value) {
                       if (!cfirst) os << ",";
                       cfirst = false;
                       os << "\"" << name << "\":" << value;
                     });
    os << "}}";
  }
  os << "}";

  // Schema v2: the provenance layer.  Empty-but-present objects when the
  // run had provenance off (or the build compiled it out), so consumers
  // can rely on the keys.
  os << ",\"provenance\":{\"enabled\":"
     << (obs::kProvenanceEnabled && rt.config().provenance ? "true"
                                                           : "false")
     << ",\"edges_annotated\":" << rt.dep_graph().provenance_count() << "}";
  os << ",\"lifecycle\":" << rt.lifecycle().json();
  os << ",\"messages\":" << rt.message_ledger().json();

  os << "}";
  return os.str();
}

std::string MetricsFile::json() const {
  std::ostringstream os;
  obs::write_metrics_envelope(os, binary_, runs_);
  return os.str();
}

bool MetricsFile::write(const std::string& path) const {
  if (path.empty()) return true;
  return obs::write_metrics_file(path, binary_, runs_);
}

} // namespace visrt
