// visrt/obs/provenance.h
//
// Per-dependence-edge provenance: a compact record, captured by the engine
// at edge-emission time, of *why* an edge exists — which engine and
// algorithm phase produced it, through which region-tree node and
// equivalence set (or composite view), on which field, and under which
// privilege pair.  Storage lives in the DepGraph (keyed by edge); this
// header only defines the record, so it sits below the engines the same
// way counters.h does.
//
// Provenance is a compile-time feature: configure with
// `-DVISRT_PROVENANCE=OFF` and every capture site, the DepGraph store and
// the lifecycle ledger fold away to nothing (asserted by the CI
// provenance-off build via `nm`).  When compiled in it is still gated at
// runtime by `RuntimeConfig::provenance` (default off), costing one branch
// per edge batch.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "visibility/privilege.h"

#ifndef VISRT_PROVENANCE
#define VISRT_PROVENANCE 1
#endif

namespace visrt::obs {

/// True when the provenance layer is compiled in (VISRT_PROVENANCE=1).
inline constexpr bool kProvenanceEnabled = VISRT_PROVENANCE != 0;

/// The algorithm phase that emitted a dependence edge.  One value per
/// distinct edge-emission site in the engines.
enum class ProvPhase : std::uint8_t {
  HistoryWalk,   ///< direct region-tree history walk (paint, naive engines)
  CompositeView, ///< captured composite-view scan (paint, remote node)
  EqSetVisit,    ///< equivalence-set history visit (warnock, raycast)
};

/// Provenance of one dependence edge `from -> to`; the `to` side is the
/// DepGraph key, so the record stores only the producer.  `engine` holds
/// the numeric `Algorithm` value — filled in by the runtime at install
/// time, since obs sits below visibility/engine.h and cannot name the
/// enum.
struct EdgeProvenance {
  LaunchID from = kInvalidLaunch; ///< producer launch (edge source)
  std::uint8_t engine = 0;        ///< numeric visrt::Algorithm value
  ProvPhase phase = ProvPhase::HistoryWalk;
  RegionTreeID region = UINT32_MAX; ///< consumer requirement's region node
  EqSetID eqset = kNoEqSetID;       ///< set / view the entry was found in
  FieldID field = 0;
  Privilege prev; ///< producer's privilege (the history entry)
  Privilege cur;  ///< consumer's privilege (the requirement)
};

#if VISRT_PROVENANCE
const char* prov_phase_name(ProvPhase phase);
#else
inline const char* prov_phase_name(ProvPhase) { return "?"; }
#endif

} // namespace visrt::obs
