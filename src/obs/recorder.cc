#include "obs/recorder.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "obs/metrics.h"

namespace visrt::obs {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
  case SpanKind::Launch: return "launch";
  case SpanKind::Materialize: return "materialize";
  case SpanKind::Commit: return "commit";
  case SpanKind::Phase: return "phase";
  }
  return "?";
}

CounterSeries::CounterSeries(std::string name, std::size_t capacity)
    : name_(std::move(name)), capacity_(std::max<std::size_t>(1, capacity)) {}

void CounterSeries::push(LaunchID launch, double value) {
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(SeriesSample{launch, value});
    return;
  }
  ring_[head_] = SeriesSample{launch, value};
  head_ = (head_ + 1) % capacity_;
}

const SeriesSample& CounterSeries::at(std::size_t i) const {
  invariant(i < ring_.size(), "series sample index out of range");
  if (ring_.size() < capacity_) return ring_[i];
  return ring_[(head_ + i) % capacity_];
}

SeriesSummary CounterSeries::summarize() const {
  SeriesSummary s;
  s.count = total_;
  if (ring_.empty()) return s;
  std::vector<double> values;
  values.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) values.push_back(at(i).value);
  auto nth = [&](double q) {
    std::size_t k = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1) + 0.5);
    std::nth_element(values.begin(),
                     values.begin() + static_cast<std::ptrdiff_t>(k),
                     values.end());
    return values[k];
  };
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  s.p50 = nth(0.5);
  s.p95 = nth(0.95);
  s.last = at(ring_.size() - 1).value;
  return s;
}

void Recorder::enable() { enabled_ = true; }

void Recorder::set_series_capacity(std::size_t capacity) {
  series_capacity_ = std::max<std::size_t>(1, capacity);
}

void Recorder::set_max_spans(std::size_t max_spans) {
  max_spans_ = max_spans;
}

SpanID Recorder::begin_span(SpanKind kind, std::string_view name,
                            LaunchID launch, NodeID node,
                            SpanID parent_hint) {
  if (!enabled_) return kInvalidSpan;
  ThreadSpans& ts = threads_.local();
  // The stamp doubles as the span id: recorded stamps stay dense (0..N-1)
  // because the cap check precedes assignment, so after the stamp-sorted
  // merge a parent id is also the parent's index — exactly the old
  // single-vector behavior.
  const std::uint64_t stamp =
      next_stamp_.fetch_add(1, std::memory_order_relaxed);
  if (stamp >= max_spans_ || stamp >= kInvalidSpan) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    ts.open.emplace_back(kInvalidSpan, std::size_t{0});
    return kInvalidSpan;
  }
  Span span;
  span.kind = kind;
  span.name.assign(name);
  span.parent = ts.open.empty() ? parent_hint : ts.open.back().first;
  span.launch = launch;
  span.node = node;
  span.stamp = stamp;
  const SpanID id = static_cast<SpanID>(stamp);
  ts.log.push_back(std::move(span));
  ts.open.emplace_back(id, ts.log.size() - 1);
  spans_dirty_.store(true, std::memory_order_relaxed);
  return id;
}

void Recorder::end_span(SpanID id, const AnalysisCounters& work) {
  if (!enabled_) return;
  ThreadSpans& ts = threads_.local();
  invariant(!ts.open.empty(), "end_span without a matching begin_span");
  invariant(ts.open.back().first == id, "spans must close innermost-first");
  const std::size_t index = ts.open.back().second;
  ts.open.pop_back();
  if (id == kInvalidSpan) return; // dropped at the cap
  ts.log[index].counters += work;
  spans_dirty_.store(true, std::memory_order_relaxed);
}

void Recorder::merge_spans() const {
  std::lock_guard<TimedMutex> lock(mu_);
  if (!spans_dirty_.load(std::memory_order_relaxed)) return;
  // Clear before gathering: emission racing this merge (contractually
  // excluded, but harmless) re-dirties and the next read re-merges.
  spans_dirty_.store(false, std::memory_order_relaxed);
  merged_.clear();
  threads_.for_each([&](const ThreadSpans& ts) {
    merged_.insert(merged_.end(), ts.log.begin(), ts.log.end());
  });
  std::sort(merged_.begin(), merged_.end(),
            [](const Span& a, const Span& b) { return a.stamp < b.stamp; });
}

std::size_t Recorder::series_id(std::string_view name) {
  std::lock_guard<TimedMutex> lock(mu_);
  auto it = series_ids_.find(std::string(name));
  if (it != series_ids_.end()) return it->second;
  std::size_t id = series_.size();
  series_.emplace_back(std::string(name), series_capacity_);
  series_ids_.emplace(std::string(name), id);
  return id;
}

void Recorder::sample(std::size_t series, LaunchID launch, double value) {
  if (!enabled_) return;
  std::lock_guard<TimedMutex> lock(mu_);
  invariant(series < series_.size(), "sample on an unknown series");
  series_[series].push(launch, value);
}

std::string spans_json(const Recorder& recorder) {
  std::ostringstream os;
  os << "[";
  const std::vector<Span>& spans = recorder.spans();
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    if (i != 0) os << ",";
    os << "{\"stamp\":" << s.stamp << ",\"kind\":\""
       << span_kind_name(s.kind) << "\",\"name\":\"" << json_escape(s.name)
       << "\",\"parent\":";
    if (s.parent == kInvalidSpan) {
      os << "null";
    } else {
      os << s.parent;
    }
    os << ",\"launch\":" << s.launch << ",\"node\":" << s.node
       << ",\"counters\":{";
    bool first = true;
    for_each_counter(s.counters, [&](const char* name, std::uint64_t value) {
      if (value == 0) return;
      if (!first) os << ",";
      first = false;
      os << "\"" << name << "\":" << value;
    });
    os << "}}";
  }
  os << "]";
  return os.str();
}

} // namespace visrt::obs
