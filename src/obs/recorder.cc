#include "obs/recorder.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "obs/metrics.h"

namespace visrt::obs {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
  case SpanKind::Launch: return "launch";
  case SpanKind::Materialize: return "materialize";
  case SpanKind::Commit: return "commit";
  case SpanKind::Phase: return "phase";
  }
  return "?";
}

CounterSeries::CounterSeries(std::string name, std::size_t capacity)
    : name_(std::move(name)), capacity_(std::max<std::size_t>(1, capacity)) {}

void CounterSeries::push(LaunchID launch, double value) {
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(SeriesSample{launch, value});
    return;
  }
  ring_[head_] = SeriesSample{launch, value};
  head_ = (head_ + 1) % capacity_;
}

const SeriesSample& CounterSeries::at(std::size_t i) const {
  invariant(i < ring_.size(), "series sample index out of range");
  if (ring_.size() < capacity_) return ring_[i];
  return ring_[(head_ + i) % capacity_];
}

SeriesSummary CounterSeries::summarize() const {
  SeriesSummary s;
  s.count = total_;
  if (ring_.empty()) return s;
  std::vector<double> values;
  values.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) values.push_back(at(i).value);
  auto nth = [&](double q) {
    std::size_t k = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1) + 0.5);
    std::nth_element(values.begin(),
                     values.begin() + static_cast<std::ptrdiff_t>(k),
                     values.end());
    return values[k];
  };
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  s.p50 = nth(0.5);
  s.p95 = nth(0.95);
  s.last = at(ring_.size() - 1).value;
  return s;
}

void Recorder::enable() { enabled_ = true; }

void Recorder::set_series_capacity(std::size_t capacity) {
  series_capacity_ = std::max<std::size_t>(1, capacity);
}

void Recorder::set_max_spans(std::size_t max_spans) {
  max_spans_ = max_spans;
}

SpanID Recorder::begin_span(SpanKind kind, std::string_view name,
                            LaunchID launch, NodeID node,
                            SpanID parent_hint) {
  if (!enabled_) return kInvalidSpan;
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanID>& stack = open_[std::this_thread::get_id()];
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    stack.push_back(kInvalidSpan);
    return kInvalidSpan;
  }
  Span span;
  span.kind = kind;
  span.name.assign(name);
  span.parent = stack.empty() ? parent_hint : stack.back();
  span.launch = launch;
  span.node = node;
  span.stamp = next_stamp_++;
  SpanID id = static_cast<SpanID>(spans_.size());
  spans_.push_back(std::move(span));
  stack.push_back(id);
  return id;
}

void Recorder::end_span(SpanID id, const AnalysisCounters& work) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(std::this_thread::get_id());
  invariant(it != open_.end() && !it->second.empty(),
            "end_span without a matching begin_span");
  invariant(it->second.back() == id, "spans must close innermost-first");
  it->second.pop_back();
  // Erase drained stacks so a thread id recycled by the OS (or a future
  // recorder reusing this thread) never inherits stale nesting.
  if (it->second.empty()) open_.erase(it);
  if (id == kInvalidSpan) return; // dropped at the cap
  spans_[id].counters += work;
}

std::size_t Recorder::series_id(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_ids_.find(std::string(name));
  if (it != series_ids_.end()) return it->second;
  std::size_t id = series_.size();
  series_.emplace_back(std::string(name), series_capacity_);
  series_ids_.emplace(std::string(name), id);
  return id;
}

void Recorder::sample(std::size_t series, LaunchID launch, double value) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  invariant(series < series_.size(), "sample on an unknown series");
  series_[series].push(launch, value);
}

std::string spans_json(const Recorder& recorder) {
  std::ostringstream os;
  os << "[";
  const std::vector<Span>& spans = recorder.spans();
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    if (i != 0) os << ",";
    os << "{\"stamp\":" << s.stamp << ",\"kind\":\""
       << span_kind_name(s.kind) << "\",\"name\":\"" << json_escape(s.name)
       << "\",\"parent\":";
    if (s.parent == kInvalidSpan) {
      os << "null";
    } else {
      os << s.parent;
    }
    os << ",\"launch\":" << s.launch << ",\"node\":" << s.node
       << ",\"counters\":{";
    bool first = true;
    for_each_counter(s.counters, [&](const char* name, std::uint64_t value) {
      if (value == 0) return;
      if (!first) os << ",";
      first = false;
      os << "\"" << name << "\":" << value;
    });
    os << "}}";
  }
  os << "]";
  return os.str();
}

} // namespace visrt::obs
