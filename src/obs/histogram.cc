#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace visrt::obs {

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile, 1-based: ceil(q * count), clamped to [1,count].
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  rank = std::clamp<std::uint64_t>(rank, 1, count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return Histogram::bucket_upper(i);
  }
  return max; // racy snapshot where count > sum of buckets: degrade to max
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (buckets.size() < other.buckets.size())
    buckets.resize(other.buckets.size(), 0);
  for (std::size_t i = 0; i < other.buckets.size(); ++i)
    buckets[i] += other.buckets[i];
  min = count == 0 ? other.min : std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kBucketCount, 0);
  for (std::size_t i = 0; i < kBucketCount; ++i)
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  const std::uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = snap.count == 0 || min == ~std::uint64_t{0} ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::merge(const Histogram& other) { merge(other.snapshot()); }

void Histogram::merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  for (std::size_t i = 0; i < other.buckets.size() && i < kBucketCount; ++i) {
    if (other.buckets[i] != 0)
      buckets_[i].fetch_add(other.buckets[i], std::memory_order_relaxed);
  }
  count_.fetch_add(other.count, std::memory_order_relaxed);
  sum_.fetch_add(other.sum, std::memory_order_relaxed);
  update_min(other.min);
  update_max(other.max);
}

std::string histogram_timing_json(const HistogramSnapshot& snap) {
  std::ostringstream os;
  os << "{\"sum_ns\":" << snap.sum << ",\"min_ns\":" << snap.min
     << ",\"max_ns\":" << snap.max << ",\"p50_ns\":" << snap.quantile(0.50)
     << ",\"p90_ns\":" << snap.quantile(0.90)
     << ",\"p99_ns\":" << snap.quantile(0.99)
     << ",\"p999_ns\":" << snap.quantile(0.999) << ",\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
    if (snap.buckets[i] == 0) continue;
    if (!first) os << ",";
    first = false;
    os << "[" << Histogram::bucket_upper(i) << "," << snap.buckets[i] << "]";
  }
  os << "]}";
  return os.str();
}

} // namespace visrt::obs
