// visrt/obs/histogram.h
//
// A lock-free log-bucketed latency histogram for service-grade telemetry.
// The serving layer records nanosecond durations (per-launch analysis
// latency, per-statement parse latency, retirement pauses, control-line
// request latency) on its hot path, so recording must be wait-free and
// allocation-free: one relaxed fetch_add into a fixed bucket array plus
// the count/sum accumulators.
//
// Bucket layout (HdrHistogram-style log-linear): values 0..15 get exact
// unit buckets; above that each power-of-two octave is split into 16
// sub-buckets, so the bucket holding `v` has width 2^(bit_width(v)-1-4)
// and the relative quantization error is bounded by 1/16 (the percentile
// accuracy test pins this against a sorted-vector oracle).  The full
// 64-bit range is covered by 976 buckets (~8 KB of atomics), so one
// histogram per latency source is cheap enough to keep always-on.
//
// Histograms are mergeable (bucket-wise addition) and snapshots are plain
// structs, which keeps the representation wire-friendly: a multi-process
// worker can ship its snapshot and the aggregator adds arrays — exactly
// how Server folds per-session histograms today.
//
// Readers (snapshot/quantile) run concurrently with writers and see a
// slightly torn but monotone view — each bucket is individually atomic.
// That is the right contract for live metrics endpoints; tests that want
// exact counts quiesce writers first.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

namespace visrt::obs {

/// Plain-struct copy of a histogram's state, safe to keep, merge and
/// serialize after the source moved on.  `buckets[i]` counts recorded
/// values v with Histogram::bucket_index(v) == i.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0; ///< 0 when count == 0
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets; ///< size Histogram::kBucketCount

  /// Upper bound of the bucket holding the q-quantile value (q in [0,1]):
  /// at least the exact quantile and at most ~1/16 above it.  0 when
  /// empty.
  std::uint64_t quantile(double q) const;

  /// Bucket-wise accumulate `other` into this snapshot.
  void merge(const HistogramSnapshot& other);

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

class Histogram {
public:
  /// Sub-buckets per power-of-two octave (16 => <= 1/16 relative error).
  static constexpr unsigned kSubBits = 4;
  static constexpr unsigned kSubCount = 1u << kSubBits;
  /// Unit buckets 0..15 plus 16 sub-buckets for each octave 2^4..2^63.
  static constexpr std::size_t kBucketCount =
      kSubCount + (64 - kSubBits) * kSubCount;

  /// Bucket index of a value (total order preserving: v <= w implies
  /// bucket_index(v) <= bucket_index(w)).
  static std::size_t bucket_index(std::uint64_t v) {
    if (v < kSubCount) return static_cast<std::size_t>(v);
    const unsigned b = static_cast<unsigned>(std::bit_width(v)) - 1;
    const unsigned shift = b - kSubBits;
    const std::uint64_t sub = (v >> shift) & (kSubCount - 1);
    return static_cast<std::size_t>((b - kSubBits + 1)) * kSubCount +
           static_cast<std::size_t>(sub);
  }

  /// Largest value mapping to bucket `index` (the quantile
  /// representative).
  static std::uint64_t bucket_upper(std::size_t index) {
    if (index < kSubCount) return index;
    const std::size_t group = index / kSubCount; // >= 1
    const std::uint64_t sub = index % kSubCount;
    const unsigned shift = static_cast<unsigned>(group) - 1;
    if (shift + kSubBits + 1 >= 64) {
      // Top octave: (kSubCount + sub + 1) << shift would overflow.
      if (sub == kSubCount - 1) return ~std::uint64_t{0};
    }
    return ((kSubCount + sub + 1) << shift) - 1;
  }

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Record one value.  Wait-free: relaxed atomic adds plus a CAS loop
  /// each for min/max (contended only while the extremum is still
  /// moving).
  void record(std::uint64_t value) {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    update_min(value);
    update_max(value);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Copy the current state (see the header comment for the concurrent
  /// read contract).
  HistogramSnapshot snapshot() const;

  /// Bucket-wise accumulate another histogram's current state into this
  /// one (used when folding a finished session into server totals).
  void merge(const Histogram& other);
  void merge(const HistogramSnapshot& other);

private:
  void update_min(std::uint64_t v) {
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void update_max(std::uint64_t v) {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// The latency timing subobject of one histogram as compact JSON —
/// everything host-dependent about it:
///   {"sum_ns":..,"min_ns":..,"max_ns":..,"p50_ns":..,"p90_ns":..,
///    "p99_ns":..,"p999_ns":..,"buckets":[[upper_ns,count],...]}
/// (nonzero buckets only).  The deterministic `count` stays outside, so
/// metrics consumers can strip timing and byte-compare the rest.
std::string histogram_timing_json(const HistogramSnapshot& snap);

} // namespace visrt::obs
