#include "obs/provenance.h"

#if VISRT_PROVENANCE

namespace visrt::obs {

const char* prov_phase_name(ProvPhase phase) {
  switch (phase) {
  case ProvPhase::HistoryWalk: return "history-walk";
  case ProvPhase::CompositeView: return "composite-view";
  case ProvPhase::EqSetVisit: return "eqset-visit";
  }
  return "?";
}

} // namespace visrt::obs

#endif // VISRT_PROVENANCE
