#include "obs/lifecycle.h"

#if VISRT_PROVENANCE

#include <algorithm>
#include <sstream>

namespace visrt::obs {

const char* lifecycle_event_kind_name(LifecycleEventKind kind) {
  switch (kind) {
  case LifecycleEventKind::Create: return "create";
  case LifecycleEventKind::Refine: return "refine";
  case LifecycleEventKind::Coalesce: return "coalesce";
  case LifecycleEventKind::Migrate: return "migrate";
  }
  return "?";
}

void LifecycleLedger::enable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = true;
}

void LifecycleLedger::record(LifecycleEventKind kind, LaunchID launch,
                             FieldID field, EqSetID eqset, EqSetID parent,
                             NodeID owner, std::uint64_t live_after) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  PerField& pf = fields_[field];
  LifecycleEvent ev;
  ev.kind = kind;
  ev.launch = launch;
  ev.field = field;
  ev.eqset = eqset;
  ev.parent = parent;
  ev.owner = owner;
  ev.live_after = live_after;
  // A set's depth is fixed at first sighting: its parent's depth + 1, or 0
  // for roots; later events on the same set reuse it.
  auto dit = pf.depth.find(eqset);
  if (dit != pf.depth.end()) {
    ev.depth = dit->second;
  } else {
    if (parent != kNoEqSetID) {
      auto pit = pf.depth.find(parent);
      ev.depth = (pit == pf.depth.end() ? 0 : pit->second) + 1;
    }
    if (eqset != kNoEqSetID) pf.depth.emplace(eqset, ev.depth);
  }
  pf.peak_live = std::max(pf.peak_live, live_after);
  pf.events.push_back(ev);
}

std::vector<FieldID> LifecycleLedger::fields() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FieldID> out;
  for (const auto& [field, pf] : fields_) out.push_back(field);
  return out;
}

std::vector<LifecycleEvent> LifecycleLedger::events(FieldID field) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fields_.find(field);
  return it == fields_.end() ? std::vector<LifecycleEvent>{}
                             : it->second.events;
}

std::size_t LifecycleLedger::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [field, pf] : fields_) n += pf.events.size();
  return n;
}

namespace {

LifecycleSummary summarize(const std::vector<LifecycleEvent>& events,
                           std::uint64_t peak_live) {
  LifecycleSummary s;
  s.peak_live = peak_live;
  for (const LifecycleEvent& ev : events) {
    switch (ev.kind) {
    case LifecycleEventKind::Create: ++s.creates; break;
    case LifecycleEventKind::Refine: ++s.refines; break;
    case LifecycleEventKind::Coalesce: ++s.coalesces; break;
    case LifecycleEventKind::Migrate: ++s.migrates; break;
    }
    s.max_depth = std::max(s.max_depth, ev.depth);
  }
  return s;
}

void summary_json(std::ostringstream& os, const LifecycleSummary& s) {
  os << "{\"creates\":" << s.creates << ",\"refines\":" << s.refines
     << ",\"coalesces\":" << s.coalesces << ",\"migrates\":" << s.migrates
     << ",\"peak_live\":" << s.peak_live << ",\"max_depth\":" << s.max_depth
     << "}";
}

} // namespace

LifecycleSummary LifecycleLedger::summary(FieldID field) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fields_.find(field);
  if (it == fields_.end()) return {};
  return summarize(it->second.events, it->second.peak_live);
}

LifecycleSummary LifecycleLedger::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  LifecycleSummary t;
  for (const auto& [field, pf] : fields_) {
    LifecycleSummary s = summarize(pf.events, pf.peak_live);
    t.creates += s.creates;
    t.refines += s.refines;
    t.coalesces += s.coalesces;
    t.migrates += s.migrates;
    t.peak_live = std::max(t.peak_live, s.peak_live);
    t.max_depth = std::max(t.max_depth, s.max_depth);
  }
  return t;
}

std::string LifecycleLedger::json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  LifecycleSummary t;
  for (const auto& [field, pf] : fields_) {
    LifecycleSummary s = summarize(pf.events, pf.peak_live);
    t.creates += s.creates;
    t.refines += s.refines;
    t.coalesces += s.coalesces;
    t.migrates += s.migrates;
    t.peak_live = std::max(t.peak_live, s.peak_live);
    t.max_depth = std::max(t.max_depth, s.max_depth);
  }
  os << "{\"summary\":";
  summary_json(os, t);
  os << ",\"fields\":{";
  bool first_field = true;
  for (const auto& [field, pf] : fields_) {
    if (!first_field) os << ",";
    first_field = false;
    os << "\"" << field << "\":{\"summary\":";
    summary_json(os, summarize(pf.events, pf.peak_live));
    os << ",\"events\":[";
    for (std::size_t i = 0; i < pf.events.size(); ++i) {
      const LifecycleEvent& ev = pf.events[i];
      if (i) os << ",";
      os << "{\"kind\":\"" << lifecycle_event_kind_name(ev.kind)
         << "\",\"launch\":";
      if (ev.launch == kInvalidLaunch) os << -1;
      else os << ev.launch;
      os << ",\"eqset\":";
      if (ev.eqset == kNoEqSetID) os << -1;
      else os << ev.eqset;
      os << ",\"parent\":";
      if (ev.parent == kNoEqSetID) os << -1;
      else os << ev.parent;
      os << ",\"owner\":" << ev.owner << ",\"depth\":" << ev.depth
         << ",\"live\":" << ev.live_after << "}";
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

} // namespace visrt::obs

#endif // VISRT_PROVENANCE
