#include "realm/instance_map.h"

#include <algorithm>

#include "common/check.h"

namespace visrt {

InstanceMap::InstanceMap(std::uint32_t nodes, NodeID home,
                         IntervalSet domain) {
  require(home < nodes, "home node out of range");
  valid_.assign(nodes, domain);
}

std::vector<CopyPlan> InstanceMap::plan_read(NodeID dst,
                                             const IntervalSet& domain) {
  require(dst < valid_.size(), "destination node out of range");
  std::vector<CopyPlan> plans;

  // 1. Fetch points not yet valid at dst from nodes that hold them.
  IntervalSet needed = domain.subtract(valid_[dst]);
  for (NodeID src = 0; src < valid_.size() && !needed.empty(); ++src) {
    if (src == dst) continue;
    IntervalSet piece = needed.intersect(valid_[src]);
    if (piece.empty()) continue;
    plans.push_back(CopyPlan{CopyPlan::Kind::Copy, src, dst, piece});
    needed = needed.subtract(piece);
  }
  invariant(needed.empty(),
            "instance map: some requested points valid nowhere");
  valid_[dst] = valid_[dst].unite(domain);

  // 2. Apply pending reduction buffers overlapping the domain, in creation
  // order.  Applied points change value, so dst becomes the only valid
  // holder of them.
  IntervalSet changed;
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const PendingReduction& a, const PendingReduction& b) {
                     return a.order < b.order;
                   });
  for (PendingReduction& p : pending_) {
    IntervalSet piece = p.domain.intersect(domain);
    if (piece.empty()) continue;
    plans.push_back(
        CopyPlan{CopyPlan::Kind::ApplyReduction, p.node, dst, piece, p.redop});
    changed = changed.unite(piece);
    p.domain = p.domain.subtract(piece);
  }
  std::erase_if(pending_,
                [](const PendingReduction& p) { return p.domain.empty(); });
  if (!changed.empty()) {
    for (NodeID n = 0; n < valid_.size(); ++n) {
      if (n != dst) valid_[n] = valid_[n].subtract(changed);
    }
  }
  return plans;
}

void InstanceMap::record_write(NodeID node, const IntervalSet& domain) {
  require(node < valid_.size(), "writer node out of range");
  for (NodeID n = 0; n < valid_.size(); ++n) {
    if (n != node) valid_[n] = valid_[n].subtract(domain);
  }
  valid_[node] = valid_[node].unite(domain);
  for (PendingReduction& p : pending_) {
    p.domain = p.domain.subtract(domain);
  }
  std::erase_if(pending_,
                [](const PendingReduction& p) { return p.domain.empty(); });
}

void InstanceMap::record_reduction(NodeID node, const IntervalSet& domain,
                                   ReductionOpID redop) {
  require(node < valid_.size(), "reducer node out of range");
  pending_.push_back(PendingReduction{node, domain, redop, next_order_++});
}

const IntervalSet& InstanceMap::valid_at(NodeID node) const {
  require(node < valid_.size(), "node out of range");
  return valid_[node];
}

} // namespace visrt
