#include "realm/reduction_ops.h"

#include <deque>
#include <limits>
#include <mutex>

#include "common/check.h"

namespace visrt {
namespace {

double fold_sum(double x, double v) { return x + v; }
double fold_prod(double x, double v) { return x * v; }
double fold_min(double x, double v) { return x < v ? x : v; }
double fold_max(double x, double v) { return x > v ? x : v; }

struct Registry {
  std::mutex mutex;
  // deque: stable references across registration of new operators.
  std::deque<ReductionOp> ops;

  Registry() {
    ops.push_back(ReductionOp{kNoReduction, 0.0, nullptr, "none"});
    ops.push_back(ReductionOp{kRedopSum, 0.0, fold_sum, "sum"});
    ops.push_back(ReductionOp{kRedopProd, 1.0, fold_prod, "prod"});
    ops.push_back(ReductionOp{
        kRedopMin, std::numeric_limits<double>::infinity(), fold_min, "min"});
    ops.push_back(ReductionOp{kRedopMax,
                              -std::numeric_limits<double>::infinity(),
                              fold_max, "max"});
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

} // namespace

const ReductionOp& reduction_op(ReductionOpID id) {
  Registry& r = registry();
  std::scoped_lock lock(r.mutex);
  require(id != kNoReduction && id < r.ops.size(),
          "unknown reduction operator id");
  return r.ops[id];
}

ReductionOpID register_reduction(double identity,
                                 double (*fold)(double, double),
                                 std::string_view name) {
  require(fold != nullptr, "reduction fold function must be provided");
  Registry& r = registry();
  std::scoped_lock lock(r.mutex);
  ReductionOpID id = static_cast<ReductionOpID>(r.ops.size());
  r.ops.push_back(ReductionOp{id, identity, fold, std::string(name)});
  return id;
}

} // namespace visrt
