// visrt/realm/instance_map.h
//
// Tracks, for one field, which nodes of the machine hold valid physical
// copies of which points, plus outstanding (lazily applied) reduction
// buffers.  The runtime consults it when a task is mapped to a node to plan
// the copies and reduction applications that realize the coherence the
// analysis proved necessary — the "implicit communication" of Section 2.
//
// This plays the role of Realm's instance/copy engine in the paper's stack:
// the visibility algorithms decide *what* must be coherent; the instance
// map decides *which bytes move between which nodes* to achieve it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "geom/interval_set.h"

namespace visrt {

/// One planned transfer: move `points` worth of the field from src to dst.
/// kind distinguishes plain copies from reduction-buffer applications.
struct CopyPlan {
  enum class Kind : std::uint8_t { Copy, ApplyReduction };
  Kind kind = Kind::Copy;
  NodeID src = 0;
  NodeID dst = 0;
  IntervalSet points;
  ReductionOpID redop = kNoReduction; ///< ApplyReduction only
};

class InstanceMap {
public:
  /// `nodes` machine nodes.  The initial contents (a fill) are considered
  /// valid everywhere — fills are deferred and instantiated per instance
  /// without bulk copies, as in Realm; `home` is kept for bookkeeping.
  InstanceMap(std::uint32_t nodes, NodeID home, IntervalSet domain);

  /// Plan the data movement needed before a task on `dst` can read
  /// `domain`: copies of points not valid at dst, plus application of any
  /// pending reduction buffers overlapping the domain.  Updates validity:
  /// after the plan executes, dst holds a valid copy of all of `domain`;
  /// points whose value changed by reduction application are valid *only*
  /// at dst.
  std::vector<CopyPlan> plan_read(NodeID dst, const IntervalSet& domain);

  /// Record that a task wrote `domain` at `node`: node becomes the sole
  /// valid holder of those points, and overlapping pending reductions are
  /// dropped (they are occluded by the write in any later materialization
  /// the analysis would have already ordered before it).
  void record_write(NodeID node, const IntervalSet& domain);

  /// Record a lazily-buffered reduction produced at `node` over `domain`.
  void record_reduction(NodeID node, const IntervalSet& domain,
                        ReductionOpID redop);

  /// Points currently valid at a node (for tests / stats).
  const IntervalSet& valid_at(NodeID node) const;
  std::size_t pending_reductions() const { return pending_.size(); }

private:
  struct PendingReduction {
    NodeID node;
    IntervalSet domain;
    ReductionOpID redop;
    LaunchID order; ///< creation order; applications preserve it
  };

  std::vector<IntervalSet> valid_; // per node
  std::vector<PendingReduction> pending_;
  LaunchID next_order_ = 0;
};

} // namespace visrt
