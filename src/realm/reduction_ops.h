// visrt/realm/reduction_ops.h
//
// Registry of reduction operators.  The paper (Section 4) requires every
// reduction operator to have an identity so partial accumulations can be
// folded lazily; this registry records (identity, fold) pairs over double
// (visrt field element type) and lets applications register their own,
// like Pennant's distinct operators for force sums and dt minima.
#pragma once

#include <string>
#include <string_view>

#include "common/types.h"

namespace visrt {

/// One registered reduction operator over double.
struct ReductionOp {
  ReductionOpID id = kNoReduction;
  double identity = 0.0;
  /// fold(contribution, current) -> new value.  Argument order follows the
  /// paper's b(f_x, v) = f(x, v).
  double (*fold)(double contribution, double current) = nullptr;
  std::string name;
};

/// Built-in operators, registered on first use of the registry.
inline constexpr ReductionOpID kRedopSum = 1;
inline constexpr ReductionOpID kRedopProd = 2;
inline constexpr ReductionOpID kRedopMin = 3;
inline constexpr ReductionOpID kRedopMax = 4;

/// Look up an operator; throws ApiError for unknown ids.
const ReductionOp& reduction_op(ReductionOpID id);

/// Register a custom operator; returns its fresh id.
ReductionOpID register_reduction(double identity,
                                 double (*fold)(double, double),
                                 std::string_view name);

} // namespace visrt
