// visrt/fuzz/generator.h
//
// The random program generator.  Goes far beyond the old property test's
// fixed region structure: random region-tree forests of variable depth
// (disjoint/aliased × complete/incomplete partitions, nested partitions,
// dependent partitioning via image/preimage), multiple fields and trees,
// individual and index launches, dynamic traces, iteration markers, random
// privileges/reduction operators/node mappings, and randomized machine and
// engine-ablation configurations.
//
// Generation is a pure function of the Rng: the same seed always produces
// the same ProgramSpec, on every platform.
#pragma once

#include "common/rng.h"
#include "fuzz/program.h"

namespace visrt::fuzz {

struct GeneratorOptions {
  // Structure.
  std::size_t max_trees = 2;
  coord_t min_tree_size = 40;
  coord_t max_tree_size = 200;
  std::size_t max_partitions = 5; ///< across all trees
  std::size_t max_fields = 3;     ///< across all trees (>= #trees)

  // Stream.
  std::size_t min_stream_items = 8;
  std::size_t max_stream_items = 40;
  double index_launch_prob = 0.2;
  double trace_block_prob = 0.12;
  double end_iteration_prob = 0.05;
  double multi_req_prob = 0.35;

  // Configuration.
  std::uint32_t max_nodes = 4;
  /// Randomize subject algorithm, DCR, tracing and engine tuning.  When
  /// off, the fields below are used verbatim.
  bool randomize_config = true;
  Algorithm subject = Algorithm::RayCast;
  bool dcr = false;
  bool tracing = true;
  EngineTuning tuning;
};

/// Generate one random, valid program.
ProgramSpec generate_program(Rng& rng, const GeneratorOptions& options = {});

} // namespace visrt::fuzz
