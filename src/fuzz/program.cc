#include "fuzz/program.h"

#include <bit>

#include "common/check.h"
#include "realm/reduction_ops.h"

namespace visrt::fuzz {

std::uint32_t region_table_base(const ProgramSpec& spec, std::uint32_t p) {
  std::uint32_t base = static_cast<std::uint32_t>(spec.trees.size());
  for (std::uint32_t i = 0; i < p; ++i)
    base += static_cast<std::uint32_t>(spec.partitions[i].subspaces.size());
  return base;
}

std::uint32_t region_table_size(const ProgramSpec& spec) {
  return region_table_base(spec,
                           static_cast<std::uint32_t>(spec.partitions.size()));
}

IntervalSet region_domain(const ProgramSpec& spec, std::uint32_t r) {
  if (r < spec.trees.size()) return IntervalSet(0, spec.trees[r].size - 1);
  std::uint32_t base = static_cast<std::uint32_t>(spec.trees.size());
  for (const PartitionSpec& part : spec.partitions) {
    std::uint32_t n = static_cast<std::uint32_t>(part.subspaces.size());
    if (r < base + n) return part.subspaces[r - base];
    base += n;
  }
  invariant_failure("region-table index out of range");
}

namespace {

/// Tree-table index that region-table entry `r` belongs to.
std::uint32_t tree_of_region(const ProgramSpec& spec, std::uint32_t r) {
  if (r < spec.trees.size()) return r;
  std::uint32_t base = static_cast<std::uint32_t>(spec.trees.size());
  for (std::size_t p = 0; p < spec.partitions.size(); ++p) {
    std::uint32_t n =
        static_cast<std::uint32_t>(spec.partitions[p].subspaces.size());
    if (r < base + n) return tree_of_region(spec, spec.partitions[p].parent);
    base += n;
  }
  invariant_failure("region-table index out of range");
}

void validate_reqs(const ProgramSpec& spec, std::span<const ReqSpec> reqs,
                   std::uint32_t regions) {
  require(!reqs.empty(), "visprog: a task needs at least one requirement");
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const ReqSpec& req = reqs[i];
    require(req.region < regions, "visprog: requirement region out of range");
    require(req.field < spec.fields.size(),
            "visprog: requirement field out of range");
    require(spec.fields[req.field].tree == tree_of_region(spec, req.region),
            "visprog: requirement region is not in its field's tree");
    if (req.privilege.is_reduce())
      reduction_op(req.privilege.redop); // throws on unknown redop
    for (std::size_t j = 0; j < i; ++j) {
      require(reqs[j].field != req.field,
              "visprog: one task may use each field at most once (the "
              "paper's restriction on aliased interfering arguments)");
    }
  }
}

} // namespace

void validate_decls(const ProgramSpec& spec) {
  require(spec.num_nodes >= 1, "visprog: machine needs at least one node");
  require(!spec.trees.empty(), "visprog: program needs at least one tree");
  for (const TreeSpec& tree : spec.trees)
    require(tree.size >= 1, "visprog: tree domain must be non-empty");

  // Partitions: parents must be earlier table entries (roots come first;
  // partition k's children start at region_table_base(spec, k), so parent
  // < base(k) forbids forward references and self-reference).
  std::uint32_t regions = static_cast<std::uint32_t>(spec.trees.size());
  for (std::size_t p = 0; p < spec.partitions.size(); ++p) {
    const PartitionSpec& part = spec.partitions[p];
    require(part.parent < regions,
            "visprog: partition parent must precede it in the region table");
    require(!part.subspaces.empty(),
            "visprog: partition needs at least one subspace");
    regions += static_cast<std::uint32_t>(part.subspaces.size());
  }
  // Subspace-inside-parent is checked by build_forest (it needs domains);
  // spec-level validation stops at indices.

  for (const FieldSpec& field : spec.fields) {
    require(field.tree < spec.trees.size(),
            "visprog: field tree out of range");
    require(field.init_mod >= 1, "visprog: field init_mod must be >= 1");
  }
}

void validate_item(const ProgramSpec& spec, const StreamItem& item,
                   int& trace_depth) {
  std::uint32_t regions = region_table_size(spec);
  switch (item.kind) {
  case StreamItem::Kind::Task:
    validate_reqs(spec, item.task.requirements, regions);
    require(item.task.mapped_node < spec.num_nodes,
            "visprog: task mapped to a nonexistent node");
    break;
  case StreamItem::Kind::Index: {
    require(!item.index.requirements.empty(),
            "visprog: an index launch needs at least one requirement");
    std::size_t colors = 0;
    for (std::size_t i = 0; i < item.index.requirements.size(); ++i) {
      const IndexReqSpec& req = item.index.requirements[i];
      require(req.partition < spec.partitions.size(),
              "visprog: index-launch partition out of range");
      std::size_t n = spec.partitions[req.partition].subspaces.size();
      if (i == 0) colors = n;
      require(n == colors,
              "visprog: index-launch partitions must have matching "
              "color counts");
      require(req.field < spec.fields.size(),
              "visprog: index-launch field out of range");
      require(spec.fields[req.field].tree ==
                  tree_of_region(spec, spec.partitions[req.partition].parent),
              "visprog: index-launch partition is not in its field's tree");
      for (std::size_t j = 0; j < i; ++j)
        require(item.index.requirements[j].field != req.field,
                "visprog: one task may use each field at most once");
    }
    break;
  }
  case StreamItem::Kind::BeginTrace:
    require(trace_depth == 0, "visprog: traces cannot nest");
    ++trace_depth;
    break;
  case StreamItem::Kind::EndTrace:
    require(trace_depth == 1, "visprog: end_trace without begin_trace");
    --trace_depth;
    break;
  case StreamItem::Kind::EndIteration:
    break;
  }
}

void validate(const ProgramSpec& spec) {
  validate_decls(spec);
  int trace_depth = 0;
  for (const StreamItem& item : spec.stream)
    validate_item(spec, item, trace_depth);
  require(trace_depth == 0, "visprog: unterminated trace");
}

void build_forest(const ProgramSpec& spec, BuiltForest& out) {
  validate(spec);
  out.regions.clear();
  out.partitions.clear();
  for (const TreeSpec& tree : spec.trees)
    out.regions.push_back(
        out.forest.create_root(IntervalSet(0, tree.size - 1), tree.name));
  for (const PartitionSpec& part : spec.partitions) {
    PartitionHandle ph = out.forest.create_partition(
        out.regions[part.parent], part.subspaces, part.name);
    out.partitions.push_back(ph);
    for (std::size_t c = 0; c < part.subspaces.size(); ++c)
      out.regions.push_back(out.forest.subregion(ph, c));
  }
}

std::vector<ExpandedLaunch> expand_stream(const ProgramSpec& spec) {
  validate(spec);
  std::vector<ExpandedLaunch> out;
  for (std::size_t i = 0; i < spec.stream.size(); ++i) {
    const StreamItem& item = spec.stream[i];
    if (item.kind == StreamItem::Kind::Task) {
      out.push_back(ExpandedLaunch{item.task.requirements,
                                   item.task.mapped_node, item.task.salt, i});
    } else if (item.kind == StreamItem::Kind::Index) {
      std::size_t colors =
          spec.partitions[item.index.requirements[0].partition]
              .subspaces.size();
      for (std::size_t c = 0; c < colors; ++c) {
        ExpandedLaunch point;
        for (const IndexReqSpec& req : item.index.requirements) {
          point.requirements.push_back(ReqSpec{
              region_table_base(spec, req.partition) +
                  static_cast<std::uint32_t>(c),
              req.field, req.privilege});
        }
        point.mapped_node = static_cast<NodeID>(c % spec.num_nodes);
        point.salt = item.index.salt;
        point.item = i;
        out.push_back(std::move(point));
      }
    }
  }
  return out;
}

std::vector<analysis::LintEvent> lint_events(const ProgramSpec& spec,
                                             const BuiltForest& built) {
  validate(spec);
  std::vector<analysis::LintEvent> events;
  events.reserve(spec.stream.size());
  for (const StreamItem& item : spec.stream) {
    analysis::LintEvent ev;
    switch (item.kind) {
    case StreamItem::Kind::Task:
      ev.kind = analysis::LintEvent::Kind::Task;
      for (const ReqSpec& req : item.task.requirements)
        ev.requirements.push_back(Requirement{built.regions[req.region],
                                              req.field, req.privilege});
      break;
    case StreamItem::Kind::Index:
      ev.kind = analysis::LintEvent::Kind::Index;
      for (const IndexReqSpec& req : item.index.requirements)
        ev.index_requirements.push_back(analysis::LintIndexReq{
            built.partitions[req.partition], req.field, req.privilege});
      break;
    case StreamItem::Kind::BeginTrace:
      ev.kind = analysis::LintEvent::Kind::BeginTrace;
      ev.trace_id = item.trace_id;
      break;
    case StreamItem::Kind::EndTrace:
      ev.kind = analysis::LintEvent::Kind::EndTrace;
      break;
    case StreamItem::Kind::EndIteration:
      ev.kind = analysis::LintEvent::Kind::EndIteration;
      break;
    }
    events.push_back(std::move(ev));
  }
  return events;
}

void apply_task_body(std::span<const ReqSpec> reqs,
                     std::span<RegionData<double>*> buffers, LaunchID id,
                     std::uint64_t salt) {
  invariant(reqs.size() == buffers.size(),
            "task body requirement/buffer count mismatch");
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const Privilege& priv = reqs[i].privilege;
    RegionData<double>& buf = *buffers[i];
    coord_t mix = static_cast<coord_t>(id) * 13 + static_cast<coord_t>(i) +
                  static_cast<coord_t>(salt % 977);
    if (priv.is_write()) {
      buf.for_each([&](coord_t p, double& v) {
        v = static_cast<double>((p * 7 + mix) % 1001);
      });
    } else if (priv.is_reduce()) {
      const ReductionOp& op = reduction_op(priv.redop);
      coord_t rmix =
          static_cast<coord_t>(id) * 5 + static_cast<coord_t>(salt % 977);
      buf.for_each([&](coord_t p, double& v) {
        double contribution = static_cast<double>((p * 3 + rmix) % 97);
        v = op.fold(contribution, v);
      });
    }
    // Reads leave the buffer untouched.
  }
}

std::uint64_t hash_region(const RegionData<double>& data) {
  std::uint64_t h = 1469598103934665603ULL; // FNV-1a offset basis
  auto mix = [&h](std::uint64_t v) {
    h = (h ^ v) * 1099511628211ULL;
  };
  for (const Interval& iv : data.domain().intervals()) {
    mix(static_cast<std::uint64_t>(iv.lo));
    mix(static_cast<std::uint64_t>(iv.hi));
  }
  data.for_each(
      [&](coord_t, const double& v) { mix(std::bit_cast<std::uint64_t>(v)); });
  return h;
}

} // namespace visrt::fuzz
