#include "fuzz/generator.h"

#include <algorithm>
#include <array>

#include "common/check.h"
#include "realm/reduction_ops.h"
#include "region/dependent_partitioning.h"

namespace visrt::fuzz {

namespace {

/// Mutable view of the spec under construction plus derived lookup tables.
struct Builder {
  ProgramSpec spec;
  std::vector<IntervalSet> region_domain;   ///< by region-table index
  std::vector<std::uint32_t> region_tree;   ///< by region-table index
  std::vector<std::uint32_t> part_tree;     ///< by partition-table index
  std::vector<std::vector<std::uint32_t>> fields_by_tree;

  void add_partition(PartitionSpec part) {
    std::uint32_t tree = region_tree[part.parent];
    for (const IntervalSet& s : part.subspaces) {
      region_domain.push_back(s);
      region_tree.push_back(tree);
    }
    part_tree.push_back(tree);
    spec.partitions.push_back(std::move(part));
  }
};

Privilege random_privilege(Rng& rng) {
  double roll = rng.uniform();
  if (roll < 0.3) return Privilege::read();
  if (roll < 0.6) return Privilege::read_write();
  // Only the operators whose integer folds are exact and order-insensitive
  // (prod overflows double precision, making fold order observable — a
  // false positive for the differential oracle).
  static constexpr std::array<ReductionOpID, 3> kOps = {kRedopSum, kRedopMin,
                                                        kRedopMax};
  return Privilege::reduce(kOps[rng.below(kOps.size())]);
}

/// A random subset of [0, size) built from random blocks (possibly empty).
IntervalSet random_blocks(Rng& rng, const IntervalSet& parent, int max_blocks) {
  Interval b = parent.bounds();
  if (b.empty()) return {};
  IntervalSet out;
  int blocks = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(
                       std::max(1, max_blocks))));
  for (int i = 0; i < blocks; ++i) {
    coord_t lo = rng.range(b.lo, b.hi);
    coord_t hi = std::min(b.hi, lo + rng.range(0, (b.hi - b.lo) / 3 + 1));
    out = out.unite(IntervalSet(lo, hi));
  }
  return out.intersect(parent);
}

void generate_partitions(Rng& rng, Builder& b,
                         const GeneratorOptions& options) {
  std::size_t count = rng.below(options.max_partitions + 1);
  for (std::size_t k = 0; k < count; ++k) {
    // Parent: any existing region, biased toward roots (depth keeps the
    // trees from degenerating into a single deep chain).
    std::uint32_t parent =
        rng.chance(0.6)
            ? static_cast<std::uint32_t>(rng.below(b.spec.trees.size()))
            : static_cast<std::uint32_t>(rng.below(b.region_domain.size()));
    const IntervalSet& dom = b.region_domain[parent];
    if (dom.volume() < 4) continue; // too small to partition interestingly

    PartitionSpec part;
    part.parent = parent;
    part.name = "P" + std::to_string(b.spec.partitions.size());
    std::size_t colors = 2 + rng.below(3);

    switch (rng.below(5)) {
    case 0: // blocked: disjoint and complete
      part.subspaces = partition_equally(dom, colors);
      break;
    case 1: // aliased ghost-style blocks: possibly overlapping, incomplete
      for (std::size_t c = 0; c < colors; ++c)
        part.subspaces.push_back(random_blocks(rng, dom, 2));
      break;
    case 2: { // colored by a pseudo-field: disjoint, possibly incomplete
      std::uint64_t salt = rng.next();
      double drop = rng.uniform() * 0.3;
      std::size_t n = colors;
      part.subspaces = partition_by_field(
          dom, n, [salt, drop, n](coord_t p) -> std::size_t {
            std::uint64_t h =
                (static_cast<std::uint64_t>(p) * 0x9e3779b97f4a7c15ULL) ^
                salt;
            h ^= h >> 29;
            if (static_cast<double>(h % 1000) < drop * 1000) return kNoColor;
            return static_cast<std::size_t>(h % n);
          });
      break;
    }
    case 3: { // image of an existing partition through a pointer field
      if (b.spec.partitions.empty()) {
        part.subspaces = partition_equally(dom, colors);
        break;
      }
      const PartitionSpec& src =
          b.spec.partitions[rng.below(b.spec.partitions.size())];
      coord_t stride = rng.range(1, 7);
      coord_t offset = rng.range(0, dom.bounds().hi);
      coord_t modulus = std::max<coord_t>(1, dom.bounds().hi + 1);
      std::vector<IntervalSet> img = image(
          src.subspaces, [&](coord_t p, std::vector<coord_t>& out) {
            out.push_back((p * stride + offset) % modulus);
            if (p % 3 == 0) out.push_back((p + offset) % modulus);
          });
      for (IntervalSet& s : img) part.subspaces.push_back(s.intersect(dom));
      break;
    }
    default: { // preimage of an existing partition
      if (b.spec.partitions.empty()) {
        part.subspaces = partition_equally(dom, colors);
        break;
      }
      const PartitionSpec& dst =
          b.spec.partitions[rng.below(b.spec.partitions.size())];
      coord_t stride = rng.range(1, 5);
      coord_t modulus =
          std::max<coord_t>(1, b.region_domain[dst.parent].bounds().hi + 1);
      std::vector<IntervalSet> pre = preimage(
          dst.subspaces, dom, [&](coord_t p, std::vector<coord_t>& out) {
            out.push_back((p * stride) % modulus);
          });
      part.subspaces = std::move(pre);
      break;
    }
    }
    if (part.subspaces.empty()) continue;
    b.add_partition(std::move(part));
  }
}

/// Random requirement list for one task: 1-3 requirements with pairwise
/// distinct fields, each requirement's region drawn from its field's tree.
std::vector<ReqSpec> random_reqs(Rng& rng, const Builder& b,
                                 const GeneratorOptions& options) {
  std::vector<std::uint32_t> fields(b.spec.fields.size());
  for (std::uint32_t f = 0; f < fields.size(); ++f) fields[f] = f;
  rng.shuffle(fields);
  std::size_t nreqs = 1;
  while (nreqs < fields.size() && rng.chance(options.multi_req_prob)) ++nreqs;

  // Per-tree region-table indices (derived, small).
  std::vector<ReqSpec> reqs;
  for (std::size_t i = 0; i < nreqs; ++i) {
    std::uint32_t field = fields[i];
    std::uint32_t tree = b.spec.fields[field].tree;
    std::vector<std::uint32_t> candidates;
    for (std::uint32_t r = 0; r < b.region_tree.size(); ++r)
      if (b.region_tree[r] == tree) candidates.push_back(r);
    ReqSpec req;
    req.region = candidates[rng.below(candidates.size())];
    req.field = field;
    req.privilege = random_privilege(rng);
    reqs.push_back(req);
  }
  return reqs;
}

StreamItem random_task(Rng& rng, const Builder& b,
                       const GeneratorOptions& options) {
  StreamItem item;
  item.kind = StreamItem::Kind::Task;
  item.task.requirements = random_reqs(rng, b, options);
  item.task.mapped_node = static_cast<NodeID>(rng.below(b.spec.num_nodes));
  item.task.salt = rng.below(977);
  return item;
}

/// An index launch over partitions with matching color counts (one per
/// distinct field); falls back to a plain task when impossible.
StreamItem random_index_launch(Rng& rng, const Builder& b,
                               const GeneratorOptions& options) {
  if (b.spec.partitions.empty()) return random_task(rng, b, options);
  std::uint32_t first =
      static_cast<std::uint32_t>(rng.below(b.spec.partitions.size()));
  std::size_t colors = b.spec.partitions[first].subspaces.size();

  StreamItem item;
  item.kind = StreamItem::Kind::Index;
  item.index.salt = rng.below(977);

  std::vector<std::uint32_t> used_fields;
  auto add_req = [&](std::uint32_t part) -> bool {
    std::uint32_t tree = b.part_tree[part];
    std::vector<std::uint32_t> fields;
    for (std::uint32_t f : b.fields_by_tree[tree])
      if (std::find(used_fields.begin(), used_fields.end(), f) ==
          used_fields.end())
        fields.push_back(f);
    if (fields.empty()) return false;
    IndexReqSpec req;
    req.partition = part;
    req.field = fields[rng.below(fields.size())];
    req.privilege = random_privilege(rng);
    used_fields.push_back(req.field);
    item.index.requirements.push_back(req);
    return true;
  };
  if (!add_req(first)) return random_task(rng, b, options);
  if (rng.chance(options.multi_req_prob)) {
    std::vector<std::uint32_t> compatible;
    for (std::uint32_t p = 0; p < b.spec.partitions.size(); ++p)
      if (b.spec.partitions[p].subspaces.size() == colors)
        compatible.push_back(p);
    if (!compatible.empty())
      add_req(compatible[rng.below(compatible.size())]);
  }
  return item;
}

} // namespace

ProgramSpec generate_program(Rng& rng, const GeneratorOptions& options) {
  Builder b;
  b.spec.num_nodes = 1 + static_cast<std::uint32_t>(
                             rng.below(std::max(1u, options.max_nodes)));

  if (options.randomize_config) {
    static constexpr std::array<Algorithm, 6> kSubjects = {
        Algorithm::Paint,      Algorithm::Warnock,      Algorithm::RayCast,
        Algorithm::NaivePaint, Algorithm::NaiveWarnock, Algorithm::NaiveRayCast,
    };
    b.spec.subject = kSubjects[rng.below(kSubjects.size())];
    b.spec.dcr = rng.chance(0.5);
    b.spec.tracing = rng.chance(0.85);
    b.spec.tuning.paint_occlusion_pruning = !rng.chance(0.25);
    b.spec.tuning.warnock_memoize = !rng.chance(0.25);
    b.spec.tuning.raycast_dominating_writes = !rng.chance(0.25);
    b.spec.tuning.raycast_force_kd_fallback = rng.chance(0.25);
  } else {
    b.spec.subject = options.subject;
    b.spec.dcr = options.dcr;
    b.spec.tracing = options.tracing;
    b.spec.tuning = options.tuning;
  }

  // Trees.
  std::size_t ntrees = 1 + rng.below(std::max<std::size_t>(1, options.max_trees));
  for (std::size_t t = 0; t < ntrees; ++t) {
    TreeSpec tree;
    tree.name = std::string(1, static_cast<char>('A' + t));
    tree.size = rng.range(options.min_tree_size, options.max_tree_size);
    b.region_domain.push_back(IntervalSet(0, tree.size - 1));
    b.region_tree.push_back(static_cast<std::uint32_t>(t));
    b.spec.trees.push_back(std::move(tree));
  }

  generate_partitions(rng, b, options);

  // Fields: at least one per tree so every tree is usable.
  std::size_t nfields =
      std::max(ntrees, 1 + rng.below(std::max<std::size_t>(
                               1, options.max_fields)));
  b.fields_by_tree.resize(ntrees);
  for (std::size_t f = 0; f < nfields; ++f) {
    FieldSpec field;
    field.tree = f < ntrees ? static_cast<std::uint32_t>(f)
                            : static_cast<std::uint32_t>(rng.below(ntrees));
    field.name = "f" + std::to_string(f);
    field.init_mod = rng.range(1, 13);
    b.fields_by_tree[field.tree].push_back(static_cast<std::uint32_t>(f));
    b.spec.fields.push_back(std::move(field));
  }

  // Stream.
  std::size_t target = options.min_stream_items +
                       rng.below(options.max_stream_items -
                                 options.min_stream_items + 1);
  std::uint32_t next_trace = 1;
  while (b.spec.stream.size() < target) {
    if (rng.chance(options.trace_block_prob)) {
      // A trace block: an identical launch sequence repeated 2-3 times.
      // The first repetition captures the template, later ones replay it.
      std::size_t block_len = 1 + rng.below(3);
      std::vector<StreamItem> block;
      for (std::size_t i = 0; i < block_len; ++i)
        block.push_back(rng.chance(options.index_launch_prob)
                            ? random_index_launch(rng, b, options)
                            : random_task(rng, b, options));
      std::size_t reps = 2 + rng.below(2);
      std::uint32_t id = next_trace++;
      for (std::size_t r = 0; r < reps; ++r) {
        StreamItem begin;
        begin.kind = StreamItem::Kind::BeginTrace;
        begin.trace_id = id;
        b.spec.stream.push_back(begin);
        for (const StreamItem& item : block) b.spec.stream.push_back(item);
        StreamItem end;
        end.kind = StreamItem::Kind::EndTrace;
        b.spec.stream.push_back(end);
      }
      continue;
    }
    if (rng.chance(options.end_iteration_prob)) {
      StreamItem item;
      item.kind = StreamItem::Kind::EndIteration;
      b.spec.stream.push_back(item);
      continue;
    }
    b.spec.stream.push_back(rng.chance(options.index_launch_prob)
                                ? random_index_launch(rng, b, options)
                                : random_task(rng, b, options));
  }

  validate(b.spec); // the generator must only ever emit valid programs
  return b.spec;
}

} // namespace visrt::fuzz
