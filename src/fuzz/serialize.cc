#include "fuzz/serialize.h"

#include <charconv>
#include <sstream>

#include "common/check.h"
#include "realm/reduction_ops.h"

namespace visrt::fuzz {

namespace {

const char* subject_name(Algorithm a) { return algorithm_name(a); }

Algorithm parse_subject(const std::string& name) {
  static constexpr std::array<Algorithm, 7> kAll = {
      Algorithm::Paint,        Algorithm::Warnock,
      Algorithm::RayCast,      Algorithm::NaivePaint,
      Algorithm::NaiveWarnock, Algorithm::NaiveRayCast,
      Algorithm::Reference,
  };
  for (Algorithm a : kAll)
    if (name == algorithm_name(a)) return a;
  throw ApiError("visprog: unknown subject algorithm '" + name + "'");
}

std::string privilege_token(const Privilege& p) {
  switch (p.kind) {
  case PrivilegeKind::Read: return "read";
  case PrivilegeKind::ReadWrite: return "rw";
  case PrivilegeKind::Reduce:
    switch (p.redop) {
    case kRedopSum: return "red:sum";
    case kRedopProd: return "red:prod";
    case kRedopMin: return "red:min";
    case kRedopMax: return "red:max";
    default: return "red:#" + std::to_string(p.redop);
    }
  }
  return "?";
}

Privilege parse_privilege(const std::string& tok) {
  if (tok == "read") return Privilege::read();
  if (tok == "rw") return Privilege::read_write();
  if (tok.starts_with("red:")) {
    std::string op = tok.substr(4);
    if (op == "sum") return Privilege::reduce(kRedopSum);
    if (op == "prod") return Privilege::reduce(kRedopProd);
    if (op == "min") return Privilege::reduce(kRedopMin);
    if (op == "max") return Privilege::reduce(kRedopMax);
    if (op.starts_with("#"))
      return Privilege::reduce(
          static_cast<ReductionOpID>(std::stoul(op.substr(1))));
  }
  throw ApiError("visprog: unknown privilege token '" + tok + "'");
}

std::string interval_set_token(const IntervalSet& set) {
  if (set.empty()) return "empty";
  std::string out;
  for (const Interval& iv : set.intervals()) {
    if (!out.empty()) out += "+";
    out += "[" + std::to_string(iv.lo) + "," + std::to_string(iv.hi) + "]";
  }
  return out;
}

IntervalSet parse_interval_set(const std::string& tok) {
  if (tok == "empty") return {};
  std::vector<Interval> runs;
  std::size_t pos = 0;
  while (pos < tok.size()) {
    require(tok[pos] == '[', "visprog: malformed interval '" + tok + "'");
    std::size_t comma = tok.find(',', pos);
    std::size_t close = tok.find(']', pos);
    require(comma != std::string::npos && close != std::string::npos &&
                comma < close,
            "visprog: malformed interval '" + tok + "'");
    Interval iv;
    iv.lo = std::stoll(tok.substr(pos + 1, comma - pos - 1));
    iv.hi = std::stoll(tok.substr(comma + 1, close - comma - 1));
    require(iv.lo <= iv.hi, "visprog: inverted interval '" + tok + "'");
    runs.push_back(iv);
    pos = close + 1;
    if (pos < tok.size()) {
      require(tok[pos] == '+', "visprog: malformed interval '" + tok + "'");
      ++pos;
    }
  }
  return IntervalSet::from_intervals(std::move(runs));
}

/// "key=value" accessor with error reporting.
std::string expect_kv(const std::string& tok, std::string_view key) {
  std::string prefix = std::string(key) + "=";
  require(tok.starts_with(prefix),
          "visprog: expected '" + prefix + "...', got '" + tok + "'");
  return tok.substr(prefix.size());
}

std::uint64_t parse_u64(const std::string& s) {
  std::uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  require(ec == std::errc() && ptr == s.data() + s.size(),
          "visprog: expected a number, got '" + s + "'");
  return v;
}

bool parse_bool(const std::string& s) {
  std::uint64_t v = parse_u64(s);
  require(v <= 1, "visprog: expected 0 or 1, got '" + s + "'");
  return v == 1;
}

/// Index token like "r12" / "p3" / "f0".
std::uint32_t parse_index(const std::string& tok, char prefix) {
  require(tok.size() >= 2 && tok[0] == prefix,
          std::string("visprog: expected '") + prefix + "<index>', got '" +
              tok + "'");
  return static_cast<std::uint32_t>(parse_u64(tok.substr(1)));
}

/// Requirement groups: "r3 f0 rw | r2 f1 red:sum".
template <typename Req, typename Make>
std::vector<Req> parse_req_groups(const std::vector<std::string>& toks,
                                  std::size_t start, char region_prefix,
                                  const Make& make) {
  std::vector<Req> reqs;
  std::size_t i = start;
  while (i < toks.size()) {
    require(toks.size() - i >= 3, "visprog: truncated requirement");
    std::uint32_t region = parse_index(toks[i], region_prefix);
    std::uint32_t field = parse_index(toks[i + 1], 'f');
    Privilege priv = parse_privilege(toks[i + 2]);
    reqs.push_back(make(region, field, priv));
    i += 3;
    if (i < toks.size()) {
      require(toks[i] == "|",
              "visprog: requirements must be separated by '|'");
      ++i;
      require(i < toks.size(), "visprog: trailing '|'");
    }
  }
  return reqs;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) toks.push_back(tok);
  return toks;
}

/// Parse one tokenized line into a statement.  `saw_header` selects the
/// header-required mode for the first statement of a document.
VisprogStatement parse_statement(const std::vector<std::string>& toks,
                                 bool saw_header) {
  VisprogStatement st;
  const std::string& head = toks[0];
  if (!saw_header) {
    require(head == "visprog" && toks.size() == 2 && toks[1] == "1",
            "visprog: missing 'visprog 1' header");
    st.kind = VisprogStatement::Kind::Header;
    return st;
  }
  if (head == "config") {
    require(toks.size() == 5, "visprog: config takes 4 settings");
    st.kind = VisprogStatement::Kind::Config;
    st.num_nodes =
        static_cast<std::uint32_t>(parse_u64(expect_kv(toks[1], "nodes")));
    st.dcr = parse_bool(expect_kv(toks[2], "dcr"));
    st.tracing = parse_bool(expect_kv(toks[3], "tracing"));
    st.subject = parse_subject(expect_kv(toks[4], "subject"));
  } else if (head == "tuning") {
    require(toks.size() == 6, "visprog: tuning takes 5 knobs");
    st.kind = VisprogStatement::Kind::Tuning;
    st.tuning.paint_occlusion_pruning =
        parse_bool(expect_kv(toks[1], "occlusion"));
    st.tuning.warnock_memoize = parse_bool(expect_kv(toks[2], "memoize"));
    st.tuning.raycast_dominating_writes =
        parse_bool(expect_kv(toks[3], "domwrites"));
    st.tuning.raycast_force_kd_fallback =
        parse_bool(expect_kv(toks[4], "kdfallback"));
    st.tuning.inject_paint_reduce_bug =
        parse_bool(expect_kv(toks[5], "paintbug"));
  } else if (head == "threads") {
    require(toks.size() == 2, "visprog: threads takes a lane count");
    st.kind = VisprogStatement::Kind::Threads;
    st.analysis_threads = static_cast<unsigned>(parse_u64(toks[1]));
    require(st.analysis_threads >= 1, "visprog: threads must be >= 1");
  } else if (head == "shard_batch") {
    require(toks.size() == 2, "visprog: shard_batch takes a granularity");
    st.kind = VisprogStatement::Kind::ShardBatch;
    st.shard_batch = static_cast<std::size_t>(parse_u64(toks[1]));
    require(st.shard_batch >= 1, "visprog: shard_batch must be >= 1");
  } else if (head == "tree") {
    require(toks.size() == 3, "visprog: tree takes a name and a size");
    st.kind = VisprogStatement::Kind::Tree;
    st.tree.name = toks[1];
    st.tree.size = static_cast<coord_t>(parse_u64(toks[2]));
  } else if (head == "partition") {
    require(toks.size() >= 4,
            "visprog: partition takes a name, parent and subspaces");
    st.kind = VisprogStatement::Kind::Partition;
    st.partition.name = toks[1];
    st.partition.parent =
        static_cast<std::uint32_t>(parse_u64(expect_kv(toks[2], "parent")));
    for (std::size_t i = 3; i < toks.size(); ++i)
      st.partition.subspaces.push_back(parse_interval_set(toks[i]));
  } else if (head == "field") {
    require(toks.size() == 4, "visprog: field takes a name, tree and mod");
    st.kind = VisprogStatement::Kind::Field;
    st.field.name = toks[1];
    st.field.tree =
        static_cast<std::uint32_t>(parse_u64(expect_kv(toks[2], "tree")));
    st.field.init_mod =
        static_cast<coord_t>(parse_u64(expect_kv(toks[3], "mod")));
  } else if (head == "task") {
    require(toks.size() >= 5, "visprog: truncated task");
    st.kind = VisprogStatement::Kind::Item;
    st.item.kind = StreamItem::Kind::Task;
    st.item.task.mapped_node =
        static_cast<NodeID>(parse_u64(expect_kv(toks[1], "node")));
    st.item.task.salt = parse_u64(expect_kv(toks[2], "salt"));
    st.item.task.requirements = parse_req_groups<ReqSpec>(
        toks, 3, 'r',
        [](std::uint32_t region, std::uint32_t field, const Privilege& priv) {
          return ReqSpec{region, field, priv};
        });
  } else if (head == "index") {
    require(toks.size() >= 4, "visprog: truncated index launch");
    st.kind = VisprogStatement::Kind::Item;
    st.item.kind = StreamItem::Kind::Index;
    st.item.index.salt = parse_u64(expect_kv(toks[1], "salt"));
    st.item.index.requirements = parse_req_groups<IndexReqSpec>(
        toks, 2, 'p',
        [](std::uint32_t partition, std::uint32_t field,
           const Privilege& priv) {
          return IndexReqSpec{partition, field, priv};
        });
  } else if (head == "begin_trace") {
    require(toks.size() == 2, "visprog: begin_trace takes an id");
    st.kind = VisprogStatement::Kind::Item;
    st.item.kind = StreamItem::Kind::BeginTrace;
    st.item.trace_id = static_cast<std::uint32_t>(parse_u64(toks[1]));
  } else if (head == "end_trace") {
    st.kind = VisprogStatement::Kind::Item;
    st.item.kind = StreamItem::Kind::EndTrace;
  } else if (head == "end_iteration") {
    st.kind = VisprogStatement::Kind::Item;
    st.item.kind = StreamItem::Kind::EndIteration;
  } else {
    throw ApiError("visprog: unknown directive '" + head + "'");
  }
  return st;
}

} // namespace

void write_visprog(std::ostream& os, const ProgramSpec& spec) {
  os << "visprog 1\n";
  os << "config nodes=" << spec.num_nodes << " dcr=" << (spec.dcr ? 1 : 0)
     << " tracing=" << (spec.tracing ? 1 : 0)
     << " subject=" << subject_name(spec.subject) << "\n";
  const EngineTuning& t = spec.tuning;
  os << "tuning occlusion=" << (t.paint_occlusion_pruning ? 1 : 0)
     << " memoize=" << (t.warnock_memoize ? 1 : 0)
     << " domwrites=" << (t.raycast_dominating_writes ? 1 : 0)
     << " kdfallback=" << (t.raycast_force_kd_fallback ? 1 : 0)
     << " paintbug=" << (t.inject_paint_reduce_bug ? 1 : 0) << "\n";
  if (spec.analysis_threads != 1)
    os << "threads " << spec.analysis_threads << "\n";
  if (spec.shard_batch != 0)
    os << "shard_batch " << spec.shard_batch << "\n";
  for (const TreeSpec& tree : spec.trees)
    os << "tree " << tree.name << " " << tree.size << "\n";
  for (const PartitionSpec& part : spec.partitions) {
    os << "partition " << part.name << " parent=" << part.parent;
    for (const IntervalSet& s : part.subspaces)
      os << " " << interval_set_token(s);
    os << "\n";
  }
  for (const FieldSpec& field : spec.fields)
    os << "field " << field.name << " tree=" << field.tree
       << " mod=" << field.init_mod << "\n";
  for (const StreamItem& item : spec.stream) {
    switch (item.kind) {
    case StreamItem::Kind::Task: {
      os << "task node=" << item.task.mapped_node
         << " salt=" << item.task.salt;
      for (std::size_t i = 0; i < item.task.requirements.size(); ++i) {
        const ReqSpec& req = item.task.requirements[i];
        os << (i ? " | " : " ") << "r" << req.region << " f" << req.field
           << " " << privilege_token(req.privilege);
      }
      os << "\n";
      break;
    }
    case StreamItem::Kind::Index: {
      os << "index salt=" << item.index.salt;
      for (std::size_t i = 0; i < item.index.requirements.size(); ++i) {
        const IndexReqSpec& req = item.index.requirements[i];
        os << (i ? " | " : " ") << "p" << req.partition << " f" << req.field
           << " " << privilege_token(req.privilege);
      }
      os << "\n";
      break;
    }
    case StreamItem::Kind::BeginTrace:
      os << "begin_trace " << item.trace_id << "\n";
      break;
    case StreamItem::Kind::EndTrace:
      os << "end_trace\n";
      break;
    case StreamItem::Kind::EndIteration:
      os << "end_iteration\n";
      break;
    }
  }
}

std::string to_visprog(const ProgramSpec& spec) {
  std::ostringstream os;
  write_visprog(os, spec);
  return os.str();
}

void apply_statement(ProgramSpec& spec, const VisprogStatement& st) {
  switch (st.kind) {
  case VisprogStatement::Kind::Header: break;
  case VisprogStatement::Kind::Config:
    spec.num_nodes = st.num_nodes;
    spec.dcr = st.dcr;
    spec.tracing = st.tracing;
    spec.subject = st.subject;
    break;
  case VisprogStatement::Kind::Tuning: spec.tuning = st.tuning; break;
  case VisprogStatement::Kind::Threads:
    spec.analysis_threads = st.analysis_threads;
    break;
  case VisprogStatement::Kind::ShardBatch:
    spec.shard_batch = st.shard_batch;
    break;
  case VisprogStatement::Kind::Tree: spec.trees.push_back(st.tree); break;
  case VisprogStatement::Kind::Partition:
    spec.partitions.push_back(st.partition);
    break;
  case VisprogStatement::Kind::Field: spec.fields.push_back(st.field); break;
  case VisprogStatement::Kind::Item: spec.stream.push_back(st.item); break;
  }
}

void VisprogStreamParser::feed(std::string_view bytes) {
  // Drop the consumed prefix before appending so a long-running session
  // holds at most one partial line plus the newest chunk.
  if (pos_ > 0) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(bytes);
}

VisprogStreamParser::Status VisprogStreamParser::next(VisprogStatement& out) {
  for (;;) {
    std::size_t nl = buffer_.find('\n', pos_);
    std::string line;
    if (nl == std::string::npos) {
      if (!finished_) return Status::NeedMore;
      if (pos_ >= buffer_.size()) return Status::End;
      line = buffer_.substr(pos_);
      byte_offset_ += buffer_.size() - pos_;
      pos_ = buffer_.size();
    } else {
      line = buffer_.substr(pos_, nl - pos_);
      byte_offset_ += nl + 1 - pos_;
      pos_ = nl + 1;
    }
    ++line_;
    std::vector<std::string> toks = tokenize(line);
    if (toks.empty() || toks[0].starts_with("#")) continue;
    try {
      out = parse_statement(toks, saw_header_);
    } catch (const ApiError& e) {
      throw ApiError("line " + std::to_string(line_) + ": " + e.what());
    }
    out.line = line_;
    if (out.kind == VisprogStatement::Kind::Header) saw_header_ = true;
    return Status::Statement;
  }
}

ProgramSpec parse_visprog(const std::string& text) {
  std::istringstream is(text);
  return read_visprog(is);
}

ProgramSpec read_visprog(std::istream& is) {
  ProgramSpec spec;
  spec.tracing = true;
  VisprogStreamParser parser;
  char chunk[4096];
  while (is.read(chunk, sizeof(chunk)) || is.gcount() > 0)
    parser.feed({chunk, static_cast<std::size_t>(is.gcount())});
  parser.finish();
  VisprogStatement st;
  while (parser.next(st) == VisprogStreamParser::Status::Statement)
    apply_statement(spec, st);
  try {
    require(parser.saw_header(), "visprog: empty document");
    validate(spec);
  } catch (const ApiError& e) {
    throw ApiError("line " + std::to_string(parser.line()) + ": " + e.what());
  }
  return spec;
}

} // namespace visrt::fuzz
