// visrt/fuzz/serialize.h
//
// The .visprog text format: a deterministic, human-readable serialization
// of a ProgramSpec, used for the minimized-repro corpus.  One line per
// declaration, whitespace-separated tokens, order fixed (config, tuning,
// trees, partitions, fields, stream), so serializing the same spec always
// produces the same bytes and `parse(to_visprog(s)) == s`.
//
//   visprog 1
//   config nodes=2 dcr=0 tracing=1 subject=raycast
//   tuning occlusion=1 memoize=1 domwrites=1 kdfallback=0 paintbug=0
//   tree A 160
//   partition P0 parent=0 [0,39] [40,79]+[100,119] empty
//   field f0 tree=0 mod=11
//   task node=1 salt=5 r3 f0 rw | r2 f1 red:sum
//   index salt=0 p0 f0 rw | p1 f1 read
//   begin_trace 1
//   end_trace
//   end_iteration
//
// Regions are `r<table-index>`, partitions `p<table-index>`, fields
// `f<table-index>`; subspaces are `[lo,hi]` runs joined by `+` (or the
// token `empty`).  Lines starting with `#` are comments.
#pragma once

#include <iosfwd>
#include <string>

#include "fuzz/program.h"

namespace visrt::fuzz {

/// Canonical text rendering of a spec.
std::string to_visprog(const ProgramSpec& spec);
void write_visprog(std::ostream& os, const ProgramSpec& spec);

/// Parse a .visprog document; throws ApiError with a line number on any
/// syntactic or semantic error (the result is always validate()-clean).
ProgramSpec parse_visprog(const std::string& text);
ProgramSpec read_visprog(std::istream& is);

} // namespace visrt::fuzz
