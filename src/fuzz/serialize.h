// visrt/fuzz/serialize.h
//
// The .visprog text format: a deterministic, human-readable serialization
// of a ProgramSpec, used for the minimized-repro corpus.  One line per
// declaration, whitespace-separated tokens, order fixed (config, tuning,
// trees, partitions, fields, stream), so serializing the same spec always
// produces the same bytes and `parse(to_visprog(s)) == s`.
//
//   visprog 1
//   config nodes=2 dcr=0 tracing=1 subject=raycast
//   tuning occlusion=1 memoize=1 domwrites=1 kdfallback=0 paintbug=0
//   tree A 160
//   partition P0 parent=0 [0,39] [40,79]+[100,119] empty
//   field f0 tree=0 mod=11
//   task node=1 salt=5 r3 f0 rw | r2 f1 red:sum
//   index salt=0 p0 f0 rw | p1 f1 read
//   begin_trace 1
//   end_trace
//   end_iteration
//
// Regions are `r<table-index>`, partitions `p<table-index>`, fields
// `f<table-index>`; subspaces are `[lo,hi]` runs joined by `+` (or the
// token `empty`).  Lines starting with `#` are comments.
//
// Two readers sit on one tokenizer: the batch `read_visprog` (whole
// document -> validated ProgramSpec) and the pull-based
// `VisprogStreamParser`, which yields one statement at a time and treats
// partial trailing input as a recoverable NeedMore condition so a server
// can parse straight off a socket without re-buffering whole documents.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "fuzz/program.h"

namespace visrt::fuzz {

/// Canonical text rendering of a spec.
std::string to_visprog(const ProgramSpec& spec);
void write_visprog(std::ostream& os, const ProgramSpec& spec);

/// Parse a .visprog document; throws ApiError with a line number on any
/// syntactic or semantic error (the result is always validate()-clean).
ProgramSpec parse_visprog(const std::string& text);
ProgramSpec read_visprog(std::istream& is);

/// One parsed .visprog line.  Only the member selected by `kind` is
/// meaningful; `line` is the 1-based source line the statement came from.
struct VisprogStatement {
  enum class Kind {
    Header,    ///< the `visprog 1` document header
    Config,    ///< nodes / dcr / tracing / subject
    Tuning,    ///< the five EngineTuning knobs
    Threads,   ///< analysis lane count
    ShardBatch, ///< shard batch granularity override
    Tree,      ///< region-tree declaration
    Partition, ///< partition declaration
    Field,     ///< field declaration
    Item,      ///< stream item (task / index / trace / end_iteration)
  };
  Kind kind = Kind::Header;
  std::uint32_t num_nodes = 1; ///< Config
  bool dcr = false;            ///< Config
  bool tracing = true;         ///< Config
  Algorithm subject = Algorithm::RayCast; ///< Config
  EngineTuning tuning;         ///< Tuning
  unsigned analysis_threads = 1; ///< Threads
  std::size_t shard_batch = 0;   ///< ShardBatch
  TreeSpec tree;               ///< Tree
  PartitionSpec partition;     ///< Partition
  FieldSpec field;             ///< Field
  StreamItem item;             ///< Item
  std::size_t line = 0;
};

/// Fold a parsed statement into a spec under construction (declarations
/// land in their table vectors, stream items append to the stream).  The
/// statement is NOT validated here; batch readers validate the finished
/// spec, incremental consumers validate per statement with
/// `validate_decls` / `validate_item`.
void apply_statement(ProgramSpec& spec, const VisprogStatement& st);

/// Pull-based line parser for `.visprog` streams.
///
/// Feed arbitrary byte chunks with `feed`; pull one statement at a time
/// with `next`.  A trailing line with no terminator is a *recoverable*
/// condition — `next` returns NeedMore (with `byte_offset()` naming the
/// first unconsumed byte) until more input or `finish()` arrives, instead
/// of failing the whole document.  Malformed *complete* lines throw
/// ApiError; the parser stays usable and subsequent lines still parse, so
/// a server can reject one statement without dropping the session.
class VisprogStreamParser {
public:
  enum class Status {
    Statement, ///< `out` holds the next statement
    NeedMore,  ///< buffered input ends mid-line; feed more or finish()
    End,       ///< all input consumed (only after finish())
  };

  /// Append raw input bytes.
  void feed(std::string_view bytes);
  /// Declare end-of-input: a pending unterminated line becomes parseable.
  void finish() { finished_ = true; }

  /// Pull the next statement.  Blank and `#` comment lines are skipped.
  /// Throws ApiError (message prefixed `line N:`) on a malformed line or
  /// a non-header first statement.
  Status next(VisprogStatement& out);

  /// Bytes consumed so far — on NeedMore, the offset where the partial
  /// statement begins.
  std::size_t byte_offset() const { return byte_offset_; }
  /// 1-based line number of the most recently consumed line.
  std::size_t line() const { return line_; }
  bool saw_header() const { return saw_header_; }

private:
  std::string buffer_;
  std::size_t pos_ = 0;
  std::size_t byte_offset_ = 0;
  std::size_t line_ = 0;
  bool finished_ = false;
  bool saw_header_ = false;
};

} // namespace visrt::fuzz
