// visrt/fuzz/shrink.h
//
// Delta-debugging minimizer for failing programs.  Given a spec on which
// check_program() reports a failure, repeatedly applies reduction passes —
// ddmin-style chunk removal of stream items, trace-bracket removal, index
// launches lowered to their point tasks, requirement dropping, subspace
// shrinking, garbage collection of unused partitions/fields/trees, and
// configuration simplification (tracing off, DCR off, one node, default
// tuning, zero salts) — keeping a candidate only when it still fails with
// the *same* FailureKind.  Runs passes to a fixpoint under a global budget
// of oracle evaluations; the result is the smallest still-failing spec
// found, ready to serialize into the repro corpus.
#pragma once

#include <cstddef>

#include "fuzz/oracle.h"
#include "fuzz/program.h"

namespace visrt::fuzz {

struct ShrinkOptions {
  /// Hard cap on oracle evaluations (each runs the program twice).
  std::size_t max_attempts = 2000;
};

struct ShrinkResult {
  ProgramSpec spec;      ///< smallest spec still failing with `kind`
  FailureKind kind = FailureKind::None;
  std::size_t attempts = 0; ///< oracle evaluations spent
  std::size_t accepted = 0; ///< reductions that kept the failure
};

/// Minimize `failing` while preserving the failure kind of `report`
/// (which must be the result of check_program(failing)).
ShrinkResult shrink_program(const ProgramSpec& failing,
                            const DiffReport& report,
                            const ShrinkOptions& options = {});

} // namespace visrt::fuzz
