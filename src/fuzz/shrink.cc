#include "fuzz/shrink.h"

#include <algorithm>
#include <optional>

#include "common/check.h"

namespace visrt::fuzz {

namespace {

/// Drop orphaned trace markers after a chunk removal: unmatched end_trace
/// markers disappear, and a begin_trace that never closes is removed.
void repair_traces(std::vector<StreamItem>& stream) {
  std::vector<StreamItem> out;
  std::optional<std::size_t> open; // index in `out` of the open begin_trace
  for (const StreamItem& item : stream) {
    if (item.kind == StreamItem::Kind::BeginTrace) {
      if (open) continue;
      open = out.size();
      out.push_back(item);
    } else if (item.kind == StreamItem::Kind::EndTrace) {
      if (!open) continue;
      out.push_back(item);
      open.reset();
    } else {
      out.push_back(item);
    }
  }
  if (open) out.erase(out.begin() + static_cast<std::ptrdiff_t>(*open));
  stream = std::move(out);
}

class Shrinker {
public:
  Shrinker(const ProgramSpec& failing, FailureKind target,
           const ShrinkOptions& options)
      : best_(failing), target_(target), options_(options) {}

  ShrinkResult run() {
    bool progress = true;
    while (progress && attempts_ < options_.max_attempts) {
      progress = false;
      progress |= pass_simplify_config();
      progress |= pass_stream_ddmin();
      progress |= pass_drop_trace_markers();
      progress |= pass_lower_index_launches();
      progress |= pass_drop_requirements();
      progress |= pass_shrink_subspaces();
      progress |= pass_gc_tables();
    }
    return ShrinkResult{best_, target_, attempts_, accepted_};
  }

private:
  ProgramSpec best_;
  FailureKind target_;
  ShrinkOptions options_;
  std::size_t attempts_ = 0;
  std::size_t accepted_ = 0;

  bool budget_left() const { return attempts_ < options_.max_attempts; }

  /// Keep `candidate` as the new best iff it is valid and still fails with
  /// the target kind.
  bool try_accept(ProgramSpec candidate) {
    if (!budget_left()) return false;
    try {
      validate(candidate);
    } catch (const ApiError&) {
      return false; // a pass produced an ill-formed spec; just skip it
    }
    ++attempts_;
    if (check_program(candidate).kind != target_) return false;
    best_ = std::move(candidate);
    ++accepted_;
    return true;
  }

  /// ddmin over stream items: remove chunks of decreasing size.
  bool pass_stream_ddmin() {
    bool progress = false;
    std::size_t chunk = std::max<std::size_t>(1, best_.stream.size() / 2);
    while (true) {
      std::size_t start = 0;
      while (start < best_.stream.size() && budget_left()) {
        ProgramSpec cand = best_;
        auto first = cand.stream.begin() + static_cast<std::ptrdiff_t>(start);
        auto last = cand.stream.begin() +
                    static_cast<std::ptrdiff_t>(
                        std::min(start + chunk, cand.stream.size()));
        cand.stream.erase(first, last);
        repair_traces(cand.stream);
        if (try_accept(std::move(cand)))
          progress = true; // same start now names the next chunk
        else
          start += chunk;
      }
      if (chunk == 1) break;
      chunk /= 2;
    }
    return progress;
  }

  /// Remove begin/end trace marker pairs, keeping their contents.
  bool pass_drop_trace_markers() {
    bool progress = false;
    for (std::size_t i = 0; i < best_.stream.size() && budget_left(); ++i) {
      if (best_.stream[i].kind != StreamItem::Kind::BeginTrace) continue;
      std::size_t end = i + 1;
      while (end < best_.stream.size() &&
             best_.stream[end].kind != StreamItem::Kind::EndTrace)
        ++end;
      if (end >= best_.stream.size()) break; // repaired streams always close
      ProgramSpec cand = best_;
      cand.stream.erase(cand.stream.begin() + static_cast<std::ptrdiff_t>(end));
      cand.stream.erase(cand.stream.begin() + static_cast<std::ptrdiff_t>(i));
      if (try_accept(std::move(cand))) {
        progress = true;
        --i; // the item now at `i` has not been examined
      }
    }
    return progress;
  }

  /// Replace an index launch by its expanded point tasks, exposing the
  /// individual points to chunk removal and requirement dropping.
  bool pass_lower_index_launches() {
    bool progress = false;
    for (std::size_t i = 0; i < best_.stream.size() && budget_left(); ++i) {
      if (best_.stream[i].kind != StreamItem::Kind::Index) continue;
      const IndexSpec& index = best_.stream[i].index;
      std::size_t colors =
          best_.partitions[index.requirements[0].partition].subspaces.size();
      std::vector<StreamItem> points;
      for (std::size_t c = 0; c < colors; ++c) {
        StreamItem item;
        item.kind = StreamItem::Kind::Task;
        for (const IndexReqSpec& req : index.requirements)
          item.task.requirements.push_back(ReqSpec{
              region_table_base(best_, req.partition) +
                  static_cast<std::uint32_t>(c),
              req.field, req.privilege});
        item.task.mapped_node =
            static_cast<NodeID>(c % best_.num_nodes);
        item.task.salt = index.salt;
        points.push_back(std::move(item));
      }
      ProgramSpec cand = best_;
      cand.stream.erase(cand.stream.begin() + static_cast<std::ptrdiff_t>(i));
      cand.stream.insert(cand.stream.begin() + static_cast<std::ptrdiff_t>(i),
                         points.begin(), points.end());
      if (try_accept(std::move(cand))) progress = true;
    }
    return progress;
  }

  /// Drop individual requirements (keeping at least one per launch).
  bool pass_drop_requirements() {
    bool progress = false;
    for (std::size_t i = 0; i < best_.stream.size() && budget_left(); ++i) {
      StreamItem& item = best_.stream[i];
      std::size_t count = item.kind == StreamItem::Kind::Task
                              ? item.task.requirements.size()
                          : item.kind == StreamItem::Kind::Index
                              ? item.index.requirements.size()
                              : 0;
      if (count < 2) continue;
      for (std::size_t r = 0; r < count && count >= 2 && budget_left(); ++r) {
        ProgramSpec cand = best_;
        StreamItem& citem = cand.stream[i];
        if (citem.kind == StreamItem::Kind::Task)
          citem.task.requirements.erase(
              citem.task.requirements.begin() +
              static_cast<std::ptrdiff_t>(r));
        else
          citem.index.requirements.erase(
              citem.index.requirements.begin() +
              static_cast<std::ptrdiff_t>(r));
        if (try_accept(std::move(cand))) {
          progress = true;
          --count;
          --r;
        }
      }
    }
    return progress;
  }

  /// Shrink partition subspaces: collapse a multi-interval subspace to its
  /// first interval, or halve a single interval.
  bool pass_shrink_subspaces() {
    bool progress = false;
    for (std::size_t p = 0; p < best_.partitions.size(); ++p) {
      for (std::size_t s = 0;
           s < best_.partitions[p].subspaces.size() && budget_left(); ++s) {
        const IntervalSet& sub = best_.partitions[p].subspaces[s];
        if (sub.interval_count() > 1) {
          ProgramSpec cand = best_;
          Interval first = sub.intervals().front();
          cand.partitions[p].subspaces[s] = IntervalSet(first.lo, first.hi);
          if (try_accept(std::move(cand))) progress = true;
        }
        const IntervalSet& cur = best_.partitions[p].subspaces[s];
        if (cur.interval_count() == 1 && cur.volume() > 1) {
          Interval iv = cur.intervals().front();
          ProgramSpec cand = best_;
          cand.partitions[p].subspaces[s] =
              IntervalSet(iv.lo, iv.lo + (iv.hi - iv.lo) / 2);
          if (try_accept(std::move(cand))) progress = true;
        }
      }
    }
    return progress;
  }

  /// Garbage-collect unused partitions, fields and trees, remapping the
  /// index-based tables.
  bool pass_gc_tables() {
    bool progress = false;
    progress |= gc_partitions();
    progress |= gc_fields();
    progress |= gc_trees();
    return progress;
  }

  /// Region-table indices referenced by any launch.
  std::vector<bool> referenced_regions(const ProgramSpec& spec) const {
    std::vector<bool> used(region_table_size(spec), false);
    for (const StreamItem& item : spec.stream) {
      if (item.kind == StreamItem::Kind::Task) {
        for (const ReqSpec& req : item.task.requirements)
          used[req.region] = true;
      } else if (item.kind == StreamItem::Kind::Index) {
        for (const IndexReqSpec& req : item.index.requirements) {
          std::uint32_t base = region_table_base(spec, req.partition);
          std::size_t n = spec.partitions[req.partition].subspaces.size();
          for (std::size_t c = 0; c < n; ++c) used[base + c] = true;
        }
      }
    }
    return used;
  }

  bool gc_partitions() {
    bool progress = false;
    // Try dropping one partition at a time, highest index first so earlier
    // bases stay stable while iterating.
    for (std::size_t pi = best_.partitions.size(); pi-- > 0 && budget_left();) {
      std::uint32_t p = static_cast<std::uint32_t>(pi);
      std::vector<bool> used = referenced_regions(best_);
      std::uint32_t base = region_table_base(best_, p);
      std::uint32_t n =
          static_cast<std::uint32_t>(best_.partitions[p].subspaces.size());
      bool removable = true;
      for (std::uint32_t c = 0; c < n && removable; ++c)
        if (used[base + c]) removable = false;
      for (const StreamItem& item : best_.stream) {
        if (!removable) break;
        if (item.kind == StreamItem::Kind::Index)
          for (const IndexReqSpec& req : item.index.requirements)
            if (req.partition == p) removable = false;
      }
      // Another partition rooted in one of p's children pins p.
      for (std::size_t q = 0; q < best_.partitions.size() && removable; ++q)
        if (q != pi && best_.partitions[q].parent >= base &&
            best_.partitions[q].parent < base + n)
          removable = false;
      if (!removable) continue;

      ProgramSpec cand = best_;
      cand.partitions.erase(cand.partitions.begin() +
                            static_cast<std::ptrdiff_t>(pi));
      auto remap_region = [base, n](std::uint32_t r) {
        return r >= base + n ? r - n : r;
      };
      for (PartitionSpec& part : cand.partitions)
        part.parent = remap_region(part.parent);
      for (StreamItem& item : cand.stream) {
        if (item.kind == StreamItem::Kind::Task)
          for (ReqSpec& req : item.task.requirements)
            req.region = remap_region(req.region);
        else if (item.kind == StreamItem::Kind::Index)
          for (IndexReqSpec& req : item.index.requirements)
            if (req.partition > p) --req.partition;
      }
      if (try_accept(std::move(cand))) progress = true;
    }
    return progress;
  }

  bool gc_fields() {
    bool progress = false;
    for (std::size_t fi = best_.fields.size(); fi-- > 0 && budget_left();) {
      std::uint32_t f = static_cast<std::uint32_t>(fi);
      bool used = false;
      for (const StreamItem& item : best_.stream) {
        if (item.kind == StreamItem::Kind::Task) {
          for (const ReqSpec& req : item.task.requirements)
            if (req.field == f) used = true;
        } else if (item.kind == StreamItem::Kind::Index) {
          for (const IndexReqSpec& req : item.index.requirements)
            if (req.field == f) used = true;
        }
      }
      if (used) continue;
      ProgramSpec cand = best_;
      cand.fields.erase(cand.fields.begin() + static_cast<std::ptrdiff_t>(fi));
      for (StreamItem& item : cand.stream) {
        if (item.kind == StreamItem::Kind::Task)
          for (ReqSpec& req : item.task.requirements)
            if (req.field > f) --req.field;
        if (item.kind == StreamItem::Kind::Index)
          for (IndexReqSpec& req : item.index.requirements)
            if (req.field > f) --req.field;
      }
      if (try_accept(std::move(cand))) progress = true;
    }
    return progress;
  }

  bool gc_trees() {
    bool progress = false;
    for (std::size_t ti = best_.trees.size(); ti-- > 0 && budget_left();) {
      if (best_.trees.size() == 1) break; // a program needs one tree
      std::uint32_t t = static_cast<std::uint32_t>(ti);
      bool used = false;
      for (const FieldSpec& field : best_.fields)
        if (field.tree == t) used = true;
      for (const PartitionSpec& part : best_.partitions)
        if (part.parent == t) used = true;
      std::vector<bool> regions = referenced_regions(best_);
      if (regions[t]) used = true;
      if (used) continue;
      // With no field, partition or requirement on the tree, removing it
      // shifts every region index above t down by one.
      ProgramSpec cand = best_;
      cand.trees.erase(cand.trees.begin() + static_cast<std::ptrdiff_t>(ti));
      for (PartitionSpec& part : cand.partitions)
        if (part.parent > t) --part.parent;
      for (FieldSpec& field : cand.fields)
        if (field.tree > t) --field.tree;
      for (StreamItem& item : cand.stream)
        if (item.kind == StreamItem::Kind::Task)
          for (ReqSpec& req : item.task.requirements)
            if (req.region > t) --req.region;
      if (try_accept(std::move(cand))) progress = true;
    }
    return progress;
  }

  /// Configuration simplifications, each its own candidate.
  bool pass_simplify_config() {
    bool progress = false;
    if (best_.tracing && budget_left()) {
      ProgramSpec cand = best_;
      cand.tracing = false;
      std::erase_if(cand.stream, [](const StreamItem& item) {
        return item.kind == StreamItem::Kind::BeginTrace ||
               item.kind == StreamItem::Kind::EndTrace;
      });
      if (try_accept(std::move(cand))) progress = true;
    }
    if (best_.dcr && budget_left()) {
      ProgramSpec cand = best_;
      cand.dcr = false;
      if (try_accept(std::move(cand))) progress = true;
    }
    if (best_.num_nodes > 1 && budget_left()) {
      ProgramSpec cand = best_;
      cand.num_nodes = 1;
      for (StreamItem& item : cand.stream)
        if (item.kind == StreamItem::Kind::Task) item.task.mapped_node = 0;
      if (try_accept(std::move(cand))) progress = true;
    }
    bool tuning_default =
        best_.tuning == EngineTuning{} ||
        (best_.tuning.inject_paint_reduce_bug &&
         [&] {
           EngineTuning plain = best_.tuning;
           plain.inject_paint_reduce_bug = false;
           return plain == EngineTuning{};
         }());
    if (!tuning_default && budget_left()) {
      // Reset the ablation knobs but keep the injected-bug switch: the bug
      // is usually the very thing being minimized.
      ProgramSpec cand = best_;
      bool bug = cand.tuning.inject_paint_reduce_bug;
      cand.tuning = EngineTuning{};
      cand.tuning.inject_paint_reduce_bug = bug;
      if (try_accept(std::move(cand))) progress = true;
    }
    bool has_salt = false;
    for (const StreamItem& item : best_.stream)
      has_salt |= (item.kind == StreamItem::Kind::Task && item.task.salt) ||
                  (item.kind == StreamItem::Kind::Index && item.index.salt);
    if (has_salt && budget_left()) {
      ProgramSpec cand = best_;
      for (StreamItem& item : cand.stream) {
        item.task.salt = 0;
        item.index.salt = 0;
      }
      if (try_accept(std::move(cand))) progress = true;
    }
    return progress;
  }
};

} // namespace

ShrinkResult shrink_program(const ProgramSpec& failing,
                            const DiffReport& report,
                            const ShrinkOptions& options) {
  require(report.kind != FailureKind::None,
          "shrink_program needs a failing report");
  validate(failing);
  Shrinker shrinker(failing, report.kind, options);
  return shrinker.run();
}

} // namespace visrt::fuzz
