#include "fuzz/oracle.h"

#include <memory>
#include <optional>
#include <sstream>

#include "analysis/spy.h"
#include "common/check.h"
#include "runtime/runtime.h"
#include "sim/replay.h"

namespace visrt::fuzz {

const char* failure_kind_name(FailureKind kind) {
  switch (kind) {
  case FailureKind::None: return "none";
  case FailureKind::Value: return "value";
  case FailureKind::FinalValue: return "final-value";
  case FailureKind::Soundness: return "soundness";
  case FailureKind::Precision: return "precision";
  case FailureKind::Schedule: return "schedule";
  case FailureKind::Crash: return "crash";
  }
  return "?";
}

namespace {

std::uint64_t hash_u64(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * 1099511628211ULL;
}

std::uint64_t combine_hashes(std::span<const std::uint64_t> hashes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint64_t v : hashes) h = hash_u64(h, v);
  return h;
}

/// One spec executed through the Runtime, kept alive so the differential
/// checks can inspect the dependence DAG and work graph afterwards.
struct Execution {
  std::unique_ptr<Runtime> runtime;
  std::vector<RegionHandle> regions;
  std::vector<PartitionHandle> partitions;
  std::vector<ExpandedLaunch> expanded;
  RunResult result;
  /// Record provenance/ledgers during the run.  On by default so the
  /// differential checks can annotate precision mismatches with the
  /// provenance of the offending edge; inert when compiled out.
  bool provenance = true;
  bool telemetry = false;
  bool profile = false;
  /// Streaming ingest: retire completed prefixes every N launches
  /// (0 = batch, never retire).  See LiveRunOptions::retire_every.
  std::size_t retire_every = 0;
  std::size_t max_dead_eqsets = 1024;
  /// Maintain the order-maintenance structure on the dependence graph.  On
  /// by default: every check downstream of a run — the spy, the schedule
  /// validator, explain — answers transitive-order queries in O(1).
  bool order_queries = true;

  /// Run the whole program; invariant violations and API errors become
  /// RunResult::crashed instead of aborting the process.
  void run(const ProgramSpec& spec) {
    expanded = expand_stream(spec);
    result.launch_hashes.assign(expanded.size(), 0);
    ScopedCheckThrows catch_invariants;
    try {
      execute(spec);
    } catch (const std::exception& e) {
      result.crashed = true;
      result.crash_message = e.what();
    }
  }

private:
  void execute(const ProgramSpec& spec) {
    RuntimeConfig config;
    config.algorithm = spec.subject;
    config.tuning = spec.tuning;
    config.dcr = spec.dcr;
    config.enable_tracing = spec.tracing;
    config.track_values = true;
    config.record_launches = true; // the spy verifier reads the launch log
    config.analysis_threads = spec.analysis_threads;
    config.shard_batch = spec.shard_batch;
    config.machine.num_nodes = spec.num_nodes;
    config.provenance = provenance;
    config.telemetry = telemetry;
    config.profile = profile;
    config.order_queries = order_queries;
    runtime = std::make_unique<Runtime>(config);

    for (const TreeSpec& tree : spec.trees)
      regions.push_back(
          runtime->create_region(IntervalSet(0, tree.size - 1), tree.name));
    for (const PartitionSpec& part : spec.partitions) {
      PartitionHandle ph = runtime->create_partition(
          regions[part.parent], part.subspaces, part.name);
      partitions.push_back(ph);
      for (std::size_t c = 0; c < part.subspaces.size(); ++c)
        regions.push_back(runtime->subregion(ph, c));
    }
    for (std::size_t f = 0; f < spec.fields.size(); ++f) {
      const FieldSpec& field = spec.fields[f];
      coord_t mod = field.init_mod;
      FieldID id = runtime->add_field(
          regions[field.tree], field.name,
          [mod](coord_t p) { return static_cast<double>(p % mod); });
      invariant(id == static_cast<FieldID>(f),
                "field-table index must equal the runtime FieldID");
    }

    LaunchID next_expected = 0;
    LaunchID last_retire = 0;
    for (const StreamItem& item : spec.stream) {
      if (retire_every != 0 && next_expected >= last_retire + retire_every) {
        runtime->retire(max_dead_eqsets);
        last_retire = next_expected;
      }
      switch (item.kind) {
      case StreamItem::Kind::Task: {
        TaskLaunch launch;
        launch.name = "fuzz";
        launch.mapped_node = item.task.mapped_node;
        coord_t work = 0;
        for (const ReqSpec& req : item.task.requirements) {
          launch.requirements.push_back(RegionReq{
              regions[req.region], req.field, req.privilege});
          work += region_domain(spec, req.region).volume();
        }
        launch.work_items = work;
        launch.fn = [this](TaskContext& ctx) { body(ctx); };
        LaunchID id = runtime->launch(std::move(launch));
        invariant(id == next_expected, "launch id misaligned with expansion");
        ++next_expected;
        break;
      }
      case StreamItem::Kind::Index: {
        IndexLaunch launch;
        launch.name = "fuzz-index";
        coord_t work = 0;
        for (const IndexReqSpec& req : item.index.requirements) {
          launch.requirements.push_back(IndexReq{
              partitions[req.partition], req.field, req.privilege});
          work += region_domain(spec, req.partition).volume();
        }
        launch.work_items = work;
        launch.fn = [this](TaskContext& ctx, std::size_t) { body(ctx); };
        std::vector<LaunchID> ids = runtime->index_launch(launch);
        for (LaunchID id : ids) {
          invariant(id == next_expected,
                    "launch id misaligned with expansion");
          ++next_expected;
        }
        break;
      }
      case StreamItem::Kind::BeginTrace:
        runtime->begin_trace(item.trace_id);
        break;
      case StreamItem::Kind::EndTrace:
        runtime->end_trace();
        break;
      case StreamItem::Kind::EndIteration:
        runtime->end_iteration();
        break;
      }
    }

    for (std::size_t f = 0; f < spec.fields.size(); ++f) {
      RegionData<double> data = runtime->observe(
          regions[spec.fields[f].tree], static_cast<FieldID>(f));
      result.final_hashes.push_back(hash_region(data));
    }
    result.dep_edges = runtime->dep_graph().edge_count();
    result.traced_launches = runtime->traced_launches();

    // Structural fingerprints for the cross-thread-count and streaming
    // equivalence tests: the dependence DAG (per-launch predecessor lists)
    // and the replayed DES schedule (finish time of each execution op).
    // Both are rolling folds maintained by the dep graph / runtime, so
    // they cover launches retired out of the resident window too and are
    // bit-identical between batch and streaming ingest.
    result.dep_graph_hash = runtime->dep_graph().stream_hash();
    result.schedule_hash = runtime->schedule_hash();
  }

  /// The shared deterministic body: hash the materialized (pre-mutation)
  /// buffers, then apply the canonical writes/reductions.
  void body(TaskContext& ctx) {
    const ExpandedLaunch& launch = expanded.at(ctx.launch_id());
    std::vector<std::uint64_t> hashes;
    std::vector<RegionData<double>*> buffers;
    for (std::size_t i = 0; i < ctx.region_count(); ++i) {
      hashes.push_back(hash_region(ctx.data(i)));
      buffers.push_back(&ctx.data(i));
    }
    result.launch_hashes.at(ctx.launch_id()) = combine_hashes(hashes);
    apply_task_body(launch.requirements, buffers, ctx.launch_id(),
                    launch.salt);
  }
};

/// First retained spy violation of the given kind, or nullptr.
const analysis::SpyViolation* first_violation(const analysis::SpyReport& r,
                                              analysis::SpyViolationKind k) {
  for (const analysis::SpyViolation& v : r.violations)
    if (v.kind == k) return &v;
  return nullptr;
}

} // namespace

RunResult run_program(const ProgramSpec& spec) {
  Execution exec;
  exec.run(spec);
  return exec.result;
}

LiveRun run_program_live(const ProgramSpec& spec,
                         const LiveRunOptions& options) {
  ProgramSpec adjusted = spec;
  if (options.analysis_threads != 0)
    adjusted.analysis_threads = options.analysis_threads;
  if (options.shard_batch != 0) adjusted.shard_batch = options.shard_batch;
  if (options.subject.has_value()) adjusted.subject = *options.subject;
  Execution exec;
  exec.provenance = options.provenance;
  exec.telemetry = options.telemetry;
  exec.profile = options.profile;
  exec.order_queries = options.order_queries;
  exec.retire_every = options.retire_every;
  exec.max_dead_eqsets = options.max_dead_eqsets;
  exec.run(adjusted);
  LiveRun live;
  live.result = std::move(exec.result);
  if (!live.result.crashed) live.runtime = std::move(exec.runtime);
  return live;
}

std::string validate_schedule(const Runtime& runtime) {
  const DepGraph& deps = runtime.dep_graph();
  const LaunchID base = runtime.launch_base();
  sim::ReplayResult replay = runtime.replay_graph();
  // Execution window of a resident launch: from the replay for live ops,
  // from the frozen side-tables for ops retired out of the work graph.
  // Returns false for launches with no execution op (pure-analysis ones).
  auto window = [&](LaunchID id, SimTime& start, SimTime& finish) {
    sim::OpID e = runtime.exec_of(id);
    if (e == sim::kInvalidOp) return false;
    if (e == sim::kFrozenOp) {
      start = runtime.frozen_exec_start(id);
      finish = runtime.frozen_exec_finish(id);
    } else {
      finish = replay.finish_of(e);
      start = finish - runtime.work_graph().op(e).cost;
    }
    return true;
  };
  for (LaunchID to = base; to < deps.task_count(); ++to) {
    SimTime to_start = 0;
    SimTime to_finish = 0;
    if (!window(to, to_start, to_finish)) continue;
    for (LaunchID from : deps.preds(to)) {
      // Dependences on retired launches fold into the dependent op's
      // readiness floor (WorkGraph::retire_prefix), so the replay already
      // enforces them; only resident predecessors need checking here.
      if (from < base) continue;
      SimTime from_start = 0;
      SimTime from_finish = 0;
      if (!window(from, from_start, from_finish)) continue;
      if (from_finish > to_start) {
        std::ostringstream os;
        os << "launch " << to << " starts at " << to_start
           << "ns before its dependence " << from << " finishes at "
           << from_finish << "ns";
        return os.str();
      }
    }
  }
  // Transitive sweep: two launches ordered through *any* path must not
  // overlap in simulated time, even when every intermediate of the path
  // has no execution window of its own (an observe launch, say) and the
  // per-edge check above is blind.  Walk windows in start order keeping
  // the set still executing; each overlapping pair costs one O(1)
  // order-maintenance query (DepGraph::reaches).
  struct Window {
    SimTime start;
    SimTime finish;
    LaunchID id;
  };
  std::vector<Window> order;
  for (LaunchID id = base; id < deps.task_count(); ++id) {
    SimTime start = 0;
    SimTime finish = 0;
    if (window(id, start, finish)) order.push_back({start, finish, id});
  }
  std::sort(order.begin(), order.end(), [](const Window& x, const Window& y) {
    return x.start != y.start ? x.start < y.start : x.id < y.id;
  });
  std::vector<Window> active;
  for (const Window& w : order) {
    std::erase_if(active,
                  [&](const Window& a) { return a.finish <= w.start; });
    for (const Window& a : active) {
      const LaunchID lo = std::min(a.id, w.id);
      const LaunchID hi = std::max(a.id, w.id);
      if (!deps.reaches(lo, hi)) continue;
      std::ostringstream os;
      os << "launch " << hi << " overlaps launch " << lo
         << " in simulated time despite a transitive dependence path";
      return os.str();
    }
    active.push_back(w);
  }
  return {};
}

DiffReport check_program(const ProgramSpec& spec) {
  // Reference execution: the sequential pseudocode engine in the plainest
  // configuration.  Values are machine-independent, so the reference keeps
  // the spec's node count (mapped nodes stay valid) but drops DCR, tracing
  // and tuning.
  ProgramSpec ref_spec = spec;
  ref_spec.subject = Algorithm::Reference;
  ref_spec.dcr = false;
  ref_spec.tracing = false;
  ref_spec.tuning = EngineTuning{};
  ref_spec.analysis_threads = 1;
  ref_spec.shard_batch = 0;
  RunResult ref = run_program(ref_spec);
  if (ref.crashed)
    return {FailureKind::Crash, "reference engine: " + ref.crash_message};

  Execution subject;
  subject.run(spec);
  const RunResult& got = subject.result;
  if (got.crashed) return {FailureKind::Crash, got.crash_message};

  invariant(got.launch_hashes.size() == ref.launch_hashes.size() &&
                got.final_hashes.size() == ref.final_hashes.size(),
            "subject and reference executed different launch streams");
  for (std::size_t id = 0; id < got.launch_hashes.size(); ++id) {
    if (got.launch_hashes[id] != ref.launch_hashes[id]) {
      std::ostringstream os;
      os << "launch " << id << " materialized values diverge from reference";
      return {FailureKind::Value, os.str()};
    }
  }
  for (std::size_t f = 0; f < got.final_hashes.size(); ++f) {
    if (got.final_hashes[f] != ref.final_hashes[f]) {
      std::ostringstream os;
      os << "final values of field " << spec.fields[f].name
         << " diverge from reference";
      return {FailureKind::FinalValue, os.str()};
    }
  }

  // Dependence and schedule checks: the spy verifier, recomputing ground
  // truth from region geometry and privileges (covers the expanded stream
  // launches and the trailing observe() launches alike).
  analysis::SpyReport spy = analysis::verify(*subject.runtime);
  if (spy.unordered_pairs > 0) {
    const analysis::SpyViolation* v = first_violation(
        spy, analysis::SpyViolationKind::UnorderedInterference);
    std::ostringstream os;
    os << "interfering launches " << v->earlier << " and " << v->later
       << " are unordered (" << v->detail << ")";
    return {FailureKind::Soundness, os.str()};
  }
  if (spy.imprecise_edges > 0) {
    const analysis::SpyViolation* v =
        first_violation(spy, analysis::SpyViolationKind::ImpreciseEdge);
    std::ostringstream os;
    os << "dependence edge " << v->earlier << " -> " << v->later
       << " joins non-interfering launches";
#if VISRT_PROVENANCE
    // Provenance diff of the offending edge: where the subject emitted it
    // vs. the ground truth (which, for an imprecise edge, has no
    // interference at all).
    if (const obs::EdgeProvenance* p =
            subject.runtime->dep_graph().provenance(v->earlier, v->later)) {
      os << " [subject emitted it at: "
         << describe_provenance(*p, subject.runtime->forest())
         << "; ground truth: no interference]";
    }
#endif
    return {FailureKind::Precision, os.str()};
  }
  if (spy.schedule_overlaps > 0) {
    const analysis::SpyViolation* v =
        first_violation(spy, analysis::SpyViolationKind::ScheduleOverlap);
    return {FailureKind::Schedule, v->detail};
  }

  std::string schedule = validate_schedule(*subject.runtime);
  if (!schedule.empty()) return {FailureKind::Schedule, schedule};
  return {};
}

SpyCheckResult spy_check(const ProgramSpec& spec) {
  Execution exec;
  exec.run(spec);
  SpyCheckResult out;
  out.crashed = exec.result.crashed;
  out.crash_message = exec.result.crash_message;
  if (!out.crashed) out.report = analysis::verify(*exec.runtime);
  return out;
}

} // namespace visrt::fuzz
