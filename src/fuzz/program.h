// visrt/fuzz/program.h
//
// The fuzzer's program IR: a fully explicit, serializable description of a
// visrt program — region-tree forest, fields, and a stream of task
// launches, index launches, traces and iteration markers — plus the
// machine/engine configuration it runs under.  One ProgramSpec is the unit
// the whole subsystem revolves around:
//
//   generator.h  produces random specs,
//   serialize.h  round-trips them through the .visprog text format,
//   oracle.h     executes them differentially against the reference engine,
//   shrink.h     minimizes failing ones.
//
// Everything in a spec is by-value and index-based (no handles, no
// callbacks): task bodies are a fixed deterministic function of the launch
// id and a per-launch salt, so a spec replays bit-identically anywhere.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "region/region_tree.h"
#include "visibility/engine.h"
#include "visibility/privilege.h"

namespace visrt::fuzz {

/// One region tree: a root named `name` over the domain [0, size).
struct TreeSpec {
  std::string name;
  coord_t size = 1;
  friend bool operator==(const TreeSpec&, const TreeSpec&) = default;
};

/// One partition with fully materialized subspaces.  Dependent
/// partitioning (image/preimage/by-field) happens at *generation* time;
/// the spec records the resulting subspaces explicitly so replay never
/// depends on generator code.
struct PartitionSpec {
  std::string name;
  std::uint32_t parent = 0; ///< region-table index (see region table below)
  std::vector<IntervalSet> subspaces;
  friend bool operator==(const PartitionSpec&,
                         const PartitionSpec&) = default;
};

/// One field.  Fields are registered in spec order, so the field-table
/// index *is* the runtime FieldID.  Initial value of point p is p % mod.
struct FieldSpec {
  std::string name;
  std::uint32_t tree = 0; ///< tree-table index the field lives on
  coord_t init_mod = 11;
  friend bool operator==(const FieldSpec&, const FieldSpec&) = default;
};

/// One region requirement (region-table index + field-table index).
struct ReqSpec {
  std::uint32_t region = 0;
  std::uint32_t field = 0;
  Privilege privilege;
  friend bool operator==(const ReqSpec&, const ReqSpec&) = default;
};

/// One individual task launch.
struct TaskSpec {
  std::vector<ReqSpec> requirements; ///< never empty
  NodeID mapped_node = 0;
  std::uint64_t salt = 0; ///< perturbs the deterministic body
  friend bool operator==(const TaskSpec&, const TaskSpec&) = default;
};

/// One requirement of an index launch (partition-table index + field).
struct IndexReqSpec {
  std::uint32_t partition = 0;
  std::uint32_t field = 0;
  Privilege privilege;
  friend bool operator==(const IndexReqSpec&,
                         const IndexReqSpec&) = default;
};

/// One index launch: a point task per color; all partitions must have the
/// same color count.  Point `c` maps to node c % num_nodes.
struct IndexSpec {
  std::vector<IndexReqSpec> requirements; ///< never empty
  std::uint64_t salt = 0;
  friend bool operator==(const IndexSpec&, const IndexSpec&) = default;
};

/// One element of the launch stream.
struct StreamItem {
  enum class Kind : std::uint8_t {
    Task,
    Index,
    BeginTrace,
    EndTrace,
    EndIteration,
  };
  Kind kind = Kind::Task;
  TaskSpec task;            ///< Kind::Task
  IndexSpec index;          ///< Kind::Index
  std::uint32_t trace_id = 0; ///< Kind::BeginTrace
  friend bool operator==(const StreamItem&, const StreamItem&) = default;
};

/// A complete program plus the configuration under which it (mis)behaved.
///
/// Region table: index 0..trees.size()-1 are the tree roots in tree order;
/// each partition then appends its subregions in color order.  This is
/// exactly the order in which build_forest / the executor create regions,
/// so indices resolve identically everywhere.
struct ProgramSpec {
  // --- configuration ---
  std::uint32_t num_nodes = 1;
  bool dcr = false;
  bool tracing = true;
  Algorithm subject = Algorithm::RayCast; ///< engine under test
  EngineTuning tuning;
  /// Analysis worker lanes for the subject engine (the reference oracle
  /// always runs sequentially); serialized as an optional `threads N`
  /// directive so existing corpora parse unchanged.
  unsigned analysis_threads = 1;
  /// Shard batch granularity override (RuntimeConfig::shard_batch; 0 keeps
  /// each loop's default grain); serialized as an optional `shard_batch N`
  /// directive so existing corpora parse unchanged.
  std::size_t shard_batch = 0;

  // --- structure ---
  std::vector<TreeSpec> trees;
  std::vector<PartitionSpec> partitions;
  std::vector<FieldSpec> fields;

  // --- behaviour ---
  std::vector<StreamItem> stream;

  friend bool operator==(const ProgramSpec&, const ProgramSpec&) = default;
};

/// Region-table index of the first subregion of partition `p` (its color-0
/// child); color c is at region_table_base(spec, p) + c.
std::uint32_t region_table_base(const ProgramSpec& spec, std::uint32_t p);
/// Total number of region-table entries.
std::uint32_t region_table_size(const ProgramSpec& spec);
/// Domain of a region-table entry: the full tree domain for roots, the
/// recorded subspace for partition children.  Subspaces are materialized at
/// generation time, so this is the true domain without building a forest.
IntervalSet region_domain(const ProgramSpec& spec, std::uint32_t r);

/// Structural validation: every index in range, subspaces inside parents,
/// requirements non-empty with fields on the right trees, trace brackets
/// balanced, mapped nodes < num_nodes.  Throws ApiError on violation.
void validate(const ProgramSpec& spec);

/// Validate only the declaration part (machine config + tree / partition /
/// field tables) — what a streaming session checks before the first stream
/// item arrives.  Throws ApiError on violation.
void validate_decls(const ProgramSpec& spec);

/// Validate one stream item against already-validated declarations.
/// `trace_depth` carries the open-trace bracket state across calls and is
/// updated in place; the caller asserts it is zero at end-of-stream.
/// Together with validate_decls this is exactly validate(), one item at a
/// time.
void validate_item(const ProgramSpec& spec, const StreamItem& item,
                   int& trace_depth);

/// The forest described by a spec, with the region table materialized.
struct BuiltForest {
  RegionTreeForest forest;
  std::vector<RegionHandle> regions;       ///< by region-table index
  std::vector<PartitionHandle> partitions; ///< by partition-table index
};

/// Build the forest (validates first).
void build_forest(const ProgramSpec& spec, BuiltForest& out);

/// One flattened launch: what the runtime will actually analyze.  Index
/// launches are expanded one point per color, in color order; trace and
/// iteration markers disappear.  The position in the expanded vector is
/// the LaunchID the runtime will assign.
struct ExpandedLaunch {
  std::vector<ReqSpec> requirements;
  NodeID mapped_node = 0;
  std::uint64_t salt = 0;
  std::size_t item = 0; ///< originating stream-item index
};

/// Expand the stream (validates first).
std::vector<ExpandedLaunch> expand_stream(const ProgramSpec& spec);

/// Lower the spec's launch stream to the program linter's
/// engine-independent event form, resolving table indices against the
/// built forest.  `built` must come from build_forest over the same spec.
std::vector<analysis::LintEvent> lint_events(const ProgramSpec& spec,
                                             const BuiltForest& built);

/// The deterministic task body, shared by every execution path (the
/// runtime executor and the engine-level property tests), keyed by the
/// launch id, requirement index and salt:
///   read        leaves the buffer untouched,
///   read-write  writes (p*7 + id*13 + i + salt) % 1001,
///   reduce_f    folds   (p*3 + id*5 + salt) % 97 into every point.
/// Integer-valued doubles keep every fold exact and order-insensitive
/// within a same-operator group.
void apply_task_body(std::span<const ReqSpec> reqs,
                     std::span<RegionData<double>*> buffers, LaunchID id,
                     std::uint64_t salt);

/// Stable hash of a materialized buffer (domain + value bit patterns);
/// the differential oracle compares these across engines.
std::uint64_t hash_region(const RegionData<double>& data);

} // namespace visrt::fuzz
