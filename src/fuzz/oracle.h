// visrt/fuzz/oracle.h
//
// The differential oracle.  Executes a ProgramSpec twice through the full
// Runtime stack — once with the subject engine/configuration recorded in
// the spec, once with the sequential Reference engine in its plainest
// configuration — and cross-checks:
//
//   Value       per-launch materialized buffers (hashed inside the task
//               body, before it mutates them) must match the reference,
//   FinalValue  the final observe()d value of every field must match,
//   Soundness   every interfering launch pair must be transitively ordered
//               in the subject's dependence DAG,
//   Precision   every direct dependence edge must be a true interference,
//   Schedule    the replayed DES schedule must start each task only after
//               every dependence's execution has finished,
//   Crash       any CheckFailure / ApiError / exception thrown by the
//               subject (invariants are made catchable via
//               ScopedCheckThrows for the duration of a run).
//
// All checks are deterministic: a failing (spec, seed) reproduces anywhere.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/spy.h"
#include "fuzz/program.h"

namespace visrt {
class Runtime;
}

namespace visrt::fuzz {

enum class FailureKind : std::uint8_t {
  None,
  Value,      ///< per-launch materialized values diverge from the reference
  FinalValue, ///< final field values diverge from the reference
  Soundness,  ///< an interfering pair is unordered in the dependence DAG
  Precision,  ///< a dependence edge joins a non-interfering pair
  Schedule,   ///< the DES schedule violates a dependence edge
  Crash,      ///< the subject threw (invariant/API/other exception)
};

const char* failure_kind_name(FailureKind kind);

/// Outcome of one differential check.
struct DiffReport {
  FailureKind kind = FailureKind::None;
  std::string detail; ///< human-readable description of the first violation

  explicit operator bool() const { return kind != FailureKind::None; }
};

/// Captured results of executing one spec through the Runtime.
struct RunResult {
  bool crashed = false;
  std::string crash_message;
  /// Combined hash of the materialized buffers of each expanded launch,
  /// captured before the body mutates them; indexed by LaunchID.
  std::vector<std::uint64_t> launch_hashes;
  /// Final observe() hash per field-table entry.
  std::vector<std::uint64_t> final_hashes;
  std::size_t dep_edges = 0;
  std::size_t traced_launches = 0;
  /// FNV fingerprint of the dependence DAG (per-launch predecessor lists).
  /// Runs of the same spec at different analysis_threads must agree — the
  /// parallel-equivalence tests compare these across thread counts.
  std::uint64_t dep_graph_hash = 0;
  /// FNV fingerprint of the replayed DES schedule (the finish time of
  /// every launch's execution op).  Also thread-count invariant.
  std::uint64_t schedule_hash = 0;
};

/// Execute a spec exactly as configured (subject engine, DCR, tracing,
/// tuning) and capture values.  Never throws on subject misbehavior —
/// crashes are recorded in the result.
RunResult run_program(const ProgramSpec& spec);

/// Options for run_program_live (the introspection entry point behind
/// `visrt_cli explain` / `inspect`).
struct LiveRunOptions {
  /// Record dependence provenance, the lifecycle ledger and the message
  /// ledger (inert when the build has VISRT_PROVENANCE off).
  bool provenance = true;
  bool telemetry = false;
  /// Enable the analysis profiler (phase attribution, executor/lock
  /// telemetry; inert when the build has VISRT_PROFILE off).
  bool profile = false;
  /// Override the spec's analysis_threads when nonzero.
  unsigned analysis_threads = 0;
  /// Override the spec's shard_batch when nonzero (RuntimeConfig docs the
  /// semantics: 1 = finest sharding, larger-than-work = inline).
  std::size_t shard_batch = 0;
  /// Override the spec's subject engine.
  std::optional<Algorithm> subject;
  /// Streaming ingest: call Runtime::retire(max_dead_eqsets) after every
  /// `retire_every` launches (0 = batch mode, never retire).  All captured
  /// results — value/dep-graph/schedule hashes, stats — are bit-identical
  /// to batch mode by construction; the --stream fuzz mode and the serve
  /// tests assert exactly that.
  std::size_t retire_every = 0;
  std::size_t max_dead_eqsets = 1024;
  /// Maintain the order-maintenance structure on the dependence graph so
  /// post-hoc consumers (explain, the spy, validate_schedule) answer
  /// transitive-order queries in O(1).
  bool order_queries = true;
};

/// A finished run whose Runtime — dependence graph with provenance, the
/// lifecycle and message ledgers, the work graph — stays alive for
/// post-hoc introspection.  `runtime` is null iff the run crashed.
struct LiveRun {
  std::unique_ptr<Runtime> runtime;
  RunResult result;
};

LiveRun run_program_live(const ProgramSpec& spec,
                         const LiveRunOptions& options = {});

/// Replay the runtime's work graph through the DES and check the schedule
/// against the dependence order: (1) every direct edge is respected — a
/// task's execution op starts only after each predecessor's execution op
/// finished — and (2) no two *transitively* ordered launches overlap in
/// simulated time, checked against O(1) order-maintenance queries over a
/// start-time sweep (this catches overlaps ordered only through an
/// intermediate with no execution window, which the per-edge check cannot
/// see).  Returns an empty string on success, else a description of the
/// first violation.
std::string validate_schedule(const Runtime& runtime);

/// The full differential check (reference run + subject run + all five
/// check families).  Returns the first failure found, in the order Crash,
/// Value, FinalValue, Soundness, Precision, Schedule.  The dependence and
/// schedule checks are the spy verifier's (analysis/spy.h): recomputed
/// from first principles, no reference engine consulted.
DiffReport check_program(const ProgramSpec& spec);

/// Reference-free verification: execute the spec exactly as configured and
/// spy-verify the emitted dependence graph and DES schedule against ground
/// truth recomputed from geometry and privileges.  Catches bugs shared by
/// every engine, which the differential check cannot.
struct SpyCheckResult {
  bool crashed = false;
  std::string crash_message;
  analysis::SpyReport report; ///< valid iff !crashed

  /// Did the run complete and verify sound + precise?
  bool clean() const { return !crashed && report.clean(); }
};

SpyCheckResult spy_check(const ProgramSpec& spec);

} // namespace visrt::fuzz
