// visrt/sim/work_graph.h
//
// The work graph is the interface between the (exact, program-order)
// dependence/coherence analyses and the timing simulation.  Every unit of
// work the runtime would perform on the real machine — an analysis step on
// some node's runtime thread, a message between nodes, a data copy, a leaf
// task execution — is recorded as an operation with a placement, a cost and
// explicit dependences.  The Replayer (sim/replay.h) then schedules the
// graph onto the machine model to obtain virtual wall-clock times.
//
// This trace-driven split keeps semantic correctness (what depends on what,
// who reads which values) decoupled from performance modeling, and makes
// the emitted work itself a testable artifact.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace visrt::sim {

/// Index of an operation within a WorkGraph.
using OpID = std::uint32_t;
inline constexpr OpID kInvalidOp = std::numeric_limits<OpID>::max();

enum class OpKind : std::uint8_t {
  Compute, ///< CPU time on one node (analysis step or leaf task)
  Message, ///< network transfer src -> dst (metadata or bulk data)
  Marker,  ///< zero-cost synchronization point (e.g. "iteration boundary")
};

/// One recorded operation.
struct Op {
  OpKind kind = OpKind::Compute;
  NodeID node = 0;        ///< Compute/Marker: placement.  Message: source.
  NodeID dst = 0;         ///< Message only: destination.
  SimTime cost = 0;       ///< Compute: CPU nanoseconds.
  std::uint64_t bytes = 0;///< Message only: payload size.
  std::uint32_t dep_begin = 0; ///< range into WorkGraph::deps_
  std::uint32_t dep_count = 0;
  std::uint8_t category = 0;   ///< caller-defined bucket for statistics
};

/// Caller-defined operation categories used for reporting.
enum class OpCategory : std::uint8_t {
  Other = 0,
  Analysis,
  TaskExec,
  Copy,
  Reduction,
  Runtime,
};

/// Append-only DAG of operations.
class WorkGraph {
public:
  /// Record CPU work on a node.  Dependences must refer to earlier ops.
  OpID compute(NodeID node, SimTime cost, std::span<const OpID> deps,
               OpCategory category = OpCategory::Analysis);

  /// Record a message.  Finish time (at the destination) includes wire time
  /// and the receive handler cost from the machine config.
  OpID message(NodeID src, NodeID dst, std::uint64_t bytes,
               std::span<const OpID> deps,
               OpCategory category = OpCategory::Runtime);

  /// Record a zero-cost marker joining its dependences.
  OpID marker(NodeID node, std::span<const OpID> deps);

  std::size_t size() const { return ops_.size(); }
  const Op& op(OpID id) const { return ops_[id]; }
  std::span<const OpID> deps(OpID id) const {
    const Op& o = ops_[id];
    return {deps_.data() + o.dep_begin, o.dep_count};
  }

  /// Sum of CPU cost in a category (machine-independent work metric).
  SimTime total_cost(OpCategory category) const;
  std::uint64_t total_message_bytes() const;
  std::size_t message_count() const;

private:
  OpID push(Op op, std::span<const OpID> deps);

  std::vector<Op> ops_;
  std::vector<OpID> deps_;
};

} // namespace visrt::sim
