// visrt/sim/work_graph.h
//
// The work graph is the interface between the (exact, program-order)
// dependence/coherence analyses and the timing simulation.  Every unit of
// work the runtime would perform on the real machine — an analysis step on
// some node's runtime thread, a message between nodes, a data copy, a leaf
// task execution — is recorded as an operation with a placement, a cost and
// explicit dependences.  The Replayer (sim/replay.h) then schedules the
// graph onto the machine model to obtain virtual wall-clock times.
//
// This trace-driven split keeps semantic correctness (what depends on what,
// who reads which values) decoupled from performance modeling, and makes
// the emitted work itself a testable artifact.
//
// For unbounded streams the graph supports *retirement*: once the runtime
// proves a set of ops' finish times are final (the pop-order prefix of the
// DES schedule; see Runtime::retire), `retire_ready_before` drops their
// records, converting surviving dependences on them into per-op `floor`
// readiness bounds.  Retirement compacts the survivors, so their ids SHIFT
// (the call reports an old-to-new remap every held reference must go
// through); aggregate metrics (costs, message counts/bytes) are running
// totals over everything ever pushed, so retirement never changes reported
// statistics.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace visrt::sim {

/// Index of an operation within a WorkGraph.
using OpID = std::uint32_t;
inline constexpr OpID kInvalidOp = std::numeric_limits<OpID>::max();
/// Sentinel for a persistent op reference whose op was retired out of the
/// graph: the holder keeps the op's final finish time on the side and uses
/// it as a readiness floor instead of a dependence edge.
inline constexpr OpID kFrozenOp = kInvalidOp - 1;

enum class OpKind : std::uint8_t {
  Compute, ///< CPU time on one node (analysis step or leaf task)
  Message, ///< network transfer src -> dst (metadata or bulk data)
  Marker,  ///< zero-cost synchronization point (e.g. "iteration boundary")
};

/// One recorded operation.
struct Op {
  OpKind kind = OpKind::Compute;
  NodeID node = 0;        ///< Compute/Marker: placement.  Message: source.
  NodeID dst = 0;         ///< Message only: destination.
  SimTime cost = 0;       ///< Compute: CPU nanoseconds.
  std::uint64_t bytes = 0;///< Message only: payload size.
  std::uint32_t dep_begin = 0; ///< range into WorkGraph::deps_
  std::uint32_t dep_count = 0;
  std::uint8_t category = 0;   ///< caller-defined bucket for statistics
  /// Lower bound on readiness: the max finish time of dependences that
  /// were retired out of the graph (0 when none were).
  SimTime floor = 0;
};

/// Caller-defined operation categories used for reporting.
enum class OpCategory : std::uint8_t {
  Other = 0,
  Analysis,
  TaskExec,
  Copy,
  Reduction,
  Runtime,
};
inline constexpr std::size_t kOpCategoryCount = 6;

/// Append-only DAG of operations with optional prefix retirement.
class WorkGraph {
public:
  /// Record CPU work on a node.  Dependences must refer to earlier,
  /// still-resident ops; `floor` carries finish times of retired ones.
  OpID compute(NodeID node, SimTime cost, std::span<const OpID> deps,
               OpCategory category = OpCategory::Analysis, SimTime floor = 0);

  /// Record a message.  Finish time (at the destination) includes wire time
  /// and the receive handler cost from the machine config.
  OpID message(NodeID src, NodeID dst, std::uint64_t bytes,
               std::span<const OpID> deps,
               OpCategory category = OpCategory::Runtime, SimTime floor = 0);

  /// Record a zero-cost marker joining its dependences.
  OpID marker(NodeID node, std::span<const OpID> deps, SimTime floor = 0);

  /// Total ops ever pushed; resident ops occupy ids [base(), size()).
  std::size_t size() const { return base_ + ops_.size(); }
  /// First resident op id (0 until the first retire_prefix call).
  OpID base() const { return base_; }
  /// Count of resident (non-retired) ops.
  std::size_t resident_ops() const { return ops_.size(); }

  const Op& op(OpID id) const { return ops_[id - base_]; }
  std::span<const OpID> deps(OpID id) const {
    const Op& o = ops_[id - base_];
    return {deps_.data() + o.dep_begin, o.dep_count};
  }

  /// Drop every resident op whose readiness is strictly below
  /// `ready_bound` — the pop-order prefix of the DES schedule, which is
  /// dependence-closed by construction (a dependence finishes before its
  /// user becomes ready).  `ready` and `finish` are window-replay results
  /// indexed by id - base(); surviving dependences on retired ops fold
  /// into the survivors' floors.  The caller is responsible for having
  /// proven those finishes final (see Runtime::retire).
  ///
  /// Survivors are compacted, so their ids shift upward: base() advances
  /// by the retired count (ids keep counting ops ever pushed) and `remap`
  /// receives the old-to-new id mapping, indexed by old id - old base(),
  /// with kFrozenOp in retired slots.  Returns the number of retired ops.
  std::size_t retire_ready_before(std::span<const SimTime> ready,
                                  SimTime ready_bound,
                                  std::span<const SimTime> finish,
                                  std::vector<OpID>& remap);

  /// Sum of CPU cost in a category (machine-independent work metric).
  /// Running totals over all ops ever pushed, including retired ones.
  SimTime total_cost(OpCategory category) const {
    return cost_by_category_[static_cast<std::size_t>(category)];
  }
  std::uint64_t total_message_bytes() const { return message_bytes_; }
  std::size_t message_count() const { return message_count_; }
  /// Messages ever sent per source node (indexed by NodeID; nodes beyond
  /// the vector's size sent none).
  std::span<const std::size_t> messages_by_src() const {
    return messages_by_src_;
  }

private:
  OpID push(Op op, std::span<const OpID> deps);

  std::vector<Op> ops_;
  std::vector<OpID> deps_;
  OpID base_ = 0;
  std::array<SimTime, kOpCategoryCount> cost_by_category_ = {};
  std::uint64_t message_bytes_ = 0;
  std::size_t message_count_ = 0;
  std::vector<std::size_t> messages_by_src_;
};

} // namespace visrt::sim
