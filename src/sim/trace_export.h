// visrt/sim/trace_export.h
//
// Export a replayed work graph as a Chrome trace (the JSON array format of
// chrome://tracing / Perfetto): one row per simulated node resource
// (runtime CPU, accelerator, NIC), one complete event per operation.
// Useful for eyeballing exactly where the painter's node-0 bottleneck or
// Warnock's refinement chain sits on the timeline.
//
// Callers with more context (the runtime) can pass a TraceEnrichment to
// add flow arrows (dependence edges, analysis messages), counter tracks
// (live equivalence sets, history entries, ...) and per-op args.
#pragma once

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/machine.h"
#include "sim/replay.h"
#include "sim/work_graph.h"

namespace visrt::sim {

/// A flow arrow drawn from the middle of op `src`'s slice to the middle of
/// op `dst`'s slice.  Flows whose endpoints are not rendered (markers,
/// zero-duration ops) are silently dropped.
struct TraceFlow {
  OpID src = kInvalidOp;
  OpID dst = kInvalidOp;
  std::string name;
};

/// One Perfetto counter track: samples are (anchor op, value) pairs; each
/// sample is stamped at the anchor op's finish time.
struct TraceCounterTrack {
  std::string name;
  NodeID pid = 0;
  std::vector<std::pair<OpID, double>> samples;
};

/// Optional extras merged into the exported trace.
struct TraceEnrichment {
  std::vector<TraceFlow> flows;
  std::vector<TraceCounterTrack> counters;
  /// Extra JSON object members appended to an op's "args" verbatim, e.g.
  /// "\"launch\":5,\"history_entries\":12" (no leading comma, no braces).
  std::unordered_map<OpID, std::string> op_args;
};

/// Write the trace JSON for `graph` as scheduled by `result` to `os`.
/// Compute ops appear on their node's "cpu" or "accel" track (by
/// category), messages on the destination node's "nic" track; durations are
/// reconstructed from op costs and finish times.
void export_chrome_trace(const WorkGraph& graph, const ReplayResult& result,
                         const MachineConfig& machine, std::ostream& os,
                         const TraceEnrichment* enrich = nullptr);

/// Convenience: render to a string (tests, small graphs).
std::string chrome_trace_json(const WorkGraph& graph,
                              const ReplayResult& result,
                              const MachineConfig& machine,
                              const TraceEnrichment* enrich = nullptr);

} // namespace visrt::sim
