// visrt/sim/trace_export.h
//
// Export a replayed work graph as a Chrome trace (the JSON array format of
// chrome://tracing / Perfetto): one row per simulated node resource
// (runtime CPU, accelerator, NIC), one complete event per operation.
// Useful for eyeballing exactly where the painter's node-0 bottleneck or
// Warnock's refinement chain sits on the timeline.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/machine.h"
#include "sim/replay.h"
#include "sim/work_graph.h"

namespace visrt::sim {

/// Write the trace JSON for `graph` as scheduled by `result` to `os`.
/// Compute ops appear on their node's "cpu" or "accel" track (by
/// category), messages on the destination node's "nic" track; durations are
/// reconstructed from op costs and finish times.
void export_chrome_trace(const WorkGraph& graph, const ReplayResult& result,
                         const MachineConfig& machine, std::ostream& os);

/// Convenience: render to a string (tests, small graphs).
std::string chrome_trace_json(const WorkGraph& graph,
                              const ReplayResult& result,
                              const MachineConfig& machine);

} // namespace visrt::sim
