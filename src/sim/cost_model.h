// visrt/sim/cost_model.h
//
// Per-operation CPU costs charged by the dependence/coherence analyses when
// they emit work items.  The absolute values are calibrated to the same
// order of magnitude as Legion's measured analysis overheads (hundreds of
// nanoseconds to microseconds per step); the *relative* structure is what
// reproduces the paper's scaling shapes:
//   - the painter's algorithm pays per composite-view child examined,
//   - Warnock pays per equivalence-set refinement and per set visited,
//   - ray casting pays per BVH node traversed and per set visited, but
//     keeps the number of live sets small by coalescing on writes.
#pragma once

#include "common/types.h"

namespace visrt::sim {

struct CostModel {
  /// Fixed cost to start analyzing one region requirement of one launch.
  SimTime requirement_base_ns = 500;

  /// Painter: examining one history entry during paint()/dependence walk.
  SimTime history_entry_ns = 100;
  /// Painter: testing one child of a composite view for interference.
  SimTime composite_child_test_ns = 150;
  /// Painter: capturing one region's history into a composite view.
  SimTime composite_capture_ns = 400;

  /// Warnock/raycast: splitting one equivalence set during refine().
  SimTime eqset_refine_ns = 2000;
  /// Per interval of the refined domains: refinement clones and restricts
  /// the set's version state, so its cost scales with how fragmented the
  /// domains are.  Warnock's sequential pairwise refinement of an
  /// ever-more-fragmented remainder makes this the driver of its
  /// initialization explosion (Section 8.1).
  SimTime refine_interval_ns = 100;
  /// Warnock/raycast: visiting one equivalence set during materialize
  /// or commit (history append / paint of that set).
  SimTime eqset_visit_ns = 220;
  /// Warnock/raycast: one acceleration-structure node traversed
  /// (refinement BVH, partition BVH, or K-d fallback).
  SimTime accel_node_ns = 40;
  /// Raycast: creating a fresh equivalence set for a dominating write and
  /// pruning one occluded set.  Both are local metadata updates and much
  /// cheaper than the distributed visits/refinements above.
  SimTime eqset_create_ns = 250;
  SimTime eqset_prune_ns = 80;

  /// Interval-set algebra: per interval touched by a union/intersection/
  /// difference executed during analysis.
  SimTime interval_op_ns = 12;

  /// Copy engine: fixed cost to issue one copy/reduction, per element cost
  /// is paid in network bytes (8 bytes per double element).
  SimTime copy_issue_ns = 800;

  /// Leaf task execution: per-element compute cost (stands in for the GPU
  /// kernel; the figures measure runtime overhead, not FLOPs).
  SimTime task_element_ns = 2;
  /// Fixed launch overhead of a leaf task on its processor.
  SimTime task_launch_ns = 3000;

  /// Tracing extension: per-launch cost of replaying a memoized analysis
  /// (template lookup + event wiring), replacing the full analysis.
  SimTime trace_replay_ns = 400;

  /// DCR: per-launch cost of the sharding function + collective metadata
  /// exchange amortization on the owning shard.
  SimTime dcr_shard_ns = 350;
  /// DCR: under control replication every shard executes the top-level
  /// task, so each shard pays a small enumeration cost for every launch in
  /// the stream, owned or not.  This is the source of DCR's residual
  /// linear growth with machine size.
  SimTime dcr_stream_ns = 50;
};

} // namespace visrt::sim
