#include "sim/replay.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace visrt::sim {
namespace {

struct ReadyOp {
  SimTime ready;
  OpID id;
  // Earliest-ready first; ties by op id (program order) for determinism.
  bool operator>(const ReadyOp& o) const {
    return ready != o.ready ? ready > o.ready : id > o.id;
  }
};

} // namespace

namespace {

ReplayResult replay_impl(const WorkGraph& graph, const MachineConfig& machine,
                         const ReplayCheckpoint* start,
                         ReplayCheckpoint* end_state, OpID limit,
                         SimTime cut_bound, ReplayCheckpoint* cut_state) {
  machine.validate();
  const OpID base = graph.base();
  const OpID end = static_cast<OpID>(
      std::min<std::size_t>(limit, graph.size()));
  invariant(end >= base, "replay limit precedes the graph base");
  const std::size_t n = end - base;
  ReplayResult result;
  result.base = base;
  result.finish.assign(n, 0);
  result.ready.assign(n, 0);
  result.node_busy.assign(machine.num_nodes, 0);

  // Dependence bookkeeping: count of unfinished deps, and reverse edges.
  // Dependences always point backwards, so an id-prefix window is closed.
  std::vector<std::uint32_t> pending(n, 0);
  std::vector<std::vector<OpID>> users(n);
  for (OpID id = base; id < end; ++id) {
    auto deps = graph.deps(id);
    pending[id - base] = static_cast<std::uint32_t>(deps.size());
    for (OpID d : deps) users[d - base].push_back(id);
  }

  // Per-resource next-free times.  Each node has a runtime CPU (analysis,
  // handlers), an accelerator for leaf tasks (the paper's evaluation maps
  // every task to the node's GPU), and a NIC in each direction.  A start
  // checkpoint resumes from the state a retired prefix left behind.
  std::vector<SimTime> cpu_free(machine.num_nodes, 0);
  std::vector<SimTime> accel_free(machine.num_nodes, 0);
  std::vector<SimTime> nic_out_free(machine.num_nodes, 0);
  std::vector<SimTime> nic_in_free(machine.num_nodes, 0);
  if (start != nullptr && !start->empty()) {
    invariant(start->cpu_free.size() == machine.num_nodes,
              "replay checkpoint does not match the machine");
    cpu_free = start->cpu_free;
    accel_free = start->accel_free;
    nic_out_free = start->nic_out_free;
    nic_in_free = start->nic_in_free;
    result.node_busy = start->node_busy;
    result.makespan = start->makespan;
  }

  std::priority_queue<ReadyOp, std::vector<ReadyOp>, std::greater<ReadyOp>>
      ready;
  std::vector<SimTime>& ready_time = result.ready;
  for (OpID id = base; id < end; ++id)
    ready_time[id - base] = graph.op(id).floor;
  for (OpID id = base; id < end; ++id) {
    if (pending[id - base] == 0) ready.push(ReadyOp{ready_time[id - base], id});
  }

  // The pop sequence is ordered by (readiness, id), so the ops below
  // `cut_bound` form a prefix of it: snapshot the resource state the
  // moment the first at-or-above-bound op pops.
  bool cut_taken = cut_state == nullptr;
  auto take_cut = [&] {
    cut_state->cpu_free = cpu_free;
    cut_state->accel_free = accel_free;
    cut_state->nic_out_free = nic_out_free;
    cut_state->nic_in_free = nic_in_free;
    cut_state->node_busy = result.node_busy;
    cut_state->makespan = result.makespan;
    cut_taken = true;
  };

  std::size_t executed = 0;
  while (!ready.empty()) {
    auto [at, id] = ready.top();
    ready.pop();
    if (!cut_taken && at >= cut_bound) take_cut();
    const Op& op = graph.op(id);
    invariant(op.node < machine.num_nodes, "op placed on nonexistent node");

    SimTime fin = at;
    switch (op.kind) {
    case OpKind::Compute: {
      std::vector<SimTime>& res =
          op.category == static_cast<std::uint8_t>(OpCategory::TaskExec)
              ? accel_free
              : cpu_free;
      SimTime start_at = std::max(at, res[op.node]);
      fin = start_at + op.cost;
      res[op.node] = fin;
      result.node_busy[op.node] += op.cost;
      break;
    }
    case OpKind::Message: {
      invariant(op.dst < machine.num_nodes, "message to nonexistent node");
      if (op.dst == op.node) {
        // Intra-node transfer: charge only the handler dispatch.
        SimTime start_at = std::max(at, cpu_free[op.node]);
        fin = start_at + machine.message_handler_ns;
        cpu_free[op.node] = fin;
        result.node_busy[op.node] += machine.message_handler_ns;
        break;
      }
      SimTime xfer =
          static_cast<SimTime>(static_cast<double>(op.bytes) /
                               machine.network_bytes_per_ns);
      // Injection costs sender CPU (marshalling + active-message launch)
      // before the NIC serializes the payload.
      SimTime inject_start = std::max(at, cpu_free[op.node]);
      SimTime injected = inject_start + machine.message_handler_ns;
      cpu_free[op.node] = injected;
      result.node_busy[op.node] += machine.message_handler_ns;
      SimTime send_start = std::max(injected, nic_out_free[op.node]);
      SimTime wire_done = send_start + xfer + machine.network_latency_ns;
      nic_out_free[op.node] = send_start + xfer;
      // Receiving: NIC-in serializes the payload, then the destination CPU
      // runs the active-message handler.
      SimTime recv_start = std::max(wire_done - xfer, nic_in_free[op.dst]);
      SimTime recv_done = std::max(recv_start + xfer, wire_done);
      nic_in_free[op.dst] = recv_done;
      SimTime handler_start = std::max(recv_done, cpu_free[op.dst]);
      fin = handler_start + machine.message_handler_ns;
      cpu_free[op.dst] = fin;
      result.node_busy[op.dst] += machine.message_handler_ns;
      break;
    }
    case OpKind::Marker:
      fin = at;
      break;
    }

    result.finish[id - base] = fin;
    result.makespan = std::max(result.makespan, fin);
    ++executed;

    for (OpID user : users[id - base]) {
      std::size_t u = user - base;
      ready_time[u] = std::max(ready_time[u], fin);
      if (--pending[u] == 0) ready.push(ReadyOp{ready_time[u], user});
    }
  }

  invariant(executed == n, "work graph contains a dependence cycle");
  if (!cut_taken) take_cut();

  if (end_state != nullptr) {
    end_state->cpu_free = std::move(cpu_free);
    end_state->accel_free = std::move(accel_free);
    end_state->nic_out_free = std::move(nic_out_free);
    end_state->nic_in_free = std::move(nic_in_free);
    end_state->node_busy = result.node_busy;
    end_state->makespan = result.makespan;
  }
  return result;
}

} // namespace

ReplayResult replay(const WorkGraph& graph, const MachineConfig& machine,
                    const ReplayCheckpoint* start,
                    ReplayCheckpoint* end_state, OpID limit) {
  return replay_impl(graph, machine, start, end_state, limit, 0, nullptr);
}

ReplayResult replay_split(const WorkGraph& graph, const MachineConfig& machine,
                          const ReplayCheckpoint* start, SimTime ready_bound,
                          ReplayCheckpoint& cut_state) {
  return replay_impl(graph, machine, start, nullptr, kInvalidOp, ready_bound,
                     &cut_state);
}

} // namespace visrt::sim
