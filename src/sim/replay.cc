#include "sim/replay.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace visrt::sim {
namespace {

struct ReadyOp {
  SimTime ready;
  OpID id;
  // Earliest-ready first; ties by op id (program order) for determinism.
  bool operator>(const ReadyOp& o) const {
    return ready != o.ready ? ready > o.ready : id > o.id;
  }
};

} // namespace

ReplayResult replay(const WorkGraph& graph, const MachineConfig& machine) {
  machine.validate();
  const std::size_t n = graph.size();
  ReplayResult result;
  result.finish.assign(n, 0);
  result.node_busy.assign(machine.num_nodes, 0);

  // Dependence bookkeeping: count of unfinished deps, and reverse edges.
  std::vector<std::uint32_t> pending(n, 0);
  std::vector<std::vector<OpID>> users(n);
  for (OpID id = 0; id < n; ++id) {
    auto deps = graph.deps(id);
    pending[id] = static_cast<std::uint32_t>(deps.size());
    for (OpID d : deps) users[d].push_back(id);
  }

  // Per-resource next-free times.  Each node has a runtime CPU (analysis,
  // handlers), an accelerator for leaf tasks (the paper's evaluation maps
  // every task to the node's GPU), and a NIC in each direction.
  std::vector<SimTime> cpu_free(machine.num_nodes, 0);
  std::vector<SimTime> accel_free(machine.num_nodes, 0);
  std::vector<SimTime> nic_out_free(machine.num_nodes, 0);
  std::vector<SimTime> nic_in_free(machine.num_nodes, 0);

  std::priority_queue<ReadyOp, std::vector<ReadyOp>, std::greater<ReadyOp>>
      ready;
  std::vector<SimTime> ready_time(n, 0);
  for (OpID id = 0; id < n; ++id) {
    if (pending[id] == 0) ready.push(ReadyOp{0, id});
  }

  std::size_t executed = 0;
  while (!ready.empty()) {
    auto [at, id] = ready.top();
    ready.pop();
    const Op& op = graph.op(id);
    invariant(op.node < machine.num_nodes, "op placed on nonexistent node");

    SimTime fin = at;
    switch (op.kind) {
    case OpKind::Compute: {
      std::vector<SimTime>& res =
          op.category == static_cast<std::uint8_t>(OpCategory::TaskExec)
              ? accel_free
              : cpu_free;
      SimTime start = std::max(at, res[op.node]);
      fin = start + op.cost;
      res[op.node] = fin;
      result.node_busy[op.node] += op.cost;
      break;
    }
    case OpKind::Message: {
      invariant(op.dst < machine.num_nodes, "message to nonexistent node");
      if (op.dst == op.node) {
        // Intra-node transfer: charge only the handler dispatch.
        SimTime start = std::max(at, cpu_free[op.node]);
        fin = start + machine.message_handler_ns;
        cpu_free[op.node] = fin;
        result.node_busy[op.node] += machine.message_handler_ns;
        break;
      }
      SimTime xfer =
          static_cast<SimTime>(static_cast<double>(op.bytes) /
                               machine.network_bytes_per_ns);
      // Injection costs sender CPU (marshalling + active-message launch)
      // before the NIC serializes the payload.
      SimTime inject_start = std::max(at, cpu_free[op.node]);
      SimTime injected = inject_start + machine.message_handler_ns;
      cpu_free[op.node] = injected;
      result.node_busy[op.node] += machine.message_handler_ns;
      SimTime send_start = std::max(injected, nic_out_free[op.node]);
      SimTime wire_done = send_start + xfer + machine.network_latency_ns;
      nic_out_free[op.node] = send_start + xfer;
      // Receiving: NIC-in serializes the payload, then the destination CPU
      // runs the active-message handler.
      SimTime recv_start = std::max(wire_done - xfer, nic_in_free[op.dst]);
      SimTime recv_done = std::max(recv_start + xfer, wire_done);
      nic_in_free[op.dst] = recv_done;
      SimTime handler_start = std::max(recv_done, cpu_free[op.dst]);
      fin = handler_start + machine.message_handler_ns;
      cpu_free[op.dst] = fin;
      result.node_busy[op.dst] += machine.message_handler_ns;
      break;
    }
    case OpKind::Marker:
      fin = at;
      break;
    }

    result.finish[id] = fin;
    result.makespan = std::max(result.makespan, fin);
    ++executed;

    for (OpID user : users[id]) {
      ready_time[user] = std::max(ready_time[user], fin);
      if (--pending[user] == 0) ready.push(ReadyOp{ready_time[user], user});
    }
  }

  invariant(executed == n, "work graph contains a dependence cycle");
  return result;
}

} // namespace visrt::sim
