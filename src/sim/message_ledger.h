// visrt/sim/message_ledger.h
//
// Per-simulated-node message ledger: one record per analysis / data
// message the runtime injects into the work graph — source, destination,
// byte count, kind, the launch on whose behalf it was sent and (for
// analysis traffic) the equivalence set that triggered it.  This is the
// substrate for plotting root-node fan-in directly: group records by
// destination and the painter's node-0 hot spot falls out.
//
// Records are appended only from the runtime's sequential per-requirement
// loops (never from sharded scans), so the ledger needs no lock and its
// contents are bit-identical across `analysis_threads`.
//
// Part of the provenance layer: compiled out with -DVISRT_PROVENANCE=OFF,
// and gated at runtime by `RuntimeConfig::provenance` otherwise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

#ifndef VISRT_PROVENANCE
#define VISRT_PROVENANCE 1
#endif

namespace visrt::sim {

enum class MessageKind : std::uint8_t {
  AnalysisRequest,  ///< analysis visiting metadata owned by a remote node
  AnalysisResponse, ///< remote owner shipping metadata back
  Copy,             ///< instance data copy
  Reduction,        ///< reduction flush
};

#if VISRT_PROVENANCE
const char* message_kind_name(MessageKind kind);
#else
inline const char* message_kind_name(MessageKind) { return "?"; }
#endif

/// One simulated message.
struct MessageRecord {
  LaunchID launch = kInvalidLaunch; ///< launch being analyzed / mapped
  NodeID src = 0;
  NodeID dst = 0;
  std::uint64_t bytes = 0;
  MessageKind kind = MessageKind::AnalysisRequest;
  EqSetID eqset = kNoEqSetID; ///< triggering eq-set, if attributable
};

/// Per-node send/receive totals.
struct NodeTraffic {
  std::uint64_t sent = 0;
  std::uint64_t recv = 0;
  std::uint64_t sent_bytes = 0;
  std::uint64_t recv_bytes = 0;
};

class MessageLedger {
public:
#if VISRT_PROVENANCE
  void enable(std::size_t num_nodes);
  bool enabled() const { return enabled_; }

  void record(const MessageRecord& record);

  const std::vector<MessageRecord>& records() const { return records_; }
  /// One entry per simulated node (index == NodeID).
  std::vector<NodeTraffic> per_node() const;
  /// Message count per kind, indexed by MessageKind value.
  std::vector<std::uint64_t> by_kind() const;

  /// Deterministic JSON: {"total": N, "by_kind": {...},
  /// "per_node": [{sent, recv, sent_bytes, recv_bytes}...]}.
  std::string json() const;
#else
  void enable(std::size_t) {}
  bool enabled() const { return false; }
  void record(const MessageRecord&) {}
  const std::vector<MessageRecord>& records() const { return records_; }
  std::vector<NodeTraffic> per_node() const { return {}; }
  std::vector<std::uint64_t> by_kind() const { return {}; }
  std::string json() const { return "{}"; }
#endif

private:
  bool enabled_ = false;
  std::size_t num_nodes_ = 0;
  std::vector<MessageRecord> records_;
};

} // namespace visrt::sim
