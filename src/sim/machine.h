// visrt/sim/machine.h
//
// Description of the simulated distributed machine.  This stands in for the
// Piz Daint system of the paper's evaluation: N nodes, each a sequential
// analysis processor (Legion runs one analysis thread per node in the
// paper's configuration) with a NIC attached to a full-bisection network
// modeled by per-message latency and per-byte bandwidth.
#pragma once

#include <cstdint>

#include "common/check.h"
#include "common/types.h"

namespace visrt::sim {

/// Static machine parameters.  Defaults approximate a Cray Aries-class
/// interconnect (1.3 us latency, ~10 GB/s per NIC).
struct MachineConfig {
  std::uint32_t num_nodes = 1;
  SimTime network_latency_ns = 1300;
  double network_bytes_per_ns = 10.0; // 10 GB/s
  /// Fixed software overhead charged on the receiving CPU per message
  /// (active-message handler dispatch).
  SimTime message_handler_ns = 300;

  void validate() const {
    require(num_nodes >= 1, "machine needs at least one node");
    require(network_bytes_per_ns > 0, "bandwidth must be positive");
  }

  /// Wire time for a message of the given size.
  SimTime wire_time(std::uint64_t bytes) const {
    return network_latency_ns +
           static_cast<SimTime>(static_cast<double>(bytes) /
                                network_bytes_per_ns);
  }
};

} // namespace visrt::sim
