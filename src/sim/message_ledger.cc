#include "sim/message_ledger.h"

#if VISRT_PROVENANCE

#include <sstream>

namespace visrt::sim {

const char* message_kind_name(MessageKind kind) {
  switch (kind) {
  case MessageKind::AnalysisRequest: return "analysis-request";
  case MessageKind::AnalysisResponse: return "analysis-response";
  case MessageKind::Copy: return "copy";
  case MessageKind::Reduction: return "reduction";
  }
  return "?";
}

void MessageLedger::enable(std::size_t num_nodes) {
  enabled_ = true;
  num_nodes_ = num_nodes;
}

void MessageLedger::record(const MessageRecord& record) {
  if (!enabled_) return;
  records_.push_back(record);
}

std::vector<NodeTraffic> MessageLedger::per_node() const {
  std::vector<NodeTraffic> out(num_nodes_);
  for (const MessageRecord& r : records_) {
    if (r.src < out.size()) {
      ++out[r.src].sent;
      out[r.src].sent_bytes += r.bytes;
    }
    if (r.dst < out.size()) {
      ++out[r.dst].recv;
      out[r.dst].recv_bytes += r.bytes;
    }
  }
  return out;
}

std::vector<std::uint64_t> MessageLedger::by_kind() const {
  std::vector<std::uint64_t> out(4, 0);
  for (const MessageRecord& r : records_)
    ++out[static_cast<std::size_t>(r.kind)];
  return out;
}

std::string MessageLedger::json() const {
  std::ostringstream os;
  os << "{\"total\":" << records_.size() << ",\"by_kind\":{";
  std::vector<std::uint64_t> kinds = by_kind();
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    if (k) os << ",";
    os << "\"" << message_kind_name(static_cast<MessageKind>(k))
       << "\":" << kinds[k];
  }
  os << "},\"per_node\":[";
  std::vector<NodeTraffic> nodes = per_node();
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    if (n) os << ",";
    os << "{\"sent\":" << nodes[n].sent << ",\"recv\":" << nodes[n].recv
       << ",\"sent_bytes\":" << nodes[n].sent_bytes
       << ",\"recv_bytes\":" << nodes[n].recv_bytes << "}";
  }
  os << "]}";
  return os.str();
}

} // namespace visrt::sim

#endif // VISRT_PROVENANCE
