// visrt/sim/replay.h
//
// Discrete-event scheduler that replays a WorkGraph onto a MachineConfig.
// Each node's CPU executes its compute ops sequentially in order of
// readiness; each node's NIC serializes outgoing (and incoming) transfers.
// The result assigns every op a finish time; the makespan (or the finish
// time of a designated marker) is the simulated wall-clock measurement the
// benchmarks report.
#pragma once

#include <vector>

#include "sim/machine.h"
#include "sim/work_graph.h"

namespace visrt::sim {

/// Per-run replay results.
struct ReplayResult {
  std::vector<SimTime> finish; ///< finish time per op, indexed by OpID
  SimTime makespan = 0;        ///< max finish time over all ops
  std::vector<SimTime> node_busy; ///< CPU busy time per node

  SimTime finish_of(OpID id) const { return finish[id]; }
};

/// Schedule the graph.  Deterministic: ties broken by op id.
ReplayResult replay(const WorkGraph& graph, const MachineConfig& machine);

} // namespace visrt::sim
