// visrt/sim/replay.h
//
// Discrete-event scheduler that replays a WorkGraph onto a MachineConfig.
// Each node's CPU executes its compute ops sequentially in order of
// readiness; each node's NIC serializes outgoing (and incoming) transfers.
// The result assigns every op a finish time; the makespan (or the finish
// time of a designated marker) is the simulated wall-clock measurement the
// benchmarks report.
//
// Retired graphs replay incrementally: a ReplayCheckpoint carries the
// per-resource next-free times (plus cumulative busy/makespan totals) at a
// retirement cut, so replaying the resident window from the checkpoint
// yields exactly the finish times a whole-stream replay would have
// produced for those ops.
#pragma once

#include <vector>

#include "sim/machine.h"
#include "sim/work_graph.h"

namespace visrt::sim {

/// Resource state at a retirement cut: what the retired prefix left
/// behind.  Busy times and makespan are cumulative from program start.
struct ReplayCheckpoint {
  std::vector<SimTime> cpu_free;
  std::vector<SimTime> accel_free;
  std::vector<SimTime> nic_out_free;
  std::vector<SimTime> nic_in_free;
  std::vector<SimTime> node_busy;
  SimTime makespan = 0;
  bool empty() const { return cpu_free.empty(); }
};

/// Per-run replay results.  `finish` / `ready` cover the replayed window,
/// indexed by id - base (base == 0 for never-retired graphs, so plain
/// `finish[id]` keeps working there).
struct ReplayResult {
  OpID base = 0;
  std::vector<SimTime> finish; ///< finish time per replayed op
  std::vector<SimTime> ready;  ///< dependence-readiness time per op
  SimTime makespan = 0;        ///< max finish time (cumulative with start)
  std::vector<SimTime> node_busy; ///< CPU busy per node (cumulative)

  SimTime finish_of(OpID id) const { return finish[id - base]; }
  SimTime ready_of(OpID id) const { return ready[id - base]; }
};

/// Schedule the resident window [graph.base(), min(limit, graph.size())).
/// Deterministic: ties broken by op id.  `start` seeds resource state from
/// a prior retirement cut (fresh machine when null); when `end_state` is
/// non-null the post-window resource state is written there.  `limit`
/// restricts the replay to an id-prefix of the window (the prefix must be
/// dependence-closed, which any id-prefix is).
ReplayResult replay(const WorkGraph& graph, const MachineConfig& machine,
                    const ReplayCheckpoint* start = nullptr,
                    ReplayCheckpoint* end_state = nullptr,
                    OpID limit = kInvalidOp);

/// Replay the whole resident window, additionally capturing in `cut_state`
/// the resource state after the pop-order prefix of ops whose readiness is
/// strictly below `ready_bound`.  Pops are ordered by (readiness, id), so
/// that set is a prefix of the pop sequence and `cut_state` is exactly the
/// state a replay of those ops alone would leave behind — the retirement
/// checkpoint (see Runtime::retire for the finality argument).
ReplayResult replay_split(const WorkGraph& graph, const MachineConfig& machine,
                          const ReplayCheckpoint* start, SimTime ready_bound,
                          ReplayCheckpoint& cut_state);

} // namespace visrt::sim
