#include "sim/trace_export.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace visrt::sim {

namespace {

const char* category_name(std::uint8_t category) {
  switch (static_cast<OpCategory>(category)) {
  case OpCategory::Other: return "other";
  case OpCategory::Analysis: return "analysis";
  case OpCategory::TaskExec: return "task";
  case OpCategory::Copy: return "copy";
  case OpCategory::Reduction: return "reduction";
  case OpCategory::Runtime: return "runtime";
  }
  return "?";
}

/// Track id within a node: 0 = runtime CPU, 1 = accelerator, 2 = NIC.
int track_of(const Op& op) {
  if (op.kind == OpKind::Message) return 2;
  return op.category == static_cast<std::uint8_t>(OpCategory::TaskExec) ? 1
                                                                        : 0;
}

const char* track_name(int track) {
  switch (track) {
  case 0: return "cpu";
  case 1: return "accel";
  default: return "nic";
  }
}

/// Where an op's slice renders; `valid` is false for markers and
/// zero-duration ops, which emit nothing.
struct SliceInfo {
  bool valid = false;
  NodeID pid = 0;
  int tid = 0;
  SimTime start = 0;
  SimTime duration = 0;
};

SliceInfo slice_info(const Op& op, SimTime finish,
                     const MachineConfig& machine) {
  SliceInfo s;
  if (op.kind == OpKind::Marker) return s;
  if (op.kind == OpKind::Message) {
    s.duration = std::max<SimTime>(
        machine.message_handler_ns,
        machine.wire_time(op.bytes) + machine.message_handler_ns);
    s.pid = op.dst;
  } else {
    s.duration = op.cost;
    s.pid = op.node;
  }
  if (s.duration <= 0) return s;
  s.start = finish - s.duration;
  if (s.start < 0) s.start = 0;
  s.tid = track_of(op);
  s.valid = true;
  return s;
}

/// Nanoseconds to the trace's microsecond timebase.
double us(SimTime ns) { return static_cast<double>(ns) / 1000.0; }

} // namespace

void export_chrome_trace(const WorkGraph& graph, const ReplayResult& result,
                         const MachineConfig& machine, std::ostream& os,
                         const TraceEnrichment* enrich) {
  os << "[";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) os << ",";
    first = false;
    os << "\n" << line;
  };

  // Thread-name metadata: one row per (node, track).
  for (NodeID node = 0; node < machine.num_nodes; ++node) {
    for (int track = 0; track < 3; ++track) {
      std::ostringstream line;
      line << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << node
           << ",\"tid\":" << track << ",\"args\":{\"name\":\"node" << node
           << "/" << track_name(track) << "\"}}";
      emit(line.str());
    }
  }

  for (OpID id = graph.base(); id < graph.size(); ++id) {
    const Op& op = graph.op(id);
    SliceInfo s = slice_info(op, result.finish_of(id), machine);
    if (!s.valid) continue;
    std::ostringstream line;
    // Chrome traces use microseconds; keep nanosecond resolution as
    // fractional microseconds.
    line << "{\"ph\":\"X\",\"name\":\"" << category_name(op.category)
         << "\",\"cat\":\"" << category_name(op.category)
         << "\",\"pid\":" << s.pid << ",\"tid\":" << s.tid
         << ",\"ts\":" << us(s.start) << ",\"dur\":" << us(s.duration)
         << ",\"args\":{\"op\":" << id;
    if (op.kind == OpKind::Message) {
      line << ",\"src\":" << op.node << ",\"bytes\":" << op.bytes;
    }
    if (enrich != nullptr) {
      auto ait = enrich->op_args.find(id);
      if (ait != enrich->op_args.end() && !ait->second.empty())
        line << "," << ait->second;
    }
    line << "}}";
    emit(line.str());
  }

  if (enrich != nullptr) {
    // Flow arrows: a "s"/"f" pair bound to the middle of each endpoint's
    // slice (binding point "e" accepts any enclosing slice).
    std::uint64_t flow_id = 0;
    for (const TraceFlow& f : enrich->flows) {
      if (f.src >= graph.size() || f.dst >= graph.size()) continue;
      if (f.src < graph.base() || f.dst < graph.base()) continue;
      SliceInfo src = slice_info(graph.op(f.src), result.finish_of(f.src),
                                 machine);
      SliceInfo dst = slice_info(graph.op(f.dst), result.finish_of(f.dst),
                                 machine);
      if (!src.valid || !dst.valid) continue;
      std::uint64_t id = flow_id++;
      std::ostringstream s_line;
      s_line << "{\"ph\":\"s\",\"id\":" << id << ",\"name\":\"" << f.name
             << "\",\"cat\":\"flow\",\"pid\":" << src.pid
             << ",\"tid\":" << src.tid
             << ",\"ts\":" << us(src.start + src.duration / 2) << "}";
      emit(s_line.str());
      std::ostringstream f_line;
      f_line << "{\"ph\":\"f\",\"bp\":\"e\",\"id\":" << id << ",\"name\":\""
             << f.name << "\",\"cat\":\"flow\",\"pid\":" << dst.pid
             << ",\"tid\":" << dst.tid
             << ",\"ts\":" << us(dst.start + dst.duration / 2) << "}";
      emit(f_line.str());
    }

    // Counter tracks: each sample stamped at its anchor op's finish time.
    for (const TraceCounterTrack& track : enrich->counters) {
      for (const auto& [anchor, value] : track.samples) {
        if (anchor >= graph.size() || anchor < graph.base()) continue;
        std::ostringstream line;
        line << "{\"ph\":\"C\",\"name\":\"" << track.name
             << "\",\"pid\":" << track.pid
             << ",\"ts\":" << us(result.finish_of(anchor))
             << ",\"args\":{\"value\":" << value << "}}";
        emit(line.str());
      }
    }
  }
  os << "\n]\n";
}

std::string chrome_trace_json(const WorkGraph& graph,
                              const ReplayResult& result,
                              const MachineConfig& machine,
                              const TraceEnrichment* enrich) {
  std::ostringstream os;
  export_chrome_trace(graph, result, machine, os, enrich);
  return os.str();
}

} // namespace visrt::sim
