#include "sim/trace_export.h"

#include <ostream>
#include <sstream>

namespace visrt::sim {

namespace {

const char* category_name(std::uint8_t category) {
  switch (static_cast<OpCategory>(category)) {
  case OpCategory::Other: return "other";
  case OpCategory::Analysis: return "analysis";
  case OpCategory::TaskExec: return "task";
  case OpCategory::Copy: return "copy";
  case OpCategory::Reduction: return "reduction";
  case OpCategory::Runtime: return "runtime";
  }
  return "?";
}

/// Track id within a node: 0 = runtime CPU, 1 = accelerator, 2 = NIC.
int track_of(const Op& op) {
  if (op.kind == OpKind::Message) return 2;
  return op.category == static_cast<std::uint8_t>(OpCategory::TaskExec) ? 1
                                                                        : 0;
}

const char* track_name(int track) {
  switch (track) {
  case 0: return "cpu";
  case 1: return "accel";
  default: return "nic";
  }
}

} // namespace

void export_chrome_trace(const WorkGraph& graph, const ReplayResult& result,
                         const MachineConfig& machine, std::ostream& os) {
  os << "[";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) os << ",";
    first = false;
    os << "\n" << line;
  };

  // Thread-name metadata: one row per (node, track).
  for (NodeID node = 0; node < machine.num_nodes; ++node) {
    for (int track = 0; track < 3; ++track) {
      std::ostringstream line;
      line << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << node
           << ",\"tid\":" << track << ",\"args\":{\"name\":\"node" << node
           << "/" << track_name(track) << "\"}}";
      emit(line.str());
    }
  }

  for (OpID id = 0; id < graph.size(); ++id) {
    const Op& op = graph.op(id);
    if (op.kind == OpKind::Marker) continue;
    SimTime finish = result.finish[id];
    SimTime duration;
    NodeID row_node;
    if (op.kind == OpKind::Message) {
      duration = std::max<SimTime>(
          machine.message_handler_ns,
          machine.wire_time(op.bytes) + machine.message_handler_ns);
      row_node = op.dst;
    } else {
      duration = op.cost;
      row_node = op.node;
    }
    if (duration <= 0) continue;
    SimTime start = finish - duration;
    if (start < 0) start = 0;
    std::ostringstream line;
    // Chrome traces use microseconds; keep nanosecond resolution as
    // fractional microseconds.
    line << "{\"ph\":\"X\",\"name\":\"" << category_name(op.category)
         << "\",\"cat\":\"" << category_name(op.category)
         << "\",\"pid\":" << row_node << ",\"tid\":" << track_of(op)
         << ",\"ts\":" << static_cast<double>(start) / 1000.0
         << ",\"dur\":" << static_cast<double>(duration) / 1000.0
         << ",\"args\":{\"op\":" << id;
    if (op.kind == OpKind::Message) {
      line << ",\"src\":" << op.node << ",\"bytes\":" << op.bytes;
    }
    line << "}}";
    emit(line.str());
  }
  os << "\n]\n";
}

std::string chrome_trace_json(const WorkGraph& graph,
                              const ReplayResult& result,
                              const MachineConfig& machine) {
  std::ostringstream os;
  export_chrome_trace(graph, result, machine, os);
  return os.str();
}

} // namespace visrt::sim
