#include "sim/work_graph.h"

#include <algorithm>

#include "common/check.h"

namespace visrt::sim {

OpID WorkGraph::push(Op op, std::span<const OpID> deps) {
  op.dep_begin = static_cast<std::uint32_t>(deps_.size());
  op.dep_count = static_cast<std::uint32_t>(deps.size());
  OpID id = static_cast<OpID>(size());
  for (OpID d : deps) {
    invariant(d < id, "work graph dependence must refer to an earlier op");
    invariant(d >= base_, "work graph dependence refers to a retired op");
    deps_.push_back(d);
  }
  if (op.kind == OpKind::Compute) {
    cost_by_category_[op.category] += op.cost;
  } else if (op.kind == OpKind::Message) {
    ++message_count_;
    message_bytes_ += op.bytes;
    if (op.node >= messages_by_src_.size())
      messages_by_src_.resize(op.node + 1, 0);
    ++messages_by_src_[op.node];
  }
  ops_.push_back(op);
  return id;
}

OpID WorkGraph::compute(NodeID node, SimTime cost, std::span<const OpID> deps,
                        OpCategory category, SimTime floor) {
  Op op;
  op.kind = OpKind::Compute;
  op.node = node;
  op.cost = cost;
  op.category = static_cast<std::uint8_t>(category);
  op.floor = floor;
  return push(op, deps);
}

OpID WorkGraph::message(NodeID src, NodeID dst, std::uint64_t bytes,
                        std::span<const OpID> deps, OpCategory category,
                        SimTime floor) {
  Op op;
  op.kind = OpKind::Message;
  op.node = src;
  op.dst = dst;
  op.bytes = bytes;
  op.category = static_cast<std::uint8_t>(category);
  op.floor = floor;
  return push(op, deps);
}

OpID WorkGraph::marker(NodeID node, std::span<const OpID> deps,
                       SimTime floor) {
  Op op;
  op.kind = OpKind::Marker;
  op.node = node;
  op.category = static_cast<std::uint8_t>(OpCategory::Other);
  op.floor = floor;
  return push(op, deps);
}

std::size_t WorkGraph::retire_ready_before(std::span<const SimTime> ready,
                                           SimTime ready_bound,
                                           std::span<const SimTime> finish,
                                           std::vector<OpID>& remap) {
  const std::size_t n = ops_.size();
  invariant(ready.size() >= n && finish.size() >= n,
            "work graph retirement needs replay results per resident op");
  remap.assign(n, kFrozenOp);
  std::size_t retired = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (ready[i] < ready_bound) ++retired;
  if (retired == 0) return 0;

  const OpID new_base = base_ + static_cast<OpID>(retired);
  std::vector<Op> ops;
  ops.reserve(n - retired);
  std::vector<OpID> deps;
  deps.reserve(deps_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (ready[i] < ready_bound) continue;
    Op op = ops_[i];
    const std::uint32_t begin = static_cast<std::uint32_t>(deps.size());
    for (std::uint32_t k = 0; k < op.dep_count; ++k) {
      const OpID d = deps_[op.dep_begin + k];
      const OpID nd = remap[d - base_];
      if (nd == kFrozenOp)
        op.floor = std::max(op.floor, finish[d - base_]);
      else
        deps.push_back(nd);
    }
    op.dep_begin = begin;
    op.dep_count = static_cast<std::uint32_t>(deps.size()) - begin;
    remap[i] = new_base + static_cast<OpID>(ops.size());
    ops.push_back(op);
  }
  ops_ = std::move(ops);
  deps_ = std::move(deps);
  base_ = new_base;
  return retired;
}

} // namespace visrt::sim
