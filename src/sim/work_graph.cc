#include "sim/work_graph.h"

#include "common/check.h"

namespace visrt::sim {

OpID WorkGraph::push(Op op, std::span<const OpID> deps) {
  op.dep_begin = static_cast<std::uint32_t>(deps_.size());
  op.dep_count = static_cast<std::uint32_t>(deps.size());
  OpID id = static_cast<OpID>(ops_.size());
  for (OpID d : deps) {
    invariant(d < id, "work graph dependence must refer to an earlier op");
    deps_.push_back(d);
  }
  ops_.push_back(op);
  return id;
}

OpID WorkGraph::compute(NodeID node, SimTime cost, std::span<const OpID> deps,
                        OpCategory category) {
  Op op;
  op.kind = OpKind::Compute;
  op.node = node;
  op.cost = cost;
  op.category = static_cast<std::uint8_t>(category);
  return push(op, deps);
}

OpID WorkGraph::message(NodeID src, NodeID dst, std::uint64_t bytes,
                        std::span<const OpID> deps, OpCategory category) {
  Op op;
  op.kind = OpKind::Message;
  op.node = src;
  op.dst = dst;
  op.bytes = bytes;
  op.category = static_cast<std::uint8_t>(category);
  return push(op, deps);
}

OpID WorkGraph::marker(NodeID node, std::span<const OpID> deps) {
  Op op;
  op.kind = OpKind::Marker;
  op.node = node;
  op.category = static_cast<std::uint8_t>(OpCategory::Other);
  return push(op, deps);
}

SimTime WorkGraph::total_cost(OpCategory category) const {
  SimTime total = 0;
  for (const Op& op : ops_) {
    if (op.kind == OpKind::Compute &&
        op.category == static_cast<std::uint8_t>(category))
      total += op.cost;
  }
  return total;
}

std::uint64_t WorkGraph::total_message_bytes() const {
  std::uint64_t total = 0;
  for (const Op& op : ops_)
    if (op.kind == OpKind::Message) total += op.bytes;
  return total;
}

std::size_t WorkGraph::message_count() const {
  std::size_t n = 0;
  for (const Op& op : ops_)
    if (op.kind == OpKind::Message) ++n;
  return n;
}

} // namespace visrt::sim
