// visrt/common/check.h
//
// Lightweight runtime checking.  visrt is a research runtime: internal
// invariant violations are programming errors and abort loudly rather than
// limping on.  `require` is used for conditions that depend on user input
// (it throws), `invariant` for conditions that should be impossible (it
// aborts).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace visrt {

/// Thrown when a caller violates an API precondition.
class ApiError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Verify a user-facing precondition; throws ApiError when violated.
inline void require(bool cond, std::string_view what,
                    std::source_location loc = std::source_location::current()) {
  if (!cond) {
    throw ApiError(std::string(what) + " [" + loc.file_name() + ":" +
                   std::to_string(loc.line()) + "]");
  }
}

[[noreturn]] void invariant_failure(
    std::string_view what,
    std::source_location loc = std::source_location::current());

/// Verify an internal invariant; aborts with a message when violated.
inline void invariant(bool cond, std::string_view what,
                      std::source_location loc = std::source_location::current()) {
  if (!cond) invariant_failure(what, loc);
}

} // namespace visrt
