// visrt/common/check.h
//
// Lightweight runtime checking.  visrt is a research runtime: internal
// invariant violations are programming errors and abort loudly rather than
// limping on.  `require` is used for conditions that depend on user input
// (it throws), `invariant` for conditions that should be impossible (it
// aborts).
//
// The fuzzing subsystem needs to *survive* invariant violations so it can
// minimize assertion-tripping programs: ScopedCheckThrows switches
// invariant failures from abort() to a catchable CheckFailure exception for
// the current thread while it is in scope.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace visrt {

/// Thrown when a caller violates an API precondition.
class ApiError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Thrown instead of aborting when an internal invariant fails while a
/// ScopedCheckThrows guard is active (the fuzzer's catchable mode).
class CheckFailure : public std::logic_error {
public:
  using std::logic_error::logic_error;
};

/// While alive, invariant failures on this thread throw CheckFailure
/// instead of aborting.  Nestable; restores the previous mode on
/// destruction.  Engine state is unspecified after a caught CheckFailure —
/// callers must discard the runtime/engine that threw.
class ScopedCheckThrows {
public:
  ScopedCheckThrows();
  ~ScopedCheckThrows();
  ScopedCheckThrows(const ScopedCheckThrows&) = delete;
  ScopedCheckThrows& operator=(const ScopedCheckThrows&) = delete;

private:
  bool previous_;
};

/// Current mode of this thread (true while a ScopedCheckThrows is alive).
bool check_failures_throw();

/// Verify a user-facing precondition; throws ApiError when violated.
inline void require(bool cond, std::string_view what,
                    std::source_location loc = std::source_location::current()) {
  if (!cond) {
    throw ApiError(std::string(what) + " [" + loc.file_name() + ":" +
                   std::to_string(loc.line()) + "]");
  }
}

/// Observer invoked from invariant_failure with the formatted message
/// before the failure propagates (throw or abort).  The flight recorder
/// installs one to leave a breadcrumb and write its crash dump; the hook
/// must be reentrancy-safe (it runs on the failing thread, which may be
/// holding arbitrary locks) and must not throw.
using CheckFailureHook = void (*)(std::string_view message);

/// Install (or clear, with nullptr) the process-wide failure hook.
/// Returns the previous hook.
CheckFailureHook set_check_failure_hook(CheckFailureHook hook);

/// Report an invariant violation: throws CheckFailure in catchable mode,
/// aborts otherwise.  The installed hook (if any) runs first in both
/// modes.
[[noreturn]] void invariant_failure(
    std::string_view what,
    std::source_location loc = std::source_location::current());

/// Verify an internal invariant; aborts (or throws, see ScopedCheckThrows)
/// with a message when violated.
inline void invariant(bool cond, std::string_view what,
                      std::source_location loc = std::source_location::current()) {
  if (!cond) invariant_failure(what, loc);
}

} // namespace visrt
