// visrt/common/executor.h
//
// A fixed-size thread pool with deterministic fork/join task groups: the
// parallel substrate of the analysis stack (see docs/PERFORMANCE.md).
//
// parallel_for(n, body) runs body(0)..body(n-1) across the pool *and* the
// calling thread, returning only once every index has finished.
// Guarantees:
//
//   - Fork/join: no index of a group runs after parallel_for returns.
//   - Nesting: a body may itself call parallel_for on the same executor;
//     inner groups share the same worker lanes (a thread waiting for an
//     inner group first helps drain it, so nesting never deadlocks and
//     never oversubscribes).
//   - Exceptions: a throwing body does not tear down the pool.  Every
//     index still runs; after the join the exception thrown by the
//     *lowest* index is rethrown to the caller, so failures are
//     deterministic under any interleaving.
//   - Check modes: the submitting thread's ScopedCheckThrows mode
//     (common/check.h) is extended to the workers for the duration of the
//     group, so engine invariants stay catchable when the fuzz oracle
//     runs in parallel mode.
//
// Determinism contract: parallel_for guarantees nothing about
// *interleaving*; bit-identical results are obtained by construction —
// bodies write only to per-index slots (or accumulate commutative sums),
// and callers merge the slots in canonical index order after the join.
// shard_count/sharded_for package that pattern for contiguous ranges.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/profile.h"

namespace visrt {

class Executor {
public:
  /// `lanes` is the total parallelism including the calling thread:
  /// lanes <= 1 creates no workers and every group runs inline.
  /// `profiler` (optional, non-owning, must outlive the executor) receives
  /// shard-task begin/end events and fork/join group records; the queue
  /// mutex is a TimedMutex so its contention is reportable either way.
  explicit Executor(unsigned lanes, obs::Profiler* profiler = nullptr);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Worker threads plus the calling thread.
  unsigned lanes() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }
  /// False for a lanes<=1 executor: parallel_for then runs inline.
  bool parallel() const { return !workers_.empty(); }

  /// Run body(i) for every i in [0, n); blocks until all have finished.
  /// `tag` labels the group's shard tasks in profiles (which launch/field
  /// this fork is scanning); it does not affect execution.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body,
                    obs::TaskTag tag = {});

  /// Contention stats source for the work-queue lock (register with a
  /// Profiler via add_lock).
  const obs::TimedMutex& queue_mutex() const { return mu_; }

private:
  struct Group;

  void worker_loop(unsigned lane);
  /// Claim and run indices of `g` until none remain.
  void run_some(Group& g);

  obs::Profiler* profiler_ = nullptr;
  std::vector<std::thread> workers_;
  /// Guards queue_ and stop_.  Mutating acquisitions go through the
  /// TimedMutex interface (contention-accounted); the workers' idle
  /// waits go through raw() + a plain condition_variable, which keeps
  /// the wait/wakeup path as cheap as an uninstrumented pool.
  obs::TimedMutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Group>> queue_; ///< groups with unclaimed work
  bool stop_ = false;
};

/// Number of contiguous chunks sharded_for will split [0, n) into: 1 when
/// `ex` is null/sequential or the range is too small to be worth forking
/// (fewer than two grains), else ~n/grain capped at 4 chunks per lane.
/// Callers size their per-shard slot arrays with this.
///
/// `batch` is the coarse-shard override (RuntimeConfig::shard_batch): when
/// nonzero it *replaces* the call site's grain, so one knob re-tunes every
/// sharded loop in the analysis stack — batch=1 forces the finest legal
/// sharding (adversarial for the equivalence tests), a batch larger than
/// the work forces everything inline.  0 keeps the site's default grain.
inline std::size_t shard_count(const Executor* ex, std::size_t n,
                               std::size_t grain, std::size_t batch = 0) {
  if (batch != 0) grain = batch;
  if (n == 0) return 0;
  if (ex == nullptr || !ex->parallel()) return 1;
  if (grain == 0) grain = 1;
  if (n < 2 * grain) return 1;
  return std::min<std::size_t>(n / grain,
                               static_cast<std::size_t>(ex->lanes()) * 4);
}

/// Half-open index range of chunk `c` when [0, n) is cut into `chunks`
/// contiguous pieces (sizes differ by at most one, longer pieces first).
/// The partition every sharded loop and every combine pass below share —
/// geometry is a pure function of (n, chunks), never of thread timing.
inline std::pair<std::size_t, std::size_t>
shard_range(std::size_t n, std::size_t chunks, std::size_t c) {
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  const std::size_t begin = c * base + std::min(c, extra);
  return {begin, begin + base + (c < extra ? 1 : 0)};
}

/// Deterministically shard [0, n) into shard_count(...) contiguous chunks
/// and call fn(chunk, begin, end) for each, in parallel when possible.
/// With one chunk fn runs inline on the caller — the sequential and
/// parallel modes share a single code path.  `tag` labels the fork in
/// profiles (see Executor::parallel_for).  `batch`, when nonzero,
/// overrides `grain` (see shard_count).
template <typename Fn>
void sharded_for(Executor* ex, std::size_t n, std::size_t grain,
                 std::size_t batch, Fn&& fn, obs::TaskTag tag = {}) {
  const std::size_t chunks = shard_count(ex, n, grain, batch);
  if (chunks == 0) return;
  if (chunks == 1) {
    fn(std::size_t{0}, std::size_t{0}, n);
    return;
  }
  ex->parallel_for(
      chunks,
      [&](std::size_t c) {
        const auto [begin, end] = shard_range(n, chunks, c);
        fn(c, begin, end);
      },
      tag);
}

/// sharded_for without a batch override (site default grain only).
template <typename Fn>
void sharded_for(Executor* ex, std::size_t n, std::size_t grain, Fn&& fn,
                 obs::TaskTag tag = {}) {
  sharded_for(ex, n, grain, /*batch=*/0, std::forward<Fn>(fn), tag);
}

/// Profiler attribution labels for sharded_reduce: the parallel scan is
/// recorded as one ShardScan phase event, the sequential combine as one
/// Merge event — per *call*, so structure reports stay thread-count- and
/// batch-invariant.  Leave `profiler` null to skip attribution.
struct ReducePhases {
  obs::Profiler* profiler = nullptr;
  std::string_view scan;
  std::string_view combine;
};

/// Deterministic lock-free reduction over [0, n): every shard gets a
/// private, default-constructed Slot; scan(slot, begin, end) runs across
/// the executor and appends whatever the shard produced into its slot
/// (never touching shared state — that is what makes the scan lock-free);
/// then combine(slot, chunk, begin, end) folds the slots *sequentially in
/// chunk order* on the calling thread.  Because the chunk geometry is a
/// pure function of (n, chunks) and the combine order is the index order,
/// the folded result is bit-identical to an inline left-to-right loop at
/// any thread count and any batch granularity.
///
/// Exceptions follow parallel_for's contract: every shard still runs, the
/// lowest-index shard's exception is rethrown after the join, and the
/// combine pass is skipped entirely.
template <typename Slot, typename Scan, typename Combine>
void sharded_reduce(Executor* ex, std::size_t n, std::size_t grain,
                    std::size_t batch, Scan&& scan, Combine&& combine,
                    obs::TaskTag tag = {}, ReducePhases phases = {}) {
  const std::size_t chunks = shard_count(ex, n, grain, batch);
  std::vector<Slot> slots(chunks);
  {
    obs::ScopedPhase scan_phase(phases.profiler, obs::PhaseKind::ShardScan,
                                phases.scan);
    if (chunks == 1) {
      scan(slots[0], std::size_t{0}, n);
    } else if (chunks > 1) {
      ex->parallel_for(
          chunks,
          [&](std::size_t c) {
            const auto [begin, end] = shard_range(n, chunks, c);
            scan(slots[c], begin, end);
          },
          tag);
    }
  }
  obs::ScopedPhase combine_phase(phases.profiler, obs::PhaseKind::Merge,
                                 phases.combine);
  for (std::size_t c = 0; c < chunks; ++c) {
    const auto [begin, end] = shard_range(n, chunks, c);
    combine(slots[c], c, begin, end);
  }
}

} // namespace visrt
