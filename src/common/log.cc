#include "common/log.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

namespace visrt {
namespace {

/// Initial threshold: VISRT_LOG_LEVEL (name or numeric LogLevel value)
/// when set and recognized, Warning otherwise.
LogLevel initial_level() {
  const char* env = std::getenv("VISRT_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return LogLevel::Warning;
  std::string v;
  for (const char* p = env; *p != '\0'; ++p)
    v.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  if (v == "debug" || v == "0") return LogLevel::Debug;
  if (v == "info" || v == "1") return LogLevel::Info;
  if (v == "warning" || v == "warn" || v == "2") return LogLevel::Warning;
  if (v == "error" || v == "3") return LogLevel::Error;
  if (v == "off" || v == "none" || v == "4") return LogLevel::Off;
  return LogLevel::Warning;
}

/// Initial format: VISRT_LOG_FORMAT=json flips to JSON lines.
LogFormat initial_format() {
  const char* env = std::getenv("VISRT_LOG_FORMAT");
  return env != nullptr && std::strcmp(env, "json") == 0 ? LogFormat::Json
                                                         : LogFormat::Human;
}

std::atomic<LogLevel> g_level{initial_level()};
std::atomic<LogFormat> g_format{initial_format()};
std::mutex g_mutex;

/// Monotonic clock origin, anchored at the first log statement.
std::chrono::steady_clock::time_point log_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

const char* level_name(LogLevel level) {
  switch (level) {
  case LogLevel::Debug: return "DEBUG";
  case LogLevel::Info: return "INFO";
  case LogLevel::Warning: return "WARN";
  case LogLevel::Error: return "ERROR";
  case LogLevel::Off: return "OFF";
  }
  return "?";
}

const char* level_name_lower(LogLevel level) {
  switch (level) {
  case LogLevel::Debug: return "debug";
  case LogLevel::Info: return "info";
  case LogLevel::Warning: return "warning";
  case LogLevel::Error: return "error";
  case LogLevel::Off: return "off";
  }
  return "?";
}

/// JSON string escaping, local so common/ stays free of obs dependencies.
std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\n': out += "\\n"; break;
    case '\r': out += "\\r"; break;
    case '\t': out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
  }
  return out;
}

} // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogFormat log_format() { return g_format.load(std::memory_order_relaxed); }

void set_log_format(LogFormat format) {
  g_format.store(format, std::memory_order_relaxed);
}

void log_line(LogLevel level, std::string_view component,
              std::string_view message) {
  if (level < log_level() || message.empty()) return;
  double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    log_epoch())
          .count();
  // One fprintf per line under the lock: lines from concurrent threads
  // never interleave.
  std::scoped_lock lock(g_mutex);
  if (log_format() == LogFormat::Json) {
    std::string msg = escape_json(message);
    std::string sub = escape_json(component);
    std::fprintf(stderr,
                 "{\"ts\":%.6f,\"level\":\"%s\",\"subsystem\":\"%s\","
                 "\"msg\":\"%s\"}\n",
                 uptime, level_name_lower(level), sub.c_str(), msg.c_str());
    return;
  }
  std::fprintf(stderr, "[%11.6f] [visrt:%.*s] %s: %.*s\n", uptime,
               static_cast<int>(component.size()), component.data(),
               level_name(level), static_cast<int>(message.size()),
               message.data());
}

} // namespace visrt
