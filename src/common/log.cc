#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace visrt {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warning};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
  case LogLevel::Debug: return "DEBUG";
  case LogLevel::Info: return "INFO";
  case LogLevel::Warning: return "WARN";
  case LogLevel::Error: return "ERROR";
  case LogLevel::Off: return "OFF";
  }
  return "?";
}

} // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  if (level < log_level() || message.empty()) return;
  std::scoped_lock lock(g_mutex);
  std::fprintf(stderr, "[visrt:%s] %s: %s\n", component.c_str(),
               level_name(level), message.c_str());
}

} // namespace visrt
