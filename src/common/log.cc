#include "common/log.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

namespace visrt {
namespace {

/// Initial threshold: VISRT_LOG_LEVEL (name or numeric LogLevel value)
/// when set and recognized, Warning otherwise.
LogLevel initial_level() {
  const char* env = std::getenv("VISRT_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return LogLevel::Warning;
  std::string v;
  for (const char* p = env; *p != '\0'; ++p)
    v.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  if (v == "debug" || v == "0") return LogLevel::Debug;
  if (v == "info" || v == "1") return LogLevel::Info;
  if (v == "warning" || v == "warn" || v == "2") return LogLevel::Warning;
  if (v == "error" || v == "3") return LogLevel::Error;
  if (v == "off" || v == "none" || v == "4") return LogLevel::Off;
  return LogLevel::Warning;
}

std::atomic<LogLevel> g_level{initial_level()};
std::mutex g_mutex;

/// Monotonic clock origin, anchored at the first log statement.
std::chrono::steady_clock::time_point log_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

const char* level_name(LogLevel level) {
  switch (level) {
  case LogLevel::Debug: return "DEBUG";
  case LogLevel::Info: return "INFO";
  case LogLevel::Warning: return "WARN";
  case LogLevel::Error: return "ERROR";
  case LogLevel::Off: return "OFF";
  }
  return "?";
}

} // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, std::string_view component,
              std::string_view message) {
  if (level < log_level() || message.empty()) return;
  double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    log_epoch())
          .count();
  // One fprintf per line under the lock: lines from concurrent threads
  // never interleave.
  std::scoped_lock lock(g_mutex);
  std::fprintf(stderr, "[%11.6f] [visrt:%.*s] %s: %.*s\n", uptime,
               static_cast<int>(component.size()), component.data(),
               level_name(level), static_cast<int>(message.size()),
               message.data());
}

} // namespace visrt
