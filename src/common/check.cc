#include "common/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace visrt {

namespace {
thread_local bool g_check_throws = false;
std::atomic<CheckFailureHook> g_failure_hook{nullptr};
} // namespace

CheckFailureHook set_check_failure_hook(CheckFailureHook hook) {
  return g_failure_hook.exchange(hook, std::memory_order_acq_rel);
}

ScopedCheckThrows::ScopedCheckThrows() : previous_(g_check_throws) {
  g_check_throws = true;
}

ScopedCheckThrows::~ScopedCheckThrows() { g_check_throws = previous_; }

bool check_failures_throw() { return g_check_throws; }

[[noreturn]] void invariant_failure(std::string_view what,
                                    std::source_location loc) {
  std::string message = "visrt invariant violated: " + std::string(what) +
                        " at " + loc.file_name() + ":" +
                        std::to_string(loc.line());
  if (CheckFailureHook hook = g_failure_hook.load(std::memory_order_acquire))
    hook(message);
  if (g_check_throws) throw CheckFailure(message);
  std::fprintf(stderr, "%s\n", message.c_str());
  std::abort();
}

} // namespace visrt
