#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace visrt {

[[noreturn]] void invariant_failure(std::string_view what,
                                    std::source_location loc) {
  std::fprintf(stderr, "visrt invariant violated: %.*s at %s:%u\n",
               static_cast<int>(what.size()), what.data(), loc.file_name(),
               loc.line());
  std::abort();
}

} // namespace visrt
