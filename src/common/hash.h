// visrt/common/hash.h
//
// Hash-combining helpers for composite keys used in memoization tables,
// plus the FNV-1a fold shared by every result-hash producer (the fuzz
// oracle, the dependence graph's stream hash, the runtime's schedule
// hash, the serve sessions).  Keeping one definition is what makes
// "hashes are bit-identical across modes" hold by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

namespace visrt {

/// Combine a value's hash into a running seed (boost::hash_combine recipe,
/// widened for 64-bit seeds).
template <typename T>
void hash_combine(std::size_t& seed, const T& value) {
  seed ^= std::hash<T>{}(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
          (seed >> 2);
}

/// Hash an arbitrary pack of values into one size_t.
template <typename... Ts>
std::size_t hash_all(const Ts&... values) {
  std::size_t seed = 0;
  (hash_combine(seed, values), ...);
  return seed;
}

/// FNV-1a offset basis / prime for 64-bit folds.
inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Fold one 64-bit value into a running FNV-1a hash.
inline std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * kFnvPrime;
}

/// Fold a sequence of 64-bit values, starting from the offset basis.
inline std::uint64_t fnv1a_all(std::span<const std::uint64_t> values) {
  std::uint64_t h = kFnvOffsetBasis;
  for (std::uint64_t v : values) h = fnv1a_u64(h, v);
  return h;
}

} // namespace visrt
