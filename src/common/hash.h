// visrt/common/hash.h
//
// Hash-combining helpers for composite keys used in memoization tables.
#pragma once

#include <cstddef>
#include <functional>

namespace visrt {

/// Combine a value's hash into a running seed (boost::hash_combine recipe,
/// widened for 64-bit seeds).
template <typename T>
void hash_combine(std::size_t& seed, const T& value) {
  seed ^= std::hash<T>{}(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
          (seed >> 2);
}

/// Hash an arbitrary pack of values into one size_t.
template <typename... Ts>
std::size_t hash_all(const Ts&... values) {
  std::size_t seed = 0;
  (hash_combine(seed, values), ...);
  return seed;
}

} // namespace visrt
