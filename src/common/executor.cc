#include "common/executor.h"

#include <atomic>
#include <exception>
#include <optional>
#include <utility>

#include "common/check.h"

namespace visrt {

namespace {
/// Lane index of the current thread: 0 for any submitter (the calling
/// thread participates in every group it submits), 1.. for pool workers.
/// Used only to attribute profiler task events; never for scheduling.
thread_local unsigned t_lane = 0;
} // namespace

/// One fork/join task group.  Indices are claimed with a single atomic
/// counter; `done` reaching `n` is the join condition the submitter waits
/// on.  Groups live on the shared queue until exhausted so any idle lane
/// (including a lane blocked on a *nested* group) can contribute.
struct Executor::Group {
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t n = 0;
  /// ScopedCheckThrows mode of the submitting thread, re-established on
  /// every lane that runs part of this group.
  bool check_throws = false;
  obs::TaskTag tag; ///< profile label; unused when profiling is off
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  /// Longest single task and summed task time (profiling only; updated
  /// before the done increment, read by the submitter after the join).
  std::atomic<std::uint64_t> max_task_ns{0};
  std::atomic<std::uint64_t> sum_task_ns{0};
  std::mutex m; ///< guards errors and the join wakeup
  std::condition_variable cv;
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors;
};

Executor::Executor(unsigned lanes, obs::Profiler* profiler)
    : profiler_(profiler) {
  const unsigned workers = lanes > 1 ? lanes - 1 : 0;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
}

Executor::~Executor() {
  {
    std::lock_guard<obs::TimedMutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Executor::run_some(Group& g) {
  std::optional<ScopedCheckThrows> mode;
  if (g.check_throws && !check_failures_throw()) mode.emplace();
  const bool prof = profiler_ != nullptr && profiler_->enabled();
  for (;;) {
    const std::size_t i = g.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= g.n) return;
    const std::uint64_t t0 = prof ? obs::prof_now_ns() : 0;
    try {
      (*g.body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(g.m);
      g.errors.emplace_back(i, std::current_exception());
    }
    if (prof) {
      // All profiler writes land before the done increment below, so the
      // join's release/acquire chain orders them before any post-join
      // read (report(), TSan-clean by construction).
      const std::uint64_t t1 = obs::prof_now_ns();
      profiler_->task_event(t_lane, g.tag, static_cast<std::uint32_t>(i),
                            t0, t1);
      const std::uint64_t d = t1 - t0;
      g.sum_task_ns.fetch_add(d, std::memory_order_relaxed);
      std::uint64_t prev = g.max_task_ns.load(std::memory_order_relaxed);
      while (d > prev && !g.max_task_ns.compare_exchange_weak(
                             prev, d, std::memory_order_relaxed)) {
      }
    }
    if (g.done.fetch_add(1, std::memory_order_acq_rel) + 1 == g.n) {
      // Lock-then-notify so the submitter cannot check the predicate and
      // sleep between our done increment and the notification.
      { std::lock_guard<std::mutex> lock(g.m); }
      g.cv.notify_all();
    }
  }
}

void Executor::worker_loop(unsigned lane) {
  t_lane = lane;
  for (;;) {
    std::shared_ptr<Group> g;
    {
      // Idle wait on the raw mutex: see TimedMutex::raw() for why these
      // acquisitions are deliberately not contention-accounted.
      std::unique_lock<std::mutex> lock(mu_.raw());
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return; // stop requested and nothing queued
      g = queue_.front();
    }
    run_some(*g);
    {
      std::lock_guard<obs::TimedMutex> lock(mu_);
      if (g->next.load(std::memory_order_relaxed) >= g->n)
        std::erase(queue_, g);
    }
  }
}

void Executor::parallel_for(std::size_t n,
                            const std::function<void(std::size_t)>& body,
                            obs::TaskTag tag) {
  if (n == 0) return;
  if (!parallel() || n == 1) {
    // Inline: exceptions propagate directly (a single index is already
    // "the lowest one").
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const bool prof = profiler_ != nullptr && profiler_->enabled();
  const std::uint64_t submit_ns = prof ? obs::prof_now_ns() : 0;
  auto g = std::make_shared<Group>();
  g->body = &body;
  g->n = n;
  g->check_throws = check_failures_throw();
  g->tag = tag;
  {
    std::lock_guard<obs::TimedMutex> lock(mu_);
    queue_.push_back(g);
  }
  // Wake at most n-1 workers: the submitter claims indices too, so a
  // group of k tasks can never use more than k-1 helpers.  notify_all
  // here made every tiny fork stampede the whole pool awake (the
  // profiler showed it as fan-out self time on fine-grained sharding).
  const std::size_t wake = std::min<std::size_t>(n - 1, workers_.size());
  for (std::size_t i = 0; i < wake; ++i) work_cv_.notify_one();
  // The submitter is a lane too: claim indices until none remain, then
  // join.  For small groups this usually finishes the whole group before
  // a worker even wakes, keeping tiny forks cheap.
  run_some(*g);
  {
    std::unique_lock<std::mutex> lock(g->m);
    g->cv.wait(lock, [&] {
      return g->done.load(std::memory_order_acquire) == g->n;
    });
  }
  if (prof) {
    profiler_->group_complete(
        static_cast<std::uint32_t>(n), obs::prof_now_ns() - submit_ns,
        g->max_task_ns.load(std::memory_order_relaxed),
        g->sum_task_ns.load(std::memory_order_relaxed));
  }
  {
    std::lock_guard<obs::TimedMutex> lock(mu_);
    std::erase(queue_, g);
  }
  std::lock_guard<std::mutex> lock(g->m);
  if (!g->errors.empty()) {
    auto first = std::min_element(
        g->errors.begin(), g->errors.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::rethrow_exception(first->second);
  }
}

} // namespace visrt
