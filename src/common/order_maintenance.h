// visrt/common/order_maintenance.h
//
// O(1) precedence queries over a dynamically growing dependence DAG — the
// order-maintenance structure DePa-style ("Simple, Provably Efficient, and
// Practical Order Maintenance for Task Parallelism", PAPERS.md) that
// replaces the spy verifier's BitMatrix transitive closure.
//
// Nodes are appended in program order (which is a topological order: every
// dependence edge points backwards in id space).  Each node is assigned to
// a *chain* — a path of the DAG — greedily: a node extends the chain of a
// predecessor that is currently that chain's tail, else it opens a new
// chain.  A node's *label* is a compact tag, one entry per chain that
// existed when the node was appended:
//
//   label[c] = highest position in chain c that precedes this node
//              (kNoPos when no member of chain c does)
//
// so `precedes(a, b)` is a single comparison: a (at position p of chain c)
// precedes b iff c is b's own chain and p < pos(b), or label_b[c] >= p.
// Chains opened after b was appended simply fall off the end of b's label
// — no relabeling is ever needed for chain growth.
//
// Labels are finalized lazily: a node's tag is computed from its
// predecessors' tags (one max-merge per edge) when the next node arrives
// or the first query lands.  Under the runtime's one-add_edges-per-launch
// discipline that makes every append O(indegree * width) and relabeling
// never happens; an edge added to an *older* node forces a suffix relabel
// of everything after it, counted in OrderStats::relabels (the verify
// metrics surface it, so a front end that breaks the discipline is
// visible).
//
// For unbounded streams the structure retires like the DepGraph it
// shadows: `retire_prefix` drops the tags of launches below the watermark
// and compacts away chains with no resident member, so memory is
// O(resident * width), not O(stream).  `remap_ids` additionally renumbers
// the surviving nodes (the op-id compaction WorkGraph::retire_ready_before
// performs), keeping positions — and therefore every surviving tag —
// intact.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace visrt {

/// Counters of one OrderMaintenance instance.  `relabels` is the headline
/// health metric: nonzero means edges arrived out of append order and the
/// amortized-O(1) guarantee degraded to suffix recomputation.
struct OrderStats {
  std::uint64_t nodes = 0;           ///< nodes ever appended
  std::uint64_t edges = 0;           ///< edges ever ingested
  std::uint64_t chains = 0;          ///< chains ever opened
  std::uint64_t relabels = 0;        ///< suffix-relabel events (late edges)
  std::uint64_t relabeled_nodes = 0; ///< nodes recomputed by those events
  std::size_t active_chains = 0;     ///< chains a resident query can name
  std::size_t label_entries = 0;     ///< resident tag memory, in entries
  std::size_t max_width = 0;         ///< widest tag ever assigned
};

class OrderMaintenance {
public:
  static constexpr std::uint32_t kNoPos = 0xffffffffu;

  /// Append node `id`.  Ids are contiguous: the first call fixes the
  /// origin, every later call must pass end().
  void add_node(std::uint64_t id);

  /// Ingest the edge from -> to.  `from < to`, both resident.  Edges to
  /// the newest node are O(width); edges to older nodes relabel the
  /// suffix (see OrderStats::relabels).
  void add_edge(std::uint64_t from, std::uint64_t to);

  /// Is `a` ordered before `b` through some path?  O(1).  Both resident;
  /// precedes(x, x) is false.
  bool precedes(std::uint64_t a, std::uint64_t b) const;

  /// Drop the tags of nodes below `new_base` (the caller guarantees no
  /// future edge or query names them) and compact dead chains.
  void retire_prefix(std::uint64_t new_base);

  /// Retire-and-renumber: entry i of `old_to_new` maps resident id
  /// base()+i either to its new id (strictly increasing, contiguous) or to
  /// `retired_marker`.  Mirrors WorkGraph::retire_ready_before's op-id
  /// compaction.
  void remap_ids(std::span<const std::uint64_t> old_to_new,
                 std::uint64_t retired_marker);

  /// First resident id.
  std::uint64_t base() const { return base_; }
  /// One past the last appended id.
  std::uint64_t end() const { return base_ + nodes_.size(); }
  /// Is `id` resident (appended and not retired)?
  bool contains(std::uint64_t id) const { return id >= base_ && id < end(); }

  /// Counters; finalizes the pending tag so label_entries is exact.
  const OrderStats& stats() const;

private:
  static constexpr std::uint32_t kNoChain = 0xffffffffu;
  static constexpr std::uint64_t kNoTail = ~std::uint64_t{0};

  struct Node {
    std::uint32_t chain = kNoChain;
    std::uint32_t pos = 0;
    /// label[c]: highest position of chain c preceding this node, kNoPos
    /// none.  Truncated: chains opened later have no entry.
    std::vector<std::uint32_t> label;
    /// Resident direct predecessors, kept for suffix relabels; pruned at
    /// retirement (safe: a retired pred's tag only names retired
    /// positions, which no resident query can reference).
    std::vector<std::uint64_t> preds;
  };

  struct Chain {
    std::uint64_t tail_id = kNoTail; ///< extension point; kNoTail = sealed
    std::uint32_t length = 0;        ///< next position (never reused)
  };

  Node& node(std::uint64_t id) { return nodes_[id - base_]; }
  const Node& node(std::uint64_t id) const { return nodes_[id - base_]; }

  /// Assign the pending node's chain and compute its tag.
  void finalize() const;
  /// Recompute `n`'s tag from its predecessors (chain unchanged).
  void compute_label(Node& n) const;
  /// Drop chains no resident node belongs to, remapping tag indices.
  void compact_chains();

  mutable std::vector<Node> nodes_; // indexed by id - base_
  mutable std::vector<Chain> chains_;
  std::uint64_t base_ = 0;
  mutable bool pending_ = false; ///< newest node's tag not yet computed
  mutable OrderStats stats_;
};

} // namespace visrt
