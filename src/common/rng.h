// visrt/common/rng.h
//
// Deterministic, seedable random number generation.  Every randomized
// component in visrt (workload generators, property tests) takes an explicit
// Rng so runs are reproducible; nothing ever reads a global entropy source.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/types.h"

namespace visrt {

/// SplitMix64 generator: tiny state, excellent statistical quality for the
/// generator-seeding and workload-shuffling purposes we use it for.
class Rng {
public:
  explicit Rng(std::uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  /// Next raw 64-bit value.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound).  bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent child generator (for per-shard determinism).
  Rng fork() { return Rng(next()); }

  /// Uniformly chosen element of a non-empty sequence.
  template <typename T> const T& pick(std::span<const T> items) {
    return items[below(items.size())];
  }
  template <typename T> const T& pick(const std::vector<T>& items) {
    return items[below(items.size())];
  }

  /// Index drawn proportionally to non-negative `weights` (at least one
  /// weight must be positive).
  std::size_t weighted(std::span<const double> weights) {
    double total = 0;
    for (double w : weights) total += w;
    double roll = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      roll -= weights[i];
      if (roll < 0) return i;
    }
    return weights.size() - 1;
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T> void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i)
      std::swap(items[i - 1], items[below(i)]);
  }

private:
  std::uint64_t state_;
};

} // namespace visrt
