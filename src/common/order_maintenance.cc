#include "common/order_maintenance.h"

#include <algorithm>

#include "common/check.h"

namespace visrt {

void OrderMaintenance::add_node(std::uint64_t id) {
  finalize();
  if (stats_.nodes == 0)
    base_ = id;
  else
    require(id == end(),
            "order-maintenance nodes must be appended contiguously");
  nodes_.emplace_back();
  pending_ = true;
  ++stats_.nodes;
}

void OrderMaintenance::add_edge(std::uint64_t from, std::uint64_t to) {
  require(contains(to), "order-maintenance edge to an unknown node");
  require(from < to, "order-maintenance edge must point backwards");
  require(from >= base_, "order-maintenance edge from a retired node");
  ++stats_.edges;
  Node& n = node(to);
  n.preds.push_back(from);
  if (to + 1 == end()) {
    if (pending_) return; // folded into the tag at finalize()
    // The newest node was already finalized by a query: fold just this
    // predecessor's tag in place.
    const Node& p = node(from);
    stats_.label_entries -= n.label.size();
    if (p.label.size() > n.label.size()) n.label.resize(p.label.size(), kNoPos);
    for (std::size_t c = 0; c < p.label.size(); ++c)
      if (p.label[c] != kNoPos &&
          (n.label[c] == kNoPos || n.label[c] < p.label[c]))
        n.label[c] = p.label[c];
    if (p.chain >= n.label.size()) n.label.resize(p.chain + 1, kNoPos);
    if (n.label[p.chain] == kNoPos || n.label[p.chain] < p.pos)
      n.label[p.chain] = p.pos;
    stats_.label_entries += n.label.size();
    stats_.max_width = std::max(stats_.max_width, n.label.size());
    return;
  }
  // A late edge: every tag from `to` onwards may be stale.  Recompute the
  // suffix (chains are untouched — membership never changes).
  finalize();
  ++stats_.relabels;
  for (std::uint64_t id = to; id < end(); ++id) {
    compute_label(node(id));
    ++stats_.relabeled_nodes;
  }
}

bool OrderMaintenance::precedes(std::uint64_t a, std::uint64_t b) const {
  if (a >= b) return false; // append order is topological
  require(contains(a) && contains(b),
          "order query names a retired or unknown node");
  finalize();
  const Node& na = node(a);
  const Node& nb = node(b);
  if (na.chain == nb.chain) return na.pos < nb.pos;
  return na.chain < nb.label.size() && nb.label[na.chain] != kNoPos &&
         nb.label[na.chain] >= na.pos;
}

void OrderMaintenance::retire_prefix(std::uint64_t new_base) {
  require(new_base >= base_ && new_base <= end(),
          "order-maintenance retirement point out of range");
  if (new_base == base_) return;
  finalize();
  const std::size_t drop = new_base - base_;
  for (std::size_t i = 0; i < drop; ++i)
    stats_.label_entries -= nodes_[i].label.size();
  nodes_.erase(nodes_.begin(),
               nodes_.begin() + static_cast<std::ptrdiff_t>(drop));
  base_ = new_base;
  // Retired predecessors are pruned: a retired node's tag only names
  // positions of other retired nodes (chain positions grow with id), so a
  // future suffix relabel loses nothing a resident query could observe.
  for (Node& n : nodes_)
    n.preds.erase(
        std::remove_if(n.preds.begin(), n.preds.end(),
                       [this](std::uint64_t q) { return q < base_; }),
        n.preds.end());
  compact_chains();
}

void OrderMaintenance::remap_ids(std::span<const std::uint64_t> old_to_new,
                                 std::uint64_t retired_marker) {
  finalize();
  require(old_to_new.size() == nodes_.size(),
          "order-maintenance remap table must cover the resident nodes");
  std::vector<Node> kept;
  kept.reserve(nodes_.size());
  bool first = true;
  std::uint64_t new_base = 0;
  std::uint64_t expect = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (old_to_new[i] == retired_marker) {
      stats_.label_entries -= nodes_[i].label.size();
      continue;
    }
    if (first) {
      new_base = old_to_new[i];
      expect = new_base;
      first = false;
    }
    require(old_to_new[i] == expect,
            "order-maintenance remap must renumber survivors contiguously");
    ++expect;
    kept.push_back(std::move(nodes_[i]));
  }
  // Chain tails and predecessor lists are stored as ids: translate them.
  auto translate = [&](std::uint64_t old_id) -> std::uint64_t {
    return old_to_new[old_id - base_];
  };
  for (Chain& c : chains_) {
    if (c.tail_id == kNoTail) continue;
    const std::uint64_t t = translate(c.tail_id);
    // A chain whose tail retired while earlier members survive stays
    // queryable but can never be extended again.
    c.tail_id = t == retired_marker ? kNoTail : t;
  }
  for (Node& n : kept) {
    std::size_t w = 0;
    for (std::uint64_t q : n.preds) {
      const std::uint64_t t = translate(q);
      if (t != retired_marker) n.preds[w++] = t;
    }
    n.preds.resize(w);
  }
  nodes_ = std::move(kept);
  base_ = first ? 0 : new_base;
  compact_chains();
}

const OrderStats& OrderMaintenance::stats() const {
  finalize();
  stats_.active_chains = chains_.size();
  return stats_;
}

void OrderMaintenance::finalize() const {
  if (!pending_) return;
  pending_ = false;
  Node& n = nodes_.back();
  compute_label(n);
  const std::uint64_t id = end() - 1;
  for (std::uint64_t q : n.preds) {
    const Node& p = node(q);
    Chain& c = chains_[p.chain];
    if (c.tail_id == q) {
      n.chain = p.chain;
      n.pos = c.length++;
      c.tail_id = id;
      break;
    }
  }
  if (n.chain == kNoChain) {
    n.chain = static_cast<std::uint32_t>(chains_.size());
    n.pos = 0;
    chains_.push_back(Chain{id, 1});
    ++stats_.chains;
  }
}

void OrderMaintenance::compute_label(Node& n) const {
  stats_.label_entries -= n.label.size();
  n.label.clear();
  for (std::uint64_t q : n.preds) {
    const Node& p = node(q);
    if (p.label.size() > n.label.size())
      n.label.resize(p.label.size(), kNoPos);
    for (std::size_t c = 0; c < p.label.size(); ++c)
      if (p.label[c] != kNoPos &&
          (n.label[c] == kNoPos || n.label[c] < p.label[c]))
        n.label[c] = p.label[c];
    if (p.chain >= n.label.size()) n.label.resize(p.chain + 1, kNoPos);
    if (n.label[p.chain] == kNoPos || n.label[p.chain] < p.pos)
      n.label[p.chain] = p.pos;
  }
  stats_.label_entries += n.label.size();
  stats_.max_width = std::max(stats_.max_width, n.label.size());
}

void OrderMaintenance::compact_chains() {
  std::vector<bool> live(chains_.size(), false);
  for (const Node& n : nodes_)
    if (n.chain != kNoChain) live[n.chain] = true;
  std::size_t alive = 0;
  for (std::size_t c = 0; c < chains_.size(); ++c)
    if (live[c]) ++alive;
  if (alive == chains_.size()) {
    stats_.active_chains = alive;
    return;
  }
  std::vector<std::uint32_t> remap(chains_.size(), kNoChain);
  std::vector<Chain> kept;
  kept.reserve(alive);
  for (std::size_t c = 0; c < chains_.size(); ++c) {
    if (!live[c]) continue;
    remap[c] = static_cast<std::uint32_t>(kept.size());
    kept.push_back(chains_[c]);
  }
  for (Node& n : nodes_) {
    n.chain = remap[n.chain];
    stats_.label_entries -= n.label.size();
    std::vector<std::uint32_t> relabeled;
    for (std::size_t c = 0; c < n.label.size(); ++c) {
      if (n.label[c] == kNoPos || remap[c] == kNoChain) continue;
      if (remap[c] >= relabeled.size()) relabeled.resize(remap[c] + 1, kNoPos);
      relabeled[remap[c]] = n.label[c];
    }
    n.label = std::move(relabeled);
    stats_.label_entries += n.label.size();
  }
  chains_ = std::move(kept);
  stats_.active_chains = chains_.size();
}

} // namespace visrt
