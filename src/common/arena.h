// visrt/common/arena.h
//
// A chunked bump (arena) allocator for the analysis hot path.  The
// dependence-analysis loops allocate many short-lived, similarly-sized
// records per launch — dependence-edge predecessor lists, per-shard
// reduction buffers, per-launch scratch — and the general-purpose
// allocator charges a lock or a CAS per call for them.  An Arena trades
// individual deallocation away: alloc() is a pointer bump, reset()
// reclaims everything at once while *retaining* the chunks, so a
// steady-state consumer (one launch after another, one retirement epoch
// after another) stops calling malloc entirely.
//
// Concurrency contract: an Arena is single-owner.  Parallel consumers use
// one arena per worker (or allocate on the submitting thread before the
// fork and hand workers disjoint spans); the executor's fork/join
// discipline makes either pattern race-free.  arena_test exercises the
// per-worker pattern under ThreadSanitizer.
//
// Safety rails:
//   - reset() runs no destructors: make()/make_span() are restricted to
//     trivially destructible types at compile time.  ArenaAllocator lifts
//     that restriction (the owning container destroys its elements; the
//     arena only recycles the bytes).
//   - Debug builds (!NDEBUG) poison recycled memory with 0xDD on reset(),
//     so a stale pointer read after reset shows a recognizable pattern.
//   - AddressSanitizer builds additionally poison recycled regions with
//     the ASan API, so use-after-reset is a hard, reported error; alloc()
//     unpoisons exactly the bytes it hands out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define VISRT_ARENA_ASAN 1
#endif
#endif
#if !defined(VISRT_ARENA_ASAN) && defined(__SANITIZE_ADDRESS__)
#define VISRT_ARENA_ASAN 1
#endif
#ifdef VISRT_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace visrt {

class Arena {
public:
  static constexpr std::size_t kDefaultChunkBytes = 16 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes < kMinChunkBytes ? kMinChunkBytes
                                                  : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Raw allocation: `bytes` bytes aligned to `align` (a power of two).
  /// Never returns nullptr (falls back to a dedicated chunk for oversized
  /// requests); alloc(0, ...) returns a valid, unique-enough pointer.
  void* alloc(std::size_t bytes, std::size_t align) {
    // Try the current chunk, then any retained follower; allocate a fresh
    // chunk only when nothing fits.  Alignment is computed on the actual
    // address — operator new[] only guarantees max_align_t, so an
    // offset-only computation would break over-aligned requests.
    while (cursor_ < chunks_.size()) {
      Chunk& c = chunks_[cursor_];
      const std::size_t at = aligned_offset(c, align);
      if (at + bytes <= c.size) {
        c.used = at + bytes;
        std::byte* p = c.data.get() + at;
        unpoison(p, bytes);
        live_bytes_ += bytes;
        return p;
      }
      ++cursor_;
      if (cursor_ < chunks_.size()) chunks_[cursor_].used = 0;
    }
    const std::size_t want = bytes + align > chunk_bytes_ ? bytes + align
                                                          : chunk_bytes_;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(want), want, 0});
    cursor_ = chunks_.size() - 1;
    Chunk& c = chunks_.back();
    const std::size_t at = aligned_offset(c, align);
    c.used = at + bytes;
    std::byte* p = c.data.get() + at;
    live_bytes_ += bytes;
    return p;
  }

  /// Construct one T in the arena.  T must be trivially destructible:
  /// reset() reclaims the bytes without running destructors.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::make requires a trivially destructible type; "
                  "use ArenaAllocator for container-managed elements");
    return ::new (alloc(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// Allocate and value-initialize `n` Ts; returns the span.  Same
  /// trivial-destructibility restriction as make().
  template <typename T>
  std::span<T> make_span(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::make_span requires a trivially destructible type");
    if (n == 0) return {};
    T* p = static_cast<T*>(alloc(n * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < n; ++i) ::new (p + i) T();
    return {p, n};
  }

  /// Copy a range into the arena (the canonical way to persist a scratch
  /// buffer's final contents).
  template <typename T>
  std::span<T> copy_span(std::span<const T> src) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Arena::copy_span requires a trivially copyable type");
    if (src.empty()) return {};
    T* p = static_cast<T*>(alloc(src.size() * sizeof(T), alignof(T)));
    std::memcpy(p, src.data(), src.size() * sizeof(T));
    return {p, src.size()};
  }

  /// Reclaim every allocation at once, retaining the chunks for reuse.
  /// Invalidates every pointer ever returned; debug builds poison the
  /// recycled bytes (0xDD), ASan builds poison them for real.
  void reset() {
    for (Chunk& c : chunks_) {
#if !defined(NDEBUG)
      std::memset(c.data.get(), 0xDD, c.used);
#endif
      poison(c.data.get(), c.size);
      c.used = 0;
    }
    cursor_ = 0;
    live_bytes_ = 0;
  }

  /// Bytes handed out since the last reset (excludes alignment padding).
  std::size_t bytes_allocated() const { return live_bytes_; }
  /// Total capacity held across all chunks (survives reset()).
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }
  std::size_t chunk_count() const { return chunks_.size(); }

private:
  static constexpr std::size_t kMinChunkBytes = 256;

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static std::size_t align_up(std::size_t at, std::size_t align) {
    return (at + align - 1) & ~(align - 1);
  }

  /// First offset >= c.used whose *address* is `align`-aligned.
  static std::size_t aligned_offset(const Chunk& c, std::size_t align) {
    const auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
    return align_up(base + c.used, align) - base;
  }

  static void poison(const void* p, std::size_t n) {
#ifdef VISRT_ARENA_ASAN
    ASAN_POISON_MEMORY_REGION(p, n);
#else
    (void)p;
    (void)n;
#endif
  }
  static void unpoison(const void* p, std::size_t n) {
#ifdef VISRT_ARENA_ASAN
    ASAN_UNPOISON_MEMORY_REGION(p, n);
#else
    (void)p;
    (void)n;
#endif
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t cursor_ = 0; ///< chunk currently being bumped
  std::size_t live_bytes_ = 0;
};

/// A std::allocator-compatible view of an Arena, so standard containers
/// can live on arena memory.  deallocate() is a no-op — storage is
/// reclaimed by Arena::reset(), which must happen only after the
/// container is gone (per-launch scratch dies before the next launch's
/// reset).  Unlike Arena::make, element types may be non-trivially
/// destructible: the container runs the destructors, the arena only
/// recycles bytes.
template <typename T>
class ArenaAllocator {
public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->alloc(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {} // reclaimed wholesale by reset()

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }

private:
  Arena* arena_;
};

} // namespace visrt
