// visrt/common/log.h
//
// Minimal leveled logging to stderr.  Off by default above Warning so tests
// and benchmarks stay quiet; examples flip the level to Info for narration,
// and the VISRT_LOG_LEVEL environment variable (debug|info|warning|error|
// off) overrides the initial threshold without recompiling.
//
// Lines carry a monotonic since-process-start timestamp and the component:
//   [   0.001234] [visrt:runtime] INFO: mapped task 7
#pragma once

#include <optional>
#include <sstream>
#include <string_view>

namespace visrt {

enum class LogLevel { Debug = 0, Info = 1, Warning = 2, Error = 3, Off = 4 };

/// Output shape of a log line: the human format above (default), or one
/// JSON object per line for machine consumers (--log-json in the CLIs):
///   {"ts":0.001234,"level":"info","subsystem":"runtime","msg":"..."}
enum class LogFormat { Human, Json };

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Global output format (also settable via VISRT_LOG_FORMAT=json|human).
LogFormat log_format();
void set_log_format(LogFormat format);

/// Emit one log line (used by the Logger helper; callable directly too).
/// Thread-safe: the line is formatted and written atomically.
void log_line(LogLevel level, std::string_view component,
              std::string_view message);

/// Stream-style log statement builder:
///   Logger(LogLevel::Info, "runtime") << "mapped task " << id;
///
/// The threshold is checked once at construction; a suppressed statement
/// never constructs the stream, so `operator<<` on it costs one branch.
class Logger {
public:
  Logger(LogLevel level, std::string_view component)
      : level_(level), component_(component) {
    if (level_ >= log_level()) stream_.emplace();
  }
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;
  ~Logger() {
    if (stream_.has_value()) log_line(level_, component_, stream_->str());
  }

  template <typename T> Logger& operator<<(const T& value) {
    if (stream_.has_value()) *stream_ << value;
    return *this;
  }

private:
  LogLevel level_;
  std::string_view component_; ///< callers pass string literals
  std::optional<std::ostringstream> stream_; ///< engaged iff enabled
};

} // namespace visrt
