// visrt/common/log.h
//
// Minimal leveled logging to stderr.  Off by default above Warning so tests
// and benchmarks stay quiet; examples flip the level to Info for narration.
#pragma once

#include <sstream>
#include <string>

namespace visrt {

enum class LogLevel { Debug = 0, Info = 1, Warning = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emit one log line (used by the Logger helper; callable directly too).
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

/// Stream-style log statement builder:
///   Logger(LogLevel::Info, "runtime") << "mapped task " << id;
class Logger {
public:
  Logger(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;
  ~Logger() { log_line(level_, component_, stream_.str()); }

  template <typename T> Logger& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

} // namespace visrt
