// visrt/common/types.h
//
// Fundamental scalar types and identifiers shared by every visrt module.
// Kept deliberately tiny: anything that needs more context lives in the
// module that owns the concept.
#pragma once

#include <cstdint>
#include <limits>

namespace visrt {

/// Coordinate type for points in index spaces.  Signed 64-bit, matching
/// Legion's `coord_t`; negative coordinates are legal.
using coord_t = std::int64_t;

/// Identifies a field of a region (e.g. `Node::up` in the paper's Figure 1).
using FieldID = std::uint32_t;

/// Identifies a registered reduction operator (e.g. `reduce+`).
/// Zero is reserved for "no reduction".
using ReductionOpID = std::uint32_t;
inline constexpr ReductionOpID kNoReduction = 0;

/// Identifies a task *launch* (a dynamic instance of a task, i.e. one entry
/// of the stream the runtime analyzes).  Launch IDs increase in program
/// order, so they double as the paper's global clock (Section 3.1).
using LaunchID = std::uint64_t;
inline constexpr LaunchID kInvalidLaunch =
    std::numeric_limits<LaunchID>::max();

/// Identifies a node of the (simulated) distributed machine.
using NodeID = std::uint32_t;

/// Virtual time in the discrete-event simulation, in nanoseconds.
using SimTime = std::int64_t;

/// Identifies a logical region-tree node (region or partition handle).
using RegionTreeID = std::uint32_t;

/// Identifies one equivalence set (or composite view) instance within one
/// field's lifecycle.  IDs are engine-assigned in creation order and are
/// never reused; `kNoEqSetID` means "no set attributable" (e.g. a history
/// walk that never touched a set).
using EqSetID = std::uint32_t;
inline constexpr EqSetID kNoEqSetID = std::numeric_limits<EqSetID>::max();

} // namespace visrt
