// visrt/geom/bvh.h
//
// A bounding volume hierarchy over items with 1-D interval bounds.
// Warnock's algorithm (Section 6.1 of the paper) uses the history of
// equivalence-set refinements as a BVH to find the equivalence sets that
// compose a region; ray casting reuses the same traversal.  Queries report
// how many tree nodes were visited so the simulator can charge analysis
// time proportional to the real traversal work.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/interval_set.h"

namespace visrt {

/// Result of a BVH query: matching item payloads plus traversal cost.
struct BvhQueryResult {
  std::vector<std::uint64_t> items;  ///< payloads of intersecting leaves
  std::size_t nodes_visited = 0;     ///< tree nodes touched by the query
};

/// Static BVH built once over a set of (bounds, payload) items.
/// Rebuildable; used where the item set changes rarely (raycast's
/// disjoint-complete partition BVH) or via full rebuilds (K-d fallback).
class Bvh {
public:
  struct Item {
    Interval bounds;
    std::uint64_t payload = 0;
  };

  Bvh() = default;

  /// Build from items (empty-bounded items are dropped).
  explicit Bvh(std::vector<Item> items);

  bool empty() const { return nodes_.empty(); }
  std::size_t item_count() const { return item_count_; }

  /// All items whose bounds overlap the query interval.
  BvhQueryResult query(const Interval& q) const;

  /// All items whose bounds overlap any interval of the query set.
  BvhQueryResult query(const IntervalSet& q) const;

private:
  struct Node {
    Interval bounds;
    // Leaf when item_begin < item_end; internal node otherwise.
    std::uint32_t left = 0;
    std::uint32_t right = 0;
    std::uint32_t item_begin = 0;
    std::uint32_t item_end = 0;
  };

  std::uint32_t build(std::vector<Item>& items, std::uint32_t begin,
                      std::uint32_t end);
  void query_node(std::uint32_t node, const Interval& q,
                  BvhQueryResult& out) const;

  std::vector<Node> nodes_;
  std::vector<Item> items_;
  std::size_t item_count_ = 0;
  static constexpr std::uint32_t kLeafSize = 4;
};

} // namespace visrt
