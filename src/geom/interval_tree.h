// visrt/geom/interval_tree.h
//
// A dynamic interval tree (the 1-D instantiation of the K-d tree the paper
// falls back to in Section 7.1 when no disjoint-and-complete partition
// subtree exists).  Unlike the static Bvh, items can be inserted and
// removed as equivalence sets are created and pruned by dominating writes.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "geom/interval_set.h"

namespace visrt {

/// Result of an interval-tree query, with traversal cost for the simulator.
struct IntervalTreeQueryResult {
  std::vector<std::uint64_t> items;
  std::size_t nodes_visited = 0;
};

/// Centered interval tree: each node stores a split coordinate, the items
/// straddling it, and children for items wholly left/right of the split.
class IntervalTree {
public:
  IntervalTree() = default;

  /// Insert an item; empty bounds are ignored.  Payloads need not be unique
  /// across items, but remove() erases all items with the given payload.
  void insert(const Interval& bounds, std::uint64_t payload);

  /// Remove every item carrying `payload`; returns the number removed.
  std::size_t remove(std::uint64_t payload);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// All payloads whose bounds overlap `q`.
  IntervalTreeQueryResult query(const Interval& q) const;
  IntervalTreeQueryResult query(const IntervalSet& q) const;

  /// Replace each item's payload p with `map[p]`.  Payloads never shape
  /// the tree, so structure — and therefore every future query's traversal
  /// cost — is unchanged.  Every resident payload must index into `map`.
  void remap_payloads(std::span<const std::uint64_t> map);

private:
  struct Item {
    Interval bounds;
    std::uint64_t payload;
  };
  struct Node {
    coord_t split;
    std::vector<Item> straddling;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
  };

  void insert_at(std::unique_ptr<Node>& node, const Item& item);
  std::size_t remove_at(std::unique_ptr<Node>& node, std::uint64_t payload);
  void remap_at(Node* node, std::span<const std::uint64_t> map);
  void query_node(const Node* node, const Interval& q,
                  IntervalTreeQueryResult& out) const;

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

} // namespace visrt
