#include "geom/interval_set.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace visrt {

IntervalSet::IntervalSet(coord_t lo, coord_t hi) {
  if (lo <= hi) intervals_.push_back(Interval{lo, hi});
}

IntervalSet::IntervalSet(std::initializer_list<Interval> intervals)
    : IntervalSet(from_intervals(std::vector<Interval>(intervals))) {}

IntervalSet IntervalSet::from_intervals(std::vector<Interval> intervals) {
  std::erase_if(intervals, [](const Interval& iv) { return iv.empty(); });
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  IntervalSet out;
  for (const Interval& iv : intervals) {
    if (!out.intervals_.empty() && iv.lo <= out.intervals_.back().hi + 1) {
      out.intervals_.back().hi = std::max(out.intervals_.back().hi, iv.hi);
    } else {
      out.intervals_.push_back(iv);
    }
  }
  return out;
}

IntervalSet IntervalSet::from_points(std::vector<coord_t> points) {
  std::vector<Interval> ivs;
  ivs.reserve(points.size());
  for (coord_t p : points) ivs.push_back(Interval{p, p});
  return from_intervals(std::move(ivs));
}

coord_t IntervalSet::volume() const {
  coord_t total = 0;
  for (const Interval& iv : intervals_) total += iv.size();
  return total;
}

Interval IntervalSet::bounds() const {
  if (intervals_.empty()) return Interval{};
  return Interval{intervals_.front().lo, intervals_.back().hi};
}

bool IntervalSet::contains(coord_t p) const {
  // Binary search for the first interval with hi >= p.
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), p,
      [](const Interval& iv, coord_t v) { return iv.hi < v; });
  return it != intervals_.end() && it->contains(p);
}

bool IntervalSet::contains(const IntervalSet& o) const {
  // Each of o's intervals must be covered by a single interval of ours
  // (normalization guarantees no interval of o spans a gap of ours if and
  // only if coverage holds interval-by-interval).
  std::size_t i = 0;
  for (const Interval& need : o.intervals_) {
    while (i < intervals_.size() && intervals_[i].hi < need.lo) ++i;
    if (i == intervals_.size() || !intervals_[i].covers(need)) return false;
  }
  return true;
}

bool IntervalSet::overlaps(const Interval& o) const {
  if (o.empty()) return false;
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), o.lo,
      [](const Interval& iv, coord_t v) { return iv.hi < v; });
  return it != intervals_.end() && it->lo <= o.hi;
}

bool IntervalSet::overlaps(const IntervalSet& o) const {
  std::size_t i = 0, j = 0;
  while (i < intervals_.size() && j < o.intervals_.size()) {
    if (intervals_[i].overlaps(o.intervals_[j])) return true;
    if (intervals_[i].hi < o.intervals_[j].hi) ++i;
    else ++j;
  }
  return false;
}

IntervalSet IntervalSet::unite(const IntervalSet& o) const {
  IntervalSet out;
  out.intervals_.reserve(intervals_.size() + o.intervals_.size());
  std::size_t i = 0, j = 0;
  auto push = [&out](const Interval& iv) {
    if (!out.intervals_.empty() && iv.lo <= out.intervals_.back().hi + 1) {
      out.intervals_.back().hi = std::max(out.intervals_.back().hi, iv.hi);
    } else {
      out.intervals_.push_back(iv);
    }
  };
  while (i < intervals_.size() || j < o.intervals_.size()) {
    if (j == o.intervals_.size() ||
        (i < intervals_.size() && intervals_[i].lo <= o.intervals_[j].lo)) {
      push(intervals_[i++]);
    } else {
      push(o.intervals_[j++]);
    }
  }
  return out;
}

IntervalSet IntervalSet::intersect(const IntervalSet& o) const {
  IntervalSet out;
  std::size_t i = 0, j = 0;
  while (i < intervals_.size() && j < o.intervals_.size()) {
    const Interval& a = intervals_[i];
    const Interval& b = o.intervals_[j];
    coord_t lo = std::max(a.lo, b.lo);
    coord_t hi = std::min(a.hi, b.hi);
    if (lo <= hi) out.intervals_.push_back(Interval{lo, hi});
    if (a.hi < b.hi) ++i;
    else ++j;
  }
  return out;
}

IntervalSet IntervalSet::subtract(const IntervalSet& o) const {
  IntervalSet out;
  std::size_t j = 0;
  for (Interval rest : intervals_) {
    while (j < o.intervals_.size() && o.intervals_[j].hi < rest.lo) ++j;
    std::size_t k = j;
    while (!rest.empty() && k < o.intervals_.size() &&
           o.intervals_[k].lo <= rest.hi) {
      const Interval& cut = o.intervals_[k];
      if (cut.lo > rest.lo) {
        out.intervals_.push_back(Interval{rest.lo, cut.lo - 1});
      }
      rest.lo = cut.hi + 1;
      ++k;
    }
    if (!rest.empty()) out.intervals_.push_back(rest);
  }
  return out;
}

IntervalSet IntervalSet::shifted(coord_t delta) const {
  IntervalSet out;
  out.intervals_.reserve(intervals_.size());
  for (const Interval& iv : intervals_)
    out.intervals_.push_back(Interval{iv.lo + delta, iv.hi + delta});
  return out;
}

IntervalSet IntervalSet::grown(coord_t radius) const {
  require(radius >= 0, "grow radius must be non-negative");
  std::vector<Interval> grownv;
  grownv.reserve(intervals_.size());
  for (const Interval& iv : intervals_)
    grownv.push_back(Interval{iv.lo - radius, iv.hi + radius});
  return from_intervals(std::move(grownv));
}

std::string IntervalSet::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const IntervalSet& set) {
  os << '{';
  bool first = true;
  for (const Interval& iv : set.intervals()) {
    if (!first) os << ',';
    first = false;
    os << '[' << iv.lo << ',' << iv.hi << ']';
  }
  return os << '}';
}

} // namespace visrt
