// visrt/geom/rect.h
//
// N-dimensional points and rectangles, plus row-major linearization of
// rectangles into IntervalSets.  Applications describe their data in the
// natural dimensionality (the stencil benchmark is 2-D, Pennant's mesh
// entities are 1-D id spaces); the coherence analyses always operate on the
// linearized 1-D form.
#pragma once

#include <array>
#include <cstddef>

#include "common/check.h"
#include "geom/interval_set.h"

namespace visrt {

/// An N-dimensional integer point.
template <int N> struct Point {
  static_assert(N >= 1 && N <= 3, "visrt supports 1-3 dimensional spaces");
  std::array<coord_t, N> x{};

  coord_t& operator[](int d) { return x[static_cast<std::size_t>(d)]; }
  coord_t operator[](int d) const { return x[static_cast<std::size_t>(d)]; }
  friend bool operator==(const Point&, const Point&) = default;
};

/// An N-dimensional axis-aligned box with inclusive bounds.
template <int N> struct Rect {
  Point<N> lo;
  Point<N> hi;

  /// Empty iff any dimension is inverted.
  bool empty() const {
    for (int d = 0; d < N; ++d)
      if (lo[d] > hi[d]) return true;
    return false;
  }

  coord_t volume() const {
    if (empty()) return 0;
    coord_t v = 1;
    for (int d = 0; d < N; ++d) v *= hi[d] - lo[d] + 1;
    return v;
  }

  bool contains(const Point<N>& p) const {
    for (int d = 0; d < N; ++d)
      if (p[d] < lo[d] || p[d] > hi[d]) return false;
    return true;
  }

  /// Intersection; may be empty.
  Rect intersect(const Rect& o) const {
    Rect out;
    for (int d = 0; d < N; ++d) {
      out.lo[d] = lo[d] > o.lo[d] ? lo[d] : o.lo[d];
      out.hi[d] = hi[d] < o.hi[d] ? hi[d] : o.hi[d];
    }
    return out;
  }

  friend bool operator==(const Rect&, const Rect&) = default;
};

/// Maps N-dimensional points within a fixed base rectangle to 1-D
/// coordinates (row-major), so rectangles become IntervalSets: one interval
/// per contiguous row segment.  All regions of one region tree share the
/// tree root's Linearizer, making linearized coordinates comparable.
template <int N> class Linearizer {
public:
  explicit Linearizer(Rect<N> base) : base_(base) {
    require(!base.empty(), "Linearizer base rectangle must be non-empty");
    coord_t stride = 1;
    for (int d = N - 1; d >= 0; --d) {
      stride_[static_cast<std::size_t>(d)] = stride;
      stride *= base.hi[d] - base.lo[d] + 1;
    }
  }

  const Rect<N>& base() const { return base_; }

  coord_t linearize(const Point<N>& p) const {
    coord_t idx = 0;
    for (int d = 0; d < N; ++d) {
      idx += (p[d] - base_.lo[d]) * stride_[static_cast<std::size_t>(d)];
    }
    return idx;
  }

  Point<N> delinearize(coord_t idx) const {
    Point<N> p;
    for (int d = 0; d < N; ++d) {
      coord_t s = stride_[static_cast<std::size_t>(d)];
      p[d] = base_.lo[d] + idx / s;
      idx %= s;
    }
    return p;
  }

  /// Linearize a sub-rectangle (clamped to the base) into an IntervalSet:
  /// one interval per row in the innermost dimension.
  IntervalSet linearize(const Rect<N>& r) const {
    Rect<N> c = r.intersect(base_);
    if (c.empty()) return IntervalSet{};
    std::vector<Interval> rows;
    Point<N> cursor = c.lo;
    for (;;) {
      Point<N> row_end = cursor;
      row_end[N - 1] = c.hi[N - 1];
      rows.push_back(Interval{linearize(cursor), linearize(row_end)});
      // Advance to the next row (odometer over dims 0..N-2).
      int d = N - 2;
      for (; d >= 0; --d) {
        if (cursor[d] < c.hi[d]) {
          ++cursor[d];
          break;
        }
        cursor[d] = c.lo[d];
      }
      if (d < 0) break;
    }
    return IntervalSet::from_intervals(std::move(rows));
  }

private:
  Rect<N> base_;
  std::array<coord_t, N> stride_{};
};

/// Convenience: 1-D rectangles linearize to themselves.
inline IntervalSet to_interval_set(coord_t lo, coord_t hi) {
  return IntervalSet(lo, hi);
}

} // namespace visrt
