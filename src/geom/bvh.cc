#include "geom/bvh.h"

#include <algorithm>

#include "common/check.h"

namespace visrt {

Bvh::Bvh(std::vector<Item> items) {
  std::erase_if(items, [](const Item& it) { return it.bounds.empty(); });
  item_count_ = items.size();
  if (items.empty()) return;
  items_ = std::move(items);
  nodes_.reserve(items_.size() * 2);
  build(items_, 0, static_cast<std::uint32_t>(items_.size()));
}

std::uint32_t Bvh::build(std::vector<Item>& items, std::uint32_t begin,
                         std::uint32_t end) {
  invariant(begin < end, "bvh build on empty range");
  std::uint32_t index = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{});

  Interval bounds = items[begin].bounds;
  for (std::uint32_t i = begin + 1; i < end; ++i) {
    bounds.lo = std::min(bounds.lo, items[i].bounds.lo);
    bounds.hi = std::max(bounds.hi, items[i].bounds.hi);
  }
  nodes_[index].bounds = bounds;

  if (end - begin <= kLeafSize) {
    nodes_[index].item_begin = begin;
    nodes_[index].item_end = end;
    return index;
  }

  std::uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(items.begin() + begin, items.begin() + mid,
                   items.begin() + end, [](const Item& a, const Item& b) {
                     return a.bounds.lo + a.bounds.hi <
                            b.bounds.lo + b.bounds.hi;
                   });
  std::uint32_t left = build(items, begin, mid);
  std::uint32_t right = build(items, mid, end);
  nodes_[index].left = left;
  nodes_[index].right = right;
  return index;
}

void Bvh::query_node(std::uint32_t node, const Interval& q,
                     BvhQueryResult& out) const {
  const Node& n = nodes_[node];
  ++out.nodes_visited;
  if (!n.bounds.overlaps(q)) return;
  if (n.item_begin < n.item_end) {
    for (std::uint32_t i = n.item_begin; i < n.item_end; ++i) {
      if (items_[i].bounds.overlaps(q)) out.items.push_back(items_[i].payload);
    }
    return;
  }
  query_node(n.left, q, out);
  query_node(n.right, q, out);
}

BvhQueryResult Bvh::query(const Interval& q) const {
  BvhQueryResult out;
  if (!nodes_.empty() && !q.empty()) query_node(0, q, out);
  return out;
}

BvhQueryResult Bvh::query(const IntervalSet& q) const {
  BvhQueryResult out;
  if (nodes_.empty() || q.empty()) return out;
  for (const Interval& iv : q.intervals()) {
    BvhQueryResult part;
    query_node(0, iv, part);
    out.nodes_visited += part.nodes_visited;
    out.items.insert(out.items.end(), part.items.begin(), part.items.end());
  }
  // A payload may match several query intervals; deduplicate.
  std::sort(out.items.begin(), out.items.end());
  out.items.erase(std::unique(out.items.begin(), out.items.end()),
                  out.items.end());
  return out;
}

} // namespace visrt
