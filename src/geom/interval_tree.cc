#include "geom/interval_tree.h"

#include <algorithm>

namespace visrt {

void IntervalTree::insert(const Interval& bounds, std::uint64_t payload) {
  if (bounds.empty()) return;
  insert_at(root_, Item{bounds, payload});
  ++size_;
}

void IntervalTree::insert_at(std::unique_ptr<Node>& node, const Item& item) {
  if (!node) {
    node = std::make_unique<Node>();
    node->split = item.bounds.lo + (item.bounds.hi - item.bounds.lo) / 2;
    node->straddling.push_back(item);
    return;
  }
  if (item.bounds.hi < node->split) {
    insert_at(node->left, item);
  } else if (item.bounds.lo > node->split) {
    insert_at(node->right, item);
  } else {
    node->straddling.push_back(item);
  }
}

std::size_t IntervalTree::remove(std::uint64_t payload) {
  std::size_t removed = remove_at(root_, payload);
  size_ -= removed;
  return removed;
}

std::size_t IntervalTree::remove_at(std::unique_ptr<Node>& node,
                                    std::uint64_t payload) {
  if (!node) return 0;
  std::size_t before = node->straddling.size();
  std::erase_if(node->straddling,
                [payload](const Item& it) { return it.payload == payload; });
  std::size_t removed = before - node->straddling.size();
  removed += remove_at(node->left, payload);
  removed += remove_at(node->right, payload);
  // Collapse empty leaves to keep the tree from accumulating dead nodes.
  if (node->straddling.empty() && !node->left && !node->right) node.reset();
  return removed;
}

void IntervalTree::remap_payloads(std::span<const std::uint64_t> map) {
  remap_at(root_.get(), map);
}

void IntervalTree::remap_at(Node* node, std::span<const std::uint64_t> map) {
  if (node == nullptr) return;
  for (Item& item : node->straddling) item.payload = map[item.payload];
  remap_at(node->left.get(), map);
  remap_at(node->right.get(), map);
}

void IntervalTree::query_node(const Node* node, const Interval& q,
                              IntervalTreeQueryResult& out) const {
  if (node == nullptr) return;
  ++out.nodes_visited;
  for (const Item& item : node->straddling) {
    if (item.bounds.overlaps(q)) out.items.push_back(item.payload);
  }
  if (q.lo < node->split) query_node(node->left.get(), q, out);
  if (q.hi > node->split) query_node(node->right.get(), q, out);
}

IntervalTreeQueryResult IntervalTree::query(const Interval& q) const {
  IntervalTreeQueryResult out;
  if (!q.empty()) query_node(root_.get(), q, out);
  std::sort(out.items.begin(), out.items.end());
  out.items.erase(std::unique(out.items.begin(), out.items.end()),
                  out.items.end());
  return out;
}

IntervalTreeQueryResult IntervalTree::query(const IntervalSet& q) const {
  IntervalTreeQueryResult out;
  for (const Interval& iv : q.intervals()) {
    IntervalTreeQueryResult part = query(iv);
    out.nodes_visited += part.nodes_visited;
    out.items.insert(out.items.end(), part.items.begin(), part.items.end());
  }
  std::sort(out.items.begin(), out.items.end());
  out.items.erase(std::unique(out.items.begin(), out.items.end()),
                  out.items.end());
  return out;
}

} // namespace visrt
