// visrt/geom/interval_set.h
//
// IntervalSet is visrt's canonical representation of a set of points: a
// normalized (sorted, pairwise-disjoint, non-adjacent) list of inclusive
// [lo, hi] intervals over 64-bit coordinates.  All of the paper's region
// algebra — the X/Y, X\Y and X ⊕ Y operators of Section 5, the refinement
// splits of Warnock's algorithm, and the occlusion tests of ray casting —
// bottoms out in the union / intersection / difference operations here.
//
// Multi-dimensional index spaces are linearized onto this representation
// (see geom/rect.h), matching how Legion's sparse index spaces reduce to
// lists of dense runs.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"

namespace visrt {

/// One inclusive interval of coordinates, lo <= hi.
struct Interval {
  coord_t lo = 0;
  coord_t hi = -1; // default-constructed interval is empty (lo > hi)

  bool empty() const { return lo > hi; }
  coord_t size() const { return empty() ? 0 : hi - lo + 1; }
  bool contains(coord_t p) const { return lo <= p && p <= hi; }
  bool overlaps(const Interval& o) const { return lo <= o.hi && o.lo <= hi; }
  /// True when this interval fully covers `o`.
  bool covers(const Interval& o) const {
    return o.empty() || (lo <= o.lo && o.hi <= hi);
  }
  friend bool operator==(const Interval&, const Interval&) = default;
};

/// A normalized set of intervals.  Value-semantic and cheap to move; the
/// common case in the coherence analyses is a handful of intervals.
class IntervalSet {
public:
  /// The empty set.
  IntervalSet() = default;

  /// Set holding a single interval (may be empty if lo > hi).
  IntervalSet(coord_t lo, coord_t hi);

  /// Set built from arbitrary (possibly overlapping, unsorted) intervals.
  IntervalSet(std::initializer_list<Interval> intervals);
  static IntervalSet from_intervals(std::vector<Interval> intervals);

  /// Set holding exactly the given points.
  static IntervalSet from_points(std::vector<coord_t> points);

  bool empty() const { return intervals_.empty(); }
  /// Number of points in the set.
  coord_t volume() const;
  /// Number of maximal intervals (the storage size).
  std::size_t interval_count() const { return intervals_.size(); }
  const std::vector<Interval>& intervals() const { return intervals_; }

  /// Smallest interval covering the whole set; empty interval if empty.
  Interval bounds() const;

  bool contains(coord_t p) const;
  /// Superset test: does this set contain every point of `o`?
  bool contains(const IntervalSet& o) const;
  /// Do the two sets share at least one point?
  bool overlaps(const IntervalSet& o) const;
  bool overlaps(const Interval& o) const;

  /// Set union.
  IntervalSet unite(const IntervalSet& o) const;
  /// Set intersection (the paper's X/Y restricted to domains).
  IntervalSet intersect(const IntervalSet& o) const;
  /// Set difference (the paper's X\Y restricted to domains).
  IntervalSet subtract(const IntervalSet& o) const;

  /// The set translated by `delta`.
  IntervalSet shifted(coord_t delta) const;

  /// 1-D dilation: every interval grown by `radius` on both sides (useful
  /// for building halo regions of 1-D decompositions).
  IntervalSet grown(coord_t radius) const;

  friend IntervalSet operator|(const IntervalSet& a, const IntervalSet& b) {
    return a.unite(b);
  }
  friend IntervalSet operator&(const IntervalSet& a, const IntervalSet& b) {
    return a.intersect(b);
  }
  friend IntervalSet operator-(const IntervalSet& a, const IntervalSet& b) {
    return a.subtract(b);
  }
  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

  /// Apply `fn(coord_t)` to every point in ascending order.
  template <typename Fn> void for_each_point(Fn&& fn) const {
    for (const Interval& iv : intervals_)
      for (coord_t p = iv.lo; p <= iv.hi; ++p) fn(p);
  }

  /// Debug rendering, e.g. "{[0,3],[7,7]}".
  std::string to_string() const;

private:
  // Invariant: sorted by lo, disjoint, and no two intervals adjacent
  // (iv_[k].hi + 1 < iv_[k+1].lo).
  std::vector<Interval> intervals_;
};

std::ostream& operator<<(std::ostream& os, const IntervalSet& set);

} // namespace visrt
