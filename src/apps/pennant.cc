#include "apps/pennant.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/check.h"
#include "realm/reduction_ops.h"

namespace visrt::apps {

namespace {
constexpr double kDtCourant = 0.9;
} // namespace

PennantApp::PennantApp(Runtime& rt, PennantConfig cfg)
    : rt_(rt), cfg_(cfg),
      nzx_(static_cast<coord_t>(cfg.pieces_x) * cfg.zones_per_piece_x),
      nzy_(static_cast<coord_t>(cfg.pieces_y) * cfg.zones_per_piece_y),
      npx_(nzx_ + 1), npy_(nzy_ + 1),
      zlin_(Rect<2>{{0, 0}, {nzy_ - 1, nzx_ - 1}}),
      plin_(Rect<2>{{0, 0}, {npy_ - 1, npx_ - 1}}) {
  require(cfg_.pieces_x >= 1 && cfg_.pieces_y >= 1,
          "pennant needs at least one piece");

  zones_ = rt_.create_region(zlin_.linearize(zlin_.base()), "zones");
  points_ = rt_.create_region(plin_.linearize(plin_.base()), "points");
  dtreg_ = rt_.create_region(IntervalSet(0, 0), "dt");

  // Zone rectangles; point ownership: point (py,px) belongs to the piece
  // whose zone rectangle begins at it (clamped at the high edges), so OWN
  // is disjoint and complete while each piece's working point rectangle
  // overhangs into up to three neighbours — those overhangs form GHOST.
  const coord_t zw = cfg_.zones_per_piece_x, zh = cfg_.zones_per_piece_y;
  std::vector<IntervalSet> zparts, own, ghost;
  for (std::uint32_t py = 0; py < cfg_.pieces_y; ++py) {
    for (std::uint32_t px = 0; px < cfg_.pieces_x; ++px) {
      coord_t zx0 = static_cast<coord_t>(px) * zw;
      coord_t zy0 = static_cast<coord_t>(py) * zh;
      zparts.push_back(zlin_.linearize(
          Rect<2>{{zy0, zx0}, {zy0 + zh - 1, zx0 + zw - 1}}));

      // Owned points: the zone rectangle's low corner block, extended to
      // the mesh edge for the last pieces.
      coord_t ox1 = px + 1 == cfg_.pieces_x ? npx_ - 1 : zx0 + zw - 1;
      coord_t oy1 = py + 1 == cfg_.pieces_y ? npy_ - 1 : zy0 + zh - 1;
      own.push_back(plin_.linearize(Rect<2>{{zy0, zx0}, {oy1, ox1}}));

      // Working rectangle of points this piece's zones touch.
      IntervalSet working = plin_.linearize(
          Rect<2>{{zy0, zx0}, {zy0 + zh, zx0 + zw}});
      ghost.push_back(working.subtract(own.back()));
    }
  }
  zone_parts_ = rt_.create_partition(zones_, std::move(zparts), "Zp");
  own_parts_ = rt_.create_partition(points_, std::move(own), "OWN");
  ghost_parts_ = rt_.create_partition(points_, std::move(ghost), "GHOST");

  zrho_ = rt_.add_field(zones_, "rho", [](coord_t z) {
    return 1.0 + static_cast<double>(z % 5) * 0.1;
  });
  ze_ = rt_.add_field(zones_, "e", [](coord_t z) {
    return 2.0 + static_cast<double>(z % 3) * 0.25;
  });
  zp_ = rt_.add_field(zones_, "p", 0.0);
  pf_ = rt_.add_field(points_, "f", 0.0);
  pu_ = rt_.add_field(points_, "u", 0.0);
  pm_ = rt_.add_field(points_, "m", [](coord_t p) {
    return 1.0 + static_cast<double>(p % 4) * 0.5;
  });
  fdt_ = rt_.add_field(dtreg_, "dt",
                       std::numeric_limits<double>::infinity());

  // Serial reference mirrors the initial state.
  auto fill = [](std::vector<double>& v, coord_t n, auto gen) {
    v.resize(static_cast<std::size_t>(n));
    for (coord_t i = 0; i < n; ++i)
      v[static_cast<std::size_t>(i)] = gen(i);
  };
  fill(ref_rho_, nzx_ * nzy_,
       [](coord_t z) { return 1.0 + static_cast<double>(z % 5) * 0.1; });
  fill(ref_e_, nzx_ * nzy_,
       [](coord_t z) { return 2.0 + static_cast<double>(z % 3) * 0.25; });
  ref_p_.assign(static_cast<std::size_t>(nzx_ * nzy_), 0.0);
  ref_f_.assign(static_cast<std::size_t>(npx_ * npy_), 0.0);
  ref_u_.assign(static_cast<std::size_t>(npx_ * npy_), 0.0);
  fill(ref_m_, npx_ * npy_,
       [](coord_t p) { return 1.0 + static_cast<double>(p % 4) * 0.5; });
  ref_dt_state_ = std::numeric_limits<double>::infinity();
}

void PennantApp::launch_iteration() {
  if (cfg_.trace) rt_.begin_trace(0);
  const double gamma = cfg_.gamma;
  const double dt = cfg_.dt;
  const Linearizer<2> zlin = zlin_;
  const Linearizer<2> plin = plin_;

  // Phase 1: calc_pressure (zone-local).
  for (std::uint32_t pi = 0; pi < pieces(); ++pi) {
    RegionHandle z = rt_.subregion(zone_parts_, pi);
    TaskLaunch t;
    t.name = "calc_pressure";
    t.requirements = {RegionReq{z, zrho_, Privilege::read()},
                      RegionReq{z, ze_, Privilege::read()},
                      RegionReq{z, zp_, Privilege::read_write()}};
    t.mapped_node = piece_node(pi);
    t.work_items = zones_per_piece();
    t.fn = [gamma](TaskContext& ctx) {
      const RegionData<double>& rho = ctx.data(0);
      const RegionData<double>& e = ctx.data(1);
      ctx.data(2).for_each([&](coord_t zid, double& p) {
        p = (gamma - 1.0) * rho.at(zid) * e.at(zid);
      });
    };
    rt_.launch(std::move(t));
  }

  // Phase 2: sum_forces — zones push pressure to their four corner
  // points; corners owned by neighbours go through the aliased GHOST
  // subregion.
  for (std::uint32_t pi = 0; pi < pieces(); ++pi) {
    RegionHandle z = rt_.subregion(zone_parts_, pi);
    RegionHandle o = rt_.subregion(own_parts_, pi);
    RegionHandle g = rt_.subregion(ghost_parts_, pi);
    TaskLaunch t;
    t.name = "sum_forces";
    t.requirements = {RegionReq{z, zp_, Privilege::read()},
                      RegionReq{o, pf_, Privilege::reduce(kRedopSum)},
                      RegionReq{g, pf_, Privilege::reduce(kRedopSum)}};
    t.mapped_node = piece_node(pi);
    t.work_items = zones_per_piece();
    t.fn = [zlin, plin](TaskContext& ctx) {
      const RegionData<double>& p = ctx.data(0);
      RegionData<double>& own_f = ctx.data(1);
      RegionData<double>& ghost_f = ctx.data(2);
      auto deposit = [&](coord_t pid, double df) {
        if (own_f.domain().contains(pid)) own_f.at(pid) += df;
        else ghost_f.at(pid) += df;
      };
      p.for_each([&](coord_t zid, const double& zpv) {
        Point<2> zc = zlin.delinearize(zid);
        double df = 0.25 * zpv;
        for (coord_t dy = 0; dy <= 1; ++dy)
          for (coord_t dx = 0; dx <= 1; ++dx)
            deposit(plin.linearize(Point<2>{{zc[0] + dy, zc[1] + dx}}), df);
      });
    };
    rt_.launch(std::move(t));
  }

  // Phase 3: move_points — apply forces to owned points and contribute to
  // the global minimum timestep.
  for (std::uint32_t pi = 0; pi < pieces(); ++pi) {
    RegionHandle o = rt_.subregion(own_parts_, pi);
    TaskLaunch t;
    t.name = "move_points";
    t.requirements = {RegionReq{o, pm_, Privilege::read()},
                      RegionReq{o, pu_, Privilege::read_write()},
                      RegionReq{o, pf_, Privilege::read_write()},
                      RegionReq{dtreg_, fdt_, Privilege::reduce(kRedopMin)}};
    t.mapped_node = piece_node(pi);
    t.work_items = zones_per_piece();
    t.fn = [dt](TaskContext& ctx) {
      const RegionData<double>& m = ctx.data(0);
      RegionData<double>& u = ctx.data(1);
      RegionData<double>& f = ctx.data(2);
      RegionData<double>& dtc = ctx.data(3);
      double umax = 0.0;
      u.for_each([&](coord_t pid, double& uv) {
        uv += f.at(pid) / m.at(pid) * dt;
        umax = std::max(umax, std::abs(uv));
      });
      f.fill(0.0);
      double local_dt = kDtCourant / (umax + 1.0);
      dtc.at(0) = std::min(dtc.at(0), local_dt);
    };
    rt_.launch(std::move(t));
  }

  // Phase 4: update_zones — zones pull corner velocities, including
  // neighbours' through GHOST.
  for (std::uint32_t pi = 0; pi < pieces(); ++pi) {
    RegionHandle z = rt_.subregion(zone_parts_, pi);
    RegionHandle o = rt_.subregion(own_parts_, pi);
    RegionHandle g = rt_.subregion(ghost_parts_, pi);
    TaskLaunch t;
    t.name = "update_zones";
    t.requirements = {RegionReq{o, pu_, Privilege::read()},
                      RegionReq{g, pu_, Privilege::read()},
                      RegionReq{z, zrho_, Privilege::read_write()},
                      RegionReq{z, ze_, Privilege::read_write()}};
    t.mapped_node = piece_node(pi);
    t.work_items = zones_per_piece();
    t.fn = [zlin, plin, dt](TaskContext& ctx) {
      const RegionData<double>& own_u = ctx.data(0);
      const RegionData<double>& ghost_u = ctx.data(1);
      RegionData<double>& rho = ctx.data(2);
      RegionData<double>& e = ctx.data(3);
      auto vel = [&](coord_t pid) {
        return own_u.domain().contains(pid) ? own_u.at(pid)
                                            : ghost_u.at(pid);
      };
      rho.for_each([&](coord_t zid, double& r) {
        Point<2> zc = zlin.delinearize(zid);
        double div = 0.0;
        // Crude "divergence": right-edge minus left-edge velocities.
        div += vel(plin.linearize(Point<2>{{zc[0], zc[1] + 1}}));
        div += vel(plin.linearize(Point<2>{{zc[0] + 1, zc[1] + 1}}));
        div -= vel(plin.linearize(Point<2>{{zc[0], zc[1]}}));
        div -= vel(plin.linearize(Point<2>{{zc[0] + 1, zc[1]}}));
        r = r * (1.0 - 0.5 * dt * div);
        e.at(zid) = e.at(zid) * (1.0 - 0.25 * dt * div);
      });
    };
    rt_.launch(std::move(t));
  }

  // Host task: observe and reset the dt reduction (read, then read-write).
  {
    TaskLaunch t;
    t.name = "collect_dt";
    t.requirements = {RegionReq{dtreg_, fdt_, Privilege::read_write()}};
    t.mapped_node = 0;
    t.work_items = 1;
    double* sink = &last_dt_;
    t.fn = [sink](TaskContext& ctx) {
      *sink = ctx.data(0).at(0);
      ctx.data(0).at(0) = std::numeric_limits<double>::infinity();
    };
    rt_.launch(std::move(t));
  }
  if (cfg_.trace) rt_.end_trace();
  rt_.end_iteration();
}

void PennantApp::reference_step() {
  const double gamma = cfg_.gamma;
  const double dt = cfg_.dt;
  const coord_t zw = cfg_.zones_per_piece_x, zh = cfg_.zones_per_piece_y;

  auto zone_rect_of = [&](std::uint32_t pi, coord_t& zx0, coord_t& zy0) {
    std::uint32_t px = pi % cfg_.pieces_x, py = pi / cfg_.pieces_x;
    zx0 = static_cast<coord_t>(px) * zw;
    zy0 = static_cast<coord_t>(py) * zh;
  };
  auto zid_of = [&](coord_t zy, coord_t zx) {
    return static_cast<std::size_t>(zy * nzx_ + zx);
  };
  auto pid_of = [&](coord_t py, coord_t px) {
    return static_cast<std::size_t>(py * npx_ + px);
  };
  auto owned_by = [&](std::uint32_t pi, coord_t py, coord_t px) {
    std::uint32_t ppx = pi % cfg_.pieces_x, ppy = pi / cfg_.pieces_x;
    coord_t zx0 = static_cast<coord_t>(ppx) * zw;
    coord_t zy0 = static_cast<coord_t>(ppy) * zh;
    coord_t ox1 = ppx + 1 == cfg_.pieces_x ? npx_ - 1 : zx0 + zw - 1;
    coord_t oy1 = ppy + 1 == cfg_.pieces_y ? npy_ - 1 : zy0 + zh - 1;
    return px >= zx0 && px <= ox1 && py >= zy0 && py <= oy1;
  };

  // Phase 1.
  for (std::size_t z = 0; z < ref_p_.size(); ++z)
    ref_p_[z] = (gamma - 1.0) * ref_rho_[z] * ref_e_[z];

  // Phase 2: per-piece buffers folded own-then-ghost in piece order,
  // exactly replicating the runtime's reduction commit order.
  for (std::uint32_t pi = 0; pi < pieces(); ++pi) {
    coord_t zx0, zy0;
    zone_rect_of(pi, zx0, zy0);
    std::map<std::size_t, double> own_buf, ghost_buf;
    for (coord_t zy = zy0; zy < zy0 + zh; ++zy) {
      for (coord_t zx = zx0; zx < zx0 + zw; ++zx) {
        double df = 0.25 * ref_p_[zid_of(zy, zx)];
        for (coord_t dy = 0; dy <= 1; ++dy) {
          for (coord_t dx = 0; dx <= 1; ++dx) {
            coord_t py = zy + dy, px = zx + dx;
            (owned_by(pi, py, px) ? own_buf
                                  : ghost_buf)[pid_of(py, px)] += df;
          }
        }
      }
    }
    for (const auto& [pid, df] : own_buf) ref_f_[pid] += df;
    for (const auto& [pid, df] : ghost_buf) ref_f_[pid] += df;
  }

  // Phase 3: piece order, owned points in ascending id order.
  double global_dt = std::numeric_limits<double>::infinity();
  for (std::uint32_t pi = 0; pi < pieces(); ++pi) {
    double umax = 0.0;
    for (coord_t py = 0; py < npy_; ++py) {
      for (coord_t px = 0; px < npx_; ++px) {
        if (!owned_by(pi, py, px)) continue;
        std::size_t pid = pid_of(py, px);
        ref_u_[pid] += ref_f_[pid] / ref_m_[pid] * dt;
        umax = std::max(umax, std::abs(ref_u_[pid]));
        ref_f_[pid] = 0.0;
      }
    }
    global_dt = std::min(global_dt, kDtCourant / (umax + 1.0));
  }
  ref_dt_state_ = std::min(ref_dt_state_, global_dt);

  // Phase 4.
  std::vector<double> rho_next = ref_rho_, e_next = ref_e_;
  for (coord_t zy = 0; zy < nzy_; ++zy) {
    for (coord_t zx = 0; zx < nzx_; ++zx) {
      double div = 0.0;
      div += ref_u_[pid_of(zy, zx + 1)];
      div += ref_u_[pid_of(zy + 1, zx + 1)];
      div -= ref_u_[pid_of(zy, zx)];
      div -= ref_u_[pid_of(zy + 1, zx)];
      std::size_t z = zid_of(zy, zx);
      rho_next[z] = ref_rho_[z] * (1.0 - 0.5 * dt * div);
      e_next[z] = ref_e_[z] * (1.0 - 0.25 * dt * div);
    }
  }
  ref_rho_ = std::move(rho_next);
  ref_e_ = std::move(e_next);

  // Host task.
  ref_last_dt_ = ref_dt_state_;
  ref_dt_state_ = std::numeric_limits<double>::infinity();
}

void PennantApp::run() {
  for (int it = 0; it < cfg_.iterations; ++it) {
    launch_iteration();
    reference_step();
  }
}

bool PennantApp::validate(double tolerance) const {
  auto close = [tolerance](double a, double b) {
    if (a == b) return true;
    double scale = std::max({1.0, std::abs(a), std::abs(b)});
    return std::abs(a - b) <= tolerance * scale;
  };
  bool ok = true;
  auto check = [&](RegionHandle region, FieldID field,
                   const std::vector<double>& ref) {
    RegionData<double> data = rt_.observe(region, field);
    data.for_each([&](coord_t i, const double& v) {
      if (!close(v, ref[static_cast<std::size_t>(i)])) ok = false;
    });
  };
  check(zones_, zrho_, ref_rho_);
  check(zones_, ze_, ref_e_);
  check(zones_, zp_, ref_p_);
  check(points_, pf_, ref_f_);
  check(points_, pu_, ref_u_);
  if (!close(last_dt_, ref_last_dt_)) ok = false;
  return ok;
}

} // namespace visrt::apps
