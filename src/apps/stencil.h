// visrt/apps/stencil.h
//
// The Stencil benchmark of Section 8: a 9-point star stencil (radius 2,
// no corner cells — two cells in each axis direction from the center) on a
// structured 2-D grid, intermixed with a data-parallel update, after the
// Parallel Research Kernels stencil [26].
//
// The grid is decomposed into a 2-D grid of tiles, one per piece.  Each
// piece has two views:
//   - primary  P[i]: the tile itself (disjoint, complete);
//   - halo     H[i]: the tile grown by `radius` cells in every direction
//                    (aliased: overlaps up to eight neighbouring tiles).
// Each iteration launches, per piece,
//   stencil: read H[i].in, read-write P[i].out   (out += star(in))
//   add:     read-write P[i].in                  (in += 1)
// so the stencil of iteration k+1 reads cells written by the neighbours'
// add tasks of iteration k through a different partition — exactly the
// cross-partition coherence pattern the paper measures.  Because tiles are
// 2-D, their linearized domains are fragmented (one interval per row),
// stressing the set algebra the way the paper's 2-D decomposition does.
#pragma once

#include <vector>

#include "geom/rect.h"
#include "runtime/runtime.h"

namespace visrt::apps {

struct StencilConfig {
  std::uint32_t pieces_x = 2; ///< tile grid (pieces = pieces_x * pieces_y)
  std::uint32_t pieces_y = 2;
  coord_t tile_rows = 16; ///< rows per tile (weak-scaling unit)
  coord_t tile_cols = 16; ///< columns per tile
  int iterations = 4;
  int radius = 2;
  /// Bracket every iteration in a runtime trace (tracing extension).
  bool trace = false;
};

class StencilApp {
public:
  StencilApp(Runtime& rt, StencilConfig cfg);

  /// Launch all iterations (each ends with Runtime::end_iteration()).
  void run();

  std::uint32_t pieces() const { return cfg_.pieces_x * cfg_.pieces_y; }

  /// Grid points updated per piece per iteration (throughput unit).
  coord_t points_per_piece() const {
    return cfg_.tile_rows * cfg_.tile_cols;
  }

  /// Compare the runtime's final field contents against a serial
  /// execution of the same program.  Requires value tracking.
  bool validate() const;

private:
  void launch_iteration();
  /// Serial reference step over ref_in_/ref_out_.
  void reference_step();

  double& ref_at(std::vector<double>& grid, coord_t r, coord_t c) const {
    return grid[static_cast<std::size_t>(r * cols_ + c)];
  }

  Runtime& rt_;
  StencilConfig cfg_;
  coord_t rows_, cols_;
  Linearizer<2> lin_;
  RegionHandle grid_;
  PartitionHandle primary_, halo_;
  FieldID fin_, fout_;

  // Serial reference state (maintained only when validating).
  mutable std::vector<double> ref_in_, ref_out_;
};

} // namespace visrt::apps
