#include "apps/stencil.h"

#include "common/check.h"

namespace visrt::apps {

namespace {
/// Star stencil weights at distance 1 and 2 (same in both axes).
constexpr double kW1 = 0.25;
constexpr double kW2 = 0.125;
} // namespace

StencilApp::StencilApp(Runtime& rt, StencilConfig cfg)
    : rt_(rt), cfg_(cfg),
      rows_(cfg.tile_rows * static_cast<coord_t>(cfg.pieces_y)),
      cols_(cfg.tile_cols * static_cast<coord_t>(cfg.pieces_x)),
      lin_(Rect<2>{{0, 0}, {rows_ - 1, cols_ - 1}}) {
  require(cfg_.pieces_x >= 1 && cfg_.pieces_y >= 1,
          "stencil needs at least one piece");
  require(cfg_.tile_rows > 2 * cfg_.radius &&
              cfg_.tile_cols > 2 * cfg_.radius,
          "stencil tiles must be larger than the halo radius");

  grid_ = rt_.create_region(lin_.linearize(lin_.base()), "grid");

  std::vector<IntervalSet> primary, halo;
  for (std::uint32_t py = 0; py < cfg_.pieces_y; ++py) {
    for (std::uint32_t px = 0; px < cfg_.pieces_x; ++px) {
      coord_t r0 = static_cast<coord_t>(py) * cfg_.tile_rows;
      coord_t c0 = static_cast<coord_t>(px) * cfg_.tile_cols;
      coord_t r1 = r0 + cfg_.tile_rows - 1;
      coord_t c1 = c0 + cfg_.tile_cols - 1;
      primary.push_back(lin_.linearize(Rect<2>{{r0, c0}, {r1, c1}}));
      halo.push_back(lin_.linearize(
          Rect<2>{{r0 - cfg_.radius, c0 - cfg_.radius},
                  {r1 + cfg_.radius, c1 + cfg_.radius}}));
    }
  }
  primary_ = rt_.create_partition(grid_, std::move(primary), "P");
  halo_ = rt_.create_partition(grid_, std::move(halo), "H");

  auto initial = [this](coord_t p) {
    Point<2> pt = lin_.delinearize(p);
    return static_cast<double>(pt[0] + pt[1]);
  };
  fin_ = rt_.add_field(grid_, "in", initial);
  fout_ = rt_.add_field(grid_, "out", 0.0);

  ref_in_.resize(static_cast<std::size_t>(rows_ * cols_));
  ref_out_.assign(static_cast<std::size_t>(rows_ * cols_), 0.0);
  for (coord_t r = 0; r < rows_; ++r)
    for (coord_t c = 0; c < cols_; ++c)
      ref_at(ref_in_, r, c) = static_cast<double>(r + c);
}

void StencilApp::launch_iteration() {
  if (cfg_.trace) rt_.begin_trace(0);
  const int rad = cfg_.radius;
  for (std::uint32_t i = 0; i < pieces(); ++i) {
    RegionHandle p = rt_.subregion(primary_, i);
    RegionHandle h = rt_.subregion(halo_, i);
    NodeID node = static_cast<NodeID>(i % rt_.num_nodes());

    TaskLaunch stencil;
    stencil.name = "stencil";
    stencil.requirements = {RegionReq{h, fin_, Privilege::read()},
                            RegionReq{p, fout_, Privilege::read_write()}};
    stencil.mapped_node = node;
    stencil.work_items = points_per_piece();
    // Capture what the kernel needs by value; the body runs only when the
    // runtime tracks values.
    Linearizer<2> lin = lin_;
    coord_t rows = rows_, cols = cols_;
    stencil.fn = [lin, rows, cols, rad](TaskContext& ctx) {
      const RegionData<double>& in = ctx.data(0);
      RegionData<double>& out = ctx.data(1);
      out.for_each([&](coord_t pt, double& v) {
        Point<2> xy = lin.delinearize(pt);
        coord_t r = xy[0], c = xy[1];
        // Interior cells only: the full star must fit in the grid.
        if (r < rad || r >= rows - rad || c < rad || c >= cols - rad)
          return;
        double acc = v;
        for (int d = 1; d <= rad; ++d) {
          double w = d == 1 ? kW1 : kW2;
          acc += w * in.at(lin.linearize(Point<2>{{r - d, c}}));
          acc += w * in.at(lin.linearize(Point<2>{{r + d, c}}));
          acc += w * in.at(lin.linearize(Point<2>{{r, c - d}}));
          acc += w * in.at(lin.linearize(Point<2>{{r, c + d}}));
        }
        v = acc;
      });
    };
    rt_.launch(std::move(stencil));
  }

  for (std::uint32_t i = 0; i < pieces(); ++i) {
    RegionHandle p = rt_.subregion(primary_, i);
    TaskLaunch add;
    add.name = "add";
    add.requirements = {RegionReq{p, fin_, Privilege::read_write()}};
    add.mapped_node = static_cast<NodeID>(i % rt_.num_nodes());
    add.work_items = points_per_piece();
    add.fn = [](TaskContext& ctx) {
      ctx.data(0).for_each([](coord_t, double& v) { v += 1.0; });
    };
    rt_.launch(std::move(add));
  }
  if (cfg_.trace) rt_.end_trace();
  rt_.end_iteration();
}

void StencilApp::reference_step() {
  const int rad = cfg_.radius;
  std::vector<double> next = ref_out_;
  for (coord_t r = rad; r < rows_ - rad; ++r) {
    for (coord_t c = rad; c < cols_ - rad; ++c) {
      double acc = ref_at(next, r, c);
      for (int d = 1; d <= rad; ++d) {
        double w = d == 1 ? kW1 : kW2;
        acc += w * ref_at(ref_in_, r - d, c);
        acc += w * ref_at(ref_in_, r + d, c);
        acc += w * ref_at(ref_in_, r, c - d);
        acc += w * ref_at(ref_in_, r, c + d);
      }
      ref_at(next, r, c) = acc;
    }
  }
  ref_out_ = std::move(next);
  for (double& v : ref_in_) v += 1.0;
}

void StencilApp::run() {
  for (int it = 0; it < cfg_.iterations; ++it) {
    launch_iteration();
    reference_step();
  }
}

bool StencilApp::validate() const {
  RegionData<double> out = rt_.observe(grid_, fout_);
  RegionData<double> in = rt_.observe(grid_, fin_);
  bool ok = true;
  out.for_each([&](coord_t p, const double& v) {
    Point<2> xy = lin_.delinearize(p);
    if (v != ref_at(ref_out_, xy[0], xy[1])) ok = false;
  });
  in.for_each([&](coord_t p, const double& v) {
    Point<2> xy = lin_.delinearize(p);
    if (v != ref_at(ref_in_, xy[0], xy[1])) ok = false;
  });
  return ok;
}

} // namespace visrt::apps
