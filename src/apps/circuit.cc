#include "apps/circuit.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "realm/reduction_ops.h"
#include "region/dependent_partitioning.h"

namespace visrt::apps {

namespace {
/// Voltage of node `n` from whichever buffer holds it.
double node_voltage(const RegionData<double>& own,
                    const RegionData<double>& ghost, coord_t n) {
  return own.domain().contains(n) ? own.at(n) : ghost.at(n);
}
} // namespace

CircuitApp::CircuitApp(Runtime& rt, CircuitConfig cfg)
    : rt_(rt), cfg_(cfg),
      total_nodes_(static_cast<coord_t>(cfg.pieces) * cfg.nodes_per_piece),
      total_wires_(static_cast<coord_t>(cfg.pieces) * cfg.wires_per_piece) {
  require(cfg_.pieces >= 1 && cfg_.nodes_per_piece >= 2,
          "circuit needs at least two nodes per piece");

  // --- Generate the graph -------------------------------------------------
  Rng rng(cfg_.seed);
  piece_wires_.resize(cfg_.pieces);
  for (std::uint32_t i = 0; i < cfg_.pieces; ++i) {
    coord_t base = static_cast<coord_t>(i) * cfg_.nodes_per_piece;
    for (coord_t w = 0; w < cfg_.wires_per_piece; ++w) {
      Wire wire;
      wire.src = base + rng.range(0, cfg_.nodes_per_piece - 1);
      if (cfg_.pieces > 1 && rng.chance(cfg_.cross_fraction)) {
        // Cross wire into a neighbouring piece (ring topology).
        std::uint32_t nb = rng.chance(0.5)
                               ? (i + 1) % cfg_.pieces
                               : (i + cfg_.pieces - 1) % cfg_.pieces;
        coord_t nb_base = static_cast<coord_t>(nb) * cfg_.nodes_per_piece;
        wire.dst = nb_base + rng.range(0, cfg_.nodes_per_piece - 1);
      } else {
        wire.dst = base + rng.range(0, cfg_.nodes_per_piece - 1);
        if (wire.dst == wire.src)
          wire.dst = base + (wire.dst - base + 1) % cfg_.nodes_per_piece;
      }
      piece_wires_[i].push_back(static_cast<coord_t>(wire_list_.size()));
      wire_list_.push_back(wire);
    }
  }

  // Ghost partition via dependent partitioning [25], as the real circuit
  // computes it: the image of each piece's wires through their endpoint
  // pointers, minus the piece's own nodes.
  std::vector<IntervalSet> wire_parts_sets;
  for (std::uint32_t i = 0; i < cfg_.pieces; ++i) {
    coord_t wb = static_cast<coord_t>(i) * cfg_.wires_per_piece;
    wire_parts_sets.push_back(
        IntervalSet(wb, wb + cfg_.wires_per_piece - 1));
  }
  PointerFn endpoints = [this](coord_t w, std::vector<coord_t>& out) {
    const Wire& wire = wire_list_[static_cast<std::size_t>(w)];
    out.push_back(wire.src);
    out.push_back(wire.dst);
  };
  std::vector<IntervalSet> ghost_sets = image(wire_parts_sets, endpoints);
  for (std::uint32_t i = 0; i < cfg_.pieces; ++i) {
    coord_t base = static_cast<coord_t>(i) * cfg_.nodes_per_piece;
    ghost_sets[i] = ghost_sets[i].subtract(
        IntervalSet(base, base + cfg_.nodes_per_piece - 1));
    if (ghost_sets[i].empty() && cfg_.pieces > 1) {
      // Keep the ghost region non-empty so every piece exercises the
      // aliased partition: point at a neighbour's first node.
      std::uint32_t nb = (i + 1) % cfg_.pieces;
      ghost_sets[i] = IntervalSet::from_points(
          {static_cast<coord_t>(nb) * cfg_.nodes_per_piece});
    }
  }

  // --- Regions, partitions, fields ----------------------------------------
  nodes_ = rt_.create_region(IntervalSet(0, total_nodes_ - 1), "nodes");
  wires_ = rt_.create_region(IntervalSet(0, total_wires_ - 1), "wires");

  std::vector<IntervalSet> primary, wire_parts;
  for (std::uint32_t i = 0; i < cfg_.pieces; ++i) {
    coord_t nb = static_cast<coord_t>(i) * cfg_.nodes_per_piece;
    primary.push_back(IntervalSet(nb, nb + cfg_.nodes_per_piece - 1));
    coord_t wb = static_cast<coord_t>(i) * cfg_.wires_per_piece;
    wire_parts.push_back(IntervalSet(wb, wb + cfg_.wires_per_piece - 1));
  }
  node_primary_ = rt_.create_partition(nodes_, std::move(primary), "P");
  node_ghost_ = rt_.create_partition(nodes_, std::move(ghost_sets), "G");
  wire_pieces_ = rt_.create_partition(wires_, std::move(wire_parts), "Wp");

  fvolt_ = rt_.add_field(nodes_, "voltage", [](coord_t n) {
    return static_cast<double>(n % 7) - 3.0;
  });
  fcharge_ = rt_.add_field(nodes_, "charge", 0.0);
  fcurrent_ = rt_.add_field(wires_, "current", 0.0);

  // --- Serial reference ----------------------------------------------------
  ref_volt_.resize(static_cast<std::size_t>(total_nodes_));
  for (coord_t n = 0; n < total_nodes_; ++n)
    ref_volt_[static_cast<std::size_t>(n)] =
        static_cast<double>(n % 7) - 3.0;
  ref_charge_.assign(static_cast<std::size_t>(total_nodes_), 0.0);
  ref_current_.assign(static_cast<std::size_t>(total_wires_), 0.0);
}

void CircuitApp::launch_iteration() {
  if (cfg_.trace) rt_.begin_trace(0);
  const double inv_r = 1.0 / cfg_.resistance;
  const double dt = cfg_.dt;
  const double inv_c = 1.0 / cfg_.capacitance;

  // Phase 1: calc_currents.
  for (std::uint32_t i = 0; i < cfg_.pieces; ++i) {
    RegionHandle p = rt_.subregion(node_primary_, i);
    RegionHandle g = rt_.subregion(node_ghost_, i);
    RegionHandle w = rt_.subregion(wire_pieces_, i);
    NodeID node = static_cast<NodeID>(i % rt_.num_nodes());

    TaskLaunch t;
    t.name = "calc_currents";
    t.requirements = {RegionReq{p, fvolt_, Privilege::read()},
                      RegionReq{g, fvolt_, Privilege::read()},
                      RegionReq{w, fcurrent_, Privilege::read_write()}};
    t.mapped_node = node;
    t.work_items = cfg_.wires_per_piece;
    const std::vector<Wire>* wires = &wire_list_;
    const std::vector<coord_t>* mine = &piece_wires_[i];
    t.fn = [wires, mine, inv_r](TaskContext& ctx) {
      const RegionData<double>& own = ctx.data(0);
      const RegionData<double>& ghost = ctx.data(1);
      RegionData<double>& current = ctx.data(2);
      for (coord_t wid : *mine) {
        const Wire& wire = (*wires)[static_cast<std::size_t>(wid)];
        double vs = node_voltage(own, ghost, wire.src);
        double vd = node_voltage(own, ghost, wire.dst);
        current.at(wid) = (vs - vd) * inv_r;
      }
    };
    rt_.launch(std::move(t));
  }

  // Phase 2: distribute_charge (reductions through primary and ghost).
  for (std::uint32_t i = 0; i < cfg_.pieces; ++i) {
    RegionHandle p = rt_.subregion(node_primary_, i);
    RegionHandle g = rt_.subregion(node_ghost_, i);
    RegionHandle w = rt_.subregion(wire_pieces_, i);

    TaskLaunch t;
    t.name = "distribute_charge";
    t.requirements = {
        RegionReq{w, fcurrent_, Privilege::read()},
        RegionReq{p, fcharge_, Privilege::reduce(kRedopSum)},
        RegionReq{g, fcharge_, Privilege::reduce(kRedopSum)}};
    t.mapped_node = static_cast<NodeID>(i % rt_.num_nodes());
    t.work_items = cfg_.wires_per_piece;
    const std::vector<Wire>* wires = &wire_list_;
    const std::vector<coord_t>* mine = &piece_wires_[i];
    t.fn = [wires, mine, dt](TaskContext& ctx) {
      const RegionData<double>& current = ctx.data(0);
      RegionData<double>& own_q = ctx.data(1);
      RegionData<double>& ghost_q = ctx.data(2);
      auto add = [&](coord_t n, double dq) {
        if (own_q.domain().contains(n)) own_q.at(n) += dq;
        else ghost_q.at(n) += dq;
      };
      for (coord_t wid : *mine) {
        const Wire& wire = (*wires)[static_cast<std::size_t>(wid)];
        double i_dt = current.at(wid) * dt;
        add(wire.src, -i_dt);
        add(wire.dst, i_dt);
      }
    };
    rt_.launch(std::move(t));
  }

  // Phase 3: update_voltage.
  for (std::uint32_t i = 0; i < cfg_.pieces; ++i) {
    RegionHandle p = rt_.subregion(node_primary_, i);
    TaskLaunch t;
    t.name = "update_voltage";
    t.requirements = {RegionReq{p, fvolt_, Privilege::read_write()},
                      RegionReq{p, fcharge_, Privilege::read_write()}};
    t.mapped_node = static_cast<NodeID>(i % rt_.num_nodes());
    t.work_items = cfg_.nodes_per_piece;
    t.fn = [inv_c](TaskContext& ctx) {
      RegionData<double>& volt = ctx.data(0);
      RegionData<double>& charge = ctx.data(1);
      volt.for_each([&](coord_t n, double& v) {
        v += charge.at(n) * inv_c;
      });
      charge.fill(0.0);
    };
    rt_.launch(std::move(t));
  }
  if (cfg_.trace) rt_.end_trace();
  rt_.end_iteration();
}

void CircuitApp::reference_step() {
  const double inv_r = 1.0 / cfg_.resistance;
  const double inv_c = 1.0 / cfg_.capacitance;

  // Phase 1: currents read the pre-phase voltages directly.
  for (std::uint32_t i = 0; i < cfg_.pieces; ++i) {
    for (coord_t wid : piece_wires_[i]) {
      const Wire& w = wire_list_[static_cast<std::size_t>(wid)];
      ref_current_[static_cast<std::size_t>(wid)] =
          (ref_volt_[static_cast<std::size_t>(w.src)] -
           ref_volt_[static_cast<std::size_t>(w.dst)]) *
          inv_r;
    }
  }

  // Phase 2: replicate the runtime's reduction buffering exactly — each
  // piece accumulates into private buffers which are folded into the
  // master copy in commit order (own buffer, then ghost buffer).
  for (std::uint32_t i = 0; i < cfg_.pieces; ++i) {
    std::unordered_map<coord_t, double> own, ghost;
    coord_t base = static_cast<coord_t>(i) * cfg_.nodes_per_piece;
    auto in_piece = [&](coord_t n) {
      return n >= base && n < base + cfg_.nodes_per_piece;
    };
    for (coord_t wid : piece_wires_[i]) {
      const Wire& w = wire_list_[static_cast<std::size_t>(wid)];
      double i_dt = ref_current_[static_cast<std::size_t>(wid)] * cfg_.dt;
      (in_piece(w.src) ? own : ghost)[w.src] -= i_dt;
      (in_piece(w.dst) ? own : ghost)[w.dst] += i_dt;
    }
    // Fold buffers in ascending node order (RegionData stores points in
    // ascending order, and fold_from walks them that way).
    auto fold = [&](std::unordered_map<coord_t, double>& buf) {
      std::vector<coord_t> keys;
      keys.reserve(buf.size());
      for (const auto& [n, dq] : buf) keys.push_back(n);
      std::sort(keys.begin(), keys.end());
      for (coord_t n : keys)
        ref_charge_[static_cast<std::size_t>(n)] += buf[n];
    };
    fold(own);
    fold(ghost);
  }

  // Phase 3.
  for (coord_t n = 0; n < total_nodes_; ++n) {
    ref_volt_[static_cast<std::size_t>(n)] +=
        ref_charge_[static_cast<std::size_t>(n)] * inv_c;
    ref_charge_[static_cast<std::size_t>(n)] = 0.0;
  }
}

void CircuitApp::run() {
  for (int it = 0; it < cfg_.iterations; ++it) {
    launch_iteration();
    reference_step();
  }
}

bool CircuitApp::validate(double tolerance) const {
  auto close = [tolerance](double a, double b) {
    if (a == b) return true;
    double scale = std::max({1.0, std::abs(a), std::abs(b)});
    return std::abs(a - b) <= tolerance * scale;
  };
  bool ok = true;
  RegionData<double> volt = rt_.observe(nodes_, fvolt_);
  volt.for_each([&](coord_t n, const double& v) {
    if (!close(v, ref_volt_[static_cast<std::size_t>(n)])) ok = false;
  });
  RegionData<double> charge = rt_.observe(nodes_, fcharge_);
  charge.for_each([&](coord_t n, const double& v) {
    if (!close(v, ref_charge_[static_cast<std::size_t>(n)])) ok = false;
  });
  RegionData<double> current = rt_.observe(wires_, fcurrent_);
  current.for_each([&](coord_t w, const double& v) {
    if (!close(v, ref_current_[static_cast<std::size_t>(w)])) ok = false;
  });
  return ok;
}

} // namespace visrt::apps
