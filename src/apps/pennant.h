// visrt/apps/pennant.h
//
// The Pennant benchmark of Section 8: a simplified 2-D Lagrangian
// hydrodynamics step on an unstructured mesh of quad zones and points,
// after the PENNANT mini-app [12].  The physics is reduced to its
// structural skeleton; what matters for the coherence analyses — and what
// this port preserves faithfully — is the region structure:
//
//   zones Z    fields: rho (density), e (energy), p (pressure)
//              partition: Zp (disjoint complete, one rectangle of zones
//              per piece in a 2-D piece grid)
//   points PT  fields: f (accumulated force), u (velocity), m (mass)
//              partitions: OWN (disjoint complete: each point owned by the
//              piece whose zone rectangle starts at it) and GHOST
//              (aliased: a corner point shared by up to four pieces
//              appears in up to three ghost subregions)
//   dt    DT   field: dt — a one-element region all pieces reduce-min
//              into, closing each step (a second, distinct reduction
//              operator, as in the original code's dt computation)
//
// Per piece and iteration:
//   calc_pressure: read Z.rho, Z.e              -> rw Z.p
//   sum_forces:    read Z.p                     -> reduce+ OWN.f, GHOST.f
//   move_points:   read OWN.m                   -> rw OWN.u, rw OWN.f
//                  (u += f/m*dt; f = 0)         -> reduce_min DT.dt
//   update_zones:  read OWN.u, GHOST.u          -> rw Z.rho, Z.e
// plus one host task per iteration reading and resetting DT.
#pragma once

#include <vector>

#include "geom/rect.h"
#include "runtime/runtime.h"

namespace visrt::apps {

struct PennantConfig {
  std::uint32_t pieces_x = 2; ///< piece grid (pieces = pieces_x * pieces_y)
  std::uint32_t pieces_y = 2;
  coord_t zones_per_piece_x = 8; ///< zone rectangle per piece
  coord_t zones_per_piece_y = 8;
  int iterations = 4;
  /// Bracket every iteration in a runtime trace (tracing extension).
  bool trace = false;
  double gamma = 1.4;
  double dt = 0.005;
};

class PennantApp {
public:
  PennantApp(Runtime& rt, PennantConfig cfg);

  void run();

  std::uint32_t pieces() const { return cfg_.pieces_x * cfg_.pieces_y; }
  /// Zones simulated per piece per iteration (throughput unit).
  coord_t zones_per_piece() const {
    return cfg_.zones_per_piece_x * cfg_.zones_per_piece_y;
  }

  /// Compare against a serial execution.  Requires value tracking.
  /// See CircuitApp::validate for the tolerance semantics.
  bool validate(double tolerance = 0.0) const;

  /// The dt value the host observed after the final iteration.
  double last_dt() const { return last_dt_; }

private:
  void launch_iteration();
  void reference_step();

  NodeID piece_node(std::uint32_t pi) const {
    return static_cast<NodeID>(pi % rt_.num_nodes());
  }

  Runtime& rt_;
  PennantConfig cfg_;
  coord_t nzx_, nzy_; // total zones per axis
  coord_t npx_, npy_; // total points per axis
  Linearizer<2> zlin_, plin_;

  RegionHandle zones_, points_, dtreg_;
  PartitionHandle zone_parts_, own_parts_, ghost_parts_;
  FieldID zrho_, ze_, zp_, pf_, pu_, pm_, fdt_;

  // Serial reference state.
  std::vector<double> ref_rho_, ref_e_, ref_p_;
  std::vector<double> ref_f_, ref_u_, ref_m_;
  double ref_dt_state_;
  double last_dt_ = 0.0;
  double ref_last_dt_ = 0.0;
};

} // namespace visrt::apps
