// visrt/apps/circuit.h
//
// The Circuit benchmark of Section 8: an irregular graph of circuit nodes
// connected by wires, partitioned into pieces.  Wires within a piece touch
// only that piece's nodes; cross-piece wires reach into neighbouring
// pieces, inducing the aliased ghost partition that the paper's Figure 1
// skeleton is derived from.
//
// Regions and partitions:
//   nodes N   fields: voltage, charge      partitions: P (disjoint,
//             complete, by piece), G (aliased ghosts: nodes of other
//             pieces touched by this piece's wires)
//   wires W   field: current               partition: Wp (disjoint,
//             complete, by piece)
//
// Each iteration launches, per piece,
//   calc_currents:     read P[i].voltage, read G[i].voltage,
//                      read-write Wp[i].current
//   distribute_charge: read Wp[i].current, reduce+ P[i].charge,
//                      reduce+ G[i].charge
//   update_voltage:    read-write P[i].voltage, read-write P[i].charge
// The reductions through the aliased ghost partition followed by
// read-writes through the primary partition are the content-based
// coherence pattern the paper's example centres on.
#pragma once

#include <vector>

#include "common/rng.h"
#include "runtime/runtime.h"

namespace visrt::apps {

struct CircuitConfig {
  std::uint32_t pieces = 4;
  coord_t nodes_per_piece = 32;
  coord_t wires_per_piece = 48;
  /// Fraction of wires that cross into a neighbouring piece.
  double cross_fraction = 0.2;
  int iterations = 4;
  /// Bracket every iteration in a runtime trace (tracing extension).
  bool trace = false;
  std::uint64_t seed = 2023;
  double dt = 0.01;
  double resistance = 5.0;
  double capacitance = 2.0;
};

class CircuitApp {
public:
  CircuitApp(Runtime& rt, CircuitConfig cfg);

  void run();

  /// Wires simulated per piece per iteration (throughput unit).
  coord_t wires_per_piece() const { return cfg_.wires_per_piece; }

  /// Compare against a serial execution.  Requires value tracking.
  /// `tolerance` is a relative bound: 0 demands bitwise equality (exact
  /// for every engine except the optimized painter, which may fold
  /// same-operator reductions in a commuted order; see DESIGN.md).
  bool validate(double tolerance = 0.0) const;

private:
  struct Wire {
    coord_t src;
    coord_t dst;
  };

  void launch_iteration();
  void reference_step();

  Runtime& rt_;
  CircuitConfig cfg_;
  coord_t total_nodes_, total_wires_;

  RegionHandle nodes_, wires_;
  PartitionHandle node_primary_, node_ghost_, wire_pieces_;
  FieldID fvolt_, fcharge_, fcurrent_;

  std::vector<Wire> wire_list_;                 // indexed by wire id
  std::vector<std::vector<coord_t>> piece_wires_; // wire ids per piece

  // Serial reference state.
  std::vector<double> ref_volt_, ref_charge_, ref_current_;
};

} // namespace visrt::apps
