#include "runtime/runtime.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "obs/metrics.h"
#include "sim/trace_export.h"
#include "visibility/history.h"

namespace visrt {

namespace {
/// Metadata request size for a remote analysis step.
constexpr std::uint64_t kRequestBytes = 128;
/// Bytes per field element moved by the copy engine.
constexpr std::uint64_t kElementBytes = 8;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
} // namespace

Runtime::Runtime(RuntimeConfig config) : config_(std::move(config)) {
  config_.machine.validate();
  if (config_.order_queries) deps_.enable_order_queries();
  if (config_.telemetry) {
    recorder_.set_series_capacity(config_.telemetry_series_capacity);
    recorder_.enable();
  }
  if (obs::kProvenanceEnabled && config_.provenance) {
    lifecycle_.enable();
    msg_ledger_.enable(config_.machine.num_nodes);
  }
  // Enabled before the executor exists so worker threads only ever see
  // the profiler in its final state.
  if (obs::kProfileEnabled && config_.profile) {
    profiler_.enable();
    profiler_.add_lock("recorder.series", &recorder_.series_mutex());
  }
  // The Reference engine is the sequential oracle every other mode is
  // checked against; it never runs on the pool.
  if (config_.analysis_threads > 1 &&
      config_.algorithm != Algorithm::Reference) {
    executor_ = std::make_unique<Executor>(config_.analysis_threads,
                                           &profiler_);
    if (obs::kProfileEnabled && config_.profile)
      profiler_.add_lock("executor.queue", &executor_->queue_mutex());
  }
  EngineConfig ec;
  ec.track_values = config_.track_values;
  ec.tuning = config_.tuning;
  ec.forest = &forest_;
  ec.recorder = &recorder_;
  ec.profiler = &profiler_;
  ec.executor = executor_.get();
  ec.provenance = obs::kProvenanceEnabled && config_.provenance;
  ec.lifecycle = ec.provenance ? &lifecycle_ : nullptr;
  ec.max_history_depth = config_.max_history_depth;
  ec.shard_batch = config_.shard_batch;
  engine_ = make_engine(config_.algorithm, ec);
  issue_tail_.assign(config_.machine.num_nodes, sim::kInvalidOp);
  issue_tail_finish_.assign(config_.machine.num_nodes, 0);
  analysis_busy_ns_.assign(config_.machine.num_nodes, 0);
}

RegionHandle Runtime::create_region(IntervalSet domain, std::string name) {
  return forest_.create_root(std::move(domain), std::move(name));
}

PartitionHandle Runtime::create_partition(RegionHandle parent,
                                          std::vector<IntervalSet> subspaces,
                                          std::string name) {
  return forest_.create_partition(parent, std::move(subspaces),
                                  std::move(name));
}

PartitionHandle Runtime::create_partition(RegionHandle parent,
                                          std::vector<IntervalSet> subspaces,
                                          std::string name,
                                          PartitionClaim claim) {
  return forest_.create_partition(parent, std::move(subspaces),
                                  std::move(name), claim);
}

RegionHandle Runtime::subregion(PartitionHandle partition,
                                std::size_t color) const {
  return forest_.subregion(partition, color);
}

FieldID Runtime::add_field(RegionHandle root, std::string name,
                           double initial) {
  return add_field(root, std::move(name),
                   [initial](coord_t) { return initial; });
}

FieldID Runtime::add_field(RegionHandle root, std::string name,
                           const std::function<double(coord_t)>& init) {
  require(forest_.is_root(root), "fields are registered on root regions");
  FieldID field = next_field_++;
  RegionData<double> data;
  if (config_.track_values) {
    data = RegionData<double>::generate(forest_.domain(root), init);
  }
  engine_->initialize_field(root, field, std::move(data), /*home=*/0);
  field_info_.emplace(
      field, FieldInfo{root, std::move(name),
                       InstanceMap(config_.machine.num_nodes, 0,
                                   forest_.domain(root))});
  return field;
}

std::vector<sim::OpID> Runtime::emit_steps(
    std::span<const AnalysisStep> steps, NodeID analysis_node,
    sim::OpID head, LaunchID launch) {
  // Local steps chain on the analyzing node; remote steps are issued
  // concurrently (one request/compute/response round trip per metadata
  // owner — Legion sends per-owner messages asynchronously and only the
  // task execution waits for all of them).
  std::vector<sim::OpID> tails;
  sim::OpID local_tail = head;
  for (const AnalysisStep& step : steps) {
    SimTime cost = step.counters.cpu_ns(config_.costs);
    analysis_busy_ns_[step.owner] += cost;
    if (step.owner == analysis_node) {
      std::vector<sim::OpID> deps;
      if (local_tail != sim::kInvalidOp) deps.push_back(local_tail);
      local_tail = graph_.compute(analysis_node, cost, deps,
                                  sim::OpCategory::Analysis);
      continue;
    }
    std::vector<sim::OpID> deps;
    if (head != sim::kInvalidOp) deps.push_back(head);
    sim::OpID request = graph_.message(analysis_node, step.owner,
                                       kRequestBytes, deps,
                                       sim::OpCategory::Analysis);
    sim::OpID remote =
        graph_.compute(step.owner, cost, std::array{request},
                       sim::OpCategory::Analysis);
    tails.push_back(graph_.message(step.owner, analysis_node,
                                   kRequestBytes + step.meta_bytes,
                                   std::array{remote},
                                   sim::OpCategory::Analysis));
    if (obs::kProvenanceEnabled && msg_ledger_.enabled()) {
      msg_ledger_.record(sim::MessageRecord{
          launch, analysis_node, step.owner, kRequestBytes,
          sim::MessageKind::AnalysisRequest, step.eqset});
      msg_ledger_.record(sim::MessageRecord{
          launch, step.owner, analysis_node, kRequestBytes + step.meta_bytes,
          sim::MessageKind::AnalysisResponse, step.eqset});
    }
  }
  if (local_tail != sim::kInvalidOp) tails.push_back(local_tail);
  return tails;
}

LaunchID Runtime::launch(TaskLaunch launch) {
  require(!launch.requirements.empty(), "a task needs at least one region");
  require(launch.mapped_node < config_.machine.num_nodes,
          "task mapped to a nonexistent node");
  LaunchID id = next_launch_++;
  deps_.add_task(id);
  exec_op_.push_back(sim::kInvalidOp);
  exec_start_.push_back(0);
  exec_finish_.push_back(0);

  NodeID analysis_node = config_.dcr ? launch.mapped_node : 0;
  AnalysisContext ctx{id, launch.mapped_node, analysis_node};
  obs::ScopedSpan launch_span(&recorder_, obs::SpanKind::Launch, launch.name,
                              id, analysis_node);

  // Tracing: record the launch fingerprint while capturing; verify it
  // while replaying.  Any mismatch invalidates the template and falls
  // back to full analysis, as Legion's tracing does.
  bool replay = false;
  if (active_trace_ != nullptr) {
    if (replaying_) {
      TraceState& tr = *active_trace_;
      if (tr.cursor < tr.entries.size() &&
          tr.entries[tr.cursor].requirements == launch.requirements &&
          tr.entries[tr.cursor].mapped_node == launch.mapped_node) {
        ++tr.cursor;
        replay = true;
        ++traced_launches_;
      } else {
        tr.phase = TraceState::Phase::Invalid;
        replaying_ = false;
      }
    } else if (active_trace_->phase == TraceState::Phase::Capturing) {
      active_trace_->entries.push_back(
          TraceEntry{launch.requirements, launch.mapped_node});
    }
  }

  // Per-launch scratch: every short-lived id/op list below lives on the
  // arena and dies at return; resetting here recycles the previous
  // launch's chunks, so steady-state launches allocate without malloc.
  // (launch() is not reentrant — task bodies do not launch subtasks.)
  scratch_arena_.reset();
  const ArenaAllocator<LaunchID> scratch_ids(&scratch_arena_);
  const ArenaAllocator<sim::OpID> scratch_ops(&scratch_arena_);

  // Launch issue: serialized on the analyzing node in program order (the
  // top-level task enumerates subtasks sequentially; with DCR each shard
  // enumerates only its own).  A traced replay pays only the template
  // lookup.
  SimTime issue_cost =
      replay ? config_.costs.trace_replay_ns
             : config_.costs.requirement_base_ns *
                       static_cast<SimTime>(launch.requirements.size()) +
                   (config_.dcr ? config_.costs.dcr_shard_ns : 0);
  std::vector<sim::OpID, ArenaAllocator<sim::OpID>> issue_deps(scratch_ops);
  SimTime issue_floor = 0;
  if (issue_tail_[analysis_node] == sim::kFrozenOp)
    issue_floor = issue_tail_finish_[analysis_node];
  else if (issue_tail_[analysis_node] != sim::kInvalidOp)
    issue_deps.push_back(issue_tail_[analysis_node]);
  sim::OpID issue = graph_.compute(analysis_node, issue_cost, issue_deps,
                                   sim::OpCategory::Runtime, issue_floor);

  // Analyze every requirement: materialize (dependences + current values)
  // and plan the implicit communication.
  std::vector<Requirement> reqs;
  std::vector<PhysicalRegion> phys;
  std::vector<LaunchID, ArenaAllocator<LaunchID>> all_deps(scratch_ids);
  std::vector<sim::OpID, ArenaAllocator<sim::OpID>> analysis_tails(
      scratch_ops);
  std::vector<sim::OpID, ArenaAllocator<sim::OpID>> copy_ops(scratch_ops);

  reqs.reserve(launch.requirements.size());
  for (const RegionReq& rr : launch.requirements)
    reqs.push_back(Requirement{rr.region, rr.field, rr.privilege});

  // Resolve field infos once, in requirement order: the require fires
  // deterministically before any fan-out, and the shard bodies below
  // reach their per-field InstanceMaps without a hash lookup.
  std::vector<FieldInfo*> finfos(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    auto fit = field_info_.find(reqs[i].field);
    require(fit != field_info_.end(), "launch uses an unregistered field");
    finfos[i] = &fit->second;
  }

  // Group requirement indices by field, first-occurrence order.  Engine
  // and instance state is strictly per field, so groups analyze
  // concurrently on the executor; within a group, program order is
  // preserved.  The work-graph/dep-graph combine below runs sequentially
  // in requirement order, so the emitted graphs are identical at any
  // thread count.
  std::vector<std::vector<std::size_t>> field_groups;
  {
    std::unordered_map<FieldID, std::size_t> group_of;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      auto [it, fresh] = group_of.emplace(reqs[i].field, field_groups.size());
      if (fresh) field_groups.emplace_back();
      field_groups[it->second].push_back(i);
    }
  }
  // One shard task per kGroupGrain field groups (shard_batch overrides
  // the grain): the common one/two-field launch runs inline instead of
  // paying a fork/join per field — within-launch parallelism then comes
  // from the engines' inner scans.  Bodies touch only per-field engine +
  // instance state, so batching groups into one shard adds no sharing.
  static constexpr std::size_t kGroupGrain = 2;
  auto for_each_group = [&](const std::function<void(std::size_t)>& body) {
    sharded_for(executor_.get(), field_groups.size(), kGroupGrain,
                config_.shard_batch,
                [&](std::size_t, std::size_t gb, std::size_t ge) {
                  for (std::size_t g = gb; g < ge; ++g) body(g);
                });
  };

  const double analysis_wall_before = analysis_wall_s_;
  const auto materialize_start = std::chrono::steady_clock::now();
  std::vector<MaterializeResult> mrs(reqs.size());
  std::vector<std::vector<CopyPlan>> plans(reqs.size());
  // Self-time attribution of the fan-out: wall around the fork/join minus
  // the phase time the engines record inside the forked bodies.  What is
  // left is the dispatch/join glue (queue wakeups, idle join waits,
  // recorder span overhead) -- the executor's own serialization cost.
  const std::uint64_t mat_begin =
      profiler_.enabled() ? obs::prof_now_ns() : 0;
  const std::uint64_t mat_inner = profiler_.phase_ns_snapshot();
  for_each_group([&](std::size_t g) {
    for (std::size_t i : field_groups[g]) {
      // The span watches mrs[i].steps, which the engine fills inside the
      // scope: the span's counters are the sum over the requirement's
      // steps.  Worker-side spans nest under the launch span via the hint.
      obs::ScopedSpan span(&recorder_, obs::SpanKind::Materialize,
                           "materialize", id, analysis_node, nullptr,
                           &mrs[i].steps, launch_span.id());
      mrs[i] = engine_->materialize(reqs[i], ctx);
    }
    // Copy planning is per-field InstanceMap work — the bulk of what the
    // old emit_graph serial section paid.  It rides the same shard as the
    // materialize: group order preserves the per-field plan_read order,
    // so validity evolution and the planned copies match the sequential
    // schedule exactly.
    for (std::size_t i : field_groups[g]) {
      if (reqs[i].privilege.is_reduce()) continue;
      obs::ScopedPhase plan_phase(&profiler_, obs::PhaseKind::ShardScan,
                                  "runtime/plan_copies");
      plans[i] = finfos[i]->instances.plan_read(
          launch.mapped_node, forest_.domain(reqs[i].region));
    }
  });
  if (profiler_.enabled()) {
    const std::uint64_t wall = obs::prof_now_ns() - mat_begin;
    const std::uint64_t inner = profiler_.phase_ns_snapshot() - mat_inner;
    profiler_.phase(obs::PhaseKind::Other, "runtime/materialize_fanout",
                    wall > inner ? wall - inner : 0);
  }

  // Provenance installation is its own attribution phase: a serial pass
  // over every emitted edge, separated from the graph-emission loop below
  // so the profiler never double-counts the two.
  if (obs::kProvenanceEnabled && config_.provenance) {
    obs::ScopedPhase prov_phase(&profiler_, obs::PhaseKind::Provenance,
                                "runtime/install_provenance");
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      // Engines leave the engine byte unset (they cannot name themselves
      // without a layering inversion); stamp it here, then install with
      // first-record-wins semantics.
      for (obs::EdgeProvenance& p : mrs[i].provenance) {
        p.engine = static_cast<std::uint8_t>(config_.algorithm);
        deps_.set_provenance(p.from, id, p);
      }
    }
  }

  const std::uint64_t emit_begin =
      profiler_.enabled() ? obs::prof_now_ns() : 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const Requirement& req = reqs[i];
    MaterializeResult& mr = mrs[i];
    record_launch_telemetry(id, launch.name, mr.steps);
    for (LaunchID d : mr.dependences) add_dependence(all_deps, d);
    // Under trace replay the analysis result is memoized: the engine still
    // runs (semantics stay exact and its state advances) but no analysis
    // work or messages are charged to the machine.
    std::vector<sim::OpID> req_tails =
        replay ? std::vector<sim::OpID>{issue}
               : emit_steps(mr.steps, analysis_node, issue, id);
    phys.emplace_back(req, std::move(mr.data));

    // Data movement: reads and read-writes need the current version at the
    // mapped node; reductions accumulate locally into a fresh buffer.
    // Copies (planned per field inside the fan-out above) start once this
    // requirement's analysis and the producing tasks (its dependences)
    // have finished.
    if (!req.privilege.is_reduce()) {
      std::vector<sim::OpID> copy_deps = req_tails;
      SimTime copy_floor = 0;
      for (LaunchID d : mr.dependences) {
        sim::OpID e = exec_of(d);
        if (e == sim::kFrozenOp)
          copy_floor = std::max(copy_floor, exec_finish_[d - launch_base_]);
        else if (e != sim::kInvalidOp)
          copy_deps.push_back(e);
      }
      for (const CopyPlan& plan : plans[i]) {
        std::uint64_t bytes =
            static_cast<std::uint64_t>(plan.points.volume()) * kElementBytes;
        sim::OpID copy = graph_.message(
            plan.src, plan.dst, bytes, copy_deps,
            plan.kind == CopyPlan::Kind::Copy ? sim::OpCategory::Copy
                                              : sim::OpCategory::Reduction,
            copy_floor);
        copy_ops.push_back(copy);
        if (obs::kProvenanceEnabled && msg_ledger_.enabled()) {
          msg_ledger_.record(sim::MessageRecord{
              id, plan.src, plan.dst, bytes,
              plan.kind == CopyPlan::Kind::Copy ? sim::MessageKind::Copy
                                                : sim::MessageKind::Reduction,
              kNoEqSetID});
        }
      }
    }
    analysis_tails.insert(analysis_tails.end(), req_tails.begin(),
                          req_tails.end());
  }
  if (profiler_.enabled()) {
    // The emit loop is the canonical-order combine: per-requirement
    // engine results and pre-planned copies fold into the dependence and
    // work graphs sequentially in requirement order — the determinism
    // contract's mandatory serial section, now free of InstanceMap work.
    profiler_.phase(obs::PhaseKind::Combine, "runtime/emit_graph",
                    obs::prof_now_ns() - emit_begin);
  }
  analysis_wall_s_ += seconds_since(materialize_start);

  if (config_.record_launches)
    launch_log_.push_back(LaunchRecord{reqs, launch.mapped_node});

  // Dependence edges (program-order semantics) into both the dependence
  // graph and the work graph.
  deps_.add_edges(id, all_deps);
  auto exec_deps = analysis_tails; // arena-backed copy, same scratch arena
  SimTime exec_floor = 0;
  for (sim::OpID c : copy_ops) exec_deps.push_back(c);
  for (LaunchID d : all_deps) {
    sim::OpID e = exec_of(d);
    if (e == sim::kFrozenOp)
      exec_floor = std::max(exec_floor, exec_finish_[d - launch_base_]);
    else if (e != sim::kInvalidOp)
      exec_deps.push_back(e);
  }
  SimTime exec_cost = config_.costs.task_launch_ns +
                      config_.costs.task_element_ns *
                          static_cast<SimTime>(launch.work_items);
  sim::OpID exec = graph_.compute(launch.mapped_node, exec_cost, exec_deps,
                                  sim::OpCategory::TaskExec, exec_floor);
  exec_op_[id - launch_base_] = exec;
  current_iteration_execs_.push_back(exec);

  // Execute the task body for real.
  if (config_.track_values && launch.fn) {
    TaskContext tc(id, phys);
    launch.fn(tc);
  }

  // Commit results and update instance validity.  Commit messages are
  // asynchronous too; the iteration marker (not the next launch) joins
  // them.  Commits shard by field like materializes, and the instance-map
  // validity updates ride the same shard (per-field order is requirement
  // order, identical to the sequential schedule); only work-graph
  // emission stays sequential in requirement order.
  const auto commit_start = std::chrono::steady_clock::now();
  std::vector<std::vector<AnalysisStep>> commit_steps(reqs.size());
  const std::uint64_t com_begin =
      profiler_.enabled() ? obs::prof_now_ns() : 0;
  const std::uint64_t com_inner = profiler_.phase_ns_snapshot();
  for_each_group([&](std::size_t g) {
    for (std::size_t i : field_groups[g]) {
      obs::ScopedSpan span(&recorder_, obs::SpanKind::Commit, "commit", id,
                           analysis_node, nullptr, &commit_steps[i],
                           launch_span.id());
      commit_steps[i] = engine_->commit(reqs[i], phys[i].data(), ctx);
    }
    for (std::size_t i : field_groups[g]) {
      const Requirement& req = reqs[i];
      if (req.privilege.is_write()) {
        obs::ScopedPhase apply_phase(&profiler_, obs::PhaseKind::ShardScan,
                                     "runtime/apply_instances");
        finfos[i]->instances.record_write(launch.mapped_node,
                                          forest_.domain(req.region));
      } else if (req.privilege.is_reduce()) {
        obs::ScopedPhase apply_phase(&profiler_, obs::PhaseKind::ShardScan,
                                     "runtime/apply_instances");
        finfos[i]->instances.record_reduction(launch.mapped_node,
                                              forest_.domain(req.region),
                                              req.privilege.redop);
      }
    }
  });
  if (profiler_.enabled()) {
    const std::uint64_t wall = obs::prof_now_ns() - com_begin;
    const std::uint64_t inner = profiler_.phase_ns_snapshot() - com_inner;
    profiler_.phase(obs::PhaseKind::Other, "runtime/commit_fanout",
                    wall > inner ? wall - inner : 0);
  }
  const std::uint64_t commit_emit_begin =
      profiler_.enabled() ? obs::prof_now_ns() : 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    std::vector<AnalysisStep>& steps = commit_steps[i];
    record_launch_telemetry(id, launch.name, steps);
    if (!replay) {
      std::vector<sim::OpID> commit_tails =
          emit_steps(steps, analysis_node, exec, id);
      current_iteration_execs_.insert(current_iteration_execs_.end(),
                                      commit_tails.begin(),
                                      commit_tails.end());
    }
  }
  if (profiler_.enabled()) {
    profiler_.phase(obs::PhaseKind::Combine, "runtime/emit_commit",
                    obs::prof_now_ns() - commit_emit_begin);
  }
  analysis_wall_s_ += seconds_since(commit_start);
  if (config_.launch_latency != nullptr) {
    config_.launch_latency->record(static_cast<std::uint64_t>(
        (analysis_wall_s_ - analysis_wall_before) * 1e9));
  }
  // Program order on the analyzing node is the issue chain alone; the
  // remote analysis traffic of one launch overlaps the next launch's
  // analysis, as in Legion's asynchronous runtime.
  issue_tail_[analysis_node] = issue;
  ++launches_this_iteration_;
  sample_series(id);
  return id;
}

void Runtime::record_launch_telemetry(LaunchID id, const std::string& name,
                                      std::span<const AnalysisStep> steps) {
  if (!recorder_.enabled()) return;
  if (launch_names_.size() <= id) {
    launch_names_.resize(id + 1);
    launch_counters_.resize(id + 1);
  }
  launch_names_[id] = name;
  for (const AnalysisStep& step : steps)
    launch_counters_[id] += step.counters;
}

void Runtime::sample_series(LaunchID id) {
  if (!recorder_.enabled()) return;
  EngineStats es = engine_->stats();
  recorder_.sample(recorder_.series_id("live_eqsets"), id,
                   static_cast<double>(es.live_eqsets));
  recorder_.sample(recorder_.series_id("live_composite_views"), id,
                   static_cast<double>(es.live_composite_views));
  recorder_.sample(recorder_.series_id("history_entries"), id,
                   static_cast<double>(es.history_entries));
  recorder_.sample(recorder_.series_id("messages_total"), id,
                   static_cast<double>(graph_.message_count()));
  for (NodeID n = 0; n < config_.machine.num_nodes; ++n) {
    recorder_.sample(
        recorder_.series_id("analysis_busy_ns/node" + std::to_string(n)), id,
        static_cast<double>(analysis_busy_ns_[n]));
  }
}

std::vector<LaunchID> Runtime::index_launch(const IndexLaunch& launch) {
  require(!launch.requirements.empty(),
          "an index launch needs at least one region requirement");
  std::size_t colors = forest_.partition_size(launch.requirements[0].partition);
  for (const IndexReq& req : launch.requirements) {
    require(forest_.partition_size(req.partition) == colors,
            "index launch partitions must have matching color counts");
  }
  std::vector<LaunchID> ids;
  ids.reserve(colors);
  for (std::size_t color = 0; color < colors; ++color) {
    TaskLaunch point;
    point.name = launch.name;
    for (const IndexReq& req : launch.requirements) {
      point.requirements.push_back(RegionReq{
          forest_.subregion(req.partition, color), req.field,
          req.privilege});
    }
    point.mapped_node =
        launch.mapping
            ? launch.mapping(color)
            : static_cast<NodeID>(color % config_.machine.num_nodes);
    point.work_items = launch.work_items;
    if (launch.fn) {
      auto fn = launch.fn;
      point.fn = [fn, color](TaskContext& ctx) { fn(ctx, color); };
    }
    ids.push_back(this->launch(std::move(point)));
  }
  return ids;
}

void Runtime::begin_trace(std::uint32_t id) {
  if (!config_.enable_tracing) return;
  require(active_trace_ == nullptr, "traces cannot nest");
  TraceState& tr = traces_[id];
  active_trace_ = &tr;
  tr.cursor = 0;
  replaying_ = tr.phase == TraceState::Phase::Ready;
}

void Runtime::end_trace() {
  if (!config_.enable_tracing) return;
  require(active_trace_ != nullptr, "end_trace without begin_trace");
  TraceState& tr = *active_trace_;
  if (replaying_) {
    // A replay that ended early saw a shorter sequence: stale template.
    if (tr.cursor != tr.entries.size())
      tr.phase = TraceState::Phase::Invalid;
  } else if (tr.phase == TraceState::Phase::Capturing) {
    tr.phase = TraceState::Phase::Ready;
  }
  active_trace_ = nullptr;
  replaying_ = false;
}

void Runtime::end_iteration() {
  // Under DCR every shard enumerates the full launch stream of the
  // iteration; charge that enumeration on every node's analysis chain.
  if (config_.dcr && launches_this_iteration_ > 0) {
    SimTime cost = config_.costs.dcr_stream_ns *
                   static_cast<SimTime>(launches_this_iteration_);
    for (NodeID n = 0; n < config_.machine.num_nodes; ++n) {
      std::vector<sim::OpID> deps;
      SimTime floor = 0;
      if (issue_tail_[n] == sim::kFrozenOp)
        floor = issue_tail_finish_[n];
      else if (issue_tail_[n] != sim::kInvalidOp)
        deps.push_back(issue_tail_[n]);
      issue_tail_[n] =
          graph_.compute(n, cost, deps, sim::OpCategory::Runtime, floor);
      current_iteration_execs_.push_back(issue_tail_[n]);
    }
  }
  launches_this_iteration_ = 0;
  std::vector<sim::OpID> deps = std::move(current_iteration_execs_);
  current_iteration_execs_.clear();
  // Retired current-iteration ops and a retired previous marker join
  // through the readiness floor instead of dependence edges.
  SimTime floor = iteration_floor_;
  iteration_floor_ = 0;
  if (last_marker_ == sim::kFrozenOp)
    floor = std::max(floor, last_marker_finish_);
  else if (last_marker_ != sim::kInvalidOp)
    deps.push_back(last_marker_);
  sim::OpID marker = graph_.marker(0, deps, floor);
  ++iteration_count_;
  if (first_marker_ == sim::kInvalidOp) first_marker_ = marker;
  last_marker_ = marker;
}

RegionData<double> Runtime::observe(RegionHandle region, FieldID field) {
  require(config_.track_values, "observe requires value tracking");
  LaunchID id = next_launch_++;
  deps_.add_task(id);
  exec_op_.push_back(sim::kInvalidOp);
  exec_start_.push_back(0);
  exec_finish_.push_back(0);
  AnalysisContext ctx{id, 0, 0};
  Requirement req{region, field, Privilege::read()};
  if (config_.record_launches)
    launch_log_.push_back(LaunchRecord{{req}, 0});
  MaterializeResult mr = engine_->materialize(req, ctx);
  deps_.add_edges(id, mr.dependences);
  if (obs::kProvenanceEnabled && config_.provenance) {
    for (obs::EdgeProvenance& p : mr.provenance) {
      p.engine = static_cast<std::uint8_t>(config_.algorithm);
      deps_.set_provenance(p.from, id, p);
    }
  }
  engine_->commit(req, mr.data, ctx);
  return std::move(mr.data);
}

std::string Runtime::profile_json() const {
  const auto wall_ns =
      static_cast<std::uint64_t>(analysis_wall_s_ * 1e9);
  const unsigned threads = executor_ != nullptr ? executor_->lanes() : 1;
  return profiler_.json(wall_ns, threads);
}

std::vector<std::uint64_t> Runtime::messages_by_node() const {
  // Running per-source totals survive work-graph retirement.
  std::vector<std::uint64_t> counts(config_.machine.num_nodes, 0);
  std::span<const std::size_t> by_src = graph_.messages_by_src();
  for (NodeID n = 0; n < counts.size() && n < by_src.size(); ++n)
    counts[n] = by_src[n];
  return counts;
}

sim::OpID Runtime::exec_of(LaunchID id) const {
  invariant(id >= launch_base_ && id < next_launch_,
            "launch is not resident");
  return exec_op_[id - launch_base_];
}

SimTime Runtime::frozen_exec_start(LaunchID id) const {
  invariant(exec_of(id) == sim::kFrozenOp,
            "launch's execution op was not frozen");
  return exec_start_[id - launch_base_];
}

SimTime Runtime::frozen_exec_finish(LaunchID id) const {
  invariant(exec_of(id) == sim::kFrozenOp,
            "launch's execution op was not frozen");
  return exec_finish_[id - launch_base_];
}

sim::ReplayResult Runtime::replay_graph() const {
  return sim::replay(graph_, config_.machine, &ckpt_);
}

std::uint64_t Runtime::schedule_hash() const {
  std::uint64_t h = sched_hash_;
  if (sched_frontier_ == next_launch_) return h;
  sim::ReplayResult r = replay_graph();
  for (LaunchID id = sched_frontier_; id < next_launch_; ++id) {
    const std::size_t slot = id - launch_base_;
    sim::OpID e = exec_op_[slot];
    std::uint64_t v;
    if (e == sim::kInvalidOp)
      v = ~0ULL;
    else if (e == sim::kFrozenOp)
      // Frozen past the frontier: launches freeze out of launch order
      // (exec readiness is not monotone in launch id), so a frozen
      // window can sit beyond a still-live earlier launch.
      v = static_cast<std::uint64_t>(exec_finish_[slot]);
    else
      v = static_cast<std::uint64_t>(r.finish_of(e));
    h = fnv1a_u64(h, v);
  }
  return h;
}

RetireStats Runtime::retire(std::size_t max_dead_eqsets) {
  RetireStats out;

  // ---- Work-graph freeze.  Retire the pop-order prefix of the DES
  // schedule: every resident op whose readiness lies strictly below the
  // future floor, the earliest time any not-yet-emitted op can become
  // ready (every future op transitively waits on its launch's issue op,
  // so the issue tails bound it — frozen tails keep bounding it through
  // their recorded finishes, which new issue ops inherit as floors).
  //
  // Under the earliest-ready-then-id policy those ops pop — and acquire
  // resources — strictly before every other resident or future op, so
  // their start and finish times are final, and the resource state after
  // exactly those pops is a valid checkpoint for replaying the
  // survivors.  The set is dependence-closed for free: a dependence
  // finishes before its user becomes ready, and an op's readiness never
  // precedes its own.  An id-prefix cut would avoid remapping op ids,
  // but wedges permanently on pipelined streams: the issue chain runs
  // ahead of the backlogged analysis it feeds, so late issue ops forever
  // become ready before early analysis ops finish.
  const sim::OpID old_base = graph_.base();
  if (graph_.size() > old_base) {
    sim::ReplayResult r = sim::replay(graph_, config_.machine, &ckpt_);

    SimTime future_floor = std::numeric_limits<SimTime>::max();
    const NodeID relevant = config_.dcr ? config_.machine.num_nodes : 1;
    for (NodeID n = 0; n < relevant; ++n) {
      SimTime t = 0;
      if (issue_tail_[n] == sim::kFrozenOp)
        t = issue_tail_finish_[n];
      else if (issue_tail_[n] != sim::kInvalidOp)
        t = r.finish_of(issue_tail_[n]);
      future_floor = std::min(future_floor, t);
    }

    std::size_t retiring_count = 0;
    for (SimTime t : r.ready)
      if (t < future_floor) ++retiring_count;

    if (retiring_count != 0) {
      auto retiring = [&](sim::OpID t) {
        return t != sim::kInvalidOp && t != sim::kFrozenOp &&
               r.ready_of(t) < future_floor;
      };
      // Freeze persistent references whose ops are about to retire.
      for (NodeID n = 0; n < config_.machine.num_nodes; ++n) {
        if (retiring(issue_tail_[n])) {
          issue_tail_finish_[n] = r.finish_of(issue_tail_[n]);
          issue_tail_[n] = sim::kFrozenOp;
        }
      }
      if (retiring(last_marker_)) {
        last_marker_finish_ = r.finish_of(last_marker_);
        last_marker_ = sim::kFrozenOp;
      }
      if (retiring(first_marker_)) {
        first_marker_finish_ = r.finish_of(first_marker_);
        first_marker_ = sim::kFrozenOp;
      }
      std::size_t keep = 0;
      for (sim::OpID opid : current_iteration_execs_) {
        if (retiring(opid))
          iteration_floor_ = std::max(iteration_floor_, r.finish_of(opid));
        else
          current_iteration_execs_[keep++] = opid;
      }
      current_iteration_execs_.resize(keep);

      // Freeze launch execution windows.  Exec readiness is not monotone
      // in launch id (independent launches execute on different nodes),
      // so launches can freeze out of order; the schedule frontier below
      // folds them into the rolling hash strictly in launch order and
      // stops at the first still-live launch.
      for (LaunchID id = sched_frontier_; id < next_launch_; ++id) {
        const std::size_t slot = id - launch_base_;
        sim::OpID e = exec_op_[slot];
        if (!retiring(e)) continue;
        SimTime fin = r.finish_of(e);
        exec_finish_[slot] = fin;
        exec_start_[slot] = fin - graph_.op(e).cost;
        exec_op_[slot] = sim::kFrozenOp;
      }
      while (sched_frontier_ < next_launch_) {
        const std::size_t slot = sched_frontier_ - launch_base_;
        sim::OpID e = exec_op_[slot];
        if (e == sim::kInvalidOp)
          sched_hash_ = fnv1a_u64(sched_hash_, ~0ULL);
        else if (e == sim::kFrozenOp)
          sched_hash_ = fnv1a_u64(
              sched_hash_, static_cast<std::uint64_t>(exec_finish_[slot]));
        else
          break;
        ++sched_frontier_;
      }

      // Second pass: capture the resource state the retiring pop-prefix
      // leaves behind, then drop the records and remap every surviving
      // reference (compaction shifts the survivors' ids).
      sim::ReplayCheckpoint next_ckpt;
      sim::replay_split(graph_, config_.machine, &ckpt_, future_floor,
                        next_ckpt);
      std::vector<sim::OpID> remap;
      out.retired_ops =
          graph_.retire_ready_before(r.ready, future_floor, r.finish, remap);
      invariant(out.retired_ops == retiring_count,
                "retirement dropped a different op set than it froze");
      ckpt_ = std::move(next_ckpt);
      auto remap_ref = [&](sim::OpID& t) {
        if (t != sim::kInvalidOp && t != sim::kFrozenOp)
          t = remap[t - old_base];
      };
      for (sim::OpID& t : exec_op_) remap_ref(t);
      for (sim::OpID& t : issue_tail_) remap_ref(t);
      for (sim::OpID& t : current_iteration_execs_) remap_ref(t);
      remap_ref(last_marker_);
      remap_ref(first_marker_);
    }
  }

  // ---- Launch retirement.  The engine watermark bounds every future
  // dependence source from below; the schedule frontier guarantees the
  // retired launches' finishes are already folded into sched_hash_.
  LaunchID watermark = engine_->retire_watermark();
  if (watermark == kInvalidLaunch) watermark = next_launch_;
  LaunchID new_base = std::min(watermark, sched_frontier_);
  if (new_base > launch_base_) {
    deps_.retire_prefix(new_base);
    const auto drop = static_cast<std::ptrdiff_t>(new_base - launch_base_);
    exec_op_.erase(exec_op_.begin(), exec_op_.begin() + drop);
    exec_start_.erase(exec_start_.begin(), exec_start_.begin() + drop);
    exec_finish_.erase(exec_finish_.begin(), exec_finish_.begin() + drop);
    if (!launch_log_.empty())
      launch_log_.erase(launch_log_.begin(), launch_log_.begin() + drop);
    out.retired_launches = new_base - launch_base_;
    launch_base_ = new_base;
  }

  // ---- Engine-side husk compaction.
  out.eqset_slots_reclaimed = engine_->compact_husks(max_dead_eqsets);
  out.launch_base = launch_base_;
  out.op_base = graph_.base();
  return out;
}

void Runtime::export_chrome_trace(std::ostream& os) const {
  sim::ReplayResult r = replay_graph();
  if (!recorder_.enabled() && lifecycle_.event_count() == 0) {
    sim::export_chrome_trace(graph_, r, config_.machine, os);
    return;
  }

  // Resolve a launch to its live (resident, unfrozen) exec op, or
  // kInvalidOp: retired work has no slice to attach to.
  auto live_exec = [&](LaunchID id) -> sim::OpID {
    if (id == kInvalidLaunch || id < launch_base_ || id >= next_launch_)
      return sim::kInvalidOp;
    sim::OpID e = exec_op_[id - launch_base_];
    return e == sim::kFrozenOp ? sim::kInvalidOp : e;
  };

  sim::TraceEnrichment enrich;
  // Flow arrows for dependence edges: producer execution -> consumer
  // execution.
  for (LaunchID id = launch_base_; id < next_launch_; ++id) {
    if (live_exec(id) == sim::kInvalidOp) continue;
    for (LaunchID p : deps_.preds(id)) {
      if (live_exec(p) != sim::kInvalidOp)
        enrich.flows.push_back(
            sim::TraceFlow{live_exec(p), live_exec(id), "dep"});
    }
  }
  // Flow arrows for analysis messages: the op that triggered the send ->
  // the message's slice on the destination NIC.
  for (sim::OpID id = graph_.base(); id < graph_.size(); ++id) {
    const sim::Op& op = graph_.op(id);
    if (op.kind != sim::OpKind::Message ||
        op.category != static_cast<std::uint8_t>(sim::OpCategory::Analysis))
      continue;
    std::span<const sim::OpID> d = graph_.deps(id);
    if (!d.empty())
      enrich.flows.push_back(sim::TraceFlow{d.front(), id, "analysis_msg"});
  }
  // Counter tracks: each retained sample anchored at its launch's task
  // execution (sim time is only known post-replay, so the exec op's finish
  // provides the timestamp).
  for (std::size_t sid = 0; sid < recorder_.series_count(); ++sid) {
    const obs::CounterSeries& cs = recorder_.series(sid);
    sim::TraceCounterTrack track;
    track.name = cs.name();
    track.pid = 0;
    for (std::size_t i = 0; i < cs.size(); ++i) {
      const obs::SeriesSample& s = cs.at(i);
      if (live_exec(s.launch) != sim::kInvalidOp)
        track.samples.emplace_back(live_exec(s.launch), s.value);
    }
    enrich.counters.push_back(std::move(track));
  }
  // Lifecycle counter tracks: per-field live eq-set population and
  // refinement depth over the launch clock, anchored like the series above.
  for (FieldID f : lifecycle_.fields()) {
    sim::TraceCounterTrack live, depth;
    live.name = "lifecycle/live_eqsets/field" + std::to_string(f);
    depth.name = "lifecycle/depth/field" + std::to_string(f);
    live.pid = depth.pid = 0;
    for (const obs::LifecycleEvent& ev : lifecycle_.events(f)) {
      if (live_exec(ev.launch) == sim::kInvalidOp) continue;
      live.samples.emplace_back(live_exec(ev.launch),
                                static_cast<double>(ev.live_after));
      depth.samples.emplace_back(live_exec(ev.launch),
                                 static_cast<double>(ev.depth));
    }
    if (!live.samples.empty()) {
      enrich.counters.push_back(std::move(live));
      enrich.counters.push_back(std::move(depth));
    }
  }
  // Per-launch args on the execution slices: task name plus the launch's
  // aggregated analysis counters.
  for (LaunchID id = launch_base_;
       id < next_launch_ && id < launch_names_.size(); ++id) {
    if (live_exec(id) == sim::kInvalidOp) continue;
    std::ostringstream args;
    args << "\"launch\":" << id << ",\"task\":\""
         << obs::json_escape(launch_names_[id]) << "\"";
    for_each_counter(launch_counters_[id],
                     [&](const char* name, std::uint64_t value) {
                       if (value != 0) args << ",\"" << name << "\":" << value;
                     });
    enrich.op_args.emplace(live_exec(id), args.str());
  }
  sim::export_chrome_trace(graph_, r, config_.machine, os, &enrich);
}

RunStats Runtime::finish() {
  if (!current_iteration_execs_.empty() || iteration_floor_ > 0 ||
      launches_this_iteration_ > 0)
    end_iteration();
  return stats();
}

RunStats Runtime::stats() const {
  sim::ReplayResult r = replay_graph();

  RunStats stats;
  stats.launches = next_launch_;
  stats.iterations = iteration_count_;
  stats.dep_edges = deps_.edge_count();
  stats.critical_path = deps_.critical_path();
  stats.messages = graph_.message_count();
  stats.message_bytes = graph_.total_message_bytes();
  stats.analysis_cpu_s =
      static_cast<double>(graph_.total_cost(sim::OpCategory::Analysis)) * 1e-9;
  stats.analysis_wall_s = analysis_wall_s_;
  stats.engine = engine_->stats();
  stats.total_time_s = static_cast<double>(r.makespan) * 1e-9;
  if (iteration_count_ > 0) {
    SimTime first_fin = first_marker_ == sim::kFrozenOp
                            ? first_marker_finish_
                            : r.finish_of(first_marker_);
    stats.init_time_s = static_cast<double>(first_fin) * 1e-9;
    if (iteration_count_ > 1) {
      SimTime last_fin = last_marker_ == sim::kFrozenOp
                             ? last_marker_finish_
                             : r.finish_of(last_marker_);
      stats.steady_iter_s = static_cast<double>(last_fin - first_fin) *
                            1e-9 /
                            static_cast<double>(iteration_count_ - 1);
    }
  }
  return stats;
}

} // namespace visrt
