#include "runtime/runtime.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <sstream>

#include "common/check.h"
#include "obs/metrics.h"
#include "sim/trace_export.h"
#include "visibility/history.h"

namespace visrt {

namespace {
/// Metadata request size for a remote analysis step.
constexpr std::uint64_t kRequestBytes = 128;
/// Bytes per field element moved by the copy engine.
constexpr std::uint64_t kElementBytes = 8;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
} // namespace

Runtime::Runtime(RuntimeConfig config) : config_(std::move(config)) {
  config_.machine.validate();
  if (config_.telemetry) {
    recorder_.set_series_capacity(config_.telemetry_series_capacity);
    recorder_.enable();
  }
  if (obs::kProvenanceEnabled && config_.provenance) {
    lifecycle_.enable();
    msg_ledger_.enable(config_.machine.num_nodes);
  }
  // Enabled before the executor exists so worker threads only ever see
  // the profiler in its final state.
  if (obs::kProfileEnabled && config_.profile) {
    profiler_.enable();
    profiler_.add_lock("recorder.series", &recorder_.series_mutex());
  }
  // The Reference engine is the sequential oracle every other mode is
  // checked against; it never runs on the pool.
  if (config_.analysis_threads > 1 &&
      config_.algorithm != Algorithm::Reference) {
    executor_ = std::make_unique<Executor>(config_.analysis_threads,
                                           &profiler_);
    if (obs::kProfileEnabled && config_.profile)
      profiler_.add_lock("executor.queue", &executor_->queue_mutex());
  }
  EngineConfig ec;
  ec.track_values = config_.track_values;
  ec.tuning = config_.tuning;
  ec.forest = &forest_;
  ec.recorder = &recorder_;
  ec.profiler = &profiler_;
  ec.executor = executor_.get();
  ec.provenance = obs::kProvenanceEnabled && config_.provenance;
  ec.lifecycle = ec.provenance ? &lifecycle_ : nullptr;
  engine_ = make_engine(config_.algorithm, ec);
  issue_tail_.assign(config_.machine.num_nodes, sim::kInvalidOp);
  analysis_busy_ns_.assign(config_.machine.num_nodes, 0);
}

RegionHandle Runtime::create_region(IntervalSet domain, std::string name) {
  return forest_.create_root(std::move(domain), std::move(name));
}

PartitionHandle Runtime::create_partition(RegionHandle parent,
                                          std::vector<IntervalSet> subspaces,
                                          std::string name) {
  return forest_.create_partition(parent, std::move(subspaces),
                                  std::move(name));
}

PartitionHandle Runtime::create_partition(RegionHandle parent,
                                          std::vector<IntervalSet> subspaces,
                                          std::string name,
                                          PartitionClaim claim) {
  return forest_.create_partition(parent, std::move(subspaces),
                                  std::move(name), claim);
}

RegionHandle Runtime::subregion(PartitionHandle partition,
                                std::size_t color) const {
  return forest_.subregion(partition, color);
}

FieldID Runtime::add_field(RegionHandle root, std::string name,
                           double initial) {
  return add_field(root, std::move(name),
                   [initial](coord_t) { return initial; });
}

FieldID Runtime::add_field(RegionHandle root, std::string name,
                           const std::function<double(coord_t)>& init) {
  require(forest_.is_root(root), "fields are registered on root regions");
  FieldID field = next_field_++;
  RegionData<double> data;
  if (config_.track_values) {
    data = RegionData<double>::generate(forest_.domain(root), init);
  }
  engine_->initialize_field(root, field, std::move(data), /*home=*/0);
  field_info_.emplace(
      field, FieldInfo{root, std::move(name),
                       InstanceMap(config_.machine.num_nodes, 0,
                                   forest_.domain(root))});
  return field;
}

std::vector<sim::OpID> Runtime::emit_steps(
    std::span<const AnalysisStep> steps, NodeID analysis_node,
    sim::OpID head, LaunchID launch) {
  // Local steps chain on the analyzing node; remote steps are issued
  // concurrently (one request/compute/response round trip per metadata
  // owner — Legion sends per-owner messages asynchronously and only the
  // task execution waits for all of them).
  std::vector<sim::OpID> tails;
  sim::OpID local_tail = head;
  for (const AnalysisStep& step : steps) {
    SimTime cost = step.counters.cpu_ns(config_.costs);
    analysis_busy_ns_[step.owner] += cost;
    if (step.owner == analysis_node) {
      std::vector<sim::OpID> deps;
      if (local_tail != sim::kInvalidOp) deps.push_back(local_tail);
      local_tail = graph_.compute(analysis_node, cost, deps,
                                  sim::OpCategory::Analysis);
      continue;
    }
    std::vector<sim::OpID> deps;
    if (head != sim::kInvalidOp) deps.push_back(head);
    sim::OpID request = graph_.message(analysis_node, step.owner,
                                       kRequestBytes, deps,
                                       sim::OpCategory::Analysis);
    sim::OpID remote =
        graph_.compute(step.owner, cost, std::array{request},
                       sim::OpCategory::Analysis);
    tails.push_back(graph_.message(step.owner, analysis_node,
                                   kRequestBytes + step.meta_bytes,
                                   std::array{remote},
                                   sim::OpCategory::Analysis));
    if (obs::kProvenanceEnabled && msg_ledger_.enabled()) {
      msg_ledger_.record(sim::MessageRecord{
          launch, analysis_node, step.owner, kRequestBytes,
          sim::MessageKind::AnalysisRequest, step.eqset});
      msg_ledger_.record(sim::MessageRecord{
          launch, step.owner, analysis_node, kRequestBytes + step.meta_bytes,
          sim::MessageKind::AnalysisResponse, step.eqset});
    }
  }
  if (local_tail != sim::kInvalidOp) tails.push_back(local_tail);
  return tails;
}

LaunchID Runtime::launch(TaskLaunch launch) {
  require(!launch.requirements.empty(), "a task needs at least one region");
  require(launch.mapped_node < config_.machine.num_nodes,
          "task mapped to a nonexistent node");
  LaunchID id = next_launch_++;
  deps_.add_task(id);
  exec_op_.push_back(sim::kInvalidOp);

  NodeID analysis_node = config_.dcr ? launch.mapped_node : 0;
  AnalysisContext ctx{id, launch.mapped_node, analysis_node};
  obs::ScopedSpan launch_span(&recorder_, obs::SpanKind::Launch, launch.name,
                              id, analysis_node);

  // Tracing: record the launch fingerprint while capturing; verify it
  // while replaying.  Any mismatch invalidates the template and falls
  // back to full analysis, as Legion's tracing does.
  bool replay = false;
  if (active_trace_ != nullptr) {
    if (replaying_) {
      TraceState& tr = *active_trace_;
      if (tr.cursor < tr.entries.size() &&
          tr.entries[tr.cursor].requirements == launch.requirements &&
          tr.entries[tr.cursor].mapped_node == launch.mapped_node) {
        ++tr.cursor;
        replay = true;
        ++traced_launches_;
      } else {
        tr.phase = TraceState::Phase::Invalid;
        replaying_ = false;
      }
    } else if (active_trace_->phase == TraceState::Phase::Capturing) {
      active_trace_->entries.push_back(
          TraceEntry{launch.requirements, launch.mapped_node});
    }
  }

  // Launch issue: serialized on the analyzing node in program order (the
  // top-level task enumerates subtasks sequentially; with DCR each shard
  // enumerates only its own).  A traced replay pays only the template
  // lookup.
  SimTime issue_cost =
      replay ? config_.costs.trace_replay_ns
             : config_.costs.requirement_base_ns *
                       static_cast<SimTime>(launch.requirements.size()) +
                   (config_.dcr ? config_.costs.dcr_shard_ns : 0);
  std::vector<sim::OpID> issue_deps;
  if (issue_tail_[analysis_node] != sim::kInvalidOp)
    issue_deps.push_back(issue_tail_[analysis_node]);
  sim::OpID issue = graph_.compute(analysis_node, issue_cost, issue_deps,
                                   sim::OpCategory::Runtime);

  // Analyze every requirement: materialize (dependences + current values)
  // and plan the implicit communication.
  std::vector<Requirement> reqs;
  std::vector<PhysicalRegion> phys;
  std::vector<LaunchID> all_deps;
  std::vector<sim::OpID> analysis_tails;
  std::vector<sim::OpID> copy_ops;

  reqs.reserve(launch.requirements.size());
  for (const RegionReq& rr : launch.requirements)
    reqs.push_back(Requirement{rr.region, rr.field, rr.privilege});

  // Group requirement indices by field, first-occurrence order.  Engine
  // state is strictly per field, so groups materialize/commit concurrently
  // on the executor; within a group, program order is preserved.  The
  // work-graph/dep-graph merge below runs sequentially in requirement
  // order, so the emitted graphs are identical at any thread count.
  std::vector<std::vector<std::size_t>> field_groups;
  {
    std::unordered_map<FieldID, std::size_t> group_of;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      auto [it, fresh] = group_of.emplace(reqs[i].field, field_groups.size());
      if (fresh) field_groups.emplace_back();
      field_groups[it->second].push_back(i);
    }
  }
  auto for_each_group = [&](const std::function<void(std::size_t)>& body) {
    if (executor_ != nullptr && field_groups.size() > 1) {
      executor_->parallel_for(field_groups.size(), body);
    } else {
      for (std::size_t g = 0; g < field_groups.size(); ++g) body(g);
    }
  };

  const auto materialize_start = std::chrono::steady_clock::now();
  std::vector<MaterializeResult> mrs(reqs.size());
  // Self-time attribution of the fan-out: wall around the fork/join minus
  // the phase time the engines record inside the forked bodies.  What is
  // left is the dispatch/join glue (queue wakeups, idle join waits,
  // recorder span overhead) -- the executor's own serialization cost.
  const std::uint64_t mat_begin =
      profiler_.enabled() ? obs::prof_now_ns() : 0;
  const std::uint64_t mat_inner = profiler_.phase_ns_snapshot();
  for_each_group([&](std::size_t g) {
    for (std::size_t i : field_groups[g]) {
      // The span watches mrs[i].steps, which the engine fills inside the
      // scope: the span's counters are the sum over the requirement's
      // steps.  Worker-side spans nest under the launch span via the hint.
      obs::ScopedSpan span(&recorder_, obs::SpanKind::Materialize,
                           "materialize", id, analysis_node, nullptr,
                           &mrs[i].steps, launch_span.id());
      mrs[i] = engine_->materialize(reqs[i], ctx);
    }
  });
  if (profiler_.enabled()) {
    const std::uint64_t wall = obs::prof_now_ns() - mat_begin;
    const std::uint64_t inner = profiler_.phase_ns_snapshot() - mat_inner;
    profiler_.phase(obs::PhaseKind::Other, "runtime/materialize_fanout",
                    wall > inner ? wall - inner : 0);
  }

  // Provenance installation is its own attribution phase: a serial pass
  // over every emitted edge, separated from the graph-emission loop below
  // so the profiler never double-counts the two.
  if (obs::kProvenanceEnabled && config_.provenance) {
    obs::ScopedPhase prov_phase(&profiler_, obs::PhaseKind::Provenance,
                                "runtime/install_provenance");
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      // Engines leave the engine byte unset (they cannot name themselves
      // without a layering inversion); stamp it here, then install with
      // first-record-wins semantics.
      for (obs::EdgeProvenance& p : mrs[i].provenance) {
        p.engine = static_cast<std::uint8_t>(config_.algorithm);
        deps_.set_provenance(p.from, id, p);
      }
    }
  }

  const std::uint64_t emit_begin =
      profiler_.enabled() ? obs::prof_now_ns() : 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const Requirement& req = reqs[i];
    const RegionReq& rr = launch.requirements[i];
    MaterializeResult& mr = mrs[i];
    record_launch_telemetry(id, launch.name, mr.steps);
    for (LaunchID d : mr.dependences) add_dependence(all_deps, d);
    // Under trace replay the analysis result is memoized: the engine still
    // runs (semantics stay exact and its state advances) but no analysis
    // work or messages are charged to the machine.
    std::vector<sim::OpID> req_tails =
        replay ? std::vector<sim::OpID>{issue}
               : emit_steps(mr.steps, analysis_node, issue, id);
    phys.emplace_back(req, std::move(mr.data));

    // Data movement: reads and read-writes need the current version at the
    // mapped node; reductions accumulate locally into a fresh buffer.
    // Copies start once this requirement's analysis and the producing
    // tasks (its dependences) have finished.
    auto fit = field_info_.find(rr.field);
    require(fit != field_info_.end(), "launch uses an unregistered field");
    if (!req.privilege.is_reduce()) {
      const IntervalSet& dom = forest_.domain(req.region);
      std::vector<CopyPlan> plans =
          fit->second.instances.plan_read(launch.mapped_node, dom);
      std::vector<sim::OpID> copy_deps = req_tails;
      for (LaunchID d : mr.dependences) {
        if (d < exec_op_.size() && exec_op_[d] != sim::kInvalidOp)
          copy_deps.push_back(exec_op_[d]);
      }
      for (const CopyPlan& plan : plans) {
        std::uint64_t bytes =
            static_cast<std::uint64_t>(plan.points.volume()) * kElementBytes;
        sim::OpID copy = graph_.message(
            plan.src, plan.dst, bytes, copy_deps,
            plan.kind == CopyPlan::Kind::Copy ? sim::OpCategory::Copy
                                              : sim::OpCategory::Reduction);
        copy_ops.push_back(copy);
        if (obs::kProvenanceEnabled && msg_ledger_.enabled()) {
          msg_ledger_.record(sim::MessageRecord{
              id, plan.src, plan.dst, bytes,
              plan.kind == CopyPlan::Kind::Copy ? sim::MessageKind::Copy
                                                : sim::MessageKind::Reduction,
              kNoEqSetID});
        }
      }
    }
    analysis_tails.insert(analysis_tails.end(), req_tails.begin(),
                          req_tails.end());
  }
  if (profiler_.enabled()) {
    // The emit loop is a canonical-order merge: per-requirement engine
    // results fold into the dependence and work graphs sequentially in
    // requirement order, the determinism contract's serial section.
    profiler_.phase(obs::PhaseKind::Merge, "runtime/emit_graph",
                    obs::prof_now_ns() - emit_begin);
  }
  analysis_wall_s_ += seconds_since(materialize_start);

  if (config_.record_launches)
    launch_log_.push_back(LaunchRecord{reqs, launch.mapped_node});

  // Dependence edges (program-order semantics) into both the dependence
  // graph and the work graph.
  deps_.add_edges(id, all_deps);
  std::vector<sim::OpID> exec_deps = analysis_tails;
  for (sim::OpID c : copy_ops) exec_deps.push_back(c);
  for (LaunchID d : all_deps) {
    if (exec_op_[d] != sim::kInvalidOp) exec_deps.push_back(exec_op_[d]);
  }
  SimTime exec_cost = config_.costs.task_launch_ns +
                      config_.costs.task_element_ns *
                          static_cast<SimTime>(launch.work_items);
  sim::OpID exec = graph_.compute(launch.mapped_node, exec_cost, exec_deps,
                                  sim::OpCategory::TaskExec);
  exec_op_[id] = exec;
  current_iteration_execs_.push_back(exec);

  // Execute the task body for real.
  if (config_.track_values && launch.fn) {
    TaskContext tc(id, phys);
    launch.fn(tc);
  }

  // Commit results and update instance validity.  Commit messages are
  // asynchronous too; the iteration marker (not the next launch) joins
  // them.  Commits shard by field like materializes; instance-map updates
  // and work-graph emission stay sequential in requirement order.
  const auto commit_start = std::chrono::steady_clock::now();
  std::vector<std::vector<AnalysisStep>> commit_steps(reqs.size());
  const std::uint64_t com_begin =
      profiler_.enabled() ? obs::prof_now_ns() : 0;
  const std::uint64_t com_inner = profiler_.phase_ns_snapshot();
  for_each_group([&](std::size_t g) {
    for (std::size_t i : field_groups[g]) {
      obs::ScopedSpan span(&recorder_, obs::SpanKind::Commit, "commit", id,
                           analysis_node, nullptr, &commit_steps[i],
                           launch_span.id());
      commit_steps[i] = engine_->commit(reqs[i], phys[i].data(), ctx);
    }
  });
  if (profiler_.enabled()) {
    const std::uint64_t wall = obs::prof_now_ns() - com_begin;
    const std::uint64_t inner = profiler_.phase_ns_snapshot() - com_inner;
    profiler_.phase(obs::PhaseKind::Other, "runtime/commit_fanout",
                    wall > inner ? wall - inner : 0);
  }
  const std::uint64_t commit_emit_begin =
      profiler_.enabled() ? obs::prof_now_ns() : 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const Requirement& req = reqs[i];
    std::vector<AnalysisStep>& steps = commit_steps[i];
    record_launch_telemetry(id, launch.name, steps);
    if (!replay) {
      std::vector<sim::OpID> commit_tails =
          emit_steps(steps, analysis_node, exec, id);
      current_iteration_execs_.insert(current_iteration_execs_.end(),
                                      commit_tails.begin(),
                                      commit_tails.end());
    }

    FieldInfo& fi = field_info_.at(req.field);
    const IntervalSet& dom = forest_.domain(req.region);
    if (req.privilege.is_write()) {
      fi.instances.record_write(launch.mapped_node, dom);
    } else if (req.privilege.is_reduce()) {
      fi.instances.record_reduction(launch.mapped_node, dom,
                                    req.privilege.redop);
    }
  }
  if (profiler_.enabled()) {
    profiler_.phase(obs::PhaseKind::Merge, "runtime/emit_commit",
                    obs::prof_now_ns() - commit_emit_begin);
  }
  analysis_wall_s_ += seconds_since(commit_start);
  // Program order on the analyzing node is the issue chain alone; the
  // remote analysis traffic of one launch overlaps the next launch's
  // analysis, as in Legion's asynchronous runtime.
  issue_tail_[analysis_node] = issue;
  ++launches_this_iteration_;
  sample_series(id);
  return id;
}

void Runtime::record_launch_telemetry(LaunchID id, const std::string& name,
                                      std::span<const AnalysisStep> steps) {
  if (!recorder_.enabled()) return;
  if (launch_names_.size() <= id) {
    launch_names_.resize(id + 1);
    launch_counters_.resize(id + 1);
  }
  launch_names_[id] = name;
  for (const AnalysisStep& step : steps)
    launch_counters_[id] += step.counters;
}

void Runtime::sample_series(LaunchID id) {
  if (!recorder_.enabled()) return;
  EngineStats es = engine_->stats();
  recorder_.sample(recorder_.series_id("live_eqsets"), id,
                   static_cast<double>(es.live_eqsets));
  recorder_.sample(recorder_.series_id("live_composite_views"), id,
                   static_cast<double>(es.live_composite_views));
  recorder_.sample(recorder_.series_id("history_entries"), id,
                   static_cast<double>(es.history_entries));
  recorder_.sample(recorder_.series_id("messages_total"), id,
                   static_cast<double>(graph_.message_count()));
  for (NodeID n = 0; n < config_.machine.num_nodes; ++n) {
    recorder_.sample(
        recorder_.series_id("analysis_busy_ns/node" + std::to_string(n)), id,
        static_cast<double>(analysis_busy_ns_[n]));
  }
}

std::vector<LaunchID> Runtime::index_launch(const IndexLaunch& launch) {
  require(!launch.requirements.empty(),
          "an index launch needs at least one region requirement");
  std::size_t colors = forest_.partition_size(launch.requirements[0].partition);
  for (const IndexReq& req : launch.requirements) {
    require(forest_.partition_size(req.partition) == colors,
            "index launch partitions must have matching color counts");
  }
  std::vector<LaunchID> ids;
  ids.reserve(colors);
  for (std::size_t color = 0; color < colors; ++color) {
    TaskLaunch point;
    point.name = launch.name;
    for (const IndexReq& req : launch.requirements) {
      point.requirements.push_back(RegionReq{
          forest_.subregion(req.partition, color), req.field,
          req.privilege});
    }
    point.mapped_node =
        launch.mapping
            ? launch.mapping(color)
            : static_cast<NodeID>(color % config_.machine.num_nodes);
    point.work_items = launch.work_items;
    if (launch.fn) {
      auto fn = launch.fn;
      point.fn = [fn, color](TaskContext& ctx) { fn(ctx, color); };
    }
    ids.push_back(this->launch(std::move(point)));
  }
  return ids;
}

void Runtime::begin_trace(std::uint32_t id) {
  if (!config_.enable_tracing) return;
  require(active_trace_ == nullptr, "traces cannot nest");
  TraceState& tr = traces_[id];
  active_trace_ = &tr;
  tr.cursor = 0;
  replaying_ = tr.phase == TraceState::Phase::Ready;
}

void Runtime::end_trace() {
  if (!config_.enable_tracing) return;
  require(active_trace_ != nullptr, "end_trace without begin_trace");
  TraceState& tr = *active_trace_;
  if (replaying_) {
    // A replay that ended early saw a shorter sequence: stale template.
    if (tr.cursor != tr.entries.size())
      tr.phase = TraceState::Phase::Invalid;
  } else if (tr.phase == TraceState::Phase::Capturing) {
    tr.phase = TraceState::Phase::Ready;
  }
  active_trace_ = nullptr;
  replaying_ = false;
}

void Runtime::end_iteration() {
  // Under DCR every shard enumerates the full launch stream of the
  // iteration; charge that enumeration on every node's analysis chain.
  if (config_.dcr && launches_this_iteration_ > 0) {
    SimTime cost = config_.costs.dcr_stream_ns *
                   static_cast<SimTime>(launches_this_iteration_);
    for (NodeID n = 0; n < config_.machine.num_nodes; ++n) {
      std::vector<sim::OpID> deps;
      if (issue_tail_[n] != sim::kInvalidOp) deps.push_back(issue_tail_[n]);
      issue_tail_[n] =
          graph_.compute(n, cost, deps, sim::OpCategory::Runtime);
      current_iteration_execs_.push_back(issue_tail_[n]);
    }
  }
  launches_this_iteration_ = 0;
  std::vector<sim::OpID> deps = std::move(current_iteration_execs_);
  current_iteration_execs_.clear();
  if (last_marker_ != sim::kInvalidOp) deps.push_back(last_marker_);
  sim::OpID marker = graph_.marker(0, deps);
  iteration_markers_.push_back(marker);
  last_marker_ = marker;
}

RegionData<double> Runtime::observe(RegionHandle region, FieldID field) {
  require(config_.track_values, "observe requires value tracking");
  LaunchID id = next_launch_++;
  deps_.add_task(id);
  exec_op_.push_back(sim::kInvalidOp);
  AnalysisContext ctx{id, 0, 0};
  Requirement req{region, field, Privilege::read()};
  if (config_.record_launches)
    launch_log_.push_back(LaunchRecord{{req}, 0});
  MaterializeResult mr = engine_->materialize(req, ctx);
  deps_.add_edges(id, mr.dependences);
  if (obs::kProvenanceEnabled && config_.provenance) {
    for (obs::EdgeProvenance& p : mr.provenance) {
      p.engine = static_cast<std::uint8_t>(config_.algorithm);
      deps_.set_provenance(p.from, id, p);
    }
  }
  engine_->commit(req, mr.data, ctx);
  return std::move(mr.data);
}

std::string Runtime::profile_json() const {
  const auto wall_ns =
      static_cast<std::uint64_t>(analysis_wall_s_ * 1e9);
  const unsigned threads = executor_ != nullptr ? executor_->lanes() : 1;
  return profiler_.json(wall_ns, threads);
}

std::vector<std::uint64_t> Runtime::messages_by_node() const {
  std::vector<std::uint64_t> counts(config_.machine.num_nodes, 0);
  for (sim::OpID id = 0; id < graph_.size(); ++id) {
    const sim::Op& op = graph_.op(id);
    if (op.kind == sim::OpKind::Message) ++counts[op.node];
  }
  return counts;
}

void Runtime::export_chrome_trace(std::ostream& os) const {
  sim::ReplayResult r = sim::replay(graph_, config_.machine);
  if (!recorder_.enabled() && lifecycle_.event_count() == 0) {
    sim::export_chrome_trace(graph_, r, config_.machine, os);
    return;
  }

  sim::TraceEnrichment enrich;
  // Flow arrows for dependence edges: producer execution -> consumer
  // execution.
  for (LaunchID id = 0; id < exec_op_.size(); ++id) {
    if (exec_op_[id] == sim::kInvalidOp) continue;
    for (LaunchID p : deps_.preds(id)) {
      if (p < exec_op_.size() && exec_op_[p] != sim::kInvalidOp)
        enrich.flows.push_back(
            sim::TraceFlow{exec_op_[p], exec_op_[id], "dep"});
    }
  }
  // Flow arrows for analysis messages: the op that triggered the send ->
  // the message's slice on the destination NIC.
  for (sim::OpID id = 0; id < graph_.size(); ++id) {
    const sim::Op& op = graph_.op(id);
    if (op.kind != sim::OpKind::Message ||
        op.category != static_cast<std::uint8_t>(sim::OpCategory::Analysis))
      continue;
    std::span<const sim::OpID> d = graph_.deps(id);
    if (!d.empty())
      enrich.flows.push_back(sim::TraceFlow{d.front(), id, "analysis_msg"});
  }
  // Counter tracks: each retained sample anchored at its launch's task
  // execution (sim time is only known post-replay, so the exec op's finish
  // provides the timestamp).
  for (std::size_t sid = 0; sid < recorder_.series_count(); ++sid) {
    const obs::CounterSeries& cs = recorder_.series(sid);
    sim::TraceCounterTrack track;
    track.name = cs.name();
    track.pid = 0;
    for (std::size_t i = 0; i < cs.size(); ++i) {
      const obs::SeriesSample& s = cs.at(i);
      if (s.launch < exec_op_.size() && exec_op_[s.launch] != sim::kInvalidOp)
        track.samples.emplace_back(exec_op_[s.launch], s.value);
    }
    enrich.counters.push_back(std::move(track));
  }
  // Lifecycle counter tracks: per-field live eq-set population and
  // refinement depth over the launch clock, anchored like the series above.
  for (FieldID f : lifecycle_.fields()) {
    sim::TraceCounterTrack live, depth;
    live.name = "lifecycle/live_eqsets/field" + std::to_string(f);
    depth.name = "lifecycle/depth/field" + std::to_string(f);
    live.pid = depth.pid = 0;
    for (const obs::LifecycleEvent& ev : lifecycle_.events(f)) {
      if (ev.launch == kInvalidLaunch || ev.launch >= exec_op_.size() ||
          exec_op_[ev.launch] == sim::kInvalidOp)
        continue;
      live.samples.emplace_back(exec_op_[ev.launch],
                                static_cast<double>(ev.live_after));
      depth.samples.emplace_back(exec_op_[ev.launch],
                                 static_cast<double>(ev.depth));
    }
    if (!live.samples.empty()) {
      enrich.counters.push_back(std::move(live));
      enrich.counters.push_back(std::move(depth));
    }
  }
  // Per-launch args on the execution slices: task name plus the launch's
  // aggregated analysis counters.
  for (LaunchID id = 0; id < exec_op_.size() && id < launch_names_.size();
       ++id) {
    if (exec_op_[id] == sim::kInvalidOp) continue;
    std::ostringstream args;
    args << "\"launch\":" << id << ",\"task\":\""
         << obs::json_escape(launch_names_[id]) << "\"";
    for_each_counter(launch_counters_[id],
                     [&](const char* name, std::uint64_t value) {
                       if (value != 0) args << ",\"" << name << "\":" << value;
                     });
    enrich.op_args.emplace(exec_op_[id], args.str());
  }
  sim::export_chrome_trace(graph_, r, config_.machine, os, &enrich);
}

RunStats Runtime::finish() {
  if (!current_iteration_execs_.empty()) end_iteration();
  sim::ReplayResult r = sim::replay(graph_, config_.machine);

  RunStats stats;
  stats.launches = next_launch_;
  stats.iterations = iteration_markers_.size();
  stats.dep_edges = deps_.edge_count();
  stats.critical_path = deps_.critical_path();
  stats.messages = graph_.message_count();
  stats.message_bytes = graph_.total_message_bytes();
  stats.analysis_cpu_s =
      static_cast<double>(graph_.total_cost(sim::OpCategory::Analysis)) * 1e-9;
  stats.analysis_wall_s = analysis_wall_s_;
  stats.engine = engine_->stats();
  stats.total_time_s = static_cast<double>(r.makespan) * 1e-9;
  if (!iteration_markers_.empty()) {
    stats.init_time_s =
        static_cast<double>(r.finish_of(iteration_markers_.front())) * 1e-9;
    if (iteration_markers_.size() > 1) {
      double steady = static_cast<double>(
                          r.finish_of(iteration_markers_.back()) -
                          r.finish_of(iteration_markers_.front())) *
                      1e-9;
      stats.steady_iter_s =
          steady / static_cast<double>(iteration_markers_.size() - 1);
    }
  }
  return stats;
}

} // namespace visrt
