// visrt/runtime/runtime.h
//
// The implicitly parallel tasking runtime: the user-facing façade playing
// Legion's role in the paper.  Applications create regions, partitions and
// fields, then launch a sequential stream of tasks with privileges on
// (sub)regions; the runtime
//
//   1. runs the configured visibility algorithm to compute dependences and
//      coherent task inputs (Sections 5-7),
//   2. plans the implicit communication (copies, lazy reduction
//      applications) through the instance map,
//   3. executes task bodies against real buffers (when value tracking is
//      on) so results can be validated against serial references, and
//   4. records every analysis step, message, copy and task execution into
//      a work graph that the discrete-event simulator schedules onto the
//      configured machine, yielding the initialization-time and
//      weak-scaling measurements of Section 8.
//
// Dynamic control replication (DCR, [4] in the paper) is modeled by
// analyzing each launch on the node the task is mapped to instead of
// funneling every analysis through node 0.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/executor.h"
#include "common/hash.h"
#include "obs/histogram.h"
#include "obs/lifecycle.h"
#include "obs/profile.h"
#include "obs/recorder.h"
#include "realm/instance_map.h"
#include "region/region_tree.h"
#include "sim/cost_model.h"
#include "sim/machine.h"
#include "sim/message_ledger.h"
#include "sim/replay.h"
#include "sim/work_graph.h"
#include "visibility/dep_graph.h"
#include "visibility/engine.h"

namespace visrt {

struct RuntimeConfig {
  Algorithm algorithm = Algorithm::RayCast;
  /// Algorithm-specific option knobs (ablation settings + test hooks),
  /// forwarded to the engine factory.
  EngineTuning tuning;
  /// Shard the top-level task's analysis across nodes (DCR).
  bool dcr = false;
  /// Honor begin_trace()/end_trace() (dynamic tracing, [15] in the paper:
  /// memoizes the dependence/coherence analyses of a repeated launch
  /// sequence).  The paper's experiments run without tracing; visrt
  /// implements it as an extension — see bench/ext_tracing.
  bool enable_tracing = true;
  /// Execute task bodies on real data (on for examples/tests; off for
  /// large analysis-only benchmark sweeps).
  bool track_values = true;
  /// Enable the telemetry recorder: per-launch analysis spans, counter
  /// time-series, enriched Chrome traces and the JSON metrics sink.  Off by
  /// default; a disabled recorder costs a single branch per span site.
  bool telemetry = false;
  /// Keep a per-launch record of the analyzed requirements (launch_log())
  /// so the spy verifier (analysis/spy.h) can recompute ground-truth
  /// interference after the run.  Off by default: verification-only memory.
  bool record_launches = false;
  /// Attach an order-maintenance structure (common/order_maintenance.h) to
  /// the dependence graph as it grows: DepGraph::reaches and every
  /// consumer of transitive order (spy verifier, explain, the schedule
  /// validator) answer in O(1) instead of walking the graph.  Off by
  /// default; costs O(resident launches * chain width) memory.
  bool order_queries = false;
  /// Record dependence provenance, the eq-set lifecycle ledger and the
  /// per-node message ledger (visrt_cli explain / inspect).  Off by
  /// default; with -DVISRT_PROVENANCE=OFF the whole layer compiles out
  /// and this flag is inert.
  bool provenance = false;
  /// Enable the contention-aware analysis profiler (obs/profile.h):
  /// per-worker shard-task events, lock-contention telemetry and phase
  /// attribution of the analysis wall time.  Off by default; a disabled
  /// profiler costs one branch per hook, and with -DVISRT_PROFILE=OFF the
  /// whole layer compiles out and this flag is inert.
  bool profile = false;
  /// Ring-buffer capacity of each counter series (memory stays bounded for
  /// arbitrarily long runs).
  std::size_t telemetry_series_capacity = 4096;
  /// Worker lanes (including the calling thread) for sharding each
  /// launch's analysis across an Executor: requirements on distinct fields
  /// materialize/plan/commit concurrently and the engines shard their
  /// inner walks, with each shard appending into a private buffer that is
  /// folded in index order afterwards (sharded_reduce).  Results —
  /// dependence graph, DES timings, painted values, provenance — are
  /// bit-identical to sequential mode by construction (see
  /// docs/PERFORMANCE.md).  1 = sequential; Algorithm::Reference always
  /// runs sequentially (it is the oracle).
  unsigned analysis_threads = 1;
  /// Shard batch granularity: how many work items (field groups in the
  /// launch fan-out, set/entry indices in the engines' inner scans) one
  /// shard task claims.  0 picks each site's tuned default — coarse
  /// enough that a typical launch's two-field fan-out runs inline instead
  /// of paying two fork/joins.  Output is bit-identical across every
  /// value (the equivalence tests sweep adversarial granularities);
  /// shard_batch=1 forces the finest sharding, a value larger than the
  /// work forces everything inline.
  std::size_t shard_batch = 0;
  /// Bounded-memory streaming: collapse the value payloads of equivalence
  ///-set history entries beyond this depth into per-set composite views
  /// (see EngineConfig::max_history_depth).  Analysis results are
  /// bit-identical with and without the cap; 0 = never collapse.
  std::size_t max_history_depth = 0;
  /// Optional per-launch analysis-latency sink: each launch() records the
  /// nanoseconds it added to analysis_wall_s (materialize + commit, task
  /// bodies excluded) into this histogram.  Must outlive the Runtime; the
  /// serve layer points every session at its shared latency block.
  obs::Histogram* launch_latency = nullptr;
  sim::MachineConfig machine;
  sim::CostModel costs;
};

/// A task body's view of one region requirement: the materialized values,
/// writable according to the privilege.
class PhysicalRegion {
public:
  PhysicalRegion(Requirement req, RegionData<double> data)
      : req_(req), data_(std::move(data)) {}

  const Requirement& requirement() const { return req_; }
  /// Materialized (current) values; for reduce privileges this buffer is
  /// identity-filled and the task folds its contributions into it.
  RegionData<double>& data() { return data_; }
  const RegionData<double>& data() const { return data_; }

private:
  Requirement req_;
  RegionData<double> data_;
};

/// Handed to a task body during execution.
class TaskContext {
public:
  TaskContext(LaunchID id, std::vector<PhysicalRegion>& regions)
      : id_(id), regions_(regions) {}

  LaunchID launch_id() const { return id_; }
  std::size_t region_count() const { return regions_.size(); }
  PhysicalRegion& region(std::size_t i) { return regions_.at(i); }
  /// Shorthand for region(i).data().
  RegionData<double>& data(std::size_t i) { return regions_.at(i).data(); }

private:
  LaunchID id_;
  std::vector<PhysicalRegion>& regions_;
};

using TaskFn = std::function<void(TaskContext&)>;

/// One analyzed launch as retained for post-hoc verification (see
/// RuntimeConfig::record_launches and analysis/spy.h), indexed by
/// LaunchID.  observe() launches are recorded too — the spy checks their
/// ordering like any other read.
struct LaunchRecord {
  std::vector<Requirement> requirements;
  NodeID mapped_node = 0;
};

/// One region requirement of a launch (user-facing form).
struct RegionReq {
  RegionHandle region;
  FieldID field = 0;
  Privilege privilege;
  friend bool operator==(const RegionReq&, const RegionReq&) = default;
};

/// One region requirement of an index launch: each point task `color`
/// receives `subregion(partition, color)` with the given privilege.
struct IndexReq {
  PartitionHandle partition;
  FieldID field = 0;
  Privilege privilege;
};

/// Description of an index launch: one point task per color of the launch
/// partition(s), the idiomatic way the paper's programs map loops like
/// `for i = 1..3 t1(P[i], G[i])` onto the runtime.
struct IndexLaunch {
  std::string name;
  /// All partitions must have the same number of subregions.
  std::vector<IndexReq> requirements;
  /// Body for point task `color`; may be empty when values are off.
  std::function<void(TaskContext&, std::size_t color)> fn;
  /// Node for point task `color`; defaults to color % num_nodes.
  std::function<NodeID(std::size_t color)> mapping;
  /// Elements the leaf kernel touches, per point task.
  coord_t work_items = 0;
};

/// Description of one task launch.
struct TaskLaunch {
  std::string name;
  std::vector<RegionReq> requirements;
  /// Task body; may be empty when value tracking is off.
  TaskFn fn;
  /// Node (processor) the task is mapped to.
  NodeID mapped_node = 0;
  /// Number of elements the leaf kernel touches (execution cost model).
  coord_t work_items = 0;
};

/// Result of one Runtime::retire() call: where the resident windows start
/// afterwards, and how much this call reclaimed.
struct RetireStats {
  LaunchID launch_base = 0;   ///< first resident launch after the call
  sim::OpID op_base = 0;      ///< first resident work-graph op after the call
  std::size_t retired_launches = 0; ///< launches retired by this call
  std::size_t retired_ops = 0;      ///< work-graph ops retired by this call
  std::size_t eqset_slots_reclaimed = 0; ///< dead husk slots compacted away
};

/// Results of a finished run.
struct RunStats {
  double init_time_s = 0;    ///< start to end of first iteration
  double total_time_s = 0;   ///< start to last task finish
  double steady_iter_s = 0;  ///< average post-init iteration time
  std::size_t iterations = 0;
  std::size_t launches = 0;
  std::size_t dep_edges = 0;
  std::size_t critical_path = 0;
  std::size_t messages = 0;
  std::uint64_t message_bytes = 0;
  double analysis_cpu_s = 0; ///< total analysis CPU across all nodes
  /// Real (wall-clock) seconds this process spent inside the analysis
  /// sections of launch() — materialize + commit, excluding task bodies
  /// and the DES replay.  This is the quantity the --wall-clock benches
  /// report; unlike everything else in RunStats it depends on the host and
  /// on RuntimeConfig::analysis_threads.
  double analysis_wall_s = 0;
  EngineStats engine;
};

class Runtime {
public:
  explicit Runtime(RuntimeConfig config);

  std::uint32_t num_nodes() const { return config_.machine.num_nodes; }
  const RegionTreeForest& forest() const { return forest_; }
  const DepGraph& dep_graph() const { return deps_; }
  const sim::WorkGraph& work_graph() const { return graph_; }
  EngineStats engine_stats() const { return engine_->stats(); }
  const RuntimeConfig& config() const { return config_; }

  /// Work-graph task-execution op of each *resident* launch, indexed by
  /// LaunchID - launch_base() (kInvalidOp for launches without an
  /// execution op, e.g. observe(); sim::kFrozenOp once retire() froze the
  /// op — its final window is then exec_of/frozen_exec_*).  Lets external
  /// validators — the fuzzer's schedule checker — relate the dependence
  /// DAG to the replayed DES schedule.
  std::span<const sim::OpID> exec_ops() const { return exec_op_; }

  /// Execution op of a resident launch (kInvalidOp / sim::kFrozenOp as in
  /// exec_ops()).
  sim::OpID exec_of(LaunchID id) const;
  /// Final execution window of a launch whose exec op was frozen by
  /// retire() (only valid when exec_of(id) == sim::kFrozenOp).
  SimTime frozen_exec_start(LaunchID id) const;
  SimTime frozen_exec_finish(LaunchID id) const;

  /// Requirements of every *resident* analyzed launch, indexed by
  /// LaunchID - launch_base().  Empty unless
  /// RuntimeConfig::record_launches; the spy verifier (analysis/spy.h)
  /// recomputes interference from this and the forest.
  std::span<const LaunchRecord> launch_log() const { return launch_log_; }

  /// First launch still resident in the dependence graph / launch log
  /// (0 until the first retire() call).
  LaunchID launch_base() const { return launch_base_; }
  std::size_t resident_launches() const { return next_launch_ - launch_base_; }

  /// The telemetry recorder (enabled iff RuntimeConfig::telemetry).
  obs::Recorder& recorder() { return recorder_; }
  const obs::Recorder& recorder() const { return recorder_; }

  /// The analysis profiler (enabled iff RuntimeConfig::profile and the
  /// build has VISRT_PROFILE).
  const obs::Profiler& profiler() const { return profiler_; }
  /// Full schema-v1 profile report for this run's measured analysis wall
  /// time (see obs::Profiler::json).
  std::string profile_json() const;
  /// Per-worker shard-task timeline + lock-contention counter tracks as a
  /// Chrome trace (wall-clock; separate from the simulated-time trace of
  /// export_chrome_trace).
  void export_profile_trace(std::ostream& os) const {
    profiler_.write_chrome_trace(os);
  }

  /// Eq-set lifecycle ledger (populated iff RuntimeConfig::provenance and
  /// the build has VISRT_PROVENANCE).
  const obs::LifecycleLedger& lifecycle() const { return lifecycle_; }
  /// Per-simulated-node analysis/copy message ledger (same gating).
  const sim::MessageLedger& message_ledger() const { return msg_ledger_; }

  /// Cumulative analysis CPU per node.  Sums exactly to the work graph's
  /// total Analysis cost: emit_steps is the only producer of Analysis
  /// compute ops and accumulates both from the same step costs.
  std::span<const SimTime> analysis_busy_ns() const {
    return analysis_busy_ns_;
  }
  /// Messages by source node (analysis traffic, copies and reductions),
  /// from a scan of the work graph.
  std::vector<std::uint64_t> messages_by_node() const;

  /// Create the root region of a new tree.
  RegionHandle create_region(IntervalSet domain, std::string name);
  PartitionHandle create_partition(RegionHandle parent,
                                   std::vector<IntervalSet> subspaces,
                                   std::string name);
  /// Partition with caller-declared disjointness/completeness claims;
  /// declared flags are trusted but geometrically validated in debug
  /// builds (see RegionTreeForest::create_partition).
  PartitionHandle create_partition(RegionHandle parent,
                                   std::vector<IntervalSet> subspaces,
                                   std::string name, PartitionClaim claim);
  RegionHandle subregion(PartitionHandle partition, std::size_t color) const;

  /// Register a field on a root region with a constant initial value.
  FieldID add_field(RegionHandle root, std::string name,
                    double initial = 0.0);
  /// Register a field initialized per point.
  FieldID add_field(RegionHandle root, std::string name,
                    const std::function<double(coord_t)>& init);

  /// Launch a task.  Analysis happens immediately (the stream is analyzed
  /// in program order); execution cost lands in the work graph.
  LaunchID launch(TaskLaunch launch);

  /// Launch one point task per partition color (see IndexLaunch).
  /// Returns the launch ids in color order.
  std::vector<LaunchID> index_launch(const IndexLaunch& launch);

  /// Mark an application iteration boundary (used for the init-time /
  /// steady-state split of Section 8).
  void end_iteration();

  /// Dynamic tracing: bracket a launch sequence that repeats identically.
  /// The first execution of trace `id` captures a fingerprint of the
  /// sequence while analyzing normally; each later execution whose
  /// sequence matches replays the memoized analysis — the engines still
  /// run (semantics stay exact) but the simulated machine is charged only
  /// a small per-launch replay cost and no analysis messages.  A sequence
  /// mismatch invalidates the trace and falls back to full analysis.
  void begin_trace(std::uint32_t id);
  void end_trace();
  /// Launches whose analysis was replayed from a trace so far.
  std::size_t traced_launches() const { return traced_launches_; }

  /// Current values of a field over a region — a read-only observation
  /// through the coherence engine (counts as a launch).
  RegionData<double> observe(RegionHandle region, FieldID field);

  /// Replay the work graph onto the machine and compute statistics,
  /// closing a pending iteration first (the batch entry point).
  RunStats finish();

  /// Same statistics without mutating state: safe to call mid-stream from
  /// a serving loop.  A pending (un-markered) iteration is simply not
  /// reflected in init/steady times yet.
  RunStats stats() const;

  /// Retire everything provably final, bounding resident memory for
  /// unbounded streams:
  ///   1. Work-graph freeze — retire the pop-order prefix of the DES
  ///      schedule (every resident op that becomes ready before any
  ///      future op possibly can; see docs/SERVING.md for the argument),
  ///      fold its finish times into the rolling schedule hash and into
  ///      per-reference floors, then drop the op records and advance the
  ///      replay checkpoint.
  ///   2. Launch retirement — drop dep-graph predecessor lists and launch
  ///      records below min(engine watermark, schedule frontier).
  ///   3. Engine compaction — collapse dead eq-set husks once more than
  ///      `max_dead_eqsets` are resident.
  /// Analysis results, dep/schedule/value hashes and aggregate statistics
  /// are bit-identical with and without retirement, by construction.
  RetireStats retire(std::size_t max_dead_eqsets = 0);

  /// Rolling whole-stream schedule hash: the fold, in launch order, of
  /// each launch's exec-op finish time (~0 for launches without one).
  /// Equals the batch fold independent of retirement.
  std::uint64_t schedule_hash() const;

  /// Replay the resident work-graph window from the retirement checkpoint:
  /// finish times (and cumulative busy/makespan) equal a whole-stream
  /// replay's.
  sim::ReplayResult replay_graph() const;

  /// Replay the work graph and write it as a Chrome trace
  /// (chrome://tracing / Perfetto JSON) for timeline inspection.  After
  /// retire() the trace covers the resident window only.
  void export_chrome_trace(std::ostream& os) const;

private:
  /// Analysis steps -> work-graph ops; returns the tails every consumer
  /// of the analysis (copies, the task execution) must wait on.  `launch`
  /// stamps the message-ledger records of remote steps.
  std::vector<sim::OpID> emit_steps(std::span<const AnalysisStep> steps,
                                    NodeID analysis_node, sim::OpID head,
                                    LaunchID launch);

  /// Per-launch bookkeeping for telemetry (names + aggregated counters for
  /// trace span args); grown only while the recorder is enabled.
  void record_launch_telemetry(LaunchID id, const std::string& name,
                               std::span<const AnalysisStep> steps);
  /// Sample the counter series at the end of a launch.
  void sample_series(LaunchID id);

  RuntimeConfig config_;
  RegionTreeForest forest_;
  /// Per-launch scratch memory: launch() resets it on entry and carves its
  /// short-lived dependence/op-id lists out of it (common/arena.h), so the
  /// per-launch malloc traffic of the hot path collapses to pointer bumps
  /// into retained chunks.  Single-owner: only touched from launch()'s
  /// calling thread, never from shard tasks.
  Arena scratch_arena_;
  obs::Recorder recorder_;
  /// Declared before executor_ (which holds a pointer) so the pool is
  /// destroyed first.
  obs::Profiler profiler_;
  obs::LifecycleLedger lifecycle_;
  sim::MessageLedger msg_ledger_;
  /// Analysis thread pool (null in sequential mode).  Declared before
  /// engine_ so the engine — which holds a pointer to it — is destroyed
  /// first.
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<CoherenceEngine> engine_;
  DepGraph deps_;
  sim::WorkGraph graph_;

  struct FieldInfo {
    RegionHandle root;
    std::string name;
    InstanceMap instances;
  };
  std::unordered_map<FieldID, FieldInfo> field_info_;
  FieldID next_field_ = 0;
  LaunchID next_launch_ = 0;

  /// Fingerprint of one launch inside a trace template.
  struct TraceEntry {
    std::vector<RegionReq> requirements;
    NodeID mapped_node = 0;
  };
  struct TraceState {
    enum class Phase { Capturing, Ready, Invalid };
    Phase phase = Phase::Capturing;
    std::vector<TraceEntry> entries;
    std::size_t cursor = 0; ///< position within the current replay
  };
  /// The active trace (nullptr when not tracing) and whether the current
  /// execution of it is a replay.
  TraceState* active_trace_ = nullptr;
  bool replaying_ = false;
  std::unordered_map<std::uint32_t, TraceState> traces_;
  std::size_t traced_launches_ = 0;

  // Per resident launch, indexed by LaunchID - launch_base_.  An exec_op_
  // entry of sim::kFrozenOp means the op was retired from the work graph;
  // its final window lives in exec_start_/exec_finish_.
  std::vector<sim::OpID> exec_op_;
  std::vector<SimTime> exec_start_;
  std::vector<SimTime> exec_finish_;
  std::vector<LaunchRecord> launch_log_;  ///< when recording
  /// Per node: analysis-chain tail op (sim::kFrozenOp once retired; the
  /// tail's finish then lives in issue_tail_finish_).
  std::vector<sim::OpID> issue_tail_;
  std::vector<SimTime> issue_tail_finish_;
  std::vector<sim::OpID> current_iteration_execs_;
  /// Fold of the finishes of current-iteration ops already retired: the
  /// next marker's readiness floor.
  SimTime iteration_floor_ = 0;
  sim::OpID last_marker_ = sim::kInvalidOp;
  SimTime last_marker_finish_ = 0;
  sim::OpID first_marker_ = sim::kInvalidOp;
  SimTime first_marker_finish_ = 0;
  std::size_t iteration_count_ = 0;
  std::size_t launches_this_iteration_ = 0;

  /// Retirement frontiers.  launch_base_: first launch resident in deps_ /
  /// exec_op_ / launch_log_.  sched_frontier_: first launch whose exec-op
  /// finish has not been folded into sched_hash_ yet (always >=
  /// launch_base_).
  LaunchID launch_base_ = 0;
  LaunchID sched_frontier_ = 0;
  std::uint64_t sched_hash_ = kFnvOffsetBasis;
  /// Resource state at the work-graph retirement cut; seeds every replay
  /// of the resident window.
  sim::ReplayCheckpoint ckpt_;

  /// Cumulative analysis CPU per node (always accumulated: one add per
  /// analysis step).
  std::vector<SimTime> analysis_busy_ns_;
  /// Wall-clock seconds spent in the analysis sections of launch().
  double analysis_wall_s_ = 0;
  /// Telemetry-only per-launch records (empty while the recorder is off).
  std::vector<std::string> launch_names_;
  std::vector<AnalysisCounters> launch_counters_;
};

} // namespace visrt
