// visrt/runtime/metrics.h
//
// JSON metrics sink for finished runs: serializes RunStats, the per-node
// breakdowns and the recorder's counter-series summaries into the per-run
// objects of the obs metrics envelope (schema in docs/OBSERVABILITY.md).
// Benchmarks collect one run object per configuration into a MetricsFile
// and write it behind --metrics-json=PATH.
#pragma once

#include <string>
#include <vector>

#include "runtime/runtime.h"

namespace visrt {

/// Identity of one run within a metrics file.
struct MetricsRunInfo {
  std::string name;      ///< configuration label, e.g. "raycast/dcr/16"
  std::string app;       ///< application, e.g. "stencil"
  std::string algorithm; ///< algorithm_name() of the engine
  bool dcr = false;
  std::uint32_t nodes = 0;
};

/// Serialize one finished run as a JSON object (stats, per-node analysis
/// busy time and message counts, series summaries, span aggregates).
std::string metrics_run_json(const MetricsRunInfo& info, const Runtime& rt,
                             const RunStats& stats);

/// Accumulates run objects and writes the envelope.
class MetricsFile {
public:
  explicit MetricsFile(std::string binary) : binary_(std::move(binary)) {}

  void add_run(std::string run_json) {
    runs_.push_back(std::move(run_json));
  }
  std::size_t run_count() const { return runs_.size(); }

  /// The complete file contents.
  std::string json() const;
  /// Write to `path`; returns false (and logs) on failure.  A no-op
  /// returning true when `path` is empty, so callers can pass the
  /// --metrics-json value through unconditionally.
  bool write(const std::string& path) const;

private:
  std::string binary_;
  std::vector<std::string> runs_;
};

} // namespace visrt
