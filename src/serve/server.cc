#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace visrt::serve {

namespace {

/// The server whose state flight-recorder crash dumps should attach as
/// context (last constructed wins; cleared by its destructor).  A plain
/// function pointer is all obs::flight accepts — it must be callable
/// from a crash frame with no captured state.
std::atomic<Server*> g_flight_context_server{nullptr};

std::string flight_context_thunk() {
  Server* server = g_flight_context_server.load(std::memory_order_acquire);
  return server != nullptr ? server->flight_context_json() : "null";
}

/// Accumulate one session's counters into an aggregate: monotone counts
/// add, residency peaks take the maximum over sessions (a per-session
/// bound, not a co-residency sum).
void merge_counters(SessionCounters& into, const SessionCounters& from) {
  into.statements += from.statements;
  into.rejected += from.rejected;
  into.launches += from.launches;
  into.iterations += from.iterations;
  into.retire_calls += from.retire_calls;
  into.retired_launches += from.retired_launches;
  into.retired_ops += from.retired_ops;
  into.eqset_slots_reclaimed += from.eqset_slots_reclaimed;
  into.peak_resident_launches =
      std::max(into.peak_resident_launches, from.peak_resident_launches);
  into.peak_resident_ops =
      std::max(into.peak_resident_ops, from.peak_resident_ops);
  into.verified_launches += from.verified_launches;
  into.verify_violations += from.verify_violations;
}

std::string hex_u64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string error_line(std::string_view what) {
  return "{\"error\":\"" + obs::json_escape(what) + "\"}";
}

/// Write `line` + '\n' to a socket, tolerating a vanished client.
void write_line(int fd, std::string_view line) {
  std::string buf(line);
  buf.push_back('\n');
  std::size_t off = 0;
  while (off < buf.size()) {
    ssize_t n = ::send(fd, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return; // client gone; the session result is still aggregated
    }
    off += static_cast<std::size_t>(n);
  }
}

} // namespace

/// One client connection.  The connection's worker thread owns `session`
/// and `inbuf`; the mutable snapshot fields below the comment are the
/// published view other threads (stats/metrics) read under Server::mu_.
struct Server::Connection {
  int fd = -1;

  std::unique_ptr<StreamSession> session; // worker-thread only
  std::string inbuf;                      // worker-thread only

  // Published under Server::mu_ by publish():
  SessionCounters snap;
  std::uint64_t resident_launches = 0;
  std::uint64_t resident_ops = 0;
  std::uint64_t live_eqsets = 0;
  std::uint64_t retire_backoff = 0;
  bool counted = false; ///< included in sessions_total_
  bool active = false;  ///< has a live session not yet merged
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      start_time_(std::chrono::steady_clock::now()) {
  // Every session (socket or stdin) records into the server's shared
  // latency block; recording is wait-free, so sessions never serialize
  // on telemetry.
  options_.session.latency = &latency_;
  g_flight_context_server.store(this, std::memory_order_release);
  obs::flight_set_context_provider(&flight_context_thunk);
}

Server::~Server() {
  stop();
  Server* self = this;
  if (g_flight_context_server.compare_exchange_strong(self, nullptr))
    obs::flight_set_context_provider(nullptr);
}

void Server::start() {
  require(!started_, "server already started");
  require(!options_.socket_path.empty(), "serve: socket path is empty");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(options_.socket_path.size() < sizeof(addr.sun_path),
          "serve: socket path too long for AF_UNIX");
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  require(listen_fd_ >= 0, "serve: socket() failed");
  ::unlink(options_.socket_path.c_str()); // stale socket from a past run
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ApiError("serve: cannot bind " + options_.socket_path + ": " +
                   std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ApiError(std::string("serve: listen() failed: ") +
                   std::strerror(errno));
  }
  int flags = ::fcntl(listen_fd_, F_GETFL, 0);
  ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);

  started_ = true;
  start_time_ = std::chrono::steady_clock::now();
  accept_thread_ = std::thread([this] { accept_loop(); });
  sampler_start();
}

void Server::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  sampler_stop();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    workers.swap(workers_); // accept loop is down; no new workers appear
  }
  for (std::thread& w : workers)
    if (w.joinable()) w.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (started_) ::unlink(options_.socket_path.c_str());
  started_ = false;
}

void Server::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, options_.poll_interval_ms);
    if (rc <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(mu_);
    conns_.push_back(conn);
    workers_.emplace_back([this, conn] { handle_connection(conn); });
  }
}

void Server::handle_connection(std::shared_ptr<Connection> conn) {
  bool failed = false;
  bool replied = false;
  try {
    char chunk[65536];
    bool open = true;
    while (open) {
      if (stop_.load(std::memory_order_relaxed)) break; // drain
      pollfd pfd{conn->fd, POLLIN, 0};
      int rc = ::poll(&pfd, 1, options_.poll_interval_ms);
      if (rc < 0 && errno != EINTR) break;
      if (rc <= 0) continue;
      ssize_t n = ::read(conn->fd, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (n == 0) break; // EOF: behaves like @end below
      conn->inbuf.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (;;) {
        std::size_t nl = conn->inbuf.find('\n', start);
        if (nl == std::string::npos) break;
        std::string_view line(conn->inbuf.data() + start, nl - start);
        std::string reply;
        open = handle_line(*conn, line, reply);
        if (!reply.empty()) write_line(conn->fd, reply);
        start = nl + 1;
        if (!open) {
          replied = true;
          break;
        }
      }
      conn->inbuf.erase(0, start);
      publish(*conn, /*active=*/true);
    }
    // EOF or drain without @end: finish the in-flight session and write
    // its result line so no analysis state is silently dropped.
    if (!replied && conn->session != nullptr) {
      conn->session->finish();
      write_line(conn->fd, result_json(*conn->session));
    }
  } catch (const std::exception& e) {
    write_line(conn->fd, error_line(e.what()));
    failed = true;
  }
  publish(*conn, /*active=*/false);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (conn->counted) {
      merge_counters(finished_totals_, conn->snap);
      if (failed)
        ++sessions_failed_;
      else
        ++sessions_completed_;
    }
    conn->active = false;
    conn->resident_launches = conn->resident_ops = conn->live_eqsets = 0;
  }
  conn->session.reset(); // release the Runtime promptly
  ::shutdown(conn->fd, SHUT_RDWR);
  ::close(conn->fd);
  conn->fd = -1;
}

Server::ControlAction Server::dispatch_control(std::string_view line,
                                               const StreamSession* fold,
                                               std::string& reply) {
  if (line.empty() || line.front() != '@') return ControlAction::NotControl;
  if (line == "@end") return ControlAction::End;
  if (line == "@metrics") {
    const std::uint64_t begin = obs::prof_now_ns();
    reply = metrics_json(fold);
    latency_.metrics_request.record(obs::prof_now_ns() - begin);
  } else if (line == "@health") {
    reply = health_json(fold);
  } else if (line == "@prometheus") {
    reply = prometheus_text(fold);
  } else {
    reply = error_line("unknown control line: " + std::string(line));
  }
  obs::flight_record(obs::FlightKind::Control, line.size(), reply.size());
  return ControlAction::Replied;
}

bool Server::handle_line(Connection& conn, std::string_view line,
                         std::string& reply) {
  if (!line.empty() && line.front() == '@') {
    // Freshen this connection's published counters first, so a control
    // reply covers the statements this very connection just ingested.
    if (conn.session != nullptr) publish(conn, /*active=*/true);
    if (dispatch_control(line, nullptr, reply) == ControlAction::End) {
      if (conn.session != nullptr) {
        conn.session->finish();
        reply = result_json(*conn.session);
      } else {
        reply = "{\"ok\":true,\"launches\":0}";
      }
      return false;
    }
    return true;
  }
  if (conn.session == nullptr) {
    SessionOptions so = options_.session;
    int fd = conn.fd;
    so.on_error = [fd](const std::string& what) {
      write_line(fd, error_line(what));
    };
    conn.session = std::make_unique<StreamSession>(std::move(so));
    std::lock_guard<std::mutex> lock(mu_);
    conn.counted = true;
    conn.active = true;
    ++sessions_total_;
  }
  std::string stmt(line);
  stmt.push_back('\n');
  conn.session->feed(stmt);
  return true;
}

void Server::publish(Connection& conn, bool active) {
  if (conn.session == nullptr) return;
  SessionCounters snap = conn.session->counters();
  std::uint64_t rl = 0, ro = 0, le = 0;
  if (const Runtime* rt = conn.session->runtime()) {
    rl = rt->resident_launches();
    ro = rt->work_graph().resident_ops();
    le = rt->engine_stats().live_eqsets;
  }
  const std::uint64_t backoff = conn.session->retire_backoff();
  std::lock_guard<std::mutex> lock(mu_);
  conn.snap = snap;
  conn.active = active && conn.counted;
  conn.resident_launches = rl;
  conn.resident_ops = ro;
  conn.live_eqsets = le;
  conn.retire_backoff = backoff;
}

ServeStats Server::stats() const { return stats(nullptr); }

ServeStats Server::stats(const StreamSession* fold) const {
  ServeStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.totals = finished_totals_;
    s.sessions_total = sessions_total_;
    s.sessions_completed = sessions_completed_;
    s.sessions_failed = sessions_failed_;
    for (const std::shared_ptr<Connection>& c : conns_) {
      if (!c->active) continue;
      ++s.sessions_active;
      merge_counters(s.totals, c->snap);
      s.resident_launches += c->resident_launches;
      s.resident_ops += c->resident_ops;
      s.live_eqsets += c->live_eqsets;
      if (c->retire_backoff > 0) ++s.sessions_in_backoff;
    }
  }
  if (fold != nullptr) {
    // The stdin session is not an accepted connection: fold its live
    // counters in so the report covers it (its residency gauges are not
    // published — gauges cover accepted connections only).
    merge_counters(s.totals, fold->counters());
    if (fold->retire_backoff() > 0) ++s.sessions_in_backoff;
  }
  s.uptime_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_time_)
                   .count();
  return s;
}

std::string Server::metrics_json() const { return metrics_json(nullptr); }

std::string Server::metrics_json(const StreamSession* fold) const {
  ServeStats s = stats(fold);
  const SessionCounters& t = s.totals;
  std::ostringstream os;
  os << "{\"schema_version\":" << obs::kMetricsSchemaVersion
     << ",\"binary\":\"visrt_serve\",\"serve\":{"
     << "\"sessions_total\":" << s.sessions_total
     << ",\"sessions_active\":" << s.sessions_active
     << ",\"sessions_completed\":" << s.sessions_completed
     << ",\"sessions_failed\":" << s.sessions_failed
     << ",\"statements\":" << t.statements << ",\"rejected\":" << t.rejected
     << ",\"launches\":" << t.launches << ",\"iterations\":" << t.iterations
     << ",\"retire_calls\":" << t.retire_calls
     << ",\"retired_launches\":" << t.retired_launches
     << ",\"retired_ops\":" << t.retired_ops
     << ",\"eqset_slots_reclaimed\":" << t.eqset_slots_reclaimed
     << ",\"peak_resident_launches\":" << t.peak_resident_launches
     << ",\"peak_resident_ops\":" << t.peak_resident_ops
     << ",\"resident_launches\":" << s.resident_launches
     << ",\"resident_ops\":" << s.resident_ops
     << ",\"live_eqsets\":" << s.live_eqsets;
  // Only sessions configured for inline verification report it — keeps
  // the metrics shape (and the CI golden) stable when verification is off.
  if (options_.session.verify)
    os << ",\"verify\":{\"verified_launches\":" << t.verified_launches
       << ",\"violations\":" << t.verify_violations << "}";
  os << ",\"caps\":{"
     << "\"max_resident_launches\":" << options_.session.max_resident_launches
     << ",\"max_history_depth\":" << options_.session.max_history_depth
     << ",\"retire_every\":" << options_.session.retire_every << "}"
     << ",\"latency\":" << latency_section_json()
     << ",\"timing\":{\"uptime_s\":" << obs::json_number(s.uptime_s)
     << ",\"launches_per_s\":"
     << obs::json_number(s.uptime_s > 0
                             ? static_cast<double>(t.launches) / s.uptime_s
                             : 0.0)
     << "}}}";
  return os.str();
}

std::string Server::latency_section_json() const {
  // Deterministic counts outside, host-dependent nanoseconds inside the
  // strippable "timing" subobject — mirroring the profiler's
  // structure/timing split so golden comparisons stay byte-exact.
  auto one = [](std::ostringstream& os, const char* key,
                const obs::HistogramSnapshot& snap) {
    os << "\"" << key << "\":{\"count\":" << snap.count
       << ",\"timing\":" << obs::histogram_timing_json(snap) << "}";
  };
  std::ostringstream os;
  os << "{";
  one(os, "launch_analysis", latency_.launch_analysis.snapshot());
  os << ",";
  one(os, "statement_parse", latency_.statement_parse.snapshot());
  os << ",";
  one(os, "retire_pause", latency_.retire_pause.snapshot());
  os << ",";
  one(os, "metrics_request", latency_.metrics_request.snapshot());
  os << "}";
  return os.str();
}

std::string Server::health_json() const { return health_json(nullptr); }

std::string Server::health_json(const StreamSession* fold) const {
  ServeStats s = stats(fold);
  const std::size_t cap = options_.session.max_resident_launches;
  // Residency is summed over sessions and the cap is per-session, so the
  // fleet-level bound is cap * active sessions; per-session over-cap
  // pressure additionally surfaces as a nonzero retire backoff.
  const bool over_cap =
      cap != 0 && s.resident_launches >
                      static_cast<std::uint64_t>(cap) *
                          std::max<std::uint64_t>(1, s.sessions_active);
  const bool draining = stopping();
  const bool degraded = s.sessions_in_backoff > 0 || over_cap;
  const char* status = draining ? "draining" : degraded ? "degraded" : "ok";
  std::ostringstream os;
  os << "{\"status\":\"" << status << "\",\"draining\":"
     << (draining ? "true" : "false")
     << ",\"sessions_active\":" << s.sessions_active
     << ",\"sessions_total\":" << s.sessions_total
     << ",\"sessions_failed\":" << s.sessions_failed
     << ",\"sessions_in_backoff\":" << s.sessions_in_backoff
     << ",\"resident_launches\":" << s.resident_launches
     << ",\"max_resident_launches\":" << cap
     << ",\"launches\":" << s.totals.launches
     << ",\"uptime_s\":" << obs::json_number(s.uptime_s);
#if VISRT_FLIGHT
  {
    std::ostringstream tail;
    std::uint64_t taken = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      taken = samples_taken_;
    }
    std::vector<ServeSample> recent = samples();
    const std::size_t show = std::min<std::size_t>(recent.size(), 5);
    for (std::size_t i = recent.size() - show; i < recent.size(); ++i) {
      const ServeSample& smp = recent[i];
      if (tail.tellp() > 0) tail << ",";
      tail << "{\"uptime_s\":" << obs::json_number(smp.uptime_s)
           << ",\"launches\":" << smp.launches
           << ",\"sessions_active\":" << smp.sessions_active
           << ",\"resident_launches\":" << smp.resident_launches
           << ",\"launch_p99_ns\":" << smp.launch_p99_ns << "}";
    }
    os << ",\"sampler\":{\"samples\":" << taken
       << ",\"capacity\":" << options_.sampler_capacity
       << ",\"interval_ms\":" << options_.sampler_interval_ms
       << ",\"series_tail\":[" << tail.str() << "]}";
  }
#endif
  os << "}";
  return os.str();
}

namespace {

/// One histogram in Prometheus text exposition: cumulative `le` buckets
/// at each populated octave boundary (seconds), then +Inf, _sum, _count.
void prometheus_histogram(std::ostringstream& os, const char* name,
                          const obs::HistogramSnapshot& snap) {
  os << "# TYPE " << name << " histogram\n";
  std::size_t last_nonzero = 0;
  bool any = false;
  for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
    if (snap.buckets[i] != 0) {
      last_nonzero = i;
      any = true;
    }
  }
  std::uint64_t cum = 0;
  if (any) {
    for (std::size_t i = 0; i <= last_nonzero; ++i) {
      cum += snap.buckets[i];
      const bool octave_end = i % obs::Histogram::kSubCount ==
                              obs::Histogram::kSubCount - 1;
      if (octave_end || i == last_nonzero) {
        os << name << "_bucket{le=\""
           << obs::json_number(
                  static_cast<double>(obs::Histogram::bucket_upper(i)) / 1e9)
           << "\"} " << cum << "\n";
      }
    }
  }
  os << name << "_bucket{le=\"+Inf\"} " << snap.count << "\n"
     << name << "_sum " << obs::json_number(static_cast<double>(snap.sum) / 1e9)
     << "\n"
     << name << "_count " << snap.count << "\n";
}

void prometheus_counter(std::ostringstream& os, const char* name,
                        const char* type, std::uint64_t value) {
  os << "# TYPE " << name << " " << type << "\n" << name << " " << value
     << "\n";
}

} // namespace

std::string Server::prometheus_text() const { return prometheus_text(nullptr); }

std::string Server::prometheus_text(const StreamSession* fold) const {
  ServeStats s = stats(fold);
  const SessionCounters& t = s.totals;
  std::ostringstream os;
  prometheus_counter(os, "visrt_serve_sessions_total", "counter",
                     s.sessions_total);
  prometheus_counter(os, "visrt_serve_sessions_completed_total", "counter",
                     s.sessions_completed);
  prometheus_counter(os, "visrt_serve_sessions_failed_total", "counter",
                     s.sessions_failed);
  prometheus_counter(os, "visrt_serve_statements_total", "counter",
                     t.statements);
  prometheus_counter(os, "visrt_serve_rejected_total", "counter", t.rejected);
  prometheus_counter(os, "visrt_serve_launches_total", "counter", t.launches);
  prometheus_counter(os, "visrt_serve_iterations_total", "counter",
                     t.iterations);
  prometheus_counter(os, "visrt_serve_retire_calls_total", "counter",
                     t.retire_calls);
  prometheus_counter(os, "visrt_serve_retired_launches_total", "counter",
                     t.retired_launches);
  prometheus_counter(os, "visrt_serve_retired_ops_total", "counter",
                     t.retired_ops);
  prometheus_counter(os, "visrt_serve_sessions_active", "gauge",
                     s.sessions_active);
  prometheus_counter(os, "visrt_serve_sessions_in_backoff", "gauge",
                     s.sessions_in_backoff);
  prometheus_counter(os, "visrt_serve_resident_launches", "gauge",
                     s.resident_launches);
  prometheus_counter(os, "visrt_serve_resident_ops", "gauge", s.resident_ops);
  prometheus_counter(os, "visrt_serve_live_eqsets", "gauge", s.live_eqsets);
  prometheus_histogram(os, "visrt_serve_launch_analysis_seconds",
                       latency_.launch_analysis.snapshot());
  prometheus_histogram(os, "visrt_serve_statement_parse_seconds",
                       latency_.statement_parse.snapshot());
  prometheus_histogram(os, "visrt_serve_retire_pause_seconds",
                       latency_.retire_pause.snapshot());
  prometheus_histogram(os, "visrt_serve_metrics_request_seconds",
                       latency_.metrics_request.snapshot());
  os << "# EOF";
  return os.str();
}

std::vector<ServeSample> Server::samples() const {
#if VISRT_FLIGHT
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ServeSample> out;
  if (samples_.empty()) return out;
  const std::uint64_t taken = samples_taken_;
  const std::size_t cap = samples_.size();
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(taken, cap));
  out.reserve(n);
  // Oldest first: the ring cursor points at the next (oldest) slot once
  // the ring has wrapped.
  const std::size_t first = taken >= cap ? samples_next_ : 0;
  for (std::size_t i = 0; i < n; ++i) out.push_back(samples_[(first + i) % cap]);
  return out;
#else
  return {};
#endif
}

std::string Server::flight_context_json() const {
  // Runs during crash handling: the latency section reads lock-free
  // atomics; the session summary is try-lock so a crash while holding
  // mu_ still produces a dump.
  std::ostringstream os;
  os << "{\"latency\":" << latency_section_json();
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (lock.owns_lock()) {
    os << ",\"sessions\":{\"total\":" << sessions_total_
       << ",\"completed\":" << sessions_completed_
       << ",\"failed\":" << sessions_failed_ << ",\"active\":[";
    bool first = true;
    for (const std::shared_ptr<Connection>& c : conns_) {
      if (!c->active) continue;
      if (!first) os << ",";
      first = false;
      os << "{\"statements\":" << c->snap.statements
         << ",\"launches\":" << c->snap.launches
         << ",\"resident_launches\":" << c->resident_launches
         << ",\"retire_backoff\":" << c->retire_backoff << "}";
    }
    os << "]}";
  }
  os << "}";
  return os.str();
}

void Server::sampler_start() {
#if VISRT_FLIGHT
  if (options_.sampler_interval_ms <= 0 || options_.sampler_capacity == 0)
    return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.assign(options_.sampler_capacity, ServeSample{});
    samples_next_ = 0;
    samples_taken_ = 0;
  }
  sampler_thread_ = std::thread([this] { sampler_loop(); });
#endif
}

void Server::sampler_stop() {
#if VISRT_FLIGHT
  if (sampler_thread_.joinable()) sampler_thread_.join();
#endif
}

#if VISRT_FLIGHT
void Server::sampler_loop() {
  const auto interval = std::chrono::milliseconds(options_.sampler_interval_ms);
  const auto poll = std::chrono::milliseconds(
      std::max(1, std::min(options_.poll_interval_ms,
                           options_.sampler_interval_ms)));
  auto next = std::chrono::steady_clock::now() + interval;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (std::chrono::steady_clock::now() < next) {
      std::this_thread::sleep_for(poll);
      continue;
    }
    next += interval;
    ServeStats s = stats(nullptr);
    ServeSample smp;
    smp.uptime_s = s.uptime_s;
    smp.statements = s.totals.statements;
    smp.launches = s.totals.launches;
    smp.sessions_active = s.sessions_active;
    smp.resident_launches = s.resident_launches;
    smp.launch_p99_ns = latency_.launch_analysis.snapshot().quantile(0.99);
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.empty()) continue;
    samples_[samples_next_] = smp;
    samples_next_ = (samples_next_ + 1) % samples_.size();
    ++samples_taken_;
  }
}
#endif

std::string Server::result_json(const StreamSession& session) const {
  const SessionResult& r = session.result();
  const SessionCounters& c = session.counters();
  std::ostringstream os;
  os << "{\"ok\":true,\"launches\":" << r.launches
     << ",\"dep_edges\":" << r.dep_edges << ",\"statements\":" << c.statements
     << ",\"rejected\":" << c.rejected
     << ",\"retire_calls\":" << c.retire_calls
     << ",\"retired_launches\":" << c.retired_launches
     << ",\"peak_resident_launches\":" << c.peak_resident_launches
     << ",\"dep_graph_hash\":\"" << hex_u64(r.dep_graph_hash)
     << "\",\"schedule_hash\":\"" << hex_u64(r.schedule_hash)
     << "\",\"value_hash\":\"" << hex_u64(r.value_hash)
     << "\",\"final_hashes\":[";
  for (std::size_t i = 0; i < r.final_hashes.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"" << hex_u64(r.final_hashes[i]) << "\"";
  }
  os << "]";
  if (r.verify.has_value()) os << ",\"verify\":" << r.verify->to_json();
  os << "}";
  return os.str();
}

void Server::run_stream(std::istream& in, std::ostream& out) {
  SessionOptions so = options_.session;
  so.on_error = [&out](const std::string& what) {
    out << error_line(what) << "\n" << std::flush;
  };
  StreamSession session(std::move(so));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++sessions_total_;
  }
  bool ended = false;
  std::string line;
  while (!ended && std::getline(in, line)) {
    std::string reply;
    switch (dispatch_control(line, &session, reply)) {
    case ControlAction::End: ended = true; break;
    case ControlAction::Replied: out << reply << "\n" << std::flush; break;
    case ControlAction::NotControl:
      line.push_back('\n');
      session.feed(line);
      break;
    }
  }
  session.finish();
  out << result_json(session) << "\n" << std::flush;
  std::lock_guard<std::mutex> lock(mu_);
  merge_counters(finished_totals_, session.counters());
  ++sessions_completed_;
}

} // namespace visrt::serve
